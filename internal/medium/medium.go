// Package medium is the pluggable reception-model seam of the
// simulator: it decides, per slot, which listener receives which
// transmission. The paper's model (Sect. 2) hard-codes one answer — a
// listener receives iff exactly one graph neighbor transmits — and the
// engine keeps that rule built in as its default fast path. Every other
// physical model (SINR with cumulative interference, multi-channel
// hopping, and later beeping or duty-cycling variants) implements the
// Medium interface here and plugs into the engine through
// radio.Config.Medium, the same nil-check seam discipline as the
// Observer and Faults hooks: a nil medium costs the kernel nothing and
// keeps its output bit-identical.
//
// A Medium is a stateless description (parameters only). Bind validates
// it against a concrete environment — node count, CSR adjacency,
// geometric positions — and returns an Instance holding the per-run
// scratch. Instances are single-run: they may keep mutable per-slot
// state and must not be shared across concurrent engines.
package medium

import (
	"fmt"

	"radiocolor/internal/geom"
)

// Env is the world a medium is bound against. The engine fills it from
// its own run state; media pick the parts they need and reject
// environments that lack them (e.g. SINR without positions).
type Env struct {
	// N is the node count.
	N int
	// Offsets and Edges are the CSR view of the communication graph
	// (Offsets has N+1 entries; Edges[Offsets[v]:Offsets[v+1]] lists v's
	// neighbors). Graph-based media require them.
	Offsets []int32
	Edges   []int32
	// Points holds the nodes' positions in the plane, or nil for
	// non-geometric topologies. Geometric media (SINR) require them.
	Points []geom.Point
	// Seed is the run's master seed; media with internal randomness
	// (channel hopping) derive their schedules from it so that equal
	// seeds give equal runs.
	Seed int64
}

// Reception is one successful decode: listener To receives From's
// message this slot. At most one reception per listener per slot.
type Reception struct {
	// To is the listening node that decodes; From the transmitter.
	To, From int32
	// Captured marks a decode that survived concurrent transmissions
	// (≥ 2 audible senders) — the capture effect. The engine counts it
	// into Result.Captures.
	Captured bool
}

// Stats aggregates one slot's failed receptions, added into the run's
// counters by the engine.
type Stats struct {
	// Collisions counts (listener, slot) pairs where concurrent
	// transmissions destroyed an otherwise audible signal.
	Collisions int64
	// Drowned counts listeners whose strongest signal would have
	// decoded alone but was buried by cumulative interference (a subset
	// of Collisions; SINR-specific).
	Drowned int64
	// BelowNoise counts listeners whose strongest signal cleared the
	// noise floor but not the SINR threshold even without any
	// interference (SINR-specific; not a collision).
	BelowNoise int64
}

// Medium is a reception model: a pure parameter set that can be bound
// to a concrete environment.
type Medium interface {
	// Name identifies the model ("graph", "sinr", "multichannel") in
	// specs, logs and experiment tables.
	Name() string
	// Bind validates the medium against env and returns a run instance.
	Bind(env Env) (Instance, error)
}

// Instance resolves slots for one run.
//
// The contract with the engine: tx lists this slot's transmitters in
// ascending id order; listening reports whether a node is an awake,
// non-transmitting, non-crashed listener this slot (pure for the
// duration of the call); dst is an empty buffer the instance appends
// receptions to and returns (the engine reuses it across slots, so a
// steady-state run does not allocate). Each listener appears in at most
// one reception, and the emission order must be deterministic — the
// engine delivers in it.
type Instance interface {
	// Name echoes the bound medium's name.
	Name() string
	// N returns the node count the instance was bound for; the engine
	// rejects a mismatch with its graph.
	N() int
	// Resolve computes slot's receptions.
	Resolve(slot int64, tx []int32, listening func(int32) bool, dst []Reception) ([]Reception, Stats)
}

// GraphThreshold is the paper's reception rule as an explicit medium: a
// listener decodes iff exactly one of its graph neighbors transmits —
// otherwise the transmissions annihilate and the listener hears nothing
// (no collision detection). Binding it reproduces the engine's built-in
// default exactly; it exists so differential tests can pin the seam
// against the fast path and so derived media have a reference skeleton.
type GraphThreshold struct{}

// Name implements Medium.
func (GraphThreshold) Name() string { return "graph" }

// Bind implements Medium.
func (GraphThreshold) Bind(env Env) (Instance, error) {
	if len(env.Offsets) != env.N+1 {
		return nil, fmt.Errorf("medium: graph medium needs a CSR adjacency (%d offsets for %d nodes)", len(env.Offsets), env.N)
	}
	return &graphInstance{
		offsets: env.Offsets,
		edges:   env.Edges,
		count:   make([]int32, env.N),
		from:    make([]int32, env.N),
	}, nil
}

// graphInstance accumulates per-listener transmitting-neighbor counts
// over the transmitters' CSR rows, exactly like the engine's built-in
// resolve phase. count keeps a zero between-slot invariant: every
// touched entry is reset while its cache line is still hot.
type graphInstance struct {
	offsets []int32
	edges   []int32
	count   []int32
	from    []int32
	touched []int32
}

// Name implements Instance.
func (g *graphInstance) Name() string { return "graph" }

// N implements Instance.
func (g *graphInstance) N() int { return len(g.count) }

// Resolve implements Instance.
func (g *graphInstance) Resolve(slot int64, tx []int32, listening func(int32) bool, dst []Reception) ([]Reception, Stats) {
	var st Stats
	touched := g.touched[:0]
	for _, v := range tx {
		for _, u := range g.edges[g.offsets[v]:g.offsets[v+1]] {
			if g.count[u] == 0 {
				if !listening(u) {
					continue
				}
				g.from[u] = v
				touched = append(touched, u)
			}
			g.count[u]++
		}
	}
	for _, u := range touched {
		if g.count[u] == 1 {
			dst = append(dst, Reception{To: u, From: g.from[u]})
		} else {
			st.Collisions++
		}
		g.count[u] = 0
	}
	g.touched = touched
	return dst, st
}
