// Command kappa measures the bounded-independence parameters κ₁ and κ₂
// (Sect. 2) of generated topologies — the Fig. 1 companion tool. For
// unit disk graphs the theory guarantees κ₁ ≤ 5 and κ₂ ≤ 18; obstacles
// and exotic metrics push the values up, and this tool shows by how
// much.
//
// Example:
//
//	kappa -topology big -n 300 -walls 50 -seed 7
package main

import (
	"flag"
	"fmt"
	"os"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/topology"
)

func main() {
	var (
		topo   = flag.String("topology", "udg", "udg | big | ubg-cheb | ubg-hub | grid | ring | clique | corridor")
		n      = flag.Int("n", 300, "number of nodes")
		side   = flag.Float64("side", 8, "deployment square side")
		radius = flag.Float64("radius", 1.0, "transmission radius")
		walls  = flag.Int("walls", 30, "wall count for -topology big")
		seed   = flag.Int64("seed", 1, "placement seed")
		budget = flag.Int("budget", 300000, "branch-and-bound budget per neighborhood")
	)
	flag.Parse()

	cfg := topology.UDGConfig{N: *n, Side: *side, Radius: *radius, Seed: *seed}
	var d *topology.Deployment
	switch *topo {
	case "udg":
		d = topology.RandomUDG(cfg)
	case "big":
		d = topology.BIGWithWalls(cfg, *walls)
	case "ubg-cheb":
		d = topology.UnitBallGraph(cfg, geom.Chebyshev{})
	case "ubg-hub":
		d = topology.UnitBallGraph(cfg, geom.HubMetric{
			Hub: geom.Point{X: *side / 2, Y: *side / 2}, Factor: 0.3})
	case "grid":
		k := 1
		for (k+1)*(k+1) <= *n {
			k++
		}
		d = topology.GridGraph(k, k, 1, 1.5)
	case "ring":
		d = topology.Ring(*n)
	case "clique":
		d = topology.Clique(*n)
	case "corridor":
		d = topology.CorridorUDG(*n, *side*4, 2, *radius, *seed)
	default:
		fmt.Fprintf(os.Stderr, "kappa: unknown topology %q\n", *topo)
		os.Exit(2)
	}

	k := d.G.Kappa(graph.KappaOptions{Budget: *budget, MaxNeighborhood: 200})
	fmt.Printf("topology : %s\n", d.Name)
	fmt.Printf("n, m     : %d nodes, %d edges (%d components)\n", d.N(), d.G.M(), d.G.Components())
	fmt.Printf("Δ        : %d (mean δ = %.2f)\n", d.G.MaxDegree(), d.G.AvgDegree())
	exactNote := "exact"
	if !k.Exact {
		exactNote = "lower bound (budget exhausted)"
	}
	fmt.Printf("κ₁       : %d (%s)\n", k.K1, exactNote)
	fmt.Printf("κ₂       : %d (%s)\n", k.K2, exactNote)
	if *topo == "udg" {
		fmt.Printf("UDG bound: κ₁ ≤ 5: %v, κ₂ ≤ 18: %v\n", k.K1 <= 5, k.K2 <= 18)
	}
}
