package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"radiocolor/internal/store"
)

// SweepRequest is the body of POST /v1/sweeps: a base job plus up to
// six swept dimensions. The grid is the cross product, expanded in a
// fixed nesting order — n, then seed, wakeup, faults, medium, tiling —
// so cell indices are deterministic and two replicas (or two runs)
// agree on which cell is which. An empty dimension keeps the base
// value and contributes a factor of one.
type SweepRequest struct {
	// Base is the job every cell starts from. Swept dimensions
	// override its corresponding field; everything else is shared.
	Base JobRequest `json:"base"`
	// N sweeps the topology node count; it requires Base.Topology
	// (explicit adjacency and point sets have no free n).
	N []int `json:"n,omitempty"`
	// Seed sweeps the run seed.
	Seed []int64 `json:"seed,omitempty"`
	// Wakeup sweeps the wake-up schedule by name.
	Wakeup []string `json:"wakeup,omitempty"`
	// Faults sweeps fault-injection specs (ParseFaults syntax; "" for
	// a fault-free cell).
	Faults []string `json:"faults,omitempty"`
	// Medium sweeps reception models (ParseMedium syntax; "" for the
	// default collision medium).
	Medium []string `json:"medium,omitempty"`
	// Tiling sweeps the slot-kernel tile selector.
	Tiling []int `json:"tiling,omitempty"`
}

// expand materializes the grid in the canonical order. Every returned
// request is a self-contained JobRequest — byte-for-byte the job a
// client would have submitted individually for that cell.
func (r *SweepRequest) expand() ([]JobRequest, error) {
	if len(r.N) > 0 && r.Base.Topology == nil {
		return nil, errors.New("serve: sweeping n requires a base topology")
	}
	or1 := func(n int) int { // dimension factor: empty sweeps keep the base
		if n == 0 {
			return 1
		}
		return n
	}
	total := or1(len(r.N)) * or1(len(r.Seed)) * or1(len(r.Wakeup)) *
		or1(len(r.Faults)) * or1(len(r.Medium)) * or1(len(r.Tiling))
	cells := make([]JobRequest, 0, total)
	for in := 0; in < or1(len(r.N)); in++ {
		for is := 0; is < or1(len(r.Seed)); is++ {
			for iw := 0; iw < or1(len(r.Wakeup)); iw++ {
				for ifa := 0; ifa < or1(len(r.Faults)); ifa++ {
					for im := 0; im < or1(len(r.Medium)); im++ {
						for it := 0; it < or1(len(r.Tiling)); it++ {
							cell := r.Base
							if len(r.N) > 0 {
								top := *r.Base.Topology
								top.N = r.N[in]
								cell.Topology = &top
							}
							if len(r.Seed) > 0 {
								cell.Seed = r.Seed[is]
							}
							if len(r.Wakeup) > 0 {
								cell.Wakeup = r.Wakeup[iw]
							}
							if len(r.Faults) > 0 {
								cell.Faults = r.Faults[ifa]
							}
							if len(r.Medium) > 0 {
								cell.Medium = r.Medium[im]
							}
							if len(r.Tiling) > 0 {
								cell.Tiling = r.Tiling[it]
							}
							cells = append(cells, cell)
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// SweepCell is one grid cell in the aggregate: its index, how it
// ended, and the raw outcome bytes exactly as the equivalent
// individual job would have stored them. No ids or timestamps — the
// aggregate is a pure function of the grid, byte-identical across
// replicas and across runs with equal seeds.
type SweepCell struct {
	Cell    int             `json:"cell"`
	State   JobState        `json:"state"`
	Error   string          `json:"error,omitempty"`
	Outcome json.RawMessage `json:"outcome,omitempty"`
}

// SweepResult is the aggregate committed into the sweep's record once
// every cell is terminal.
type SweepResult struct {
	Cells []SweepCell `json:"cells"`
}

// SweepStatus is the wire status of a sweep.
type SweepStatus struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Submitted time.Time  `json:"submitted"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Cells is the grid size; the per-state counters track fan-out
	// progress (CellsDone counts state "done" only).
	Cells        int    `json:"cells"`
	CellsDone    int    `json:"cells_done"`
	CellsFailed  int    `json:"cells_failed"`
	CellsRunning int    `json:"cells_running"`
	CellsQueued  int    `json:"cells_queued"`
	Error        string `json:"error,omitempty"`
	// Result is the aggregate, present once the sweep is terminal
	// (absent for sweeps canceled before their cells finished).
	Result *SweepResult `json:"result,omitempty"`
	// CellIDs maps cell index to child job id, for drilling into a
	// single cell via /v1/jobs/{id}.
	CellIDs []string `json:"cell_ids,omitempty"`
}

// SweepStreamEvent is one frame of GET /v1/sweeps/{id}/stream.
type SweepStreamEvent struct {
	// Type is "status" (periodic progress), "cell" (a cell just
	// reached a terminal state), or "done" (the sweep is terminal;
	// Status carries the aggregate).
	Type   string       `json:"type"`
	State  JobState     `json:"state"`
	Cell   *SweepCell   `json:"cell,omitempty"`
	Status *SweepStatus `json:"status,omitempty"`
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitted.Add(1)
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req SweepRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	cells, err := req.expand()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if len(cells) > s.cfg.MaxSweepCells {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("serve: sweep has %d cells, limit %d", len(cells), s.cfg.MaxSweepCells)})
		return
	}
	// Validate the whole grid before admitting anything: a sweep is
	// all-or-nothing at submission.
	specs := make([]json.RawMessage, len(cells))
	for i := range cells {
		if _, err := cells[i].validate(); err != nil {
			writeJSON(w, http.StatusBadRequest,
				errorResponse{Error: fmt.Sprintf("cell %d: %v", i, err)})
			return
		}
		if n := cells[i].nodes(); n > s.cfg.MaxNodes {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorResponse{Error: fmt.Sprintf("cell %d: %d nodes exceeds the limit of %d", i, n, s.cfg.MaxNodes)})
			return
		}
		if specs[i], err = json.Marshal(&cells[i]); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
	}
	parentSpec, err := json.Marshal(&req)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
		return
	}

	// Admission: the parent and every child persist before the 202.
	// Sweeps deliberately bypass the QueueCap backlog bound — the bound
	// protects interactive submissions from each other, while a sweep's
	// size is governed by MaxSweepCells and is durable either way.
	s.admitMu.Lock()
	if s.isDraining() {
		s.admitMu.Unlock()
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	parent := &store.Job{Kind: store.KindSweep, Spec: parentSpec, Submitted: s.now(), Cells: len(cells)}
	if err := s.st.Create(parent); err != nil {
		s.admitMu.Unlock()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
		return
	}
	for i, spec := range specs {
		child := &store.Job{Kind: store.KindJob, Spec: spec, Submitted: parent.Submitted, Parent: parent.ID, Cell: i}
		if err := s.st.Create(child); err != nil {
			// Partial fan-out: fail the parent explicitly; the created
			// children run and are pruned with it eventually.
			_ = s.st.Finish(parent.ID, "", store.StateFailed, nil, "fan-out: "+err.Error(), s.now())
			s.admitMu.Unlock()
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
			return
		}
	}
	s.admitMu.Unlock()
	s.accepted.Add(1)
	s.ctrl.AddSweep()
	s.ctrl.AddSweepCells(int64(len(cells)))
	s.wakeWorkers()
	st, _ := s.sweepStatus(parent)
	w.Header().Set("Location", "/v1/sweeps/"+parent.ID)
	writeJSON(w, http.StatusAccepted, st)
}

// sweepParent fetches a sweep record by id, 404-ing plain jobs.
func (s *Server) sweepParent(id string) (*store.Job, error) {
	rec, err := s.st.Get(id)
	if err != nil {
		return nil, err
	}
	if rec.Kind != store.KindSweep {
		return nil, store.ErrNotFound
	}
	return rec, nil
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.sweepParent(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep"})
		return
	}
	if !store.State(rec.State).Terminal() {
		// Crash-safe catch-up: if the replica that finished the last
		// cell died before aggregating, any status read completes it.
		s.finalizeSweep(rec.ID)
		if rec, err = s.sweepParent(rec.ID); err != nil {
			writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep"})
			return
		}
	}
	st, err := s.sweepStatus(rec)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	parent, err := s.sweepParent(r.PathValue("id"))
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep"})
		return
	}
	// Cancel the parent first so a concurrent finalize can't commit an
	// aggregate under us, then fan the cancel through the cells.
	if rec, changed, err := s.st.RequestCancel(parent.ID, s.now()); err == nil {
		if changed && rec.State == store.StateCanceled {
			s.canceled.Add(1)
		}
	}
	kids, err := s.st.List(store.Filter{Parent: parent.ID})
	if err == nil {
		for _, kid := range kids {
			rec, changed, err := s.st.RequestCancel(kid.ID, s.now())
			if err != nil {
				continue
			}
			if changed && rec.State == store.StateCanceled {
				s.canceled.Add(1)
				if j := s.lookup(kid.ID); j != nil {
					j.mu.Lock()
					j.state = StateCanceled
					j.finished = rec.Finished
					j.closeDone()
					j.mu.Unlock()
				}
			}
			if rec.State == store.StateRunning {
				if j := s.lookup(kid.ID); j != nil {
					j.mu.Lock()
					if j.state == StateRunning {
						j.canceled = true
						if j.cancel != nil {
							j.cancel()
						}
					}
					j.mu.Unlock()
				}
			}
		}
	}
	parent, err = s.sweepParent(parent.ID)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep"})
		return
	}
	st, err := s.sweepStatus(parent)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleSweepStream serves GET /v1/sweeps/{id}/stream: an initial
// "status" frame, a "cell" frame as each cell reaches a terminal state
// (with its outcome), periodic "status" frames in between, and a final
// "done" frame with the aggregate. Cell completions are observed by
// polling the store, so the stream works regardless of which replicas
// execute the cells.
func (s *Server) handleSweepStream(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sweepParent(id); err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown sweep"})
		return
	}
	es, ok := newEventStream(w, r)
	if !ok {
		return
	}
	emitted := make(map[int]bool) // cell index → "cell" frame sent
	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	first := true
	for {
		parent, err := s.sweepParent(id)
		if err != nil {
			return // pruned mid-stream
		}
		if !store.State(parent.State).Terminal() {
			s.finalizeSweep(id)
			parent, err = s.sweepParent(id)
			if err != nil {
				return
			}
		}
		kids, err := s.st.List(store.Filter{Parent: id})
		if err != nil {
			return
		}
		sort.Slice(kids, func(i, j int) bool { return kids[i].Cell < kids[j].Cell })
		for _, kid := range kids {
			if emitted[kid.Cell] || !store.State(kid.State).Terminal() {
				continue
			}
			emitted[kid.Cell] = true
			cell := sweepCellFromRecord(kid)
			if !es.emit("cell", SweepStreamEvent{Type: "cell", State: JobState(parent.State), Cell: &cell}) {
				return
			}
		}
		st, err := s.sweepStatus(parent)
		if err != nil {
			return
		}
		if st.State.Terminal() {
			es.emit("done", SweepStreamEvent{Type: "done", State: st.State, Status: &st})
			return
		}
		if first {
			first = false
			if !es.emit("status", SweepStreamEvent{Type: "status", State: st.State, Status: &st}) {
				return
			}
		} else if !es.emit("status", SweepStreamEvent{Type: "status", State: st.State}) {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}

func sweepCellFromRecord(kid *store.Job) SweepCell {
	return SweepCell{
		Cell:    kid.Cell,
		State:   JobState(kid.State),
		Error:   kid.Error,
		Outcome: kid.Result,
	}
}

// sweepStatus builds the wire status of a sweep from its store
// records.
func (s *Server) sweepStatus(parent *store.Job) (SweepStatus, error) {
	kids, err := s.st.List(store.Filter{Parent: parent.ID})
	if err != nil {
		return SweepStatus{}, err
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].Cell < kids[j].Cell })
	st := SweepStatus{
		ID:        parent.ID,
		State:     JobState(parent.State),
		Submitted: parent.Submitted,
		Cells:     parent.Cells,
		Error:     parent.Error,
		CellIDs:   make([]string, 0, len(kids)),
	}
	if !parent.Finished.IsZero() {
		t := parent.Finished
		st.Finished = &t
	}
	for _, kid := range kids {
		st.CellIDs = append(st.CellIDs, kid.ID)
		switch store.State(kid.State) {
		case store.StateDone:
			st.CellsDone++
		case store.StateQueued:
			st.CellsQueued++
		case store.StateRunning:
			st.CellsRunning++
		default:
			st.CellsFailed++
		}
	}
	if store.State(parent.State).Terminal() && len(parent.Result) > 0 {
		var agg SweepResult
		if err := json.Unmarshal(parent.Result, &agg); err == nil {
			st.Result = &agg
		}
	}
	return st, nil
}

// finalizeSweep commits the aggregate once every cell is terminal.
// Any replica may call it after finishing a cell (or lazily from a
// status read); the store's terminal guard makes the commit
// first-writer-wins, and since the aggregate is a deterministic
// function of the cell records, the racers would have written
// identical bytes anyway.
func (s *Server) finalizeSweep(parentID string) {
	parent, err := s.st.Get(parentID)
	if err != nil || parent.Kind != store.KindSweep || store.State(parent.State).Terminal() {
		return
	}
	kids, err := s.st.List(store.Filter{Parent: parentID})
	if err != nil || len(kids) < parent.Cells {
		return
	}
	for _, kid := range kids {
		if !store.State(kid.State).Terminal() {
			return
		}
	}
	sort.Slice(kids, func(i, j int) bool { return kids[i].Cell < kids[j].Cell })
	agg := SweepResult{Cells: make([]SweepCell, 0, len(kids))}
	failed := 0
	for _, kid := range kids {
		if store.State(kid.State) != store.StateDone {
			failed++
		}
		agg.Cells = append(agg.Cells, sweepCellFromRecord(kid))
	}
	res, err := json.Marshal(&agg)
	if err != nil {
		return
	}
	state := store.StateDone
	var errMsg string
	if failed > 0 {
		state = store.StateFailed
		errMsg = fmt.Sprintf("%d of %d cells did not complete", failed, len(kids))
	}
	if err := s.st.Finish(parentID, "", state, res, errMsg, s.now()); err == nil {
		s.ctrl.AddSweepDone()
	}
	// ErrTerminal here means another replica (or a concurrent cancel)
	// beat us to it — the designed race outcome.
}
