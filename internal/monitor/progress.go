package monitor

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"radiocolor/internal/obs"
)

// Progress is a thread-safe live tracker for batch executions (the
// fleet engine's counters): jobs done/failed/retried, an ETA from the
// completion rate, and an optional externally sampled work counter
// (e.g. radio.SimulatedSlots) reported as a rate. Status lines are
// written to w — cmd/experiments points it at stderr so stdout stays a
// byte-exact table stream.
type Progress struct {
	mu        sync.Mutex
	w         io.Writer
	label     string
	every     time.Duration
	now       func() time.Time
	unitsName string
	unitsFunc func() int64
	metrics   *obs.Metrics

	start      time.Time
	lastPrint  time.Time
	startUnits int64
	total      int
	done       int
	failed     int
	retried    int
}

// Snapshot is a consistent view of a Progress.
type Snapshot struct {
	// Total, Done, Failed and Retried are the job counters. Failed jobs
	// are included in neither Done nor Retried.
	Total, Done, Failed, Retried int
	// Elapsed is the time since the tracker was created.
	Elapsed time.Duration
	// Units is the sampled work counter delta since creation (0 when no
	// units source is installed).
	Units int64
	// UnitsPerSec is the mean units rate over Elapsed.
	UnitsPerSec float64
	// ETA estimates the remaining wall time from the completion rate;
	// 0 while no job has finished.
	ETA time.Duration
}

// NewProgress creates a tracker writing status lines to w (nil for a
// silent tracker that still serves Snapshot). Lines are rate-limited to
// one per second.
func NewProgress(w io.Writer, label string) *Progress {
	p := &Progress{
		w:     w,
		label: label,
		every: time.Second,
		now:   time.Now,
	}
	p.start = p.now()
	p.lastPrint = p.start
	return p
}

// SetUnits installs a sampled work counter (monotonic, process-wide)
// reported as "<name>/s" in status lines.
func (p *Progress) SetUnits(name string, fn func() int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.unitsName = name
	p.unitsFunc = fn
	if fn != nil {
		p.startUnits = fn()
	}
}

// SetMetrics installs a shared metrics registry (see internal/obs);
// status lines gain a live collision-rate figure sampled from it.
// Registries are safe to share across concurrent runs, so one registry
// can aggregate a whole sweep.
func (p *Progress) SetMetrics(m *obs.Metrics) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.metrics = m
}

// SetInterval overrides the minimum delay between status lines.
func (p *Progress) SetInterval(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.every = d
}

// AddTotal grows the expected job count by n.
func (p *Progress) AddTotal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.total += n
	p.maybePrint(false)
}

// JobDone records one successfully finished job.
func (p *Progress) JobDone() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	p.maybePrint(false)
}

// JobFailed records one job that exhausted its attempts.
func (p *Progress) JobFailed() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failed++
	p.maybePrint(false)
}

// JobRetried records one failed attempt that will be retried.
func (p *Progress) JobRetried() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retried++
	p.maybePrint(false)
}

// Snapshot returns a consistent view of the counters.
func (p *Progress) Snapshot() Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.snapshotLocked()
}

func (p *Progress) snapshotLocked() Snapshot {
	s := Snapshot{
		Total:   p.total,
		Done:    p.done,
		Failed:  p.failed,
		Retried: p.retried,
		Elapsed: p.now().Sub(p.start),
	}
	if p.unitsFunc != nil {
		s.Units = p.unitsFunc() - p.startUnits
	}
	if sec := s.Elapsed.Seconds(); sec > 0 {
		s.UnitsPerSec = float64(s.Units) / sec
	}
	if finished := s.Done + s.Failed; finished > 0 && finished < s.Total {
		s.ETA = time.Duration(float64(s.Elapsed) * float64(s.Total-finished) / float64(finished))
	}
	return s
}

// Finish writes a final status line regardless of the rate limit.
func (p *Progress) Finish() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.maybePrint(true)
}

// maybePrint emits a status line if forced or the interval elapsed.
// Callers hold p.mu.
func (p *Progress) maybePrint(force bool) {
	if p.w == nil {
		return
	}
	now := p.now()
	if !force && now.Sub(p.lastPrint) < p.every {
		return
	}
	p.lastPrint = now
	s := p.snapshotLocked()
	var b strings.Builder
	fmt.Fprintf(&b, "[%s] %d/%d jobs", p.label, s.Done, s.Total)
	if s.Failed > 0 {
		fmt.Fprintf(&b, " (%d failed)", s.Failed)
	}
	if s.Retried > 0 {
		fmt.Fprintf(&b, " (%d retried)", s.Retried)
	}
	if p.unitsFunc != nil {
		fmt.Fprintf(&b, " | %s %s | %s %s/s",
			humanCount(float64(s.Units)), p.unitsName,
			humanCount(s.UnitsPerSec), p.unitsName)
	}
	if p.metrics != nil {
		fmt.Fprintf(&b, " | coll %.1f%%", 100*p.metrics.Snapshot().CollisionRate())
	}
	if s.ETA > 0 {
		fmt.Fprintf(&b, " | ETA %s", s.ETA.Round(time.Second))
	}
	fmt.Fprintln(p.w, b.String())
}

// humanCount renders a count with a metric suffix (1234567 → "1.2M").
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
