package radio_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

// Kernel throughput measurement: the CSR slot kernel versus the retained
// reference (seed) slot loop on identical workloads. The headline
// numbers live in BENCH_kernel.json at the repository root; regenerate
// them with
//
//	go test ./internal/radio -run TestKernelBenchJSON \
//	    -benchkernel-out ../../BENCH_kernel.json -timeout 90m
//
// (the test runs with the package directory as its working directory,
// so the relative path climbs back to the repository root)
//
// and guard against regressions with the CI smoke mode
//
//	KERNEL_BENCH_SMOKE=1 go test ./internal/radio -run TestKernelBenchSmoke
//
// which re-measures the smallest size and compares the CSR/reference
// speedup RATIO against the committed baseline (ratios are much more
// machine-independent than absolute slots/s).
//
// The workload uses a deliberately lightweight synthetic protocol (an
// LCG transmit coin tuned to ~1.5 transmitting neighbors per
// neighborhood, decisions spread over the run) so the measurement is of
// the ENGINE — wake-up handling, Send dispatch, resolve, deliver,
// decision detection — rather than of the coloring protocol's own
// arithmetic, which is identical in both engines and would otherwise
// mask the kernel difference (Amdahl). `colorsim -bench-kernel` times
// both kernels under the real protocol on any deployment.

var benchKernelOut = flag.String("benchkernel-out", "", "write kernel throughput results (BENCH_kernel.json) to this path")

// kernelMsg is the synthetic protocol's reusable zero-alloc message.
type kernelMsg struct{ from radio.NodeID }

func (m *kernelMsg) Sender() radio.NodeID { return m.from }
func (m *kernelMsg) Bits(n int) int       { return 16 }

// kernelProto is the synthetic kernel-stress protocol: transmit with
// probability ≈1.5/deg (cheap LCG coin), decide and fall silent after a
// per-node deterministic number of local slots. The struct is packed to
// 32 bytes (two per cache line) so per-node state stays cheap to sweep
// and engine costs dominate the measurement.
type kernelProto struct {
	state    uint64 // LCG state
	thresh   uint32 // transmit iff state>>32 < thresh
	decideAt int32  // local slots until Done
	local    int32
	recvs    int32
	msg      kernelMsg
}

func (p *kernelProto) Start(slot int64) {}
func (p *kernelProto) Send(slot int64) radio.Message {
	p.local++
	if p.local > p.decideAt {
		return nil // decided nodes stay silent
	}
	p.state = p.state*2862933555777941757 + 3037000493
	if uint32(p.state>>32) < p.thresh {
		return &p.msg
	}
	return nil
}
func (p *kernelProto) Recv(slot int64, msg radio.Message) { p.recvs++ }
func (p *kernelProto) Done() bool                         { return p.local >= p.decideAt }

// Quiescent implements radio.Quiescent: once a node has decided it is
// permanently silent (every future Send returns nil before touching the
// coin) and receptions only bump a counter, so the tiled engine may
// drop it from the Send sweep. This is the protocol trait the tiled
// kernel's late-run throughput comes from; the quiescence differential
// test pins that declaring it does not change any Result field.
func (p *kernelProto) Quiescent() bool { return p.local >= p.decideAt }

func benchSplitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// kernelWorkload is one benchmark configuration: a UDG deployment under
// the asynchronous-deployment regime the paper is about — a uniform
// wakeup ramp spanning the whole run (nodes switch on over a long
// deployment window), each node competing for a few hundred slots after
// waking and then falling silent once decided. The measured window thus
// mixes sleeping, contending, and decided nodes in realistic
// proportions instead of lockstep phases.
type kernelWorkload struct {
	n     int
	g     *topology.Deployment
	wake  []int64
	slots int64
}

// spatialRelabel renumbers the deployment's nodes along the shared
// Hilbert-curve relabeling pass (internal/graph) — the exact pass the
// tiled kernel's production path applies, pinned by the 16×16 golden in
// graph/relabel_test.go. Labels only determine memory layout — every
// engine runs the same relabeled graph, so the comparison is unaffected
// — but spatially coherent ids keep the benchmark from measuring the
// cache noise of a random permutation on top of the kernels, and give
// the tiled engine the contiguous spatial blocks its partition assumes.
func spatialRelabel(d *topology.Deployment) {
	n := d.G.N()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, pt := range d.Points {
		xs[i], ys[i] = pt.X, pt.Y
	}
	p := graph.HilbertOrder(xs, ys)
	d.G = p.Apply(d.G)
	pts := make([]geom.Point, n)
	for old, nid := range p.Forward {
		pts[nid] = d.Points[old]
	}
	d.Points = pts
}

func makeKernelWorkload(n int) kernelWorkload {
	d := topology.UDGWithTargetDegree(n, 12, 1)
	spatialRelabel(d)
	// Slot budgets grow ~√n: a deployment ramp is as long as the
	// rollout it models, and larger networks take longer to power up,
	// while each node's competition window stays the protocol constant
	// min(slots/5, 900) below. Growth is sublinear — capped by what a
	// reference-engine pass costs at that size — and the 10M budget is a
	// truncated ramp (the densest regime the tiled engine ever sees,
	// its worst case), kept affordable because a single pass is already
	// 6G node-slots.
	var slots int64
	switch {
	case n <= 10_000:
		slots = 6000
	case n <= 100_000:
		slots = 19000
	case n <= 1_000_000:
		slots = 60000
	default:
		slots = 600
	}
	// Deployment-sweep wake ramp: nodes are switched on in id order —
	// after the Hilbert relabeling, spatial order, exactly the order a
	// region-by-region rollout powers nodes up — with per-node jitter
	// of a tenth of the run. The network's active front is therefore a
	// spatially coherent window that slides across the deployment, the
	// regime the ROADMAP's 10M-node runs live in; a run's working set
	// is the front, not the full node array. (WakeUniform instead
	// models spatially uncorrelated activation: every engine slows on
	// it equally, because the active set becomes a random sample of
	// the id space no layout can make cache-resident.)
	jitter := slots / 10
	wake := make([]int64, n)
	for i := range wake {
		wake[i] = int64(i)*(slots-jitter)/int64(n) +
			int64(benchSplitmix(uint64(i)^0x51EE9)%uint64(jitter))
	}
	return kernelWorkload{
		n:     n,
		g:     d,
		wake:  wake,
		slots: slots,
	}
}

func (w kernelWorkload) protocols() []radio.Protocol {
	protos := make([]radio.Protocol, w.n)
	backing := make([]kernelProto, w.n)
	active := w.slots / 5 // competition window after waking
	if active > 900 {
		active = 900
	}
	for i := 0; i < w.n; i++ {
		deg := uint64(w.g.G.Degree(i))
		if deg < 2 {
			deg = 2
		}
		h := benchSplitmix(uint64(i) ^ 0xBE9C4)
		p := &backing[i]
		p.state = h
		p.thresh = uint32(float64(1<<32) * 1.5 / float64(deg))
		p.decideAt = int32(active/2 + int64(benchSplitmix(h)%uint64(active)))
		p.msg.from = radio.NodeID(i)
		protos[i] = p
	}
	return protos
}

// stepper is the common surface of the engines.
type stepper interface{ Step() bool }

// Engine variants measured by the bench: the retained seed loop, the
// untiled CSR kernel, and the tiled CSR kernel (Hilbert-blocked tiles
// plus the Quiescent seam the synthetic protocol declares).
const (
	benchRef = iota
	benchCSR
	benchTiled
)

// benchTiles is the tile count the tiled column uses: the production
// auto selector, floored at 4 so small sizes (the CI smoke) still
// exercise a real multi-tile partition with a boundary exchange.
func benchTiles(n int) int {
	t := radio.AutoTiles(n)
	if t < 4 {
		t = 4
	}
	return t
}

func (w kernelWorkload) newEngine(mode int) (stepper, error) {
	cfg := radio.Config{
		G: w.g.G, Protocols: w.protocols(), Wake: w.wake,
		MaxSlots: w.slots, NEstimate: w.n,
	}
	switch mode {
	case benchRef:
		return radio.NewReferenceEngine(cfg)
	case benchTiled:
		cfg.Tiles = benchTiles(w.n)
	}
	return radio.NewEngine(cfg)
}

// measure runs the workload to its slot budget and returns slots/second.
func (w kernelWorkload) measure(t testing.TB, mode int) float64 {
	e, err := w.newEngine(mode)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	steps := 0
	for e.Step() {
		steps++
	}
	steps++
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(steps) / elapsed.Seconds()
}

// benchEntry is one size's record in BENCH_kernel.json. Speedup is
// csr/ref, TiledSpeedup tiled/ref — both against the seed loop, so the
// two engine generations are directly comparable.
type benchEntry struct {
	N                int     `json:"n"`
	Edges            int     `json:"edges"`
	Slots            int64   `json:"slots"`
	RefSlotsPerSec   float64 `json:"ref_slots_per_sec"`
	CSRSlotsPerSec   float64 `json:"csr_slots_per_sec"`
	Speedup          float64 `json:"speedup"`
	TiledTiles       int     `json:"tiled_tiles"`
	TiledSlotsPerSec float64 `json:"tiled_slots_per_sec"`
	TiledSpeedup     float64 `json:"tiled_speedup"`
}

type benchFile struct {
	Schema   string       `json:"schema"`
	Workload string       `json:"workload"`
	GOOS     string       `json:"goos"`
	GOARCH   string       `json:"goarch"`
	Entries  []benchEntry `json:"entries"`
}

// measureEntry records one size. Each engine is timed benchSamples
// times, alternating engines so slow machine phases hit both equally,
// and the median is kept: single runs on a shared machine can swing
// ±10%, medians keep the committed numbers reproducible.
const benchSamples = 3

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func measureEntry(t testing.TB, n int) benchEntry {
	w := makeKernelWorkload(n)
	samples := benchSamples
	if n >= 1_000_000 {
		samples = 1 // passes this long (12G+ node-slots) self-average
	}
	var refs, csrs, tiled []float64
	for s := 0; s < samples; s++ {
		refs = append(refs, w.measure(t, benchRef))
		csrs = append(csrs, w.measure(t, benchCSR))
		tiled = append(tiled, w.measure(t, benchTiled))
	}
	ref, csr, til := median(refs), median(csrs), median(tiled)
	return benchEntry{
		N:                n,
		Edges:            w.g.G.M(),
		Slots:            w.slots,
		RefSlotsPerSec:   ref,
		CSRSlotsPerSec:   csr,
		Speedup:          csr / ref,
		TiledTiles:       benchTiles(n),
		TiledSlotsPerSec: til,
		TiledSpeedup:     til / ref,
	}
}

// TestKernelBenchJSON regenerates BENCH_kernel.json. Skipped unless
// -benchkernel-out is given: the full matrix builds a million-node UDG
// and simulates hundreds of millions of node-slots.
func TestKernelBenchJSON(t *testing.T) {
	if *benchKernelOut == "" {
		t.Skip("pass -benchkernel-out <path> to regenerate BENCH_kernel.json")
	}
	out := benchFile{
		Schema:   "bench-kernel/v1",
		Workload: "udg target-degree 12 with hilbert-order node ids (shared internal/graph relabeling pass), deployment-sweep wake ramp in id order with 10% jitter, slot budgets growing ~sqrt(n) (truncated ramp at n=10M), synthetic kernel-stress protocol (p_tx~1.5/deg, per-node competition window of min(slots/5,900) local slots, quiescent after deciding); median of 3 runs per engine (single run at n>=1M)",
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
	}
	for _, n := range []int{10_000, 100_000, 1_000_000, 10_000_000} {
		e := measureEntry(t, n)
		t.Logf("n=%-8d edges=%-9d slots=%-6d ref=%.0f slots/s  csr=%.0f slots/s (%.2fx)  tiled[%d]=%.0f slots/s (%.2fx)",
			e.N, e.Edges, e.Slots, e.RefSlotsPerSec, e.CSRSlotsPerSec, e.Speedup,
			e.TiledTiles, e.TiledSlotsPerSec, e.TiledSpeedup)
		out.Entries = append(out.Entries, e)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchKernelOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestKernelBenchSmoke is the CI regression gate: it re-measures the
// 10k-node workload and fails when the CSR/reference speedup falls more
// than 20% below the committed baseline's. Enabled by KERNEL_BENCH_SMOKE=1.
func TestKernelBenchSmoke(t *testing.T) {
	if os.Getenv("KERNEL_BENCH_SMOKE") == "" {
		t.Skip("set KERNEL_BENCH_SMOKE=1 to run the kernel-bench regression gate")
	}
	raw, err := os.ReadFile("../../BENCH_kernel.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline benchFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	var base *benchEntry
	for i := range baseline.Entries {
		if baseline.Entries[i].N == 10_000 {
			base = &baseline.Entries[i]
		}
	}
	if base == nil {
		t.Fatal("committed BENCH_kernel.json has no n=10000 entry")
	}
	got := measureEntry(t, 10_000)
	t.Logf("baseline csr %.2fx tiled %.2fx, measured csr %.2fx tiled %.2fx (ref %.0f, csr %.0f, tiled %.0f slots/s)",
		base.Speedup, base.TiledSpeedup, got.Speedup, got.TiledSpeedup,
		got.RefSlotsPerSec, got.CSRSlotsPerSec, got.TiledSlotsPerSec)
	if got.Speedup < 0.8*base.Speedup {
		t.Fatalf("kernel speedup regressed >20%%: measured %.2fx vs committed baseline %.2fx",
			got.Speedup, base.Speedup)
	}
	if base.TiledSpeedup > 0 && got.TiledSpeedup < 0.8*base.TiledSpeedup {
		t.Fatalf("tiled kernel speedup regressed >20%%: measured %.2fx vs committed baseline %.2fx",
			got.TiledSpeedup, base.TiledSpeedup)
	}
}

// TestTiledAllocationBudget10M is the scale smoke for the 10M-node
// target: the tiled engine's per-tile scratch is high-water reused, so
// after a warm-up its steady state must simulate slots without growing
// the heap. A 10M-node ring (ids already contiguous, so every tile
// boundary is a real boundary exchange) keeps the graph build cheap;
// the budget is a few dozen slots, bounded well under a minute. Gated
// with the kernel-bench smoke (KERNEL_BENCH_SMOKE=1) and skipped under
// -short.
func TestTiledAllocationBudget10M(t *testing.T) {
	if os.Getenv("KERNEL_BENCH_SMOKE") == "" {
		t.Skip("set KERNEL_BENCH_SMOKE=1 to run the 10M-node allocation smoke")
	}
	if testing.Short() {
		t.Skip("10M-node allocation smoke skipped in -short mode")
	}
	const n = 10_000_000
	const slots = 60
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	g := b.Build()
	w := kernelWorkload{
		n: n, g: &topology.Deployment{G: g},
		wake: radio.WakeUniform(n, slots/2, 1), slots: slots,
	}
	cfg := radio.Config{
		G: g, Protocols: w.protocols(), Wake: w.wake,
		MaxSlots: slots, NEstimate: n, Tiles: -1,
	}
	e, err := radio.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := 0
	for ; warm < slots/2 && e.Step(); warm++ {
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	steps := 0
	for e.Step() {
		steps++
	}
	runtime.ReadMemStats(&after)
	if steps == 0 {
		t.Fatal("no steady-state slots measured")
	}
	mallocs := int64(after.Mallocs - before.Mallocs)
	perSlot := float64(mallocs) / float64(steps)
	t.Logf("10M-node tiled steady state: %d slots, %d mallocs (%.1f/slot)", steps, mallocs, perSlot)
	// The budget is deliberately loose (list growth past any warm-up
	// high-water mark is legitimate) but catches per-node or per-edge
	// allocations instantly: those would show up millions per slot.
	if perSlot > 1000 {
		t.Fatalf("tiled steady state allocates %.0f objects/slot at n=10M; scratch is not being reused", perSlot)
	}
}

// Plain Go benchmarks over the same workload, for -bench comparisons and
// the CI benchmarks-compile smoke. ReportMetric exposes slots/s.
func benchmarkKernel(b *testing.B, mode int) {
	w := makeKernelWorkload(10_000)
	b.ResetTimer()
	start := time.Now()
	slots := 0
	for i := 0; i < b.N; i++ {
		e, err := w.newEngine(mode)
		if err != nil {
			b.Fatal(err)
		}
		for e.Step() {
			slots++
		}
		slots++
	}
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(slots)/d, "slots/s")
	}
}

func BenchmarkKernelCSR(b *testing.B)       { benchmarkKernel(b, benchCSR) }
func BenchmarkKernelTiled(b *testing.B)     { benchmarkKernel(b, benchTiled) }
func BenchmarkKernelReference(b *testing.B) { benchmarkKernel(b, benchRef) }
