package graph

// CSR is the compressed-sparse-row view of a Graph: the flat arrays the
// simulation kernel iterates instead of chasing per-vertex slice headers.
// Row v occupies Edges[Offsets[v]:Offsets[v+1]], sorted ascending; the
// arrays are shared with the Graph and must not be modified.
//
// The layout is the standard one for static sparse structures (every
// neighbor scan is a contiguous read, and sorted rows make membership a
// binary search), which is what lets the slot loop in internal/radio
// stream a transmitter's whole neighborhood through cache with no
// pointer dereferences.
type CSR struct {
	// Offsets has length N+1; Offsets[0] == 0 and Offsets[N] == 2·M.
	Offsets []int32
	// Edges concatenates the sorted neighbor rows.
	Edges []int32
}

// CSR returns the graph's compressed-sparse-row view. The view costs
// nothing to produce: Build already lays the graph out this way.
func (g *Graph) CSR() CSR {
	return CSR{Offsets: g.offsets, Edges: g.edges}
}

// N returns the number of vertices.
func (c CSR) N() int { return len(c.Offsets) - 1 }

// NumEdges returns the number of undirected edges.
func (c CSR) NumEdges() int { return len(c.Edges) / 2 }

// Row returns the sorted neighbor row of v (excluding v itself).
func (c CSR) Row(v int32) []int32 {
	return c.Edges[c.Offsets[v]:c.Offsets[v+1]]
}

// Degree returns δ_v = |N(v)| including v, per the paper's convention.
func (c CSR) Degree(v int) int {
	return int(c.Offsets[v+1]-c.Offsets[v]) + 1
}

// HasEdge reports whether (u, v) is an edge, by binary search over the
// sorted row of u.
func (c CSR) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	lo, hi := c.Offsets[u], c.Offsets[u+1]
	w := int32(v)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if c.Edges[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < c.Offsets[u+1] && c.Edges[lo] == w
}
