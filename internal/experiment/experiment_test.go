package experiment

import (
	"strconv"
	"strings"
	"testing"

	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
)

func quickOpts() Options { return Options{Trials: 1, SizeFactor: 0.3, Seed: 7} }

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Trials != 3 || o.SizeFactor != 1.0 {
		t.Errorf("normalized = %+v", o)
	}
	if Full().Trials <= 0 || Quick().SizeFactor >= Full().SizeFactor {
		t.Error("presets inconsistent")
	}
	if got := (Options{SizeFactor: 0.1}).scale(100, 40); got != 40 {
		t.Errorf("scale floor = %d", got)
	}
	if got := (Options{SizeFactor: 2}.normalized()).scale(100, 40); got != 200 {
		t.Errorf("scale = %d", got)
	}
}

func TestMeasureParams(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.2, Seed: 1})
	par := MeasureParams(d)
	if par.N != 80 || par.Delta != d.G.MaxDegree() {
		t.Errorf("params = %+v", par)
	}
	if par.Kappa1 < 1 || par.Kappa2 < par.Kappa1 {
		t.Errorf("kappa = %d/%d", par.Kappa1, par.Kappa2)
	}
	if err := par.Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunCoreVerifies(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 2})
	par := MeasureParams(d)
	run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), 3, defaultBudget(par), core0)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Correct() {
		t.Fatalf("run incorrect: %v", run.Report)
	}
	if run.Leaders == 0 || len(run.Colors) != d.N() || len(run.TCs) != d.N() {
		t.Errorf("run bookkeeping: leaders=%d", run.Leaders)
	}
}

func TestDefaultBudgetFloor(t *testing.T) {
	d := topology.Ring(10)
	par := MeasureParams(d)
	if defaultBudget(par) < 1_000_000 {
		t.Error("budget below floor")
	}
}

func TestTrialSeedDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for cell := 0; cell < 10; cell++ {
		for trial := 0; trial < 5; trial++ {
			s := trialSeed(1, cell, trial)
			if seen[s] {
				t.Fatalf("duplicate seed %d", s)
			}
			seen[s] = true
		}
	}
}

func TestLookupAndRegistry(t *testing.T) {
	if len(Registry) != 27 {
		t.Fatalf("registry has %d entries, want 27", len(Registry))
	}
	seen := map[string]bool{}
	for _, e := range Registry {
		if e.ID == "" || e.Reproduces == "" || e.Run == nil {
			t.Errorf("incomplete entry %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if Lookup("E3") == nil || Lookup("E3").ID != "E3" {
		t.Error("Lookup(E3) failed")
	}
	if Lookup("nope") != nil {
		t.Error("Lookup(nope) should be nil")
	}
}

// The per-experiment smoke tests run each generator at tiny scale and
// assert the table has the promised shape. These are integration tests
// of the full stack (topology → protocol → verify → stats).

func checkTable(t *testing.T, tb *stats.Table, minRows int) {
	t.Helper()
	if tb.NumRows() < minRows {
		t.Fatalf("table %q has %d rows, want ≥ %d:\n%s", tb.Title, tb.NumRows(), minRows, tb)
	}
	if tb.Title == "" {
		t.Error("untitled table")
	}
}

func TestE1Smoke(t *testing.T)  { checkTable(t, E1Kappa(quickOpts()), 8) }
func TestE6Smoke(t *testing.T)  { checkTable(t, E6Locality(quickOpts()), 2) }
func TestE12Smoke(t *testing.T) { checkTable(t, E12Messages(quickOpts()), 3) }

func TestE26Smoke(t *testing.T) {
	tb := E26TiledKernel(quickOpts())
	checkTable(t, tb, 2)
	// Field-for-field identity between the tiled and untiled runs is
	// the experiment's contract at every scale, including smoke scale.
	if !strings.Contains(tb.String(), "/1") || strings.Contains(tb.String(), "0/1") {
		t.Errorf("tiled run not identical to untiled:\n%s", tb)
	}
}

func TestE27Smoke(t *testing.T) {
	tb := E27RecolorChurn(quickOpts())
	checkTable(t, tb, 2)
	// The experiment's contract: every trial repairs to a proper
	// coloring strictly faster than the cold start converged (the
	// `proper` column counts trials satisfying both), at every scale.
	if !strings.Contains(tb.String(), "/1") || strings.Contains(tb.String(), "0/1") {
		t.Errorf("perturbation repair not strictly faster than cold start:\n%s", tb)
	}
}

func TestE25Smoke(t *testing.T) {
	tb := E25CrossModel(quickOpts())
	checkTable(t, tb, 3)
	// On a matched-noise deployment the graph rule must succeed at
	// small scale; the table's first row carries its correct count.
	if !strings.Contains(tb.String(), "graph") || !strings.Contains(tb.String(), "sinr") {
		t.Errorf("missing model rows:\n%s", tb)
	}
}

func TestE3SmokeAndShape(t *testing.T) {
	tb := E3TimeVsDelta(quickOpts())
	checkTable(t, tb, 6)
	// The last row carries the power fit; at tiny scale we only assert
	// it rendered.
	if !strings.Contains(tb.String(), "T ∝ Δ^") {
		t.Errorf("missing fit row:\n%s", tb)
	}
}

func TestE7Smoke(t *testing.T) {
	tb := E7ParamSweep(Options{Trials: 1, SizeFactor: 0.3, Seed: 3})
	checkTable(t, tb, 7)
	if !strings.Contains(tb.String(), "γ/γ_th") {
		t.Errorf("missing theoretical comparison:\n%s", tb)
	}
}

func TestE9Smoke(t *testing.T) {
	tb := E9Wakeup(quickOpts())
	checkTable(t, tb, len(radio.WakePatterns))
}

func TestE11Smoke(t *testing.T) {
	tb := E11Ablation(quickOpts())
	checkTable(t, tb, 3)
	s := tb.String()
	if !strings.Contains(s, "full algorithm") || !strings.Contains(s, "naive reset rule") {
		t.Errorf("missing variants:\n%s", s)
	}
}

func TestLognHelper(t *testing.T) {
	if logn(2) != 1 || logn(4) != 2 || logn(5) != 3 || logn(1024) != 10 {
		t.Errorf("logn: %v %v %v %v", logn(2), logn(4), logn(5), logn(1024))
	}
}

func TestE2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow matrix")
	}
	checkTable(t, E2Correctness(quickOpts()), 6*len(radio.WakePatterns))
}

func TestE4Smoke(t *testing.T) {
	tb := E4TimeVsN(quickOpts())
	checkTable(t, tb, 4)
	if !strings.Contains(tb.String(), "ln n") {
		t.Errorf("missing log fit:\n%s", tb)
	}
}

func TestE5Smoke(t *testing.T) {
	tb := E5Colors(quickOpts())
	checkTable(t, tb, 6)
	if !strings.Contains(tb.String(), "#colors = ") {
		t.Errorf("missing linear fit:\n%s", tb)
	}
}

func TestE8Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow baselines")
	}
	tb := E8Baselines(quickOpts())
	checkTable(t, tb, 16)
	s := tb.String()
	for _, name := range []string{"ours", "busch", "aloha", "luby(mp)"} {
		if !strings.Contains(s, name) {
			t.Errorf("missing algorithm %s:\n%s", name, s)
		}
	}
}

func TestE10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow metrics sweep")
	}
	checkTable(t, E10UnitBall(quickOpts()), 5)
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite")
	}
	var b strings.Builder
	if err := RunAll(&b, Options{Trials: 1, SizeFactor: 0.25, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, e := range Registry {
		if !strings.Contains(out, e.ID+" — ") {
			t.Errorf("suite output missing %s", e.ID)
		}
	}
}

func TestE13Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow square-graph runs")
	}
	tb := E13Distance2(quickOpts())
	checkTable(t, tb, 2)
	s := tb.String()
	if !strings.Contains(s, "1-hop") || !strings.Contains(s, "distance-2") {
		t.Errorf("missing variants:\n%s", s)
	}
}

func TestE14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow adaptive runs")
	}
	tb := E14AdaptiveDelta(quickOpts())
	checkTable(t, tb, 2)
	if !strings.Contains(tb.String(), "estimated Δ") {
		t.Errorf("missing adaptive row:\n%s", tb)
	}
}

func TestE15Smoke(t *testing.T) {
	tb := E15RandomIDs(quickOpts())
	checkTable(t, tb, 3)
	if !strings.Contains(tb.String(), "P ≤") {
		t.Errorf("missing analytical bound:\n%s", tb)
	}
}

func TestE16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow loss sweep")
	}
	tb := E16MessageLoss(quickOpts())
	checkTable(t, tb, 5)
	if !strings.Contains(tb.String(), "×") {
		t.Errorf("missing slowdown column:\n%s", tb)
	}
}

func TestE17Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow dual-engine runs")
	}
	tb := E17Unaligned(quickOpts())
	checkTable(t, tb, 2)
	if !strings.Contains(tb.String(), "unaligned") {
		t.Errorf("missing unaligned row:\n%s", tb)
	}
}

func TestE18Smoke(t *testing.T) {
	tb := E18MISFromScratch(quickOpts())
	checkTable(t, tb, 3)
	if !strings.Contains(tb.String(), "%") {
		t.Errorf("missing percentage column:\n%s", tb)
	}
}

func TestE19Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow reduction runs")
	}
	tb := E19ColorReduction(quickOpts())
	checkTable(t, tb, 3)
	if !strings.Contains(tb.String(), "after reduction") {
		t.Errorf("missing reduction row:\n%s", tb)
	}
}

func TestE20Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow capture sweep")
	}
	tb := E20CaptureEffect(quickOpts())
	checkTable(t, tb, 4)
}

func TestE21Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow channel sweep")
	}
	tb := E21MultiChannel(quickOpts())
	checkTable(t, tb, 4)
}

func TestE22Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow collection runs")
	}
	tb := E22DataCollection(quickOpts())
	checkTable(t, tb, 3)
	if !strings.Contains(tb.String(), "distance-2") {
		t.Errorf("missing schedule row:\n%s", tb)
	}
}

func TestE23Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow adversary search")
	}
	tb := E23AdversarySearch(quickOpts())
	checkTable(t, tb, 3)
}

func TestE24Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("slow fault sweep")
	}
	tb := E24FaultInjection(quickOpts())
	checkTable(t, tb, 5)
	// The hard-violation column is the safety verdict: it must be 0 at
	// every loss rate.
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	anyDown := false
	for _, ln := range lines[1:] {
		fields := strings.Split(ln, ",")
		if fields[1] != "0" {
			t.Errorf("hard violations in row %q", ln)
		}
		if down, err := strconv.ParseFloat(fields[6], 64); err == nil && down > 0 {
			anyDown = true
		}
	}
	// Vacuity guard: the crash schedule must actually fell nodes — a
	// window past the run's termination slot would leave every row 0.
	if !anyDown {
		t.Error("no row reports nodes down; crash schedule never fired")
	}
}
