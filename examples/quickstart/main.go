// Quickstart: color a small sensor deployment through the public API and
// print the resulting palette.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"radiocolor"
)

func main() {
	// Scatter 50 sensors over a 5×5 field; nodes within distance 1.2
	// can hear each other (unit disk model).
	r := rand.New(rand.NewSource(42))
	points := make([][2]float64, 50)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 5, r.Float64() * 5}
	}

	out, err := radiocolor.ColorUnitDisk(points, 1.2, radiocolor.Options{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("coloring complete: proper=%v complete=%v\n", out.Proper, out.Complete)
	fmt.Printf("graph: Δ=%d κ₁=%d κ₂=%d\n", out.Delta, out.Kappa1, out.Kappa2)
	fmt.Printf("palette: %d colors, max color %d (O(Δ) bound)\n", out.NumColors, out.MaxColor)
	fmt.Printf("time: all nodes decided within %d slots of their wake-up\n", out.MaxLatency)
	fmt.Printf("leaders (color 0): %v\n", out.Leaders)
	for v := 0; v < 10; v++ {
		fmt.Printf("  node %2d @ (%.2f, %.2f) → color %d\n",
			v, points[v][0], points[v][1], out.Colors[v])
	}
	fmt.Println("  ... (remaining nodes omitted)")
}
