// Package fault is the deterministic fault-injection layer of the
// reproduction. The simulator's reception rule (a listener decodes a
// slot iff exactly one neighbor transmits) models a *perfectly
// reliable* channel; this package supplies the harsh part of the
// "unstructured radio network" premise: lossy links, burst fading,
// fail-stop node crashes (with optional restart), adversarial jammers,
// and clock skew.
//
// A Profile describes the faults declaratively and composes freely.
// Compile turns it into an Injector — an immutable, allocation-free
// oracle the slot kernel consults while running. Every decision the
// Injector makes is a pure function of (profile seed, slot, link), so
// fault runs are bit-reproducible for a fixed seed at any worker
// count, exactly like the kernel's own DropProb/CaptureProb coins.
package fault

import (
	"errors"
	"fmt"
	"sort"
)

// Profile declares a composable set of channel and node faults. The
// zero value injects nothing. All randomness derives from Seed; two
// runs with equal profiles and seeds inject identical faults.
type Profile struct {
	// Seed drives every probabilistic fault coin. A zero seed is a
	// valid (fixed) stream, so callers that want per-run variation
	// should derive Seed from their run seed.
	Seed int64
	// Loss is the per-link i.i.d. probability that an otherwise
	// successful reception is dropped by the fault layer (independent
	// of, and applied before, the kernel's own DropProb).
	Loss float64
	// Burst, when non-nil, adds windowed Gilbert-Elliott style burst
	// loss on top of Loss.
	Burst *Burst
	// Crashes schedules fail-stop node failures. At most one entry per
	// node.
	Crashes []Crash
	// Jammers corrupt slots at their victim receivers.
	Jammers []Jammer
	// SkewProb is the probability that a node's slot boundary is
	// offset by half a slot (the paper's unsynchronized-clock model;
	// runs through the half-slot engine in internal/radio/unaligned.go).
	SkewProb float64
}

// Burst approximates a Gilbert-Elliott two-state loss channel with a
// windowed model: time is divided into windows of Window slots, and
// each (link, window) pair is independently in the bad state with
// probability PBad. Receptions in a bad window are lost with
// probability LossBad, otherwise with probability LossGood. The
// windowed form trades the Markov chain's geometric sojourn times for
// a pure (seed, link, window) coin, which keeps fault decisions
// order-free and bit-identical at any worker count; Window plays the
// role of the mean burst length.
type Burst struct {
	// PBad is the stationary probability that a window is bad.
	PBad float64
	// Window is the burst window length in slots (>= 1).
	Window int64
	// LossBad is the loss probability inside bad windows
	// (0 means 1, i.e. total fade).
	LossBad float64
	// LossGood is the loss probability inside good windows.
	LossGood float64
}

// Crash fails node Node at the start of slot At: it stops
// transmitting, receiving, and participating, and if it was awake it
// goes silent immediately. A crashed node keeps no protocol state —
// if Restart is set the node rejoins at that slot with cleared state
// (the protocol's Reset is invoked), as if waking for the first time.
type Crash struct {
	// Node is the victim.
	Node int
	// At is the crash slot (>= 0).
	At int64
	// Restart, when > At, revives the node at that slot with cleared
	// protocol state. Zero means the node never comes back.
	Restart int64
}

// Jammer corrupts slots at a set of victim receivers: any slot it hits
// is undecodable at those nodes regardless of how many neighbors
// transmitted (the adversary injects noise above the capture
// threshold). It models an external interferer, so it does not occupy
// a node or transmit protocol messages.
type Jammer struct {
	// Nodes are the victim receivers. Empty means every node.
	Nodes []int
	// From is the first jammed slot.
	From int64
	// Until, when > 0, is the first slot no longer jammed.
	Until int64
	// Period, when > 0, makes the jammer periodic: of every Period
	// slots (counted from From) the first Duty are jammed.
	Period int64
	// Duty is the jammed prefix of each period (defaults to Period,
	// i.e. continuous).
	Duty int64
	// Prob, when in (0,1), jams each otherwise-hit (slot, victim) pair
	// with that probability. Zero or >= 1 means always.
	Prob float64
}

// Permute returns a copy of the profile with every node reference
// mapped through forward (a relabeling's old→new map): crash victims
// and jammer victim lists move with their nodes, slot schedules and
// rates are unchanged. Used by the tiled kernel's relabeling pass so a
// fault aimed at a caller-visible node keeps hitting the same physical
// node after renumbering. The probabilistic coins (Loss, Burst, Prob
// jammers, skew) hash node ids, so a permuted profile draws different
// coins than the original — the schedule is covariant, the sampled
// chaos is a fresh deterministic stream.
func (p *Profile) Permute(forward []int32) *Profile {
	if p == nil {
		return nil
	}
	out := *p
	if len(p.Crashes) > 0 {
		out.Crashes = make([]Crash, len(p.Crashes))
		for i, c := range p.Crashes {
			if c.Node >= 0 && c.Node < len(forward) {
				c.Node = int(forward[c.Node])
			}
			out.Crashes[i] = c
		}
	}
	if len(p.Jammers) > 0 {
		out.Jammers = make([]Jammer, len(p.Jammers))
		for i, j := range p.Jammers {
			if len(j.Nodes) > 0 {
				nodes := make([]int, len(j.Nodes))
				for k, v := range j.Nodes {
					if v >= 0 && v < len(forward) {
						nodes[k] = int(forward[v])
					} else {
						nodes[k] = v
					}
				}
				j.Nodes = nodes
			}
			out.Jammers[i] = j
		}
	}
	return &out
}

// Validate checks the profile against n nodes (n <= 0 skips node-range
// checks, for early validation before the graph is known).
func (p *Profile) Validate(n int) error {
	if p == nil {
		return nil
	}
	if p.Loss < 0 || p.Loss > 1 {
		return fmt.Errorf("fault: Loss %g outside [0,1]", p.Loss)
	}
	if p.SkewProb < 0 || p.SkewProb > 1 {
		return fmt.Errorf("fault: SkewProb %g outside [0,1]", p.SkewProb)
	}
	if b := p.Burst; b != nil {
		if b.PBad < 0 || b.PBad > 1 {
			return fmt.Errorf("fault: Burst.PBad %g outside [0,1]", b.PBad)
		}
		if b.Window < 1 {
			return fmt.Errorf("fault: Burst.Window %d < 1", b.Window)
		}
		if b.LossBad < 0 || b.LossBad > 1 {
			return fmt.Errorf("fault: Burst.LossBad %g outside [0,1]", b.LossBad)
		}
		if b.LossGood < 0 || b.LossGood > 1 {
			return fmt.Errorf("fault: Burst.LossGood %g outside [0,1]", b.LossGood)
		}
	}
	seen := make(map[int]bool, len(p.Crashes))
	for i, c := range p.Crashes {
		if c.Node < 0 || (n > 0 && c.Node >= n) {
			return fmt.Errorf("fault: Crashes[%d].Node %d out of range [0,%d)", i, c.Node, n)
		}
		if seen[c.Node] {
			return fmt.Errorf("fault: Crashes[%d]: duplicate crash for node %d", i, c.Node)
		}
		seen[c.Node] = true
		if c.At < 0 {
			return fmt.Errorf("fault: Crashes[%d].At %d < 0", i, c.At)
		}
		if c.Restart != 0 && c.Restart <= c.At {
			return fmt.Errorf("fault: Crashes[%d].Restart %d must exceed At %d", i, c.Restart, c.At)
		}
	}
	for i, j := range p.Jammers {
		for _, v := range j.Nodes {
			if v < 0 || (n > 0 && v >= n) {
				return fmt.Errorf("fault: Jammers[%d]: victim %d out of range [0,%d)", i, v, n)
			}
		}
		if j.From < 0 {
			return fmt.Errorf("fault: Jammers[%d].From %d < 0", i, j.From)
		}
		if j.Until != 0 && j.Until <= j.From {
			return fmt.Errorf("fault: Jammers[%d].Until %d must exceed From %d", i, j.Until, j.From)
		}
		if j.Period < 0 {
			return fmt.Errorf("fault: Jammers[%d].Period %d < 0", i, j.Period)
		}
		if j.Duty < 0 || (j.Period > 0 && j.Duty > j.Period) {
			return fmt.Errorf("fault: Jammers[%d].Duty %d outside [0,Period=%d]", i, j.Duty, j.Period)
		}
		if j.Prob < 0 || j.Prob > 1 {
			return fmt.Errorf("fault: Jammers[%d].Prob %g outside [0,1]", i, j.Prob)
		}
	}
	return nil
}

// Active reports whether the profile injects anything at all.
func (p *Profile) Active() bool {
	return p != nil && (p.Loss > 0 || p.Burst != nil || len(p.Crashes) > 0 ||
		len(p.Jammers) > 0 || p.SkewProb > 0)
}

// EventKind tags a compiled node-lifecycle event.
type EventKind uint8

const (
	// EventCrash fail-stops the node at Event.Slot.
	EventCrash EventKind = iota
	// EventRestart revives a crashed node with cleared state.
	EventRestart
)

// Event is one compiled node-lifecycle change, ordered by slot.
type Event struct {
	// Slot is when the event takes effect (at the start of the slot).
	Slot int64
	// Node is the subject.
	Node int32
	// Kind is crash or restart.
	Kind EventKind
	// Final marks a crash with no scheduled restart (the node is down
	// for the rest of the run).
	Final bool
}

// jammer is the compiled form: victims as a bitmap for O(1) lookup.
type jammer struct {
	victims []bool // nil = everyone
	from    int64
	until   int64 // 0 = forever
	period  int64
	duty    int64
	prob    float64 // 0 = always
}

// Injector is a compiled, immutable fault oracle. Its predicates are
// pure functions of (seed, slot, link) and perform no allocation, so
// the slot kernel can consult them from any worker.
type Injector struct {
	seed    int64
	loss    float64
	burst   *Burst
	events  []Event
	jammers []jammer
	skew    float64
	n       int
}

// Compile validates the profile against an n-node network and builds
// its Injector. A nil or inactive profile compiles to a nil Injector.
func (p *Profile) Compile(n int) (*Injector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("fault: Compile needs n > 0, got %d", n)
	}
	if err := p.Validate(n); err != nil {
		return nil, err
	}
	if !p.Active() {
		return nil, nil
	}
	inj := &Injector{seed: p.Seed, loss: p.Loss, skew: p.SkewProb, n: n}
	if p.Burst != nil {
		b := *p.Burst
		if b.LossBad == 0 {
			b.LossBad = 1
		}
		inj.burst = &b
	}
	for _, c := range p.Crashes {
		inj.events = append(inj.events, Event{
			Slot: c.At, Node: int32(c.Node), Kind: EventCrash, Final: c.Restart == 0,
		})
		if c.Restart != 0 {
			inj.events = append(inj.events, Event{
				Slot: c.Restart, Node: int32(c.Node), Kind: EventRestart,
			})
		}
	}
	sort.Slice(inj.events, func(a, b int) bool {
		if inj.events[a].Slot != inj.events[b].Slot {
			return inj.events[a].Slot < inj.events[b].Slot
		}
		return inj.events[a].Node < inj.events[b].Node
	})
	for _, j := range p.Jammers {
		cj := jammer{from: j.From, until: j.Until, period: j.Period, duty: j.Duty, prob: j.Prob}
		if cj.period > 0 && cj.duty == 0 {
			cj.duty = cj.period
		}
		if cj.prob >= 1 {
			cj.prob = 0
		}
		if len(j.Nodes) > 0 {
			cj.victims = make([]bool, n)
			for _, v := range j.Nodes {
				cj.victims[v] = true
			}
		}
		inj.jammers = append(inj.jammers, cj)
	}
	return inj, nil
}

// Distinct stream constants keep the loss, burst-state, jam, and skew
// coins independent of each other and of the kernel's drop/capture
// streams (which use 0x9e3779b97f4a7c15 / 0xbf58476d1ce4e5b9).
const (
	streamLoss  = 0x2545f4914f6cdd1d
	streamBurst = 0x9e6c63d0876a9a35
	streamJam   = 0xd1342543de82ef95
	streamSkew  = 0xaef17502108ef2d9
)

// splitmix64 is the same finalizer the kernel uses for its stateless
// coins (engine.go); reusing it keeps the fault layer's determinism
// argument identical to the kernel's.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// coin maps a hashed key to [0,1).
func coin(key uint64) float64 {
	return float64(splitmix64(key)>>11) / (1 << 53)
}

// Lost reports whether the fault layer drops an otherwise successful
// reception at node to from node from in the given slot. Pure in
// (seed, slot, from, to); no allocation.
func (inj *Injector) Lost(slot int64, from, to int32) bool {
	if inj.loss > 0 {
		k := uint64(inj.seed)*0x9e3779b97f4a7c15 ^ uint64(slot)*streamLoss ^
			uint64(uint32(from))<<32 ^ uint64(uint32(to))
		if coin(k) < inj.loss {
			return true
		}
	}
	if b := inj.burst; b != nil {
		w := slot / b.Window
		kw := uint64(inj.seed)*0x9e3779b97f4a7c15 ^ uint64(w)*streamBurst ^
			uint64(uint32(from))<<32 ^ uint64(uint32(to))
		p := b.LossGood
		if coin(kw^streamBurst) < b.PBad {
			p = b.LossBad
		}
		if p > 0 {
			k := kw ^ uint64(slot)*streamLoss
			if p >= 1 || coin(k) < p {
				return true
			}
		}
	}
	return false
}

// Jammed reports whether the given slot is corrupted at receiver to.
// A jammed slot is undecodable no matter how many neighbors transmit.
// Pure in (seed, slot, to); no allocation.
func (inj *Injector) Jammed(slot int64, to int32) bool {
	for i := range inj.jammers {
		j := &inj.jammers[i]
		if slot < j.from || (j.until > 0 && slot >= j.until) {
			continue
		}
		if j.victims != nil && !j.victims[to] {
			continue
		}
		if j.period > 0 && (slot-j.from)%j.period >= j.duty {
			continue
		}
		if j.prob > 0 {
			k := uint64(inj.seed)*0x9e3779b97f4a7c15 ^ uint64(slot)*streamJam ^
				uint64(uint32(to)) ^ uint64(i)<<40
			if coin(k) >= j.prob {
				continue
			}
		}
		return true
	}
	return false
}

// Events returns the compiled crash/restart schedule, sorted by slot
// then node. Callers must not mutate it.
func (inj *Injector) Events() []Event { return inj.events }

// HasSkew reports whether the profile asks for clock skew; such runs
// must go through the half-slot engine.
func (inj *Injector) HasSkew() bool { return inj != nil && inj.skew > 0 }

// SkewOffsets derives the per-node half-slot offsets (0 or 1) for the
// unaligned engine, deterministically from the profile seed.
func (inj *Injector) SkewOffsets(n int) []int8 {
	off := make([]int8, n)
	if inj.skew <= 0 {
		return off
	}
	for i := range off {
		k := uint64(inj.seed)*0x9e3779b97f4a7c15 ^ uint64(i)*streamSkew
		if coin(k) < inj.skew {
			off[i] = 1
		}
	}
	return off
}

// N returns the network size the injector was compiled for.
func (inj *Injector) N() int { return inj.n }

// ErrNeedsReset is returned by consumers that require restart support
// from a protocol that cannot clear its state.
var ErrNeedsReset = errors.New("fault: profile schedules a restart but the protocol has no Reset")
