package monitor

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

func TestMonitorCleanRun(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 70, Side: 5, Radius: 1.2, Seed: 2})
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
	par := core.Practical(d.N(), delta, k.K1, k.K2)
	nodes, protos := core.Nodes(d.N(), 7, par, core.Ablation{})
	m := New(d.G, nodes)
	m.StallSlots = 10 * par.Threshold()
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 5_000_000, Observer: m,
	})
	if err != nil || !res.AllDone {
		t.Fatalf("run failed: %v %v", err, res)
	}
	if len(m.Violations()) != 0 {
		t.Errorf("online violations: %v", m.Violations())
	}
	if len(m.Stalls()) != 0 {
		t.Errorf("stalls: %v", m.Stalls())
	}
	if m.Decided() != d.N() {
		t.Errorf("decided = %d", m.Decided())
	}
}

func TestMonitorCatchesViolationOnline(t *testing.T) {
	// Force a violation: scale the constants way down so neighbors
	// decide the same class before hearing each other. The monitor must
	// report at decision time.
	d := topology.Clique(8)
	par := core.Practical(d.N(), d.G.MaxDegree(), 1, 2).Scale(0.1)
	nodes, protos := core.Nodes(d.N(), 3, par, core.Ablation{NoCompetitorList: true, NaiveReset: false})
	m := New(d.G, nodes)
	_, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 400_000, Observer: m,
	})
	if err != nil {
		t.Fatal(err)
	}
	// End-state check must agree with the online view.
	conflict := false
	for v := 0; v < d.N(); v++ {
		for _, u := range d.G.Adj(v) {
			if nodes[v].Color() >= 0 && nodes[v].Color() == nodes[u].Color() {
				conflict = true
			}
		}
	}
	if conflict != (len(m.Violations()) > 0) {
		t.Errorf("online/offline disagreement: conflict=%v, monitor=%v", conflict, m.Violations())
	}
	for _, viol := range m.Violations() {
		if viol.String() == "" {
			t.Error("empty violation string")
		}
	}
}

func TestMonitorStallDetection(t *testing.T) {
	// A node that never decides: stall warnings fire periodically.
	g := graph.NewBuilder(1).Build()
	par := core.Practical(1, 2, 1, 2)
	nodes, _ := core.Nodes(1, 1, par, core.Ablation{})
	m := New(g, nodes)
	m.StallSlots = 10
	for slot := int64(0); slot < 100; slot++ {
		m.OnSlot(slot)
	}
	if len(m.Stalls()) == 0 {
		t.Fatal("no stall warnings for a silent run")
	}
	// Warnings are rate-limited to one per StallSlots window.
	if len(m.Stalls()) > 11 {
		t.Errorf("too many stall warnings: %d", len(m.Stalls()))
	}
}

func TestMonitorPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	g := graph.NewBuilder(2).Build()
	New(g, nil)
}
