package adversary

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

func smallDeployment() (*topology.Deployment, core.Params) {
	d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 4.5, Radius: 1.2, Seed: 2})
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
	return d, core.Practical(d.N(), delta, k.K1, k.K2)
}

func TestSearchFindsValidSchedule(t *testing.T) {
	d, par := smallDeployment()
	res := Search(d, par, Config{Evals: 6, Seed: 3})
	if res.Evals < 1 || res.Evals > 6 {
		t.Fatalf("evals = %d", res.Evals)
	}
	if len(res.BestWake) != d.N() {
		t.Fatalf("schedule length %d", len(res.BestWake))
	}
	for _, w := range res.BestWake {
		if w < 0 {
			t.Fatal("negative wake slot")
		}
	}
	if res.BestScore <= 0 {
		t.Fatalf("score = %d", res.BestScore)
	}
	// The protocol should survive the adversary at practical constants.
	if res.Broken != 0 {
		t.Logf("adversary broke the protocol (%d schedules) — acceptable whp event, check constants", res.Broken)
	}
}

func TestSearchDeterministic(t *testing.T) {
	d, par := smallDeployment()
	a := Search(d, par, Config{Evals: 5, Seed: 9})
	b := Search(d, par, Config{Evals: 5, Seed: 9})
	if a.BestScore != b.BestScore || a.Broken != b.Broken {
		t.Errorf("search not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.BestWake {
		if a.BestWake[i] != b.BestWake[i] {
			t.Fatal("schedules differ")
		}
	}
}

func TestSearchNotWeakerThanSynchronous(t *testing.T) {
	// The adversary's best schedule should be at least as bad as the
	// trivial synchronous one (it can always find staggered trouble).
	d, par := smallDeployment()
	nodes, protos := core.Nodes(d.N(), 5, par, core.Ablation{})
	sync, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 10_000_000, NEstimate: par.N,
	})
	if err != nil || !sync.AllDone {
		t.Fatalf("sync baseline failed: %v", err)
	}
	_ = nodes
	res := Search(d, par, Config{Evals: 10, Seed: 4})
	if res.Broken == 0 && res.BestScore < sync.MaxLatency()/2 {
		t.Errorf("adversary best %d far below sync baseline %d", res.BestScore, sync.MaxLatency())
	}
}

func TestSearchFindsBreakageWithWeakConstants(t *testing.T) {
	// With constants scaled far below the safe plateau (E7: < 0.25× is
	// reliably broken), the adversary should find an improper schedule
	// quickly — validating that Broken actually fires.
	d, par := smallDeployment()
	weak := par.Scale(0.15)
	res := Search(d, weak, Config{Evals: 8, Seed: 6})
	if res.Broken == 0 {
		t.Error("adversary failed to break deliberately unsafe constants")
	}
	if len(res.BestWake) != d.N() {
		t.Error("broken schedule not recorded")
	}
}

func TestConfigDefaults(t *testing.T) {
	d, par := smallDeployment()
	res := Search(d, par, Config{Evals: 2, Seed: 1})
	if res == nil || res.Evals != 2 {
		t.Fatalf("defaults broken: %+v", res)
	}
}
