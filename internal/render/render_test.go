package render

import (
	"strings"
	"testing"

	"radiocolor/internal/topology"
)

func TestSVGBasic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 30, Side: 4, Radius: 1.2, Seed: 1})
	colors := make([]int32, d.N())
	for i := range colors {
		colors[i] = int32(i % 7)
	}
	var b strings.Builder
	if err := SVG(&b, d, colors, NewOptions()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a well-formed SVG shell")
	}
	if got := strings.Count(out, "<circle"); got != d.N() {
		t.Errorf("%d circles for %d nodes", got, d.N())
	}
	if got := strings.Count(out, "<line"); got != d.G.M() {
		t.Errorf("%d lines for %d edges", got, d.G.M())
	}
	// Leaders (color 0) get the highlight ring.
	if !strings.Contains(out, "#d4a017") {
		t.Error("leader ring missing")
	}
}

func TestSVGWallsAndUncolored(t *testing.T) {
	d := topology.BIGWithWalls(topology.UDGConfig{N: 25, Side: 4, Radius: 1.2, Seed: 2}, 5)
	var b strings.Builder
	if err := SVG(&b, d, nil, Options{WidthPx: 400, NodeRadiusPx: 3, DrawLinks: false}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// 5 walls drawn even with links off.
	if got := strings.Count(out, "<line"); got != 5 {
		t.Errorf("%d lines, want 5 walls only", got)
	}
	if !strings.Contains(out, `fill="white"`) {
		t.Error("uncolored nodes should be hollow")
	}
}

func TestSVGLabels(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 5, Side: 2, Radius: 1, Seed: 3})
	var b strings.Builder
	opt := NewOptions()
	opt.Labels = true
	if err := SVG(&b, d, nil, opt); err != nil {
		t.Fatal(err)
	}
	if strings.Count(b.String(), "<text") != 5 {
		t.Error("labels missing")
	}
}

func TestSVGErrors(t *testing.T) {
	if err := SVG(&strings.Builder{}, topology.Ring(5), nil, NewOptions()); err == nil {
		t.Error("non-geometric deployment accepted")
	}
	d := topology.RandomUDG(topology.UDGConfig{N: 5, Side: 2, Radius: 1, Seed: 1})
	if err := SVG(&strings.Builder{}, d, []int32{1}, NewOptions()); err == nil {
		t.Error("color length mismatch accepted")
	}
}

func TestPaletteStability(t *testing.T) {
	if paletteColor(-1) != "none" {
		t.Error("negative color should map to none")
	}
	if paletteColor(0) != "#111111" {
		t.Error("leader color should be black")
	}
	if paletteColor(3) != paletteColor(3) {
		t.Error("palette not deterministic")
	}
	if paletteColor(3) == paletteColor(4) {
		t.Error("adjacent colors identical")
	}
}

func TestSVGDegenerateGeometry(t *testing.T) {
	// All nodes at the same point: spans clamp to 1, no division by 0.
	d := topology.GridGraph(1, 3, 0, 0.5)
	var b strings.Builder
	if err := SVG(&b, d, nil, NewOptions()); err != nil {
		t.Fatal(err)
	}
}
