package aloha

import (
	"testing"

	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func colorsOf(nodes []*Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

func run(t *testing.T, d *topology.Deployment, wake []int64, seed int64) ([]*Node, *radio.Result) {
	t.Helper()
	par := DefaultParams(d.N(), d.G.MaxDegree())
	nodes, protos := Nodes(d.N(), seed, par)
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: wake, MaxSlots: 3_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

func TestAlohaTerminatesQuickly(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.2, Seed: 1})
	_, res := run(t, d, radio.WakeSynchronous(d.N()), 3)
	if !res.AllDone {
		t.Fatal("did not terminate")
	}
	// Budget: listen + quiet + conflict slack, all O(Δ log n).
	par := DefaultParams(d.N(), d.G.MaxDegree())
	budget := 20 * (par.ListenSlots + par.QuietSlots)
	if res.MaxLatency() > budget {
		t.Errorf("latency %d exceeds budget %d", res.MaxLatency(), budget)
	}
}

func TestAlohaUsuallyCorrectSynchronous(t *testing.T) {
	// On small synchronous networks, the heuristic usually works; assert
	// a majority of seeds produce proper colorings so we notice if the
	// implementation degrades to nonsense.
	ok := 0
	for seed := int64(0); seed < 8; seed++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 5, Radius: 1.1, Seed: seed})
		nodes, res := run(t, d, radio.WakeSynchronous(d.N()), seed+20)
		if res.AllDone && verify.Check(d.G, colorsOf(nodes)).OK() {
			ok++
		}
	}
	if ok < 5 {
		t.Errorf("only %d/8 synchronous runs correct; heuristic degraded", ok)
	}
}

func TestAlohaUnsoundUnderAsyncWakeup(t *testing.T) {
	// The decision rule ignores sleeping neighbors: with sequential
	// wake-up spread far apart, early deciders cannot see late
	// claimants. We assert that at least one seed in the batch yields an
	// improper coloring — this is the documented failure mode the
	// paper's machinery prevents (its own correctness holds under every
	// wake-up pattern).
	bad := 0
	for seed := int64(0); seed < 10; seed++ {
		d := topology.Clique(12)
		par := DefaultParams(d.N(), d.G.MaxDegree())
		wake := radio.WakeSequential(d.N(), par.ListenSlots+par.QuietSlots+10)
		nodes, res := run(t, d, wake, seed)
		if !res.AllDone {
			continue
		}
		if !verify.Check(d.G, colorsOf(nodes)).OK() {
			bad++
		}
	}
	if bad == 0 {
		t.Error("expected at least one improper coloring under adversarial wake-up; strawman is unexpectedly sound")
	}
}

func TestAlohaDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 40, Side: 4, Radius: 1.2, Seed: 2})
	a, _ := run(t, d, radio.WakeSynchronous(d.N()), 7)
	b, _ := run(t, d, radio.WakeSynchronous(d.N()), 7)
	for i := range a {
		if a[i].Color() != b[i].Color() {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}

func TestAlohaAccessors(t *testing.T) {
	v := New(0, radio.NodeRand(1, 0), Params{Delta: 4, ListenSlots: 2, QuietSlots: 2})
	if v.Color() != -1 || v.Done() || v.Redraws() != 0 {
		t.Error("fresh node state wrong")
	}
	v.Start(0)
	if v.Send(0) != nil || v.Send(1) != nil {
		t.Error("listening node transmitted")
	}
	if v.claim != 0 {
		t.Errorf("claim = %d, want 0 (nothing heard)", v.claim)
	}
}

func TestAlohaSmallestUnheard(t *testing.T) {
	v := New(0, radio.NodeRand(1, 0), DefaultParams(16, 4))
	v.heard[0] = true
	v.heard[1] = true
	v.heard[3] = true
	if got := v.smallestUnheard(); got != 2 {
		t.Errorf("smallestUnheard = %d, want 2", got)
	}
}

func TestAlohaYieldRule(t *testing.T) {
	v := New(3, radio.NodeRand(1, 3), Params{Delta: 4, ListenSlots: 1, QuietSlots: 100})
	v.Start(0)
	v.Send(0) // ends listening, claims 0
	v.Send(1)
	if v.quiet != 1 {
		t.Fatalf("quiet = %d", v.quiet)
	}
	// Conflict from higher id: yield.
	v.Recv(2, &announce{From: 9, Color: 0})
	if v.claim == 0 || v.Redraws() != 1 || v.quiet != 0 {
		t.Errorf("yield failed: claim=%d redraws=%d quiet=%d", v.claim, v.Redraws(), v.quiet)
	}
	// Conflict from lower id: hold claim, but restart window.
	v.Send(3)
	cur := v.claim
	v.Recv(4, &announce{From: 1, Color: cur})
	if v.claim != cur || v.quiet != 0 {
		t.Errorf("hold failed: claim=%d quiet=%d", v.claim, v.quiet)
	}
	// Foreign colors only get recorded.
	v.Recv(5, &announce{From: 1, Color: 77})
	if !v.heard[77] {
		t.Error("heard set not updated")
	}
}

func TestDefaultParamsClamp(t *testing.T) {
	p := DefaultParams(2, 0)
	if p.Delta != 2 || p.ListenSlots < 1 || p.QuietSlots < 1 {
		t.Errorf("params = %+v", p)
	}
}

func TestAnnounceBits(t *testing.T) {
	a := &announce{From: 2, Color: 5}
	if a.Sender() != 2 {
		t.Error("Sender wrong")
	}
	if b := a.Bits(500); b <= 0 || b > 80 {
		t.Errorf("Bits = %d", b)
	}
	if b := a.Bits(0); b <= 0 {
		t.Errorf("Bits(0) = %d", b)
	}
}
