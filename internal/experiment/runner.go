// Package experiment defines the reproducible experiment suite E1–E20
// indexed in DESIGN.md: each experiment regenerates the quantitative
// content of one of the paper's figures, theorems, or empirical claims
// as an aligned table. cmd/experiments prints the full suite (recorded
// in EXPERIMENTS.md); bench_test.go wraps each experiment in a
// testing.B benchmark.
package experiment

import (
	"fmt"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/monitor"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// Options scales the suite. The zero value is upgraded to Full.
type Options struct {
	// Trials is the number of repetitions per table cell.
	Trials int
	// SizeFactor scales network sizes (1.0 = the sizes recorded in
	// EXPERIMENTS.md; benchmarks use smaller factors).
	SizeFactor float64
	// Seed is the master seed; every trial derives its own.
	Seed int64
	// Parallel is the worker count trial jobs run on (via the fleet
	// engine); 0 or 1 keeps the sequential path. Tables are
	// byte-identical at any worker count: every trial derives its own
	// seed and results are folded in deterministic job order.
	Parallel int
	// Progress, when non-nil, receives live job counts from the trial
	// batches (see monitor.Progress and cmd/experiments).
	Progress *monitor.Progress
	// ChannelStats appends per-cell channel columns (collision rate) to
	// the tables that support them. Off by default so the recorded
	// EXPERIMENTS.md tables stay byte-identical.
	ChannelStats bool
}

// Full returns the options used to produce EXPERIMENTS.md.
func Full() Options { return Options{Trials: 3, SizeFactor: 1.0, Seed: 1} }

// Quick returns reduced options for benchmarks and smoke tests.
func Quick() Options { return Options{Trials: 1, SizeFactor: 0.4, Seed: 1} }

func (o Options) normalized() Options {
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.SizeFactor <= 0 {
		o.SizeFactor = 1.0
	}
	return o
}

// scale applies the size factor with a floor.
func (o Options) scale(n, floor int) int {
	v := int(float64(n) * o.SizeFactor)
	if v < floor {
		v = floor
	}
	return v
}

// MeasureParams inspects a deployment and returns practical algorithm
// parameters with the measured Δ and κ values — the "rough bounds known
// at deployment time" of the model.
func MeasureParams(d *topology.Deployment) core.Params {
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
	return core.Practical(d.N(), delta, k.K1, k.K2)
}

// CoreRun is the outcome of one protocol execution.
type CoreRun struct {
	Deployment *topology.Deployment
	Params     core.Params
	Nodes      []*core.Node
	Radio      *radio.Result
	Colors     []int32
	TCs        []int32
	Report     *verify.Report
	Leaders    int
}

// Correct reports completion with a proper coloring.
func (r *CoreRun) Correct() bool { return r.Radio.AllDone && r.Report.OK() }

// RunCore executes the paper's algorithm on d and verifies the result.
func RunCore(d *topology.Deployment, par core.Params, wake []int64, seed int64, maxSlots int64, abl core.Ablation) (*CoreRun, error) {
	nodes, protos := core.Nodes(d.N(), seed, par, abl)
	res, err := radio.Run(radio.Config{
		G:         d.G,
		Protocols: protos,
		Wake:      wake,
		MaxSlots:  maxSlots,
		NEstimate: par.N,
	})
	if err != nil {
		return nil, fmt.Errorf("experiment: %s: %w", d.Name, err)
	}
	run := &CoreRun{
		Deployment: d,
		Params:     par,
		Nodes:      nodes,
		Radio:      res,
		Colors:     make([]int32, d.N()),
		TCs:        make([]int32, d.N()),
	}
	for i, v := range nodes {
		run.Colors[i] = v.Color()
		run.TCs[i] = v.TC()
		if v.IsLeader() {
			run.Leaders++
		}
	}
	run.Report = verify.Check(d.G, run.Colors)
	return run, nil
}

// defaultBudget is the slot budget for a run expected to complete: a
// generous multiple of the O(κ₂⁴Δ log n)-flavored bound.
func defaultBudget(par core.Params) int64 {
	b := int64(par.Kappa2+2) * par.Threshold() * 40
	if b < 1_000_000 {
		b = 1_000_000
	}
	return b
}

// trialSeed derives a per-trial seed.
func trialSeed(master int64, cell, trial int) int64 {
	return master*1_000_003 + int64(cell)*7919 + int64(trial)*104729
}

// core0 is the un-ablated algorithm.
var core0 core.Ablation
