// Package fleet is a generic batch-execution engine for embarrassingly
// parallel, deterministic jobs — the seed-sharded simulation trials the
// experiment suite is made of, and the substrate any large parameter
// sweep runs on.
//
// An Engine takes an ordered batch of Jobs and runs them on a bounded
// worker pool. Each job's panic is recovered and converted into an
// error; failing jobs are retried with capped exponential backoff
// before being marked failed. Results are returned in submission order
// regardless of completion order, so a batch of deterministic jobs
// produces deterministic output at any worker count. An optional
// Checkpoint streams every finished payload to a JSONL store, and a
// later Run with the same store restores finished jobs instead of
// recomputing them — an interrupted sweep resumes where it stopped.
package fleet

import (
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Job is one unit of deterministic work, identified by an ID unique
// within its batch. IDs should encode everything the job's outcome
// depends on (experiment id, options, seed) so that checkpointed
// payloads are never replayed against a different configuration.
type Job struct {
	// ID uniquely names the job within the batch and keys its
	// checkpoint entry.
	ID string
	// Run computes the job's payload. It must be safe to call from any
	// goroutine and, for checkpointed batches, must be deterministic.
	Run func() (any, error)
}

// Result is the outcome of one job.
type Result struct {
	// ID echoes the job's ID.
	ID string
	// Index is the job's position in the submitted batch; Run returns
	// results sorted by it.
	Index int
	// Value is the payload produced by Job.Run (or restored from the
	// checkpoint). nil when the job failed.
	Value any
	// Err is the final attempt's error (a *PanicError if the job
	// panicked). nil means success.
	Err error
	// Attempts counts executions of Job.Run, including the successful
	// one. 0 for results restored from a checkpoint.
	Attempts int
	// FromCheckpoint marks results restored from the checkpoint store
	// without re-execution.
	FromCheckpoint bool
	// Duration is the wall time spent executing the job (all attempts,
	// including backoff). 0 for restored results.
	Duration time.Duration
}

// Failed reports whether the job exhausted its attempts without
// producing a payload.
func (r Result) Failed() bool { return r.Err != nil }

// PanicError wraps a panic recovered from a job so it can flow through
// the retry machinery like an ordinary error.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Error implements the error interface.
func (p *PanicError) Error() string { return fmt.Sprintf("job panicked: %v", p.Value) }

// Progress receives live execution counts. *monitor.Progress implements
// it; fleet only depends on the interface so the engine stays free of
// simulator imports.
type Progress interface {
	// AddTotal grows the expected job count by n.
	AddTotal(n int)
	// JobDone records one successfully finished job.
	JobDone()
	// JobFailed records one job that exhausted its attempts.
	JobFailed()
	// JobRetried records one failed attempt that will be retried.
	JobRetried()
}

// Config parameterizes an Engine. The zero value is usable: GOMAXPROCS
// workers, a single attempt per job, no checkpoint, no progress.
type Config struct {
	// Workers bounds the number of concurrently executing jobs.
	// Defaults to runtime.GOMAXPROCS(0).
	Workers int
	// MaxAttempts is the number of times a failing job is executed
	// before it is marked failed. Defaults to 1 (no retries): the
	// deterministic simulation trials this engine was built for fail
	// deterministically too, so callers opt into retries only for
	// workloads with transient failure modes.
	MaxAttempts int
	// Backoff is the ceiling of the sleep before the first retry; it
	// doubles per subsequent retry of the same job, capped at
	// MaxBackoff. The actual sleep is drawn uniformly from
	// [0, ceiling] ("full jitter"), so retries of jobs that failed
	// together — a saturated disk, a blipped remote — don't thunder
	// back in lockstep. Defaults to 50ms.
	Backoff time.Duration
	// MaxBackoff caps the per-job backoff ceiling. Defaults to 2s.
	MaxBackoff time.Duration
	// Checkpoint, when non-nil, streams finished payloads to a JSONL
	// store and restores already-finished jobs on the next Run.
	Checkpoint *Checkpoint
	// Progress, when non-nil, receives live job counts.
	Progress Progress
	// OnResult, when non-nil, is called once per job as it finishes
	// (restored jobs first, in batch order; executed jobs in completion
	// order). Calls are serialized; OnResult must not call back into
	// the engine.
	OnResult func(Result)

	// sleep is a test hook for the backoff delay.
	sleep func(time.Duration)
	// jitter is a test hook for the full-jitter draw: it returns a
	// uniform value in [0, n). Defaults to the shared PRNG.
	jitter func(n int64) int64
}

// Engine executes batches of jobs under one Config.
type Engine struct {
	cfg Config
}

// New creates an engine, applying Config defaults.
func New(cfg Config) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 1
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.sleep == nil {
		cfg.sleep = time.Sleep
	}
	if cfg.jitter == nil {
		cfg.jitter = rand.Int63n
	}
	return &Engine{cfg: cfg}
}

// Run executes the batch and returns one Result per job, in submission
// order. Per-job failures are reported in Result.Err, not as a Run
// error; Run itself fails only on malformed batches (duplicate or empty
// IDs, nil Run) and on checkpoint I/O errors.
func (e *Engine) Run(jobs []Job) ([]Result, error) {
	seen := make(map[string]int, len(jobs))
	for i, j := range jobs {
		if j.ID == "" {
			return nil, fmt.Errorf("fleet: job %d has an empty id", i)
		}
		if j.Run == nil {
			return nil, fmt.Errorf("fleet: job %q has a nil Run", j.ID)
		}
		if prev, dup := seen[j.ID]; dup {
			return nil, fmt.Errorf("fleet: duplicate job id %q (jobs %d and %d)", j.ID, prev, i)
		}
		seen[j.ID] = i
	}

	results := make([]Result, len(jobs))
	var restored map[string][]byte
	var store *checkpointWriter
	if e.cfg.Checkpoint != nil {
		var err error
		restored, err = e.cfg.Checkpoint.load()
		if err != nil {
			return nil, err
		}
		store, err = e.cfg.Checkpoint.openAppend()
		if err != nil {
			return nil, err
		}
		defer store.close()
	}

	if e.cfg.Progress != nil {
		e.cfg.Progress.AddTotal(len(jobs))
	}

	// Restore finished jobs, then queue the rest.
	var pending []int
	for i, j := range jobs {
		payload, ok := restored[j.ID]
		if !ok {
			pending = append(pending, i)
			continue
		}
		v, err := e.cfg.Checkpoint.decode(payload)
		if err != nil {
			return nil, fmt.Errorf("fleet: checkpoint %s: job %q: %w", e.cfg.Checkpoint.Path, j.ID, err)
		}
		results[i] = Result{ID: j.ID, Index: i, Value: v, FromCheckpoint: true}
	}
	var mu sync.Mutex // serializes checkpoint appends, OnResult and sinkErr
	var sinkErr error
	for i, j := range jobs {
		if _, ok := restored[j.ID]; !ok {
			continue
		}
		if e.cfg.Progress != nil {
			e.cfg.Progress.JobDone()
		}
		if e.cfg.OnResult != nil {
			e.cfg.OnResult(results[i])
		}
	}

	queue := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < e.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range queue {
				res := e.execute(i, jobs[i])
				mu.Lock()
				if res.Err == nil && store != nil {
					if err := store.append(res.ID, res.Attempts, res.Value, e.cfg.Checkpoint); err != nil && sinkErr == nil {
						sinkErr = err
					}
				}
				if e.cfg.Progress != nil {
					if res.Err != nil {
						e.cfg.Progress.JobFailed()
					} else {
						e.cfg.Progress.JobDone()
					}
				}
				if e.cfg.OnResult != nil {
					e.cfg.OnResult(res)
				}
				mu.Unlock()
				results[i] = res
			}
		}()
	}
	for _, i := range pending {
		queue <- i
	}
	close(queue)
	wg.Wait()
	return results, sinkErr
}

// execute runs one job through the retry loop.
func (e *Engine) execute(index int, j Job) Result {
	res := Result{ID: j.ID, Index: index}
	start := time.Now()
	backoff := e.cfg.Backoff
	for attempt := 1; ; attempt++ {
		res.Attempts = attempt
		v, err := recoverRun(j.Run)
		if err == nil {
			res.Value, res.Err = v, nil
			break
		}
		res.Err = err
		if attempt >= e.cfg.MaxAttempts {
			break
		}
		if e.cfg.Progress != nil {
			e.cfg.Progress.JobRetried()
		}
		e.cfg.sleep(time.Duration(e.cfg.jitter(int64(backoff) + 1)))
		backoff *= 2
		if backoff > e.cfg.MaxBackoff {
			backoff = e.cfg.MaxBackoff
		}
	}
	res.Duration = time.Since(start)
	return res
}

// recoverRun invokes fn, converting a panic into a *PanicError.
func recoverRun(fn func() (any, error)) (v any, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: string(debug.Stack())}
		}
	}()
	return fn()
}
