// Command tracestat summarizes a JSONL simulation trace produced by
// colorsim -trace or the radiocolor API's Options.Trace: event counts
// by kind, slot span, collision rate, and channel activity attributed
// to the protocol phase of the acting node.
//
// Examples:
//
//	colorsim -topology udg -n 100 -trace run.jsonl
//	tracestat run.jsonl
//	tracestat -json run.jsonl | jq .ByKind
//	gzip -dc run.jsonl.gz | tracestat -
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"radiocolor/internal/obs"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the summary as JSON instead of the aligned report")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracestat [-json] <trace.jsonl | ->")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	var r io.Reader
	if name := flag.Arg(0); name == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracestat:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}

	s, err := obs.Summarize(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err = enc.Encode(s)
	} else {
		err = s.Render(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracestat:", err)
		os.Exit(1)
	}
}
