package radiocolor_test

import (
	"bytes"
	"fmt"

	"radiocolor"
)

// ExampleColorGraph colors a 5-cycle. Every run with the same seed is
// bit-identical, so the output is stable.
func ExampleColorGraph() {
	adj := [][]int{{4, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 0}}
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper)
	fmt.Println("complete:", out.Complete)
	conflicts := 0
	for v, ns := range adj {
		for _, u := range ns {
			if out.Colors[v] == out.Colors[u] {
				conflicts++
			}
		}
	}
	fmt.Println("conflicting edges:", conflicts)
	// Output:
	// proper: true
	// complete: true
	// conflicting edges: 0
}

// ExampleColorUnitDisk colors a small geometric deployment and derives
// its TDMA schedule.
func ExampleColorUnitDisk() {
	points := [][2]float64{
		{0, 0}, {0.8, 0}, {1.6, 0}, {2.4, 0}, {3.2, 0},
	}
	out, err := radiocolor.ColorUnitDisk(points, 1.0, radiocolor.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	schedule, err := out.TDMA()
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper)
	fmt.Println("direct conflicts:", schedule.DirectConflicts)
	// Output:
	// proper: true
	// direct conflicts: 0
}

// ExampleOptions_wakeup shows that the guarantees hold under an
// adversarially staggered wake-up schedule.
func ExampleOptions_wakeup() {
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}, {4}, {3}} // triangle + far pair
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{
		Seed:   5,
		Wakeup: radiocolor.WakeupAdversarial,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper, "complete:", out.Complete)
	// Output:
	// proper: true complete: true
}

// decisionWatcher counts decisions through the Observer seam; embedding
// NopObserver implements the remaining events as no-ops.
type decisionWatcher struct {
	radiocolor.NopObserver
	decided int
}

func (w *decisionWatcher) OnDecide(slot int64, node int) { w.decided++ }

// ExampleOptions_observer attaches an Observer to watch the run live.
// Observers see every simulation event (transmissions, deliveries,
// collisions, wake-ups, decisions) as it happens.
func ExampleOptions_observer() {
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	w := &decisionWatcher{}
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{Seed: 4, Observer: w})
	if err != nil {
		panic(err)
	}
	fmt.Println("complete:", out.Complete)
	fmt.Println("decisions observed:", w.decided)
	// Output:
	// complete: true
	// decisions observed: 3
}

// ExampleOptions_trace streams the run's slot-level events as JSONL and
// collects aggregate statistics. The trace can be replayed offline with
// cmd/tracestat, whose per-phase counts match Outcome.Stats exactly.
func ExampleOptions_trace() {
	var trace bytes.Buffer
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{
		Seed:    4,
		Metrics: true,
		Trace:   &radiocolor.TraceConfig{W: &trace},
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("complete:", out.Complete)
	fmt.Println("stats attached:", out.Stats != nil)
	fmt.Println("decisions:", out.Stats.Decisions)
	fmt.Println("trace non-empty:", trace.Len() > 0)
	// Output:
	// complete: true
	// stats attached: true
	// decisions: 3
	// trace non-empty: true
}
