package verify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"radiocolor/internal/churn"
	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/radio"
	"radiocolor/internal/verify"
)

// Chaos property test for the dynamic-topology layer: under a random
// join/leave schedule composed with link loss, across every wakeup
// schedule, the run may leave departed nodes uncolored — but two
// PRESENT adjacent nodes must never share a color in the topology the
// run ended with. The verdict graph is Plan.FinalGraph, not the base
// graph: permanent departures change which edges are in scope.

// randomChurn makes ~10% of the nodes leave at random slots; half of
// the victims rejoin later and re-contend (retract-repair semantics).
// Deterministic in seed.
func randomChurn(n int, budget int64, seed int64) *churn.Schedule {
	rng := rand.New(rand.NewSource(seed))
	victims := rng.Perm(n)[:n/10+1]
	s := &churn.Schedule{Seed: seed}
	for i, v := range victims {
		at := 1 + rng.Int63n(budget/2)
		s.Leaves = append(s.Leaves, churn.Event{Node: v, At: at})
		if i%2 == 1 {
			s.Joins = append(s.Joins, churn.Event{Node: v, At: at + 1 + rng.Int63n(budget/4)})
		}
	}
	return s
}

func TestPresentProperlyColoredUnderChurn(t *testing.T) {
	g := propertyGraph(t)
	par := propertyParams(g)
	const budget = 120_000
	rates := []float64{0, 0.10}
	if testing.Short() {
		rates = rates[1:]
	}
	for _, pat := range radio.WakePatterns {
		for _, loss := range rates {
			pat, loss := pat, loss
			t.Run(fmt.Sprintf("%s/loss%g", pat.Name, loss), func(t *testing.T) {
				t.Parallel()
				seed := int64(43)
				sch := randomChurn(g.N(), budget/2, seed)
				plan, err := sch.Compile(churn.Env{G: g})
				if err != nil {
					t.Fatal(err)
				}
				var inj *fault.Injector
				if loss > 0 {
					// Loss has no per-node victims, so it composes with any
					// churn schedule (crash victims would have to stay
					// disjoint from the churn subjects).
					inj, err = (&fault.Profile{Seed: seed, Loss: loss}).Compile(g.N())
					if err != nil {
						t.Fatal(err)
					}
				}
				nodes, protos := core.Nodes(g.N(), seed, par, core.Ablation{})
				cfg := radio.Config{
					G: g, Protocols: protos,
					Wake:     pat.Make(g.N(), par.WaitSlots(), seed),
					MaxSlots: budget, NEstimate: par.N,
					Faults: inj,
					Churn:  plan,
				}
				res, err := radio.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				colors := make([]int32, len(nodes))
				for i, v := range nodes {
					colors[i] = v.Color()
				}
				final := plan.FinalGraph(g)
				rep := verify.CheckSurvivorsScoped(final, colors,
					verify.DownSet(g.N(), res.Down), verify.DownSet(g.N(), res.Left))
				if rep.Hard() {
					t.Errorf("loss=%g: hard violations (present adjacent nodes share a color): %v\n%s",
						loss, rep.HardViolations, rep)
				}
				// Guard against a vacuous pass: churn must have fired, the
				// permanent leavers must be out of scope, and a meaningful
				// share of present nodes must hold colors.
				if res.Leaves == 0 || res.Joins == 0 {
					t.Fatalf("loss=%g: no churn applied (leaves=%d joins=%d); test is vacuous",
						loss, res.Leaves, res.Joins)
				}
				if loss > 0 && res.Lost == 0 {
					t.Fatalf("loss=%g: no losses injected; test is vacuous", loss)
				}
				if want := len(sch.Leaves) - len(sch.Joins); rep.LeftNodes != want {
					t.Errorf("loss=%g: %d nodes out of scope, want the %d permanent leavers",
						loss, rep.LeftNodes, want)
				}
				if rep.Survivors == 0 || rep.SurvivorsColored == 0 {
					t.Fatalf("loss=%g: nobody present/colored (%s); test is vacuous", loss, rep)
				}
				if rep.SurvivorsColored*2 < rep.Survivors {
					t.Errorf("loss=%g: only %d of %d present nodes colored — degradation is not graceful (%s)",
						loss, rep.SurvivorsColored, rep.Survivors, rep)
				}
			})
		}
	}
}
