// Package msgpass implements the classic synchronous message-passing
// model (LOCAL-style) the related-work section of the paper contrasts
// with: nodes know their neighbors, every node broadcasts one message to
// all neighbors per round, and delivery is reliable and collision-free —
// an underlying MAC layer is assumed. The baselines of Sect. 3 (Luby-MIS
// based (Δ+1)-coloring) run on this substrate, quantifying how much of
// the paper's difficulty comes purely from the radio model.
package msgpass

import (
	"errors"
	"fmt"

	"radiocolor/internal/graph"
)

// Protocol is a per-node algorithm in the message-passing model.
type Protocol interface {
	// Round is called once per synchronous round. inbox maps neighbor
	// index → the payload that neighbor broadcast in the previous round
	// (empty in round 0). The return value is broadcast to all
	// neighbors for delivery next round; nil broadcasts nothing.
	Round(round int, inbox map[int32]any) any
	// Done reports whether the node has terminated. Done nodes stop
	// being scheduled (their last broadcast remains visible in the next
	// round's inboxes).
	Done() bool
}

// Result summarizes a message-passing run.
type Result struct {
	// Rounds is the number of rounds executed.
	Rounds int
	// AllDone reports whether every node terminated within the limit.
	AllDone bool
	// DecideRound[i] is the round node i's Done() first held, or −1.
	DecideRound []int
	// Messages counts total broadcast payloads.
	Messages int64
}

// Run executes the protocols over g for at most maxRounds rounds.
func Run(g *graph.Graph, protos []Protocol, maxRounds int) (*Result, error) {
	if g == nil {
		return nil, errors.New("msgpass: nil graph")
	}
	n := g.N()
	if len(protos) != n {
		return nil, fmt.Errorf("msgpass: %d protocols for %d nodes", len(protos), n)
	}
	if maxRounds <= 0 {
		maxRounds = 1 << 20
	}
	res := &Result{DecideRound: make([]int, n)}
	for i := range res.DecideRound {
		res.DecideRound[i] = -1
	}
	outbox := make([]any, n)
	numDone := 0
	done := make([]bool, n)
	for r := 0; r < maxRounds; r++ {
		res.Rounds = r + 1
		next := make([]any, n)
		for v := 0; v < n; v++ {
			if done[v] {
				next[v] = outbox[v] // terminated nodes keep their last word visible
				continue
			}
			inbox := make(map[int32]any)
			for _, u := range g.Adj(v) {
				if m := outbox[u]; m != nil {
					inbox[u] = m
				}
			}
			out := protos[v].Round(r, inbox)
			next[v] = out
			if out != nil {
				res.Messages++
			}
			if protos[v].Done() {
				done[v] = true
				numDone++
				res.DecideRound[v] = r
			}
		}
		outbox = next
		if numDone == n {
			res.AllDone = true
			return res, nil
		}
	}
	return res, nil
}
