package serve

import (
	"sync/atomic"
	"time"
)

// histogram is a fixed-bucket latency histogram in the Prometheus
// cumulative style: counts[i] observes durations ≤ bounds[i], the last
// slot is the +Inf overflow. Observe is lock-free (one atomic add per
// bucket touched), Prometheus exposition derives the cumulative counts
// at scrape time.
type histogram struct {
	bounds   []float64 // seconds, ascending
	counts   []atomic.Int64
	sumNanos atomic.Int64
	count    atomic.Int64
}

// defaultLatencyBounds spans the realistic job range: milliseconds for
// toy graphs to minutes for large deployments.
var defaultLatencyBounds = []float64{
	0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := 0
	for i < len(h.bounds) && sec > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// snapshot returns the cumulative bucket counts (one per bound, plus
// +Inf last), the observation sum in seconds, and the total count.
func (h *histogram) snapshot() (cum []int64, sum float64, count int64) {
	cum = make([]int64, len(h.counts))
	var running int64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	return cum, time.Duration(h.sumNanos.Load()).Seconds(), h.count.Load()
}
