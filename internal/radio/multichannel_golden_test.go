package radio_test

import (
	"reflect"
	"strings"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

// mcConfig builds the fixed workload the goldens below were captured
// on: the paper's protocol over a random unit-disk deployment.
func mcConfig(t *testing.T, workers int) radio.Config {
	t.Helper()
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.3, Seed: 11})
	par := core.Practical(d.N(), d.G.MaxDegree(), 2, 3)
	_, protos := core.Nodes(d.N(), 7, par, core.Ablation{})
	return radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeUniform(d.N(), 50, 7),
		MaxSlots: 6000, NEstimate: par.N, Workers: workers,
	}
}

// TestMultiChannelGolden pins RunMultiChannel's observable outcome to
// the values produced by the bespoke multi-channel engine this path
// replaced (the medium.MultiChannel port must reproduce the old engine
// bit for bit — same hop schedule, same collision rule).
func TestMultiChannelGolden(t *testing.T) {
	golden := map[int]struct {
		tx, rx, coll, decSum int64
	}{
		2: {tx: 15026, rx: 73535, coll: 8492, decSum: 226840},
		4: {tx: 15886, rx: 41472, coll: 2549, decSum: 143052},
		8: {tx: 16856, rx: 22410, coll: 685, decSum: 82004},
	}
	for k, want := range golden {
		res, err := radio.RunMultiChannel(mcConfig(t, 0), k, 21)
		if err != nil {
			t.Fatal(err)
		}
		var decSum int64
		for _, s := range res.DecideSlot {
			decSum += s
		}
		if res.Slots != 6000 || res.MaxMessageBits != 43 || res.AllDone {
			t.Errorf("k=%d: run shape changed: slots=%d maxbits=%d alldone=%v",
				k, res.Slots, res.MaxMessageBits, res.AllDone)
		}
		if res.Transmissions != want.tx || res.Deliveries != want.rx ||
			res.Collisions != want.coll || decSum != want.decSum {
			t.Errorf("k=%d: golden drift: tx=%d rx=%d coll=%d decsum=%d, want tx=%d rx=%d coll=%d decsum=%d",
				k, res.Transmissions, res.Deliveries, res.Collisions, decSum,
				want.tx, want.rx, want.coll, want.decSum)
		}
	}
}

// TestMultiChannelWorkers checks that the seam-based multi-channel run
// is bit-identical under the parallel send phase — a capability the
// bespoke engine never had.
func TestMultiChannelWorkers(t *testing.T) {
	seq, err := radio.RunMultiChannel(mcConfig(t, 1), 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	par, err := radio.RunMultiChannel(mcConfig(t, 4), 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("multi-channel diverges across workers:\n 1: %+v\n 4: %+v", seq, par)
	}
}

// TestMultiChannelFaults is the regression for the old engine's silent
// bug: RunMultiChannel used to ignore Config.Faults entirely. Loss and
// crash profiles must now compose; skew must be rejected loudly.
func TestMultiChannelFaults(t *testing.T) {
	prof, err := fault.ParseProfile("loss=0.3,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	cfg := mcConfig(t, 0)
	cfg.Faults, err = prof.Compile(cfg.G.N())
	if err != nil {
		t.Fatal(err)
	}
	res, err := radio.RunMultiChannel(cfg, 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lost == 0 {
		t.Error("loss profile injected but Result.Lost == 0: faults are still ignored on the multi-channel path")
	}
	clean, err := radio.RunMultiChannel(mcConfig(t, 0), 4, 21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries >= clean.Deliveries {
		t.Errorf("30%% loss did not reduce deliveries: %d with faults vs %d clean",
			res.Deliveries, clean.Deliveries)
	}

	skew, err := fault.ParseProfile("skew=0.5,seed=5")
	if err != nil {
		t.Fatal(err)
	}
	cfg = mcConfig(t, 0)
	cfg.Faults, err = skew.Compile(cfg.G.N())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := radio.RunMultiChannel(cfg, 4, 21); err == nil {
		t.Error("skew profile silently accepted on the multi-channel path")
	} else if !strings.Contains(err.Error(), "RunUnaligned") {
		t.Errorf("skew rejection should point at RunUnaligned, got: %v", err)
	}
}
