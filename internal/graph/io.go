package graph

import (
	"bufio"
	"fmt"
	"io"
)

// Text serialization in the ubiquitous edge-list format:
//
//	# optional comments
//	n <vertices> <edges>
//	<u> <v>
//	...
//
// WriteTo/ReadGraph round-trip exactly; cmd tools use the format to
// exchange topologies with external tools.

// maxReadEntities caps vertex/edge counts accepted by ReadGraph so a
// corrupted or hostile header cannot trigger an enormous allocation.
const maxReadEntities = 1 << 22

// WriteTo writes g in edge-list format.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "n %d %d\n", g.n, g.M())
	total += int64(n)
	if err != nil {
		return total, err
	}
	for v := 0; v < g.n; v++ {
		for _, u := range g.adj[v] {
			if int(u) > v {
				n, err := fmt.Fprintf(bw, "%d %d\n", v, u)
				total += int64(n)
				if err != nil {
					return total, err
				}
			}
		}
	}
	return total, bw.Flush()
}

// ReadGraph parses the edge-list format produced by WriteTo. Lines
// starting with '#' and blank lines are skipped.
func ReadGraph(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	var b *Builder
	edges, wantEdges := 0, -1
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if len(text) == 0 || text[0] == '#' {
			continue
		}
		if b == nil {
			var n, m int
			if _, err := fmt.Sscanf(text, "n %d %d", &n, &m); err != nil {
				return nil, fmt.Errorf("graph: line %d: expected header 'n <vertices> <edges>': %w", line, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative header values", line)
			}
			if n > maxReadEntities || m > maxReadEntities {
				return nil, fmt.Errorf("graph: line %d: header sizes %d/%d exceed limit %d", line, n, m, maxReadEntities)
			}
			b = NewBuilder(n)
			wantEdges = m
			continue
		}
		var u, v int
		if _, err := fmt.Sscanf(text, "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: line %d: expected edge '<u> <v>': %w", line, err)
		}
		if u < 0 || u >= bN(b) || v < 0 || v >= bN(b) {
			return nil, fmt.Errorf("graph: line %d: edge (%d,%d) out of range", line, u, v)
		}
		if u == v {
			return nil, fmt.Errorf("graph: line %d: self-loop", line)
		}
		b.AddEdge(u, v)
		edges++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b == nil {
		return nil, fmt.Errorf("graph: missing header")
	}
	if wantEdges >= 0 && edges != wantEdges {
		return nil, fmt.Errorf("graph: header promises %d edges, found %d", wantEdges, edges)
	}
	return b.Build(), nil
}

// bN exposes the builder size for validation.
func bN(b *Builder) int { return b.n }
