package topology

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
)

// Deployment serialization. The text format stores everything needed to
// reproduce a geometric experiment outside this process:
//
//	deployment <name-with-no-spaces-or-quoted>
//	radius <r>
//	points <count>            (omitted for non-geometric topologies)
//	<x> <y>
//	...
//
// Point lines may alternatively carry an explicit node id — `<id> <x>
// <y>` — in any order; the first point line picks the form for the
// whole file. Ids must be unique and in [0, count): a repeated id is
// rejected with its position instead of silently overwriting the
// earlier point (which would quietly reshape the unit-disk graph).
//	walls <count>             (omitted when there are no obstacles)
//	<ax> <ay> <bx> <by>
//	...
//	n <vertices> <edges>      (graph.WriteTo format)
//	<u> <v>
//	...

// maxReadItems caps point/wall counts accepted by ReadDeployment so a
// corrupted or hostile header cannot trigger an enormous allocation.
const maxReadItems = 1 << 22

// WriteDeployment serializes d.
func WriteDeployment(w io.Writer, d *Deployment) error {
	bw := bufio.NewWriter(w)
	name := d.Name
	if name == "" {
		name = "unnamed"
	}
	if _, err := fmt.Fprintf(bw, "deployment %q\n", name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "radius %g\n", d.Radius); err != nil {
		return err
	}
	if d.Points != nil {
		if _, err := fmt.Fprintf(bw, "points %d\n", len(d.Points)); err != nil {
			return err
		}
		for _, p := range d.Points {
			if _, err := fmt.Fprintf(bw, "%g %g\n", p.X, p.Y); err != nil {
				return err
			}
		}
	}
	if d.Obstacles.Count() > 0 {
		if _, err := fmt.Fprintf(bw, "walls %d\n", d.Obstacles.Count()); err != nil {
			return err
		}
		for _, s := range d.Obstacles.Walls {
			if _, err := fmt.Fprintf(bw, "%g %g %g %g\n", s.A.X, s.A.Y, s.B.X, s.B.Y); err != nil {
				return err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if _, err := d.G.WriteTo(w); err != nil {
		return err
	}
	return nil
}

// ReadDeployment parses the format written by WriteDeployment.
func ReadDeployment(r io.Reader) (*Deployment, error) {
	br := bufio.NewReader(r)
	d := &Deployment{}

	readLine := func() (string, error) {
		for {
			line, err := br.ReadString('\n')
			line = strings.TrimSpace(line)
			if err != nil && line == "" {
				return "", err
			}
			if line == "" || line[0] == '#' {
				if err != nil {
					return "", err
				}
				continue
			}
			return line, nil
		}
	}

	line, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("topology: missing deployment header: %w", err)
	}
	if _, err := fmt.Sscanf(line, "deployment %q", &d.Name); err != nil {
		return nil, fmt.Errorf("topology: bad deployment header %q: %w", line, err)
	}
	line, err = readLine()
	if err != nil {
		return nil, fmt.Errorf("topology: missing radius: %w", err)
	}
	if _, err := fmt.Sscanf(line, "radius %g", &d.Radius); err != nil {
		return nil, fmt.Errorf("topology: bad radius line %q: %w", line, err)
	}
	if !isFinite(d.Radius) || d.Radius < 0 {
		return nil, fmt.Errorf("topology: radius %g is not a finite non-negative number", d.Radius)
	}

	line, err = readLine()
	if err != nil {
		return nil, fmt.Errorf("topology: truncated file: %w", err)
	}
	if strings.HasPrefix(line, "points ") {
		var count int
		if _, err := fmt.Sscanf(line, "points %d", &count); err != nil || count < 0 || count > maxReadItems {
			return nil, fmt.Errorf("topology: bad points header %q", line)
		}
		d.Points = make([]geom.Point, count)
		var idMode bool
		var seen []bool
		for i := range d.Points {
			line, err = readLine()
			if err != nil {
				return nil, fmt.Errorf("topology: truncated points: %w", err)
			}
			fields := strings.Fields(line)
			if i == 0 {
				idMode = len(fields) == 3
				if idMode {
					seen = make([]bool, count)
				}
			}
			at := i
			if idMode {
				if len(fields) != 3 {
					return nil, fmt.Errorf("topology: point %d: want `<id> <x> <y>`, got %q", i, line)
				}
				id, err := strconv.Atoi(fields[0])
				if err != nil || id < 0 || id >= count {
					return nil, fmt.Errorf("topology: point %d: node id %q out of range [0,%d)", i, fields[0], count)
				}
				if seen[id] {
					return nil, fmt.Errorf("topology: point %d: duplicate node id %d (line %q)", i, id, line)
				}
				seen[id] = true
				at = id
				fields = fields[1:]
			} else if len(fields) != 2 {
				return nil, fmt.Errorf("topology: bad point %q", line)
			}
			x, errX := strconv.ParseFloat(fields[0], 64)
			y, errY := strconv.ParseFloat(fields[1], 64)
			if errX != nil || errY != nil {
				return nil, fmt.Errorf("topology: bad point %q", line)
			}
			// ParseFloat happily accepts NaN and ±Inf, but geometry on
			// such coordinates silently corrupts every distance test.
			if !isFinite(x) || !isFinite(y) {
				return nil, fmt.Errorf("topology: point %d has non-finite coordinates %q", i, line)
			}
			d.Points[at] = geom.Point{X: x, Y: y}
		}
		line, err = readLine()
		if err != nil {
			return nil, fmt.Errorf("topology: truncated file: %w", err)
		}
	}
	if strings.HasPrefix(line, "walls ") {
		var count int
		if _, err := fmt.Sscanf(line, "walls %d", &count); err != nil || count < 0 || count > maxReadItems {
			return nil, fmt.Errorf("topology: bad walls header %q", line)
		}
		d.Obstacles = &geom.Obstacles{Walls: make([]geom.Segment, count)}
		for i := range d.Obstacles.Walls {
			line, err = readLine()
			if err != nil {
				return nil, fmt.Errorf("topology: truncated walls: %w", err)
			}
			s := &d.Obstacles.Walls[i]
			if _, err := fmt.Sscanf(line, "%g %g %g %g", &s.A.X, &s.A.Y, &s.B.X, &s.B.Y); err != nil {
				return nil, fmt.Errorf("topology: bad wall %q: %w", line, err)
			}
			if !isFinite(s.A.X) || !isFinite(s.A.Y) || !isFinite(s.B.X) || !isFinite(s.B.Y) {
				return nil, fmt.Errorf("topology: wall %d has non-finite coordinates %q", i, line)
			}
		}
		line, err = readLine()
		if err != nil {
			return nil, fmt.Errorf("topology: truncated file: %w", err)
		}
	}
	// The remaining content is the graph; re-join the header line with
	// the unread rest of the stream.
	g, err := graph.ReadGraph(io.MultiReader(strings.NewReader(line+"\n"), br))
	if err != nil {
		return nil, err
	}
	d.G = g
	if d.Points != nil && len(d.Points) != g.N() {
		return nil, fmt.Errorf("topology: %d points for %d vertices", len(d.Points), g.N())
	}
	return d, nil
}

// isFinite reports whether f is neither NaN nor ±Inf.
func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
