package verify

import (
	"fmt"

	"radiocolor/internal/graph"
)

// SurvivorReport is the correctness-under-fault verdict: it judges a
// coloring produced by a faulty run by separating hard failures from
// graceful degradation. A crashed node losing its color (or never
// getting one) is the expected cost of a fail-stop fault; two *live*
// adjacent nodes sharing a color is an algorithm bug no fault excuses,
// because the protocol's safety argument (Theorem 2's independence)
// never relies on every node surviving.
type SurvivorReport struct {
	// Survivors counts live, present nodes; DownNodes counts crashed
	// ones; LeftNodes counts nodes that departed on a churn schedule.
	// Down and left nodes are both out of scope for violations and
	// degradation, but for different reasons: a crashed node's color is
	// lost to a fault, a left node's color left the network with it.
	Survivors, DownNodes, LeftNodes int
	// HardViolations lists edges between two live nodes sharing a
	// color — hard failures (capped at 64).
	HardViolations []Violation
	// Degraded lists live nodes without a color — graceful degradation
	// (a surviving node may be stuck waiting on a crashed leader;
	// capped at 64). Down nodes are not listed.
	Degraded []int32
	// SurvivorsColored counts live nodes holding a color.
	SurvivorsColored int
	// NumColors and MaxColor describe the palette used by survivors —
	// palette growth under faults is reported, not judged.
	NumColors int
	MaxColor  int32
}

// Hard reports whether the run hard-failed: some pair of live adjacent
// nodes share a color.
func (r *SurvivorReport) Hard() bool { return len(r.HardViolations) > 0 }

// Graceful reports whether the outcome is acceptable under faults:
// no hard violations (crashed or degraded nodes are tolerated).
func (r *SurvivorReport) Graceful() bool { return !r.Hard() }

// String implements fmt.Stringer.
func (r *SurvivorReport) String() string {
	return fmt.Sprintf("survivors=%d down=%d left=%d colored=%d degraded=%d hard=%d colors=%d max=%d",
		r.Survivors, r.DownNodes, r.LeftNodes, r.SurvivorsColored, len(r.Degraded),
		len(r.HardViolations), r.NumColors, r.MaxColor)
}

// CheckSurvivors validates colors over the live subgraph. down[v]
// marks node v as crashed at the end of the run (nil means nobody is
// down, reducing to Check's completeness view). colors[v] is node v's
// color or Uncolored, as in Check.
func CheckSurvivors(g *graph.Graph, colors []int32, down []bool) *SurvivorReport {
	return CheckSurvivorsScoped(g, colors, down, nil)
}

// CheckSurvivorsScoped is CheckSurvivors for dynamic topologies: left[v]
// marks node v as departed on a churn schedule (e.g. radio.Result.Left)
// as of the end of the run. A left node is out of scope exactly like a
// down node — it is not a survivor, its color (a leftover of its last
// stay) cannot violate anything, and its missing color is not
// degradation — but it is tallied separately as LeftNodes, because
// leaving is scheduled behavior while crashing is a fault. A node
// marked both down and left counts as left (the churn and fault layers
// reject overlapping subjects, so the double marking itself indicates a
// caller bug elsewhere).
func CheckSurvivorsScoped(g *graph.Graph, colors []int32, down, left []bool) *SurvivorReport {
	if len(colors) != g.N() {
		panic(fmt.Sprintf("verify: %d colors for %d nodes", len(colors), g.N()))
	}
	if down != nil && len(down) != g.N() {
		panic(fmt.Sprintf("verify: %d down flags for %d nodes", len(down), g.N()))
	}
	if left != nil && len(left) != g.N() {
		panic(fmt.Sprintf("verify: %d left flags for %d nodes", len(left), g.N()))
	}
	r := &SurvivorReport{MaxColor: -1}
	used := make(map[int32]bool)
	isOut := func(v int32) bool {
		return (down != nil && down[v]) || (left != nil && left[v])
	}
	for v := 0; v < g.N(); v++ {
		if left != nil && left[v] {
			r.LeftNodes++
			continue
		}
		if down != nil && down[v] {
			r.DownNodes++
			continue
		}
		r.Survivors++
		c := colors[v]
		if c == Uncolored {
			if len(r.Degraded) < capList {
				r.Degraded = append(r.Degraded, int32(v))
			}
			continue
		}
		r.SurvivorsColored++
		if !used[c] {
			used[c] = true
			r.NumColors++
			if c > r.MaxColor {
				r.MaxColor = c
			}
		}
		for _, u := range g.Adj(v) {
			if int(u) > v && !isOut(u) && colors[u] == c {
				if len(r.HardViolations) < capList {
					r.HardViolations = append(r.HardViolations, Violation{U: int32(v), V: u, Color: c})
				}
			}
		}
	}
	return r
}

// DownSet converts a node id list (radio.Result.Down or .Left) to the
// boolean mask CheckSurvivors and CheckSurvivorsScoped take.
func DownSet(n int, ids []int32) []bool {
	if len(ids) == 0 {
		return nil
	}
	down := make([]bool, n)
	for _, v := range ids {
		down[v] = true
	}
	return down
}
