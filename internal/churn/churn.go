// Package churn is the dynamic-topology layer of the reproduction: a
// declarative schedule of node joins, leaves, and waypoint mobility,
// compiled — like fault.Profile — to a pure, seed-deterministic plan
// the slot kernel applies incrementally.
//
// The paper's model is static: nodes wake once into a fixed unit-disk
// graph. A Schedule relaxes exactly that assumption. Nodes may join
// the network mid-run (their edges to present nodes appear, and they
// wake as if for the first time), leave it (their edges disappear and
// their color leaves scope with them), and move along piecewise-linear
// waypoint trajectories over the existing geometry, re-deriving their
// unit-disk neighborhoods at a fixed cadence. Compile flattens all of
// it into slot-keyed batches of presence flips plus CSR edge deltas
// (graph.Dyn applies them with no full rebuild), so the engine's churn
// seam is a single cursor walk: everything expensive or stateful
// happens here, once, before the run starts. Two runs with equal
// schedules compile to identical plans, and the plan is applied
// single-threaded at slot start, which is what makes churned runs
// bit-identical at any worker or tile count.
package churn

import (
	"fmt"
	"math"
	"sort"
)

// RepairMode selects what the engine does when an edge delta creates a
// monochromatic edge between two already-decided nodes (a join or a
// move can place two same-colored nodes in range of each other).
type RepairMode uint8

const (
	// RepairRetract (the default) is the self-stabilizing mode: one
	// endpoint of each conflicting edge retracts its decision (protocol
	// Reset + Start, exactly the fault layer's restart path) and
	// re-contends for a color. The victim is chosen deterministically —
	// the later decider, ties to the higher id — so repair is
	// bit-identical at any worker count.
	RepairRetract RepairMode = iota
	// RepairNone applies topology deltas without touching decisions;
	// conflicts persist until something else (e.g. the decentralized
	// color-fixing baseline) resolves them. Useful for measuring how
	// much damage a perturbation does.
	RepairNone

	numRepairModes
)

var repairNames = [numRepairModes]string{"retract", "none"}

// String returns the mode's name (the value ParseRepairMode accepts).
func (m RepairMode) String() string {
	if m < numRepairModes {
		return repairNames[m]
	}
	return fmt.Sprintf("repair(%d)", uint8(m))
}

// ParseRepairMode maps a name to its RepairMode.
func ParseRepairMode(name string) (RepairMode, error) {
	for i, s := range repairNames {
		if s == name {
			return RepairMode(i), nil
		}
	}
	return 0, fmt.Errorf("churn: unknown repair mode %q (want retract or none)", name)
}

// Event schedules one presence change: node Node joins or leaves the
// network at the start of slot At.
type Event struct {
	Node int
	At   int64
}

// Waypoint is one mobility target: node Node is at position (X, Y) at
// slot At, moving there linearly from its previous position (its
// deployment position before the first waypoint). Between waypoints
// the node keeps moving; after its last waypoint it stays put.
type Waypoint struct {
	Node int
	At   int64
	X, Y float64
}

// Schedule declares a dynamic topology. The zero value changes
// nothing. Like fault.Profile, a Schedule composes declaratively and
// compiles to an immutable plan; all determinism derives from the
// schedule content itself (there are no probabilistic churn coins —
// Seed is recorded for future stochastic churn models and for
// "same options, same outcome" bookkeeping).
type Schedule struct {
	// Seed is reserved for stochastic churn models; a compiled plan is
	// currently a pure function of the declarative events.
	Seed int64
	// Joins and Leaves schedule presence changes. A node whose first
	// event is a join is absent from slot 0 (it enters the network
	// late); events per node must alternate leave/join in slot order.
	Joins, Leaves []Event
	// Waypoints schedule piecewise-linear mobility. Mobility requires
	// geometry (node positions and a radius), so it is only accepted
	// through geometric entry points.
	Waypoints []Waypoint
	// Every is the mobility evaluation cadence in slots: moving nodes'
	// neighborhoods are re-derived every Every slots (default 16).
	// Smaller is more faithful, larger is cheaper; joins and leaves
	// always take effect at their exact slot regardless.
	Every int64
	// Repair selects the conflict-repair mode (default RepairRetract).
	Repair RepairMode
}

// Active reports whether the schedule changes anything at all.
func (s *Schedule) Active() bool {
	return s != nil && (len(s.Joins) > 0 || len(s.Leaves) > 0 || len(s.Waypoints) > 0)
}

// Nodes returns the sorted, de-duplicated set of nodes the schedule
// references. Used to check disjointness against fault crash victims
// (a node cannot be both fail-stopped and churned; the two lifecycles
// would race for its presence).
func (s *Schedule) Nodes() []int {
	if s == nil {
		return nil
	}
	set := map[int]bool{}
	for _, e := range s.Joins {
		set[e.Node] = true
	}
	for _, e := range s.Leaves {
		set[e.Node] = true
	}
	for _, w := range s.Waypoints {
		set[w.Node] = true
	}
	out := make([]int, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Validate checks the schedule against n nodes (n <= 0 skips
// node-range checks, for early validation before the graph is known).
func (s *Schedule) Validate(n int) error {
	if s == nil {
		return nil
	}
	if s.Every < 0 {
		return fmt.Errorf("churn: negative Every %d", s.Every)
	}
	checkNode := func(kind string, i, node int) error {
		if node < 0 || (n > 0 && node >= n) {
			return fmt.Errorf("churn: %s[%d].Node %d out of range [0,%d)", kind, i, node, n)
		}
		return nil
	}
	type ev struct {
		at   int64
		join bool
	}
	perNode := map[int][]ev{}
	for i, e := range s.Joins {
		if err := checkNode("Joins", i, e.Node); err != nil {
			return err
		}
		if e.At < 0 {
			return fmt.Errorf("churn: Joins[%d].At %d < 0", i, e.At)
		}
		perNode[e.Node] = append(perNode[e.Node], ev{e.At, true})
	}
	for i, e := range s.Leaves {
		if err := checkNode("Leaves", i, e.Node); err != nil {
			return err
		}
		if e.At < 0 {
			return fmt.Errorf("churn: Leaves[%d].At %d < 0", i, e.At)
		}
		perNode[e.Node] = append(perNode[e.Node], ev{e.At, false})
	}
	for v, evs := range perNode {
		sort.Slice(evs, func(a, b int) bool { return evs[a].at < evs[b].at })
		for i := 1; i < len(evs); i++ {
			if evs[i].at == evs[i-1].at {
				return fmt.Errorf("churn: node %d has two events at slot %d", v, evs[i].at)
			}
			if evs[i].join == evs[i-1].join {
				kind := "leave"
				if evs[i].join {
					kind = "join"
				}
				return fmt.Errorf("churn: node %d has two consecutive %s events (slots %d and %d); joins and leaves must alternate",
					v, kind, evs[i-1].at, evs[i].at)
			}
		}
	}
	var lastAt int64 = -1
	lastNode := -1
	for i, w := range s.Waypoints {
		if err := checkNode("Waypoints", i, w.Node); err != nil {
			return err
		}
		if w.At < 0 {
			return fmt.Errorf("churn: Waypoints[%d].At %d < 0", i, w.At)
		}
		if w.Node == lastNode && w.At <= lastAt {
			return fmt.Errorf("churn: Waypoints[%d]: node %d waypoints must be in strictly increasing slot order (%d after %d)",
				i, w.Node, w.At, lastAt)
		}
		if w.Node == lastNode {
			lastAt = w.At
		} else {
			lastNode, lastAt = w.Node, w.At
		}
		if !isFinite(w.X) || !isFinite(w.Y) {
			return fmt.Errorf("churn: Waypoints[%d] has non-finite coordinates (%g, %g)", i, w.X, w.Y)
		}
	}
	return nil
}

// Permute returns a copy of the schedule with every node reference
// mapped through forward (a relabeling's old→new map), mirroring
// fault.Profile.Permute: the tiled kernel's relabeling pass uses it so
// an event aimed at a caller-visible node keeps hitting the same
// physical node after renumbering. Slots, coordinates, cadence and
// repair mode are unchanged.
func (s *Schedule) Permute(forward []int32) *Schedule {
	if s == nil {
		return nil
	}
	out := *s
	mapEvents := func(evs []Event) []Event {
		if len(evs) == 0 {
			return nil
		}
		m := make([]Event, len(evs))
		for i, e := range evs {
			if e.Node >= 0 && e.Node < len(forward) {
				e.Node = int(forward[e.Node])
			}
			m[i] = e
		}
		return m
	}
	out.Joins = mapEvents(s.Joins)
	out.Leaves = mapEvents(s.Leaves)
	if len(s.Waypoints) > 0 {
		out.Waypoints = make([]Waypoint, len(s.Waypoints))
		for i, w := range s.Waypoints {
			if w.Node >= 0 && w.Node < len(forward) {
				w.Node = int(forward[w.Node])
			}
			out.Waypoints[i] = w
		}
	}
	return &out
}

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}
