package stats

import (
	"math/rand"
	"testing"
)

func TestBootstrapCIBasic(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 10 + r.NormFloat64()
	}
	ci := BootstrapCI(xs, 0.95, 2000, 7)
	if ci.Low > ci.Mean || ci.Mean > ci.High {
		t.Fatalf("interval does not bracket mean: %+v", ci)
	}
	// With n=200 and σ=1, the 95% CI half-width is ≈ 0.14.
	if ci.High-ci.Low > 0.5 || ci.High-ci.Low <= 0 {
		t.Errorf("interval width %v implausible", ci.High-ci.Low)
	}
	if ci.Mean < 9.7 || ci.Mean > 10.3 {
		t.Errorf("mean %v off", ci.Mean)
	}
}

func TestBootstrapCIDeterministic(t *testing.T) {
	xs := []float64{1, 5, 3, 8, 2}
	a := BootstrapCI(xs, 0.9, 500, 3)
	b := BootstrapCI(xs, 0.9, 500, 3)
	if a != b {
		t.Errorf("not reproducible: %+v vs %+v", a, b)
	}
	c := BootstrapCI(xs, 0.9, 500, 4)
	if a == c {
		t.Error("different seeds gave identical resamples (suspicious)")
	}
}

func TestBootstrapCIEdgeCases(t *testing.T) {
	if ci := BootstrapCI(nil, 0.95, 100, 1); ci.Mean != 0 || ci.Low != 0 || ci.High != 0 {
		t.Errorf("empty: %+v", ci)
	}
	ci := BootstrapCI([]float64{7}, 0.95, 100, 1)
	if ci.Low != 7 || ci.High != 7 || ci.Mean != 7 {
		t.Errorf("singleton: %+v", ci)
	}
	// Constant sample: degenerate interval.
	ci = BootstrapCI([]float64{4, 4, 4, 4}, 0.99, 200, 1)
	if ci.Low != 4 || ci.High != 4 {
		t.Errorf("constant: %+v", ci)
	}
	// Default iterations kick in for iters < 1.
	ci = BootstrapCI([]float64{1, 2, 3}, 0.5, 0, 1)
	if ci.Low > ci.High {
		t.Errorf("default iters: %+v", ci)
	}
}

func TestBootstrapCIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BootstrapCI([]float64{1}, 1.5, 10, 1)
}
