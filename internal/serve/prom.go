package serve

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"radiocolor/internal/store"
)

// This file is the Prometheus text-exposition encoder (version 0.0.4 of
// the format — the plain `name{labels} value` lines every Prometheus
// scraper accepts). The server has two metric sources: its own
// counters/gauges (queue depth, admissions, rejects, job latency) under
// the colord_ prefix, and the aggregate simulation registry
// (internal/obs) under the radiocolor_ prefix, exported through
// obs.Snapshot.Export so the vocabulary is shared with every other
// encoder in the repo.

// promMeta writes the # HELP / # TYPE preamble for one series.
func promMeta(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promInt writes one un-labelled integer sample.
func promInt(w io.Writer, name string, v int64) {
	fmt.Fprintf(w, "%s %d\n", name, v)
}

// writeMetrics renders the full exposition.
func (s *Server) writeMetrics(w io.Writer) {
	// Server-level counters.
	promMeta(w, "colord_jobs_submitted_total", "counter", "Job submissions received (accepted + rejected).")
	promInt(w, "colord_jobs_submitted_total", s.submitted.Load())
	promMeta(w, "colord_jobs_accepted_total", "counter", "Jobs admitted to the queue.")
	promInt(w, "colord_jobs_accepted_total", s.accepted.Load())
	promMeta(w, "colord_jobs_rejected_total", "counter", "Submissions rejected with 429 (queue full).")
	promInt(w, "colord_jobs_rejected_total", s.rejected.Load())
	promMeta(w, "colord_jobs_completed_total", "counter", "Jobs finished, by terminal state.")
	fmt.Fprintf(w, "colord_jobs_completed_total{state=\"done\"} %d\n", s.completed.Load())
	fmt.Fprintf(w, "colord_jobs_completed_total{state=\"failed\"} %d\n", s.failed.Load())
	fmt.Fprintf(w, "colord_jobs_completed_total{state=\"canceled\"} %d\n", s.canceled.Load())
	fmt.Fprintf(w, "colord_jobs_completed_total{state=\"timed_out\"} %d\n", s.timedOut.Load())

	// Gauges.
	promMeta(w, "colord_queue_depth", "gauge", "Jobs waiting in the store's queue.")
	promInt(w, "colord_queue_depth", int64(s.queuedCount()))
	promMeta(w, "colord_queue_capacity", "gauge", "Queued-backlog admission bound of this replica.")
	promInt(w, "colord_queue_capacity", int64(s.cfg.QueueCap))
	promMeta(w, "colord_jobs_inflight", "gauge", "Jobs currently executing.")
	promInt(w, "colord_jobs_inflight", s.inflight.Load())
	promMeta(w, "colord_uptime_seconds", "gauge", "Seconds since the server was created.")
	fmt.Fprintf(w, "colord_uptime_seconds %s\n", promFloat(s.now().Sub(s.start).Seconds()))

	// Store occupancy: one gauge per state, from the shared store, so
	// every replica scrapes the same backlog picture.
	if counts, err := s.st.Counts(); err == nil {
		promMeta(w, "colord_store_jobs", "gauge", "Jobs in the store, by state.")
		for _, st := range []store.State{store.StateQueued, store.StateRunning, store.StateDone,
			store.StateFailed, store.StateCanceled, store.StateTimedOut} {
			fmt.Fprintf(w, "colord_store_jobs{state=%q} %d\n", string(st), counts[st])
		}
	}

	// Control-plane counters: store writes, lease traffic, sweeps.
	s.ctrl.Snapshot().Export(func(name string, v int64) {
		full := "colord_" + name + "_total"
		promMeta(w, full, "counter", "Control-plane "+strings.ReplaceAll(name, "_", " ")+".")
		promInt(w, full, v)
	})

	// Deployment cache.
	promMeta(w, "colord_cache_hits_total", "counter", "Deployment cache hits.")
	promInt(w, "colord_cache_hits_total", s.cache.hits.Load())
	promMeta(w, "colord_cache_misses_total", "counter", "Deployment cache misses.")
	promInt(w, "colord_cache_misses_total", s.cache.misses.Load())
	promMeta(w, "colord_cache_entries", "gauge", "Deployments currently cached.")
	promInt(w, "colord_cache_entries", int64(s.cache.len()))

	// Job latency histogram.
	cum, sum, count := s.latency.snapshot()
	promMeta(w, "colord_job_duration_seconds", "histogram", "Wall time of job executions (all attempts).")
	for i, bound := range s.latency.bounds {
		fmt.Fprintf(w, "colord_job_duration_seconds_bucket{le=%q} %d\n", promFloat(bound), cum[i])
	}
	fmt.Fprintf(w, "colord_job_duration_seconds_bucket{le=\"+Inf\"} %d\n", cum[len(cum)-1])
	fmt.Fprintf(w, "colord_job_duration_seconds_sum %s\n", promFloat(sum))
	fmt.Fprintf(w, "colord_job_duration_seconds_count %d\n", count)

	// Aggregate simulation registry: every job feeds the shared obs
	// registry through the observer seam, so these counters cover all
	// jobs since the server started. Phase occupancy gauges get a
	// shared series with a phase label.
	snap := s.obsReg.Snapshot()
	phaseMetaDone := false
	snap.Export(func(name string, v int64, counter bool) {
		if counter {
			full := "radiocolor_" + name + "_total"
			promMeta(w, full, "counter", "Simulation "+name+" across all jobs.")
			promInt(w, full, v)
			return
		}
		if !phaseMetaDone {
			promMeta(w, "radiocolor_phase_nodes", "gauge", "Nodes currently in each protocol phase.")
			phaseMetaDone = true
		}
		phase := strings.TrimPrefix(name, "phase_")
		fmt.Fprintf(w, "radiocolor_phase_nodes{phase=%q} %d\n", phase, v)
	})
}

// promFloat renders a float the way Prometheus expects (no exponent for
// the usual magnitudes, trailing zeros trimmed).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
