package radiocolor

import (
	"time"

	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
)

// Observer receives simulation events during a coloring run. Node
// identifiers are indices into the input adjacency (the same indexing
// as Outcome.Colors). Implementations must be fast — the simulator
// calls them in its hot loop — and, when Options.Workers > 1, safe for
// concurrent use. Embed NopObserver to implement only the events of
// interest.
type Observer interface {
	// OnSlot fires once per simulated slot, after the slot resolved.
	OnSlot(slot int64)
	// OnWake fires when a node wakes up and joins the protocol.
	OnWake(slot int64, node int)
	// OnTransmit fires for every transmission.
	OnTransmit(slot int64, from int)
	// OnDeliver fires when a listener receives a message cleanly
	// (exactly one transmitting neighbor).
	OnDeliver(slot int64, from, to int)
	// OnCollision fires when a listener had two or more transmitting
	// neighbors. The node itself observes nothing — the radio model has
	// no collision detection; this is a god's-eye-view event.
	OnCollision(slot int64, at, transmitters int)
	// OnDecide fires once per node, in the slot it irrevocably commits
	// to its color.
	OnDecide(slot int64, node int)
}

// PhaseObserver is an optional extension of Observer: when the
// configured Options.Observer also implements it, the run reports every
// protocol phase transition (asleep → waiting → active → request →
// colored, the state diagram of Fig. 2). Phase names are the stable
// vocabulary of internal/obs; the serving layer uses this seam to keep
// live phase-occupancy gauges per job.
type PhaseObserver interface {
	Observer
	// OnPhase fires when node moves between protocol phases.
	OnPhase(slot int64, node int, from, to string)
}

// NopObserver implements Observer ignoring all events; embed it to
// implement a subset.
type NopObserver struct{}

// OnSlot implements Observer.
func (NopObserver) OnSlot(int64) {}

// OnWake implements Observer.
func (NopObserver) OnWake(int64, int) {}

// OnTransmit implements Observer.
func (NopObserver) OnTransmit(int64, int) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(int64, int, int) {}

// OnCollision implements Observer.
func (NopObserver) OnCollision(int64, int, int) {}

// OnDecide implements Observer.
func (NopObserver) OnDecide(int64, int) {}

// observerAdapter lifts a public Observer onto the simulator's seam.
type observerAdapter struct{ o Observer }

// adaptObserver returns nil for a nil Observer so the engines stay on
// the branch-on-nil fast path.
func adaptObserver(o Observer) radio.Observer {
	if o == nil {
		return nil
	}
	return observerAdapter{o}
}

func (a observerAdapter) OnSlot(slot int64)                 { a.o.OnSlot(slot) }
func (a observerAdapter) OnWake(slot int64, n radio.NodeID) { a.o.OnWake(slot, int(n)) }
func (a observerAdapter) OnTransmit(slot int64, from radio.NodeID, _ radio.Message) {
	a.o.OnTransmit(slot, int(from))
}
func (a observerAdapter) OnDeliver(slot int64, to radio.NodeID, msg radio.Message) {
	a.o.OnDeliver(slot, int(msg.Sender()), int(to))
}
func (a observerAdapter) OnCollision(slot int64, at radio.NodeID, transmitters int) {
	a.o.OnCollision(slot, int(at), transmitters)
}
func (a observerAdapter) OnDecide(slot int64, n radio.NodeID) { a.o.OnDecide(slot, int(n)) }

// Stats snapshots a run's channel behavior. It is attached to
// Outcome.Stats when Options.Metrics is true. With tracing also
// enabled (and no Kinds filter), replaying the trace with
// cmd/tracestat reproduces these numbers exactly.
type Stats struct {
	// Transmissions, Deliveries and Collisions count channel events;
	// Collisions counts (listener, slot) pairs that lost a message to
	// overlapping transmissions.
	Transmissions, Deliveries, Collisions int64
	// Wakeups and Decisions count protocol lifecycle events; both equal
	// the node count on a complete run.
	Wakeups, Decisions int64
	// Slots is the number of simulated slots.
	Slots int64
	// CollisionRate is collisions / (deliveries + collisions): the
	// fraction of channel resolutions lost to contention.
	CollisionRate float64
	// SlotsPerSec is the simulation throughput.
	SlotsPerSec float64
	// Wall is the wall-clock duration of the simulation.
	Wall time.Duration
	// Phases aggregates per protocol phase (asleep, waiting, active,
	// request, colored): how long nodes sat in each phase and which
	// channel events they generated there.
	Phases []PhaseStats
	// Buckets is the time-resolved view: fixed windows of BucketSlots
	// slots each, in chronological order.
	Buckets []BucketStats
	// BucketSlots is the bucket width in slots.
	BucketSlots int64
}

// PhaseStats aggregates channel activity over one protocol phase.
type PhaseStats struct {
	// Name is the phase name ("asleep", "waiting", "active", "request",
	// "colored").
	Name string
	// NodeSlots integrates occupancy: the number of (node, slot) pairs
	// spent in this phase.
	NodeSlots int64
	// Transmissions counts messages sent from this phase; Deliveries
	// and Collisions count receptions and losses at listeners in it.
	Transmissions, Deliveries, Collisions int64
	// Entries counts transitions into the phase.
	Entries int64
}

// BucketStats aggregates one fixed window of slots.
type BucketStats struct {
	// Start is the window's first slot; Slots the slots it covers.
	Start, Slots int64
	// Transmissions, Deliveries, Collisions and Decisions count events
	// inside the window.
	Transmissions, Deliveries, Collisions, Decisions int64
	// PhaseNodes maps phase name to node occupancy sampled at the last
	// slot of the window.
	PhaseNodes map[string]int64
}

// buildStats assembles the public snapshot from the collectors.
func buildStats(met *obs.Metrics, tl *obs.Timeline) *Stats {
	snap := met.Snapshot()
	s := &Stats{
		Transmissions: snap.Transmissions,
		Deliveries:    snap.Deliveries,
		Collisions:    snap.Collisions,
		Wakeups:       snap.Wakeups,
		Decisions:     snap.Decisions,
		Slots:         snap.Slots,
		CollisionRate: snap.CollisionRate(),
		SlotsPerSec:   snap.SlotsPerSec(),
		BucketSlots:   tl.BucketSlots(),
	}
	if !snap.Start.IsZero() {
		s.Wall = snap.At.Sub(snap.Start)
	}
	for p, tot := range tl.Phases() {
		s.Phases = append(s.Phases, PhaseStats{
			Name:          obs.Phase(p).String(),
			NodeSlots:     tot.NodeSlots,
			Transmissions: tot.Transmissions,
			Deliveries:    tot.Deliveries,
			Collisions:    tot.Collisions,
			Entries:       tot.Entries,
		})
	}
	for _, b := range tl.Buckets() {
		bs := BucketStats{
			Start:         b.Start,
			Slots:         b.Slots,
			Transmissions: b.Transmissions,
			Deliveries:    b.Deliveries,
			Collisions:    b.Collisions,
			Decisions:     b.Decisions,
			PhaseNodes:    make(map[string]int64, obs.NumPhases),
		}
		for p, n := range b.PhaseNodes {
			bs.PhaseNodes[obs.Phase(p).String()] = n
		}
		s.Buckets = append(s.Buckets, bs)
	}
	return s
}
