// Package core implements the paper's primary contribution: the
// randomized vertex-coloring algorithm for unstructured radio networks
// (Algorithms 1–3 of Moscibroda & Wattenhofer). Each network node runs a
// Node, a state machine over the states of Fig. 2:
//
//	Z (asleep) → A₀ → { C₀ (leader) | R (requesting) }
//	R → A_{tc·(κ₂+1)} → A_{i+1} → … → C_i (colored)
//
// Nodes communicate only through the radio channel of internal/radio and
// never observe the topology, exactly as in the unstructured radio
// network model.
package core

import (
	"fmt"
	"math"
)

// Params collects the algorithm's four tunable constants (α, β, γ, σ of
// Sect. 4) together with the global estimates every node is assumed to
// know: n (network size), Δ (maximum degree, paper convention δ_v
// includes the node) and the bounded-independence parameters κ₁, κ₂.
type Params struct {
	// Alpha scales the waiting period ⌈αΔ log n⌉ a node observes upon
	// entering any state A_i before it starts competing.
	Alpha float64
	// Beta scales the ⌈β log n⌉ window a leader spends answering one
	// intra-cluster color request.
	Beta float64
	// Gamma scales the critical range ⌈γζ_i log n⌉ within which
	// competing counters force a reset.
	Gamma float64
	// Sigma scales the decision threshold ⌈σΔ log n⌉ a counter must
	// reach before its node irrevocably joins C_i.
	Sigma float64
	// N is the nodes' estimate of the network size.
	N int
	// Delta is the nodes' estimate of the maximum degree Δ.
	Delta int
	// Kappa1 and Kappa2 are the bounded-independence parameters.
	Kappa1, Kappa2 int
}

// logN returns the log n factor used throughout the algorithm (base-2,
// clamped so tiny networks still get nonzero phases).
func (p Params) logN() float64 {
	return math.Log2(math.Max(4, float64(p.N)))
}

// zeta returns ζ_i: 1 for the leader-election class 0 and Δ for every
// higher class (Algorithm 1, line 2).
func (p Params) zeta(class int32) float64 {
	if class == 0 {
		return 1
	}
	return float64(p.Delta)
}

// WaitSlots returns the waiting period ⌈αΔ log n⌉.
func (p Params) WaitSlots() int64 {
	return int64(math.Ceil(p.Alpha * float64(p.Delta) * p.logN()))
}

// Threshold returns the decision threshold ⌈σΔ log n⌉.
func (p Params) Threshold() int64 {
	return int64(math.Ceil(p.Sigma * float64(p.Delta) * p.logN()))
}

// CriticalRange returns ⌈γζ_i log n⌉ for verification class i.
func (p Params) CriticalRange(class int32) int64 {
	return int64(math.Ceil(p.Gamma * p.zeta(class) * p.logN()))
}

// ServeSlots returns the leader's per-request response window
// ⌈β log n⌉.
func (p Params) ServeSlots() int64 {
	return int64(math.Ceil(p.Beta * p.logN()))
}

// PSend returns the sending probability of competing (A_i), requesting
// (R) and colored non-leader (C_i, i>0) nodes: 1/(κ₂Δ).
func (p Params) PSend() float64 {
	return 1 / (float64(p.Kappa2) * float64(p.Delta))
}

// PLeader returns the leaders' sending probability 1/κ₂.
func (p Params) PLeader() float64 {
	return 1 / float64(p.Kappa2)
}

// Validate reports configuration errors.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("core: N = %d", p.N)
	}
	if p.Delta < 2 {
		return fmt.Errorf("core: Delta = %d (need ≥ 2)", p.Delta)
	}
	if p.Kappa1 < 1 || p.Kappa2 < p.Kappa1 {
		return fmt.Errorf("core: kappa1 = %d, kappa2 = %d", p.Kappa1, p.Kappa2)
	}
	if p.Alpha <= 0 || p.Beta <= 0 || p.Gamma <= 0 || p.Sigma <= 0 {
		return fmt.Errorf("core: non-positive constants α=%g β=%g γ=%g σ=%g",
			p.Alpha, p.Beta, p.Gamma, p.Sigma)
	}
	return nil
}

// Scale returns a copy with α, β, γ, σ multiplied by s — the knob the
// parameter-sweep experiment (E7) turns to locate the point where the
// paper's "significantly smaller values suffice" claim breaks down.
func (p Params) Scale(s float64) Params {
	q := p
	q.Alpha *= s
	q.Beta *= s
	q.Gamma *= s
	q.Sigma *= s
	return q
}

// Theoretical returns the constants proved sufficient in Sect. 4/5:
//
//	γ = 5κ₂ / ( [e⁻¹(1−1/κ₂)]^{κ₁/κ₂} · [e⁻¹(1−1/(κ₂Δ))]^{1/κ₂} )
//	σ = 10e²κ₂ / ((1−1/κ₂)(1−1/(κ₂Δ)))
//	β ≥ γ                        (Lemma 8)
//	α > 2γκ₂ + σ + 1             (Lemma 7)
//
// These are enormously conservative (γ ≈ 127, σ ≈ 1409 for UDG values
// κ₁ = 5, κ₂ = 18); the paper itself notes that simulations need far
// smaller values — see Practical.
func Theoretical(n, delta, kappa1, kappa2 int) Params {
	if kappa2 < 2 {
		kappa2 = 2 // the paper's formulas assume κ₂ ≥ 2 (divisions by 1−1/κ₂)
	}
	if kappa1 < 1 {
		kappa1 = 1
	}
	if delta < 2 {
		delta = 2
	}
	k1, k2, d := float64(kappa1), float64(kappa2), float64(delta)
	inner1 := math.Pow((1/math.E)*(1-1/k2), k1/k2)
	inner2 := math.Pow((1/math.E)*(1-1/(k2*d)), 1/k2)
	gamma := 5 * k2 / (inner1 * inner2)
	sigma := 10 * math.E * math.E * k2 / ((1 - 1/k2) * (1 - 1/(k2*d)))
	return Params{
		Alpha:  2*gamma*k2 + sigma + 2,
		Beta:   gamma,
		Gamma:  gamma,
		Sigma:  sigma,
		N:      n,
		Delta:  delta,
		Kappa1: kappa1,
		Kappa2: kappa2,
	}
}

// Practical returns the scaled-down constants used by the experiments.
// Sect. 4 of the paper: "Simulation results show that in networks whose
// nodes are uniformly distributed at random significantly smaller values
// suffice. In fact, the constants are sufficiently small to yield a
// practically efficient coloring algorithm."
//
// The structure mirrors the theoretical formulas — γ grows linearly in
// κ₂ (a decided node notifies its critically-close neighbors at rate
// ≈ 1/κ₂ per slot, so the safety margin must scale with κ₂), σ exceeds
// 2γ (the Theorem 2 proof needs counters unresettable across a full
// critical range before the threshold), and β = γ (Lemma 8) — but the
// multipliers are an order of magnitude smaller than the proved ones.
// Experiment E7 sweeps a scale factor around these values to locate the
// correctness/runtime trade-off empirically.
func Practical(n, delta, kappa1, kappa2 int) Params {
	if kappa2 < 2 {
		kappa2 = 2
	}
	if kappa1 < 1 {
		kappa1 = 1
	}
	if delta < 2 {
		delta = 2
	}
	gamma := float64(kappa2) + 2
	return Params{
		Alpha:  2,
		Beta:   gamma,
		Gamma:  gamma,
		Sigma:  2*gamma + 4,
		N:      n,
		Delta:  delta,
		Kappa1: kappa1,
		Kappa2: kappa2,
	}
}

// Ablation disables individual safeguards of the algorithm so the
// experiments can demonstrate why they are needed (Sect. 4 discusses the
// failure modes at length).
type Ablation struct {
	// NoCompetitorList replaces χ(P_v) by 0: resets ignore the locally
	// stored competitor counters. Sect. 4 predicts nodes then reset into
	// each other's critical ranges, re-enabling cascading resets.
	NoCompetitorList bool
	// NaiveReset replaces the critical-range rule with the naive scheme
	// the paper rejects: reset whenever a received counter is larger
	// than one's own. Predicts starvation in some network regions.
	NaiveReset bool
	// LeaderAssignmentMemory departs from the pseudocode in the
	// opposite, strengthening direction: a leader remembers which
	// intra-cluster color it assigned to each requester and re-serves
	// the SAME tc on a re-request (Algorithm 3 as written hands out a
	// fresh, higher tc, which inflates the palette in the rare case a
	// node misses its entire ⌈β log n⌉ response window). Harmless to
	// correctness either way; this variant keeps Corollary 1's windows
	// tight even under heavy loss.
	LeaderAssignmentMemory bool
}
