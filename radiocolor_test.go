package radiocolor

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

func TestColorGraphPath(t *testing.T) {
	adj := [][]int{{1}, {0, 2}, {1, 3}, {2}}
	out, err := ColorGraph(adj, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("outcome not OK: %+v", out)
	}
	for v, ns := range adj {
		for _, u := range ns {
			if out.Colors[v] == out.Colors[u] {
				t.Errorf("adjacent nodes %d, %d share color %d", v, u, out.Colors[v])
			}
		}
	}
	if len(out.Leaders) == 0 {
		t.Error("no leaders")
	}
	if out.MaxLatency <= 0 || out.Slots <= 0 {
		t.Errorf("timing missing: %+v", out)
	}
}

func TestColorGraphValidation(t *testing.T) {
	if _, err := ColorGraph(nil, Options{}); err == nil {
		t.Error("empty graph accepted")
	}
	if _, err := ColorGraph([][]int{{0}}, Options{}); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := ColorGraph([][]int{{5}}, Options{}); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
	if _, err := ColorGraph([][]int{{1}, {0}}, Options{WakeupName: "bogus"}); err == nil {
		t.Error("unknown wakeup accepted")
	}
}

func TestColorUnitDisk(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	points := make([][2]float64, 70)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 5, r.Float64() * 5}
	}
	out, err := ColorUnitDisk(points, 1.2, Options{Seed: 9, WakeupName: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.OK() {
		t.Fatalf("outcome not OK: proper=%v complete=%v", out.Proper, out.Complete)
	}
	// UDG parameter bounds from Sect. 2.
	if out.Kappa1 > 5 || out.Kappa2 > 18 {
		t.Errorf("κ out of UDG bounds: %d/%d", out.Kappa1, out.Kappa2)
	}
	if out.MaxColor >= (out.Delta)*(out.Kappa2+1)+out.Kappa2 {
		t.Errorf("max color %d out of O(κ₂Δ) band", out.MaxColor)
	}
}

func TestColorUnitDiskValidation(t *testing.T) {
	if _, err := ColorUnitDisk([][2]float64{{0, 0}}, 0, Options{}); err == nil {
		t.Error("non-positive radius accepted")
	}
}

func TestTDMAFromOutcome(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	points := make([][2]float64, 60)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 4, r.Float64() * 4}
	}
	out, err := ColorUnitDisk(points, 1.1, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := out.TDMA()
	if err != nil {
		t.Fatal(err)
	}
	if s.DirectConflicts != 0 {
		t.Errorf("TDMA has %d direct conflicts", s.DirectConflicts)
	}
	if s.MaxInterferers > out.Kappa1 {
		t.Errorf("interferers %d exceed κ₁ %d", s.MaxInterferers, out.Kappa1)
	}
	if s.FrameLen != out.MaxColor+1 {
		t.Errorf("frame length %d vs max color %d", s.FrameLen, out.MaxColor)
	}
	if s.SuccessRate <= 0 || s.SuccessRate > 1 {
		t.Errorf("success rate %v", s.SuccessRate)
	}
	for v, l := range s.LocalFrameLens {
		if l < 1 || l > s.FrameLen {
			t.Errorf("local frame len[%d] = %d", v, l)
		}
	}
}

func TestTDMARejectsBadOutcome(t *testing.T) {
	out := &Outcome{Proper: false, Complete: true}
	if _, err := out.TDMA(); err == nil {
		t.Error("improper outcome scheduled")
	}
}

func TestDeterministicAcrossWorkers(t *testing.T) {
	adj := [][]int{}
	const n = 40
	for i := 0; i < n; i++ {
		var ns []int
		if i > 0 {
			ns = append(ns, i-1)
		}
		if i < n-1 {
			ns = append(ns, i+1)
		}
		adj = append(adj, ns)
	}
	a, err := ColorGraph(adj, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ColorGraph(adj, Options{Seed: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Colors {
		if a.Colors[i] != b.Colors[i] {
			t.Fatalf("worker count changed node %d: %d vs %d", i, a.Colors[i], b.Colors[i])
		}
	}
	if a.Slots != b.Slots {
		t.Errorf("slot counts differ: %d vs %d", a.Slots, b.Slots)
	}
}

func TestParamScaleSlowsButColors(t *testing.T) {
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	fast, err := ColorGraph(adj, Options{Seed: 6, ParamScale: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := ColorGraph(adj, Options{Seed: 6, ParamScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !fast.OK() || !slow.OK() {
		t.Fatal("triangle runs failed")
	}
	if slow.MaxLatency <= fast.MaxLatency {
		t.Errorf("scaling up constants should slow the run: %d vs %d", slow.MaxLatency, fast.MaxLatency)
	}
}

func TestMaxSlotsBudgetRespected(t *testing.T) {
	adj := [][]int{{1}, {0}}
	out, err := ColorGraph(adj, Options{Seed: 1, MaxSlots: 5})
	if err != nil {
		t.Fatal(err)
	}
	if out.Complete {
		t.Error("5 slots cannot complete the protocol")
	}
	if out.Slots > 5 {
		t.Errorf("budget exceeded: %d", out.Slots)
	}
}

// TestTilingPublic pins the public tiled-kernel surface: a tiled run
// produces a proper complete coloring, is bit-deterministic for fixed
// options (including across worker counts), maps fault reports back to
// caller node ids, and rejects invalid Tiling values. The underlying
// engine identity is pinned by the internal/radio differential suite;
// this is the library-level wrapper contract (relabel, run, map back).
func TestTilingPublic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	points := make([][2]float64, 90)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 5, r.Float64() * 5}
	}
	tiled, err := ColorUnitDisk(points, 1.2, Options{Seed: 3, Tiling: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !tiled.OK() {
		t.Fatalf("tiled outcome not OK: proper=%v complete=%v", tiled.Proper, tiled.Complete)
	}

	// Determinism across worker counts: tiles are order-free, so the
	// parallel sweeps must not change a single field.
	again, err := ColorUnitDisk(points, 1.2, Options{Seed: 3, Tiling: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(tiled)
	b, _ := json.Marshal(again)
	if !bytes.Equal(a, b) {
		t.Fatalf("tiled outcome changed with Workers=4:\n %s\n %s", a, b)
	}

	// Auto tile count on the pure-graph path (BFS relabeling).
	adj := [][]int{}
	const n = 48
	for i := 0; i < n; i++ {
		adj = append(adj, []int{(i + n - 1) % n, (i + 1) % n})
	}
	ring, err := ColorGraph(adj, Options{Seed: 7, Tiling: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !ring.OK() {
		t.Fatalf("tiled ring outcome not OK: %+v", ring)
	}

	// Fault reports must speak original node ids after the internal
	// relabeling: crash node 5 permanently and expect exactly it down.
	fc, err := ParseFaults("crash=5@40")
	if err != nil {
		t.Fatal(err)
	}
	crashed, err := ColorGraph(adj, Options{Seed: 7, Tiling: 4, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	if crashed.Faults == nil || len(crashed.Faults.Down) != 1 || crashed.Faults.Down[0] != 5 {
		t.Fatalf("crashed node not mapped back to caller id 5: %+v", crashed.Faults)
	}

	// Invalid Tiling is a validation error, caught before any work.
	if _, err := ColorGraph(adj, Options{Tiling: -2}); err == nil {
		t.Error("Tiling=-2 accepted")
	}
}

func TestTilingCrashRestartRegression(t *testing.T) {
	// fault.Profile.Permute under Options.Tiling, composed with a
	// restart schedule: the crash victim's id must follow it through
	// the relabeling, the restarted node must re-decide, and every
	// report must speak caller ids. Regression guard for the permute ×
	// restart × tiling composition, which no other test exercised. The
	// restart slot (2500) sits far past cold convergence (~850 slots on
	// this ring), so a decision after it can only belong to the victim
	// or a neighbor stalled waiting on it — anything else is an id
	// mapped back through the wrong permutation.
	adj := [][]int{}
	const n = 48
	for i := 0; i < n; i++ {
		adj = append(adj, []int{(i + n - 1) % n, (i + 1) % n})
	}
	fc, err := ParseFaults("crash=5@40:2500")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ColorGraph(adj, Options{Seed: 7, Tiling: 4, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	fo := out.Faults
	if fo == nil || fo.Crashes != 1 || fo.Restarts != 1 {
		t.Fatalf("fault counters: %+v", fo)
	}
	if len(fo.Down) != 0 {
		t.Errorf("restarted node still down: %v", fo.Down)
	}
	if !out.OK() {
		t.Fatalf("restarted run not OK: proper=%v complete=%v", out.Proper, out.Complete)
	}
	// The victim's decision postdates its restart (latency counts from
	// its original wake at slot 0).
	if out.PerNodeLatency[5] < 2500 {
		t.Errorf("node 5 latency %d predates its restart at slot 2500", out.PerNodeLatency[5])
	}
	// Only the victim's 2-hop ring neighborhood may be dragged past the
	// restart slot by waiting on it.
	for v, l := range out.PerNodeLatency {
		if l >= 2500 && (v < 3 || v > 7) {
			t.Errorf("node %d latency %d postdates the restart (id mapping)", v, l)
		}
	}

	// Untiled reference: the same schedule without relabeling agrees on
	// the fault verdict (executions differ numerically; the contract is
	// the verdict, not the colors).
	ref, err := ColorGraph(adj, Options{Seed: 7, Faults: fc})
	if err != nil {
		t.Fatal(err)
	}
	if ref.Faults == nil || ref.Faults.Crashes != 1 || ref.Faults.Restarts != 1 || !ref.OK() {
		t.Fatalf("untiled reference disagrees: %+v ok=%v", ref.Faults, ref.OK())
	}
	if ref.PerNodeLatency[5] < 2500 {
		t.Errorf("untiled node 5 latency %d predates its restart", ref.PerNodeLatency[5])
	}
}
