package main

import (
	"strings"
	"testing"
)

func TestMakeDeployment(t *testing.T) {
	cases := []struct {
		topo string
		n    int
	}{
		{"udg", 30}, {"big", 30}, {"corridor", 30}, {"clustered", 30},
		{"grid", 25}, {"ring", 12}, {"clique", 8}, {"star", 9}, {"tree", 15},
	}
	for _, c := range cases {
		d, err := makeDeployment(c.topo, c.n, 5, 1.2, 5, 1)
		if err != nil {
			t.Errorf("%s: %v", c.topo, err)
			continue
		}
		if d.N() == 0 {
			t.Errorf("%s: empty deployment", c.topo)
		}
		if err := d.G.Validate(); err != nil {
			t.Errorf("%s: invalid graph: %v", c.topo, err)
		}
	}
	// Grid rounds n down to a square.
	d, err := makeDeployment("grid", 30, 5, 1.2, 0, 1)
	if err != nil || d.N() != 25 {
		t.Errorf("grid sizing: n=%d err=%v", d.N(), err)
	}
	if _, err := makeDeployment("nope", 10, 5, 1, 0, 1); err == nil {
		t.Error("unknown topology accepted")
	}
}

func TestSummarizeFloats(t *testing.T) {
	s := summarizeFloats([]float64{1, 2, 3, 4})
	for _, want := range []string{"mean=", "p90=", "max=4"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary %q missing %q", s, want)
		}
	}
}
