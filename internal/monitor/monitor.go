// Package monitor provides an online, god's-eye-view invariant checker:
// a radio.Observer that validates Theorem 2 (every color class stays an
// independent set) at the exact slot each node decides, instead of only
// at the end of a run. It pinpoints the first violating decision —
// invaluable when tuning protocol constants — and tracks progress so
// stalls (starvation, the failure mode of E11's ablations) are detected
// while they happen.
package monitor

import (
	"fmt"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
)

// Violation records an independence violation at decision time.
type Violation struct {
	Slot     int64
	Node     radio.NodeID
	Neighbor radio.NodeID
	Color    int32
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("slot %d: node %d decided color %d already held by neighbor %d",
		v.Slot, v.Node, v.Color, v.Neighbor)
}

// Monitor implements radio.Observer over a concrete protocol run.
type Monitor struct {
	radio.NopObserver

	// StallSlots triggers a stall record when no node decides for this
	// many consecutive slots while undecided nodes remain (0 disables).
	StallSlots int64

	g     *graph.Graph
	nodes []*core.Node

	violations []Violation
	decided    []bool
	numDecided int
	lastDecide int64
	stalledAt  []int64
	decisions  []int64 // per-slot cumulative decision counts (sampled)
}

// New creates a monitor for the given run.
func New(g *graph.Graph, nodes []*core.Node) *Monitor {
	if g.N() != len(nodes) {
		panic(fmt.Sprintf("monitor: %d nodes for %d vertices", len(nodes), g.N()))
	}
	return &Monitor{
		g:          g,
		nodes:      nodes,
		decided:    make([]bool, g.N()),
		lastDecide: -1,
	}
}

// OnDecide implements radio.Observer: check the fresh decision against
// all already-decided neighbors.
func (m *Monitor) OnDecide(slot int64, node radio.NodeID) {
	m.decided[node] = true
	m.numDecided++
	m.lastDecide = slot
	color := m.nodes[node].Color()
	for _, u := range m.g.Adj(int(node)) {
		if m.decided[u] && m.nodes[u].Color() == color {
			m.violations = append(m.violations, Violation{
				Slot: slot, Node: node, Neighbor: radio.NodeID(u), Color: color,
			})
		}
	}
}

// OnSlot implements radio.Observer: stall detection.
func (m *Monitor) OnSlot(slot int64) {
	if m.StallSlots <= 0 || m.numDecided == len(m.nodes) {
		return
	}
	ref := m.lastDecide
	if ref < 0 {
		ref = 0
	}
	if slot-ref >= m.StallSlots && (len(m.stalledAt) == 0 || slot-m.stalledAt[len(m.stalledAt)-1] >= m.StallSlots) {
		m.stalledAt = append(m.stalledAt, slot)
	}
}

// Violations returns every independence violation observed, in decision
// order. Empty means Theorem 2 held throughout the run.
func (m *Monitor) Violations() []Violation { return m.violations }

// Stalls returns the slots at which stall warnings fired.
func (m *Monitor) Stalls() []int64 { return m.stalledAt }

// Decided returns how many nodes have decided so far.
func (m *Monitor) Decided() int { return m.numDecided }
