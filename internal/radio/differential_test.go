package radio_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

// These tests pin the CSR kernel bit-for-bit to the retained seed slot
// loop (reference.go): over randomized graphs × wakeup schedules ×
// seeds, every engine variant — reference and CSR, Workers ∈ {1, 4} —
// must produce an identical Result (colors, slots, message counts). Any
// divergence means the rewritten kernel silently changed the model.

// diffCase is one (graph, schedule, seed) cell of the matrix.
type diffCase struct {
	name    string
	g       *graph.Graph
	wake    []int64
	seed    int64
	drop    float64
	capture float64
}

// diffBudget bounds each run: bit-identity must hold whether or not the
// protocol terminated, so a fixed budget keeps the matrix fast while
// still crossing wake-up ramps, contention peaks, and decisions.
const diffBudget = 2200

func erdosRenyi(n int, p float64, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// diffParams measures protocol parameters for g the same way the
// experiment runner does, at test-sized budgets.
func diffParams(g *graph.Graph) core.Params {
	k := g.Kappa(graph.KappaOptions{Budget: 20_000, MaxNeighborhood: 60})
	return core.Practical(g.N(), g.MaxDegree(), k.K1, k.K2)
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"er50", erdosRenyi(50, 0.08, 11)},
		{"er50dense", erdosRenyi(50, 0.2, 12)},
		{"udg60", topology.UDGWithTargetDegree(60, 8, 13).G},
		{"clique12", topology.Clique(12).G},
		{"star30", topology.Star(30).G},
	}
	var cases []diffCase
	for _, gr := range graphs {
		par := diffParams(gr.g)
		for _, pat := range radio.WakePatterns {
			for _, seed := range []int64{1, 42} {
				c := diffCase{
					name: fmt.Sprintf("%s/%s/seed%d", gr.name, pat.Name, seed),
					g:    gr.g,
					wake: pat.Make(gr.g.N(), par.WaitSlots(), seed),
					seed: seed,
				}
				cases = append(cases, c)
			}
		}
	}
	// Drop and capture exercise the stateless coins, which must agree
	// across kernels and worker counts too.
	base := graphs[0].g
	par := diffParams(base)
	wake := radio.WakeUniform(base.N(), 4*par.WaitSlots(), 7)
	cases = append(cases,
		diffCase{name: "er50/drop", g: base, wake: wake, seed: 7, drop: 0.2},
		diffCase{name: "er50/capture", g: base, wake: wake, seed: 7, capture: 0.5},
		diffCase{name: "er50/drop+capture", g: base, wake: wake, seed: 7, drop: 0.1, capture: 0.3},
	)
	return cases
}

// runVariant executes one engine variant on fresh protocol instances and
// returns the Result together with the per-node colors and intra-cluster
// colors the protocols decided on.
func runVariant(t *testing.T, c diffCase, workers int, reference bool) (*radio.Result, []int32, []int32) {
	t.Helper()
	par := diffParams(c.g)
	nodes, protos := core.Nodes(c.g.N(), c.seed, par, core.Ablation{})
	cfg := radio.Config{
		G: c.g, Protocols: protos, Wake: c.wake,
		MaxSlots: diffBudget, NEstimate: par.N,
		DropProb: c.drop, DropSeed: c.seed, CaptureProb: c.capture,
		Workers: workers,
	}
	var res *radio.Result
	var err error
	if reference {
		res, err = radio.RunReference(cfg)
	} else {
		res, err = radio.Run(cfg)
	}
	if err != nil {
		t.Fatalf("%s workers=%d reference=%v: %v", c.name, workers, reference, err)
	}
	colors := make([]int32, len(nodes))
	tcs := make([]int32, len(nodes))
	for i, v := range nodes {
		colors[i] = v.Color()
		tcs[i] = v.TC()
	}
	return res, colors, tcs
}

func TestDifferentialCSRMatchesReference(t *testing.T) {
	cases := diffCases(t)
	if testing.Short() && len(cases) > 12 {
		cases = cases[:12]
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			refRes, refColors, refTCs := runVariant(t, c, 1, true)
			for _, variant := range []struct {
				label     string
				workers   int
				reference bool
			}{
				{"reference/workers=4", 4, true},
				{"csr/workers=1", 1, false},
				{"csr/workers=4", 4, false},
			} {
				res, colors, tcs := runVariant(t, c, variant.workers, variant.reference)
				if !reflect.DeepEqual(res, refRes) {
					t.Fatalf("%s: Result diverged from sequential reference\n ref: %+v\n got: %+v", variant.label, refRes, res)
				}
				if !reflect.DeepEqual(colors, refColors) {
					t.Fatalf("%s: colors diverged from sequential reference", variant.label)
				}
				if !reflect.DeepEqual(tcs, refTCs) {
					t.Fatalf("%s: intra-cluster colors diverged from sequential reference", variant.label)
				}
			}
		})
	}
}

// TestDifferentialScriptedCollisions drives both kernels with scripted
// protocols that force dense simultaneous transmissions — the regime
// where the resolve/deliver rewrite (count accumulation, lowest-sender
// selection, capture) is most likely to drift.
func TestDifferentialScriptedCollisions(t *testing.T) {
	for _, seed := range []int64{3, 9, 27} {
		g := erdosRenyi(40, 0.15, seed)
		r := rand.New(rand.NewSource(seed * 1000))
		scripts := make([][]bool, g.N())
		for i := range scripts {
			scripts[i] = make([]bool, 60)
			for s := range scripts[i] {
				scripts[i][s] = r.Float64() < 0.35
			}
		}
		wake := radio.WakeUniform(g.N(), 20, seed)
		build := func() []radio.Protocol {
			protos := make([]radio.Protocol, g.N())
			for i := range protos {
				protos[i] = &scriptedDiffProto{id: radio.NodeID(i), script: scripts[i]}
			}
			return protos
		}
		run := func(workers int, reference bool) *radio.Result {
			cfg := radio.Config{
				G: g, Protocols: build(), Wake: wake,
				MaxSlots: 120, CaptureProb: 0.4, DropSeed: seed,
				Workers: workers,
			}
			var res *radio.Result
			var err error
			if reference {
				res, err = radio.RunReference(cfg)
			} else {
				res, err = radio.Run(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1, true)
		for _, w := range []int{1, 4} {
			if got := run(w, false); !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: CSR workers=%d diverged\n ref: %+v\n got: %+v", seed, w, ref, got)
			}
			if got := run(w, true); !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: reference workers=%d diverged\n ref: %+v\n got: %+v", seed, w, ref, got)
			}
		}
	}
}

type scriptedDiffProto struct {
	id     radio.NodeID
	script []bool
	local  int64
	recvs  int
}

type diffMsg struct {
	from radio.NodeID
}

func (m *diffMsg) Sender() radio.NodeID { return m.from }
func (m *diffMsg) Bits(n int) int       { return 16 }

func (p *scriptedDiffProto) Start(slot int64) {}
func (p *scriptedDiffProto) Send(slot int64) radio.Message {
	i := p.local
	p.local++
	if i < int64(len(p.script)) && p.script[i] {
		return &diffMsg{from: p.id}
	}
	return nil
}
func (p *scriptedDiffProto) Recv(slot int64, msg radio.Message) { p.recvs++ }
func (p *scriptedDiffProto) Done() bool                         { return p.local >= int64(len(p.script)) }
