package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radiocolor"
)

func submitSweep(t *testing.T, ts *httptest.Server, req SweepRequest) (*http.Response, SweepStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/sweeps", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st SweepStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode accepted sweep body: %v", err)
		}
	}
	return resp, st
}

func getSweep(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET sweep %s: status %d", id, resp.StatusCode)
	}
	var st SweepStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitSweepTerminal(t *testing.T, ts *httptest.Server, id string) SweepStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getSweep(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s did not finish", id)
	return SweepStatus{}
}

func TestSweepExpandDeterministicOrder(t *testing.T) {
	req := SweepRequest{
		Base:   JobRequest{Topology: &TopologySpec{Kind: "ring", N: 4}},
		N:      []int{4, 8},
		Seed:   []int64{1, 2, 3},
		Wakeup: []string{"synchronous", "uniform"},
	}
	cells, err := req.expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 12 {
		t.Fatalf("expanded %d cells, want 12", len(cells))
	}
	// Nesting order is n → seed → wakeup: the last dimension varies
	// fastest.
	want := []struct {
		n      int
		seed   int64
		wakeup string
	}{
		{4, 1, "synchronous"}, {4, 1, "uniform"},
		{4, 2, "synchronous"}, {4, 2, "uniform"},
		{4, 3, "synchronous"}, {4, 3, "uniform"},
		{8, 1, "synchronous"}, {8, 1, "uniform"},
		{8, 2, "synchronous"}, {8, 2, "uniform"},
		{8, 3, "synchronous"}, {8, 3, "uniform"},
	}
	for i, w := range want {
		c := cells[i]
		if c.Topology.N != w.n || c.Seed != w.seed || c.Wakeup != w.wakeup {
			t.Fatalf("cell %d = {n:%d seed:%d wakeup:%s}, want %+v", i, c.Topology.N, c.Seed, c.Wakeup, w)
		}
	}
	// Sweeping n without a topology cannot work.
	bad := SweepRequest{Base: JobRequest{Adjacency: ringAdjacency(4)}, N: []int{4, 8}}
	if _, err := bad.expand(); err == nil {
		t.Fatal("expand accepted an n sweep without a topology")
	}
}

// TestSweepAggregateMatchesIndividualJobs is the issue's byte-identity
// contract: a 12-cell sweep's aggregate must contain, for each cell,
// exactly the outcome bytes that submitting that cell as an individual
// job would have stored. Real simulations on small rings keep it fast.
func TestSweepAggregateMatchesIndividualJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueCap: 64})
	req := SweepRequest{
		Base:   JobRequest{Topology: &TopologySpec{Kind: "ring", N: 8}},
		N:      []int{8, 12},
		Seed:   []int64{1, 2, 3},
		Wakeup: []string{"synchronous", "uniform"},
	}
	resp, st := submitSweep(t, ts, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/v1/sweeps/"+st.ID {
		t.Fatalf("Location %q", loc)
	}
	if st.Cells != 12 || len(st.CellIDs) != 12 {
		t.Fatalf("sweep admitted with %d cells (%d ids), want 12", st.Cells, len(st.CellIDs))
	}

	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != StateDone || final.CellsDone != 12 {
		t.Fatalf("sweep ended %s with %d done cells: %+v", final.State, final.CellsDone, final)
	}
	if final.Result == nil || len(final.Result.Cells) != 12 {
		t.Fatalf("aggregate missing or short: %+v", final.Result)
	}

	cells, err := req.expand()
	if err != nil {
		t.Fatal(err)
	}
	for i, cellReq := range cells {
		cell := final.Result.Cells[i]
		if cell.Cell != i || cell.State != StateDone {
			t.Fatalf("aggregate cell %d = %+v", i, cell)
		}
		// Run the identical request as a plain job and compare the raw
		// result bytes in the store.
		jresp, jst := submit(t, ts, cellReq)
		if jresp.StatusCode != http.StatusAccepted {
			t.Fatalf("cell %d individual submit: status %d", i, jresp.StatusCode)
		}
		if got := waitTerminal(t, ts, jst.ID); got.State != StateDone {
			t.Fatalf("cell %d individual job ended %s", i, got.State)
		}
		rec, err := s.st.Get(jst.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(cell.Outcome, rec.Result) {
			t.Fatalf("cell %d aggregate bytes differ from individual job:\nsweep: %s\nsolo:  %s",
				i, cell.Outcome, rec.Result)
		}
	}

	// The control counters saw the sweep.
	snap := s.ctrl.Snapshot()
	if snap.Sweeps != 1 || snap.SweepCells != 12 || snap.SweepsDone != 1 {
		t.Fatalf("control counters: %+v", snap)
	}
}

func TestSweepValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxSweepCells: 4})
	// A bad cell is reported with its index and nothing is admitted.
	resp, _ := submitSweep(t, ts, SweepRequest{
		Base:   JobRequest{Adjacency: ringAdjacency(4)},
		Wakeup: []string{"synchronous", "no-such-schedule"},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wakeup cell: status %d", resp.StatusCode)
	}
	// Grid size over MaxSweepCells is refused outright.
	resp, _ = submitSweep(t, ts, SweepRequest{
		Base: JobRequest{Adjacency: ringAdjacency(4)},
		Seed: []int64{1, 2, 3, 4, 5},
	})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized sweep: status %d", resp.StatusCode)
	}
	// Unknown sweep ids 404, and plain job ids are not sweeps.
	r, err := ts.Client().Get(ts.URL + "/v1/sweeps/s-999999")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown sweep: status %d", r.StatusCode)
	}
}

func TestSweepCancelFansOut(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers: 1,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(gate)
	_, st := submitSweep(t, ts, SweepRequest{
		Base: JobRequest{Adjacency: ringAdjacency(4)},
		Seed: []int64{1, 2, 3, 4},
	})
	// Let the single worker pick up one cell so the cancel exercises
	// both the queued and the running paths.
	waitFor(t, func() bool {
		c, err := s.st.Counts()
		return err == nil && c["running"] == 1
	})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sweeps/"+st.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep cancel: status %d", resp.StatusCode)
	}
	final := waitSweepTerminal(t, ts, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("canceled sweep ended %s", final.State)
	}
	waitFor(t, func() bool {
		cur := getSweep(t, ts, st.ID)
		return cur.CellsQueued == 0 && cur.CellsRunning == 0
	})
	if cur := getSweep(t, ts, st.ID); cur.CellsFailed != 4 || cur.CellsDone != 0 {
		t.Fatalf("cells after cancel: %+v", cur)
	}
}

// TestSweepStream exercises the aggregated stream: cell events as each
// cell lands, a final done frame carrying the aggregate.
func TestSweepStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, StreamInterval: 5 * time.Millisecond})
	_, st := submitSweep(t, ts, SweepRequest{
		Base: JobRequest{Adjacency: ringAdjacency(6)},
		Seed: []int64{1, 2, 3},
	})
	resp, err := ts.Client().Get(ts.URL + "/v1/sweeps/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	cells := map[int]bool{}
	var last SweepStreamEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev SweepStreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Type == "cell" {
			if ev.Cell == nil {
				t.Fatal("cell event without a cell")
			}
			cells[ev.Cell.Cell] = true
		}
		last = ev
	}
	if len(cells) != 3 {
		t.Fatalf("saw %d cell events, want 3", len(cells))
	}
	if last.Type != "done" || last.Status == nil || last.Status.Result == nil {
		t.Fatalf("last event = %+v", last)
	}
	if got := len(last.Status.Result.Cells); got != 3 {
		t.Fatalf("done aggregate has %d cells", got)
	}
	// SSE replay of a finished sweep.
	sreq, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/sweeps/"+st.ID+"/stream", nil)
	sreq.Header.Set("Accept", "text/event-stream")
	sresp, err := ts.Client().Do(sreq)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	raw := new(strings.Builder)
	if _, err := io.Copy(raw, sresp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), "event: done\n") {
		t.Fatalf("SSE replay missing done frame: %q", raw.String())
	}
}
