package experiment

import (
	"fmt"
	"math/rand"
	"reflect"

	"radiocolor/internal/baseline/cds"
	"radiocolor/internal/churn"
	"radiocolor/internal/core"
	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// E25CrossModel runs the paper's protocol on IDENTICAL unit-disk
// deployments under three reception models — the paper's graph rule,
// the physical SINR model (noise floor matched so the decode range
// coincides with the unit-disk radius), and 2-channel random hopping —
// and compares correctness, palette size, time and energy. The
// deployment, wake-up schedule and every protocol coin are fixed per
// trial; only the medium differs, so any spread in the columns is the
// reception model's doing. The interesting cell is SINR: the protocol's
// analysis assumes the graph rule, so surviving cumulative interference
// and capture (deliveries the graph rule would have annihilated) is an
// out-of-model robustness result, not a theorem.
func E25CrossModel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E25: reception models — graph rule vs SINR vs multi-channel on one deployment",
		"medium", "correct", "mean colors", "mean maxT", "tx/node", "captures", "drowned")
	n := o.scale(110, 40)
	const radius = 1.2
	models := []string{"graph", "sinr (matched)", "multichannel k=2"}
	type trialRes struct {
		ok                bool
		colors, maxT      float64
		txPerNode         float64
		captures, drowned float64
	}
	grid := parTrials(o, "E25", len(models), o.Trials, func(mi, tr int) trialRes {
		// The seed deliberately ignores mi: every model sees the same
		// deployment, schedule and protocol randomness.
		seed := trialSeed(o.Seed, 2500, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: radius, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		// The budget is sized for the slowest arm: channel hopping slows
		// the counter-paced protocol roughly k-fold (E21), and finished
		// runs stop early regardless.
		cfg := radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeUniform(d.N(), par.WaitSlots()/4, seed),
			MaxSlots: 40 * defaultBudget(par), NEstimate: par.N,
		}
		var res *radio.Result
		var err error
		switch mi {
		case 0:
			res, err = radio.Run(cfg)
		case 1:
			// 5% margin past the radius keeps border links decodable
			// under mild interference instead of exactly on threshold.
			m := medium.SINR{Alpha: 4, Beta: 1.5,
				NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, radius*1.05)}
			cfg.Medium, err = m.Bind(medium.Env{N: d.N(), Points: d.Points})
			if err == nil {
				res, err = radio.Run(cfg)
			}
		default:
			res, err = radio.RunMultiChannel(cfg, 2, seed)
		}
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		var r trialRes
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.maxT = float64(res.MaxLatency())
			palette := map[int32]bool{}
			for _, c := range cs {
				palette[c] = true
			}
			r.colors = float64(len(palette))
		}
		r.txPerNode = float64(res.Transmissions) / float64(d.N())
		r.captures = float64(res.Captures)
		r.drowned = float64(res.Drowned)
		return r
	})
	for mi, name := range models {
		correct := 0
		var colors, ts, tx, caps, drn []float64
		for _, r := range grid[mi] {
			if r.ok {
				correct++
				colors = append(colors, r.colors)
				ts = append(ts, r.maxT)
			}
			tx = append(tx, r.txPerNode)
			caps = append(caps, r.captures)
			drn = append(drn, r.drowned)
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", correct, o.Trials),
			stats.Mean(colors), stats.Mean(ts), stats.Mean(tx),
			stats.Mean(caps), stats.Mean(drn))
	}
	return t
}

// E26TiledKernel runs the REAL protocol on one Hilbert-relabeled
// deployment through the untiled and the tiled slot kernel and checks
// — the point of the differential harness — field-for-field identity:
// at fixed labels the two engines must agree on every decision slot,
// every color, and every delivery/collision count. The table reports
// only deterministic quantities (the experiments stdout contract:
// byte-identical at any -parallel), so throughput lives elsewhere —
// BENCH_kernel.json isolates the engine at 1M–10M nodes, and the
// EXPERIMENTS.md E26 prose carries one-off wall-clock ratios. The
// shared columns come from the untiled run; `identical` certifies the
// tiled run produced exactly the same ones.
func E26TiledKernel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E26: tiled slot kernel vs untiled loop (real protocol, shared Hilbert relabeling)",
		"n", "tiles", "slots", "colors", "deliveries", "collisions", "identical")
	sizes := []int{o.scale(2500, 500), o.scale(10_000, 1000)}
	for ci, n := range sizes {
		identical := 0
		var slots, deliveries, collisions int64
		var colors int
		tiles := radio.AutoTiles(n)
		if tiles < 4 {
			tiles = 4
		}
		for tr := 0; tr < o.Trials; tr++ {
			seed := trialSeed(o.Seed, 2600+ci, tr)
			d := topology.UDGWithTargetDegree(n, 10, seed)
			relabelHilbert(d)
			par := MeasureParams(d)
			wake := radio.WakeUniform(d.N(), par.WaitSlots()/4, seed)
			run := func(tileCount int) (*radio.Result, []int32) {
				nodes, protos := core.Nodes(d.N(), seed, par, core0)
				cfg := radio.Config{
					G: d.G, Protocols: protos, Wake: wake,
					MaxSlots: defaultBudget(par), NEstimate: par.N,
					Tiles: tileCount,
				}
				res, err := radio.Run(cfg)
				if err != nil {
					panic(err)
				}
				cs := make([]int32, d.N())
				for i, v := range nodes {
					cs[i] = v.Color()
				}
				return res, cs
			}
			uRes, uCols := run(0)
			tRes, tCols := run(tiles)
			same := uRes.Slots == tRes.Slots && reflect.DeepEqual(uCols, tCols) &&
				reflect.DeepEqual(uRes.DecideSlot, tRes.DecideSlot) &&
				uRes.Deliveries == tRes.Deliveries && uRes.Collisions == tRes.Collisions
			if same {
				identical++
			}
			slots += uRes.Slots
			deliveries += uRes.Deliveries
			collisions += uRes.Collisions
			palette := map[int32]bool{}
			for _, c := range uCols {
				palette[c] = true
			}
			colors += len(palette)
		}
		tn := int64(o.Trials)
		t.AddRow(fmt.Sprintf("%d", sizes[ci]), fmt.Sprintf("%d", tiles),
			fmt.Sprintf("%d", slots/tn), fmt.Sprintf("%d", int64(colors)/tn),
			fmt.Sprintf("%d", deliveries/tn), fmt.Sprintf("%d", collisions/tn),
			fmt.Sprintf("%d/%d", identical, o.Trials))
	}
	return t
}

// E27RecolorChurn measures how much cheaper repairing a perturbed
// coloring is than producing one from scratch, on the standard UDG
// sweep. Each trial first runs the protocol cold and records its
// convergence time; then it re-runs the identical execution with a
// churn schedule appended — after convergence, ~5% of the nodes leave
// and immediately rejoin, losing their colors (retract-repair
// semantics) — and records how long the network takes to become fully
// colored again. The perturbation re-contends against an already-quiet
// neighborhood, so recoloring k ≪ n nodes should beat the cold start's
// max-over-n convergence by a wide margin; the `speedup` column
// quantifies it. The last two columns repeat the comparison in the
// clean message-passing world via the CdS color-fixing baseline
// (internal/baseline/cds): rounds to fix a monochromatic start vs
// rounds to fix the same k-node perturbation of a proper coloring.
// The `proper` column counts trials whose repaired coloring is proper
// AND strictly faster than its own cold start, over the trials whose
// cold run converged properly at all — a seed the base protocol fails
// cold (whp, see E2) has no converged coloring to perturb and is
// excluded rather than averaged in as zeros.
func E27RecolorChurn(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E27: recolor after perturbation vs cold start (churn rejoin + CdS baseline)",
		"n", "perturbed", "cold slots", "recolor slots", "speedup", "cds cold", "cds fix", "proper")
	sizes := []int{o.scale(110, 40), o.scale(250, 80)}
	type trialRes struct {
		k                int
		coldOK           bool
		cold, recolor    float64
		cdsCold, cdsFix  float64
		proper, strictly bool
	}
	grid := parTrials(o, "E27", len(sizes), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 2700+ci, tr)
		n := sizes[ci]
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		budget := defaultBudget(par)
		runOnce := func(plan *churn.Plan, maxSlots int64) (*radio.Result, []int32) {
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			res, err := radio.Run(radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: maxSlots, NEstimate: par.N,
				Churn: plan,
			})
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			return res, cs
		}
		coldRes, coldCols := runOnce(nil, budget)
		if !coldRes.AllDone || !verify.Check(d.G, coldCols).OK() {
			// The BASE protocol failed this seed (its correctness is
			// whp — E2 records the rate). There is no converged
			// coloring to perturb, so the trial says nothing about
			// repair; it is excluded rather than averaged in as zeros.
			return trialRes{}
		}
		coldT := coldRes.MaxLatency()

		// Perturb ~5% of the nodes: leave right after convergence,
		// rejoin one slot later with cleared protocol state. Until the
		// first batch slot the churned run replays the cold run
		// bit-identically (same seed, same coins), so the measured
		// recolor window starts from exactly the converged coloring.
		k := n/20 + 2
		rng := rand.New(rand.NewSource(seed ^ 0x0c0ffee))
		victims := rng.Perm(n)[:k]
		at := coldT + 16
		sch := &churn.Schedule{}
		for _, v := range victims {
			sch.Leaves = append(sch.Leaves, churn.Event{Node: v, At: at})
			sch.Joins = append(sch.Joins, churn.Event{Node: v, At: at + 1})
		}
		plan, err := sch.Compile(churn.Env{G: d.G})
		if err != nil {
			panic(err)
		}
		chRes, chCols := runOnce(plan, at+1+budget)
		r := trialRes{k: k, coldOK: true, cold: float64(coldT)}
		if !chRes.AllDone {
			return r
		}
		var recolor int64
		for _, v := range victims {
			if lat := chRes.DecideSlot[v] - (at + 1); lat > recolor {
				recolor = lat
			}
		}
		r.recolor = float64(recolor)
		r.proper = verify.Check(d.G, chCols).OK()
		r.strictly = recolor < coldT

		// CdS comparator: fix-from-monochromatic (every node color 0 —
		// the worst cold start) vs fixing the same k victims after each
		// copies a neighbor's color (a guaranteed conflict per victim).
		maxRounds := 64*n + 1024
		cold, _, err := cds.Fix(d.G, make([]int32, n), seed, maxRounds)
		if err != nil {
			panic(err)
		}
		warm := append([]int32(nil), coldCols...)
		for _, v := range victims {
			if adj := d.G.Adj(v); len(adj) > 0 {
				warm[v] = coldCols[adj[0]]
			}
		}
		fix, _, err := cds.Fix(d.G, warm, seed, maxRounds)
		if err != nil {
			panic(err)
		}
		r.cdsCold = float64(cold.Rounds)
		r.cdsFix = float64(fix.Rounds)
		return r
	})
	for ci, n := range sizes {
		proper, valid := 0, 0
		var cold, recolor, cdsCold, cdsFix []float64
		k := 0
		for _, r := range grid[ci] {
			if !r.coldOK {
				continue // cold-start whp failure: nothing to repair
			}
			valid++
			if r.proper && r.strictly {
				proper++
			}
			k = r.k
			cold = append(cold, r.cold)
			recolor = append(recolor, r.recolor)
			cdsCold = append(cdsCold, r.cdsCold)
			cdsFix = append(cdsFix, r.cdsFix)
		}
		speedup := 0.0
		if m := stats.Mean(recolor); m > 0 {
			speedup = stats.Mean(cold) / m
		}
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", k),
			stats.Mean(cold), stats.Mean(recolor), speedup,
			stats.Mean(cdsCold), stats.Mean(cdsFix),
			fmt.Sprintf("%d/%d", proper, valid))
	}
	return t
}

// relabelHilbert renumbers a point deployment along the shared Hilbert
// relabeling pass — the tiled kernel's production path.
func relabelHilbert(d *topology.Deployment) {
	n := d.G.N()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, pt := range d.Points {
		xs[i], ys[i] = pt.X, pt.Y
	}
	p := graph.HilbertOrder(xs, ys)
	d.G = p.Apply(d.G)
	pts := make([]geom.Point, n)
	for old, nid := range p.Forward {
		pts[nid] = d.Points[old]
	}
	d.Points = pts
}
