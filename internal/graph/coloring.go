package graph

import "sort"

// GreedyColoring returns a centralized greedy vertex coloring in
// Welsh–Powell order (vertices by non-increasing degree, each taking the
// smallest color unused by its already-colored neighbors). It uses at
// most Δ colors in the paper's degree convention (δ_v counts the node,
// so a vertex has ≤ Δ−1 neighbors) and serves as the quality reference
// the experiments compare the distributed palette against: no
// distributed algorithm in the radio model can be expected to beat the
// centralized greedy count.
func (g *Graph) GreedyColoring() []int32 {
	order := make([]int32, g.n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		return len(g.adj[order[a]]) > len(g.adj[order[b]])
	})
	colors := make([]int32, g.n)
	for i := range colors {
		colors[i] = -1
	}
	var taken []bool
	for _, v := range order {
		taken = taken[:0]
		for len(taken) <= len(g.adj[v]) {
			taken = append(taken, false)
		}
		for _, u := range g.adj[v] {
			c := colors[u]
			if c >= 0 && int(c) < len(taken) {
				taken[c] = true
			}
		}
		for c := range taken {
			if !taken[c] {
				colors[v] = int32(c)
				break
			}
		}
	}
	return colors
}

// NumColors returns the number of distinct non-negative colors in the
// vector.
func NumColors(colors []int32) int {
	seen := make(map[int32]bool)
	for _, c := range colors {
		if c >= 0 {
			seen[c] = true
		}
	}
	return len(seen)
}
