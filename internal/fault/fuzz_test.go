package fault

import (
	"strings"
	"testing"
)

// FuzzParseProfile hardens the profile parser: arbitrary input must
// never panic, and any accepted profile must survive a
// String→Parse→String round trip and compile cleanly whenever its
// node references fit the network.
func FuzzParseProfile(f *testing.F) {
	f.Add("loss=0.05")
	f.Add("loss=0.01,crash=3@500,crash=7@200:900,seed=42")
	f.Add("burst=0.2/64/1/0.001,jam=100:400@0+1+2~0.8")
	f.Add("jam=0:0:7:3,skew=0.5")
	f.Add("crash=0@0:1")
	f.Add("")
	f.Add("loss=,=,@~:+//")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseProfile(in)
		if err != nil {
			return
		}
		if err := p.Validate(0); err != nil {
			t.Fatalf("accepted profile fails Validate(0): %v", err)
		}
		s := p.String()
		p2, err := ParseProfile(s)
		if err != nil {
			t.Fatalf("String %q of accepted profile does not reparse: %v", s, err)
		}
		if s2 := p2.String(); s2 != s {
			t.Fatalf("round trip unstable: %q -> %q", s, s2)
		}
		// Compile with a network large enough for every node reference.
		n := 1
		for _, c := range p.Crashes {
			if c.Node >= n {
				n = c.Node + 1
			}
		}
		for _, j := range p.Jammers {
			for _, v := range j.Nodes {
				if v >= n {
					n = v + 1
				}
			}
		}
		if n > 1<<20 {
			return // absurd node ids: skip the allocation
		}
		inj, err := p.Compile(n)
		if err != nil {
			if strings.Contains(err.Error(), "out of range") {
				return // negative node id rejected at compile
			}
			t.Fatalf("accepted profile fails Compile(%d): %v", n, err)
		}
		if inj != nil {
			inj.Lost(1, 0, 0)
			inj.Jammed(1, 0)
		}
	})
}
