package serve

import (
	"container/list"
	"sync"
	"sync/atomic"

	"radiocolor"
)

// cacheEntry is one cached deployment: the built adjacency and, once a
// job on it completed, the measured graph parameters. Entries are
// immutable after insertion except for the measured pointer, which is
// atomic because submissions read it while a completing worker stores
// it (idempotently — measurement is deterministic, so every writer
// stores the same values).
type cacheEntry struct {
	key string
	// adj is the built communication graph, shared read-only by every
	// job that hits this entry.
	adj [][]int
	// measured is filled from the first completed Outcome so later jobs
	// skip the κ measurement via radiocolor.Options.Measured.
	measured atomic.Pointer[radiocolor.Measured]
}

// lru is the size-bounded deployment cache, keyed by TopologySpec.key.
// A plain mutex suffices: lookups happen once per submission, never on
// the simulation hot path.
type lru struct {
	mu    sync.Mutex
	max   int
	ll    *list.List
	items map[string]*list.Element

	hits, misses atomic.Int64
}

func newLRU(max int) *lru {
	return &lru{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key and marks it most-recently-used, or nil
// on a miss. Disabled caches (max ≤ 0) always miss.
func (c *lru) get(key string) *cacheEntry {
	if c.max <= 0 {
		c.misses.Add(1)
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// add inserts an entry for key (returning the existing one if a
// concurrent submission won the race) and evicts the least-recently
// used entries beyond the bound.
func (c *lru) add(key string, adj [][]int) *cacheEntry {
	if c.max <= 0 {
		return &cacheEntry{key: key, adj: adj}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*cacheEntry)
	}
	e := &cacheEntry{key: key, adj: adj}
	c.items[key] = c.ll.PushFront(e)
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	return e
}

// setMeasured records the measured parameters on key's entry, if it is
// still cached.
func (c *lru) setMeasured(key string, m radiocolor.Measured) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).measured.Store(&m)
	}
}

// len is the current entry count.
func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
