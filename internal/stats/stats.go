// Package stats provides the statistical machinery behind the experiment
// harness: summaries, quantiles, histograms, least-squares fits used for
// the paper's shape checks (is running time linear in Δ? logarithmic in
// n? cubic for the baseline?), and aligned text/CSV tables.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	Median, P90, P99 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum, sum2 float64
	for _, x := range xs {
		sum += x
		sum2 += x * x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	variance := sum2/float64(len(xs)) - s.Mean*s.Mean
	if variance > 0 {
		s.Std = math.Sqrt(variance)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	s.P99 = Quantile(sorted, 0.99)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of a sorted sample by
// linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Fit is a least-squares line y = Intercept + Slope·x with its
// coefficient of determination.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y = a + b·x by ordinary least squares. It panics if the
// inputs differ in length or have fewer than two points.
func LinearFit(x, y []float64) Fit {
	if len(x) != len(y) || len(x) < 2 {
		panic(fmt.Sprintf("stats: bad fit input: %d vs %d points", len(x), len(y)))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return Fit{Intercept: sy / n}
	}
	slope := (n*sxy - sx*sy) / denom
	intercept := (sy - slope*sx) / n
	// R² = 1 − SS_res/SS_tot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := intercept + slope*x[i]
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// PowerFit fits y = c·x^Exponent by least squares in log-log space —
// the harness's tool for distinguishing T ∈ O(Δ) (exponent ≈ 1) from the
// baseline's O(Δ³) (exponent ≈ 3). All inputs must be positive.
func PowerFit(x, y []float64) (exponent float64, r2 float64) {
	lx := make([]float64, len(x))
	ly := make([]float64, len(y))
	for i := range x {
		if x[i] <= 0 || y[i] <= 0 {
			panic("stats: PowerFit requires positive data")
		}
		lx[i] = math.Log(x[i])
		ly[i] = math.Log(y[i])
	}
	f := LinearFit(lx, ly)
	return f.Slope, f.R2
}

// LogFit fits y = a + b·log(x); exp growth checks (T ∝ log n) read b.
func LogFit(x, y []float64) Fit {
	lx := make([]float64, len(x))
	for i := range x {
		if x[i] <= 0 {
			panic("stats: LogFit requires positive x")
		}
		lx[i] = math.Log(x[i])
	}
	return LinearFit(lx, y)
}

// Histogram bins a sample into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram with the given number of bins. Values
// outside [min, max] are clamped into the edge bins.
func NewHistogram(xs []float64, min, max float64, bins int) *Histogram {
	if bins < 1 || max <= min {
		panic("stats: bad histogram shape")
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	width := (max - min) / float64(bins)
	for _, x := range xs {
		i := int((x - min) / width)
		if i < 0 {
			i = 0
		}
		if i >= bins {
			i = bins - 1
		}
		h.Counts[i]++
	}
	return h
}

// Total returns the number of binned samples.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Floats converts any integer slice to float64 for the fitting helpers.
func Floats[T int | int32 | int64](xs []T) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// Mean is a convenience shortcut.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
