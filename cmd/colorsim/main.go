// Command colorsim runs the paper's coloring algorithm once on a chosen
// topology and prints the outcome: verification verdict, colors used,
// per-node timing, and channel statistics.
//
// Examples:
//
//	colorsim -topology udg -n 200 -side 8 -radius 1.2 -wakeup uniform
//	colorsim -topology big -walls 30 -n 150
//	colorsim -topology clique -n 24 -v
//	colorsim -faults loss=0.05,crash=3@500:900 -n 100
//	colorsim -churn leave=3@500,join=3@900,move=7@1000:2:2 -n 100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"radiocolor/internal/churn"
	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/fault"
	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
	"radiocolor/internal/render"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func main() {
	var (
		topo     = flag.String("topology", "udg", "udg | big | corridor | clustered | grid | ring | clique | star | tree")
		n        = flag.Int("n", 150, "number of nodes")
		side     = flag.Float64("side", 7, "deployment square side")
		radius   = flag.Float64("radius", 1.2, "transmission radius")
		walls    = flag.Int("walls", 20, "wall count for -topology big")
		wakeup   = flag.String("wakeup", "synchronous", "synchronous | uniform | sequential | bursty | adversarial")
		seed     = flag.Int64("seed", 1, "master seed")
		scale    = flag.Float64("scale", 1.0, "scale factor on the practical constants")
		maxSlots = flag.Int64("max-slots", 0, "slot budget (0 = automatic)")
		verbose  = flag.Bool("v", false, "print per-node colors")
		traceOut = flag.String("trace", "", "stream all simulation events to this JSONL file (summarize with tracestat)")
		traceN   = flag.Int("trace-tail", 0, "dump the last N radio events after the run")
		metrics  = flag.Bool("metrics", false, "print the metrics registry and per-phase timeline")
		energy   = flag.Bool("energy", false, "print the energy summary (tx=1, listen=0.5 per slot)")
		benchK   = flag.Bool("bench-kernel", false, "time the CSR kernel against the reference slot loop on this deployment and exit")
		tile     = flag.Int("tile", 0, "tiled slot kernel: -1 picks a tile count (~32k-node tiles), >1 fixes it, 0 untiled; first renumbers the deployment along the spatial locality pass, so printed node ids follow the relabeled order")
		faults   = flag.String("faults", "", "inject faults, e.g. loss=0.05,burst=0.1/64,crash=3@500:900,jam=100:400,skew=0.25 (seed= defaults to -seed)")
		churnF   = flag.String("churn", "", "dynamic topology, e.g. join=3@500,leave=7@900,move=0@1000:2:2,every=16,repair=retract|none (node ids follow -tile relabeling when tiled)")
		mediumF  = flag.String("medium", "", "reception model: graph | sinr,alpha=4,beta=1.5,noise=-90 | multichannel,k=4 (empty = built-in graph rule)")
		saveFile = flag.String("save", "", "write the generated deployment to this file and exit")
		loadFile = flag.String("load", "", "load the deployment from this file instead of generating")
		svgFile  = flag.String("svg", "", "render the colored deployment to this SVG file")
	)
	flag.Parse()

	// ^C / SIGTERM cancels the simulation at the next poll point (the
	// engine checks every 1024 slots); a second signal kills hard.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var d *topology.Deployment
	var err error
	if *loadFile != "" {
		f, ferr := os.Open(*loadFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", ferr)
			os.Exit(2)
		}
		d, err = topology.ReadDeployment(f)
		f.Close()
	} else {
		d, err = makeDeployment(*topo, *n, *side, *radius, *walls, *seed)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(2)
	}
	if *tile < -1 {
		fmt.Fprintf(os.Stderr, "colorsim: invalid -tile %d (want -1 for auto, 0 for off, or a tile count)\n", *tile)
		os.Exit(2)
	}
	if *tile != 0 && *tile != 1 {
		// The tiled kernel partitions contiguous id ranges, so renumber
		// the deployment along the shared locality pass first (Hilbert
		// curve on geometric topologies, BFS order otherwise). The whole
		// pipeline below — faults, media, SVG, per-node output — runs in
		// the relabeled space, so everything stays self-consistent.
		relabelForTiles(d)
	}
	if *saveFile != "" {
		f, ferr := os.Create(*saveFile)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", ferr)
			os.Exit(1)
		}
		if err := topology.WriteDeployment(f, d); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d nodes, %d edges)\n", *saveFile, d.N(), d.G.M())
		return
	}
	par := experiment.MeasureParams(d).Scale(*scale)
	var wake []int64
	for _, p := range radio.WakePatterns {
		if p.Name == *wakeup {
			wake = p.Make(d.N(), par.WaitSlots(), *seed)
		}
	}
	if wake == nil {
		fmt.Fprintf(os.Stderr, "colorsim: unknown wakeup pattern %q\n", *wakeup)
		os.Exit(2)
	}
	budget := *maxSlots
	if budget <= 0 {
		budget = int64(par.Kappa2+2) * par.Threshold() * 40
	}
	if *benchK {
		if err := benchKernel(d, par, wake, budget, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
		return
	}
	// Observability: -trace streams JSONL, -trace-tail keeps a ring for
	// the post-run dump, -metrics adds counters and the phase timeline.
	var (
		tracer   *obs.Tracer
		met      *obs.Metrics
		timeline *obs.Timeline
		sink     *os.File
	)
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", ferr)
			os.Exit(1)
		}
		sink = f
		tracer = obs.NewTracer(*traceN, sink)
	} else if *traceN > 0 {
		tracer = obs.NewTracer(*traceN, nil)
	}
	if *metrics {
		met = obs.NewMetrics()
		met.SetPhaseGauge(obs.PhaseAsleep, int64(d.N()))
		timeline = obs.NewTimeline(d.N(), 0)
	}
	// Fault injection: parse the profile, default its seed to the run
	// seed, and compile it against the deployment. Clock-skew profiles
	// route through the half-slot (non-aligned) engine.
	var prof *fault.Profile
	var inj *fault.Injector
	if *faults != "" {
		prof, err = fault.ParseProfile(*faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(2)
		}
		if prof.Seed == 0 {
			prof.Seed = *seed
		}
		inj, err = prof.Compile(d.N())
		if err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(2)
		}
	}
	// Dynamic topology: parse the schedule and compile it against the
	// deployment (node positions feed waypoint mobility when present).
	// Churn owns the graph's edge set mid-run, so it cannot combine
	// with a medium (bound to a static graph) or clock skew (the
	// half-slot engine has no churn seam).
	var chSch *churn.Schedule
	var chPlan *churn.Plan
	if *churnF != "" {
		chSch, err = churn.ParseSchedule(*churnF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(2)
		}
		if inj.HasSkew() {
			fmt.Fprintln(os.Stderr, "colorsim: -churn cannot combine with clock-skew faults (the half-slot engine has no churn seam)")
			os.Exit(2)
		}
		env := churn.Env{G: d.G}
		if len(chSch.Waypoints) > 0 {
			if d.Points == nil {
				fmt.Fprintln(os.Stderr, "colorsim: waypoint mobility needs a geometric topology (node positions)")
				os.Exit(2)
			}
			env.Points, env.Radius = d.Points, d.Radius
		}
		chPlan, err = chSch.Compile(env)
		if err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(2)
		}
	}
	// Reception medium: parse the spec, check it against the deployment
	// (SINR needs positions, no medium composes with clock skew), and
	// bind it for the run.
	var med medium.Instance
	if spec, serr := medium.ParseSpec(*mediumF); serr != nil {
		fmt.Fprintln(os.Stderr, "colorsim:", serr)
		os.Exit(2)
	} else if spec != nil {
		if inj.HasSkew() {
			fmt.Fprintln(os.Stderr, "colorsim: -medium cannot combine with clock-skew faults (the half-slot engine has no medium seam)")
			os.Exit(2)
		}
		if chPlan != nil {
			fmt.Fprintln(os.Stderr, "colorsim: -medium cannot combine with -churn (media bind to a static graph)")
			os.Exit(2)
		}
		if spec.Kind == medium.KindSINR && d.Points == nil {
			fmt.Fprintln(os.Stderr, "colorsim: a sinr medium needs a geometric topology (node positions)")
			os.Exit(2)
		}
		model, merr := spec.Build()
		if merr == nil {
			csr := d.G.CSR()
			med, merr = model.Bind(medium.Env{
				N: d.N(), Offsets: csr.Offsets, Edges: csr.Edges,
				Points: d.Points, Seed: *seed,
			})
		}
		if merr != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", merr)
			os.Exit(2)
		}
	}
	collector := &obs.Collector{Metrics: met, Tracer: tracer, Timeline: timeline}
	nodes, protos := core.Nodes(d.N(), *seed, par, core.Ablation{})
	core.ObservePhases(nodes, collector)
	cfg := radio.Config{
		G: d.G, Protocols: protos, Wake: wake,
		MaxSlots: budget, NEstimate: par.N,
		Observer: radio.CollectorObserver(collector),
		Metrics:  met,
		Faults:   inj,
		Churn:    chPlan,
		Medium:   med,
		Tiles:    *tile,
	}
	var res *radio.Result
	if inj.HasSkew() {
		res, err = radio.RunUnalignedContext(ctx, cfg, nil)
	} else {
		res, err = radio.RunContext(ctx, cfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "colorsim: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "colorsim:", err)
		os.Exit(1)
	}
	if tracer != nil {
		if err := tracer.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
	}
	if sink != nil {
		if err := sink.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
			os.Exit(1)
		}
	}
	colors := make([]int32, d.N())
	tcs := make([]int32, d.N())
	leaders := 0
	for i, v := range nodes {
		colors[i] = v.Color()
		tcs[i] = v.TC()
		if v.IsLeader() {
			leaders++
		}
	}
	// A churned run is judged against the topology it ended with, not
	// the one it started from: mobility and departures change both.
	vg := d.G
	if chPlan != nil {
		vg = chPlan.FinalGraph(d.G)
	}
	report := verify.Check(vg, colors)

	fmt.Printf("topology   : %s (n=%d, m=%d, Δ=%d, κ₁=%d, κ₂=%d)\n",
		d.Name, d.N(), d.G.M(), par.Delta, par.Kappa1, par.Kappa2)
	fmt.Printf("parameters : α=%.3g β=%.3g γ=%.3g σ=%.3g  (wait=%d, threshold=%d slots)\n",
		par.Alpha, par.Beta, par.Gamma, par.Sigma, par.WaitSlots(), par.Threshold())
	fmt.Printf("wakeup     : %s\n", *wakeup)
	if med != nil {
		fmt.Printf("medium     : %s\n", *mediumF)
	}
	fmt.Printf("radio      : %v\n", res)
	if res.Drowned > 0 || res.BelowNoise > 0 || res.Captures > 0 && med != nil {
		fmt.Printf("sinr       : captured=%d drowned=%d below-noise=%d\n",
			res.Captures, res.Drowned, res.BelowNoise)
	}
	fmt.Printf("coloring   : %v\n", report)
	fmt.Printf("leaders    : %d (color 0)\n", leaders)
	var srep *verify.SurvivorReport
	if inj != nil || chPlan != nil {
		srep = verify.CheckSurvivorsScoped(vg, colors,
			verify.DownSet(d.N(), res.Down), verify.DownSet(d.N(), res.Left))
		if inj != nil {
			fmt.Printf("faults     : %s\n", prof)
			fmt.Printf("             lost=%d jammed=%d crashes=%d restarts=%d down=%d\n",
				res.Lost, res.Jammed, res.Crashes, res.Restarts, len(res.Down))
		}
		if chPlan != nil {
			fmt.Printf("churn      : %s\n", chSch)
			fmt.Printf("             joins=%d leaves=%d repaired=%d left=%d\n",
				res.Joins, res.Leaves, res.ConflictsRepaired, len(res.Left))
		}
		verdict := "graceful degradation"
		if srep.Hard() {
			verdict = "HARD FAILURE"
		}
		fmt.Printf("survivors  : %v — %s\n", srep, verdict)
	}
	if res.AllDone {
		var lat []float64
		for v := 0; v < d.N(); v++ {
			lat = append(lat, float64(res.Latency(v)))
		}
		s := stats.Summarize(lat)
		fmt.Printf("latency T_v: mean=%.0f median=%.0f p90=%.0f max=%.0f slots\n",
			s.Mean, s.Median, s.P90, s.Max)
	}
	if viol := verify.CheckLocality(vg, colors, par.Kappa2); len(viol) == 0 {
		fmt.Println("locality   : φ_v ≤ (κ₂+1)·θ_v holds at every node (Theorem 4)")
	} else {
		fmt.Printf("locality   : %d violations (first: %+v)\n", len(viol), viol[0])
	}
	if *energy {
		per := res.PerNodeEnergy(radio.DefaultEnergyModel())
		fmt.Printf("energy     : total=%.0f units, %s\n",
			res.TotalEnergy(radio.DefaultEnergyModel()), summarizeFloats(per))
	}
	if *verbose {
		fmt.Println("colors     :")
		for v := 0; v < d.N(); v++ {
			fmt.Printf("  node %4d: color %4d (tc=%d)\n", v, colors[v], tcs[v])
		}
	}
	if *metrics {
		s := met.Snapshot()
		fmt.Printf("metrics    : %v\n", s)
		fmt.Printf("timeline   :\n")
		ph := timeline.Phases()
		for p := obs.Phase(0); p < obs.NumPhases; p++ {
			tot := ph[p]
			if tot.NodeSlots == 0 && tot.Entries == 0 {
				continue
			}
			fmt.Printf("  %-8s: %8d node-slots  tx=%-8d rx=%-8d coll=%-8d entries=%d\n",
				p, tot.NodeSlots, tot.Transmissions, tot.Deliveries, tot.Collisions, tot.Entries)
		}
	}
	if *traceOut != "" {
		fmt.Printf("trace      : wrote %d events to %s\n", tracer.Total(), *traceOut)
	} else if tracer != nil {
		fmt.Printf("trace      : last %d radio events\n", len(tracer.Events()))
		if err := tracer.Dump(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "colorsim:", err)
		}
	}
	if *svgFile != "" {
		if d.Points == nil {
			fmt.Fprintln(os.Stderr, "colorsim: -svg needs a geometric topology")
		} else {
			f, err := os.Create(*svgFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "colorsim:", err)
				os.Exit(1)
			}
			if err := render.SVG(f, d, colors, render.NewOptions()); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "colorsim:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "colorsim:", err)
				os.Exit(1)
			}
			fmt.Printf("svg        : wrote %s\n", *svgFile)
		}
	}
	// Verdict: a faulted or churned run may legitimately end incomplete
	// (crashed nodes hold no color, departed nodes left scope); only a
	// hard violation — two live adjacent nodes sharing a color — fails
	// it. Fault- and churn-free runs keep the strict completeness bar.
	if inj != nil || chPlan != nil {
		if srep.Hard() {
			os.Exit(1)
		}
	} else if !res.AllDone || !report.OK() {
		os.Exit(1)
	}
}

// benchKernel times the CSR slot kernel against the retained reference
// loop on the same deployment, schedule, and protocol parameters, and
// prints slot throughput plus the speedup. Both runs use fresh protocol
// instances with the same master seed, so they simulate identical slots.
func benchKernel(d *topology.Deployment, par core.Params, wake []int64, budget int64, seed int64) error {
	run := func(reference bool) (int64, time.Duration, error) {
		_, protos := core.Nodes(d.N(), seed, par, core.Ablation{})
		cfg := radio.Config{
			G: d.G, Protocols: protos, Wake: wake,
			MaxSlots: budget, NEstimate: par.N,
		}
		start := time.Now()
		var res *radio.Result
		var err error
		if reference {
			res, err = radio.RunReference(cfg)
		} else {
			res, err = radio.Run(cfg)
		}
		if err != nil {
			return 0, 0, err
		}
		return res.Slots, time.Since(start), nil
	}
	refSlots, refDur, err := run(true)
	if err != nil {
		return err
	}
	csrSlots, csrDur, err := run(false)
	if err != nil {
		return err
	}
	if refSlots != csrSlots {
		return fmt.Errorf("kernels diverged: reference ran %d slots, csr %d", refSlots, csrSlots)
	}
	refRate := float64(refSlots) / refDur.Seconds()
	csrRate := float64(csrSlots) / csrDur.Seconds()
	fmt.Printf("kernel bench: n=%d m=%d slots=%d\n", d.N(), d.G.M(), csrSlots)
	fmt.Printf("  reference : %8.0f slots/s (%v)\n", refRate, refDur.Round(time.Millisecond))
	fmt.Printf("  csr       : %8.0f slots/s (%v)\n", csrRate, csrDur.Round(time.Millisecond))
	fmt.Printf("  speedup   : %.2fx\n", csrRate/refRate)
	return nil
}

func summarizeFloats(xs []float64) string {
	s := stats.Summarize(xs)
	return fmt.Sprintf("per node mean=%.0f p90=%.0f max=%.0f", s.Mean, s.P90, s.Max)
}

// relabelForTiles renumbers the deployment along the tiled kernel's
// locality pass: Hilbert curve when positions are known, BFS order
// otherwise. Points move with their nodes, so -svg output and the
// medium's geometry stay correct.
func relabelForTiles(d *topology.Deployment) {
	n := d.G.N()
	var p graph.Permutation
	if d.Points != nil {
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i, pt := range d.Points {
			xs[i], ys[i] = pt.X, pt.Y
		}
		p = graph.HilbertOrder(xs, ys)
	} else {
		p = graph.BFSOrder(d.G)
	}
	d.G = p.Apply(d.G)
	if d.Points != nil {
		pts := make([]geom.Point, n)
		for old, nid := range p.Forward {
			pts[nid] = d.Points[old]
		}
		d.Points = pts
	}
}

func makeDeployment(topo string, n int, side, radius float64, walls int, seed int64) (*topology.Deployment, error) {
	cfg := topology.UDGConfig{N: n, Side: side, Radius: radius, Seed: seed}
	switch topo {
	case "udg":
		return topology.RandomUDG(cfg), nil
	case "big":
		return topology.BIGWithWalls(cfg, walls), nil
	case "corridor":
		return topology.CorridorUDG(n, side*4, 2, radius, seed), nil
	case "clustered":
		return topology.ClusteredUDG(n/2, n-n/2, side, radius, seed), nil
	case "grid":
		k := 1
		for (k+1)*(k+1) <= n {
			k++
		}
		return topology.GridGraph(k, k, 1, 1.5), nil
	case "ring":
		return topology.Ring(n), nil
	case "clique":
		return topology.Clique(n), nil
	case "star":
		return topology.Star(n), nil
	case "tree":
		return topology.RandomTree(n, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}
