package radio

import (
	"fmt"

	"radiocolor/internal/churn"
	"radiocolor/internal/fault"
	"radiocolor/internal/graph"
	"radiocolor/internal/obs"
)

// Colored is implemented by protocols whose decision is a color. The
// churn layer's self-stabilizing repair (churn.RepairRetract) reads it
// to detect monochromatic edges created by a topology change; every
// node that can end up as an endpoint of an added edge must implement
// it (and Restartable, to be retractable) when retraction repair is on.
type Colored interface {
	// Color returns the node's chosen color; meaningful once Done().
	Color() int32
}

// churnState is the engine's per-run mutable view of a compiled churn
// plan: the dynamic CSR the plan's deltas apply to, the batch cursor,
// and the presence flags. It exists only when Config.Churn is set, so
// the churn seam costs the static-topology hot path exactly one nil
// check per phase — the same discipline as the Observer, Metrics,
// Faults and Medium seams, pinned by the zero-alloc and differential
// tests.
type churnState struct {
	plan *churn.Plan
	dyn  *graph.Dyn
	next int   // cursor into plan.Batches
	last int64 // plan.MaxSlot(): termination is deferred past it
	// absent marks nodes currently out of the network. Distinct from
	// the engine's combined off filter (off = crashed ∪ absent) so
	// Result can report Down and Left separately.
	absent []bool
	// neverDone counts final leavers that never decided, the churn
	// analogue of faultState.neverDone: their absence must not block
	// graceful termination.
	neverDone int

	touched []int32 // scratch: rows changed by the last delta
}

// newChurnState validates the plan against the run and prepares the
// mutable state: the dynamic CSR is seeded from the static graph and
// the plan's initial delta (late joiners' edges removed), and the
// engine's row bounds are re-aimed at its in-place headers.
func newChurnState(plan *churn.Plan, cfg *Config, n int) (*churnState, error) {
	if plan.N() != n {
		return nil, fmt.Errorf("radio: churn plan compiled for %d nodes, graph has %d", plan.N(), n)
	}
	if cfg.Medium != nil {
		return nil, fmt.Errorf("radio: churn and a pluggable medium cannot be combined (the medium is bound to a static graph)")
	}

	// Every node that (re)joins restarts from cleared protocol state,
	// and under retraction repair every endpoint of an added edge must
	// expose its color and be resettable.
	retract := plan.Repair == churn.RepairRetract
	churned := make(map[int32]bool)
	need := func(v int32, why string) error {
		p := cfg.Protocols[v]
		if _, ok := p.(Restartable); !ok {
			return fmt.Errorf("radio: churn %s node %d but its protocol does not implement Restartable", why, v)
		}
		return nil
	}
	for _, v := range plan.InitialAbsent {
		churned[v] = true
	}
	for _, b := range plan.Batches {
		for _, v := range b.Joins {
			churned[v] = true
			if err := need(v, "rejoins"); err != nil {
				return nil, err
			}
		}
		for _, lv := range b.Leaves {
			churned[lv.Node] = true
		}
		if retract {
			for _, ed := range b.Delta.Adds {
				for _, v := range ed {
					if _, ok := cfg.Protocols[v].(Colored); !ok {
						return nil, fmt.Errorf("radio: churn repair mode retract needs node %d's protocol to implement Colored", v)
					}
					if err := need(v, "repair may retract"); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// A node cannot be both fail-stopped and churned: the two
	// lifecycles would race for its presence.
	if cfg.Faults != nil {
		for _, ev := range cfg.Faults.Events() {
			if (ev.Kind == fault.EventCrash || ev.Kind == fault.EventRestart) && churned[ev.Node] {
				return nil, fmt.Errorf("radio: node %d is both a fault crash/restart victim and a churn subject; the profiles must be disjoint", ev.Node)
			}
		}
	}

	cs := &churnState{
		plan:   plan,
		dyn:    graph.NewDyn(cfg.G),
		last:   plan.MaxSlot(),
		absent: make([]bool, n),
	}
	cs.dyn.Apply(plan.InitialDelta, nil)
	return cs, nil
}

// churnBeginSlot applies the batch scheduled for slot t, before fault
// events and wake-ups. Single-threaded by construction (it runs in the
// slot prologue, outside any worker or tile fan-out), which is what
// makes churned runs bit-identical at any Workers or Tiles setting.
func (e *Engine) churnBeginSlot(t int64, ob Observer, met *obs.Metrics) {
	cs := e.cs
	if cs.next >= len(cs.plan.Batches) || cs.plan.Batches[cs.next].Slot > t {
		return
	}
	e.rejoinU = e.rejoinU[:0]
	e.rejoinA = e.rejoinA[:0]
	for cs.next < len(cs.plan.Batches) && cs.plan.Batches[cs.next].Slot == t {
		b := &cs.plan.Batches[cs.next]
		cs.next++

		// Leaves: the node goes out of scope immediately — its standing
		// rs state returns to asleep so resolve skips it, exactly like a
		// crash. A decided leaver keeps its bookkeeping decision (the
		// color held while the node was present); an undecided final
		// leaver stops blocking termination.
		for _, lv := range b.Leaves {
			v := lv.Node
			cs.absent[v] = true
			e.off[v] = true
			e.res.Leaves++
			if met != nil {
				met.AddLeave()
			}
			if lv.Final && !e.decided[v] {
				cs.neverDone++
			}
			if e.awake[v] {
				e.awake[v] = false
				e.rs[v].count = asleepCount
			}
		}

		// Edge delta: the dynamic CSR mutates its row-bound headers in
		// place (the engine's rowStart/rowEnd alias them), but the edge
		// array may have been reallocated by a row relocation. The tiled
		// kernel additionally re-derives the changed rows' intra-tile
		// spans.
		if !b.Delta.Empty() {
			_, cs.touched = cs.dyn.Apply(b.Delta, cs.touched[:0])
			e.edges = cs.dyn.EdgeArray()
			if e.ts != nil {
				e.ts.refreshRows(cs.touched, e.rowStart, e.rowEnd, e.edges)
			}
		}

		// Joins: the node enters (or re-enters) as a fresh wake-up, with
		// cleared protocol state on a rejoin — fault-restart semantics.
		// A node joining before its scheduled wake slot stays asleep
		// until the normal wake loop starts it.
		for _, v := range b.Joins {
			cs.absent[v] = false
			e.off[v] = false
			e.res.Joins++
			if met != nil {
				met.AddJoin()
			}
			if e.cfg.Wake[v] >= t {
				continue
			}
			wasWoke := e.everWoke[v]
			if wasWoke {
				e.cfg.Protocols[v].(Restartable).Reset()
			}
			e.awake[v] = true
			e.rs[v].count = 0
			e.everWoke[v] = true
			if ob != nil {
				ob.OnWake(t, NodeID(v))
			}
			if met != nil {
				met.AddWakeup()
			}
			e.cfg.Protocols[v].Start(t)
			needUndecided := !wasWoke
			if e.decided[v] {
				// The rejoiner's old color died with its state.
				e.decided[v] = false
				e.numDone--
				e.res.DecideSlot[v] = -1
				needUndecided = true
			}
			if needUndecided {
				e.rejoinU = append(e.rejoinU, v)
			}
			if !wasWoke {
				e.rejoinA = append(e.rejoinA, v)
			}
		}

		// Self-stabilizing repair: an added edge between two decided
		// nodes with equal colors is a conflict the static algorithm can
		// never fix (decisions are irrevocable). Under RepairRetract one
		// endpoint retracts — the later decider, ties to the higher id,
		// a deterministic choice — and re-contends via the protocol's
		// own contention path. Scanning the batch's sorted add list
		// single-threaded keeps repair bit-identical at any worker
		// count; once a victim retracts, its other conflict edges fail
		// the decided check and cannot retract it twice.
		if cs.plan.Repair == churn.RepairRetract {
			for _, ed := range b.Delta.Adds {
				a, bnd := ed[0], ed[1]
				if e.off[a] || e.off[bnd] || !e.decided[a] || !e.decided[bnd] {
					continue
				}
				if e.cfg.Protocols[a].(Colored).Color() != e.cfg.Protocols[bnd].(Colored).Color() {
					continue
				}
				victim := a
				if da, db := e.res.DecideSlot[a], e.res.DecideSlot[bnd]; db > da || (db == da && bnd > a) {
					victim = bnd
				}
				e.retract(t, victim, met)
			}
		}
	}
	if len(e.rejoinU) > 0 {
		sortInt32s(e.rejoinU)
		e.undecided = mergeSorted(e.undecided, e.rejoinU)
	}
	if len(e.rejoinA) > 0 {
		// The pending list is sorted at flush time (untiled) or per-slot
		// suffix merge (tiled), so insertion order is free.
		e.pending = append(e.pending, e.rejoinA...)
	}
}

// retract undoes node v's decision: protocol state clears and the node
// re-contends from its own Start path. The node stayed awake and in
// the activity lists throughout, so only the undecided list needs a
// re-insert.
func (e *Engine) retract(t int64, v int32, met *obs.Metrics) {
	e.cfg.Protocols[v].(Restartable).Reset()
	e.cfg.Protocols[v].Start(t)
	e.decided[v] = false
	e.numDone--
	e.res.DecideSlot[v] = -1
	e.res.ConflictsRepaired++
	if met != nil {
		met.AddConflictRepaired()
	}
	e.rejoinU = append(e.rejoinU, v)
}

// leftList appends the currently absent nodes to dst in ascending
// order.
func (cs *churnState) leftList(dst []int32) []int32 {
	for i, a := range cs.absent {
		if a {
			dst = append(dst, int32(i))
		}
	}
	return dst
}
