package graph

import (
	"strings"
	"testing"
)

// FuzzReadGraph hardens the edge-list parser: arbitrary input must never
// panic, and any input it accepts must round-trip to an identical graph.
func FuzzReadGraph(f *testing.F) {
	f.Add("n 3 2\n0 1\n1 2\n")
	f.Add("# comment\nn 0 0\n")
	f.Add("n 2 1\n0 1\n")
	f.Add("n -1 0\n")
	f.Add("garbage")
	f.Add("n 4 0\n\n\n")
	f.Add("n 2 1\n1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted graph fails validation: %v", err)
		}
		var b strings.Builder
		if _, err := g.WriteTo(&b); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadGraph(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("round-trip changed shape: %d/%d vs %d/%d", back.N(), back.M(), g.N(), g.M())
		}
	})
}
