package topology

import (
	"reflect"
	"strings"
	"testing"

	"radiocolor/internal/churn"
)

func sampleTrace() *Trace {
	return &Trace{
		Name: "roaming pair",
		Schedule: &churn.Schedule{
			Seed:   42,
			Joins:  []churn.Event{{Node: 3, At: 120}, {Node: 9, At: 400}},
			Leaves: []churn.Event{{Node: 3, At: 40}, {Node: 5, At: 900}},
			Waypoints: []churn.Waypoint{
				{Node: 7, At: 100, X: 1.5, Y: 2.25},
				{Node: 7, At: 600, X: 0, Y: 0},
			},
			Every:  32,
			Repair: churn.RepairNone,
		},
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var b strings.Builder
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-read failed: %v\nfile:\n%s", err, b.String())
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("round trip changed the trace:\n want %+v %+v\n got  %+v %+v",
			tr, tr.Schedule, back, back.Schedule)
	}
}

func TestTraceRoundTripDefaults(t *testing.T) {
	// A zero schedule (no events, default repair/cadence) writes a
	// header-only file and reads back equal.
	tr := &Trace{Name: "empty", Schedule: &churn.Schedule{}}
	var b strings.Builder
	if err := WriteTrace(&b, tr); err != nil {
		t.Fatal(err)
	}
	if got, want := b.String(), "trace \"empty\"\n"; got != want {
		t.Errorf("empty trace serialized as %q, want %q", got, want)
	}
	back, err := ReadTrace(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, back) {
		t.Errorf("round trip changed the trace: %+v vs %+v", tr.Schedule, back.Schedule)
	}

	// A nil schedule and an empty name normalize on write.
	var b2 strings.Builder
	if err := WriteTrace(&b2, &Trace{}); err != nil {
		t.Fatal(err)
	}
	back, err = ReadTrace(strings.NewReader(b2.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "unnamed" || back.Schedule == nil {
		t.Errorf("nil-schedule trace read back as %+v", back)
	}
}

func TestTraceSkipsCommentsAndBlanks(t *testing.T) {
	const in = `# mobility trace for the E27 sweep
trace "commented"

# one node leaves...
leaves 1
4 250

# ...and returns
joins 1
4 700
`
	tr, err := ReadTrace(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := &churn.Schedule{
		Joins:  []churn.Event{{Node: 4, At: 700}},
		Leaves: []churn.Event{{Node: 4, At: 250}},
	}
	if tr.Name != "commented" || !reflect.DeepEqual(tr.Schedule, want) {
		t.Errorf("parsed %q %+v, want %q %+v", tr.Name, tr.Schedule, "commented", want)
	}
}

// TestTraceRejectsMalformed exercises the rejection paths; every error
// must carry enough position to find the offending line.
func TestTraceRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"empty", "", "trace header"},
		{"bad header", "deployment \"x\"\n", "trace header"},
		{"unknown section", "trace \"x\"\nvelocity 3\n", "unknown trace section"},
		{"bad seed", "trace \"x\"\nseed ten\n", "bad seed"},
		{"negative every", "trace \"x\"\nevery -4\n", "bad every"},
		{"bad repair", "trace \"x\"\nrepair magic\n", "repair"},
		{"duplicate section", "trace \"x\"\nevery 8\nevery 8\n", "duplicate \"every\""},
		{"huge joins header", "trace \"x\"\njoins 99999999\n", "bad joins header"},
		{"truncated joins", "trace \"x\"\njoins 2\n1 10\n", "truncated joins"},
		{"join arity", "trace \"x\"\njoins 1\n1 10 99\n", "joins entry 0"},
		{"join junk", "trace \"x\"\njoins 1\none 10\n", "joins entry 0"},
		{"join negative node", "trace \"x\"\njoins 1\n-2 10\n", "joins entry 0"},
		{"leave negative slot", "trace \"x\"\nleaves 1\n2 -10\n", "leaves entry 0"},
		{"second leave bad", "trace \"x\"\nleaves 2\n2 10\n3 x\n", "leaves entry 1"},
		{"waypoint arity", "trace \"x\"\nwaypoints 1\n1 10 0.5\n", "waypoint 0"},
		{"waypoint NaN", "trace \"x\"\nwaypoints 1\n1 10 NaN 0\n", "non-finite"},
		{"waypoint Inf", "trace \"x\"\nwaypoints 2\n1 10 0 0\n1 20 +Inf 0\n", "waypoint 1"},
		{"truncated waypoints", "trace \"x\"\nwaypoints 3\n1 10 0 0\n", "truncated waypoints"},
		{"semantic: double leave", "trace \"x\"\nleaves 2\n1 10\n1 20\n", "alternate"},
		{"semantic: waypoint order", "trace \"x\"\nwaypoints 2\n1 20 0 0\n1 10 1 1\n", "increasing slot order"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadTrace(strings.NewReader(c.in))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %v, want substring %q", err, c.want)
			}
		})
	}
}
