package medium

import (
	"strings"
	"testing"
)

func TestParseSpecEmpty(t *testing.T) {
	for _, s := range []string{"", "  "} {
		sp, err := ParseSpec(s)
		if err != nil || sp != nil {
			t.Errorf("ParseSpec(%q) = %v, %v; want nil, nil", s, sp, err)
		}
	}
}

func TestParseSpecKinds(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"graph", Spec{Kind: KindGraph}},
		{"sinr", Spec{Kind: KindSINR, Alpha: 4, Beta: 1.5, NoiseDBM: -90}},
		{"sinr,alpha=3,beta=2,noise=-85,power=5",
			Spec{Kind: KindSINR, Alpha: 3, Beta: 2, NoiseDBM: -85, PowerDBM: 5}},
		{"multichannel", Spec{Kind: KindMultiChannel, Channels: 2}},
		{"multichannel,k=4,hopseed=21", Spec{Kind: KindMultiChannel, Channels: 4, HopSeed: 21}},
		{"multichannel,channels=8", Spec{Kind: KindMultiChannel, Channels: 8}},
		{" sinr , alpha=2.5 ", Spec{Kind: KindSINR, Alpha: 2.5, Beta: 1.5, NoiseDBM: -90}},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", c.in, err)
			continue
		}
		if *sp != c.want {
			t.Errorf("ParseSpec(%q) = %+v, want %+v", c.in, *sp, c.want)
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []string{
		"laser",                  // unknown kind
		"alpha=4",                // key before kind
		"sinr,alpha",             // not key=value
		"sinr,alpha=",            // empty value
		"sinr,k=4",               // multichannel key on sinr
		"multichannel,alpha=4",   // sinr key on multichannel
		"graph,alpha=4",          // graph takes no keys
		"sinr,alpha=NaN",         // non-finite
		"sinr,alpha=+Inf",        // non-finite
		"sinr,alpha=bogus",       // not a float
		"sinr,alpha=-1",          // fails validation
		"sinr,alpha=11",          // fails validation
		"sinr,beta=-2",           // fails validation
		"multichannel,k=0",       // fails validation
		"multichannel,k=2000000", // fails validation
		"multichannel,k=x",       // not an int
	}
	for _, in := range cases {
		if sp, err := ParseSpec(in); err == nil {
			t.Errorf("ParseSpec(%q) accepted: %+v", in, sp)
		}
	}
}

func TestSpecStringRoundtrip(t *testing.T) {
	for _, in := range []string{
		"graph",
		"sinr",
		"sinr,alpha=3,beta=2,noise=-85,power=5",
		"multichannel,k=4,hopseed=21",
		"multichannel,k=2",
	} {
		sp, err := ParseSpec(in)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", in, err)
		}
		again, err := ParseSpec(sp.String())
		if err != nil {
			t.Fatalf("ParseSpec(String(%q)) = ParseSpec(%q): %v", in, sp.String(), err)
		}
		if *again != *sp {
			t.Errorf("roundtrip drift: %q → %+v → %q → %+v", in, *sp, sp.String(), *again)
		}
	}
}

func TestSpecBuild(t *testing.T) {
	cases := []struct {
		in   string
		name string
	}{
		{"graph", "graph"},
		{"sinr", "sinr"},
		{"multichannel,k=3", "multichannel"},
	}
	for _, c := range cases {
		sp, err := ParseSpec(c.in)
		if err != nil {
			t.Fatal(err)
		}
		m, err := sp.Build()
		if err != nil {
			t.Fatalf("Build(%q): %v", c.in, err)
		}
		if m.Name() != c.name {
			t.Errorf("Build(%q).Name() = %q, want %q", c.in, m.Name(), c.name)
		}
	}
	if _, err := (Spec{Kind: "laser"}).Build(); err == nil {
		t.Error("Build accepted an unknown kind")
	}
}

func TestSpecZeroValueIsGraph(t *testing.T) {
	var s Spec
	if s.Normalized().Kind != KindGraph {
		t.Error("zero Spec should normalize to the graph rule")
	}
	if s.String() != "graph" {
		t.Errorf("zero Spec String() = %q", s.String())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("zero Spec invalid: %v", err)
	}
}

func TestParseSpecErrorMentionsKinds(t *testing.T) {
	_, err := ParseSpec("laser")
	if err == nil || !strings.Contains(err.Error(), "multichannel") {
		t.Errorf("unknown-kind error should list the valid kinds, got: %v", err)
	}
}
