// Package radiocolor is the public API of the reproduction of
// Moscibroda & Wattenhofer, "Coloring unstructured radio networks"
// (SPAA 2005 / Distributed Computing 2008).
//
// It colors the vertices of a wireless multi-hop network from scratch in
// the unstructured radio network model — single channel, no collision
// detection, asynchronous wake-up, only rough estimates of the network
// size and maximum degree — using O(Δ) colors in O(κ₂⁴ Δ log n) time
// slots with high probability.
//
// The simplest entry points are ColorGraph (arbitrary adjacency) and
// ColorUnitDisk (geometric placement):
//
//	adj := [][]int{{1}, {0, 2}, {1}} // path 0-1-2
//	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{})
//	if err != nil { ... }
//	fmt.Println(out.Colors) // e.g. [1 0 4]
//
// The internal packages expose every layer for research use: the radio
// model simulator (internal/radio), the protocol state machine
// (internal/core), topology generators (internal/topology), baselines,
// verification oracles, and the experiment suite E1–E12.
package radiocolor

import (
	"context"
	"errors"
	"fmt"
	"os"

	"radiocolor/internal/churn"
	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
	"radiocolor/internal/sched"
	"radiocolor/internal/verify"
)

// Outcome reports a completed coloring run.
type Outcome struct {
	// Colors holds the final color of every node (all ≥ 0 when
	// Complete).
	Colors []int
	// Leaders lists the nodes that elected themselves cluster leaders
	// (color 0); they form a maximal independent set.
	Leaders []int
	// Proper is true when no two adjacent nodes share a color
	// (Theorem 2) and Complete when every node decided (Theorem 5).
	Proper, Complete bool
	// NumColors and MaxColor describe the palette actually used; the
	// paper bounds MaxColor by O(κ₂·Δ).
	NumColors, MaxColor int
	// Slots is the total simulated time; MaxLatency is max_v T_v, the
	// slots between a node's wake-up and its irrevocable decision
	// (Theorem 3 bounds it by O(κ₂⁴ Δ log n)).
	Slots, MaxLatency int64
	// PerNodeLatency holds each node's T_v.
	PerNodeLatency []int64
	// Delta, Kappa1 and Kappa2 are the measured graph parameters used
	// to instantiate the protocol.
	Delta, Kappa1, Kappa2 int
	// MaxMessageBits is the largest message payload observed; the model
	// requires O(log n).
	MaxMessageBits int
	// Stats snapshots the run's channel behavior (collision rate,
	// per-phase timeline, throughput). Nil unless Options.Metrics was
	// set.
	Stats *Stats
	// Faults reports the injected fault events and the
	// graceful-degradation verdict. Nil unless Options.Faults was set.
	Faults *FaultOutcome
	// Churn reports the applied topology changes and the
	// proper-coloring verdict over the nodes still present. Nil unless
	// Options.Churn was set.
	Churn *ChurnOutcome

	g *graph.Graph
}

// OK reports a complete and proper coloring.
func (o *Outcome) OK() bool { return o.Proper && o.Complete }

// TDMA derives the periodic transmission schedule the paper's
// introduction motivates: node v owns slot Colors[v] of every frame.
func (o *Outcome) TDMA() (*TDMASchedule, error) {
	if !o.OK() {
		return nil, errors.New("radiocolor: cannot schedule an incomplete or improper coloring")
	}
	colors := make([]int32, len(o.Colors))
	for i, c := range o.Colors {
		colors[i] = int32(c)
	}
	s, err := sched.FromColoring(colors)
	if err != nil {
		return nil, err
	}
	frame := s.SimulateFrame(o.g)
	local := s.LocalFrameLen(o.g)
	t := &TDMASchedule{
		FrameLen:        int(s.FrameLen),
		Slots:           append([]int(nil), o.Colors...),
		MaxInterferers:  s.MaxInterferers(o.g),
		SuccessRate:     frame.SuccessRate(),
		LocalFrameLens:  make([]int, len(local)),
		DirectConflicts: len(s.DirectConflicts(o.g)),
	}
	for i, l := range local {
		t.LocalFrameLens[i] = int(l)
	}
	return t, nil
}

// TDMASchedule is the MAC schedule derived from a coloring.
type TDMASchedule struct {
	// FrameLen is the global frame length (max color + 1).
	FrameLen int
	// Slots assigns each node its transmission slot.
	Slots []int
	// DirectConflicts counts adjacent same-slot pairs (0 for proper
	// colorings — no direct interference).
	DirectConflicts int
	// MaxInterferers is the worst hidden-terminal exposure: at most κ₁
	// same-slot senders can disturb any receiver.
	MaxInterferers int
	// SuccessRate is the fraction of clean receptions in one simulated
	// frame in which every node transmits once.
	SuccessRate float64
	// LocalFrameLens gives each node the frame length its 2-hop
	// neighborhood actually needs — the locality dividend of Theorem 4.
	LocalFrameLens []int
}

// ColorGraph runs the full protocol on an arbitrary undirected graph
// given as adjacency lists (adj[v] lists the neighbors of v; symmetry is
// enforced, self-loops rejected).
func ColorGraph(adj [][]int, opt Options) (*Outcome, error) {
	return ColorGraphContext(context.Background(), adj, opt)
}

// ColorGraphContext is ColorGraph with cancellation: the simulation
// polls ctx about every thousand slots and returns ctx.Err() if it
// fired. Long runs on large graphs can take minutes, so interactive
// callers should prefer this entry point.
func ColorGraphContext(ctx context.Context, adj [][]int, opt Options) (*Outcome, error) {
	b := graph.NewBuilder(len(adj))
	for v, ns := range adj {
		for _, u := range ns {
			if u == v {
				return nil, fmt.Errorf("radiocolor: self-loop at node %d", v)
			}
			if u < 0 || u >= len(adj) {
				return nil, fmt.Errorf("radiocolor: node %d lists out-of-range neighbor %d", v, u)
			}
			b.AddEdge(v, u)
		}
	}
	return colorGraph(ctx, b.Build(), nil, 0, opt)
}

// ColorUnitDisk places the given points in the plane, connects pairs
// within the transmission radius (the unit disk model of Corollary 2)
// and runs the full protocol.
func ColorUnitDisk(points [][2]float64, radius float64, opt Options) (*Outcome, error) {
	return ColorUnitDiskContext(context.Background(), points, radius, opt)
}

// ColorUnitDiskContext is ColorUnitDisk with cancellation, analogous to
// ColorGraphContext.
func ColorUnitDiskContext(ctx context.Context, points [][2]float64, radius float64, opt Options) (*Outcome, error) {
	if radius <= 0 {
		return nil, errors.New("radiocolor: non-positive radius")
	}
	pts := make([]geom.Point, len(points))
	for i, p := range points {
		pts[i] = geom.Point{X: p[0], Y: p[1]}
	}
	b := graph.NewBuilder(len(pts))
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius {
				b.AddEdge(i, j)
			}
		}
	}
	return colorGraph(ctx, b.Build(), pts, radius, opt)
}

// colorGraph runs the protocol on the built graph. pts carries the
// nodes' positions when the caller came through a geometric entry point
// (nil otherwise, with radius 0); geometric media (SINR) and churn
// mobility require them.
func colorGraph(ctx context.Context, g *graph.Graph, pts []geom.Point, radius float64, opt Options) (*Outcome, error) {
	// Validation precedes the graph parameter measurement below: Kappa
	// alone can burn its full search budget before a typo'd option
	// would surface.
	if err := opt.Validate(); err != nil {
		return nil, err
	}
	opt = opt.normalized()
	if g.N() == 0 {
		return nil, errors.New("radiocolor: empty graph")
	}
	wk, _ := opt.wakeup() // validated above
	var delta, k1, k2 int
	if m := opt.Measured; m != nil {
		delta, k1, k2 = m.Delta, m.Kappa1, m.Kappa2
	} else {
		delta = g.MaxDegree()
		k := g.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
		k1, k2 = k.K1, k.K2
	}
	par := core.Practical(g.N(), delta, k1, k2).Scale(opt.ParamScale)

	var wake []int64
	for _, p := range radio.WakePatterns {
		if p.Name == wk.String() {
			wake = p.Make(g.N(), par.WaitSlots(), opt.Seed)
		}
	}
	if wake == nil {
		return nil, fmt.Errorf("radiocolor: unknown wakeup pattern %q", wk)
	}
	budget := opt.MaxSlots
	if budget <= 0 {
		budget = int64(par.Kappa2+2) * par.Threshold() * 40
		if budget < 1_000_000 {
			budget = 1_000_000
		}
	}

	// The tiled kernel (Options.Tiling) partitions node ids into
	// contiguous blocks, so a tiled run first renumbers the graph along
	// the shared locality pass (internal/graph); wake slots and fault
	// node lists move with their nodes, and everything the caller sees
	// — events, colors, latencies, down lists — is mapped back through
	// the inverse permutation below. Graph parameters (Δ, κ) were
	// measured above, on the original labels, so protocol constants are
	// unaffected. Media and clock skew never tile (their resolvers own
	// the slot loop), so those runs keep the caller's labels.
	runG := g
	var tilePerm *graph.Permutation
	if opt.Tiling != 0 && opt.Tiling != 1 && opt.Medium == nil &&
		(opt.Faults == nil || opt.Faults.SkewProb == 0) {
		var xs, ys []float64
		if pts != nil {
			xs = make([]float64, len(pts))
			ys = make([]float64, len(pts))
			for i, pt := range pts {
				xs[i], ys[i] = pt.X, pt.Y
			}
		}
		p := tilingPermutation(g, xs, ys)
		runG = p.Apply(g)
		tilePerm = &p
		wakeT := make([]int64, g.N())
		for v, s := range wake {
			wakeT[p.Forward[v]] = s
		}
		wake = wakeT
	}

	// Observability: assemble the collectors the options ask for. All
	// of this is nil (and the run allocation-free on the seam) when
	// Observer, Trace and Metrics are unset.
	var (
		met      *obs.Metrics
		timeline *obs.Timeline
		tracer   *obs.Tracer
		sink     *os.File
	)
	if opt.Metrics {
		met = obs.NewMetrics()
		timeline = obs.NewTimeline(g.N(), 0)
	}
	if t := opt.Trace; t != nil {
		w := t.W
		if t.Path != "" {
			f, err := os.Create(t.Path)
			if err != nil {
				return nil, fmt.Errorf("radiocolor: %w", err)
			}
			sink = f
			w = f
		}
		kinds := make([]obs.Kind, len(t.Kinds))
		for i, name := range t.Kinds {
			kinds[i], _ = obs.ParseKind(name) // validated above
		}
		tracer = obs.NewTracer(t.Cap, w, kinds...)
	}
	collector := &obs.Collector{Metrics: met, Tracer: tracer, Timeline: timeline}

	// Compile the fault profile against the concrete graph. The fault
	// seed defaults to the run seed so "same options, same outcome"
	// covers the injected chaos too.
	var inj *fault.Injector
	if f := opt.Faults; f != nil {
		prof := f.profile()
		if prof.Seed == 0 {
			prof.Seed = opt.Seed
		}
		if tilePerm != nil {
			// Crash and jammer victims follow their nodes into the
			// relabeled id space.
			prof = prof.Permute(tilePerm.Forward)
		}
		var ferr error
		inj, ferr = prof.Compile(g.N())
		if ferr != nil {
			return nil, fmt.Errorf("radiocolor: %w", ferr)
		}
	}

	// Compile the churn schedule against the concrete (possibly
	// relabeled) graph. Mobility needs the geometry, so the points and
	// radius of a geometric entry point thread through here; on a tiled
	// run both the schedule's node references and the points move into
	// the relabeled id space first, mirroring the fault permutation
	// above.
	var plan *churn.Plan
	if c := opt.Churn; c.active() {
		sch, cerr := c.schedule() // validated above
		if cerr != nil {
			return nil, cerr
		}
		env := churn.Env{G: runG}
		if len(sch.Waypoints) > 0 {
			if pts == nil {
				return nil, errors.New("radiocolor: churn mobility needs node positions; use ColorUnitDisk (or the points job input)")
			}
			envPts := pts
			if tilePerm != nil {
				envPts = make([]geom.Point, len(pts))
				for i, pt := range pts {
					envPts[tilePerm.Forward[i]] = pt
				}
			}
			env.Points = envPts
			env.Radius = radius
		}
		if tilePerm != nil {
			sch = sch.Permute(tilePerm.Forward)
		}
		plan, cerr = sch.Compile(env)
		if cerr != nil {
			return nil, fmt.Errorf("radiocolor: %w", cerr)
		}
	}

	// Bind the reception medium (if any) against the concrete graph and
	// placement. Validate() already rejected the medium+skew combination
	// and malformed parameters; what is left is the environment check —
	// SINR without positions fails here with a directed error.
	var med medium.Instance
	if mc := opt.Medium; mc != nil {
		spec := mc.spec()
		if spec.Kind == medium.KindSINR && pts == nil {
			return nil, errors.New("radiocolor: a sinr medium needs node positions; use ColorUnitDisk (or the points job input)")
		}
		model, merr := spec.Build()
		if merr != nil {
			return nil, fmt.Errorf("radiocolor: %w", merr)
		}
		csr := g.CSR()
		med, merr = model.Bind(medium.Env{
			N:       g.N(),
			Offsets: csr.Offsets,
			Edges:   csr.Edges,
			Points:  pts,
			Seed:    opt.Seed,
		})
		if merr != nil {
			return nil, fmt.Errorf("radiocolor: %w", merr)
		}
	}

	nodes, protos := core.Nodes(g.N(), opt.Seed, par, core.Ablation{})
	// On a relabeled (tiled) run, every per-node id crossing an
	// observability seam is mapped back to the caller's labels.
	invNode := func(v int32) int32 { return v }
	if tilePerm != nil {
		invNode = func(v int32) int32 { return tilePerm.Inverse[v] }
	}
	if po, ok := opt.Observer.(PhaseObserver); ok {
		// Fan phase transitions out to both the collector and the
		// caller's PhaseObserver (a node holds a single hook, so the
		// collector path is inlined here instead of ObservePhases).
		hook := func(slot int64, node int32, from, to core.Phase, class int32) {
			node = invNode(node)
			collector.OnPhase(slot, node, obs.Phase(from), obs.Phase(to), class)
			po.OnPhase(slot, int(node), obs.Phase(from).String(), obs.Phase(to).String())
		}
		for _, v := range nodes {
			v.SetPhaseHook(hook)
		}
	} else if tilePerm != nil && (met != nil || tracer != nil || timeline != nil) {
		hook := func(slot int64, node int32, from, to core.Phase, class int32) {
			collector.OnPhase(slot, invNode(node), obs.Phase(from), obs.Phase(to), class)
		}
		for _, v := range nodes {
			v.SetPhaseHook(hook)
		}
	} else {
		core.ObservePhases(nodes, collector)
	}
	engineOb := radio.Observers(radio.CollectorObserver(collector), adaptObserver(opt.Observer))
	if tilePerm != nil && engineOb != nil {
		engineOb = invObserver{inner: engineOb, inv: tilePerm.Inverse}
	}
	cfg := radio.Config{
		G:         runG,
		Protocols: protos,
		Wake:      wake,
		MaxSlots:  budget,
		NEstimate: par.N,
		Workers:   opt.Workers,
		Tiles:     opt.Tiling,
		Observer:  engineOb,
		Metrics:   met,
		Faults:    inj,
		Medium:    med,
		Churn:     plan,
	}
	var res *radio.Result
	var err error
	if inj != nil && inj.HasSkew() {
		// Clock skew runs through the half-slot engine; the injector
		// supplies the per-node offsets.
		res, err = radio.RunUnalignedContext(ctx, cfg, nil)
	} else {
		res, err = radio.RunContext(ctx, cfg)
	}
	if tracer != nil {
		if ferr := tracer.Flush(); ferr != nil && err == nil {
			err = fmt.Errorf("radiocolor: %w", ferr)
		}
	}
	if sink != nil {
		if cerr := sink.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("radiocolor: %w", cerr)
		}
	}
	if err != nil {
		return nil, err
	}
	if tilePerm != nil {
		res = mapTiledResult(res, *tilePerm)
	}

	out := &Outcome{
		Colors:         make([]int, g.N()),
		PerNodeLatency: make([]int64, g.N()),
		Slots:          res.Slots,
		MaxLatency:     res.MaxLatency(),
		Delta:          delta,
		Kappa1:         k1,
		Kappa2:         k2,
		MaxMessageBits: res.MaxMessageBits,
		g:              g,
	}
	colors := make([]int32, g.N())
	for i := range nodes {
		v := nodes[i]
		if tilePerm != nil {
			// Node i of the caller's graph ran as nodes[Forward[i]];
			// res was already mapped back above.
			v = nodes[tilePerm.Forward[i]]
		}
		out.Colors[i] = int(v.Color())
		colors[i] = v.Color()
		out.PerNodeLatency[i] = res.Latency(i)
		if v.IsLeader() {
			out.Leaders = append(out.Leaders, i)
		}
	}
	// The verdict graph: churned runs are judged against the topology
	// they ended with (replayed from the plan), mapped back to caller
	// ids on a tiled run; static runs against the input graph.
	vg := g
	if plan != nil {
		vg = plan.FinalGraph(runG)
		if tilePerm != nil {
			back := graph.Permutation{Forward: tilePerm.Inverse, Inverse: tilePerm.Forward}
			vg = back.Apply(vg)
		}
	}
	rep := verify.Check(vg, colors)
	out.Proper = rep.Proper
	out.Complete = rep.Complete && res.AllDone
	out.NumColors = rep.NumColors
	out.MaxColor = int(rep.MaxColor)
	if met != nil {
		out.Stats = buildStats(met, timeline)
	}
	if inj != nil || plan != nil {
		// One scoped verdict serves both reports: crashed nodes and
		// departed nodes are each out of scope, for their own reason.
		srep := verify.CheckSurvivorsScoped(vg, colors,
			verify.DownSet(g.N(), res.Down), verify.DownSet(g.N(), res.Left))
		if inj != nil {
			fo := &FaultOutcome{
				Lost: res.Lost, Jammed: res.Jammed,
				Crashes: res.Crashes, Restarts: res.Restarts,
				Survivors:        srep.Survivors,
				SurvivorsColored: srep.SurvivorsColored,
				Degraded:         len(srep.Degraded),
				HardViolations:   len(srep.HardViolations),
				Graceful:         srep.Graceful(),
			}
			for _, v := range res.Down {
				fo.Down = append(fo.Down, int(v))
			}
			out.Faults = fo
		}
		if plan != nil {
			co := &ChurnOutcome{
				Joins: res.Joins, Leaves: res.Leaves,
				ConflictsRepaired: res.ConflictsRepaired,
				Present:           srep.Survivors,
				PresentColored:    srep.SurvivorsColored,
				Degraded:          len(srep.Degraded),
				HardViolations:    len(srep.HardViolations),
				Graceful:          srep.Graceful(),
			}
			for _, v := range res.Left {
				co.Left = append(co.Left, int(v))
			}
			out.Churn = co
		}
	}
	return out, nil
}
