package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Spatial relabeling for cache locality. The slot kernel's memory
// behavior is dominated by the resolve/deliver phases, whose access
// pattern is "for each transmitter, touch every neighbor": with
// arbitrary node ids a neighbor row is a random scatter over n
// accumulator entries, while after a locality-preserving relabeling the
// row lands on a handful of hot cache lines. The tiled engine
// (internal/radio) additionally partitions relabeled ids into
// contiguous blocks so that intra-tile edges — the vast majority after
// a good relabeling — never leave the tile's working set.
//
// Three orders are provided: a Hilbert space-filling curve and a strip
// sweep for point topologies, and BFS order for pure graphs.

// Permutation is a bijection on node ids produced by a relabeling pass.
// Forward maps an original id to its new id; Inverse maps back. Both
// slices have length n and Inverse[Forward[v]] == v for all v.
type Permutation struct {
	Forward []int32
	Inverse []int32
}

// NewPermutation builds a Permutation from a forward map, validating
// that it is a bijection on [0, len(forward)).
func NewPermutation(forward []int32) (Permutation, error) {
	n := len(forward)
	inv := make([]int32, n)
	for i := range inv {
		inv[i] = -1
	}
	for old, nw := range forward {
		if nw < 0 || int(nw) >= n {
			return Permutation{}, fmt.Errorf("graph: forward[%d] = %d out of range [0,%d)", old, nw, n)
		}
		if inv[nw] != -1 {
			return Permutation{}, fmt.Errorf("graph: forward maps both %d and %d to %d", inv[nw], old, nw)
		}
		inv[nw] = int32(old)
	}
	return Permutation{Forward: forward, Inverse: inv}, nil
}

// IdentityPermutation returns the identity on [0, n).
func IdentityPermutation(n int) Permutation {
	fwd := make([]int32, n)
	inv := make([]int32, n)
	for i := range fwd {
		fwd[i] = int32(i)
		inv[i] = int32(i)
	}
	return Permutation{Forward: fwd, Inverse: inv}
}

// rankPermutation turns a node ordering (ids[rank] = old id) into a
// Permutation without revalidating: callers guarantee ids is a
// permutation of [0, n).
func rankPermutation(ids []int32) Permutation {
	fwd := make([]int32, len(ids))
	inv := make([]int32, len(ids))
	for rank, old := range ids {
		fwd[old] = int32(rank)
		inv[rank] = old
	}
	return Permutation{Forward: fwd, Inverse: inv}
}

// Apply relabels g under the permutation: node v of the result is node
// Inverse[v] of g. The CSR layout is rebuilt directly — degrees are
// scattered through Forward, rows copied and re-sorted — which is
// O(n + m log Δ), well below Builder's full edge re-sort.
func (p Permutation) Apply(g *Graph) *Graph {
	n := g.n
	if len(p.Forward) != n {
		panic(fmt.Sprintf("graph: permutation over %d ids applied to %d-node graph", len(p.Forward), n))
	}
	ng := &Graph{
		n:       n,
		adj:     make([][]int32, n),
		edges:   make([]int32, len(g.edges)),
		offsets: make([]int32, n+1),
	}
	for old := 0; old < n; old++ {
		ng.offsets[p.Forward[old]+1] = g.offsets[old+1] - g.offsets[old]
	}
	for v := 0; v < n; v++ {
		ng.offsets[v+1] += ng.offsets[v]
	}
	for old := 0; old < n; old++ {
		nv := p.Forward[old]
		row := g.edges[g.offsets[old]:g.offsets[old+1]]
		dst := ng.edges[ng.offsets[nv]:ng.offsets[nv+1]]
		for i, u := range row {
			dst[i] = p.Forward[u]
		}
		slices.Sort(dst)
	}
	for v := 0; v < n; v++ {
		ng.adj[v] = ng.edges[ng.offsets[v]:ng.offsets[v+1]:ng.offsets[v+1]]
	}
	return ng
}

// hilbertOrderBits fixes the quantization grid of HilbertOrder at
// 2^16 × 2^16 cells: fine enough that realistic deployments (≤ ~10⁷
// points) rarely share cells, coarse enough that the d-index fits a
// uint32 pair folded into uint64.
const hilbertOrderBits = 16

// hilbertD maps grid cell (x, y), 0 ≤ x,y < 2^order, to its distance
// along the order-`order` Hilbert curve (the classic xy2d rotation
// walk). Nearby cells get nearby distances, which is exactly the
// locality the relabeling is after.
func hilbertD(order uint, x, y uint32) uint64 {
	var d uint64
	for s := uint32(1) << (order - 1); s > 0; s >>= 1 {
		var rx, ry uint32
		if x&s > 0 {
			rx = 1
		}
		if y&s > 0 {
			ry = 1
		}
		d += uint64(s) * uint64(s) * uint64((3*rx)^ry)
		// Rotate the quadrant so the curve enters and exits correctly.
		if ry == 0 {
			if rx == 1 {
				x = s - 1 - x
				y = s - 1 - y
			}
			x, y = y, x
		}
	}
	return d
}

// HilbertOrder relabels points along a Hilbert space-filling curve over
// their bounding box: Forward[v] is v's rank along the curve. Points in
// the same grid cell (and the degenerate all-collinear cases) tie-break
// by original id, so the permutation is deterministic for any input.
func HilbertOrder(xs, ys []float64) Permutation {
	n := len(xs)
	if len(ys) != n {
		panic(fmt.Sprintf("graph: %d xs vs %d ys", n, len(ys)))
	}
	if n == 0 {
		return Permutation{Forward: []int32{}, Inverse: []int32{}}
	}
	minX, maxX := xs[0], xs[0]
	minY, maxY := ys[0], ys[0]
	for i := 1; i < n; i++ {
		if xs[i] < minX {
			minX = xs[i]
		}
		if xs[i] > maxX {
			maxX = xs[i]
		}
		if ys[i] < minY {
			minY = ys[i]
		}
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	const cells = 1 << hilbertOrderBits
	keys := make([]uint64, n)
	for i := 0; i < n; i++ {
		hx := uint32((xs[i] - minX) / spanX * (cells - 1))
		hy := uint32((ys[i] - minY) / spanY * (cells - 1))
		keys[i] = hilbertD(hilbertOrderBits, hx, hy)
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		if keys[ids[a]] != keys[ids[b]] {
			return keys[ids[a]] < keys[ids[b]]
		}
		return ids[a] < ids[b]
	})
	return rankPermutation(ids)
}

// StripOrder relabels points in horizontal strips of the given height
// swept bottom-to-top, left-to-right within a strip — the numbering a
// coordinated deployment sweep produces. Ties break by original id.
func StripOrder(xs, ys []float64, stripHeight float64) Permutation {
	n := len(xs)
	if len(ys) != n {
		panic(fmt.Sprintf("graph: %d xs vs %d ys", n, len(ys)))
	}
	if stripHeight <= 0 {
		panic(fmt.Sprintf("graph: non-positive strip height %g", stripHeight))
	}
	minY := 0.0
	if n > 0 {
		minY = ys[0]
		for _, y := range ys {
			if y < minY {
				minY = y
			}
		}
	}
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		va, vb := ids[a], ids[b]
		sa := int((ys[va] - minY) / stripHeight)
		sb := int((ys[vb] - minY) / stripHeight)
		if sa != sb {
			return sa < sb
		}
		if xs[va] != xs[vb] {
			return xs[va] < xs[vb]
		}
		return va < vb
	})
	return rankPermutation(ids)
}

// BFSOrder relabels a pure graph (no geometry) in breadth-first order:
// components are entered at their smallest id, and each frontier is
// expanded in sorted-neighbor order, so graph-adjacent nodes receive
// nearby labels. Deterministic for a given graph.
func BFSOrder(g *Graph) Permutation {
	n := g.N()
	ids := make([]int32, 0, n)
	seen := make([]bool, n)
	queue := make([]int32, 0, n)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			ids = append(ids, v)
			for _, u := range g.adj[v] {
				if !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	return rankPermutation(ids)
}
