package radiocolor_test

import (
	"fmt"

	"radiocolor"
)

// ExampleColorGraph colors a 5-cycle. Every run with the same seed is
// bit-identical, so the output is stable.
func ExampleColorGraph() {
	adj := [][]int{{4, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 0}}
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{Seed: 2})
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper)
	fmt.Println("complete:", out.Complete)
	conflicts := 0
	for v, ns := range adj {
		for _, u := range ns {
			if out.Colors[v] == out.Colors[u] {
				conflicts++
			}
		}
	}
	fmt.Println("conflicting edges:", conflicts)
	// Output:
	// proper: true
	// complete: true
	// conflicting edges: 0
}

// ExampleColorUnitDisk colors a small geometric deployment and derives
// its TDMA schedule.
func ExampleColorUnitDisk() {
	points := [][2]float64{
		{0, 0}, {0.8, 0}, {1.6, 0}, {2.4, 0}, {3.2, 0},
	}
	out, err := radiocolor.ColorUnitDisk(points, 1.0, radiocolor.Options{Seed: 3})
	if err != nil {
		panic(err)
	}
	schedule, err := out.TDMA()
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper)
	fmt.Println("direct conflicts:", schedule.DirectConflicts)
	// Output:
	// proper: true
	// direct conflicts: 0
}

// ExampleOptions_wakeup shows that the guarantees hold under an
// adversarially staggered wake-up schedule.
func ExampleOptions_wakeup() {
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}, {4}, {3}} // triangle + far pair
	out, err := radiocolor.ColorGraph(adj, radiocolor.Options{
		Seed:   5,
		Wakeup: "adversarial",
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("proper:", out.Proper, "complete:", out.Complete)
	// Output:
	// proper: true complete: true
}
