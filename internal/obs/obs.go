// Package obs is the observability subsystem of the simulator: a
// metrics registry of atomic counters and gauges (metrics.go), a
// ring-buffered slot-event tracer with a JSONL sink (trace.go), and a
// per-phase timeline aggregator (timeline.go).
//
// The package is deliberately dependency-free (stdlib only) so that
// both internal/radio and internal/core can feed it without import
// cycles: the engines increment a *Metrics directly and drive Tracer
// and Timeline through the radio.Observer seam, while protocol nodes
// report phase transitions through a hook. Everything is opt-in; when
// no collector is configured the engines pay a single predictable
// branch per event and allocate nothing.
//
// Collector bundles the three pieces; Summarize replays a JSONL trace
// back into the same per-phase aggregates the Timeline computes online,
// which is how cmd/tracestat cross-checks a recorded trace against a
// run's reported statistics.
package obs

import "fmt"

// Phase mirrors the protocol phases of internal/core (state diagram of
// Fig. 2): asleep, the passive waiting prefix of a verification state
// A_i, its active competing part, the color-requesting state R, and the
// decided states C_i. obs keeps its own copy of the enumeration so the
// package stays import-free; internal/core converts via plain integer
// casts and the core test suite pins the two enumerations together.
type Phase uint8

const (
	// PhaseAsleep is state Z: before wake-up.
	PhaseAsleep Phase = iota
	// PhaseWaiting is the passive listening prefix of a state A_i.
	PhaseWaiting
	// PhaseActive is the competing part of a state A_i.
	PhaseActive
	// PhaseRequest is state R: requesting a color from the leader.
	PhaseRequest
	// PhaseColored is a state C_i: irrevocably decided.
	PhaseColored

	// NumPhases bounds the Phase enumeration.
	NumPhases = 5
)

// phaseNames indexes Phase → wire name (used in JSONL traces and
// rendered summaries).
var phaseNames = [NumPhases]string{"asleep", "waiting", "active", "request", "colored"}

// String implements fmt.Stringer.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// ParsePhase inverts String for the JSONL decoder.
func ParsePhase(s string) (Phase, error) {
	for i, name := range phaseNames {
		if name == s {
			return Phase(i), nil
		}
	}
	return 0, fmt.Errorf("obs: unknown phase %q", s)
}

// Collector bundles the three observability pieces a run may enable.
// Any field may be nil; helpers treat a nil Collector as fully
// disabled.
type Collector struct {
	// Metrics receives atomic event counters (shared across runs if the
	// caller reuses the registry).
	Metrics *Metrics
	// Tracer records slot events into a ring and, when configured, a
	// JSONL sink.
	Tracer *Tracer
	// Timeline aggregates events into per-phase totals and bucketed
	// time series.
	Timeline *Timeline
}

// OnPhase fans a phase transition out to all configured pieces. It is
// the single entry point internal/core's node hook calls.
func (c *Collector) OnPhase(slot int64, node int32, from, to Phase, class int32) {
	if c == nil {
		return
	}
	if c.Metrics != nil {
		c.Metrics.PhaseChange(from, to)
	}
	if c.Timeline != nil {
		c.Timeline.OnPhase(slot, node, from, to)
	}
	if c.Tracer != nil {
		c.Tracer.Record(Event{Slot: slot, Kind: KindPhase, Node: node, From: -1, Phase: to, Class: class})
	}
}
