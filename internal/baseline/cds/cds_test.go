package cds

import (
	"math/rand"
	"testing"

	"radiocolor/internal/graph"
	"radiocolor/internal/msgpass"
	"radiocolor/internal/verify"
)

func udg(n int, seed int64) *graph.Graph {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < 0.08 {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

func TestFixRepairsMonochromaticStart(t *testing.T) {
	// The worst possible start: every node holds color 0.
	g := udg(120, 1)
	initial := make([]int32, g.N())
	res, colors, err := Fix(g, initial, 42, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("did not converge in %d rounds", res.Rounds)
	}
	if rep := verify.Check(g, colors); !rep.Proper {
		t.Fatalf("repaired coloring improper: %v", rep)
	}
	for _, c := range colors {
		if c < 0 || int(c) > g.MaxDegree() {
			t.Fatalf("color %d outside palette {0..%d}", c, g.MaxDegree())
		}
	}
}

func TestFixPreservesProperColoring(t *testing.T) {
	// A proper start must converge immediately (round 1: everyone
	// observes no conflict) without changing any color.
	g := udg(80, 2)
	_, proper, err := Fix(g, make([]int32, g.N()), 7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	res, colors, err := Fix(g, proper, 99, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds != 2 {
		t.Errorf("proper start took %d rounds, want 2 (announce + observe)", res.Rounds)
	}
	for i, c := range colors {
		if c != proper[i] {
			t.Errorf("node %d recolored %d → %d without a conflict", i, proper[i], c)
		}
	}
}

func TestFixLocalizedPerturbationIsCheap(t *testing.T) {
	// Flip a handful of nodes of a proper coloring to a conflicting
	// color: repair must converge in far fewer rounds than the
	// monochromatic cold start and only conflicted regions may move.
	g := udg(120, 3)
	_, proper, err := Fix(g, make([]int32, g.N()), 7, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, _, err := Fix(g, make([]int32, g.N()), 11, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	perturbed := append([]int32(nil), proper...)
	flipped := 0
	for v := 0; v < g.N() && flipped < 5; v++ {
		adj := g.Adj(v)
		if len(adj) == 0 {
			continue
		}
		perturbed[v] = proper[adj[0]] // collide with the first neighbor
		flipped++
	}
	res, colors, err := Fix(g, perturbed, 11, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep := verify.Check(g, colors); !rep.Proper {
		t.Fatalf("repair left conflicts: %v", rep)
	}
	if res.Rounds >= coldRes.Rounds {
		t.Errorf("perturbation repair took %d rounds, cold start %d — repair should be strictly cheaper",
			res.Rounds, coldRes.Rounds)
	}
}

func TestDoneIsStable(t *testing.T) {
	// Drive a conflicted pair by hand: once a node reports Done it must
	// never move again, even while its neighbor keeps repairing.
	n0 := New(2, 0, rand.New(rand.NewSource(1)))
	n1 := New(2, 1, rand.New(rand.NewSource(2)))
	protos := []msgpass.Protocol{n0, n1}
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	res, err := msgpass.Run(b.Build(), protos, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("conflict-free pair did not terminate")
	}
	if n0.Color() == n1.Color() {
		t.Errorf("adjacent pair share color %d", n0.Color())
	}
	if n0.Color() != 0 || n1.Color() != 1 {
		t.Errorf("conflict-free nodes moved: %d, %d", n0.Color(), n1.Color())
	}
}

func TestFixRejectsSizeMismatch(t *testing.T) {
	g := udg(10, 4)
	if _, _, err := Fix(g, make([]int32, 3), 1, 100); err == nil {
		t.Error("no error for wrong initial length")
	}
}
