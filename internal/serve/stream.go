package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"radiocolor/internal/obs"
)

// handleStream serves GET /v1/jobs/{id}/stream: an initial "status"
// event, periodic "progress" samples of the job's obs registry while it
// runs, and a final "done" event carrying the full status (outcome
// included). The format is NDJSON by default and SSE when the client
// asks for text/event-stream; both flush per event, so a curl client
// watches the run live.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "streaming unsupported"})
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)

	emit := func(ev StreamEvent) bool {
		var err error
		if sse {
			var data []byte
			data, err = json.Marshal(ev)
			if err == nil {
				_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			}
		} else {
			err = json.NewEncoder(w).Encode(ev)
		}
		if err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	st := j.status()
	if !emit(StreamEvent{Type: "status", State: st.State}) {
		return
	}
	if st.State.Terminal() {
		emit(StreamEvent{Type: "done", State: st.State, Status: &st})
		return
	}

	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-j.done:
			final := j.status()
			emit(StreamEvent{Type: "done", State: final.State, Status: &final})
			return
		case <-ticker.C:
			cur := j.status()
			if cur.State != StateRunning {
				// Still queued: re-emit the bare status so the client
				// sees liveness without a fake progress sample.
				if !emit(StreamEvent{Type: "status", State: cur.State}) {
					return
				}
				continue
			}
			sample := sampleProgress(j.metrics)
			if !emit(StreamEvent{Type: "progress", State: cur.State, Progress: &sample}) {
				return
			}
		}
	}
}

// sampleProgress converts an obs snapshot into the wire sample.
func sampleProgress(m *obs.Metrics) ProgressSample {
	snap := m.Snapshot()
	p := ProgressSample{
		Slots:         snap.Slots,
		Wakeups:       snap.Wakeups,
		Decisions:     snap.Decisions,
		Transmissions: snap.Transmissions,
		Deliveries:    snap.Deliveries,
		Collisions:    snap.Collisions,
		CollisionRate: snap.CollisionRate(),
		SlotsPerSec:   snap.SlotsPerSec(),
		PhaseNodes:    make(map[string]int64, obs.NumPhases),
	}
	snap.Export(func(name string, v int64, counter bool) {
		if !counter {
			p.PhaseNodes[strings.TrimPrefix(name, "phase_")] = v
		}
	})
	return p
}
