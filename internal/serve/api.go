// Package serve is the serving layer of the reproduction: a long-running
// HTTP service that exposes the coloring protocol as queued, cancellable,
// observable jobs. It turns the batch machinery the repo already has —
// the fleet execution engine, the obs metrics registry, the monitor
// progress tracker — into a daemon (cmd/colord) with explicit
// backpressure and streaming results.
//
// The API surface:
//
//	POST   /v1/jobs          submit a job (202, or 429 + Retry-After when the backlog is full)
//	GET    /v1/jobs          list job statuses (?state=, ?limit=)
//	GET    /v1/jobs/{id}     poll one job
//	GET    /v1/jobs/{id}/stream  live progress, NDJSON or SSE (Accept: text/event-stream)
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	POST   /v1/sweeps        submit a parameter grid that fans out into one job per cell
//	GET    /v1/sweeps/{id}   poll a sweep (aggregate result once terminal)
//	GET    /v1/sweeps/{id}/stream  per-cell completions + final aggregate
//	DELETE /v1/sweeps/{id}   cancel a sweep and all its cells
//	GET    /healthz          liveness + backlog/worker snapshot
//	GET    /metrics          Prometheus text exposition
//
// Every accepted submission is persisted to the configured job store
// (internal/store) before its 202 goes out, and workers execute by
// claiming leases from that store — so with a durable store the
// backlog survives SIGKILL, and several Servers sharing one store
// directory form a replica group in which each job runs exactly once.
//
// Jobs run through the same context-aware entry points the library
// exposes (radiocolor.ColorGraphContext / ColorUnitDiskContext), so a
// job's Outcome is identical to a direct call with the same seed.
// Server-side topology generation caches built deployments and their
// measured graph parameters (Δ, κ₁, κ₂) in a size-bounded LRU, so
// repeated workloads skip the expensive measurement pass via
// radiocolor.Options.Measured.
package serve

import (
	"errors"
	"fmt"
	"time"

	"radiocolor"
	"radiocolor/internal/topology"
)

// JobRequest is the body of POST /v1/jobs. Exactly one of Topology,
// Adjacency, and Points must be set; the remaining fields mirror
// radiocolor.Options (Observer and Trace are deliberately not exposed —
// they are in-process seams).
type JobRequest struct {
	// Topology asks the server to generate a deployment. Generated
	// deployments (and their measured parameters) are cached across
	// jobs.
	Topology *TopologySpec `json:"topology,omitempty"`
	// Adjacency gives the communication graph explicitly, in the same
	// format radiocolor.ColorGraph accepts.
	Adjacency [][]int `json:"adjacency,omitempty"`
	// Points places nodes in the plane; Radius connects pairs within
	// transmission range (the unit disk model).
	Points [][2]float64 `json:"points,omitempty"`
	// Radius is the transmission radius for Points.
	Radius float64 `json:"radius,omitempty"`

	// Seed drives all randomness; equal seeds give bit-identical runs.
	Seed int64 `json:"seed,omitempty"`
	// Wakeup selects the wake-up schedule by name ("synchronous",
	// "uniform", "sequential", "bursty", "adversarial").
	Wakeup string `json:"wakeup,omitempty"`
	// ParamScale multiplies the practical protocol constants.
	ParamScale float64 `json:"param_scale,omitempty"`
	// MaxSlots caps the simulation (0 = automatic budget).
	MaxSlots int64 `json:"max_slots,omitempty"`
	// Workers parallelizes the simulator's phases.
	Workers int `json:"workers,omitempty"`
	// Tiling selects the tiled slot kernel: -1 picks the tile count
	// automatically for the job's size, ≥2 forces that many tiles, 0
	// (default) and 1 keep the untiled loop. Results are bit-identical
	// either way; tiling only changes throughput at scale.
	Tiling int `json:"tiling,omitempty"`
	// Metrics attaches an Outcome.Stats snapshot to the result.
	Metrics bool `json:"metrics,omitempty"`
	// Faults injects deterministic faults, in radiocolor.ParseFaults
	// syntax (e.g. "loss=0.05,crash=3@500:900"). The outcome then
	// carries the fault counters and the graceful-degradation verdict.
	Faults string `json:"faults,omitempty"`
	// Churn changes the topology mid-run, in radiocolor.ParseChurn
	// syntax (e.g. "join=3@500,leave=7@900,move=0@1000:2:2"), so
	// long-running jobs accept topology deltas. Waypoint mobility needs
	// node positions, so it requires the points input. The outcome then
	// carries the churn counters and the present-subgraph verdict.
	Churn string `json:"churn,omitempty"`
	// Medium selects the reception model, in radiocolor.ParseMedium
	// syntax (e.g. "sinr,alpha=4,beta=1.5,noise=-90" or
	// "multichannel,k=4"). A "sinr" medium needs node positions, so it
	// requires the points input — topology and adjacency jobs flatten
	// to an adjacency list before the run.
	Medium string `json:"medium,omitempty"`
	// TimeoutMS bounds the job's wall-clock execution; a job that
	// exceeds it finishes in state "timed_out". 0 falls back to the
	// server's Config.JobTimeout (which may be unlimited).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// TopologySpec names a server-side deployment generator and its
// parameters — the same vocabulary as cmd/colorsim's -topology flag.
type TopologySpec struct {
	// Kind is one of udg, big, corridor, clustered, grid, ring, clique,
	// star, tree.
	Kind string `json:"kind"`
	// N is the node count.
	N int `json:"n"`
	// Side is the deployment square side (default 7).
	Side float64 `json:"side,omitempty"`
	// Radius is the transmission radius (default 1.2).
	Radius float64 `json:"radius,omitempty"`
	// Walls is the obstacle count for kind "big" (default 20).
	Walls int `json:"walls,omitempty"`
	// Seed drives the deterministic placement (default 1).
	Seed int64 `json:"seed,omitempty"`
}

// normalized applies the generator defaults.
func (t TopologySpec) normalized() TopologySpec {
	if t.Side == 0 {
		t.Side = 7
	}
	if t.Radius == 0 {
		t.Radius = 1.2
	}
	if t.Walls == 0 {
		t.Walls = 20
	}
	if t.Seed == 0 {
		t.Seed = 1
	}
	return t
}

// key is the cache key: every parameter the generated deployment
// depends on.
func (t TopologySpec) key() string {
	t = t.normalized()
	return fmt.Sprintf("%s|n=%d|side=%g|radius=%g|walls=%d|seed=%d",
		t.Kind, t.N, t.Side, t.Radius, t.Walls, t.Seed)
}

// build runs the generator.
func (t TopologySpec) build() (*topology.Deployment, error) {
	t = t.normalized()
	cfg := topology.UDGConfig{N: t.N, Side: t.Side, Radius: t.Radius, Seed: t.Seed}
	switch t.Kind {
	case "udg":
		return topology.RandomUDG(cfg), nil
	case "big":
		return topology.BIGWithWalls(cfg, t.Walls), nil
	case "corridor":
		return topology.CorridorUDG(t.N, t.Side*4, 2, t.Radius, t.Seed), nil
	case "clustered":
		return topology.ClusteredUDG(t.N/2, t.N-t.N/2, t.Side, t.Radius, t.Seed), nil
	case "grid":
		k := 1
		for (k+1)*(k+1) <= t.N {
			k++
		}
		return topology.GridGraph(k, k, 1, 1.5), nil
	case "ring":
		return topology.Ring(t.N), nil
	case "clique":
		return topology.Clique(t.N), nil
	case "star":
		return topology.Star(t.N), nil
	case "tree":
		return topology.RandomTree(t.N, t.Seed), nil
	default:
		return nil, fmt.Errorf("serve: unknown topology kind %q", t.Kind)
	}
}

// nodes reports how many nodes the request would simulate (for the
// admission bound).
func (r *JobRequest) nodes() int {
	switch {
	case r.Topology != nil:
		return r.Topology.N
	case r.Adjacency != nil:
		return len(r.Adjacency)
	default:
		return len(r.Points)
	}
}

// validate checks the request shape and converts the option fields,
// running radiocolor.Options.Validate before admission so a
// misconfigured job is rejected at submit time, not when a worker picks
// it up.
func (r *JobRequest) validate() (radiocolor.Options, error) {
	var opt radiocolor.Options
	inputs := 0
	if r.Topology != nil {
		inputs++
	}
	if r.Adjacency != nil {
		inputs++
	}
	if r.Points != nil {
		inputs++
	}
	if inputs != 1 {
		return opt, errors.New("serve: exactly one of topology, adjacency, points must be set")
	}
	if r.nodes() <= 0 {
		return opt, errors.New("serve: job has no nodes")
	}
	if r.Topology != nil && r.Topology.N <= 0 {
		return opt, errors.New("serve: topology needs n > 0")
	}
	if r.Points != nil && r.Radius <= 0 {
		return opt, errors.New("serve: points need a positive radius")
	}
	if r.TimeoutMS < 0 {
		return opt, fmt.Errorf("serve: negative timeout_ms %d", r.TimeoutMS)
	}
	opt = radiocolor.Options{
		Seed:       r.Seed,
		ParamScale: r.ParamScale,
		MaxSlots:   r.MaxSlots,
		Workers:    r.Workers,
		Tiling:     r.Tiling,
		Metrics:    r.Metrics,
	}
	if r.Wakeup != "" {
		wk, err := radiocolor.ParseWakeup(r.Wakeup)
		if err != nil {
			return opt, err
		}
		opt.Wakeup = wk
	}
	if r.Faults != "" {
		fc, err := radiocolor.ParseFaults(r.Faults)
		if err != nil {
			return opt, err
		}
		opt.Faults = fc
	}
	if r.Churn != "" {
		cc, err := radiocolor.ParseChurn(r.Churn)
		if err != nil {
			return opt, err
		}
		if cc != nil && len(cc.Waypoints) > 0 && r.Points == nil {
			return opt, errors.New("serve: churn mobility needs node positions; submit the points input")
		}
		opt.Churn = cc
	}
	if r.Medium != "" {
		mc, err := radiocolor.ParseMedium(r.Medium)
		if err != nil {
			return opt, err
		}
		if mc != nil && mc.Kind == "sinr" && r.Points == nil {
			return opt, errors.New("serve: a sinr medium needs node positions; submit the points input")
		}
		opt.Medium = mc
	}
	if err := opt.Validate(); err != nil {
		return opt, err
	}
	return opt, nil
}

// JobState enumerates the job lifecycle.
type JobState string

const (
	// StateQueued means the job is admitted and waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning means a worker is executing the job.
	StateRunning JobState = "running"
	// StateDone means the job finished and Outcome is set.
	StateDone JobState = "done"
	// StateFailed means the job finished with an error.
	StateFailed JobState = "failed"
	// StateCanceled means the job was canceled (DELETE or shutdown)
	// before it finished.
	StateCanceled JobState = "canceled"
	// StateTimedOut means the job hit its wall-clock timeout
	// (timeout_ms or the server's JobTimeout) before finishing.
	StateTimedOut JobState = "timed_out"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateTimedOut
}

// JobStatus is the wire view of a job, returned by POST /v1/jobs,
// GET /v1/jobs/{id}, and the final stream event.
type JobStatus struct {
	// ID names the job; all per-job endpoints key on it.
	ID string `json:"id"`
	// State is the current lifecycle state.
	State JobState `json:"state"`
	// Submitted, Started and Finished are the lifecycle timestamps
	// (Started/Finished omitted until reached).
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Attempts counts executions (fleet retries included).
	Attempts int `json:"attempts,omitempty"`
	// CacheHit marks a topology job that reused a cached deployment.
	CacheHit bool `json:"cache_hit,omitempty"`
	// Error is the failure message for StateFailed.
	Error string `json:"error,omitempty"`
	// Outcome is the full result for StateDone — identical to what
	// radiocolor.ColorGraphContext returns for the same input and seed.
	Outcome *radiocolor.Outcome `json:"outcome,omitempty"`
}

// StreamEvent is one line of the NDJSON stream (or one SSE event; the
// SSE event name duplicates Type).
type StreamEvent struct {
	// Type is "status" (initial snapshot), "progress" (periodic sample
	// while running), or "done" (terminal, carries the full status).
	Type string `json:"type"`
	// State is the job state at emission time.
	State JobState `json:"state"`
	// Progress carries the live counters for "progress" events.
	Progress *ProgressSample `json:"progress,omitempty"`
	// Status carries the full job status for "done" events.
	Status *JobStatus `json:"status,omitempty"`
}

// ProgressSample is a point-in-time view of a running job's obs
// registry.
type ProgressSample struct {
	// Slots is the number of simulated slots so far.
	Slots int64 `json:"slots"`
	// Wakeups and Decisions count protocol lifecycle events; Decisions
	// reaching the node count means the run is about to complete.
	Wakeups   int64 `json:"wakeups"`
	Decisions int64 `json:"decisions"`
	// Transmissions, Deliveries and Collisions count channel events.
	Transmissions int64 `json:"transmissions"`
	Deliveries    int64 `json:"deliveries"`
	Collisions    int64 `json:"collisions"`
	// CollisionRate is collisions / (deliveries + collisions).
	CollisionRate float64 `json:"collision_rate"`
	// SlotsPerSec is the simulation throughput.
	SlotsPerSec float64 `json:"slots_per_sec"`
	// PhaseNodes maps protocol phase → current node occupancy.
	PhaseNodes map[string]int64 `json:"phase_nodes,omitempty"`
}

// Health is the GET /healthz body.
type Health struct {
	// Status is "ok" while serving, "draining" during shutdown.
	Status string `json:"status"`
	// Replica is this process's name in the store's lease machinery.
	Replica string `json:"replica"`
	// QueueDepth is the store's queued-job count; QueueCapacity the
	// backlog bound this replica admits against.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Inflight counts jobs currently executing.
	Inflight int `json:"inflight"`
	// JobsDone and JobsFailed count terminal executions since start.
	JobsDone   int `json:"jobs_done"`
	JobsFailed int `json:"jobs_failed"`
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// SlotsPerSec is the mean process-wide simulation rate since the
	// first simulated slot.
	SlotsPerSec float64 `json:"slots_per_sec"`
}
