// TDMA: the paper's motivating application. Color a deployment, derive
// the periodic transmission schedule, and measure the MAC-layer
// properties the introduction promises: no direct interference, at most
// κ₁ hidden-terminal interferers per receiver, and density-proportional
// local frame lengths (Theorem 4's locality dividend).
//
//	go run ./examples/tdma
package main

import (
	"fmt"
	"log"
	"math/rand"

	"radiocolor"
)

func main() {
	// A heterogeneous field: a dense cluster of 40 sensors around a
	// point of interest plus 40 sparse relays.
	r := rand.New(rand.NewSource(11))
	var points [][2]float64
	for i := 0; i < 40; i++ {
		points = append(points, [2]float64{
			6 + r.NormFloat64()*0.7,
			6 + r.NormFloat64()*0.7,
		})
	}
	for i := 0; i < 40; i++ {
		points = append(points, [2]float64{r.Float64() * 12, r.Float64() * 12})
	}

	out, err := radiocolor.ColorUnitDisk(points, 1.4, radiocolor.Options{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	if !out.OK() {
		log.Fatalf("coloring failed: proper=%v complete=%v", out.Proper, out.Complete)
	}
	schedule, err := out.TDMA()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("TDMA schedule over %d nodes\n", len(schedule.Slots))
	fmt.Printf("global frame length : %d slots\n", schedule.FrameLen)
	fmt.Printf("direct conflicts    : %d (a proper coloring guarantees 0)\n", schedule.DirectConflicts)
	fmt.Printf("hidden interferers  : ≤ %d per receiver (bound: κ₁ = %d)\n",
		schedule.MaxInterferers, out.Kappa1)
	fmt.Printf("frame success rate  : %.1f%% clean receptions\n", schedule.SuccessRate*100)

	// Locality: dense-core nodes need long local frames, fringe nodes
	// short ones — bandwidth follows local density.
	var coreSum, fringeSum int
	for v, l := range schedule.LocalFrameLens {
		if v < 40 {
			coreSum += l
		} else {
			fringeSum += l
		}
	}
	fmt.Printf("mean local frame    : dense core %.1f slots vs sparse fringe %.1f slots\n",
		float64(coreSum)/40, float64(fringeSum)/40)
	fmt.Println("fringe nodes transmit more often: colors follow local density (Theorem 4)")
}
