package radio

import "radiocolor/internal/obs"

// This file is the bridge between the engines' Observer seam and the
// observability subsystem (internal/obs). The old in-package ring
// tracer (trace.go) was superseded by obs.Tracer, which adds the JSONL
// sink and the per-phase attribution cmd/tracestat replays.

// collectorObserver feeds a Collector's Tracer and Timeline from the
// Observer seam. The Collector's Metrics registry is deliberately NOT
// fed here: the engines increment Config.Metrics directly (atomic adds
// with no interface indirection), so a caller enabling everything sets
// both Config.Metrics = c.Metrics and Config.Observer =
// CollectorObserver(c).
type collectorObserver struct {
	tr *obs.Tracer
	tl *obs.Timeline
}

// CollectorObserver adapts c's Tracer and Timeline into an Observer.
// Returns nil (the disabled observer) when c has neither, so callers
// can pass the result straight into Config.Observer.
func CollectorObserver(c *obs.Collector) Observer {
	if c == nil || (c.Tracer == nil && c.Timeline == nil) {
		return nil
	}
	return &collectorObserver{tr: c.Tracer, tl: c.Timeline}
}

// OnSlot implements Observer.
func (o *collectorObserver) OnSlot(slot int64) {
	if o.tl != nil {
		o.tl.OnSlot(slot)
	}
}

// OnWake implements Observer.
func (o *collectorObserver) OnWake(slot int64, node NodeID) {
	if o.tr != nil {
		o.tr.Record(obs.Event{Slot: slot, Kind: obs.KindWake, Node: int32(node), From: -1})
	}
}

// OnTransmit implements Observer.
func (o *collectorObserver) OnTransmit(slot int64, from NodeID, msg Message) {
	if o.tr != nil {
		o.tr.Record(obs.Event{Slot: slot, Kind: obs.KindTransmit, Node: int32(from), From: -1})
	}
	if o.tl != nil {
		o.tl.OnTransmit(slot, int32(from))
	}
}

// OnDeliver implements Observer.
func (o *collectorObserver) OnDeliver(slot int64, to NodeID, msg Message) {
	if o.tr != nil {
		o.tr.Record(obs.Event{Slot: slot, Kind: obs.KindDeliver, Node: int32(to), From: int32(msg.Sender())})
	}
	if o.tl != nil {
		o.tl.OnDeliver(slot, int32(to))
	}
}

// OnCollision implements Observer.
func (o *collectorObserver) OnCollision(slot int64, at NodeID, transmitters int) {
	if o.tr != nil {
		o.tr.Record(obs.Event{Slot: slot, Kind: obs.KindCollision, Node: int32(at), From: -1, Count: int32(transmitters)})
	}
	if o.tl != nil {
		o.tl.OnCollision(slot, int32(at))
	}
}

// OnDecide implements Observer.
func (o *collectorObserver) OnDecide(slot int64, node NodeID) {
	if o.tr != nil {
		o.tr.Record(obs.Event{Slot: slot, Kind: obs.KindDecide, Node: int32(node), From: -1})
	}
	if o.tl != nil {
		o.tl.OnDecide(slot, int32(node))
	}
}

// multiObserver fans events out to several observers in order.
type multiObserver []Observer

// Observers composes observers into one, dropping nils. Returns nil
// when none remain (keeping Config.Observer on the disabled fast path)
// and the observer itself when exactly one remains (no fan-out cost).
func Observers(list ...Observer) Observer {
	var active multiObserver
	for _, o := range list {
		if o != nil {
			active = append(active, o)
		}
	}
	switch len(active) {
	case 0:
		return nil
	case 1:
		return active[0]
	}
	return active
}

// OnSlot implements Observer.
func (m multiObserver) OnSlot(slot int64) {
	for _, o := range m {
		o.OnSlot(slot)
	}
}

// OnWake implements Observer.
func (m multiObserver) OnWake(slot int64, node NodeID) {
	for _, o := range m {
		o.OnWake(slot, node)
	}
}

// OnTransmit implements Observer.
func (m multiObserver) OnTransmit(slot int64, from NodeID, msg Message) {
	for _, o := range m {
		o.OnTransmit(slot, from, msg)
	}
}

// OnDeliver implements Observer.
func (m multiObserver) OnDeliver(slot int64, to NodeID, msg Message) {
	for _, o := range m {
		o.OnDeliver(slot, to, msg)
	}
}

// OnCollision implements Observer.
func (m multiObserver) OnCollision(slot int64, at NodeID, transmitters int) {
	for _, o := range m {
		o.OnCollision(slot, at, transmitters)
	}
}

// OnDecide implements Observer.
func (m multiObserver) OnDecide(slot int64, node NodeID) {
	for _, o := range m {
		o.OnDecide(slot, node)
	}
}
