package obs

import "sync/atomic"

// Control is the control-plane metrics registry: where Metrics counts
// what happens *inside* a simulation, Control counts what happens
// *around* them — the durable job store, the lease state machine that
// arbitrates work between colord replicas, and sweep fan-out. Like
// Metrics, every method costs one uncontended atomic add, all methods
// are safe for concurrent use, and a nil *Control disables the whole
// registry (the store backends check once per operation).
type Control struct {
	storeCreates  atomic.Int64
	storeFinishes atomic.Int64
	storeCancels  atomic.Int64
	storePrunes   atomic.Int64
	claims        atomic.Int64
	reclaims      atomic.Int64
	heartbeats    atomic.Int64
	leaseLost     atomic.Int64
	releases      atomic.Int64
	compactions   atomic.Int64
	tornTails     atomic.Int64
	sweeps        atomic.Int64
	sweepCells    atomic.Int64
	sweepsDone    atomic.Int64
}

// NewControl returns an empty registry.
func NewControl() *Control { return &Control{} }

// AddStoreCreate counts one job persisted into the store.
func (c *Control) AddStoreCreate() {
	if c != nil {
		c.storeCreates.Add(1)
	}
}

// AddStoreFinish counts one job transitioned to a terminal state.
func (c *Control) AddStoreFinish() {
	if c != nil {
		c.storeFinishes.Add(1)
	}
}

// AddStoreCancel counts one cancellation request recorded in the store.
func (c *Control) AddStoreCancel() {
	if c != nil {
		c.storeCancels.Add(1)
	}
}

// AddStorePrunes counts n terminal jobs dropped by retention pruning.
func (c *Control) AddStorePrunes(n int64) {
	if c != nil {
		c.storePrunes.Add(n)
	}
}

// AddClaim counts one successful work claim (a queued job leased to a
// replica).
func (c *Control) AddClaim() {
	if c != nil {
		c.claims.Add(1)
	}
}

// AddReclaim counts a claim that took over an expired lease — the
// signature of a crashed or wedged replica (a subset of claims).
func (c *Control) AddReclaim() {
	if c != nil {
		c.reclaims.Add(1)
	}
}

// AddHeartbeat counts one successful lease extension.
func (c *Control) AddHeartbeat() {
	if c != nil {
		c.heartbeats.Add(1)
	}
}

// AddLeaseLost counts one operation rejected because the caller no
// longer owned the job's lease (its work was reassigned).
func (c *Control) AddLeaseLost() {
	if c != nil {
		c.leaseLost.Add(1)
	}
}

// AddRelease counts one running job voluntarily returned to the queue
// (graceful drain of a durable store).
func (c *Control) AddRelease() {
	if c != nil {
		c.releases.Add(1)
	}
}

// AddCompaction counts one log-to-snapshot compaction of a file store.
func (c *Control) AddCompaction() {
	if c != nil {
		c.compactions.Add(1)
	}
}

// AddTornTail counts a truncated trailing log record repaired during
// replay (the signature of a crash mid-append).
func (c *Control) AddTornTail() {
	if c != nil {
		c.tornTails.Add(1)
	}
}

// AddSweep counts one sweep submission.
func (c *Control) AddSweep() {
	if c != nil {
		c.sweeps.Add(1)
	}
}

// AddSweepCells counts n sweep cells fanned out as child jobs.
func (c *Control) AddSweepCells(n int64) {
	if c != nil {
		c.sweepCells.Add(n)
	}
}

// AddSweepDone counts one sweep whose aggregate result was finalized.
func (c *Control) AddSweepDone() {
	if c != nil {
		c.sweepsDone.Add(1)
	}
}

// ControlSnapshot is a point-in-time view of a Control registry.
type ControlSnapshot struct {
	// StoreCreates, StoreFinishes, StoreCancels and StorePrunes count
	// store lifecycle operations.
	StoreCreates, StoreFinishes, StoreCancels, StorePrunes int64
	// Claims, Reclaims, Heartbeats, LeaseLost and Releases count the
	// lease state machine; Reclaims ⊆ Claims are expired-lease
	// takeovers.
	Claims, Reclaims, Heartbeats, LeaseLost, Releases int64
	// Compactions and TornTails count file-backend maintenance events.
	Compactions, TornTails int64
	// Sweeps, SweepCells and SweepsDone count sweep fan-out.
	Sweeps, SweepCells, SweepsDone int64
}

// Snapshot reads the registry. A nil registry reads as all zeros.
func (c *Control) Snapshot() ControlSnapshot {
	if c == nil {
		return ControlSnapshot{}
	}
	return ControlSnapshot{
		StoreCreates:  c.storeCreates.Load(),
		StoreFinishes: c.storeFinishes.Load(),
		StoreCancels:  c.storeCancels.Load(),
		StorePrunes:   c.storePrunes.Load(),
		Claims:        c.claims.Load(),
		Reclaims:      c.reclaims.Load(),
		Heartbeats:    c.heartbeats.Load(),
		LeaseLost:     c.leaseLost.Load(),
		Releases:      c.releases.Load(),
		Compactions:   c.compactions.Load(),
		TornTails:     c.tornTails.Load(),
		Sweeps:        c.sweeps.Load(),
		SweepCells:    c.sweepCells.Load(),
		SweepsDone:    c.sweepsDone.Load(),
	}
}

// Export calls fn once per counter in a fixed, documented order — the
// deterministic hook text encoders build on, mirroring
// Snapshot.Export for the simulation registry. All values are
// monotone counters.
func (s ControlSnapshot) Export(fn func(name string, value int64)) {
	fn("store_creates", s.StoreCreates)
	fn("store_finishes", s.StoreFinishes)
	fn("store_cancels", s.StoreCancels)
	fn("store_prunes", s.StorePrunes)
	fn("claims", s.Claims)
	fn("lease_reclaims", s.Reclaims)
	fn("heartbeats", s.Heartbeats)
	fn("lease_lost", s.LeaseLost)
	fn("lease_releases", s.Releases)
	fn("store_compactions", s.Compactions)
	fn("store_torn_tails", s.TornTails)
	fn("sweeps", s.Sweeps)
	fn("sweep_cells", s.SweepCells)
	fn("sweeps_done", s.SweepsDone)
}
