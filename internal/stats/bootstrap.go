package stats

import (
	"math/rand"
	"sort"
)

// CI is a two-sided confidence interval for a sample mean.
type CI struct {
	Mean, Low, High float64
	// Confidence is the nominal coverage (e.g. 0.95).
	Confidence float64
}

// BootstrapCI estimates a confidence interval for the mean of xs by the
// percentile bootstrap with iters resamples, using the given seed for
// reproducibility (experiment tables must be regenerable bit-for-bit).
// Small experiment cells (3–6 trials per point) make parametric
// intervals unreliable; the bootstrap at least makes the uncertainty
// visible without distributional assumptions.
func BootstrapCI(xs []float64, confidence float64, iters int, seed int64) CI {
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	if iters < 1 {
		iters = 1000
	}
	out := CI{Mean: Mean(xs), Confidence: confidence}
	if len(xs) == 0 {
		return out
	}
	if len(xs) == 1 {
		out.Low, out.High = xs[0], xs[0]
		return out
	}
	r := rand.New(rand.NewSource(seed))
	means := make([]float64, iters)
	for i := range means {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[r.Intn(len(xs))]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - confidence) / 2
	out.Low = Quantile(means, alpha)
	out.High = Quantile(means, 1-alpha)
	return out
}
