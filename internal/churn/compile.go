package churn

import (
	"fmt"
	"sort"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
)

// Env is the concrete network a schedule compiles against.
type Env struct {
	// G is the base communication graph (required). For non-geometric
	// runs it is also the adjacency oracle: a joining node connects to
	// the present subset of its static neighbors.
	G *graph.Graph
	// Points holds node positions and Radius the unit-disk connection
	// radius. Both are required when the schedule has waypoints (and
	// then joins/leaves also re-derive neighborhoods geometrically, so
	// a node that moved keeps a consistent edge set when it rejoins).
	Points []geom.Point
	// Radius is the unit-disk connection radius (> 0 with Points).
	Radius float64
}

// Leave is one compiled departure. Final marks a leave with no later
// join: the node is gone for the rest of the run, so — exactly like a
// final crash — an undecided final leaver stops blocking termination.
type Leave struct {
	Node  int32
	Final bool
}

// Batch is the compiled topology change at one slot: presence flips
// plus the CSR edge delta they (and any mobility re-evaluation) imply.
// The engine applies batches single-threaded at slot start, which
// keeps churned runs bit-identical at any worker or tile count.
type Batch struct {
	// Slot is when the batch takes effect (at the start of the slot,
	// before fault events and wake-ups).
	Slot int64
	// Joins and Leaves are the presence flips, each sorted by node id.
	Joins  []int32
	Leaves []Leave
	// Delta is the edge change: departures' incident edges removed,
	// arrivals' edges to present nodes added, and movers' unit-disk
	// neighborhoods re-derived. Edges are unique and normalized
	// (min endpoint first).
	Delta graph.Delta
}

// Plan is a compiled, immutable schedule. Apart from the engine's
// cursor over Batches, everything is precomputed.
type Plan struct {
	n int
	// InitialAbsent lists nodes absent at slot 0 (their first event is
	// a join); their incident base-graph edges are in InitialDelta's
	// removals. The engine applies both before the first slot.
	InitialAbsent []int32
	InitialDelta  graph.Delta
	// Batches is the slot-ordered change list.
	Batches []Batch
	// Repair is the conflict-repair mode.
	Repair RepairMode
	// Joins and Leaves are the total event counts (for reporting).
	Joins, Leaves int
}

// N returns the network size the plan was compiled for.
func (p *Plan) N() int { return p.n }

// MaxSlot returns the last slot at which the plan changes anything, or
// -1 for an empty plan. The engine keeps running through this slot
// even if every node has decided, so scheduled perturbations are never
// skipped by early termination.
func (p *Plan) MaxSlot() int64 {
	if len(p.Batches) == 0 {
		return -1
	}
	return p.Batches[len(p.Batches)-1].Slot
}

// FinalGraph replays the plan's full delta history over the base graph
// and returns the topology the run ends with. Verification oracles
// judge a churned run's coloring against this graph, not the base one:
// mobility and permanent departures mean the two can differ in both
// directions.
func (p *Plan) FinalGraph(base *graph.Graph) *graph.Graph {
	dyn := graph.NewDyn(base)
	dyn.Apply(p.InitialDelta, nil)
	for i := range p.Batches {
		dyn.Apply(p.Batches[i].Delta, nil)
	}
	return dyn.Graph()
}

// defaultEvery is the mobility evaluation cadence when Schedule.Every
// is unset.
const defaultEvery = 16

// Compile flattens the schedule into a Plan against the given
// environment. The compiler simulates presence and positions over the
// event timeline, maintaining the live edge set in a graph.Dyn, so
// batch deltas are exact (a leave removes precisely the edges the
// node currently has, including mobility-derived ones).
func (s *Schedule) Compile(env Env) (*Plan, error) {
	if env.G == nil {
		return nil, fmt.Errorf("churn: Compile needs a graph")
	}
	n := env.G.N()
	if err := s.Validate(n); err != nil {
		return nil, err
	}
	if !s.Active() {
		return nil, nil
	}
	geometric := env.Points != nil
	if geometric {
		if len(env.Points) != n {
			return nil, fmt.Errorf("churn: %d points for %d nodes", len(env.Points), n)
		}
		if env.Radius <= 0 {
			return nil, fmt.Errorf("churn: non-positive radius %g", env.Radius)
		}
	}
	if len(s.Waypoints) > 0 && !geometric {
		return nil, fmt.Errorf("churn: waypoint mobility needs node positions and a radius (use a geometric entry point)")
	}
	every := s.Every
	if every <= 0 {
		every = defaultEvery
	}

	c := &compiler{
		env:       env,
		n:         n,
		present:   make([]bool, n),
		dyn:       graph.NewDyn(env.G),
		geometric: geometric,
	}
	for v := range c.present {
		c.present[v] = true
	}
	if geometric {
		c.pos = append([]geom.Point(nil), env.Points...)
	}
	c.buildTracks(s.Waypoints)

	plan := &Plan{n: n, Repair: s.Repair, Joins: len(s.Joins), Leaves: len(s.Leaves)}

	// Initial absence: nodes whose first event is a join never held
	// their edges; remove them before slot 0.
	lastLeave := map[int]int64{} // node -> slot of last leave (for Final flags)
	firstEvent := map[int]struct {
		at   int64
		join bool
	}{}
	note := func(node int, at int64, join bool) {
		f, ok := firstEvent[node]
		if !ok || at < f.at {
			firstEvent[node] = struct {
				at   int64
				join bool
			}{at, join}
		}
	}
	for _, e := range s.Joins {
		note(e.Node, e.At, true)
	}
	for _, e := range s.Leaves {
		note(e.Node, e.At, false)
		if e.At > lastLeave[e.Node] {
			lastLeave[e.Node] = e.At
		}
	}
	lastJoin := map[int]int64{}
	for _, e := range s.Joins {
		if e.At > lastJoin[e.Node] {
			lastJoin[e.Node] = e.At
		}
	}
	var initDelta graph.Delta
	for v, f := range firstEvent {
		if f.join {
			c.present[v] = false
			plan.InitialAbsent = append(plan.InitialAbsent, int32(v))
			for _, u := range append([]int32(nil), c.dyn.Row(int32(v))...) {
				initDelta.Dels = append(initDelta.Dels, normEdge(int32(v), u))
			}
		}
	}
	sortInt32(plan.InitialAbsent)
	sortEdges(initDelta.Dels)
	c.dyn.Apply(initDelta, nil)
	plan.InitialDelta = initDelta

	// Timeline: the union of event slots and mobility evaluation ticks.
	slots := map[int64]bool{}
	for _, e := range s.Joins {
		slots[e.At] = true
	}
	for _, e := range s.Leaves {
		slots[e.At] = true
	}
	if len(c.tracks) > 0 {
		var lastAt int64
		for _, w := range s.Waypoints {
			if w.At > lastAt {
				lastAt = w.At
			}
		}
		for t := every; t <= lastAt; t += every {
			slots[t] = true
		}
		// One final tick at the last arrival so end positions are exact.
		slots[lastAt] = true
	}
	timeline := make([]int64, 0, len(slots))
	for t := range slots {
		timeline = append(timeline, t)
	}
	sort.Slice(timeline, func(a, b int) bool { return timeline[a] < timeline[b] })

	joinsAt := map[int64][]int32{}
	leavesAt := map[int64][]int32{}
	for _, e := range s.Joins {
		joinsAt[e.At] = append(joinsAt[e.At], int32(e.Node))
	}
	for _, e := range s.Leaves {
		leavesAt[e.At] = append(leavesAt[e.At], int32(e.Node))
	}

	for _, t := range timeline {
		b := Batch{Slot: t}
		seen := map[[2]int32]bool{}
		addEdge := func(e [2]int32, add bool) {
			if seen[e] {
				return
			}
			seen[e] = true
			if add {
				b.Delta.Adds = append(b.Delta.Adds, e)
			} else {
				b.Delta.Dels = append(b.Delta.Dels, e)
			}
		}

		// Leaves first: a simultaneous leave+join at one slot is
		// rejected by Validate, but a leaver's edges must not survive
		// into a joiner's neighborhood computation.
		lv := leavesAt[t]
		sortInt32(lv)
		for _, v := range lv {
			c.present[v] = false
			final := lastLeave[int(v)] == t && lastJoin[int(v)] < t
			b.Leaves = append(b.Leaves, Leave{Node: v, Final: final})
			for _, u := range c.dyn.Row(v) {
				addEdge(normEdge(v, u), false)
			}
		}

		// Mobility: advance positions, then re-derive each active
		// mover's neighborhood among present nodes.
		movers := c.advance(t)

		// Joins: connect to the present subset (geometric rule at
		// current positions, or the static row otherwise).
		jn := joinsAt[t]
		sortInt32(jn)
		for _, v := range jn {
			c.present[v] = true
			if c.geometric {
				for _, u := range c.inRange(v) {
					addEdge(normEdge(v, u), true)
				}
			} else {
				for _, u := range env.G.Adj(int(v)) {
					if c.present[u] {
						addEdge(normEdge(v, u), true)
					}
				}
			}
		}

		for _, v := range movers {
			if !c.present[v] {
				continue // an absent mover reconnects when it rejoins
			}
			want := c.inRange(v)
			have := c.dyn.Row(v)
			// Merge-diff two sorted lists.
			i, j := 0, 0
			for i < len(want) || j < len(have) {
				switch {
				case j >= len(have) || (i < len(want) && want[i] < have[j]):
					addEdge(normEdge(v, want[i]), true)
					i++
				case i >= len(want) || want[i] > have[j]:
					addEdge(normEdge(v, have[j]), false)
					j++
				default:
					i++
					j++
				}
			}
		}

		if len(jn) == 0 && len(lv) == 0 && b.Delta.Empty() {
			continue // a mobility tick that moved nobody's edges
		}
		b.Joins = jn
		sortEdges(b.Delta.Adds)
		sortEdges(b.Delta.Dels)
		c.dyn.Apply(b.Delta, nil)
		plan.Batches = append(plan.Batches, b)
	}
	if len(plan.Batches) == 0 && len(plan.InitialAbsent) == 0 {
		return nil, nil
	}
	return plan, nil
}

// compiler is Compile's working state.
type compiler struct {
	env       Env
	n         int
	present   []bool
	dyn       *graph.Dyn
	geometric bool
	pos       []geom.Point
	tracks    map[int32][]Waypoint // per-node waypoints, slot-ordered
	trackIDs  []int32              // sorted track keys (deterministic iteration)
}

func (c *compiler) buildTracks(ws []Waypoint) {
	c.tracks = map[int32][]Waypoint{}
	for _, w := range ws {
		v := int32(w.Node)
		c.tracks[v] = append(c.tracks[v], w)
	}
	for v, track := range c.tracks {
		sort.Slice(track, func(a, b int) bool { return track[a].At < track[b].At })
		c.tracks[v] = track
		c.trackIDs = append(c.trackIDs, v)
	}
	sortInt32(c.trackIDs)
}

// advance moves every tracked node to its position at slot t and
// returns the sorted ids of nodes whose position changed since the
// previous evaluation.
func (c *compiler) advance(t int64) []int32 {
	var movers []int32
	for _, v := range c.trackIDs {
		p := c.positionAt(v, t)
		if p != c.pos[v] {
			c.pos[v] = p
			movers = append(movers, v)
		}
	}
	return movers
}

// positionAt interpolates node v's position at slot t along its track.
func (c *compiler) positionAt(v int32, t int64) geom.Point {
	track := c.tracks[v]
	prev := c.env.Points[v]
	prevAt := int64(0)
	for _, w := range track {
		target := geom.Point{X: w.X, Y: w.Y}
		if t >= w.At {
			prev, prevAt = target, w.At
			continue
		}
		if w.At == prevAt {
			return target
		}
		frac := float64(t-prevAt) / float64(w.At-prevAt)
		return geom.Point{
			X: prev.X + (target.X-prev.X)*frac,
			Y: prev.Y + (target.Y-prev.Y)*frac,
		}
	}
	return prev
}

// inRange returns the sorted present nodes within the unit-disk radius
// of v at current positions, excluding v itself. O(n) per call; the
// compiler runs offline, before the slot loop.
func (c *compiler) inRange(v int32) []int32 {
	var out []int32
	r2 := c.env.Radius * c.env.Radius
	pv := c.pos[v]
	for u := 0; u < c.n; u++ {
		if int32(u) == v || !c.present[u] {
			continue
		}
		if pv.Dist2(c.pos[u]) <= r2 {
			out = append(out, int32(u))
		}
	}
	return out
}

// normEdge normalizes an undirected edge to (min, max).
func normEdge(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

func sortInt32(ids []int32) {
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
}

func sortEdges(es [][2]int32) {
	sort.Slice(es, func(a, b int) bool {
		if es[a][0] != es[b][0] {
			return es[a][0] < es[b][0]
		}
		return es[a][1] < es[b][1]
	})
}
