package radiocolor

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"radiocolor/internal/obs"
)

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opt  Options
		want string // substring of the error, "" for valid
	}{
		{"zero value", Options{}, ""},
		{"typed wakeup", Options{Wakeup: WakeupAdversarial}, ""},
		{"shim wakeup", Options{WakeupName: "bursty"}, ""},
		{"bad shim", Options{WakeupName: "bogus"}, "unknown wakeup"},
		{"bad typed", Options{Wakeup: Wakeup(99)}, "invalid wakeup"},
		{"negative scale", Options{ParamScale: -1}, "ParamScale"},
		{"negative slots", Options{MaxSlots: -5}, "MaxSlots"},
		{"negative workers", Options{Workers: -2}, "Workers"},
		{"trace no dest", Options{Trace: &TraceConfig{}}, "needs Path or W"},
		{"trace two dests", Options{Trace: &TraceConfig{Path: "x", W: os.Stderr}}, "both Path and W"},
		{"trace bad cap", Options{Trace: &TraceConfig{W: os.Stderr, Cap: -1}}, "Cap"},
		{"trace bad kind", Options{Trace: &TraceConfig{W: os.Stderr, Kinds: []string{"nope"}}}, "nope"},
		{"trace good kinds", Options{Trace: &TraceConfig{W: os.Stderr, Kinds: []string{"tx", "phase"}}}, ""},
		{"measured good", Options{Measured: &Measured{Delta: 4, Kappa1: 1, Kappa2: 2}}, ""},
		{"measured isolated nodes", Options{Measured: &Measured{Delta: 0, Kappa1: 1, Kappa2: 1}}, ""},
		{"measured negative delta", Options{Measured: &Measured{Delta: -1, Kappa1: 1, Kappa2: 1}}, "Delta"},
		{"measured zero kappa", Options{Measured: &Measured{Delta: 3}}, "κ"},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error = %v, want substring %q", c.name, err, c.want)
		}
	}
}

// TestValidationBeforeWork checks misconfigured options fail fast from
// the entry points (before graph measurement or simulation).
func TestValidationBeforeWork(t *testing.T) {
	_, err := ColorGraph([][]int{{1}, {0}}, Options{Workers: -1})
	if err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("ColorGraph did not validate: %v", err)
	}
	_, err = ColorUnitDisk([][2]float64{{0, 0}}, 1, Options{ParamScale: -3})
	if err == nil || !strings.Contains(err.Error(), "ParamScale") {
		t.Errorf("ColorUnitDisk did not validate: %v", err)
	}
}

func TestWakeupStrings(t *testing.T) {
	for w := WakeupSynchronous; w < numWakeups; w++ {
		name := w.String()
		back, err := ParseWakeup(name)
		if err != nil || back != w {
			t.Errorf("round trip %v: %v, %v", w, back, err)
		}
	}
	if Wakeup(200).String() == "" {
		t.Error("out-of-range wakeup must still print")
	}
	if _, err := ParseWakeup("wakeup(3)"); err == nil {
		t.Error("String form of invalid values must not parse")
	}
	// ParseWakeup is exact-match: case and whitespace variants fail.
	for _, bad := range []string{"", "Uniform", " uniform", "uniform "} {
		if _, err := ParseWakeup(bad); err == nil {
			t.Errorf("ParseWakeup(%q) accepted", bad)
		}
	}
}

// TestWakeupShimPrecedence pins the resolution order of the deprecated
// WakeupName shim against the typed Wakeup field.
func TestWakeupShimPrecedence(t *testing.T) {
	// A non-empty name overrides the typed constant...
	w, err := Options{Wakeup: WakeupUniform, WakeupName: "adversarial"}.wakeup()
	if err != nil || w != WakeupAdversarial {
		t.Errorf("shim should win: got %v, %v", w, err)
	}
	// ...even an invalid typed constant, which the shim shadows entirely.
	w, err = Options{Wakeup: Wakeup(99), WakeupName: "uniform"}.wakeup()
	if err != nil || w != WakeupUniform {
		t.Errorf("shim should shadow invalid typed value: got %v, %v", w, err)
	}
	// An invalid name is an error even when the typed constant is fine.
	if _, err := (Options{Wakeup: WakeupBursty, WakeupName: "bogus"}).wakeup(); err == nil {
		t.Error("invalid shim name must not fall back to the typed value")
	}
	// An empty name defers to the typed constant.
	w, err = Options{Wakeup: WakeupSequential}.wakeup()
	if err != nil || w != WakeupSequential {
		t.Errorf("typed value ignored: got %v, %v", w, err)
	}
	if _, err := (Options{Wakeup: Wakeup(99)}).wakeup(); err == nil {
		t.Error("invalid typed value must error when no shim is set")
	}
}

func TestColorGraphContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A clique this size needs thousands of slots, so the canceled
	// context is seen at the first periodic check.
	adj := make([][]int, 16)
	for v := range adj {
		for u := range adj {
			if u != v {
				adj[v] = append(adj[v], u)
			}
		}
	}
	out, err := ColorGraphContext(ctx, adj, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("canceled run returned an outcome")
	}
}

func TestColorGraphContextComplete(t *testing.T) {
	// An un-canceled context must not change the result: same seed,
	// same colors as the plain entry point.
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	plain, err := ColorGraph(adj, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := ColorGraphContext(context.Background(), adj, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Colors {
		if plain.Colors[i] != withCtx.Colors[i] {
			t.Fatalf("colors diverge: %v vs %v", plain.Colors, withCtx.Colors)
		}
	}
}

// countObserver tallies events through the public Observer seam.
type countObserver struct {
	NopObserver
	decides atomic.Int64
	tx      atomic.Int64
}

func (c *countObserver) OnDecide(int64, int)   { c.decides.Add(1) }
func (c *countObserver) OnTransmit(int64, int) { c.tx.Add(1) }

func TestPublicObserver(t *testing.T) {
	var c countObserver
	out, err := ColorGraph([][]int{{1, 2}, {0, 2}, {0, 1}, {4}, {3}}, Options{Observer: &c})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Complete {
		t.Fatal("incomplete run")
	}
	if got := c.decides.Load(); got != 5 {
		t.Errorf("observer saw %d decisions, want 5", got)
	}
	if c.tx.Load() == 0 {
		t.Error("observer saw no transmissions")
	}
}

// TestTraceMatchesStats is the acceptance contract of the observability
// subsystem: the offline replay of a JSONL trace (cmd/tracestat's
// obs.Summarize) reproduces the per-phase delivery/collision counts of
// the online Outcome.Stats exactly.
func TestTraceMatchesStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	adj := make([][]int, 14)
	for v := range adj {
		for u := range adj {
			if u != v {
				adj[v] = append(adj[v], u)
			}
		}
	}
	out, err := ColorGraph(adj, Options{
		Seed:    3,
		Metrics: true,
		Trace:   &TraceConfig{Path: path},
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats == nil {
		t.Fatal("Metrics: true produced no Stats")
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sum, err := obs.Summarize(f)
	if err != nil {
		t.Fatal(err)
	}

	if got := sum.ByKind["tx"]; got != out.Stats.Transmissions {
		t.Errorf("trace tx = %d, stats %d", got, out.Stats.Transmissions)
	}
	if got := sum.ByKind["rx"]; got != out.Stats.Deliveries {
		t.Errorf("trace rx = %d, stats %d", got, out.Stats.Deliveries)
	}
	if got := sum.ByKind["coll"]; got != out.Stats.Collisions {
		t.Errorf("trace coll = %d, stats %d", got, out.Stats.Collisions)
	}
	if sum.Decisions != out.Stats.Decisions {
		t.Errorf("trace decisions = %d, stats %d", sum.Decisions, out.Stats.Decisions)
	}
	if got, want := sum.CollisionRate(), out.Stats.CollisionRate; got != want {
		t.Errorf("trace collision rate = %v, stats %v", got, want)
	}
	for p, tot := range sum.Phases {
		ps := out.Stats.Phases[p]
		if tot.Transmissions != ps.Transmissions || tot.Deliveries != ps.Deliveries ||
			tot.Collisions != ps.Collisions || tot.Entries != ps.Entries {
			t.Errorf("phase %s: trace {tx %d rx %d coll %d entries %d} != stats {tx %d rx %d coll %d entries %d}",
				ps.Name, tot.Transmissions, tot.Deliveries, tot.Collisions, tot.Entries,
				ps.Transmissions, ps.Deliveries, ps.Collisions, ps.Entries)
		}
	}

	// The stats themselves must be internally consistent with the run.
	if out.Stats.Slots != out.Slots {
		t.Errorf("stats slots = %d, outcome %d", out.Stats.Slots, out.Slots)
	}
	if out.Stats.Decisions != int64(len(adj)) {
		t.Errorf("stats decisions = %d, want %d", out.Stats.Decisions, len(adj))
	}
	var nodeSlots int64
	for _, p := range out.Stats.Phases {
		nodeSlots += p.NodeSlots
	}
	if want := out.Stats.Slots * int64(len(adj)); nodeSlots != want {
		t.Errorf("phase node-slots sum to %d, want slots×n = %d", nodeSlots, want)
	}
}

// TestStatsWithoutTrace checks Metrics works standalone.
func TestStatsWithoutTrace(t *testing.T) {
	out, err := ColorGraph([][]int{{1}, {0, 2}, {1}}, Options{Metrics: true})
	if err != nil {
		t.Fatal(err)
	}
	s := out.Stats
	if s == nil {
		t.Fatal("no stats")
	}
	if s.Wakeups != 3 || s.Decisions != 3 {
		t.Errorf("wakeups=%d decisions=%d, want 3", s.Wakeups, s.Decisions)
	}
	if s.CollisionRate < 0 || s.CollisionRate > 1 {
		t.Errorf("collision rate %v out of range", s.CollisionRate)
	}
	if s.SlotsPerSec <= 0 {
		t.Errorf("slots/sec %v not positive", s.SlotsPerSec)
	}
	if len(s.Buckets) == 0 {
		t.Error("no timeline buckets")
	}
}

// TestStatsDisabledByDefault pins the default-off contract.
func TestStatsDisabledByDefault(t *testing.T) {
	out, err := ColorGraph([][]int{{1}, {0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats != nil {
		t.Error("Stats attached without Options.Metrics")
	}
}
