package experiment

import (
	"fmt"

	"radiocolor/internal/adversary"
	"radiocolor/internal/collect"
	"radiocolor/internal/core"
	"radiocolor/internal/estimate"
	"radiocolor/internal/radio"
	"radiocolor/internal/reduce"
	"radiocolor/internal/sched"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// The extension experiments E13–E16 go beyond the paper's evaluation and
// implement the directions its text points to: distance-2 coloring for
// fully collision-free TDMA (introduction), local degree estimation
// instead of a global Δ (Sect. 6 future work), random identifiers
// (Sect. 2), and robustness to message loss beyond the model.

// E13Distance2 quantifies the 1-hop vs 2-hop coloring trade-off the
// introduction discusses: a correct 1-hop coloring eliminates direct
// interference but leaves ≤ κ₁ hidden-terminal interferers per receiver,
// while a distance-2 coloring (the algorithm run over G², i.e. with
// doubled transmission power during initialization) eliminates all
// collisions at the price of more colors and a longer run.
func E13Distance2(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E13: 1-hop vs distance-2 coloring (introduction's TDMA discussion)",
		"variant", "correct", "mean #colors", "mean maxT", "TDMA direct conflicts", "TDMA hidden collisions", "frame success")
	n := o.scale(110, 40)
	type acc struct {
		correct                    int
		colors, ts                 []float64
		direct, hidden, frameTotal int
		success                    []float64
	}
	accs := map[string]*acc{"1-hop": {}, "distance-2": {}}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o.Seed, 1000, trial)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.1, Seed: seed})
		for _, variant := range []string{"1-hop", "distance-2"} {
			commGraph := d.G
			if variant == "distance-2" {
				commGraph = d.G.Square()
			}
			dd := &topology.Deployment{Name: d.Name + "/" + variant, G: commGraph}
			par := MeasureParams(dd)
			run, err := RunCore(dd, par, radio.WakeSynchronous(dd.N()), seed, defaultBudget(par), core0)
			if err != nil {
				panic(err)
			}
			a := accs[variant]
			// Validity is judged on the graph the protocol ran over; the
			// TDMA schedule is evaluated on the PHYSICAL graph d.G.
			if run.Correct() {
				a.correct++
				a.colors = append(a.colors, float64(run.Report.NumColors))
				a.ts = append(a.ts, float64(run.Radio.MaxLatency()))
				s, err := sched.FromColoring(run.Colors)
				if err != nil {
					panic(err)
				}
				a.direct += len(s.DirectConflicts(d.G))
				frame := s.SimulateFrame(d.G)
				a.hidden += frame.Collisions
				a.frameTotal++
				a.success = append(a.success, frame.SuccessRate())
			}
		}
	}
	for _, variant := range []string{"1-hop", "distance-2"} {
		a := accs[variant]
		t.AddRow(variant, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.colors), stats.Mean(a.ts), a.direct, a.hidden, stats.Mean(a.success))
	}
	return t
}

// E14AdaptiveDelta implements and evaluates the conclusion's future-work
// direction (Sect. 6): estimate the local maximum degree from channel
// observations instead of assuming a global Δ. Reported against the
// known-Δ baseline on the same deployments.
func E14AdaptiveDelta(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E14: local degree estimation instead of global Δ (Sect. 6 future work)",
		"variant", "correct", "mean maxT", "mean Δ used", "true Δ", "mean est/deg ratio")
	n := o.scale(110, 40)
	type acc struct {
		correct    int
		ts, deltas []float64
		ratio      []float64
		trueDelta  int
	}
	accs := map[string]*acc{"known Δ": {}, "estimated Δ": {}}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o.Seed, 1100, trial)
		d := topology.ClusteredUDG(n/2, n-n/2, 14, 1.1, seed)
		par := MeasureParams(d)

		base := accs["known Δ"]
		base.trueDelta = par.Delta
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if run.Correct() {
			base.correct++
			base.ts = append(base.ts, float64(run.Radio.MaxLatency()))
			base.deltas = append(base.deltas, float64(par.Delta))
			base.ratio = append(base.ratio, 1)
		}

		ad := accs["estimated Δ"]
		ad.trueDelta = par.Delta
		cfg := estimate.DefaultConfig(d.N(), par.Kappa1, par.Kappa2)
		nodes, protos := estimate.AdaptiveNodes(d.N(), seed+1, cfg, core0)
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 4 * defaultBudget(par),
		})
		if err != nil {
			panic(err)
		}
		colors := make([]int32, d.N())
		var deltaSum, ratioSum float64
		for i, v := range nodes {
			colors[i] = v.Color()
			deltaSum += float64(v.DeltaUsed())
			ratioSum += float64(v.DeltaEstimate()) / float64(d.G.Degree(i))
		}
		if res.AllDone && verify.Check(d.G, colors).OK() {
			ad.correct++
			ad.ts = append(ad.ts, float64(res.MaxLatency()))
			ad.deltas = append(ad.deltas, deltaSum/float64(d.N()))
			ad.ratio = append(ad.ratio, ratioSum/float64(d.N()))
		}
	}
	for _, variant := range []string{"known Δ", "estimated Δ"} {
		a := accs[variant]
		t.AddRow(variant, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.ts), stats.Mean(a.deltas), a.trueDelta, stats.Mean(a.ratio))
	}
	return t
}

// E15RandomIDs evaluates the Sect. 2 identifier scheme: nodes draw their
// IDs uniformly from [1..n³] upon waking up. The analytical collision
// bound is P_ambIDs ≤ C(n,2)/n³ ∈ O(1/n); the experiment reports the
// observed collision and correctness rates.
func E15RandomIDs(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E15: random identifiers from [1..n³] (Sect. 2)",
		"n", "trials", "runs with id collisions", "analytical bound", "correct", "mean #colors")
	trials := o.Trials * 2
	for ci, base := range []int{48, 96, 192} {
		n := o.scale(base, 24)
		collided, correct := 0, 0
		var colors []float64
		for trial := 0; trial < trials; trial++ {
			seed := trialSeed(o.Seed, 1200+ci, trial)
			d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.4, Seed: seed})
			par := MeasureParams(d)
			nodes, protos, ids := core.NodesWithRandomIDs(d.N(), seed, par, core0, 0)
			if core.CountIDCollisions(ids) > 0 {
				collided++
			}
			res, err := radio.Run(radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: defaultBudget(par), NEstimate: par.N,
			})
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			if res.AllDone && verify.Check(d.G, cs).OK() {
				correct++
				colors = append(colors, float64(verify.Check(d.G, cs).NumColors))
			}
		}
		bound := float64(n-1) / (2 * float64(n) * float64(n))
		t.AddRow(n, trials, collided, fmt.Sprintf("P ≤ %.2e", bound),
			fmt.Sprintf("%d/%d", correct, trials), stats.Mean(colors))
	}
	return t
}

// E16MessageLoss injects delivery failures beyond the model (each
// successful reception is suppressed independently with probability p)
// and measures how the protocol degrades. Losses are indistinguishable
// from collisions to the nodes, so the counters-and-critical-ranges
// machinery absorbs moderate loss at the price of longer runs.
func E16MessageLoss(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E16: robustness to message loss beyond the model",
		"loss prob", "correct", "complete", "mean maxT", "slowdown vs lossless")
	n := o.scale(110, 40)
	var baseline float64
	for ci, p := range []float64{0, 0.1, 0.2, 0.3, 0.5} {
		correct, complete := 0, 0
		var ts []float64
		for trial := 0; trial < o.Trials; trial++ {
			seed := trialSeed(o.Seed, 1300+ci, trial)
			d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
			par := MeasureParams(d)
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			res, err := radio.Run(radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: 4 * defaultBudget(par), NEstimate: par.N,
				DropProb: p, DropSeed: seed,
			})
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			if res.AllDone {
				complete++
			}
			if res.AllDone && verify.Check(d.G, cs).OK() {
				correct++
				ts = append(ts, float64(res.MaxLatency()))
			}
		}
		mean := stats.Mean(ts)
		if p == 0 {
			baseline = mean
		}
		slowdown := "–"
		if baseline > 0 && mean > 0 {
			slowdown = fmt.Sprintf("%.2f×", mean/baseline)
		}
		t.AddRow(p, fmt.Sprintf("%d/%d", correct, o.Trials),
			fmt.Sprintf("%d/%d", complete, o.Trials), mean, slowdown)
	}
	return t
}

// E17Unaligned tests the Sect. 2 remark that all results carry over to
// non-aligned slot boundaries with a small constant factor: nodes run
// with half-slot clock offsets (transmissions can overlap two slots of a
// neighbor), and the experiment compares correctness and latency with
// the aligned engine on identical deployments.
func E17Unaligned(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E17: non-aligned slot boundaries (Sect. 2 remark; expect small constant slowdown)",
		"engine", "correct", "mean maxT", "slowdown", "mean deliveries/tx")
	n := o.scale(110, 40)
	type acc struct {
		correct  int
		ts, effs []float64
	}
	accs := map[string]*acc{"aligned": {}, "unaligned": {}}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o.Seed, 1400, trial)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		for _, engine := range []string{"aligned", "unaligned"} {
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			cfg := radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: 4 * defaultBudget(par), NEstimate: par.N,
			}
			var res *radio.Result
			var err error
			if engine == "aligned" {
				res, err = radio.Run(cfg)
			} else {
				res, err = radio.RunUnaligned(cfg, nil)
			}
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			a := accs[engine]
			if res.AllDone && verify.Check(d.G, cs).OK() {
				a.correct++
				a.ts = append(a.ts, float64(res.MaxLatency()))
				if res.Transmissions > 0 {
					a.effs = append(a.effs, float64(res.Deliveries)/float64(res.Transmissions))
				}
			}
		}
	}
	base := stats.Mean(accs["aligned"].ts)
	for _, engine := range []string{"aligned", "unaligned"} {
		a := accs[engine]
		slow := "–"
		if base > 0 && stats.Mean(a.ts) > 0 {
			slow = fmt.Sprintf("%.2f×", stats.Mean(a.ts)/base)
		}
		t.AddRow(engine, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.ts), slow, stats.Mean(a.effs))
	}
	return t
}

// E18MISFromScratch measures when the protocol's first stage completes:
// the moment every node has left A₀ (become a leader or associated with
// one), the leaders form a maximal independent set and every non-leader
// has a leader neighbor — the "MIS / clustering from scratch"
// substructure of the companion works [13, 21] the paper builds on. The
// experiment reports how early in the run that structure is available
// and verifies its MIS properties directly.
func E18MISFromScratch(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E18: the MIS substructure (leaders + coverage) emerges early ([13, 21])",
		"n", "correct MIS", "mean MIS-done slot", "mean total slots", "MIS at % of run", "mean leaders")
	for ci, base := range []int{80, 160, 320} {
		n := o.scale(base, 32)
		okMIS := 0
		var misDone, total, leaders []float64
		for trial := 0; trial < o.Trials; trial++ {
			seed := trialSeed(o.Seed, 1500+ci, trial)
			d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.15, Seed: seed})
			par := MeasureParams(d)
			run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
			if err != nil {
				panic(err)
			}
			if !run.Correct() {
				continue
			}
			// When did the last node leave A₀?
			last := int64(0)
			var leaderSet []int32
			for i, v := range run.Nodes {
				if at := v.LeftClassZeroAt(); at > last {
					last = at
				}
				if v.IsLeader() {
					leaderSet = append(leaderSet, int32(i))
				}
			}
			// MIS properties: independence + domination.
			indep := d.G.IsIndependent(leaderSet)
			isLeader := make(map[int32]bool, len(leaderSet))
			for _, l := range leaderSet {
				isLeader[l] = true
			}
			dominated := true
			for v := 0; v < d.N(); v++ {
				if isLeader[int32(v)] {
					continue
				}
				ok := false
				for _, u := range d.G.Adj(v) {
					if isLeader[u] {
						ok = true
						break
					}
				}
				if !ok {
					dominated = false
				}
			}
			if indep && dominated {
				okMIS++
			}
			misDone = append(misDone, float64(last))
			total = append(total, float64(run.Radio.Slots))
			leaders = append(leaders, float64(len(leaderSet)))
		}
		frac := "–"
		if stats.Mean(total) > 0 {
			frac = fmt.Sprintf("%.0f%%", 100*stats.Mean(misDone)/stats.Mean(total))
		}
		t.AddRow(n, fmt.Sprintf("%d/%d", okMIS, o.Trials), stats.Mean(misDone),
			stats.Mean(total), frac, stats.Mean(leaders))
	}
	return t
}

// E19ColorReduction evaluates the post-initialization color-compaction
// extension (internal/reduce): how far the protocol's O(κ₂Δ) palette can
// be squeezed toward the centralized greedy scale once the network is up,
// while staying proper.
func E19ColorReduction(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E19: post-initialization color compaction (extension)",
		"stage", "proper", "mean #colors", "mean max color", "max color vs Δ", "mean moves/node")
	n := o.scale(110, 40)
	type acc struct {
		proper        int
		colors, maxes []float64
		moves         []float64
		delta         int
	}
	accs := map[string]*acc{"after protocol": {}, "after reduction": {}, "centralized greedy": {}}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o.Seed, 1600, trial)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if !run.Correct() {
			continue
		}
		base := accs["after protocol"]
		base.delta = par.Delta
		base.proper++
		base.colors = append(base.colors, float64(run.Report.NumColors))
		base.maxes = append(base.maxes, float64(run.Report.MaxColor))
		base.moves = append(base.moves, 0)

		rp := reduce.Params{N: par.N, Delta: par.Delta, Kappa2: par.Kappa2}
		rNodes, rProtos := reduce.Nodes(run.Colors, seed+1, rp)
		rRes, err := radio.Run(radio.Config{
			G: d.G, Protocols: rProtos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 100_000_000,
		})
		if err != nil {
			panic(err)
		}
		after := make([]int32, d.N())
		var totalMoves int64
		for i, v := range rNodes {
			after[i] = v.Color()
			totalMoves += v.Moves()
		}
		rRep := verify.Check(d.G, after)
		red := accs["after reduction"]
		red.delta = par.Delta
		if rRes.AllDone && rRep.OK() {
			red.proper++
			red.colors = append(red.colors, float64(rRep.NumColors))
			red.maxes = append(red.maxes, float64(rRep.MaxColor))
			red.moves = append(red.moves, float64(totalMoves)/float64(d.N()))
		}

		gc := d.G.GreedyColoring()
		gRep := verify.Check(d.G, gc)
		g := accs["centralized greedy"]
		g.delta = par.Delta
		g.proper++
		g.colors = append(g.colors, float64(gRep.NumColors))
		g.maxes = append(g.maxes, float64(gRep.MaxColor))
		g.moves = append(g.moves, 0)
	}
	for _, stage := range []string{"after protocol", "after reduction", "centralized greedy"} {
		a := accs[stage]
		ratio := "–"
		if a.delta > 0 && stats.Mean(a.maxes) > 0 {
			ratio = fmt.Sprintf("%.2f×Δ", stats.Mean(a.maxes)/float64(a.delta))
		}
		t.AddRow(stage, fmt.Sprintf("%d/%d", a.proper, o.Trials),
			stats.Mean(a.colors), stats.Mean(a.maxes), ratio, stats.Mean(a.moves))
	}
	return t
}

// E20CaptureEffect injects the capture effect, a deviation ABOVE the
// model: real radios often decode the stronger of two colliding signals,
// while the model assumes every collision destroys both. The protocol's
// guarantees are proved without capture, so capture can only help — the
// experiment quantifies the speedup and confirms correctness is
// unaffected.
func E20CaptureEffect(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E20: capture effect (model deviation above spec)",
		"capture prob", "correct", "mean maxT", "speedup", "captures/collisions")
	n := o.scale(110, 40)
	var baseline float64
	for ci, p := range []float64{0, 0.25, 0.5, 1.0} {
		correct := 0
		var ts []float64
		var caps, colls int64
		for trial := 0; trial < o.Trials; trial++ {
			seed := trialSeed(o.Seed, 1700+ci, trial)
			d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
			par := MeasureParams(d)
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			res, err := radio.Run(radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: defaultBudget(par), NEstimate: par.N,
				CaptureProb: p, DropSeed: seed,
			})
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			if res.AllDone && verify.Check(d.G, cs).OK() {
				correct++
				ts = append(ts, float64(res.MaxLatency()))
			}
			caps += res.Captures
			colls += res.Collisions
		}
		mean := stats.Mean(ts)
		if p == 0 {
			baseline = mean
		}
		speed := "–"
		if baseline > 0 && mean > 0 {
			speed = fmt.Sprintf("%.2f×", baseline/mean)
		}
		t.AddRow(p, fmt.Sprintf("%d/%d", correct, o.Trials), mean, speed,
			fmt.Sprintf("%d/%d", caps, caps+colls))
	}
	return t
}

// E21MultiChannel restores the multi-channel assumption of the earlier
// unstructured-radio works [13, 14] that the paper explicitly drops
// (Sect. 2: "In our model, there is only one communication channel").
// Nodes hop uniformly at random over k channels each slot; the protocol
// runs unchanged. More channels thin contention quadratically but thin
// useful receptions linearly (sender and receiver must coincide), so the
// counter-paced algorithm gains nothing — evidence that the paper's
// single-channel model is not only weaker but also this algorithm's best
// operating point.
func E21MultiChannel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E21: multiple channels ([13, 14] assumption restored)",
		"channels", "correct", "mean maxT", "vs 1 channel", "deliveries/tx", "collisions/tx")
	n := o.scale(110, 40)
	var baseline float64
	for ci, k := range []int{1, 2, 4, 8} {
		correct := 0
		var ts, rxRatio, collRatio []float64
		for trial := 0; trial < o.Trials; trial++ {
			seed := trialSeed(o.Seed, 1800+ci, trial)
			d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
			par := MeasureParams(d)
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			res, err := radio.RunMultiChannel(radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: 8 * defaultBudget(par), NEstimate: par.N,
			}, k, seed)
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			if res.AllDone && verify.Check(d.G, cs).OK() {
				correct++
				ts = append(ts, float64(res.MaxLatency()))
			}
			if res.Transmissions > 0 {
				rxRatio = append(rxRatio, float64(res.Deliveries)/float64(res.Transmissions))
				collRatio = append(collRatio, float64(res.Collisions)/float64(res.Transmissions))
			}
		}
		mean := stats.Mean(ts)
		if k == 1 {
			baseline = mean
		}
		rel := "–"
		if baseline > 0 && mean > 0 {
			rel = fmt.Sprintf("%.2f×", mean/baseline)
		}
		t.AddRow(k, fmt.Sprintf("%d/%d", correct, o.Trials), mean, rel,
			stats.Mean(rxRatio), stats.Mean(collRatio))
	}
	return t
}

// E22DataCollection closes the loop the paper's introduction opens:
// initialization from scratch → coloring → TDMA MAC → a working sensor
// workload. Convergecast data collection runs over three schedules —
// the protocol's own 1-hop coloring, the same coloring after compaction
// (E19), and a distance-2 coloring (E13) — measuring delivery, latency
// and the hidden-terminal retransmission tax at the application level.
func E22DataCollection(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E22: convergecast data collection over coloring-derived TDMA schedules",
		"schedule", "frame len", "delivery", "mean latency (slots)", "retx/packet")
	n := o.scale(110, 40)
	type acc struct {
		frames, delivery, latency, retx []float64
	}
	accs := map[string]*acc{"1-hop (protocol)": {}, "compacted (E19)": {}, "distance-2": {}}
	for trial := 0; trial < o.Trials; trial++ {
		seed := trialSeed(o.Seed, 1900, trial)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 5.5, Radius: 1.3, Seed: seed})
		if !d.G.Connected() {
			continue
		}
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if !run.Correct() {
			continue
		}
		colorings := map[string][]int32{"1-hop (protocol)": run.Colors}

		rNodes, rProtos := reduce.Nodes(run.Colors, seed+1, reduce.Params{
			N: par.N, Delta: par.Delta, Kappa2: par.Kappa2})
		rRes, err := radio.Run(radio.Config{G: d.G, Protocols: rProtos,
			Wake: radio.WakeSynchronous(d.N()), MaxSlots: 200_000_000})
		if err != nil {
			panic(err)
		}
		compacted := make([]int32, d.N())
		for i, v := range rNodes {
			compacted[i] = v.Color()
		}
		if rRes.AllDone && verify.Check(d.G, compacted).OK() {
			colorings["compacted (E19)"] = compacted
		}
		colorings["distance-2"] = d.G.Square().GreedyColoring()

		for name, colors := range colorings {
			s, err := sched.FromColoring(colors)
			if err != nil {
				panic(err)
			}
			stats_, err := collect.Run(d.G, s, collect.Config{
				Sink: 0, PacketsPerNode: 3, CoinSeed: seed,
			})
			if err != nil {
				panic(err)
			}
			a := accs[name]
			a.frames = append(a.frames, float64(s.FrameLen))
			a.delivery = append(a.delivery, stats_.DeliveryRate())
			a.latency = append(a.latency, stats_.MeanLatency)
			if stats_.Generated > 0 {
				a.retx = append(a.retx, float64(stats_.Retransmissions)/float64(stats_.Generated))
			}
		}
	}
	for _, name := range []string{"1-hop (protocol)", "compacted (E19)", "distance-2"} {
		a := accs[name]
		t.AddRow(name, stats.Mean(a.frames),
			fmt.Sprintf("%.1f%%", 100*stats.Mean(a.delivery)),
			stats.Mean(a.latency), stats.Mean(a.retx))
	}
	return t
}

// E23AdversarySearch stress-tests the "any wake-up distribution" claim
// (Sect. 2) with an active adversary: hill-climbing over wake-up
// schedules to maximize the worst per-node latency or break correctness
// outright. Run at the practical constants and at the 0.5× scale that
// E7 identified as the edge of the safe plateau.
func E23AdversarySearch(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E23: adversarial wake-up schedule search (Sect. 2 stress test)",
		"constants", "search evals", "schedules broken", "worst maxT found", "sync baseline maxT", "blow-up")
	n := o.scale(90, 40)
	evals := 6 * o.Trials
	for ci, scale := range []float64{2.0, 1.0, 0.5} {
		seed := trialSeed(o.Seed, 2000+ci, 0)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 5.5, Radius: 1.2, Seed: seed})
		par := MeasureParams(d).Scale(scale)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		baseline := run.Radio.MaxLatency()
		res := adversary.Search(d, par, adversary.Config{Evals: evals, Seed: seed})
		blowup := "–"
		if baseline > 0 && res.BestScore > 0 && res.Broken == 0 {
			blowup = fmt.Sprintf("%.2f×", float64(res.BestScore)/float64(baseline))
		}
		t.AddRow(fmt.Sprintf("%.1f×practical", scale), res.Evals, res.Broken,
			res.BestScore, baseline, blowup)
	}
	return t
}
