// Package collect implements the canonical sensor-network workload on
// top of the coloring-derived TDMA schedule: convergecast data
// collection. Every node generates readings and forwards them hop by hop
// along a BFS tree toward a sink, transmitting only in its own TDMA slot
// (so there is never direct interference, per the introduction's
// motivation for coloring-based MAC layers). Hidden-terminal collisions
// — same-slot senders two hops apart — still occur under a 1-hop
// coloring and force retransmissions; a distance-2 coloring eliminates
// them entirely. Experiment E22 quantifies that trade-off on the
// application level, completing the chain the paper motivates:
// initialization → coloring → MAC → working data collection.
package collect

import (
	"errors"
	"fmt"

	"radiocolor/internal/graph"
	"radiocolor/internal/sched"
)

// Tree returns the BFS routing tree toward the sink: parent[v] is v's
// next hop (parent[sink] = -1; unreachable nodes get -2).
func Tree(g *graph.Graph, sink int) []int32 {
	parent := make([]int32, g.N())
	for i := range parent {
		parent[i] = -2
	}
	parent[sink] = -1
	queue := []int32{int32(sink)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Adj(int(u)) {
			if parent[w] == -2 {
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return parent
}

// Config parameterizes a collection run.
type Config struct {
	// Sink receives all traffic.
	Sink int
	// PacketsPerNode readings are generated at every non-sink node, one
	// per frame starting at frame 0.
	PacketsPerNode int
	// Frames bounds the simulation (0: generous automatic bound).
	Frames int
	// QueueCap bounds per-node buffers; arrivals beyond it are dropped
	// (0: unbounded).
	QueueCap int
	// Persistence is the probability a backlogged node actually uses
	// its slot in a given frame (0: 0.75). Values below 1 are the
	// classic p-persistence that breaks the standing collisions two
	// backlogged hidden-terminal senders would otherwise repeat forever
	// under a 1-hop coloring; under a distance-2 coloring there are no
	// hidden terminals and 1.0 is optimal.
	Persistence float64
	// CoinSeed drives the deterministic persistence coin.
	CoinSeed int64
}

// Stats summarizes a collection run.
type Stats struct {
	// Generated, Delivered and Dropped count packets; packets still
	// queued when the frame budget expires are Stranded.
	Generated, Delivered, Dropped, Stranded int
	// Retransmissions counts send attempts that failed to hidden-terminal
	// collisions.
	Retransmissions int
	// MeanLatency is the mean delivery time in slots (delivered packets
	// only).
	MeanLatency float64
	// Frames is the number of TDMA frames simulated.
	Frames int
}

// DeliveryRate is Delivered/Generated (1 if nothing was generated).
func (s Stats) DeliveryRate() float64 {
	if s.Generated == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Generated)
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("generated=%d delivered=%d (%.1f%%) dropped=%d stranded=%d retx=%d meanLatency=%.0f slots",
		s.Generated, s.Delivered, 100*s.DeliveryRate(), s.Dropped, s.Stranded, s.Retransmissions, s.MeanLatency)
}

// packet is one reading in flight.
type packet struct {
	born int64 // absolute slot of generation
}

// coin is the stateless p-persistence draw for (seed, frame, node).
func coin(seed, frame int64, node int32, p float64) bool {
	if p >= 1 {
		return true
	}
	z := uint64(seed) ^ uint64(frame)*0x9E3779B97F4A7C15 ^ uint64(node)<<32
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11)/float64(1<<53) < p
}

// Run simulates convergecast over the schedule. The radio semantics per
// slot s of each frame: every node whose TDMA slot is s and whose queue
// is nonempty transmits its head packet to its BFS parent; the parent
// receives iff it is not itself transmitting in s and exactly one of its
// neighbors transmits in s (the unstructured model's reception rule).
// Failed transmissions keep the packet for the next frame.
func Run(g *graph.Graph, s *sched.Schedule, cfg Config) (Stats, error) {
	n := g.N()
	if cfg.Sink < 0 || cfg.Sink >= n {
		return Stats{}, fmt.Errorf("collect: sink %d out of range", cfg.Sink)
	}
	if len(s.Slot) != n {
		return Stats{}, errors.New("collect: schedule size mismatch")
	}
	if cfg.PacketsPerNode < 1 {
		cfg.PacketsPerNode = 1
	}
	if cfg.Persistence <= 0 || cfg.Persistence > 1 {
		cfg.Persistence = 0.75
	}
	parent := Tree(g, cfg.Sink)
	for v := 0; v < n; v++ {
		if parent[v] == -2 {
			return Stats{}, fmt.Errorf("collect: node %d cannot reach the sink", v)
		}
	}
	if cfg.Frames <= 0 {
		// Every packet needs ≤ depth hops; contention can force
		// retries, so budget generously: packets × (diameter + Δ).
		cfg.Frames = cfg.PacketsPerNode * (g.Diameter() + g.MaxDegree() + 8) * 4
	}

	queues := make([][]packet, n)
	stats := Stats{Frames: cfg.Frames}
	var latencySum int64

	// senders[slot] lists nodes owning that slot, precomputed.
	bySlot := make([][]int32, s.FrameLen)
	for v := 0; v < n; v++ {
		bySlot[s.Slot[v]] = append(bySlot[s.Slot[v]], int32(v))
	}

	for frame := 0; frame < cfg.Frames; frame++ {
		frameBase := int64(frame) * int64(s.FrameLen)
		for slot := int32(0); slot < s.FrameLen; slot++ {
			now := frameBase + int64(slot)
			// Generation: each non-sink node emits one reading per
			// frame at its own slot until its budget is exhausted.
			if frame < cfg.PacketsPerNode {
				for _, v := range bySlot[slot] {
					if int(v) == cfg.Sink {
						continue
					}
					stats.Generated++
					if cfg.QueueCap > 0 && len(queues[v]) >= cfg.QueueCap {
						stats.Dropped++
						continue
					}
					queues[v] = append(queues[v], packet{born: now})
				}
			}
			// Transmissions this slot: slot owners with traffic. The set
			// is frozen before any packet moves so that interference is
			// judged against what is actually on the air this slot.
			var txs []int32
			transmitting := make(map[int32]bool)
			for _, v := range bySlot[slot] {
				if int(v) != cfg.Sink && len(queues[v]) > 0 && coin(cfg.CoinSeed, int64(frame), v, cfg.Persistence) {
					txs = append(txs, v)
					transmitting[v] = true
				}
			}
			if len(txs) == 0 {
				continue
			}
			for _, v := range txs {
				p := parent[v]
				// The parent never transmits in v's slot (colors are
				// proper ⇒ different slots); it hears v iff v is its
				// only transmitting neighbor in this slot.
				interference := 0
				for _, w := range g.Adj(int(p)) {
					if transmitting[w] {
						interference++
					}
				}
				if interference != 1 {
					stats.Retransmissions++
					continue // collision at the parent; retry next frame
				}
				pkt := queues[v][0]
				queues[v] = queues[v][1:]
				if int(p) == cfg.Sink {
					stats.Delivered++
					latencySum += now - pkt.born
					continue
				}
				if cfg.QueueCap > 0 && len(queues[p]) >= cfg.QueueCap {
					stats.Dropped++
					continue
				}
				queues[p] = append(queues[p], pkt)
			}
		}
	}
	for v := 0; v < n; v++ {
		stats.Stranded += len(queues[v])
	}
	if stats.Delivered > 0 {
		stats.MeanLatency = float64(latencySum) / float64(stats.Delivered)
	}
	return stats, nil
}
