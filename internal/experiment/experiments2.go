package experiment

import (
	"fmt"

	"radiocolor/internal/baseline/aloha"
	"radiocolor/internal/baseline/busch"
	"radiocolor/internal/baseline/luby"
	"radiocolor/internal/core"
	"radiocolor/internal/geom"
	"radiocolor/internal/msgpass"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// E7ParamSweep reproduces the explicit empirical claim of Sect. 4:
// "Simulation results show that in networks whose nodes are uniformly
// distributed at random significantly smaller values suffice." It scales
// the practical constants up and down and reports where correctness
// starts to fail and how running time pays for safety margin.
func E7ParamSweep(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E7: constant scaling sweep (Sect. 4 claim: small constants suffice)",
		"scale ×practical", "γ", "σ", "correct", "mean maxT (slots)", "vs theoretical γ")
	n := o.scale(150, 50)
	trials := o.Trials * 2 // failure rates need more repetitions
	scales := []float64{0.125, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0}
	type trialRes struct {
		ok                    bool
		t                     float64
		gamma, sigma, thGamma float64
	}
	grid := parTrials(o, "E7", len(scales), trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 400+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d).Scale(scales[ci])
		r := trialRes{gamma: par.Gamma, sigma: par.Sigma,
			thGamma: core.Theoretical(par.N, par.Delta, par.Kappa1, par.Kappa2).Gamma}
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if run.Correct() {
			r.ok = true
			r.t = float64(run.Radio.MaxLatency())
		}
		return r
	})
	for ci, scale := range scales {
		correct := 0
		var ts []float64
		var gamma, sigma, thGamma float64
		for _, r := range grid[ci] {
			gamma, sigma, thGamma = r.gamma, r.sigma, r.thGamma
			if r.ok {
				correct++
				ts = append(ts, r.t)
			}
		}
		t.AddRow(scale, gamma, sigma, fmt.Sprintf("%d/%d", correct, trials),
			stats.Mean(ts), fmt.Sprintf("γ/γ_th = %.3f", gamma/thGamma))
	}
	return t
}

// E8Baselines reproduces the Sect. 3 comparison: the paper's algorithm
// versus the Busch-style frame comparator (restricted to 1-hop coloring,
// O(Δ³ log n)) and the naive listen-then-claim strawman, on identical
// unit disk deployments. The headline shape: both produce O(Δ) colors,
// but the comparator's time grows polynomially faster in Δ, and the
// strawman trades away correctness. The message-passing Luby coloring is
// included (in rounds, not slots) to show what the classic model charges
// for the same task.
func E8Baselines(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E8: comparison vs baselines (Sect. 3; ours O(κ₂⁴Δ log n) vs Busch-style O(Δ³ log n))",
		"algorithm", "target Δ", "correct", "mean time", "unit", "mean #colors")
	n := o.scale(150, 50)
	targets := []int{6, 10, 14, 18}
	algNames := []string{"ours", "busch", "aloha", "luby(mp)"}
	type algRes struct {
		ok           bool
		time, colors float64
	}
	type trialRes struct {
		delta int
		algs  [4]algRes
	}
	grid := parTrials(o, "E8", len(targets), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 500+ci, tr)
		d := topology.UDGWithTargetDegree(n, targets[ci], seed)
		delta := d.G.MaxDegree()
		var out trialRes
		out.delta = delta

		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		out.algs[0] = algRes{run.Correct(), float64(run.Radio.MaxLatency()), float64(run.Report.NumColors)}

		bp := busch.DefaultParams(d.N(), delta)
		bNodes, bProtos := busch.Nodes(d.N(), seed+1, bp)
		bRes, err := radio.Run(radio.Config{G: d.G, Protocols: bProtos,
			Wake: radio.WakeSynchronous(d.N()), MaxSlots: 80_000_000})
		if err != nil {
			panic(err)
		}
		bColors := make([]int32, d.N())
		for i, v := range bNodes {
			bColors[i] = v.Color()
		}
		bRep := verify.Check(d.G, bColors)
		out.algs[1] = algRes{bRes.AllDone && bRep.OK(), float64(bRes.MaxLatency()), float64(bRep.NumColors)}

		ap := aloha.DefaultParams(d.N(), delta)
		aNodes, aProtos := aloha.Nodes(d.N(), seed+2, ap)
		aRes, err := radio.Run(radio.Config{G: d.G, Protocols: aProtos,
			Wake: radio.WakeSynchronous(d.N()), MaxSlots: 10_000_000})
		if err != nil {
			panic(err)
		}
		aColors := make([]int32, d.N())
		for i, v := range aNodes {
			aColors[i] = v.Color()
		}
		aRep := verify.Check(d.G, aColors)
		out.algs[2] = algRes{aRes.AllDone && aRep.OK(), float64(aRes.MaxLatency()), float64(aRep.NumColors)}

		lNodes, lProtos := luby.Nodes(d.N(), delta, seed+3)
		lRes, err := msgpass.Run(d.G, lProtos, 1_000_000)
		if err != nil {
			panic(err)
		}
		lColors := make([]int32, d.N())
		for i, v := range lNodes {
			lColors[i] = v.Color()
		}
		lRep := verify.Check(d.G, lColors)
		out.algs[3] = algRes{lRes.AllDone && lRep.OK(), float64(lRes.Rounds), float64(lRep.NumColors)}
		return out
	})
	type series struct{ xs, ys []float64 }
	fits := map[string]*series{"ours": {}, "busch": {}}
	for ci, target := range targets {
		cells := map[string]*e8cell{"ours": {}, "busch": {}, "aloha": {}, "luby(mp)": {}}
		measuredDelta := 0
		for _, r := range grid[ci] {
			measuredDelta = r.delta
			for ai, name := range algNames {
				cells[name].record(r.algs[ai].ok, r.algs[ai].time, r.algs[ai].colors)
			}
		}
		for _, name := range algNames {
			c := cells[name]
			unit := "slots"
			if name == "luby(mp)" {
				unit = "rounds"
			}
			t.AddRow(name, fmt.Sprintf("%d (Δ=%d)", target, measuredDelta),
				fmt.Sprintf("%d/%d", c.correct, o.Trials),
				stats.Mean(c.times), unit, stats.Mean(c.colors))
			if s, tracked := fits[name]; tracked && stats.Mean(c.times) > 0 {
				s.xs = append(s.xs, float64(measuredDelta))
				s.ys = append(s.ys, stats.Mean(c.times))
			}
		}
	}
	for _, name := range []string{"ours", "busch"} {
		s := fits[name]
		if len(s.xs) >= 2 {
			exp, r2 := stats.PowerFit(s.xs, s.ys)
			t.AddRow(name+" fit", "", "", fmt.Sprintf("T ∝ Δ^%.2f", exp),
				fmt.Sprintf("R²=%.3f", r2), "")
		}
	}
	return t
}

// e8cell accumulates one algorithm's results at one Δ target.
type e8cell struct {
	correct int
	times   []float64
	colors  []float64
}

func (c *e8cell) record(ok bool, time, colors float64) {
	if ok {
		c.correct++
		c.times = append(c.times, time)
		c.colors = append(c.colors, colors)
	}
}

// E9Wakeup reproduces the asynchronous wake-up claim of Sect. 2: the
// per-node decision latency T_v (measured from each node's own wake-up)
// stays in the same O(Δ log n) band for every wake-up pattern, including
// adversarially staggered ones.
func E9Wakeup(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E9: per-node latency under wake-up patterns (Sect. 2: any distribution)",
		"wakeup", "correct", "mean T_v", "p90 T_v", "max T_v", "span of wake slots")
	n := o.scale(130, 40)
	type trialRes struct {
		ok   bool
		lat  []float64
		span int64
	}
	grid := parTrials(o, "E9", len(radio.WakePatterns), o.Trials, func(pi, tr int) trialRes {
		pat := radio.WakePatterns[pi]
		seed := trialSeed(o.Seed, 600+pi, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		wake := pat.Make(d.N(), par.WaitSlots(), seed)
		var r trialRes
		for _, w := range wake {
			if w > r.span {
				r.span = w
			}
		}
		run, err := RunCore(d, par, wake, seed, defaultBudget(par)+4*r.span, core0)
		if err != nil {
			panic(err)
		}
		if run.Correct() {
			r.ok = true
			for v := 0; v < d.N(); v++ {
				r.lat = append(r.lat, float64(run.Radio.Latency(v)))
			}
		}
		return r
	})
	for pi, pat := range radio.WakePatterns {
		correct := 0
		var all []float64
		var span int64
		for _, r := range grid[pi] {
			if r.span > span {
				span = r.span
			}
			if r.ok {
				correct++
				all = append(all, r.lat...)
			}
		}
		s := stats.Summarize(all)
		t.AddRow(pat.Name, fmt.Sprintf("%d/%d", correct, o.Trials),
			s.Mean, s.P90, s.Max, span)
	}
	return t
}

// E10UnitBall reproduces Lemma 9 / Corollary 3: unit ball graphs over
// metrics of growing doubling dimension have larger κ₂, and the
// algorithm pays for it in colors and time but stays correct.
func E10UnitBall(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E10: unit ball graphs over general metrics (Lemma 9 / Corollary 3)",
		"metric", "Δ", "κ₁", "κ₂", "correct", "mean #colors", "mean maxT")
	n := o.scale(140, 50)
	metrics := []geom.Metric{
		geom.Euclidean{},
		geom.Manhattan{},
		geom.Chebyshev{},
		geom.SnappedMetric{Base: geom.Euclidean{}, Step: 0.5},
		geom.HubMetric{Hub: geom.Point{X: 3.5, Y: 3.5}, Factor: 0.35},
	}
	type trialRes struct {
		ok         bool
		colors, ts float64
		par        core.Params
	}
	grid := parTrials(o, "E10", len(metrics), o.Trials, func(mi, tr int) trialRes {
		seed := trialSeed(o.Seed, 700+mi, tr)
		d := topology.UnitBallGraph(topology.UDGConfig{N: n, Side: 7, Radius: 1, Seed: seed}, metrics[mi])
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		r := trialRes{par: par}
		if run.Correct() {
			r.ok = true
			r.colors = float64(run.Report.NumColors)
			r.ts = float64(run.Radio.MaxLatency())
		}
		return r
	})
	for mi, m := range metrics {
		correct := 0
		var colors, ts []float64
		var par core.Params
		for _, r := range grid[mi] {
			par = r.par
			if r.ok {
				correct++
				colors = append(colors, r.colors)
				ts = append(ts, r.ts)
			}
		}
		t.AddRow(m.Name(), par.Delta, par.Kappa1, par.Kappa2,
			fmt.Sprintf("%d/%d", correct, o.Trials), stats.Mean(colors), stats.Mean(ts))
	}
	return t
}

// E11Ablation reproduces the design rationale of Sect. 4: removing the
// competitor list (χ ≡ 0) re-enables cascading resets, and the naive
// reset rule starves regions of the network. Measured via reset counts,
// timeouts and correctness on corridor networks under adversarial
// wake-up, where chained competition is strongest.
func E11Ablation(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E11: ablations of the counter machinery (Sect. 4 design rationale)",
		"variant", "correct", "timed out", "mean maxT", "mean resets/node", "max resets/node")
	n := o.scale(110, 40)
	variants := []struct {
		name string
		abl  core.Ablation
	}{
		{"full algorithm", core.Ablation{}},
		{"no competitor list (χ≡0)", core.Ablation{NoCompetitorList: true}},
		{"naive reset rule", core.Ablation{NaiveReset: true}},
	}
	type trialRes struct {
		timedOut, ok bool
		t            float64
		meanResets   float64
		maxResets    int64
	}
	grid := parTrials(o, "E11", len(variants), o.Trials, func(vi, tr int) trialRes {
		seed := trialSeed(o.Seed, 800+vi, tr)
		d := topology.CorridorUDG(n, 22, 2, 1.2, seed)
		par := MeasureParams(d)
		wake := radio.WakeAdversarial(d.N(), par.WaitSlots(), seed)
		// A tight budget makes starvation measurable as timeout.
		budget := defaultBudget(par)
		run, err := RunCore(d, par, wake, seed, budget, variants[vi].abl)
		if err != nil {
			panic(err)
		}
		r := trialRes{timedOut: !run.Radio.AllDone, ok: run.Correct()}
		if r.ok {
			r.t = float64(run.Radio.MaxLatency())
		}
		var total int64
		for _, node := range run.Nodes {
			total += node.Resets()
			if node.Resets() > r.maxResets {
				r.maxResets = node.Resets()
			}
		}
		r.meanResets = float64(total) / float64(d.N())
		return r
	})
	for vi, variant := range variants {
		correct, timeouts := 0, 0
		var ts, meanResets []float64
		maxResets := int64(0)
		for _, r := range grid[vi] {
			if r.timedOut {
				timeouts++
			}
			if r.ok {
				correct++
				ts = append(ts, r.t)
			}
			if r.maxResets > maxResets {
				maxResets = r.maxResets
			}
			meanResets = append(meanResets, r.meanResets)
		}
		t.AddRow(variant.name, fmt.Sprintf("%d/%d", correct, o.Trials),
			fmt.Sprintf("%d/%d", timeouts, o.Trials),
			stats.Mean(ts), stats.Mean(meanResets), maxResets)
	}
	return t
}

// E12Messages reproduces the model constraint of Sect. 2 (messages carry
// O(log n) bits) and the structural guarantees of Corollary 1: observed
// maximum message size scales logarithmically with n, every node visits
// at most κ₂+1 verification states, and every final color lies in its
// intra-cluster window.
func E12Messages(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E12: message size (Sect. 2) and color windows (Corollary 1)",
		"n", "max msg bits", "bits/log₂(n)", "max class moves (≤κ₂)", "κ₂", "window violations")
	bases := []int{64, 256, 1024}
	type cell struct {
		n, bits  int
		maxMoves int64
		kappa2   int
		viol     int
	}
	rows := parMap(o, "E12", len(bases), func(ci int) cell {
		n := o.scale(bases[ci], 32)
		seed := trialSeed(o.Seed, 900+ci, 0)
		d := topology.UDGWithTargetDegree(n, 10, seed)
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		maxMoves := int64(0)
		for _, v := range run.Nodes {
			if v.ClassMoves() > maxMoves {
				maxMoves = v.ClassMoves()
			}
		}
		viol := verify.CheckClusterRanges(run.Colors, run.TCs, par.Kappa2)
		return cell{n, run.Radio.MaxMessageBits, maxMoves, par.Kappa2, len(viol)}
	})
	for _, r := range rows {
		t.AddRow(r.n, r.bits, float64(r.bits)/logn(r.n), r.maxMoves, r.kappa2, r.viol)
	}
	return t
}
