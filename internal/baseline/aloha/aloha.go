// Package aloha implements a deliberately naive listen-then-claim
// coloring protocol in the unstructured radio network model. It is the
// strawman the paper's design discussion (Sect. 4) argues against:
// without counters, critical ranges, and competitor lists there is no
// safe moment to decide, so the protocol trades a fixed listening budget
// for a correctness gamble.
//
// Each node, after waking up:
//
//  1. listens for listenSlots slots while recording every color it hears
//     claimed by neighbors (transmissions are slotted-ALOHA style);
//  2. claims the smallest color it never heard and keeps announcing it
//     with probability 1/Δ;
//  3. if it hears a neighbor announce the same color, the lower id
//     re-claims the smallest unheard color and restarts its quiet
//     window;
//  4. it decides irrevocably after quietSlots conflict-free slots.
//
// The protocol is fast and usually correct on small, synchronous
// networks, but its decision rule is unsound: hidden claimants that were
// asleep (asynchronous wake-up!) or repeatedly collided are invisible
// during the quiet window, so adjacent nodes can decide the same color.
// Experiments E8/E11 quantify this correctness gap against the paper's
// algorithm.
package aloha

import (
	"radiocolor/internal/radio"
)

// Params configures the strawman.
type Params struct {
	// N and Delta are the usual global estimates.
	N, Delta int
	// ListenSlots is the initial listening budget.
	ListenSlots int64
	// QuietSlots is the conflict-free window before deciding.
	QuietSlots int64
}

// DefaultParams returns the parameters used by the experiments: budgets
// of the same O(Δ log n) order as one phase of the paper's algorithm.
func DefaultParams(n, delta int) Params {
	if delta < 2 {
		delta = 2
	}
	logn := int64(1)
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 3 {
		logn = 3
	}
	return Params{
		N:           n,
		Delta:       delta,
		ListenSlots: 2 * int64(delta) * logn,
		QuietSlots:  2 * int64(delta) * logn,
	}
}

// announce is the single message type: "my color is Color".
type announce struct {
	From  radio.NodeID
	Color int32
}

// Sender implements radio.Message.
func (a *announce) Sender() radio.NodeID { return a.From }

// Bits implements radio.Message.
func (a *announce) Bits(n int) int {
	if n < 2 {
		n = 2
	}
	b := 0
	for v := n * n * n; v > 0; v >>= 1 {
		b++
	}
	return b + 16
}

// Node is one strawman participant; it implements radio.Protocol.
type Node struct {
	id  radio.NodeID
	rng radio.Rand
	par Params

	heard   map[int32]bool
	listen  int64
	claim   int32
	quiet   int64
	decided bool
	redraws int64
}

// New creates a node.
func New(id radio.NodeID, rng radio.Rand, par Params) *Node {
	if par.Delta < 2 {
		par.Delta = 2
	}
	if par.ListenSlots < 1 {
		par.ListenSlots = 1
	}
	if par.QuietSlots < 1 {
		par.QuietSlots = 1
	}
	return &Node{id: id, rng: rng, par: par, claim: -1, heard: make(map[int32]bool)}
}

// Nodes builds one node per vertex with deterministic streams.
func Nodes(n int, seed int64, par Params) ([]*Node, []radio.Protocol) {
	nodes := make([]*Node, n)
	protos := make([]radio.Protocol, n)
	for i := range nodes {
		nodes[i] = New(radio.NodeID(i), radio.NodeRand(seed, radio.NodeID(i)), par)
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Start implements radio.Protocol.
func (v *Node) Start(int64) { v.listen = v.par.ListenSlots }

// smallestUnheard returns the lowest color not in v.heard.
func (v *Node) smallestUnheard() int32 {
	for c := int32(0); ; c++ {
		if !v.heard[c] {
			return c
		}
	}
}

// Send implements radio.Protocol.
func (v *Node) Send(int64) radio.Message {
	if v.listen > 0 {
		v.listen--
		if v.listen == 0 {
			v.claim = v.smallestUnheard()
		}
		return nil
	}
	if !v.decided {
		v.quiet++
		if v.quiet >= v.par.QuietSlots {
			v.decided = true
		}
	}
	if v.rng.Float64() < 1/float64(v.par.Delta) {
		return &announce{From: v.id, Color: v.claim}
	}
	return nil
}

// Recv implements radio.Protocol.
func (v *Node) Recv(_ int64, msg radio.Message) {
	a, ok := msg.(*announce)
	if !ok {
		return
	}
	v.heard[a.Color] = true
	if v.claim < 0 || a.Color != v.claim {
		return
	}
	if v.decided {
		return // irrevocable — possibly wrong, that is the point
	}
	if a.From > v.id {
		// Yield: lower priority re-claims.
		v.claim = v.smallestUnheard()
		v.redraws++
	}
	v.quiet = 0
}

// Done implements radio.Protocol.
func (v *Node) Done() bool { return v.decided }

// Color returns the claimed color, or −1 before the listening phase
// ends. Unlike the paper's algorithm the value is only trustworthy if no
// conflict surfaces later.
func (v *Node) Color() int32 {
	if !v.decided {
		return -1
	}
	return v.claim
}

// Redraws returns how many times the node abandoned a claim.
func (v *Node) Redraws() int64 { return v.redraws }
