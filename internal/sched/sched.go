// Package sched turns a vertex coloring into the TDMA MAC schedule the
// paper's introduction motivates: colors become slots of a periodic
// frame, so no two neighbors ever transmit simultaneously (no direct
// interference). It also quantifies the two properties the paper
// highlights:
//
//   - hidden-terminal exposure: a receiver can still be disturbed by
//     multiple same-slot senders two hops apart, but for a proper 1-hop
//     coloring those senders form an independent set within the
//     receiver's neighborhood, so their number is bounded by κ₁ — this
//     is why the paper argues a 1-hop coloring already enables simple
//     randomized MAC protocols with constant success probability;
//   - local bandwidth: a node's share of the channel is governed by the
//     highest color in its 2-neighborhood (Theorem 4's locality makes
//     this density-proportional rather than global).
package sched

import (
	"errors"
	"fmt"

	"radiocolor/internal/graph"
)

// Schedule is a periodic TDMA frame assignment: node v owns slot
// Slot[v] of every frame of FrameLen slots.
type Schedule struct {
	FrameLen int32
	Slot     []int32
}

// FromColoring builds the schedule slot(v) = color(v) with frame length
// max color + 1. Every node must be colored.
func FromColoring(colors []int32) (*Schedule, error) {
	if len(colors) == 0 {
		return nil, errors.New("sched: empty coloring")
	}
	max := int32(-1)
	for v, c := range colors {
		if c < 0 {
			return nil, fmt.Errorf("sched: node %d uncolored", v)
		}
		if c > max {
			max = c
		}
	}
	return &Schedule{FrameLen: max + 1, Slot: append([]int32(nil), colors...)}, nil
}

// DirectConflicts returns the adjacent pairs assigned the same slot.
// A schedule built from a proper coloring has none — the "MAC layer
// without direct interference" of the introduction.
func (s *Schedule) DirectConflicts(g *graph.Graph) [][2]int32 {
	var out [][2]int32
	for v := 0; v < g.N(); v++ {
		for _, u := range g.Adj(v) {
			if int(u) > v && s.Slot[u] == s.Slot[v] {
				out = append(out, [2]int32{int32(v), u})
			}
		}
	}
	return out
}

// MaxInterferers returns, over all nodes u and slots t, the maximum
// number of u's neighbors transmitting in the same slot t — the
// hidden-terminal exposure. For a proper coloring this is at most κ₁:
// same-slot neighbors of u are mutually non-adjacent, hence an
// independent set within N(u).
func (s *Schedule) MaxInterferers(g *graph.Graph) int {
	max := 0
	counts := make(map[int32]int)
	for u := 0; u < g.N(); u++ {
		for k := range counts {
			delete(counts, k)
		}
		for _, w := range g.Adj(u) {
			counts[s.Slot[w]]++
			if counts[s.Slot[w]] > max {
				max = counts[s.Slot[w]]
			}
		}
	}
	return max
}

// LocalFrameLen returns, per node, the frame length it effectively
// needs: one more than the highest slot in its 2-hop neighborhood. The
// inverse is the node's guaranteed bandwidth share; Theorem 4 makes it
// proportional to local density rather than the global maximum.
func (s *Schedule) LocalFrameLen(g *graph.Graph) []int32 {
	out := make([]int32, g.N())
	for v := 0; v < g.N(); v++ {
		max := int32(0)
		for _, u := range g.TwoHop(v) {
			if s.Slot[u] > max {
				max = s.Slot[u]
			}
		}
		out[v] = max + 1
	}
	return out
}

// FrameStats summarizes one simulated TDMA frame in which every node
// transmits exactly once, in its own slot.
type FrameStats struct {
	// Transmissions is the number of sender slots (= number of nodes).
	Transmissions int
	// CleanReceptions counts (receiver, slot) events where exactly one
	// neighbor transmitted: a successfully usable broadcast reception.
	CleanReceptions int
	// Collisions counts (receiver, slot) events with ≥ 2 transmitting
	// neighbors — hidden-terminal losses that survive 1-hop coloring.
	Collisions int
}

// SuccessRate is the fraction of (receiver, occupied slot) events that
// were clean.
func (f FrameStats) SuccessRate() float64 {
	total := f.CleanReceptions + f.Collisions
	if total == 0 {
		return 1
	}
	return float64(f.CleanReceptions) / float64(total)
}

// SimulateFrame plays one full TDMA frame over g under the radio model's
// reception rule and tallies clean receptions versus hidden-terminal
// collisions.
func (s *Schedule) SimulateFrame(g *graph.Graph) FrameStats {
	stats := FrameStats{Transmissions: g.N()}
	counts := make(map[int32]int)
	for u := 0; u < g.N(); u++ {
		for k := range counts {
			delete(counts, k)
		}
		for _, w := range g.Adj(u) {
			counts[s.Slot[w]]++
		}
		for slot, c := range counts {
			if slot == s.Slot[u] {
				continue // u transmits in its own slot and hears nothing
			}
			if c == 1 {
				stats.CleanReceptions++
			} else {
				stats.Collisions++
			}
		}
	}
	return stats
}
