// Package topology generates the network deployments the experiments run
// on: random unit disk graphs, obstacle-laden bounded independence
// graphs, unit ball graphs over general metrics (Corollary 3), and
// structured adversarial graphs. All generators are deterministic under
// an explicit seed.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
)

// Deployment bundles a generated network: node positions (when the
// topology is geometric), the induced communication graph, and metadata
// describing how it was produced.
type Deployment struct {
	// Name identifies the generator and parameters for experiment tables.
	Name string
	// Points holds node positions; nil for non-geometric topologies.
	Points []geom.Point
	// G is the communication graph.
	G *graph.Graph
	// Radius is the transmission range for geometric deployments (0 if
	// not applicable).
	Radius float64
	// Obstacles holds the wall set for obstacle deployments (nil
	// otherwise).
	Obstacles *geom.Obstacles
}

// N returns the number of nodes.
func (d *Deployment) N() int { return d.G.N() }

// buildGeometric constructs the communication graph over points: an edge
// wherever the metric distance is ≤ radius and no obstacle blocks the
// straight line. For the Euclidean metric a spatial grid makes this
// near-linear; general metrics fall back to the O(n²) scan (they may link
// points that are Euclid-far apart, e.g. via a hub).
func buildGeometric(points []geom.Point, m geom.Metric, radius float64, obs *geom.Obstacles) *graph.Graph {
	b := graph.NewBuilder(len(points))
	connect := func(i, j int) {
		if m.Dist(points[i], points[j]) <= radius && !obs.Blocked(points[i], points[j]) {
			b.AddEdge(i, j)
		}
	}
	if _, euclid := m.(geom.Euclidean); euclid && len(points) > 64 {
		grid := geom.NewGrid(points, radius)
		grid.CandidatePairs(connect)
	} else {
		for i := range points {
			for j := i + 1; j < len(points); j++ {
				connect(i, j)
			}
		}
	}
	return b.Build()
}

// UDGConfig parameterizes random unit disk graph generation.
type UDGConfig struct {
	// N is the number of nodes.
	N int
	// Side is the side length of the square deployment area.
	Side float64
	// Radius is the transmission range.
	Radius float64
	// Seed drives the deterministic placement.
	Seed int64
}

// RandomUDG places N nodes uniformly at random in a Side×Side square and
// connects nodes within Euclidean distance Radius — the classic unit disk
// model (Corollary 2).
func RandomUDG(cfg UDGConfig) *Deployment {
	r := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
	}
	return &Deployment{
		Name:   fmt.Sprintf("udg(n=%d,side=%.1f,r=%.1f)", cfg.N, cfg.Side, cfg.Radius),
		Points: pts,
		G:      buildGeometric(pts, geom.Euclidean{}, cfg.Radius, nil),
		Radius: cfg.Radius,
	}
}

// UDGWithTargetDegree generates a random UDG whose expected degree δ_v
// (paper convention, including the node) is approximately target. Density
// is set from the expected number of nodes in a disk of the transmission
// radius: E[δ] = 1 + (n−1)·πr²/side².
func UDGWithTargetDegree(n, target int, seed int64) *Deployment {
	if target < 2 {
		target = 2
	}
	const radius = 1.0
	side := math.Sqrt(float64(n-1) * math.Pi * radius * radius / float64(target-1))
	d := RandomUDG(UDGConfig{N: n, Side: side, Radius: radius, Seed: seed})
	d.Name = fmt.Sprintf("udg(n=%d,target δ=%d)", n, target)
	return d
}

// ClusteredUDG deploys a dense core cluster plus a sparse uniform fringe
// in the same area — the heterogeneous-density scenario behind the
// locality property (Theorem 4): low colors should suffice on the fringe
// even though the core needs many.
func ClusteredUDG(nCore, nFringe int, side, radius float64, seed int64) *Deployment {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, nCore+nFringe)
	// Core: Gaussian blob around the area center with spread ~radius.
	cx, cy := side/2, side/2
	for i := 0; i < nCore; i++ {
		pts = append(pts, geom.Point{
			X: clamp(cx+r.NormFloat64()*radius*0.6, 0, side),
			Y: clamp(cy+r.NormFloat64()*radius*0.6, 0, side),
		})
	}
	for i := 0; i < nFringe; i++ {
		pts = append(pts, geom.Point{X: r.Float64() * side, Y: r.Float64() * side})
	}
	return &Deployment{
		Name:   fmt.Sprintf("clustered(core=%d,fringe=%d)", nCore, nFringe),
		Points: pts,
		G:      buildGeometric(pts, geom.Euclidean{}, radius, nil),
		Radius: radius,
	}
}

func clamp(v, lo, hi float64) float64 {
	return math.Max(lo, math.Min(hi, v))
}

// BIGWithWalls generates a unit disk deployment and then drops random
// wall segments that sever links crossing them — the Fig. 1 scenario in
// which obstacles deform transmission ranges. The result is generally not
// a unit disk graph but remains a bounded independence graph with
// moderately increased κ₁/κ₂.
func BIGWithWalls(cfg UDGConfig, walls int) *Deployment {
	r := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
	}
	obs := &geom.Obstacles{}
	for w := 0; w < walls; w++ {
		// Walls are segments of length ~radius..2·radius at random
		// orientation.
		c := geom.Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
		angle := r.Float64() * 2 * math.Pi
		length := cfg.Radius * (1 + r.Float64())
		half := geom.Point{X: math.Cos(angle), Y: math.Sin(angle)}.Scale(length / 2)
		obs.Walls = append(obs.Walls, geom.Segment{A: c.Sub(half), B: c.Add(half)})
	}
	return &Deployment{
		Name:      fmt.Sprintf("big(n=%d,walls=%d)", cfg.N, walls),
		Points:    pts,
		G:         buildGeometric(pts, geom.Euclidean{}, cfg.Radius, obs),
		Radius:    cfg.Radius,
		Obstacles: obs,
	}
}

// UnitBallGraph places N nodes uniformly in a Side×Side square and
// connects nodes whose distance under the given metric is ≤ radius — the
// unit ball graph model of Corollary 3. Non-Euclidean metrics (snapped,
// hub) yield higher doubling dimension and thus larger κ₂.
func UnitBallGraph(cfg UDGConfig, m geom.Metric) *Deployment {
	r := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]geom.Point, cfg.N)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * cfg.Side, Y: r.Float64() * cfg.Side}
	}
	return &Deployment{
		Name:   fmt.Sprintf("ubg(n=%d,%s)", cfg.N, m.Name()),
		Points: pts,
		G:      buildGeometric(pts, m, cfg.Radius, nil),
		Radius: cfg.Radius,
	}
}

// GridGraph deploys nodes on a rows×cols lattice with the given spacing
// and transmission radius. With radius slightly above the spacing the
// result is the 4-neighbor grid; larger radii add diagonals.
func GridGraph(rows, cols int, spacing, radius float64) *Deployment {
	pts := make([]geom.Point, 0, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			pts = append(pts, geom.Point{X: float64(j) * spacing, Y: float64(i) * spacing})
		}
	}
	return &Deployment{
		Name:   fmt.Sprintf("grid(%dx%d)", rows, cols),
		Points: pts,
		G:      buildGeometric(pts, geom.Euclidean{}, radius, nil),
		Radius: radius,
	}
}

// Ring returns the n-cycle (a 1-dimensional multi-hop network).
func Ring(n int) *Deployment {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return &Deployment{Name: fmt.Sprintf("ring(%d)", n), G: b.Build()}
}

// Clique returns the complete graph K_n — the single-hop worst case for
// contention.
func Clique(n int) *Deployment {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return &Deployment{Name: fmt.Sprintf("clique(%d)", n), G: b.Build()}
}

// Star returns the star K_{1,n−1}: one hub adjacent to all leaves — the
// extreme hidden-terminal topology (leaves cannot hear each other).
func Star(n int) *Deployment {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	return &Deployment{Name: fmt.Sprintf("star(%d)", n), G: b.Build()}
}

// RandomTree returns a uniformly random recursive tree on n vertices:
// vertex i attaches to a uniform earlier vertex.
func RandomTree(n int, seed int64) *Deployment {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, r.Intn(i))
	}
	return &Deployment{Name: fmt.Sprintf("tree(%d)", n), G: b.Build()}
}

// CompleteBipartite returns K_{a,b}: a fully adversarial two-cluster
// hidden-terminal topology.
func CompleteBipartite(a, b int) *Deployment {
	bld := graph.NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(i, a+j)
		}
	}
	return &Deployment{Name: fmt.Sprintf("bipartite(%d,%d)", a, b), G: bld.Build()}
}

// CorridorUDG deploys nodes uniformly along a long thin corridor (length
// × width), producing chain-like multi-hop networks in which progress
// must happen simultaneously in all regions — the scenario motivating the
// paper's parallel-progress argument (Lemma 7).
func CorridorUDG(n int, length, width, radius float64, seed int64) *Deployment {
	r := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: r.Float64() * length, Y: r.Float64() * width}
	}
	return &Deployment{
		Name:   fmt.Sprintf("corridor(n=%d,%gx%g)", n, length, width),
		Points: pts,
		G:      buildGeometric(pts, geom.Euclidean{}, radius, nil),
		Radius: radius,
	}
}
