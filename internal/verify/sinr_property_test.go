package verify_test

import (
	"testing"

	"radiocolor/internal/baseline/fp"
	"radiocolor/internal/fault"
	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// TestSINRSurvivorsProperlyColored pins the physical-model stack end to
// end: the Fuchs–Prutkin Δ+1 baseline, running over the SINR medium
// (cumulative interference, capture effect) with a composed fault
// profile, across every wakeup schedule. Crashed nodes may stay
// uncolored; two LIVE adjacent decided nodes must never share a color.
// The run is deterministic in the seed, so this is a fixed regression
// net, not a flaky statistical assertion.
func TestSINRSurvivorsProperlyColored(t *testing.T) {
	const radius = 1.5
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 6, Radius: radius, Seed: 23})
	par := fp.DefaultParams(d.N(), d.G.MaxDegree())
	// Matched noise with a 5% margin past the unit-disk radius: border
	// links decode under mild interference instead of sitting exactly
	// on the threshold.
	m := medium.SINR{Alpha: 4, Beta: 1.5,
		NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, radius*1.05)}
	prof, err := fault.ParseProfile("loss=0.05,crash=3@150,jam=100:400@5,seed=9")
	if err != nil {
		t.Fatal(err)
	}
	const budget = 300_000
	for _, pat := range radio.WakePatterns {
		pat := pat
		t.Run(pat.Name, func(t *testing.T) {
			t.Parallel()
			inst, err := m.Bind(medium.Env{N: d.N(), Points: d.Points})
			if err != nil {
				t.Fatal(err)
			}
			inj, err := prof.Compile(d.N())
			if err != nil {
				t.Fatal(err)
			}
			nodes, protos := fp.Nodes(d.N(), 31, par)
			res, err := radio.Run(radio.Config{
				G: d.G, Protocols: protos,
				Wake:     pat.Make(d.N(), 500, 7),
				MaxSlots: budget,
				Medium:   inst,
				Faults:   inj,
			})
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]int32, len(nodes))
			for i, v := range nodes {
				colors[i] = v.Color()
			}
			rep := verify.CheckSurvivors(d.G, colors, verify.DownSet(d.N(), res.Down))
			if rep.Hard() {
				t.Errorf("hard violations (live adjacent nodes share a color): %v\n%s",
					rep.HardViolations, rep)
			}
			// Vacuousness guards: the faults fired, the medium carried
			// real traffic, and most survivors actually hold colors.
			if res.Crashes == 0 || res.Lost == 0 {
				t.Fatalf("no faults injected (crashes=%d lost=%d); test is vacuous",
					res.Crashes, res.Lost)
			}
			if res.Deliveries == 0 {
				t.Fatal("sinr medium delivered nothing; test is vacuous")
			}
			if rep.Survivors == 0 || rep.SurvivorsColored*2 < rep.Survivors {
				t.Errorf("only %d of %d survivors colored — degradation is not graceful (%s)",
					rep.SurvivorsColored, rep.Survivors, rep)
			}
		})
	}
}
