package core

import (
	"fmt"

	"radiocolor/internal/radio"
)

// Phase is the coarse execution phase of a node, refining the state
// diagram of Fig. 2 (states A_i split into their passive waiting part and
// their active competing part).
type Phase uint8

const (
	// PhaseAsleep is state Z: before wake-up.
	PhaseAsleep Phase = iota
	// PhaseWaiting is the passive prefix of a state A_i: the node
	// listens for ⌈αΔ log n⌉ slots (Algorithm 1, lines 4–14).
	PhaseWaiting
	// PhaseActive is the competing part of a state A_i: the node
	// increments its counter and transmits M_A messages (lines 16–31).
	PhaseActive
	// PhaseRequest is state R: requesting an intra-cluster color from
	// the leader (Algorithm 2).
	PhaseRequest
	// PhaseColored is a state C_i: the node has irrevocably decided
	// (Algorithm 3).
	PhaseColored
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseAsleep:
		return "asleep"
	case PhaseWaiting:
		return "waiting"
	case PhaseActive:
		return "active"
	case PhaseRequest:
		return "request"
	case PhaseColored:
		return "colored"
	default:
		return fmt.Sprintf("phase(%d)", uint8(p))
	}
}

// competitor is one entry of the local competitor list P_v: the stored
// counter copy d_v(w) is base at slot at and is implicitly incremented
// every slot (Algorithm 1, lines 5 and 18), so d_v(w)(t) = base + t − at.
type competitor struct {
	base int64
	at   int64
}

// Node is one protocol instance: the full per-node state machine of
// Algorithms 1–3. It implements radio.Protocol. A Node never inspects
// the network graph; its only inputs are received messages and its own
// random stream.
type Node struct {
	id  radio.NodeID
	rng radio.Rand
	par Params
	abl Ablation

	phase  Phase
	class  int32 // verification class i while in A_i, color class in C_i
	tc     int32 // assigned intra-cluster color, -1 before assignment
	leader radio.NodeID
	color  int32 // final color, -1 until decided

	waitLeft int64
	counter  int64
	comp     map[radio.NodeID]competitor

	// Leader request service (class 0 only; Algorithm 3, lines 6–23).
	queue     []radio.NodeID
	inQueue   map[radio.NodeID]bool
	assigned  map[radio.NodeID]int32 // only with Ablation.LeaderAssignmentMemory
	tcNext    int32
	serveLeft int64
	serveTo   radio.NodeID
	serveTC   int32

	// Statistics.
	resets     int64
	classMoves int64

	// Optional transition history and phase hook (see history.go).
	recordHistory bool
	history       []Transition
	nowSlot       int64
	phaseHook     func(slot int64, node int32, from, to Phase, class int32)
	prevPhase     Phase // last phase reported; zero value is PhaseAsleep

	// leftA0 records the slot the node resolved its class-0 fate
	// (became a leader or associated with one), −1 while still in A₀.
	// The moment every node has left A₀, the leader set is a maximal
	// independent set — the "MIS from scratch" substructure of the
	// paper's companion work [21] — and experiment E18 measures how
	// early in the run that happens.
	leftA0 int64
}

// NewNode creates a protocol instance. id is the node's wire identifier
// (it only needs to be unique; the algorithm performs no arithmetic on
// it), rng its private random stream.
func NewNode(id radio.NodeID, rng radio.Rand, par Params, abl Ablation) *Node {
	if err := par.Validate(); err != nil {
		panic(err)
	}
	return &Node{
		id:     id,
		rng:    rng,
		par:    par,
		abl:    abl,
		tc:     -1,
		color:  -1,
		phase:  PhaseAsleep,
		leftA0: -1,
	}
}

// Nodes builds one Node per network vertex with independent random
// streams derived from masterSeed, returning both the concrete nodes
// (for inspection) and the radio.Protocol slice for the engine.
func Nodes(n int, masterSeed int64, par Params, abl Ablation) ([]*Node, []radio.Protocol) {
	nodes := make([]*Node, n)
	protos := make([]radio.Protocol, n)
	for i := range nodes {
		nodes[i] = NewNode(radio.NodeID(i), radio.NodeRand(masterSeed, radio.NodeID(i)), par, abl)
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Start implements radio.Protocol: upon waking up a node enters A₀.
func (v *Node) Start(slot int64) {
	v.nowSlot = slot
	v.enterVerify(0)
}

// Reset implements radio.Restartable: it clears the node back to its
// pre-Start condition, as a fail-stop restart demands — identity, the
// random stream position, parameters and the installed hooks survive,
// but every piece of protocol state (phase, class, color, competitor
// sets, the class-0 service queue) is forgotten. The transition back
// to PhaseAsleep flows through logTransition so phase-occupancy gauges
// and recorded histories stay consistent.
func (v *Node) Reset() {
	v.phase = PhaseAsleep
	v.class = 0
	v.tc = -1
	v.leader = 0
	v.color = -1
	v.waitLeft = 0
	v.counter = 0
	v.comp = nil
	v.queue = nil
	v.inQueue = nil
	v.assigned = nil
	v.tcNext = 0
	v.serveLeft = 0
	v.serveTo = 0
	v.serveTC = 0
	v.leftA0 = -1
	v.logTransition(PhaseAsleep, 0)
}

// enterVerify moves the node into state A_class, beginning with the
// passive waiting period (Algorithm 1, "upon entering state A_i").
func (v *Node) enterVerify(class int32) {
	v.phase = PhaseWaiting
	v.class = class
	v.comp = make(map[radio.NodeID]competitor)
	v.counter = 0
	v.waitLeft = v.par.WaitSlots()
	if v.waitLeft < 1 {
		v.waitLeft = 1
	}
	v.logTransition(PhaseWaiting, class)
}

// Send implements radio.Protocol: the node's per-slot tick.
func (v *Node) Send(slot int64) radio.Message {
	v.nowSlot = slot
	switch v.phase {
	case PhaseWaiting:
		v.waitLeft--
		if v.waitLeft <= 0 {
			// Line 15: activate with counter χ(P_v).
			v.counter = v.chi(slot)
			v.phase = PhaseActive
			v.logTransition(PhaseActive, v.class)
		}
		return nil

	case PhaseActive:
		v.counter++ // line 17
		if v.counter >= v.par.Threshold() {
			// Lines 19–20: irrevocable decision, Algorithm 3 starts in
			// the same slot.
			v.becomeColored()
			return v.coloredSend()
		}
		if v.rng.Float64() < v.par.PSend() {
			return &MsgA{From: v.id, Class: v.class, Counter: v.counter} // line 22
		}
		return nil

	case PhaseRequest:
		if v.rng.Float64() < v.par.PSend() {
			return &MsgR{From: v.id, Leader: v.leader} // Algorithm 2, line 2
		}
		return nil

	case PhaseColored:
		return v.coloredSend()
	}
	return nil
}

// becomeColored executes the transition into C_class.
func (v *Node) becomeColored() {
	v.phase = PhaseColored
	v.color = v.class
	if v.class == 0 {
		v.inQueue = make(map[radio.NodeID]bool)
		if v.abl.LeaderAssignmentMemory {
			v.assigned = make(map[radio.NodeID]int32)
		}
		v.leftA0 = v.nowSlot
	}
	v.logTransition(PhaseColored, v.class)
}

// coloredSend implements Algorithm 3's per-slot behavior.
func (v *Node) coloredSend() radio.Message {
	if v.class > 0 {
		// Line 4: keep announcing C_i membership.
		if v.rng.Float64() < v.par.PSend() {
			return &MsgC{From: v.id, Class: v.class}
		}
		return nil
	}
	// Leader (lines 6–23).
	if v.serveLeft == 0 {
		if len(v.queue) == 0 {
			// Line 14: beacon so A₀ neighbors learn of the leader.
			if v.rng.Float64() < v.par.PLeader() {
				return &MsgC{From: v.id, Class: 0}
			}
			return nil
		}
		// Lines 16–18: take the next request and open a response window.
		v.serveTo = v.queue[0]
		if prev, ok := v.assigned[v.serveTo]; ok {
			// Assignment-memory ablation: re-serve the original tc.
			v.serveTC = prev
		} else {
			v.tcNext++
			v.serveTC = v.tcNext
			if v.assigned != nil {
				v.assigned[v.serveTo] = v.serveTC
			}
		}
		v.serveLeft = v.par.ServeSlots()
		if v.serveLeft < 1 {
			v.serveLeft = 1
		}
	}
	v.serveLeft--
	var out radio.Message
	if v.rng.Float64() < v.par.PLeader() {
		out = &MsgAssign{From: v.id, To: v.serveTo, TC: v.serveTC} // line 19
	}
	if v.serveLeft == 0 {
		// Line 21: the window closed; drop the request.
		v.queue = v.queue[1:]
		delete(v.inQueue, v.serveTo)
	}
	return out
}

// Recv implements radio.Protocol.
func (v *Node) Recv(slot int64, msg radio.Message) {
	v.nowSlot = slot
	switch m := msg.(type) {
	case *MsgA:
		v.recvA(slot, m)
	case *MsgC:
		v.recvCovered(m.From, m.Class)
	case *MsgAssign:
		// An assignment is also an M_C⁰ announcement for A₀ nodes…
		v.recvCovered(m.From, 0)
		// …and the awaited answer when it addresses this node
		// (Algorithm 2, lines 3–4).
		if v.phase == PhaseRequest && m.From == v.leader && m.To == v.id {
			v.tc = m.TC
			v.enterVerify(m.TC * (int32(v.par.Kappa2) + 1))
		}
	case *MsgR:
		// Algorithm 3, lines 10–12: leaders enqueue fresh requests.
		if v.phase == PhaseColored && v.class == 0 && m.Leader == v.id && !v.inQueue[m.From] {
			v.queue = append(v.queue, m.From)
			v.inQueue[m.From] = true
		}
	}
}

// recvA processes a competitor report M_A^i(w, c_w) (Algorithm 1,
// lines 6–9 while waiting, lines 27–30 while active).
func (v *Node) recvA(slot int64, m *MsgA) {
	if (v.phase != PhaseWaiting && v.phase != PhaseActive) || m.Class != v.class {
		return
	}
	v.comp[m.From] = competitor{base: m.Counter, at: slot}
	if v.phase != PhaseActive {
		return
	}
	if v.abl.NaiveReset {
		// The rejected naive scheme of Sect. 4: any more advanced
		// competitor resets us to zero.
		if m.Counter > v.counter {
			v.counter = 0
			v.resets++
		}
		return
	}
	diff := v.counter - m.Counter
	if diff < 0 {
		diff = -diff
	}
	if diff <= v.par.CriticalRange(v.class) { // line 29
		v.counter = v.chi(slot)
		v.resets++
	}
}

// recvCovered handles an M_C^class announcement: if this node is
// verifying the same class it is covered and advances to the successor
// state A_suc (Algorithm 1, lines 10–13 and 23–26).
func (v *Node) recvCovered(from radio.NodeID, class int32) {
	if (v.phase != PhaseWaiting && v.phase != PhaseActive) || class != v.class {
		return
	}
	if v.class == 0 {
		// A_suc = R: associate with the announcing leader.
		v.leader = from
		v.phase = PhaseRequest
		v.comp = nil
		v.leftA0 = v.nowSlot
		v.logTransition(PhaseRequest, 0)
		return
	}
	// A_suc = A_{i+1}.
	v.classMoves++
	v.enterVerify(v.class + 1)
}

// chi computes χ(P_v) (Algorithm 1, line 15): the maximum value ≤ 0
// outside the critical range of every stored competitor counter. The
// NoCompetitorList ablation degrades it to the constant 0.
func (v *Node) chi(slot int64) int64 {
	if v.abl.NoCompetitorList {
		return 0
	}
	r := v.par.CriticalRange(v.class)
	x := int64(0)
	for {
		blocked := false
		for _, c := range v.comp {
			d := c.base + (slot - c.at)
			if x >= d-r && x <= d+r {
				x = d - r - 1
				blocked = true
			}
		}
		if !blocked {
			return x
		}
	}
}

// Done implements radio.Protocol: true once the node has irrevocably
// decided on its color.
func (v *Node) Done() bool { return v.color >= 0 }

// Color returns the decided color, or −1.
func (v *Node) Color() int32 { return v.color }

// TC returns the assigned intra-cluster color, or −1.
func (v *Node) TC() int32 { return v.tc }

// Phase returns the node's current phase.
func (v *Node) Phase() Phase { return v.phase }

// Class returns the verification/color class the node currently occupies.
func (v *Node) Class() int32 { return v.class }

// Leader returns the leader the node associated with (valid once it left
// A₀ via an M_C⁰ message).
func (v *Node) Leader() radio.NodeID { return v.leader }

// IsLeader reports whether the node decided color 0.
func (v *Node) IsLeader() bool { return v.color == 0 }

// Resets returns how often the node's counter was reset — the quantity
// the critical-range technique keeps small (Sect. 4).
func (v *Node) Resets() int64 { return v.resets }

// ClassMoves returns how many A_i → A_{i+1} transitions the node made;
// Corollary 1 bounds it by κ₂ with high probability.
func (v *Node) ClassMoves() int64 { return v.classMoves }

// Counter exposes the current counter value (for tests and tracing).
func (v *Node) Counter() int64 { return v.counter }

// LeftClassZeroAt returns the slot at which the node resolved its
// class-0 fate — became a leader or associated with one — or −1 while it
// is still competing in A₀. Once every node has left A₀ the leaders form
// a maximal independent set (the clustering substructure of [13, 21]).
func (v *Node) LeftClassZeroAt() int64 { return v.leftA0 }
