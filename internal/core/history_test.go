package core_test

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

func TestHistoryRecordsFullLifecycle(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 4.5, Radius: 1.2, Seed: 6})
	par := paramsFor(d)
	nodes, protos := core.Nodes(d.N(), 19, par, core.Ablation{})
	for _, v := range nodes {
		v.EnableHistory()
	}
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 5_000_000, NEstimate: par.N,
	})
	if err != nil || !res.AllDone {
		t.Fatalf("run failed: %v %v", err, res)
	}
	for i, v := range nodes {
		h := v.History()
		if len(h) < 2 {
			t.Fatalf("node %d: history too short: %v", i, h)
		}
		// First transition: entering A₀'s waiting phase at wake-up.
		if h[0].Phase != core.PhaseWaiting || h[0].Class != 0 {
			t.Errorf("node %d: first transition %v", i, h[0])
		}
		// Last transition: the irrevocable decision, matching the
		// engine's decide slot and the final color.
		last := h[len(h)-1]
		if last.Phase != core.PhaseColored || last.Class != v.Color() {
			t.Errorf("node %d: last transition %v, color %d", i, last, v.Color())
		}
		if last.Slot != res.DecideSlot[i] {
			t.Errorf("node %d: decided at %d per history, %d per engine", i, last.Slot, res.DecideSlot[i])
		}
		// Slots are non-decreasing, strings render.
		prev := int64(-1)
		for _, tr := range h {
			if tr.Slot < prev {
				t.Fatalf("node %d: history out of order: %v", i, h)
			}
			prev = tr.Slot
			if tr.String() == "" {
				t.Error("empty transition string")
			}
		}
		// Leaders go A₀(wait) → A₀(active) → C₀; non-leaders pass
		// through R exactly once per leader association.
		if v.IsLeader() {
			for _, tr := range h {
				if tr.Phase == core.PhaseRequest {
					t.Errorf("node %d: leader entered R: %v", i, h)
				}
			}
		} else {
			sawRequest := false
			for _, tr := range h {
				if tr.Phase == core.PhaseRequest {
					sawRequest = true
				}
			}
			if !sawRequest {
				t.Errorf("node %d: non-leader never entered R: %v", i, h)
			}
		}
	}
}

func TestHistoryDisabledByDefault(t *testing.T) {
	v := core.NewNode(0, radio.NodeRand(1, 0), core.Practical(16, 4, 2, 4), core.Ablation{})
	v.Start(0)
	for s := int64(1); s < 100; s++ {
		v.Send(s)
	}
	if v.History() != nil {
		t.Error("history recorded without EnableHistory")
	}
}
