package experiment

import (
	"fmt"
	"io"

	"radiocolor/internal/stats"
)

// Entry couples an experiment id with its generator.
type Entry struct {
	// ID is the experiment identifier used in DESIGN.md/EXPERIMENTS.md.
	ID string
	// Reproduces states which part of the paper the experiment covers.
	Reproduces string
	// Run generates the experiment's table.
	Run func(Options) *stats.Table
}

// Registry lists all experiments in suite order.
var Registry = []Entry{
	{"E1", "Fig. 1 / Sect. 2: κ₁, κ₂ across graph families", E1Kappa},
	{"E2", "Theorems 2 & 5: correctness and completeness", E2Correctness},
	{"E3", "Theorem 3 / Corollary 2: time linear in Δ", E3TimeVsDelta},
	{"E4", "Theorem 3 / Corollary 2: time logarithmic in n", E4TimeVsN},
	{"E5", "Theorem 5 / Corollary 2: O(Δ) colors", E5Colors},
	{"E6", "Theorem 4: locality of color assignment", E6Locality},
	{"E7", "Sect. 4: small constants suffice in random networks", E7ParamSweep},
	{"E8", "Sect. 3: comparison vs Busch-style / naive / message-passing", E8Baselines},
	{"E9", "Sect. 2: arbitrary wake-up distributions", E9Wakeup},
	{"E10", "Lemma 9 / Corollary 3: unit ball graphs, doubling dimension", E10UnitBall},
	{"E11", "Sect. 4: ablations (cascading resets, starvation)", E11Ablation},
	{"E12", "Sect. 2 / Corollary 1: message size and color windows", E12Messages},
	{"E13", "Extension (introduction): distance-2 coloring for collision-free TDMA", E13Distance2},
	{"E14", "Extension (Sect. 6 future work): local degree estimation instead of Δ", E14AdaptiveDelta},
	{"E15", "Extension (Sect. 2): random identifiers from [1..n³]", E15RandomIDs},
	{"E16", "Extension: robustness to message loss beyond the model", E16MessageLoss},
	{"E17", "Sect. 2 remark: non-aligned slot boundaries", E17Unaligned},
	{"E18", "Related work [13, 21]: MIS/clustering substructure from scratch", E18MISFromScratch},
	{"E19", "Extension: post-initialization color compaction", E19ColorReduction},
	{"E20", "Extension: capture effect (deviation above the model)", E20CaptureEffect},
	{"E21", "Sect. 2: multiple channels ([13, 14] assumption) vs the single-channel model", E21MultiChannel},
	{"E22", "Introduction end-to-end: data collection over the coloring-derived TDMA", E22DataCollection},
	{"E23", "Sect. 2 stress test: adversarial wake-up schedule search", E23AdversarySearch},
	{"E24", "Extension: fault injection — loss sweep with crashes, graceful degradation", E24FaultInjection},
	{"E25", "Extension: reception models — graph rule vs SINR vs multi-channel", E25CrossModel},
	{"E26", "Extension: tiled cache-blocked slot kernel vs the untiled loop, bit-identity checked", E26TiledKernel},
	{"E27", "Extension: dynamic topology — recolor after perturbation vs cold start, with CdS baseline", E27RecolorChurn},
}

// Lookup finds an experiment by id, or nil.
func Lookup(id string) *Entry {
	for i := range Registry {
		if Registry[i].ID == id {
			return &Registry[i]
		}
	}
	return nil
}

// RunAll executes every experiment and renders the tables to w.
func RunAll(w io.Writer, o Options) error {
	for _, e := range Registry {
		if _, err := fmt.Fprintf(w, "%s — %s\n", e.ID, e.Reproduces); err != nil {
			return err
		}
		t := e.Run(o)
		if err := t.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
