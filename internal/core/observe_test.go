package core

import (
	"testing"

	"radiocolor/internal/graph"
	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
)

// TestPhaseEnumPinned locks the numeric agreement between core.Phase and
// obs.Phase that ObservePhases' integer cast relies on. If either enum
// gains, loses or reorders a value, this fails before any trace does.
func TestPhaseEnumPinned(t *testing.T) {
	pairs := []struct {
		c Phase
		o obs.Phase
	}{
		{PhaseAsleep, obs.PhaseAsleep},
		{PhaseWaiting, obs.PhaseWaiting},
		{PhaseActive, obs.PhaseActive},
		{PhaseRequest, obs.PhaseRequest},
		{PhaseColored, obs.PhaseColored},
	}
	if len(pairs) != int(obs.NumPhases) {
		t.Fatalf("obs.NumPhases = %d, core has %d phases", obs.NumPhases, len(pairs))
	}
	for _, p := range pairs {
		if uint8(p.c) != uint8(p.o) {
			t.Errorf("core %v = %d but obs %v = %d", p.c, uint8(p.c), p.o, uint8(p.o))
		}
		if p.c.String() != p.o.String() {
			t.Errorf("name mismatch: core %q vs obs %q", p.c.String(), p.o.String())
		}
	}
}

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Build()
}

// TestObservePhases runs a real coloring on a small clique and checks
// the phase hook delivers a trajectory consistent with the state
// machine: every node starts waiting, every node ends colored, and the
// collectors' terminal occupancy agrees.
func TestObservePhases(t *testing.T) {
	const n = 6
	g := clique(n)
	k := g.Kappa(graph.KappaOptions{Budget: 200_000, MaxNeighborhood: 160})
	par := Practical(n, g.MaxDegree(), k.K1, k.K2)
	nodes, protos := Nodes(n, 42, par, Ablation{})
	tl := obs.NewTimeline(n, 0)
	tr := obs.NewTracer(0, nil, obs.KindPhase)
	met := obs.NewMetrics()
	ObservePhases(nodes, &obs.Collector{Metrics: met, Tracer: tr, Timeline: tl})
	res, err := radio.Run(radio.Config{
		G:         g,
		Protocols: protos,
		Wake:      radio.WakeSynchronous(n),
		MaxSlots:  3_000_000,
		NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("run did not finish: %v", res)
	}

	// Every node's first transition is into waiting (A₀); its last into
	// colored.
	first := map[int32]obs.Phase{}
	last := map[int32]obs.Phase{}
	for _, e := range tr.Events() {
		if _, ok := first[e.Node]; !ok {
			first[e.Node] = e.Phase
		}
		last[e.Node] = e.Phase
	}
	if len(first) != n {
		t.Fatalf("saw transitions for %d nodes, want %d", len(first), n)
	}
	for id := int32(0); id < n; id++ {
		if first[id] != obs.PhaseWaiting {
			t.Errorf("node %d first transition to %v, want waiting", id, first[id])
		}
		if last[id] != obs.PhaseColored {
			t.Errorf("node %d last transition to %v, want colored", id, last[id])
		}
	}

	// Metrics phase gauges: PhaseChange moves -1/+1 per transition, so
	// the gauge sums to zero (the initial asleep population was never
	// added) and colored holds all n arrivals.
	s := met.Snapshot()
	if s.PhaseNodes[obs.PhaseColored] != n {
		t.Errorf("colored gauge = %d, want %d", s.PhaseNodes[obs.PhaseColored], n)
	}
	var total int64
	for _, c := range s.PhaseNodes {
		total += c
	}
	if total != 0 {
		t.Errorf("phase gauge sum = %d, want 0", total)
	}

	// Timeline terminal occupancy: all nodes entered colored exactly once.
	ph := tl.Phases()
	if ph[obs.PhaseColored].Entries != int64(n) {
		t.Errorf("timeline colored entries = %d, want %d", ph[obs.PhaseColored].Entries, n)
	}
}

// TestObservePhasesNop checks that an empty collector installs no hook.
func TestObservePhasesNop(t *testing.T) {
	nodes, _ := Nodes(2, 1, Practical(2, 2, 1, 1), Ablation{})
	ObservePhases(nodes, nil)
	ObservePhases(nodes, &obs.Collector{})
	for i, v := range nodes {
		if v.phaseHook != nil {
			t.Errorf("node %d got a hook from an empty collector", i)
		}
	}
}
