package topology

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"radiocolor/internal/churn"
)

// Mobility-trace serialization. A trace stores a churn.Schedule — the
// declarative join/leave/waypoint script of a dynamic-topology run — so
// that perturbation experiments are reproducible outside this process,
// exactly as WriteDeployment does for static geometry:
//
//	trace <name-with-no-spaces-or-quoted>
//	seed <n>                  (omitted when 0)
//	every <slots>             (omitted when 0, i.e. the default cadence)
//	repair <mode>             (omitted for the default retract mode)
//	joins <count>             (omitted when there are none)
//	<node> <slot>
//	...
//	leaves <count>            (omitted when there are none)
//	<node> <slot>
//	...
//	waypoints <count>         (omitted when there are none)
//	<node> <slot> <x> <y>
//	...
//
// Blank lines and '#' comments are skipped anywhere. Every malformed
// line is rejected with its position (the entry index within its
// section), never silently dropped: a trace drives topology mutation
// mid-run, so a misread line would quietly change which nodes churn.

// Trace is a named mobility/churn schedule, the dynamic counterpart of
// Deployment.
type Trace struct {
	// Name labels the trace ("unnamed" when empty on write).
	Name string
	// Schedule is the churn script the trace stores. Never nil after a
	// successful ReadTrace; an empty schedule (no events) is valid and
	// round-trips to a header-only file.
	Schedule *churn.Schedule
}

// WriteTrace serializes tr.
func WriteTrace(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	name := tr.Name
	if name == "" {
		name = "unnamed"
	}
	s := tr.Schedule
	if s == nil {
		s = &churn.Schedule{}
	}
	if _, err := fmt.Fprintf(bw, "trace %q\n", name); err != nil {
		return err
	}
	if s.Seed != 0 {
		if _, err := fmt.Fprintf(bw, "seed %d\n", s.Seed); err != nil {
			return err
		}
	}
	if s.Every != 0 {
		if _, err := fmt.Fprintf(bw, "every %d\n", s.Every); err != nil {
			return err
		}
	}
	if s.Repair != churn.RepairRetract {
		if _, err := fmt.Fprintf(bw, "repair %s\n", s.Repair); err != nil {
			return err
		}
	}
	writeEvents := func(kind string, evs []churn.Event) error {
		if len(evs) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(bw, "%s %d\n", kind, len(evs)); err != nil {
			return err
		}
		for _, e := range evs {
			if _, err := fmt.Fprintf(bw, "%d %d\n", e.Node, e.At); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeEvents("joins", s.Joins); err != nil {
		return err
	}
	if err := writeEvents("leaves", s.Leaves); err != nil {
		return err
	}
	if len(s.Waypoints) > 0 {
		if _, err := fmt.Fprintf(bw, "waypoints %d\n", len(s.Waypoints)); err != nil {
			return err
		}
		for _, wp := range s.Waypoints {
			if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", wp.Node, wp.At, wp.X, wp.Y); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadTrace parses the format written by WriteTrace. The returned
// schedule passes churn (*Schedule).Validate(0); node ranges against a
// concrete graph are checked later, at compile time.
func ReadTrace(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	tr := &Trace{Schedule: &churn.Schedule{}}
	s := tr.Schedule

	readLine := func() (string, error) {
		for {
			line, err := br.ReadString('\n')
			line = strings.TrimSpace(line)
			if err != nil && line == "" {
				return "", err
			}
			if line == "" || line[0] == '#' {
				if err != nil {
					return "", err
				}
				continue
			}
			return line, nil
		}
	}

	line, err := readLine()
	if err != nil {
		return nil, fmt.Errorf("topology: missing trace header: %w", err)
	}
	if _, err := fmt.Sscanf(line, "trace %q", &tr.Name); err != nil {
		return nil, fmt.Errorf("topology: bad trace header %q: %w", line, err)
	}
	if tr.Name == "" {
		// Write normalizes an empty name the same way, so accepted
		// traces always round-trip exactly.
		tr.Name = "unnamed"
	}

	// parseInt64 rejects the junk Sscanf tolerates (trailing garbage).
	parseInt64 := func(f string) (int64, error) { return strconv.ParseInt(f, 10, 64) }

	readEvents := func(kind string, count int) ([]churn.Event, error) {
		if count == 0 {
			// An explicit empty section reads back as nil, matching the
			// omitted-section form Write produces.
			return nil, nil
		}
		evs := make([]churn.Event, count)
		for i := range evs {
			line, err = readLine()
			if err != nil {
				return nil, fmt.Errorf("topology: truncated %s: %w", kind, err)
			}
			fields := strings.Fields(line)
			if len(fields) != 2 {
				return nil, fmt.Errorf("topology: %s entry %d: want `<node> <slot>`, got %q", kind, i, line)
			}
			node, errN := parseInt64(fields[0])
			at, errA := parseInt64(fields[1])
			if errN != nil || errA != nil {
				return nil, fmt.Errorf("topology: %s entry %d: bad line %q", kind, i, line)
			}
			if node < 0 || node > maxReadItems {
				return nil, fmt.Errorf("topology: %s entry %d: node %d out of range", kind, i, node)
			}
			if at < 0 {
				return nil, fmt.Errorf("topology: %s entry %d: negative slot %d", kind, i, at)
			}
			evs[i] = churn.Event{Node: int(node), At: at}
		}
		return evs, nil
	}

	// Optional lines and sections, each at most once, in any order.
	seen := map[string]bool{}
	for {
		line, err = readLine()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("topology: reading trace: %w", err)
		}
		fields := strings.Fields(line)
		key := fields[0]
		if seen[key] {
			return nil, fmt.Errorf("topology: duplicate %q section in trace", key)
		}
		seen[key] = true
		if len(fields) != 2 {
			return nil, fmt.Errorf("topology: bad trace line %q", line)
		}
		switch key {
		case "seed":
			if s.Seed, err = parseInt64(fields[1]); err != nil {
				return nil, fmt.Errorf("topology: bad seed line %q", line)
			}
		case "every":
			if s.Every, err = parseInt64(fields[1]); err != nil || s.Every < 0 {
				return nil, fmt.Errorf("topology: bad every line %q", line)
			}
		case "repair":
			if s.Repair, err = churn.ParseRepairMode(fields[1]); err != nil {
				return nil, fmt.Errorf("topology: bad repair line %q: %w", line, err)
			}
		case "joins", "leaves":
			count, errC := strconv.Atoi(fields[1])
			if errC != nil || count < 0 || count > maxReadItems {
				return nil, fmt.Errorf("topology: bad %s header %q", key, line)
			}
			evs, err := readEvents(key, count)
			if err != nil {
				return nil, err
			}
			if key == "joins" {
				s.Joins = evs
			} else {
				s.Leaves = evs
			}
		case "waypoints":
			count, errC := strconv.Atoi(fields[1])
			if errC != nil || count < 0 || count > maxReadItems {
				return nil, fmt.Errorf("topology: bad waypoints header %q", line)
			}
			if count == 0 {
				continue
			}
			s.Waypoints = make([]churn.Waypoint, count)
			for i := range s.Waypoints {
				line, err = readLine()
				if err != nil {
					return nil, fmt.Errorf("topology: truncated waypoints: %w", err)
				}
				f := strings.Fields(line)
				if len(f) != 4 {
					return nil, fmt.Errorf("topology: waypoint %d: want `<node> <slot> <x> <y>`, got %q", i, line)
				}
				node, errN := parseInt64(f[0])
				at, errA := parseInt64(f[1])
				x, errX := strconv.ParseFloat(f[2], 64)
				y, errY := strconv.ParseFloat(f[3], 64)
				if errN != nil || errA != nil || errX != nil || errY != nil {
					return nil, fmt.Errorf("topology: waypoint %d: bad line %q", i, line)
				}
				if node < 0 || node > maxReadItems {
					return nil, fmt.Errorf("topology: waypoint %d: node %d out of range", i, node)
				}
				// ParseFloat accepts NaN and ±Inf, but a non-finite target
				// would corrupt every interpolated position after it.
				if !isFinite(x) || !isFinite(y) {
					return nil, fmt.Errorf("topology: waypoint %d has non-finite coordinates %q", i, line)
				}
				s.Waypoints[i] = churn.Waypoint{Node: int(node), At: at, X: x, Y: y}
			}
		default:
			return nil, fmt.Errorf("topology: unknown trace section %q", line)
		}
	}
	if err := s.Validate(0); err != nil {
		return nil, fmt.Errorf("topology: invalid trace: %w", err)
	}
	return tr, nil
}
