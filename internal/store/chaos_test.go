package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"radiocolor/internal/fault"
	"radiocolor/internal/obs"
)

// TestChaosTwoReplicasCrashRestart is the control-plane chaos test the
// issue asks for: two replicas share one store directory and chew
// through a 50-job backlog while a fault.Profile — the same
// seed-deterministic crash/restart machinery the simulator uses on
// radio nodes — schedules each replica to die mid-job and come back.
// A "crash" abandons the claimed job without finishing it and closes
// the store handle (the flock and page cache survive exactly as they
// would a SIGKILL); the victim's lease expires and the job is
// reclaimed, by the survivor or by the rebooted victim itself.
//
// Invariants asserted: every job reaches done (zero lost), every job
// has exactly one committed result (zero double-commits — losers of a
// lease race get ErrLeaseLost and discard), and no job is ever leased
// to two live replicas at once (zero double-executions).
func TestChaosTwoReplicasCrashRestart(t *testing.T) {
	const (
		jobs     = 50
		replicas = 2
		// Generous relative to a work quantum so a descheduled-but-live
		// replica is not mistaken for a dead one on a loaded CI box.
		ttl = 400 * time.Millisecond
	)
	dir := t.TempDir()

	seed := openFile(t, dir, FileOptions{})
	for i := 0; i < jobs; i++ {
		mustCreate(t, seed, &Job{Spec: json.RawMessage(fmt.Sprintf(`{"cell":%d}`, i))})
	}
	seed.Close()

	// The crash schedule: replica r crashes at its claimAt[r]-th claim
	// and reboots a moment later. Slots are claim-loop iterations.
	prof := fault.Profile{
		Seed: 42,
		Crashes: []fault.Crash{
			{Node: 0, At: 6, Restart: 9},
			{Node: 1, At: 14, Restart: 18},
		},
	}
	inj, err := prof.Compile(replicas)
	if err != nil {
		t.Fatal(err)
	}
	crashAt := make(map[int]int64)
	restartGap := make(map[int]int64)
	for _, ev := range inj.Events() {
		switch ev.Kind {
		case fault.EventCrash:
			crashAt[int(ev.Node)] = ev.Slot
		case fault.EventRestart:
			restartGap[int(ev.Node)] = ev.Slot - crashAt[int(ev.Node)]
		}
	}
	if len(crashAt) != replicas {
		t.Fatalf("expected a crash per replica, got %v", crashAt)
	}

	var (
		mu      sync.Mutex
		commits = make(map[string]int) // job id → successful Finish calls
		leased  = make(map[string]int) // job id → live replica holding it
	)
	ctrl := obs.NewControl()

	var wg sync.WaitGroup
	errs := make(chan error, replicas)
	for r := 0; r < replicas; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			owner := fmt.Sprintf("replica-%d", r)
			s, err := OpenFile(dir, FileOptions{Control: ctrl})
			if err != nil {
				errs <- err
				return
			}
			defer func() { s.Close() }()
			var iter, crashed int64
			deadline := time.Now().Add(30 * time.Second)
			for {
				if time.Now().After(deadline) {
					errs <- fmt.Errorf("%s: backlog not drained in time", owner)
					return
				}
				iter++
				j, err := s.Claim(owner, time.Now(), ttl)
				if err != nil {
					errs <- fmt.Errorf("%s claim: %w", owner, err)
					return
				}
				if j == nil {
					c, err := s.Counts()
					if err != nil {
						errs <- err
						return
					}
					if c[StateQueued] == 0 && c[StateRunning] == 0 {
						return // backlog drained
					}
					// A dead replica's lease hasn't expired yet.
					time.Sleep(ttl / 4)
					continue
				}

				mu.Lock()
				if holder, busy := leased[j.ID]; busy {
					mu.Unlock()
					errs <- fmt.Errorf("%s claimed %s already live on replica-%d", owner, j.ID, holder)
					return
				}
				leased[j.ID] = r
				mu.Unlock()
				release := func() {
					mu.Lock()
					delete(leased, j.ID)
					mu.Unlock()
				}

				if crashed < 2 && iter == crashAt[r] {
					// Fail-stop: abandon the lease, drop the handle, come
					// back after the profile's restart gap.
					crashed++
					release()
					s.Close()
					time.Sleep(time.Duration(restartGap[r]) * 40 * time.Millisecond)
					s, err = OpenFile(dir, FileOptions{Control: ctrl})
					if err != nil {
						errs <- err
						return
					}
					continue
				}

				// "Run" the job: a couple of work quanta with heartbeats.
				lost := false
				for q := 0; q < 2; q++ {
					time.Sleep(5 * time.Millisecond)
					if _, err := s.Heartbeat(j.ID, owner, time.Now(), ttl); err != nil {
						lost = true // lease expired under us; discard
						break
					}
				}
				if lost {
					release()
					continue
				}
				res := json.RawMessage(fmt.Sprintf(`{"by":%q}`, owner))
				err = s.Finish(j.ID, owner, StateDone, res, "", time.Now())
				release()
				if err == nil {
					mu.Lock()
					commits[j.ID]++
					mu.Unlock()
				}
				// ErrLeaseLost means another replica reclaimed and our
				// result is discarded — the designed race outcome.
			}
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	final := openFile(t, dir, FileOptions{})
	all, err := final.List(Filter{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != jobs {
		t.Fatalf("lost records: %d of %d", len(all), jobs)
	}
	for _, j := range all {
		if j.State != StateDone {
			t.Errorf("job %s ended %s (attempts %d)", j.ID, j.State, j.Attempts)
		}
		if n := commits[j.ID]; n != 1 {
			t.Errorf("job %s committed %d times", j.ID, n)
		}
		if len(j.Result) == 0 {
			t.Errorf("job %s has no result", j.ID)
		}
	}
	snap := ctrl.Snapshot()
	if snap.Claims < jobs {
		t.Errorf("claims %d < jobs %d", snap.Claims, jobs)
	}
	if snap.Reclaims == 0 {
		t.Error("chaos run produced no lease reclaims — crashes did not bite")
	}
}
