package radio

import (
	"strings"
	"testing"
)

func TestTraceRecordsInOrder(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true}, nil, {true, true}}, WakeSynchronous(3))
	tr := &Trace{}
	cfg.Observer = tr
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	prev := int64(-1)
	for _, e := range events {
		if e.Slot < prev {
			t.Fatalf("events out of order: %v", events)
		}
		prev = e.Slot
		if e.String() == "" {
			t.Error("empty event string")
		}
	}
	// Slot 0: nodes 0 and 2 transmit; node 1 collides. Decide events for
	// all 3 nodes are present.
	var tx, coll, decide int
	for _, e := range events {
		switch e.Kind {
		case EventTransmit:
			tx++
		case EventCollision:
			coll++
		case EventDecide:
			decide++
		}
	}
	if tx != 3 || coll != 1 || decide != 3 {
		t.Errorf("tx=%d coll=%d decide=%d", tx, coll, decide)
	}
	if tr.Total() != int64(len(events)) {
		t.Errorf("Total=%d, retained=%d", tr.Total(), len(events))
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := &Trace{Cap: 3}
	for i := 0; i < 10; i++ {
		tr.OnDecide(int64(i), NodeID(i))
	}
	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d, want 3", len(events))
	}
	if events[0].Slot != 7 || events[2].Slot != 9 {
		t.Errorf("ring kept wrong tail: %v", events)
	}
	if tr.Total() != 10 {
		t.Errorf("Total = %d", tr.Total())
	}
}

func TestTraceKindFilter(t *testing.T) {
	tr := &Trace{Kinds: []EventKind{EventDecide}}
	tr.OnTransmit(0, 1, &testMsg{from: 1})
	tr.OnDeliver(0, 2, &testMsg{from: 1})
	tr.OnCollision(0, 3, 2)
	tr.OnDecide(1, 4)
	if tr.Total() != 1 || len(tr.Events()) != 1 || tr.Events()[0].Kind != EventDecide {
		t.Errorf("filter failed: %v", tr.Events())
	}
}

func TestTraceDump(t *testing.T) {
	tr := &Trace{}
	tr.OnDeliver(5, 2, &testMsg{from: 1, val: 9})
	var b strings.Builder
	if err := tr.Dump(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "rx") || !strings.Contains(out, "1 events total") {
		t.Errorf("dump = %q", out)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventTransmit; k <= EventDecide; k++ {
		if k.String() == "" {
			t.Errorf("kind %d empty", k)
		}
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind must print")
	}
}

func TestPerNodeEnergy(t *testing.T) {
	r := &Result{
		Slots:     100,
		WakeSlot:  []int64{0, 40, 200},
		PerNodeTx: []int64{10, 0, 0},
	}
	m := EnergyModel{TxCost: 2, ListenCost: 1}
	e := r.PerNodeEnergy(m)
	// Node 0: 10 tx + 90 listen = 110; node 1: 60 listen; node 2: never
	// woke (wake after end) → 0.
	if e[0] != 110 || e[1] != 60 || e[2] != 0 {
		t.Errorf("energy = %v", e)
	}
	if r.TotalEnergy(m) != 170 {
		t.Errorf("total = %v", r.TotalEnergy(m))
	}
	if d := DefaultEnergyModel(); d.TxCost <= d.ListenCost || d.ListenCost <= 0 {
		t.Errorf("default model odd: %+v", d)
	}
}

func TestEnergyOnRealRun(t *testing.T) {
	g := line(4)
	_, cfg := buildScripted(g, [][]bool{{true, true}, nil, nil, {true}}, WakeUniform(4, 3, 9))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := res.PerNodeEnergy(DefaultEnergyModel())
	for v, x := range e {
		if x < 0 {
			t.Errorf("negative energy at %d: %v", v, x)
		}
	}
	if res.TotalEnergy(DefaultEnergyModel()) <= 0 {
		t.Error("total energy non-positive")
	}
}
