package busch

import (
	"testing"

	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func colorsOf(nodes []*Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

func run(t *testing.T, d *topology.Deployment, seed int64, maxSlots int64) ([]*Node, *radio.Result) {
	t.Helper()
	par := DefaultParams(d.N(), d.G.MaxDegree())
	nodes, protos := Nodes(d.N(), seed, par)
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()), MaxSlots: maxSlots,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

func TestBuschColorsSmallUDG(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 1})
	nodes, res := run(t, d, 3, 5_000_000)
	if !res.AllDone {
		t.Fatalf("did not terminate in %d slots", res.Slots)
	}
	rep := verify.Check(d.G, colorsOf(nodes))
	if !rep.OK() {
		t.Fatalf("bad coloring: %v", rep)
	}
	// Colors are frame slots: bounded by frame length = 2Δ → O(Δ).
	if int(rep.MaxColor) >= 2*d.G.MaxDegree() {
		t.Errorf("color %d outside frame of %d", rep.MaxColor, 2*d.G.MaxDegree())
	}
}

func TestBuschColorsRing(t *testing.T) {
	d := topology.Ring(30)
	nodes, res := run(t, d, 5, 3_000_000)
	if !res.AllDone {
		t.Fatal("did not terminate")
	}
	if rep := verify.Check(d.G, colorsOf(nodes)); !rep.OK() {
		t.Fatalf("bad coloring: %v", rep)
	}
}

func TestBuschDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 40, Side: 4, Radius: 1.2, Seed: 2})
	a, _ := run(t, d, 7, 3_000_000)
	b, _ := run(t, d, 7, 3_000_000)
	for i := range a {
		if a[i].Color() != b[i].Color() {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}

func TestBuschSlowerThanLinearInDelta(t *testing.T) {
	// The comparator's verification window alone is Θ(Δ² log n) slots;
	// doubling Δ must much more than double completion time.
	small := topology.Clique(6)
	large := topology.Clique(12)
	_, resS := run(t, small, 11, 20_000_000)
	_, resL := run(t, large, 11, 20_000_000)
	if !resS.AllDone || !resL.AllDone {
		t.Fatalf("cliques did not terminate: %v / %v", resS.AllDone, resL.AllDone)
	}
	ts, tl := resS.MaxLatency(), resL.MaxLatency()
	if tl < 3*ts {
		t.Errorf("T(Δ=12) = %d vs T(Δ=6) = %d: expected superlinear growth", tl, ts)
	}
}

func TestBuschParamsClamped(t *testing.T) {
	v := New(0, radio.NodeRand(1, 0), Params{})
	if v.frame < 2 || v.par.QuietFrames < 1 || v.par.ClaimDuty < 1 {
		t.Errorf("clamping failed: %+v frame=%d", v.par, v.frame)
	}
	if DefaultParams(10, 0).Delta != 2 {
		t.Error("DefaultParams must clamp Delta")
	}
}

func TestBuschMessageBits(t *testing.T) {
	c := &claim{From: 3, Slot: 9}
	if c.Sender() != 3 {
		t.Error("Sender wrong")
	}
	if b := c.Bits(1000); b <= 0 || b > 80 {
		t.Errorf("Bits = %d", b)
	}
	if b := c.Bits(1); b <= 0 {
		t.Errorf("Bits(1) = %d", b)
	}
}

func TestBuschRedrawsCounted(t *testing.T) {
	// In a clique, slot conflicts are guaranteed initially with frame 2Δ
	// and 12 nodes; someone must redraw.
	d := topology.Clique(12)
	nodes, res := run(t, d, 13, 20_000_000)
	if !res.AllDone {
		t.Fatal("did not terminate")
	}
	var total int64
	for _, v := range nodes {
		total += v.Redraws()
	}
	if total == 0 {
		t.Log("no redraws occurred (unlikely but possible); informational only")
	}
}

func TestLog2Ceil(t *testing.T) {
	cases := []struct{ n, want int }{{1, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}}
	for _, c := range cases {
		if got := log2ceil(c.n); got != c.want {
			t.Errorf("log2ceil(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
