package verify_test

import (
	"fmt"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/radio"
	"radiocolor/internal/verify"
)

// TestTiledSurvivorsProperlyColoredUnderFaults extends the graceful-
// degradation property to the tiled slot kernel: under composed link
// loss, random crash/restart schedules AND a duty-cycled jammer, a
// tiled parallel run on every wakeup schedule must still never leave
// two live adjacent nodes sharing a color. The tiled engine is pinned
// bit-identical to the untiled one by the differential suite; this
// test closes the loop end-to-end through the real protocol and the
// survivor checker, so a partitioning bug that somehow slipped the
// differentials would still surface as a hard violation here.
func TestTiledSurvivorsProperlyColoredUnderFaults(t *testing.T) {
	g := propertyGraph(t)
	par := propertyParams(g)
	const budget = 60_000
	loss := 0.05
	for _, pat := range radio.WakePatterns {
		pat := pat
		t.Run(fmt.Sprintf("%s/tiled", pat.Name), func(t *testing.T) {
			t.Parallel()
			seed := int64(43)
			prof := &fault.Profile{
				Seed:    seed,
				Loss:    loss,
				Crashes: randomCrashes(g.N(), budget, seed),
				Jammers: []fault.Jammer{
					{Nodes: []int{2, 9, 31}, From: 500, Until: 20_000, Period: 32, Duty: 8, Prob: 0.7},
				},
			}
			inj, err := prof.Compile(g.N())
			if err != nil {
				t.Fatal(err)
			}
			nodes, protos := core.Nodes(g.N(), seed, par, core.Ablation{})
			cfg := radio.Config{
				G: g, Protocols: protos,
				Wake:     pat.Make(g.N(), par.WaitSlots(), seed),
				MaxSlots: budget, NEstimate: par.N,
				Faults:  inj,
				Workers: 4, Tiles: 4,
			}
			res, err := radio.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			colors := make([]int32, len(nodes))
			for i, v := range nodes {
				colors[i] = v.Color()
			}
			rep := verify.CheckSurvivors(g, colors, verify.DownSet(g.N(), res.Down))
			if rep.Hard() {
				t.Errorf("hard violations under tiled faulted run: %v\n%s", rep.HardViolations, rep)
			}
			// Vacuity guards: every composed fault class must have fired,
			// and degradation must stay graceful.
			if res.Crashes == 0 || res.Lost == 0 || res.Jammed == 0 {
				t.Fatalf("faults injected nothing (crashes=%d lost=%d jammed=%d); test is vacuous",
					res.Crashes, res.Lost, res.Jammed)
			}
			if rep.Survivors == 0 || rep.SurvivorsColored == 0 {
				t.Fatalf("nobody survived/colored (%s); test is vacuous", rep)
			}
			if rep.SurvivorsColored*2 < rep.Survivors {
				t.Errorf("only %d of %d survivors colored — degradation is not graceful (%s)",
					rep.SurvivorsColored, rep.Survivors, rep)
			}
		})
	}
}
