package radiocolor

import (
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
)

// Support for Options.Tiling: the relabeling pass that makes the tiled
// kernel's contiguous-range tiles spatially coherent, and the adapters
// that keep the relabeling invisible — every event and every Outcome
// field is mapped back to the caller's node ids before anyone sees it.
// The permutation-differential suite in internal/radio pins the
// underlying identity: a tiled run on the relabeled graph, mapped back
// through the inverse permutation, is byte-identical to an untiled run
// of the same execution.

// tilingPermutation picks the locality order for a tiled run: Hilbert
// curve when node positions are known (geometric entry points), BFS
// order on the bare graph otherwise.
func tilingPermutation(g *graph.Graph, xs, ys []float64) graph.Permutation {
	if xs != nil {
		return graph.HilbertOrder(xs, ys)
	}
	return graph.BFSOrder(g)
}

// invObserver maps the node ids of every engine event back through a
// relabeling's inverse before handing them to the inner observer, so
// collectors, tracers and caller observers all speak original ids.
type invObserver struct {
	inner radio.Observer
	inv   []int32
}

func (o invObserver) node(v radio.NodeID) radio.NodeID { return radio.NodeID(o.inv[v]) }

// invMsg re-labels a message's sender; all other message behavior
// (payload size accounting) passes through.
type invMsg struct {
	radio.Message
	sender radio.NodeID
}

func (m invMsg) Sender() radio.NodeID { return m.sender }

func (o invObserver) mapMsg(msg radio.Message) radio.Message {
	if msg == nil {
		return nil
	}
	return invMsg{Message: msg, sender: o.node(msg.Sender())}
}

func (o invObserver) OnSlot(slot int64)                 { o.inner.OnSlot(slot) }
func (o invObserver) OnWake(slot int64, v radio.NodeID) { o.inner.OnWake(slot, o.node(v)) }
func (o invObserver) OnTransmit(slot int64, from radio.NodeID, msg radio.Message) {
	o.inner.OnTransmit(slot, o.node(from), o.mapMsg(msg))
}
func (o invObserver) OnDeliver(slot int64, to radio.NodeID, msg radio.Message) {
	o.inner.OnDeliver(slot, o.node(to), o.mapMsg(msg))
}
func (o invObserver) OnCollision(slot int64, at radio.NodeID, transmitters int) {
	o.inner.OnCollision(slot, o.node(at), transmitters)
}
func (o invObserver) OnDecide(slot int64, v radio.NodeID) {
	o.inner.OnDecide(slot, o.node(v))
}

// mapTiledResult rewrites a relabeled run's Result into original node
// ids: per-node arrays gathered through Forward, the down list mapped
// through Inverse (re-sorted ascending), scalar counters verbatim.
func mapTiledResult(res *radio.Result, p graph.Permutation) *radio.Result {
	n := len(p.Forward)
	mapped := *res
	mapped.WakeSlot = make([]int64, n)
	mapped.DecideSlot = make([]int64, n)
	mapped.PerNodeTx = make([]int64, n)
	for v := 0; v < n; v++ {
		mapped.WakeSlot[v] = res.WakeSlot[p.Forward[v]]
		mapped.DecideSlot[v] = res.DecideSlot[p.Forward[v]]
		mapped.PerNodeTx[v] = res.PerNodeTx[p.Forward[v]]
	}
	if len(res.Down) > 0 {
		down := make([]int32, len(res.Down))
		for i, v := range res.Down {
			down[i] = p.Inverse[v]
		}
		sortInt32Asc(down)
		mapped.Down = down
	}
	if len(res.Left) > 0 {
		left := make([]int32, len(res.Left))
		for i, v := range res.Left {
			left[i] = p.Inverse[v]
		}
		sortInt32Asc(left)
		mapped.Left = left
	}
	return &mapped
}

func sortInt32Asc(xs []int32) {
	// Insertion sort: down lists are tiny (crashed nodes only).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
