package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt(2) // population std of 1..5
	if math.Abs(s.Std-want) > 1e-9 {
		t.Errorf("std = %v, want %v", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q, want float64
	}{{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3, 20}, {-1, 10}, {2, 40}}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("singleton quantile = %v", got)
	}
}

func TestQuantilePanicsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{5, 7, 9, 11} // y = 3 + 2x
	f := LinearFit(x, y)
	if math.Abs(f.Slope-2) > 1e-9 || math.Abs(f.Intercept-3) > 1e-9 {
		t.Errorf("fit = %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-9 {
		t.Errorf("R² = %v, want 1", f.R2)
	}
}

func TestLinearFitNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 1; i <= 200; i++ {
		x = append(x, float64(i))
		y = append(y, 4+1.5*float64(i)+r.NormFloat64()*2)
	}
	f := LinearFit(x, y)
	if math.Abs(f.Slope-1.5) > 0.05 {
		t.Errorf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R² = %v", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	// Vertical data: all x equal → slope 0, intercept = mean.
	f := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3})
	if f.Slope != 0 || math.Abs(f.Intercept-2) > 1e-9 {
		t.Errorf("degenerate fit = %+v", f)
	}
	// Constant y → perfect fit with slope 0.
	f = LinearFit([]float64{1, 2, 3}, []float64{5, 5, 5})
	if f.Slope != 0 || f.R2 != 1 {
		t.Errorf("constant fit = %+v", f)
	}
}

func TestLinearFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LinearFit([]float64{1}, []float64{2})
}

func TestPowerFitRecoverExponent(t *testing.T) {
	for _, exp := range []float64{1, 2, 3} {
		var x, y []float64
		for i := 1; i <= 30; i++ {
			x = append(x, float64(i))
			y = append(y, 2.5*math.Pow(float64(i), exp))
		}
		got, r2 := PowerFit(x, y)
		if math.Abs(got-exp) > 1e-6 || r2 < 0.999 {
			t.Errorf("exponent %v: got %v (R²=%v)", exp, got, r2)
		}
	}
}

func TestPowerFitPanicsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PowerFit([]float64{0, 1}, []float64{1, 2})
}

func TestLogFit(t *testing.T) {
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, 7+3*math.Log(float64(i)))
	}
	f := LogFit(x, y)
	if math.Abs(f.Slope-3) > 1e-6 || math.Abs(f.Intercept-7) > 1e-6 {
		t.Errorf("log fit = %+v", f)
	}
}

func TestLogFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LogFit([]float64{-1, 1}, []float64{1, 2})
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0.1, 0.2, 0.9, 1.5, -3, 99}, 0, 1, 4)
	if h.Total() != 6 {
		t.Errorf("total = %d", h.Total())
	}
	// 0.1, 0.2 and clamped -3 land in bin 0; 0.9, clamped 1.5 and 99 in
	// bin 3.
	if h.Counts[0] != 3 || h.Counts[3] != 3 {
		t.Errorf("counts = %v", h.Counts)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewHistogram(nil, 1, 0, 3)
}

func TestFloatsAndMean(t *testing.T) {
	f := Floats([]int64{1, 2, 3})
	if len(f) != 3 || f[2] != 3 {
		t.Errorf("Floats = %v", f)
	}
	if Mean(f) != 2 {
		t.Errorf("Mean = %v", Mean(f))
	}
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	g := Floats([]int32{5})
	if g[0] != 5 {
		t.Error("int32 Floats broken")
	}
	h := Floats([]int{7})
	if h[0] != 7 {
		t.Error("int Floats broken")
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", 1)
	tb.AddRow("beta-long-name", 2.5)
	s := tb.String()
	if !strings.Contains(s, "== demo ==") || !strings.Contains(s, "beta-long-name") {
		t.Errorf("render:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("line count = %d:\n%s", len(lines), s)
	}
	// Alignment: the "value" column starts at the same offset in every
	// data row.
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x,y", `with "quote"`)
	tb.AddRow(1, 2)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "a,b\n\"x,y\",\"with \"\"quote\"\"\"\n1,2\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}

// Property: Summarize Min ≤ Median ≤ Max and Mean within [Min, Max].
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Mean >= s.Min-1e-6 && s.Mean <= s.Max+1e-6 && s.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
