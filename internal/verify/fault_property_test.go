package verify_test

import (
	"fmt"
	"math/rand"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// These property tests pin the graceful-degradation contract of the
// whole stack: under link loss and random crash schedules, across every
// wakeup schedule, the protocol may leave crashed or stuck nodes
// uncolored — but two LIVE adjacent nodes must never share a color.
// Theorem 2's independence argument does not rely on every node
// surviving, so a hard violation here is an algorithm bug no fault
// excuses.

// randomCrashes fail-stops ~10% of the nodes at random slots; half of
// the victims restart later. Deterministic in seed.
func randomCrashes(n int, budget int64, seed int64) []fault.Crash {
	rng := rand.New(rand.NewSource(seed))
	victims := rng.Perm(n)[:n/10+1]
	crashes := make([]fault.Crash, 0, len(victims))
	for i, v := range victims {
		at := rng.Int63n(budget / 2)
		c := fault.Crash{Node: v, At: at}
		if i%2 == 1 {
			c.Restart = at + 1 + rng.Int63n(budget/4)
		}
		crashes = append(crashes, c)
	}
	return crashes
}

func propertyGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return topology.UDGWithTargetDegree(60, 7, 23).G
}

func propertyParams(g *graph.Graph) core.Params {
	k := g.Kappa(graph.KappaOptions{Budget: 20_000, MaxNeighborhood: 60})
	return core.Practical(g.N(), g.MaxDegree(), k.K1, k.K2)
}

func TestSurvivorsProperlyColoredUnderFaults(t *testing.T) {
	g := propertyGraph(t)
	par := propertyParams(g)
	const budget = 60_000
	rates := []float64{0.01, 0.10}
	if testing.Short() {
		rates = rates[1:]
	}
	for _, pat := range radio.WakePatterns {
		for _, loss := range rates {
			pat, loss := pat, loss
			t.Run(fmt.Sprintf("%s/loss%g", pat.Name, loss), func(t *testing.T) {
				t.Parallel()
				seed := int64(41)
				prof := &fault.Profile{
					Seed:    seed,
					Loss:    loss,
					Crashes: randomCrashes(g.N(), budget, seed),
				}
				inj, err := prof.Compile(g.N())
				if err != nil {
					t.Fatal(err)
				}
				nodes, protos := core.Nodes(g.N(), seed, par, core.Ablation{})
				cfg := radio.Config{
					G: g, Protocols: protos,
					Wake:     pat.Make(g.N(), par.WaitSlots(), seed),
					MaxSlots: budget, NEstimate: par.N,
					Faults: inj,
				}
				res, err := radio.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				colors := make([]int32, len(nodes))
				for i, v := range nodes {
					colors[i] = v.Color()
				}
				rep := verify.CheckSurvivors(g, colors, verify.DownSet(g.N(), res.Down))
				if rep.Hard() {
					t.Errorf("loss=%g: hard violations (live adjacent nodes share a color): %v\n%s",
						loss, rep.HardViolations, rep)
				}
				// Guard against a vacuous pass: faults must have fired and
				// a meaningful share of survivors must actually hold colors.
				if res.Crashes == 0 || (loss > 0 && res.Lost == 0) {
					t.Fatalf("loss=%g: no faults injected (crashes=%d lost=%d); test is vacuous",
						loss, res.Crashes, res.Lost)
				}
				if rep.Survivors == 0 || rep.SurvivorsColored == 0 {
					t.Fatalf("loss=%g: nobody survived/colored (%s); test is vacuous", loss, rep)
				}
				if rep.SurvivorsColored*2 < rep.Survivors {
					t.Errorf("loss=%g: only %d of %d survivors colored — degradation is not graceful (%s)",
						loss, rep.SurvivorsColored, rep.Survivors, rep)
				}
			})
		}
	}
}
