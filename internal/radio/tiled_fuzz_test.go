package radio

import (
	"math/rand"
	"testing"

	"radiocolor/internal/graph"
)

// FuzzTilePartition fuzzes the tiled kernel's structural invariants on
// random graphs and tile counts: the contiguous-range partition covers
// every node exactly once, the binary-searched row splits classify each
// CSR entry on the correct side of the tile boundary, the cross-tile
// edge relation is symmetric (if u's row sees v as cross, v's row sees
// u as cross — the property the boundary exchange relies on to route
// every inter-tile reception exactly once), the activity-list
// segmentation agrees with the node→tile map, and the relabeling
// permutation the tiles are built on composes with its inverse to the
// identity.
func FuzzTilePartition(f *testing.F) {
	f.Add(uint16(1), uint8(1), int64(1), uint8(10))
	f.Add(uint16(50), uint8(7), int64(42), uint8(40))
	f.Add(uint16(63), uint8(8), int64(7), uint8(3))
	f.Add(uint16(64), uint8(8), int64(9), uint8(128))
	f.Add(uint16(200), uint8(3), int64(1234), uint8(20))
	f.Add(uint16(500), uint8(64), int64(-5), uint8(60))
	f.Fuzz(func(t *testing.T, nRaw uint16, tilesRaw uint8, seed int64, density uint8) {
		n := int(nRaw)%500 + 1
		tiles := int(tilesRaw)%n + 1
		p := float64(density) / 512

		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < p {
					b.AddEdge(i, j)
				}
			}
		}
		// Tile the graph under a random relabeling, like the production
		// path (relabel for locality, then partition contiguous ranges).
		fwd := make([]int32, n)
		for i, v := range r.Perm(n) {
			fwd[i] = int32(v)
		}
		perm, err := graph.NewPermutation(fwd)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if perm.Inverse[perm.Forward[v]] != int32(v) || perm.Forward[perm.Inverse[v]] != int32(v) {
				t.Fatalf("inverse∘perm != identity at node %d", v)
			}
		}
		g := perm.Apply(b.Build())
		csr := g.CSR()
		ts := newTileState(tiles, n, csr.Offsets[:n], csr.Offsets[1:], csr.Edges)

		if int(ts.size)*ts.tiles < n {
			t.Fatalf("tiles cover %d nodes, graph has %d", int(ts.size)*ts.tiles, n)
		}
		// Every node in exactly one tile, and every tile non-empty (the
		// constructor drops empty trailing tiles).
		counts := make([]int, ts.tiles)
		for v := 0; v < n; v++ {
			k := int(int32(v) / ts.size)
			if k < 0 || k >= ts.tiles {
				t.Fatalf("node %d maps to tile %d of %d", v, k, ts.tiles)
			}
			counts[k]++
		}
		total := 0
		for k, c := range counts {
			if c == 0 {
				t.Fatalf("tile %d is empty (%d tiles over %d nodes)", k, ts.tiles, n)
			}
			total += c
		}
		if total != n {
			t.Fatalf("partition covers %d of %d nodes", total, n)
		}

		// Row splits: [rowLo, rowHi) is exactly the intra-tile span of
		// each sorted row; everything outside is cross-tile, and the
		// cross relation is symmetric.
		for v := 0; v < n; v++ {
			kv := int32(v) / ts.size
			lo, hi := csr.Offsets[v], csr.Offsets[v+1]
			rlo, rhi := ts.rowLo[v], ts.rowHi[v]
			if rlo < lo || rhi < rlo || hi < rhi {
				t.Fatalf("node %d: row split [%d,%d) outside row [%d,%d)", v, rlo, rhi, lo, hi)
			}
			for i := lo; i < hi; i++ {
				u := csr.Edges[i]
				ku := u / ts.size
				intra := i >= rlo && i < rhi
				if intra != (ku == kv) {
					t.Fatalf("node %d (tile %d): neighbor %d (tile %d) at index %d classified intra=%v",
						v, kv, u, ku, i, intra)
				}
				if !intra {
					// Symmetry: u's row must classify v as cross too.
					j := lowerBound32(csr.Edges, csr.Offsets[u], csr.Offsets[u+1], int32(v))
					if j >= csr.Offsets[u+1] || csr.Edges[j] != int32(v) {
						t.Fatalf("edge (%d,%d) not symmetric in CSR", v, u)
					}
					if j >= ts.rowLo[u] && j < ts.rowHi[u] {
						t.Fatalf("edge (%d,%d) cross from %d but intra from %d", v, u, v, u)
					}
				}
			}
		}

		// Segmentation of a random ascending id list agrees with the
		// node→tile map: every id in segment k belongs to tile k.
		var list []int32
		for v := 0; v < n; v++ {
			if r.Intn(3) != 0 {
				list = append(list, int32(v))
			}
		}
		seg := make([]int, ts.tiles+1)
		ts.segment(list, seg)
		if seg[0] != 0 || seg[ts.tiles] != len(list) {
			t.Fatalf("segment bounds [%d,%d] don't span list of %d", seg[0], seg[ts.tiles], len(list))
		}
		for k := 0; k < ts.tiles; k++ {
			if seg[k] > seg[k+1] {
				t.Fatalf("segment %d bounds inverted: %d > %d", k, seg[k], seg[k+1])
			}
			for _, v := range list[seg[k]:seg[k+1]] {
				if v/ts.size != int32(k) {
					t.Fatalf("id %d (tile %d) landed in segment %d", v, v/ts.size, k)
				}
			}
		}
	})
}

// TestAutoTiles pins the auto selector's shape: one tile below the
// target tile size, linear growth, and the hard cap.
func TestAutoTiles(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1},
		{tileNodes - 1, 1},
		{tileNodes, 1},
		{4 * tileNodes, 4},
		{10_000_000, 10_000_000 / tileNodes},
		{maxTiles * tileNodes * 2, maxTiles},
	}
	for _, c := range cases {
		if got := AutoTiles(c.n); got != c.want {
			t.Errorf("AutoTiles(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
