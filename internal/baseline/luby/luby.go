// Package luby implements the classic randomized (Δ+1)-coloring in the
// synchronous message-passing model — the family of algorithms the
// paper's related-work section attributes to the Linial reduction and
// Luby's MIS technique [16, 17]. Each round, every uncolored node draws
// a random candidate from its remaining palette and keeps it unless an
// uncolored neighbor drew the same candidate; colored neighbors
// permanently remove their colors from the palette. Expected round
// complexity is O(log n).
//
// It serves as the idealized-model comparator: identical task, but with
// a MAC layer, neighbor knowledge, and synchronous start for free — the
// exact assumptions the unstructured radio network model removes.
package luby

import (
	"math/rand"
	"sort"

	"radiocolor/internal/msgpass"
)

// payload is a node's broadcast: its tentative or final color.
type payload struct {
	color int32
	final bool
}

// Node is one (Δ+1)-coloring participant. It implements
// msgpass.Protocol.
type Node struct {
	rng     *rand.Rand
	palette []int32 // sorted remaining colors
	cand    int32
	color   int32
}

// New creates a node with palette {0..delta} (with Δ the paper-convention
// maximum degree, Δ+1 colors always suffice) and its own random stream.
func New(delta int, rng *rand.Rand) *Node {
	p := make([]int32, delta+1)
	for c := range p {
		p[c] = int32(c)
	}
	return &Node{rng: rng, palette: p, cand: -1, color: -1}
}

// Color returns the decided color, or −1.
func (v *Node) Color() int32 { return v.color }

// Done implements msgpass.Protocol.
func (v *Node) Done() bool { return v.color >= 0 }

// removeFromPalette deletes c from the sorted palette if present.
func (v *Node) removeFromPalette(c int32) {
	i := sort.Search(len(v.palette), func(i int) bool { return v.palette[i] >= c })
	if i < len(v.palette) && v.palette[i] == c {
		v.palette = append(v.palette[:i], v.palette[i+1:]...)
	}
}

// Round implements msgpass.Protocol.
func (v *Node) Round(round int, inbox map[int32]any) any {
	// Process the previous round's candidates and finals. Inbox order
	// does not matter: we only derive a conflict flag and palette
	// deletions, both order-independent.
	conflict := false
	for _, m := range inbox {
		p, ok := m.(payload)
		if !ok {
			continue
		}
		if p.final {
			v.removeFromPalette(p.color)
			if v.cand == p.color {
				conflict = true
			}
		} else if v.cand >= 0 && p.color == v.cand {
			conflict = true
		}
	}
	if v.cand >= 0 && !conflict {
		// Candidate survived: finalize and announce once.
		v.color = v.cand
		return payload{color: v.color, final: true}
	}
	// Draw a fresh candidate uniformly from the remaining palette.
	v.cand = -1
	if len(v.palette) == 0 {
		// Cannot happen with a correct Δ: the palette has Δ+1 entries
		// and at most Δ−1 neighbors can erase one each. Guard anyway.
		return nil
	}
	v.cand = v.palette[v.rng.Intn(len(v.palette))]
	return payload{color: v.cand}
}

// Nodes builds one node per vertex with deterministic per-node streams.
func Nodes(n, delta int, seed int64) ([]*Node, []msgpass.Protocol) {
	nodes := make([]*Node, n)
	protos := make([]msgpass.Protocol, n)
	for i := range nodes {
		nodes[i] = New(delta, rand.New(rand.NewSource(seed^(int64(i+1)*0x9E3779B9))))
		protos[i] = nodes[i]
	}
	return nodes, protos
}
