package geom

import "math"

// Grid is a spatial hash over a point set: points are bucketed into square
// cells of side CellSize, so that all points within distance r ≤ CellSize
// of a query point are found by scanning the 3×3 block of cells around it.
// Topology generators use it to build unit disk / unit ball graphs in
// near-linear time instead of O(n²).
type Grid struct {
	cellSize float64
	cells    map[cellKey][]int
	points   []Point
}

type cellKey struct{ cx, cy int }

// NewGrid indexes points into cells of the given size. cellSize must be
// positive; it should be at least the largest query radius for Neighbors
// to be exhaustive.
func NewGrid(points []Point, cellSize float64) *Grid {
	if cellSize <= 0 {
		panic("geom: cell size must be positive")
	}
	g := &Grid{
		cellSize: cellSize,
		cells:    make(map[cellKey][]int, len(points)),
		points:   points,
	}
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

func (g *Grid) key(p Point) cellKey {
	return cellKey{int(math.Floor(p.X / g.cellSize)), int(math.Floor(p.Y / g.cellSize))}
}

// Neighbors appends to dst the indices of all points within Euclidean
// distance r of points[i], excluding i itself, and returns the extended
// slice. r must be ≤ the grid cell size for the scan to be exhaustive.
func (g *Grid) Neighbors(i int, r float64, dst []int) []int {
	if r > g.cellSize {
		panic("geom: query radius exceeds grid cell size")
	}
	p := g.points[i]
	k := g.key(p)
	r2 := r * r
	for dx := -1; dx <= 1; dx++ {
		for dy := -1; dy <= 1; dy++ {
			for _, j := range g.cells[cellKey{k.cx + dx, k.cy + dy}] {
				if j != i && p.Dist2(g.points[j]) <= r2 {
					dst = append(dst, j)
				}
			}
		}
	}
	return dst
}

// CandidatePairs invokes fn for every unordered pair (i, j), i < j, whose
// points lie in the same or adjacent cells — a superset of all pairs
// within distance cellSize. Generators apply their own distance or metric
// predicate on top. The enumeration visits each candidate pair exactly
// once.
func (g *Grid) CandidatePairs(fn func(i, j int)) {
	// For each cell, pair within the cell, and pair against the four
	// "forward" neighbor cells (E, NE, N, NW) so each adjacent cell pair
	// is considered exactly once.
	offsets := [...]cellKey{{1, 0}, {1, 1}, {0, 1}, {-1, 1}}
	for k, members := range g.cells {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				i, j := members[a], members[b]
				if i > j {
					i, j = j, i
				}
				fn(i, j)
			}
		}
		for _, off := range offsets {
			other := g.cells[cellKey{k.cx + off.cx, k.cy + off.cy}]
			for _, i := range members {
				for _, j := range other {
					a, b := i, j
					if a > b {
						a, b = b, a
					}
					fn(a, b)
				}
			}
		}
	}
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }
