// Package reduce implements an optional color-compaction phase that runs
// after the coloring protocol has terminated. The paper emphasizes that
// low colors matter (Theorem 4: bandwidth is inversely proportional to
// the highest color in a neighborhood), and its algorithm trades color
// economy for from-scratch operation: final colors live in windows
// tc·(κ₂+1)…tc·(κ₂+1)+κ₂ and the palette can be a κ₂ factor above the
// centralized optimum.
//
// Once initialization is over the network has structure again, so a
// maintenance pass can compact colors using the same radio model.
// Reduction proceeds in globally synchronized epochs (the network now
// has a coloring, hence a TDMA MAC, hence reasonable synchronization):
//
//   - throughout an epoch, every node announces (color, target) with
//     probability 1/(κ₂Δ); target is the smallest color unused by the
//     neighbors heard SO FAR THIS EPOCH (target = color when content or
//     not participating). Knowledge resets at every boundary: colors
//     only decrease, so stale entries systematically overestimate
//     neighbors and would steer movers onto freshly vacated colors;
//   - a node participates in moving during an epoch only with
//     probability ParticipateProb (thinning simultaneous movers), and
//     defers whenever it hears an intent from a higher-priority
//     neighbor (higher color; ties — only possible between equal-color
//     repairers — break by id);
//   - the schedule has three parts: a listen-only warm-up quarter,
//     an improvement window, and a repair-only final quarter. If a node
//     ever hears a NEIGHBOR WITH ITS OWN COLOR (a conflict that slipped
//     through), the lower-id side schedules a repair move to the
//     smallest free color at the next boundary — repairs may raise the
//     color and take precedence over improvements.
//
// Improvement moves strictly decrease a node's color, so the process
// converges; the repair rule turns the residual whp race (two adjacent
// movers picking the same target while missing every announcement of
// each other for a whole Θ(Δ log n)-slot epoch) into a transient that is
// detected and fixed in later epochs. Experiment E19 measures the
// compaction and verifies properness after reduction.
package reduce

import (
	"radiocolor/internal/radio"
)

// Params configures the reduction phase.
type Params struct {
	// N, Delta, Kappa2 are the usual estimates.
	N, Delta, Kappa2 int
	// EpochSlots is the epoch length (0: 16·Δ·log₂ n).
	EpochSlots int64
	// Epochs is the number of epochs to run (0: 4·κ₂).
	Epochs int
	// ParticipateProb thins simultaneous movers (0: 0.5).
	ParticipateProb float64
}

func (p Params) normalized() Params {
	if p.N < 2 {
		p.N = 2
	}
	if p.Delta < 2 {
		p.Delta = 2
	}
	if p.Kappa2 < 2 {
		p.Kappa2 = 2
	}
	if p.EpochSlots <= 0 {
		logn := int64(1)
		for v := p.N - 1; v > 0; v >>= 1 {
			logn++
		}
		p.EpochSlots = 16 * int64(p.Delta) * logn
	}
	if p.Epochs <= 0 {
		p.Epochs = 4 * p.Kappa2
	}
	if p.ParticipateProb <= 0 || p.ParticipateProb > 1 {
		p.ParticipateProb = 0.5
	}
	return p
}

// warmupEpochs returns the listen-only prefix (first quarter, ≥ 1).
func (p Params) warmupEpochs() int64 {
	w := int64(p.Epochs / 4)
	if w < 1 {
		w = 1
	}
	return w
}

// repairOnlyFrom returns the epoch index from which improvement moves
// stop (last quarter reserved for repairs).
func (p Params) repairOnlyFrom() int64 {
	r := int64(p.Epochs - p.Epochs/4)
	if r <= p.warmupEpochs() {
		r = p.warmupEpochs() + 1
	}
	return r
}

// Announce is the reduction message: current color and desired target.
type Announce struct {
	From   radio.NodeID
	Color  int32
	Target int32
}

// Sender implements radio.Message.
func (a *Announce) Sender() radio.NodeID { return a.From }

// Bits implements radio.Message.
func (a *Announce) Bits(n int) int {
	if n < 2 {
		n = 2
	}
	b := 0
	for v := int64(n) * int64(n) * int64(n); v > 0; v >>= 1 {
		b++
	}
	return b + 32
}

// intent is a move announcement heard this epoch.
type intent struct {
	from          radio.NodeID
	color, target int32
}

// Node is one reduction participant; it implements radio.Protocol.
type Node struct {
	id  radio.NodeID
	rng radio.Rand
	par Params

	color       int32
	fresh       map[radio.NodeID]int32 // colors heard THIS epoch
	intents     []intent               // move intents heard THIS epoch
	participant bool                   // drawn at each epoch start
	mustRepair  bool                   // heard own color from a losing position
	local       int64
	moves       int64
	repairs     int64
}

// New creates a reduction node starting from the given (proper) color.
func New(id radio.NodeID, rng radio.Rand, par Params, color int32) *Node {
	if color < 0 {
		panic("reduce: node needs a color to start from")
	}
	return &Node{
		id:    id,
		rng:   rng,
		par:   par.normalized(),
		color: color,
		fresh: make(map[radio.NodeID]int32),
	}
}

// Nodes builds reduction nodes over an existing coloring.
func Nodes(colors []int32, masterSeed int64, par Params) ([]*Node, []radio.Protocol) {
	nodes := make([]*Node, len(colors))
	protos := make([]radio.Protocol, len(colors))
	for i := range nodes {
		nodes[i] = New(radio.NodeID(i), radio.NodeRand(masterSeed, radio.NodeID(i)), par, colors[i])
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// target returns the smallest color unused by the neighbors heard this
// epoch that improves on the current color, or the current color.
func (v *Node) target() int32 {
	c := v.smallestFree()
	if c < v.color {
		return c
	}
	return v.color
}

// smallestFree returns the smallest color not heard this epoch
// (unbounded — repairs may move upward).
func (v *Node) smallestFree() int32 {
	used := make(map[int32]bool, len(v.fresh))
	for _, c := range v.fresh {
		used[c] = true
	}
	for c := int32(0); ; c++ {
		if !used[c] {
			return c
		}
	}
}

// Start implements radio.Protocol.
func (v *Node) Start(int64) { v.participant = v.rng.Float64() < v.par.ParticipateProb }

// epochOf returns the epoch index of local slot t.
func (v *Node) epochOf(t int64) int64 { return t / v.par.EpochSlots }

// mayImprove reports whether improvement commits are allowed in epoch e.
func (v *Node) mayImprove(e int64) bool {
	return e >= v.par.warmupEpochs() && e < v.par.repairOnlyFrom() && v.participant
}

// mayRepair reports whether repair commits are allowed in epoch e
// (everything after the first epoch — repairs need one full epoch of
// fresh knowledge).
func (v *Node) mayRepair(e int64) bool { return e >= 1 }

// Send implements radio.Protocol.
func (v *Node) Send(int64) radio.Message {
	t := v.local
	v.local++
	if t >= int64(v.par.Epochs)*v.par.EpochSlots {
		return nil // reduction over; stay silent
	}
	e := v.epochOf(t)
	// Epoch boundary: commit, then reset the epoch's knowledge.
	if t%v.par.EpochSlots == v.par.EpochSlots-1 {
		switch {
		case v.mustRepair && v.mayRepair(e):
			// Repair beats improvement; it may raise the color.
			v.color = v.smallestFree()
			v.repairs++
			v.mustRepair = false
		case v.mayImprove(e):
			if tgt := v.target(); tgt < v.color && !v.deferred(tgt) {
				v.color = tgt
				v.moves++
			}
		}
		v.fresh = make(map[radio.NodeID]int32, len(v.fresh))
		v.intents = v.intents[:0]
		v.participant = v.rng.Float64() < v.par.ParticipateProb
		return nil // boundary slot is silent
	}
	if v.rng.Float64() < 1/(float64(v.par.Kappa2)*float64(v.par.Delta)) {
		tgt := v.color
		if v.mustRepair && v.mayRepair(e) {
			tgt = v.smallestFree()
		} else if v.mayImprove(e) {
			tgt = v.target()
		}
		return &Announce{From: v.id, Color: v.color, Target: tgt}
	}
	return nil
}

// deferred reports whether a move must yield this epoch: an intent was
// heard from a neighbor with a higher color, or with an equal color
// (only possible among conflicting repairers) and a higher id.
func (v *Node) deferred(int32) bool {
	for _, it := range v.intents {
		if it.color > v.color {
			return true
		}
		if it.color == v.color && it.from > v.id {
			return true
		}
	}
	return false
}

// Recv implements radio.Protocol.
func (v *Node) Recv(_ int64, msg radio.Message) {
	a, ok := msg.(*Announce)
	if !ok {
		return
	}
	v.fresh[a.From] = a.Color
	if a.Target != a.Color {
		v.intents = append(v.intents, intent{from: a.From, color: a.Color, target: a.Target})
	}
	// Conflict detection: a neighbor holds our color. The lower id
	// repairs; the higher id stays put.
	if a.Color == v.color && a.From > v.id {
		v.mustRepair = true
	}
}

// Done implements radio.Protocol.
func (v *Node) Done() bool {
	return v.local >= int64(v.par.Epochs)*v.par.EpochSlots
}

// Color returns the node's current color.
func (v *Node) Color() int32 { return v.color }

// Moves returns how many improvement recolorings the node made.
func (v *Node) Moves() int64 { return v.moves }

// Repairs returns how many conflict-repair recolorings the node made.
func (v *Node) Repairs() int64 { return v.repairs }
