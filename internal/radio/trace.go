package radio

import (
	"fmt"
	"io"
)

// EventKind classifies trace events.
type EventKind uint8

const (
	// EventTransmit records a node transmitting.
	EventTransmit EventKind = iota
	// EventDeliver records a successful reception.
	EventDeliver
	// EventCollision records a listener with ≥ 2 transmitting neighbors.
	EventCollision
	// EventDecide records a node's irrevocable decision.
	EventDecide
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventTransmit:
		return "tx"
	case EventDeliver:
		return "rx"
	case EventCollision:
		return "coll"
	case EventDecide:
		return "decide"
	default:
		return fmt.Sprintf("event(%d)", uint8(k))
	}
}

// Event is one recorded simulation event.
type Event struct {
	Slot int64
	Kind EventKind
	// Node is the acting node (transmitter, receiver, collider, or
	// decider).
	Node NodeID
	// From is the sender for EventDeliver (otherwise −1).
	From NodeID
	// Info carries the collision's transmitter count or the message's
	// string form.
	Info string
}

// String implements fmt.Stringer.
func (e Event) String() string {
	switch e.Kind {
	case EventDeliver:
		return fmt.Sprintf("[%7d] rx   node %d ← %d: %s", e.Slot, e.Node, e.From, e.Info)
	case EventTransmit:
		return fmt.Sprintf("[%7d] tx   node %d: %s", e.Slot, e.Node, e.Info)
	case EventCollision:
		return fmt.Sprintf("[%7d] coll node %d (%s transmitters)", e.Slot, e.Node, e.Info)
	default:
		return fmt.Sprintf("[%7d] %s node %d", e.Slot, e.Kind, e.Node)
	}
}

// Trace is an Observer recording the last Cap events in a ring buffer —
// the debugging flight recorder behind colorsim's -trace flag. Recording
// every transmission of a long run would be enormous; the ring keeps the
// tail, which is where protocol bugs (stuck nodes, livelocks) surface.
type Trace struct {
	// Cap bounds the retained events (≤ 0 means 4096).
	Cap int
	// Kinds selects the recorded kinds; empty records everything.
	Kinds []EventKind

	events []Event
	next   int
	total  int64
}

var _ Observer = (*Trace)(nil)

func (t *Trace) wants(k EventKind) bool {
	if len(t.Kinds) == 0 {
		return true
	}
	for _, want := range t.Kinds {
		if want == k {
			return true
		}
	}
	return false
}

func (t *Trace) record(e Event) {
	if !t.wants(e.Kind) {
		return
	}
	cap := t.Cap
	if cap <= 0 {
		cap = 4096
	}
	if len(t.events) < cap {
		t.events = append(t.events, e)
	} else {
		t.events[t.next] = e
		t.next = (t.next + 1) % cap
	}
	t.total++
}

// OnSlot implements Observer.
func (t *Trace) OnSlot(int64) {}

// OnTransmit implements Observer.
func (t *Trace) OnTransmit(slot int64, from NodeID, msg Message) {
	t.record(Event{Slot: slot, Kind: EventTransmit, Node: from, From: -1, Info: fmt.Sprintf("%v", msg)})
}

// OnDeliver implements Observer.
func (t *Trace) OnDeliver(slot int64, to NodeID, msg Message) {
	t.record(Event{Slot: slot, Kind: EventDeliver, Node: to, From: msg.Sender(), Info: fmt.Sprintf("%v", msg)})
}

// OnCollision implements Observer.
func (t *Trace) OnCollision(slot int64, at NodeID, transmitters int) {
	t.record(Event{Slot: slot, Kind: EventCollision, Node: at, From: -1, Info: fmt.Sprintf("%d", transmitters)})
}

// OnDecide implements Observer.
func (t *Trace) OnDecide(slot int64, node NodeID) {
	t.record(Event{Slot: slot, Kind: EventDecide, Node: node, From: -1})
}

// Total returns how many matching events occurred (recorded or evicted).
func (t *Trace) Total() int64 { return t.total }

// Events returns the retained events in chronological order.
func (t *Trace) Events() []Event {
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.next:]...)
	out = append(out, t.events[:t.next]...)
	return out
}

// Dump writes the retained events to w.
func (t *Trace) Dump(w io.Writer) error {
	for _, e := range t.Events() {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "(%d events total, %d retained)\n", t.total, len(t.events))
	return err
}
