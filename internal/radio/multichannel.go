package radio

import "fmt"

// Multiple communication channels. Sect. 2: "in contrast to previous
// work on the unstructured radio network model [13, 14], we do not make
// the simplifying assumption of having several independent communication
// channels. In our model, there is only one communication channel."
//
// This engine restores the multi-channel assumption so the difference
// can be measured: the spectrum is divided into k independent channels
// and every node hops uniformly at random between them each slot (a
// standard oblivious strategy that needs no coordination — exactly what
// an uninitialized network can afford). A transmission is received by a
// listening neighbor iff both happen to sit on the same channel and no
// other audible transmission occupies it. Protocols run unchanged; the
// hopping sequence is part of the environment, derived deterministically
// from (HopSeed, node, slot).
//
// Experiment E21 compares k ∈ {1, 2, 4, 8}: more channels thin the
// contention (collisions drop roughly k²-fold) but also thin the
// useful receptions (sender and receiver must coincide, probability
// 1/k), so the protocol — whose pace is set by counters, not by
// individual deliveries — slows roughly linearly in k. The paper's
// single-channel choice is thus not just less restrictive but also the
// fastest operating point for this algorithm.

// RunMultiChannel executes cfg over `channels` independent channels with
// per-slot uniform random hopping. channels must be ≥ 1; channels == 1
// reproduces Run exactly. The parallel Workers option is honored for the
// send phase.
func RunMultiChannel(cfg Config, channels int, hopSeed int64) (*Result, error) {
	if channels < 1 {
		return nil, fmt.Errorf("radio: %d channels", channels)
	}
	e, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if channels == 1 {
		for e.Step() {
		}
		return e.Result(), nil
	}
	m := &multiChannel{e: e, k: channels, seed: hopSeed}
	m.chanOf = make([]int32, e.n)
	m.count = make([]int32, e.n)
	m.first = make([]Message, e.n)
	for m.step() {
	}
	return e.Result(), nil
}

type multiChannel struct {
	e    *Engine
	k    int
	seed int64

	chanOf  []int32 // this slot's channel per node
	count   []int32 // transmitting neighbors on the listener's channel
	first   []Message
	touched []int32 // per-slot scratch, reused across slots
}

// hop returns node i's channel in slot t: a pure function so the
// schedule is reproducible and independent of execution order.
func (m *multiChannel) hop(t int64, i int32) int32 {
	h := splitmix64(splitmix64(uint64(m.seed)^uint64(t)) ^ (uint64(i) * 0x9E3779B97F4A7C15))
	return int32(h % uint64(m.k))
}

func (m *multiChannel) step() bool {
	e := m.e
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics

	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.awake[id] = true
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
		e.next++
	}
	for i := 0; i < e.n; i++ {
		if e.awake[i] {
			m.chanOf[i] = m.hop(t, int32(i))
		}
	}

	// Send phase (sequential: per-slot cost is dominated by Send calls
	// anyway, and this engine is used for one experiment).
	for i := 0; i < e.n; i++ {
		if e.awake[i] {
			e.out[i] = e.cfg.Protocols[i].Send(t)
		}
	}

	// Resolve per channel: count transmitting neighbors that share the
	// listener's channel.
	touched := m.touched[:0]
	for i := 0; i < e.n; i++ {
		msg := e.out[i]
		if msg == nil {
			continue
		}
		e.res.Transmissions++
		e.res.PerNodeTx[i]++
		if bits := msg.Bits(e.cfg.NEstimate); bits > e.res.MaxMessageBits {
			e.res.MaxMessageBits = bits
		}
		if ob != nil {
			ob.OnTransmit(t, NodeID(i), msg)
		}
		if met != nil {
			met.AddTransmission()
		}
		for _, u := range e.edges[e.offsets[i]:e.offsets[i+1]] {
			if !e.awake[u] || m.chanOf[u] != m.chanOf[i] {
				continue
			}
			if m.count[u] == 0 {
				touched = append(touched, u)
				m.first[u] = msg
			}
			m.count[u]++
		}
	}
	for _, u := range touched {
		count := m.count[u]
		m.count[u] = 0
		msg := m.first[u]
		m.first[u] = nil
		if e.out[u] != nil {
			continue // transmitting (on its own channel): deaf
		}
		if count >= 2 {
			e.res.Collisions++
			if ob != nil {
				ob.OnCollision(t, NodeID(u), int(count))
			}
			if met != nil {
				met.AddCollision()
			}
			continue
		}
		if e.dropped(t, u) {
			if met != nil {
				met.AddDrop()
			}
			continue
		}
		e.res.Deliveries++
		if ob != nil {
			ob.OnDeliver(t, NodeID(u), msg)
		}
		if met != nil {
			met.AddDelivery()
		}
		e.cfg.Protocols[u].Recv(t, msg)
	}
	m.touched = touched
	for i := 0; i < e.n; i++ {
		e.out[i] = nil
	}

	for i := 0; i < e.n; i++ {
		if !e.decided[i] && e.awake[i] && e.cfg.Protocols[i].Done() {
			e.decided[i] = true
			e.numDone++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
		}
	}
	if ob != nil {
		ob.OnSlot(t)
	}
	if met != nil {
		met.AddSlot()
	}
	e.slot++
	simulatedSlots.Add(1)
	e.res.Slots = e.slot
	if e.numDone == e.n {
		e.res.AllDone = true
		return false
	}
	return e.slot < e.cfg.MaxSlots
}
