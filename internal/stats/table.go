package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of formatted cells and renders them as an
// aligned text table (the format cmd/experiments prints and
// EXPERIMENTS.md records) or as CSV.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells are formatted with %v, floats with %.3g
// unless already strings.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the aligned text table to w.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) {
				for p := len(c); p < widths[i]; p++ {
					b.WriteByte(' ')
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return err.Error()
	}
	return b.String()
}

// WriteCSV writes the table in CSV form (headers first). Cells
// containing commas or quotes are quoted.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeLine(t.headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return nil
}
