// Package estimate implements the future-work direction of the paper's
// conclusion (Sect. 6): removing the assumption that nodes know the
// global maximum degree Δ by letting each node estimate its local
// neighborhood size from channel observations, in the spirit of the
// energy-efficient size-approximation protocols for single-hop networks
// the paper cites ([9], Jurdzinski–Kutylowski–Zatopianski) adapted to
// the asynchronous multi-hop setting.
//
// The estimator exploits the slotted-ALOHA capture curve: if a node's δ
// neighbors each transmit with probability p per slot, the node receives
// a message with probability δp(1−p)^{δ−1}, which peaks near p = 1/δ at
// rate ≈ 1/e. Sweeping p through powers of two and watching where the
// reception rate peaks therefore reveals log₂ δ — without any collision
// detection, using only the information the unstructured radio network
// model provides (receive / not receive).
//
// The full pipeline has three phases per node, all of fixed length so it
// runs under asynchronous wake-up:
//
//  1. probe: rounds r = 0,1,2,…, transmitting with probability 2^{−r};
//     the node records its reception count per round;
//  2. spread: nodes exchange their local estimates δ̂ and take maxima,
//     twice, approximating the maximum degree within two hops (the
//     quantity Theorem 4 calls θ_v);
//  3. run: the node instantiates the coloring protocol of
//     internal/core with Δ := SafetyFactor·(2-hop max estimate) and
//     delegates to it.
//
// Experiment E14 measures the accuracy of the estimates and the
// correctness/latency of the adaptive protocol against the known-Δ
// baseline.
package estimate

import (
	"radiocolor/internal/radio"
)

// Config parameterizes the estimator pipeline.
type Config struct {
	// N is the network-size estimate (for log n factors and message
	// accounting; the paper keeps this assumption — only Δ is dropped).
	N int
	// Kappa1, Kappa2 are the bounded-independence parameters; these are
	// properties of the deployment class (e.g. ≤ 5/18 for any UDG), not
	// of the instance, so nodes may reasonably know them.
	Kappa1, Kappa2 int
	// Rounds is the number of probe rounds (round r transmits with
	// probability 2^{−r}); it bounds the largest estimable degree by
	// 2^{Rounds−1}.
	Rounds int
	// RoundSlots is the length of each probe round.
	RoundSlots int64
	// SpreadSlots is the length of each of the two estimate-exchange
	// phases.
	SpreadSlots int64
	// SafetyFactor inflates the final Δ estimate before it is handed to
	// the coloring protocol (≥ 1; underestimating Δ is dangerous,
	// overestimating merely slows the node down).
	SafetyFactor float64
	// Scale multiplies the practical protocol constants (default 1).
	Scale float64
}

// DefaultConfig sizes the pipeline for a network of at most n nodes.
func DefaultConfig(n, kappa1, kappa2 int) Config {
	logn := 1
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 4 {
		logn = 4
	}
	return Config{
		N:            n,
		Kappa1:       kappa1,
		Kappa2:       kappa2,
		Rounds:       logn + 2,
		RoundSlots:   int64(24 * logn),
		SpreadSlots:  int64(48 * logn),
		SafetyFactor: 2,
		Scale:        1,
	}
}

func (c Config) normalized() Config {
	if c.N < 2 {
		c.N = 2
	}
	if c.Kappa1 < 1 {
		c.Kappa1 = 1
	}
	if c.Kappa2 < c.Kappa1 {
		c.Kappa2 = c.Kappa1 + 1
	}
	if c.Rounds < 2 {
		c.Rounds = 2
	}
	if c.RoundSlots < 8 {
		c.RoundSlots = 8
	}
	if c.SpreadSlots < 8 {
		c.SpreadSlots = 8
	}
	if c.SafetyFactor < 1 {
		c.SafetyFactor = 1
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// MsgProbe is the probe-phase beacon.
type MsgProbe struct {
	From radio.NodeID
}

// Sender implements radio.Message.
func (m *MsgProbe) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message: just an identifier.
func (m *MsgProbe) Bits(n int) int {
	if n < 2 {
		n = 2
	}
	b := 0
	for v := int64(n) * int64(n) * int64(n); v > 0; v >>= 1 {
		b++
	}
	return b
}

// MsgEstimate carries a node's current degree estimate during the
// spread phases. Hop distinguishes the 1-hop from the 2-hop wave.
type MsgEstimate struct {
	From radio.NodeID
	Hop  uint8
	Est  int32
}

// Sender implements radio.Message.
func (m *MsgEstimate) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message.
func (m *MsgEstimate) Bits(n int) int {
	return (&MsgProbe{}).Bits(n) + 1 + 16
}
