package core_test

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// runColoring executes the full protocol on d and returns the nodes and
// the engine result.
func runColoring(t *testing.T, d *topology.Deployment, par core.Params, wake []int64, seed int64, maxSlots int64) ([]*core.Node, *radio.Result) {
	t.Helper()
	nodes, protos := core.Nodes(d.N(), seed, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G:         d.G,
		Protocols: protos,
		Wake:      wake,
		MaxSlots:  maxSlots,
		NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

// colorsOf extracts the color vector.
func colorsOf(nodes []*core.Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.Color()
	}
	return out
}

func tcsOf(nodes []*core.Node) []int32 {
	out := make([]int32, len(nodes))
	for i, v := range nodes {
		out[i] = v.TC()
	}
	return out
}

// paramsFor measures the deployment and produces practical parameters
// with honest (over-)estimates, as the model prescribes: nodes know
// rough upper bounds for n and Δ.
func paramsFor(d *topology.Deployment) core.Params {
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 200_000, MaxNeighborhood: 160})
	return core.Practical(d.N(), delta, k.K1, k.K2)
}

func verifyRun(t *testing.T, d *topology.Deployment, nodes []*core.Node, res *radio.Result, par core.Params) {
	t.Helper()
	if !res.AllDone {
		undecided := 0
		for v := range nodes {
			if !nodes[v].Done() {
				undecided++
			}
		}
		t.Fatalf("%s: %d nodes undecided after %d slots", d.Name, undecided, res.Slots)
	}
	colors := colorsOf(nodes)
	rep := verify.Check(d.G, colors)
	if !rep.OK() {
		t.Fatalf("%s: bad coloring: %v (first violations: %v)", d.Name, rep, rep.Violations)
	}
	for class, indep := range verify.ClassIndependence(d.G, colors) {
		if !indep {
			t.Errorf("%s: color class %d not independent", d.Name, class)
		}
	}
	// Theorem 5 (O(κ₂Δ) colors): intra-cluster colors reach at most
	// Δ−1, each opening a window of κ₂+1 colors, so the maximum color is
	// (Δ−1)(κ₂+1)+κ₂ barring re-requests (which the whp analysis rules
	// out).
	bound := int32((par.Delta-1)*(par.Kappa2+1) + par.Kappa2)
	if rep.MaxColor > bound {
		t.Errorf("%s: max color %d exceeds O(κ₂Δ) bound %d", d.Name, rep.MaxColor, bound)
	}
	if viol := verify.CheckLocality(d.G, colors, par.Kappa2); len(viol) > 0 {
		t.Errorf("%s: locality violations: %v", d.Name, viol[:min(3, len(viol))])
	}
	if viol := verify.CheckClusterRanges(colors, tcsOf(nodes), par.Kappa2); len(viol) > 0 {
		t.Errorf("%s: Corollary 1 range violations: %v", d.Name, viol)
	}
}

func TestColoringSmallUDGSynchronous(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.2, Seed: 1})
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 7, 3_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringUDGAsynchronous(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 100, Side: 6, Radius: 1.3, Seed: 2})
	par := paramsFor(d)
	wake := radio.WakeUniform(d.N(), 4*par.WaitSlots(), 5)
	nodes, res := runColoring(t, d, par, wake, 11, 3_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringAdversarialWakeup(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.3, Seed: 3})
	par := paramsFor(d)
	wake := radio.WakeAdversarial(d.N(), par.WaitSlots(), 9)
	nodes, res := runColoring(t, d, par, wake, 13, 4_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringClique(t *testing.T) {
	// Single-hop worst case: only one leader, everyone else requests.
	d := topology.Clique(16)
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 17, 3_000_000)
	verifyRun(t, d, nodes, res, par)
	leaders := 0
	for _, v := range nodes {
		if v.IsLeader() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Errorf("clique has %d leaders, want exactly 1", leaders)
	}
}

func TestColoringStarHiddenTerminals(t *testing.T) {
	d := topology.Star(20)
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 19, 3_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringRing(t *testing.T) {
	d := topology.Ring(40)
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 23, 3_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringBIGWithObstacles(t *testing.T) {
	d := topology.BIGWithWalls(topology.UDGConfig{N: 90, Side: 6, Radius: 1.3, Seed: 4}, 25)
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 29, 3_000_000)
	verifyRun(t, d, nodes, res, par)
}

func TestColoringDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 50, Side: 4, Radius: 1.2, Seed: 5})
	par := paramsFor(d)
	a, _ := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 31, 3_000_000)
	b, _ := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 31, 3_000_000)
	for i := range a {
		if a[i].Color() != b[i].Color() {
			t.Fatalf("node %d: colors differ across identical runs: %d vs %d", i, a[i].Color(), b[i].Color())
		}
	}
}

func TestColoringMessageSizeWithinLogN(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 70, Side: 5, Radius: 1.2, Seed: 6})
	par := paramsFor(d)
	_, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 37, 3_000_000)
	// O(log n): generously, 40·log₂(n) bits.
	limit := 40 * 7 // log₂(70) ≈ 6.2
	if res.MaxMessageBits > limit {
		t.Errorf("max message = %d bits, budget %d", res.MaxMessageBits, limit)
	}
}

func TestLeadersFormMaximalIndependentSet(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 90, Side: 6, Radius: 1.3, Seed: 8})
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 41, 3_000_000)
	if !res.AllDone {
		t.Fatal("run incomplete")
	}
	var leaders []int32
	for i, v := range nodes {
		if v.IsLeader() {
			leaders = append(leaders, int32(i))
		}
	}
	if len(leaders) == 0 {
		t.Fatal("no leaders elected")
	}
	if !d.G.IsIndependent(leaders) {
		t.Error("leader set (color class 0) not independent")
	}
	// Maximality: every non-leader must have a leader neighbor
	// (otherwise it could never have left A₀).
	isLeader := make(map[int32]bool)
	for _, l := range leaders {
		isLeader[l] = true
	}
	for v := 0; v < d.N(); v++ {
		if isLeader[int32(v)] {
			continue
		}
		covered := false
		for _, u := range d.G.Adj(v) {
			if isLeader[u] {
				covered = true
				break
			}
		}
		if !covered {
			t.Errorf("non-leader %d has no leader neighbor", v)
		}
	}
}

func TestClassMovesBoundedByKappa2(t *testing.T) {
	// Corollary 1: every node visits at most κ₂+1 verification states.
	d := topology.RandomUDG(topology.UDGConfig{N: 90, Side: 5, Radius: 1.3, Seed: 9})
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 43, 3_000_000)
	if !res.AllDone {
		t.Fatal("run incomplete")
	}
	for i, v := range nodes {
		if v.ClassMoves() > int64(par.Kappa2) {
			t.Errorf("node %d made %d class moves (> κ₂ = %d)", i, v.ClassMoves(), par.Kappa2)
		}
	}
}

func TestColoringWithMessageLoss(t *testing.T) {
	// Failure injection beyond the model: 20% of deliveries vanish. The
	// protocol must still terminate with a correct coloring (losses look
	// like collisions, which it tolerates by design).
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.3, Seed: 10})
	par := paramsFor(d)
	nodes, protos := core.Nodes(d.N(), 47, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 5_000_000, DropProb: 0.2, DropSeed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyRun(t, d, nodes, res, par)
}

func TestDisconnectedGraphColoring(t *testing.T) {
	// Two disjoint cliques: the protocol runs independently per
	// component.
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(i+6, j+6)
		}
	}
	d := &topology.Deployment{Name: "two-cliques", G: b.Build()}
	par := paramsFor(d)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(d.N()), 53, 3_000_000)
	verifyRun(t, d, nodes, res, par)
	leaders := 0
	for _, v := range nodes {
		if v.IsLeader() {
			leaders++
		}
	}
	if leaders != 2 {
		t.Errorf("leaders = %d, want 2 (one per component)", leaders)
	}
}

func TestSingletonNetwork(t *testing.T) {
	d := &topology.Deployment{Name: "singleton", G: graph.NewBuilder(1).Build()}
	par := core.Practical(1, 2, 1, 2)
	nodes, res := runColoring(t, d, par, radio.WakeSynchronous(1), 59, 100_000)
	if !res.AllDone || nodes[0].Color() != 0 {
		t.Fatalf("singleton: done=%v color=%d", res.AllDone, nodes[0].Color())
	}
}

func TestColoringUnalignedClocks(t *testing.T) {
	// Sect. 2 remark: results carry over to non-aligned slot boundaries.
	d := topology.RandomUDG(topology.UDGConfig{N: 70, Side: 5, Radius: 1.2, Seed: 12})
	par := paramsFor(d)
	nodes, protos := core.Nodes(d.N(), 61, par, core.Ablation{})
	res, err := radio.RunUnaligned(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 8_000_000, NEstimate: par.N,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	verifyRun(t, d, nodes, res, par)
}

func TestColoringWithLeaderMemoryUnderLoss(t *testing.T) {
	// The assignment-memory variant under 30% loss: re-requests re-serve
	// the original tc, so Corollary 1 windows stay tight and the
	// coloring stays correct.
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.3, Seed: 14})
	par := paramsFor(d)
	nodes, protos := core.Nodes(d.N(), 71, par, core.Ablation{LeaderAssignmentMemory: true})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 8_000_000, DropProb: 0.3, DropSeed: 5, NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyRun(t, d, nodes, res, par)
}
