package core

import "radiocolor/internal/radio"

// Sect. 2 of the paper: "In some papers on wireless sensor networks, it
// is argued that sensor nodes do not feature any kind of unique
// identification … In such a case, each node can randomly choose an ID
// uniformly from the range [1..n³] upon waking up. The probability that
// two nodes in the system end up having the same ID is bounded by
// P_ambIDs ≤ C(n,2)·1/n³ ∈ O(1/n)."
//
// NodesWithRandomIDs implements that scheme: every node draws its wire
// identifier uniformly from [1..idSpace] instead of using its engine
// index. The algorithm performs no arithmetic on identifiers — they only
// let receivers tell senders apart — so it runs unchanged; with
// probability O(1/n) two nodes collide and correctness may silently
// degrade, exactly as the paper computes. Experiment E14 measures the
// empirical failure rate against the analytical bound.

// RandomIDSpace returns the paper's n³ identifier space, clamped to the
// int32 range of radio.NodeID.
func RandomIDSpace(n int) int64 {
	s := int64(n) * int64(n) * int64(n)
	if s < 8 {
		s = 8
	}
	const maxID = int64(1)<<31 - 1
	if s > maxID {
		s = maxID
	}
	return s
}

// NodesWithRandomIDs builds one Node per vertex like Nodes, but each
// node draws its wire identifier uniformly from [1..idSpace]. It returns
// the nodes, the protocol slice, and the drawn identifiers (for
// collision diagnosis by experiments; the nodes themselves never learn
// whether they collided).
func NodesWithRandomIDs(n int, masterSeed int64, par Params, abl Ablation, idSpace int64) ([]*Node, []radio.Protocol, []radio.NodeID) {
	if idSpace < 1 {
		idSpace = RandomIDSpace(n)
	}
	nodes := make([]*Node, n)
	protos := make([]radio.Protocol, n)
	ids := make([]radio.NodeID, n)
	for i := range nodes {
		rng := radio.NodeRand(masterSeed, radio.NodeID(i))
		// Draw the ID from the node's own stream, as the paper's nodes
		// would upon waking up.
		ids[i] = radio.NodeID(rng.Int63n(idSpace) + 1)
		nodes[i] = NewNode(ids[i], rng, par, abl)
		protos[i] = nodes[i]
	}
	return nodes, protos, ids
}

// CountIDCollisions returns how many nodes share their identifier with
// at least one other node.
func CountIDCollisions(ids []radio.NodeID) int {
	count := make(map[radio.NodeID]int, len(ids))
	for _, id := range ids {
		count[id]++
	}
	colliding := 0
	for _, c := range count {
		if c > 1 {
			colliding += c
		}
	}
	return colliding
}
