// Package fp implements the simple distributed Δ+1 coloring of Fuchs &
// Prutkin, "Simple Distributed Δ+1 Coloring in the SINR Model"
// (arXiv:1502.02426), as a baseline companion to the paper's O(Δ)
// protocol. The algorithm is the natural random-recolor scheme analyzed
// directly in the physical (SINR) interference model:
//
//  1. on wake-up, pick a uniform random color from the palette
//     {0, …, Δ};
//  2. every slot, announce the current color with a constant
//     transmission probability ~ 1/Δ;
//  3. on hearing a neighbor announce your own color, yield if the
//     sender has priority (it already decided, or ties break on id):
//     re-pick uniformly from the palette minus every color currently
//     claimed by a known neighbor — at most Δ neighbors, so a free
//     color always exists;
//  4. decide irrevocably after a quiet window of conflict-free slots,
//     and keep announcing so late wakers yield to the decided color.
//
// Fuchs & Prutkin show the scheme reaches a proper Δ+1 coloring in
// O(Δ log n + log² n) slots with high probability under SINR. The
// interest here is that — unlike the paper's protocol, whose reception
// guarantees are argued in the graph model — this baseline is designed
// for cumulative interference, so the cross-model experiment (E25) can
// compare both algorithms under both media on one deployment.
//
// Like every baseline with a timeout-based decision rule, correctness
// is probabilistic: the quiet window makes an undetected conflict
// unlikely, not impossible. The SINR property tests bound it
// empirically across wake-up schedules and fault profiles.
package fp

import (
	"radiocolor/internal/radio"
)

// Params configures the baseline.
type Params struct {
	// MaxColor bounds the palette {0, …, MaxColor}; set it to the
	// (estimated) maximum degree Δ for a Δ+1 coloring.
	MaxColor int
	// TxProb is the per-slot announcement probability.
	TxProb float64
	// QuietSlots is the conflict-free window before deciding.
	QuietSlots int64
}

// DefaultParams returns the parameters the experiments use: palette
// Δ+1, transmission probability 1/(Δ+1), and a quiet window of
// Θ(Δ log n) slots — the same order as the algorithm's per-node bound,
// so a live conflict is heard within the window w.h.p.
func DefaultParams(n, delta int) Params {
	if delta < 1 {
		delta = 1
	}
	logn := int64(1)
	for v := n - 1; v > 0; v >>= 1 {
		logn++
	}
	if logn < 3 {
		logn = 3
	}
	return Params{
		MaxColor:   delta,
		TxProb:     1 / float64(delta+1),
		QuietSlots: 8 * int64(delta+1) * logn,
	}
}

// announce is the single message type: "my color is Color (and I am
// final)".
type announce struct {
	From  radio.NodeID
	Color int32
	Final bool
}

// Sender implements radio.Message.
func (a *announce) Sender() radio.NodeID { return a.From }

// Bits implements radio.Message: an id, a color index bounded by the
// palette (≤ n), and the final flag — O(log n).
func (a *announce) Bits(n int) int {
	if n < 2 {
		n = 2
	}
	b := 0
	for v := n; v > 0; v >>= 1 {
		b++
	}
	return 2*b + 1
}

// Node is one participant; it implements radio.Protocol (and
// radio.Restartable, so crash/restart fault profiles compose).
type Node struct {
	id  radio.NodeID
	rng radio.Rand
	par Params

	started bool
	color   int32
	decided bool
	quiet   int64
	// neighbor holds the last color heard from each neighbor — the
	// "currently claimed by a known neighbor" set the re-pick excludes.
	neighbor map[radio.NodeID]int32
	repicks  int64
}

// New creates a node.
func New(id radio.NodeID, rng radio.Rand, par Params) *Node {
	if par.MaxColor < 1 {
		par.MaxColor = 1
	}
	if par.TxProb <= 0 || par.TxProb > 1 {
		par.TxProb = 1 / float64(par.MaxColor+1)
	}
	if par.QuietSlots < 1 {
		par.QuietSlots = 1
	}
	return &Node{id: id, rng: rng, par: par, color: -1}
}

// Nodes builds one node per vertex with deterministic per-node streams
// derived from the master seed.
func Nodes(n int, seed int64, par Params) ([]*Node, []radio.Protocol) {
	nodes := make([]*Node, n)
	protos := make([]radio.Protocol, n)
	for i := range nodes {
		nodes[i] = New(radio.NodeID(i), radio.NodeRand(seed, radio.NodeID(i)), par)
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Start implements radio.Protocol: pick the initial random color.
func (v *Node) Start(int64) {
	v.started = true
	v.neighbor = make(map[radio.NodeID]int32, v.par.MaxColor+1)
	v.color = int32(v.rng.Intn(v.par.MaxColor + 1))
	v.quiet = 0
}

// Send implements radio.Protocol.
func (v *Node) Send(int64) radio.Message {
	if !v.decided {
		v.quiet++
		if v.quiet >= v.par.QuietSlots {
			v.decided = true
		}
	}
	if v.rng.Float64() < v.par.TxProb {
		return &announce{From: v.id, Color: v.color, Final: v.decided}
	}
	return nil
}

// Recv implements radio.Protocol.
func (v *Node) Recv(_ int64, msg radio.Message) {
	a, ok := msg.(*announce)
	if !ok {
		return
	}
	v.neighbor[a.From] = a.Color
	if a.Color != v.color {
		return
	}
	if v.decided {
		// Irrevocable; the neighbor hears our final announcements and
		// yields. Two adjacent finals on one color would be a hard
		// violation — the quiet window exists to make that unlikely.
		return
	}
	v.quiet = 0
	if a.Final || a.From > v.id {
		v.repick()
	}
}

// repick draws a new color uniformly from the palette minus the colors
// currently claimed by known neighbors (including the conflicting one
// just heard). With ≤ MaxColor neighbors and MaxColor+1 colors a free
// color always exists; should a caller undersize the palette below the
// real degree, the draw falls back to the full palette rather than
// deadlocking.
func (v *Node) repick() {
	free := make([]int32, 0, v.par.MaxColor+1)
	for c := int32(0); c <= int32(v.par.MaxColor); c++ {
		taken := false
		for _, nc := range v.neighbor {
			if nc == c {
				taken = true
				break
			}
		}
		if !taken {
			free = append(free, c)
		}
	}
	if len(free) == 0 {
		v.color = int32(v.rng.Intn(v.par.MaxColor + 1))
	} else {
		v.color = free[v.rng.Intn(len(free))]
	}
	v.repicks++
}

// Done implements radio.Protocol.
func (v *Node) Done() bool { return v.decided }

// Reset implements radio.Restartable: a restarted node rejoins with no
// memory, as a fresh wake-up.
func (v *Node) Reset() {
	v.started = false
	v.color = -1
	v.decided = false
	v.quiet = 0
	v.neighbor = nil
	v.repicks = 0
}

// Color returns the decided color, or −1 while undecided (an
// in-progress claim is not a commitment, so survivors-oriented checks
// treat undecided nodes as uncolored).
func (v *Node) Color() int32 {
	if !v.decided {
		return -1
	}
	return v.color
}

// Repicks returns how many times the node abandoned a claim.
func (v *Node) Repicks() int64 { return v.repicks }
