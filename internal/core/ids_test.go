package core_test

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func TestRandomIDSpace(t *testing.T) {
	if core.RandomIDSpace(10) != 1000 {
		t.Errorf("space(10) = %d", core.RandomIDSpace(10))
	}
	if core.RandomIDSpace(1) != 8 {
		t.Errorf("space(1) = %d, want clamped floor", core.RandomIDSpace(1))
	}
	if core.RandomIDSpace(100_000) != int64(1)<<31-1 {
		t.Errorf("space must clamp to int32 range, got %d", core.RandomIDSpace(100_000))
	}
}

func TestCountIDCollisions(t *testing.T) {
	if got := core.CountIDCollisions([]radio.NodeID{1, 2, 3}); got != 0 {
		t.Errorf("collisions = %d", got)
	}
	if got := core.CountIDCollisions([]radio.NodeID{1, 2, 1, 1}); got != 3 {
		t.Errorf("collisions = %d, want 3", got)
	}
	if got := core.CountIDCollisions(nil); got != 0 {
		t.Errorf("collisions(nil) = %d", got)
	}
}

func TestRandomIDsUniqueWhp(t *testing.T) {
	// With the paper's n³ space, 150 nodes collide with probability
	// ≈ 1/(2·150); one fixed seed should be collision-free.
	par := core.Practical(150, 10, 4, 9)
	_, _, ids := core.NodesWithRandomIDs(150, 5, par, core.Ablation{}, 0)
	if len(ids) != 150 {
		t.Fatal("wrong id count")
	}
	if c := core.CountIDCollisions(ids); c != 0 {
		t.Errorf("unexpected collisions: %d", c)
	}
	for _, id := range ids {
		if id < 1 {
			t.Fatalf("id %d outside [1..n³]", id)
		}
	}
}

func TestRandomIDColoringWorks(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 90, Side: 5.5, Radius: 1.2, Seed: 3})
	par := paramsFor(d)
	nodes, protos, ids := core.NodesWithRandomIDs(d.N(), 17, par, core.Ablation{}, 0)
	if c := core.CountIDCollisions(ids); c != 0 {
		t.Skipf("seed produced %d id collisions; pick another seed", c)
	}
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 5_000_000, NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("run incomplete")
	}
	colors := make([]int32, d.N())
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	if rep := verify.Check(d.G, colors); !rep.OK() {
		t.Fatalf("random-ID coloring bad: %v", rep)
	}
}

func TestForcedIDCollisionsDegradeGracefully(t *testing.T) {
	// A tiny ID space forces collisions. The run must still terminate —
	// correctness may fail (that is the paper's P_ambIDs trade-off), but
	// nothing may hang or panic.
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.3, Seed: 4})
	par := paramsFor(d)
	_, protos, ids := core.NodesWithRandomIDs(d.N(), 9, par, core.Ablation{}, 8)
	if core.CountIDCollisions(ids) == 0 {
		t.Fatal("test setup: expected collisions with id space 8")
	}
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 8_000_000, NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Error("run with colliding ids did not terminate")
	}
}
