package radio

import (
	"context"
	"errors"
	"fmt"
)

// Non-aligned slot boundaries. Sect. 2 of the paper: "all analytical
// results carry over to the practical non-aligned case with an
// additional small constant factor, since each time slot can overlap
// with at most two time-slots of a neighbor [29]". This engine makes
// that claim testable: every node's local clock is shifted by half a
// slot (offset 0 or 1 half-slots), transmissions occupy two consecutive
// half-slots, receivers listen continuously while not transmitting, and
// a message is received iff no other audible transmission overlaps its
// two half-slots and the receiver transmits in neither.
//
// Protocols run unchanged. Experiment E17 measures the claimed
// small-constant slowdown and the preservation of correctness.

// RunUnaligned executes cfg under half-slot clock offsets. offsets[i] ∈
// {0, 1} is node i's clock shift in half-slots; nil derives a
// deterministic pseudo-random assignment from the node index. The
// parallel Workers option is ignored (the unaligned resolver is
// sequential).
func RunUnaligned(cfg Config, offsets []int8) (*Result, error) {
	return RunUnalignedContext(context.Background(), cfg, offsets)
}

// RunUnalignedContext is RunUnaligned with cancellation, polled every
// 1024 slots like RunContext. This engine is also the home of the
// fault layer's clock-skew profiles: a Config.Faults injector with
// skew supplies the offsets (pass nil to use them), and its loss,
// jam, and crash faults apply here exactly as in the aligned kernel.
func RunUnalignedContext(ctx context.Context, cfg Config, offsets []int8) (*Result, error) {
	if cfg.Medium != nil {
		// The half-slot resolver models overlap between offset slots; a
		// pluggable medium has no notion of half-slots, so the
		// combination is rejected rather than silently ignored.
		return nil, errors.New("radio: RunUnaligned does not support a pluggable medium")
	}
	// The half-slot resolver below is its own sequential loop; the tiled
	// slot kernel does not apply, so drop the knob rather than build
	// unused tile state.
	cfg.Tiles = 0
	e, err := newEngine(cfg, true) // reuse validation and result bookkeeping
	if err != nil {
		return nil, err
	}
	n := e.n
	if offsets == nil && cfg.Faults != nil && cfg.Faults.HasSkew() {
		offsets = cfg.Faults.SkewOffsets(n)
	}
	if offsets == nil {
		offsets = make([]int8, n)
		for i := range offsets {
			offsets[i] = int8(NodeRand(0x0FF5E7, NodeID(i)).Intn(2))
		}
	}
	if len(offsets) != n {
		return nil, fmt.Errorf("radio: %d offsets for %d nodes", len(offsets), n)
	}
	for i, off := range offsets {
		if off != 0 && off != 1 {
			return nil, fmt.Errorf("radio: node %d has offset %d, want 0 or 1", i, off)
		}
	}
	u := &unaligned{e: e, offsets: offsets}
	u.init()
	done := ctx.Done()
	for u.step() {
		if done != nil && e.slot&cancelCheckMask == 0 {
			select {
			case <-done:
				return nil, ctx.Err()
			default:
			}
		}
	}
	return e.Result(), nil
}

// txRec is one in-flight transmission: initiated in slot "slot" by
// "node", occupying half-slots h0 and h0+1.
type txRec struct {
	node NodeID
	msg  Message
	h0   int64
}

type unaligned struct {
	e       *Engine
	offsets []int8

	// occ[u][h&7] counts transmitting neighbors of u in half-slot h;
	// selfTx[u][h&7] marks u transmitting in h. Ring of 8 half-slots (a half is cleared 2–3 slots before it is resolved, so 4 would alias).
	occ    [][8]int16
	selfTx [][8]bool

	prev []txRec // transmissions initiated in the previous slot
}

func (u *unaligned) init() {
	n := u.e.n
	u.occ = make([][8]int16, n)
	u.selfTx = make([][8]bool, n)
}

// clearHalf zeroes ring entries for half-slot h across all nodes.
func (u *unaligned) clearHalf(h int64) {
	idx := h & 7
	for i := range u.occ {
		u.occ[i][idx] = 0
		u.selfTx[i][idx] = false
	}
}

func (u *unaligned) step() bool {
	e := u.e
	t := e.slot
	ob := e.cfg.Observer
	met := e.cfg.Metrics

	// Fault events first, then wake-ups. Crashed nodes clear e.awake,
	// which every sweep below already consults, so the crash/restart
	// machinery is shared with the aligned kernel.
	if e.fs != nil {
		e.faultBeginSlot(t, ob, met)
	}
	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.next++
		if e.off != nil && e.off[id] {
			continue // fail-stopped before waking; restart handles rejoin
		}
		e.awake[id] = true
		if e.everWoke != nil {
			e.everWoke[id] = true
		}
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
	}

	// This slot's transmissions touch half-slots 2t .. 2t+2. Halves
	// 2t+1 and 2t+2 are first touched now; zero their ring entries.
	u.clearHalf(2*t + 1)
	u.clearHalf(2*t + 2)

	// Send phase.
	var cur []txRec
	for i := 0; i < e.n; i++ {
		if !e.awake[i] {
			continue
		}
		msg := e.cfg.Protocols[i].Send(t)
		if msg == nil {
			continue
		}
		h0 := 2*t + int64(u.offsets[i])
		cur = append(cur, txRec{node: NodeID(i), msg: msg, h0: h0})
		e.res.Transmissions++
		e.res.PerNodeTx[i]++
		if bits := msg.Bits(e.cfg.NEstimate); bits > e.res.MaxMessageBits {
			e.res.MaxMessageBits = bits
		}
		if ob != nil {
			ob.OnTransmit(t, NodeID(i), msg)
		}
		if met != nil {
			met.AddTransmission()
		}
		for _, h := range [2]int64{h0, h0 + 1} {
			u.selfTx[i][h&7] = true
			for _, w := range e.edges[e.rowStart[i]:e.rowEnd[i]] {
				u.occ[w][h&7]++
			}
		}
	}

	// Resolve the previous slot's transmissions: their half-slots
	// (2(t−1) .. 2t) are now finalized.
	for _, tx := range u.prev {
		v := int(tx.node)
		for _, w := range e.edges[e.rowStart[v]:e.rowEnd[v]] {
			if !e.awake[w] {
				continue
			}
			blocked := false
			collided := false
			for _, h := range [2]int64{tx.h0, tx.h0 + 1} {
				idx := h & 7
				if u.selfTx[w][idx] {
					blocked = true
				}
				if u.occ[w][idx] > 1 {
					blocked = true
					collided = true
				}
			}
			if blocked {
				if collided {
					e.res.Collisions++
					if ob != nil {
						ob.OnCollision(t, NodeID(w), 2)
					}
					if met != nil {
						met.AddCollision()
					}
				}
				continue
			}
			if e.fs != nil && e.faultSuppressed(t, int32(v), w, &e.res.Jammed, &e.res.Lost, met) {
				continue
			}
			if e.dropped(t, w) {
				if met != nil {
					met.AddDrop()
				}
				continue
			}
			e.res.Deliveries++
			if ob != nil {
				ob.OnDeliver(t, NodeID(w), tx.msg)
			}
			if met != nil {
				met.AddDelivery()
			}
			e.cfg.Protocols[w].Recv(t, tx.msg)
		}
	}
	u.prev = cur

	// Decision detection, as in the aligned engine.
	for i := 0; i < e.n; i++ {
		if !e.decided[i] && e.awake[i] && e.cfg.Protocols[i].Done() {
			e.decided[i] = true
			e.numDone++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
		}
	}
	if ob != nil {
		ob.OnSlot(t)
	}
	if met != nil {
		met.AddSlot()
	}
	e.slot++
	simulatedSlots.Add(1)
	e.res.Slots = e.slot
	if e.numDone == e.n {
		e.res.AllDone = true
		return false
	}
	if e.fs != nil && e.numDone+e.fs.neverDone == e.n {
		return false // every node that can still decide has (see engine.go)
	}
	return e.slot < e.cfg.MaxSlots
}
