package graph_test

import (
	"fmt"

	"radiocolor/internal/graph"
)

// ExampleGraph_Kappa measures the bounded-independence parameters of a
// 6-cycle: any 1-hop neighborhood (a 3-path) has 2 independent nodes,
// any 2-hop neighborhood (a 5-path) has 3.
func ExampleGraph_Kappa() {
	b := graph.NewBuilder(6)
	for i := 0; i < 6; i++ {
		b.AddEdge(i, (i+1)%6)
	}
	g := b.Build()
	k := g.Kappa(graph.KappaOptions{})
	fmt.Printf("κ₁=%d κ₂=%d exact=%v\n", k.K1, k.K2, k.Exact)
	// Output:
	// κ₁=2 κ₂=3 exact=true
}

// ExampleGraph_Square shows the distance-2 graph of a path: vertices two
// apart become adjacent.
func ExampleGraph_Square() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	sq := b.Build().Square()
	fmt.Println(sq.HasEdge(0, 2), sq.HasEdge(0, 3))
	// Output:
	// true false
}

// ExampleGraph_GreedyColoring colors a star with two colors.
func ExampleGraph_GreedyColoring() {
	b := graph.NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	colors := b.Build().GreedyColoring()
	fmt.Println(graph.NumColors(colors), colors[0] != colors[1])
	// Output:
	// 2 true
}
