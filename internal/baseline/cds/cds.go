// Package cds implements a decentralized color-fixing baseline in the
// style of Chakrabarty–de Supinski (arXiv:1910.13900): nodes start from
// an ARBITRARY — possibly improper — (Δ+1)-coloring and repair it in
// place. Each round every node broadcasts its current color; a node
// that sees a neighbor holding its own color becomes conflicted and,
// with probability ½ (the lazy rule that breaks symmetry between two
// conflicted neighbors), redraws uniformly from {0..Δ} minus all
// neighbor colors it can see. Because a redraw excludes every visible
// neighbor color, a conflict-free node can never be made conflicted by
// its neighbors' repairs — "conflict-free" is a stable predicate, which
// is what makes the algorithm self-stabilizing and lets Done() report
// it safely.
//
// It is the principled comparator for the churn engine's retract-and-
// re-contend repair (radio engine, churn.RepairRetract): identical
// recover-from-conflict task, but in the synchronous message-passing
// model with free neighbor knowledge and no MAC layer — the same role
// package luby plays for cold-start coloring.
package cds

import (
	"fmt"
	"math/rand"

	"radiocolor/internal/graph"
	"radiocolor/internal/msgpass"
)

// Node is one color-fixing participant. It implements msgpass.Protocol.
type Node struct {
	rng   *rand.Rand
	delta int
	color int32
	quiet bool // no conflict observed in the last completed round

	taken []bool // scratch: colors held by neighbors this round
}

// New creates a node holding the (possibly conflicting) initial color,
// with palette {0..delta}.
func New(delta int, initial int32, rng *rand.Rand) *Node {
	if initial < 0 || int(initial) > delta {
		panic(fmt.Sprintf("cds: initial color %d outside palette {0..%d}", initial, delta))
	}
	return &Node{rng: rng, delta: delta, color: initial, taken: make([]bool, delta+1)}
}

// Color returns the node's current color; final once Done().
func (v *Node) Color() int32 { return v.color }

// Done reports whether the node observed a conflict-free neighborhood.
// Stable: neighbors' redraws exclude this node's color, so once true it
// stays true.
func (v *Node) Done() bool { return v.quiet }

// Round implements msgpass.Protocol.
func (v *Node) Round(round int, inbox map[int32]any) any {
	if round == 0 {
		// Nothing observed yet; announce the initial color.
		return v.color
	}
	for i := range v.taken {
		v.taken[i] = false
	}
	conflict := false
	for _, m := range inbox {
		c, ok := m.(int32)
		if !ok {
			continue
		}
		if int(c) <= v.delta {
			v.taken[c] = true
		}
		if c == v.color {
			conflict = true
		}
	}
	if !conflict {
		v.quiet = true
		return v.color // keep the last word visible to late repairers
	}
	if v.rng.Intn(2) == 0 {
		// Lazy round: keep the conflicted color, try again next round.
		return v.color
	}
	// Redraw uniformly from the free colors. With ≤ Δ neighbors at
	// least one of the Δ+1 palette entries is free.
	free := 0
	for _, t := range v.taken {
		if !t {
			free++
		}
	}
	k := v.rng.Intn(free)
	for c, t := range v.taken {
		if t {
			continue
		}
		if k == 0 {
			v.color = int32(c)
			break
		}
		k--
	}
	return v.color
}

// Nodes builds one node per vertex holding initial[i], with
// deterministic per-node streams.
func Nodes(delta int, initial []int32, seed int64) ([]*Node, []msgpass.Protocol) {
	nodes := make([]*Node, len(initial))
	protos := make([]msgpass.Protocol, len(initial))
	for i := range nodes {
		nodes[i] = New(delta, initial[i], rand.New(rand.NewSource(seed^(int64(i+1)*0x9E3779B9))))
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Fix repairs initial over g in at most maxRounds rounds and returns
// the run summary plus the repaired coloring. The palette is
// {0..Δ(g)}; initial colors outside it are clamped into range (a
// clamped color just counts as one more conflict to fix).
func Fix(g *graph.Graph, initial []int32, seed int64, maxRounds int) (*msgpass.Result, []int32, error) {
	if len(initial) != g.N() {
		return nil, nil, fmt.Errorf("cds: %d initial colors for %d nodes", len(initial), g.N())
	}
	delta := g.MaxDegree()
	clamped := make([]int32, len(initial))
	for i, c := range initial {
		if c < 0 || int(c) > delta {
			c = 0
		}
		clamped[i] = c
	}
	nodes, protos := Nodes(delta, clamped, seed)
	res, err := msgpass.Run(g, protos, maxRounds)
	if err != nil {
		return nil, nil, err
	}
	colors := make([]int32, len(nodes))
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	return res, colors, nil
}
