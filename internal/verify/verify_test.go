package verify

import (
	"strings"
	"testing"

	"radiocolor/internal/graph"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func triangle() *graph.Graph {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	return b.Build()
}

func TestCheckProperComplete(t *testing.T) {
	g := pathGraph(4)
	r := Check(g, []int32{0, 1, 0, 1})
	if !r.OK() || !r.Complete || !r.Proper {
		t.Fatalf("valid coloring rejected: %v", r)
	}
	if r.NumColors != 2 || r.MaxColor != 1 {
		t.Errorf("NumColors=%d MaxColor=%d", r.NumColors, r.MaxColor)
	}
	if len(r.Violations) != 0 || len(r.UncoloredNodes) != 0 {
		t.Error("spurious violations")
	}
	if !strings.Contains(r.String(), "proper=true") {
		t.Error("String misformats")
	}
}

func TestCheckDetectsConflict(t *testing.T) {
	g := pathGraph(3)
	r := Check(g, []int32{5, 5, 0})
	if r.Proper || r.OK() {
		t.Fatal("conflict not detected")
	}
	if len(r.Violations) != 1 {
		t.Fatalf("violations = %v", r.Violations)
	}
	v := r.Violations[0]
	if v.U != 0 || v.V != 1 || v.Color != 5 {
		t.Errorf("violation = %v", v)
	}
	if v.String() == "" {
		t.Error("violation string empty")
	}
}

func TestCheckDetectsIncomplete(t *testing.T) {
	g := pathGraph(3)
	r := Check(g, []int32{0, Uncolored, 0})
	if r.Complete || r.OK() {
		t.Fatal("incompleteness not detected")
	}
	if !r.Proper {
		t.Error("properness judged on colored subgraph: 0 _ 0 is proper")
	}
	if len(r.UncoloredNodes) != 1 || r.UncoloredNodes[0] != 1 {
		t.Errorf("uncolored = %v", r.UncoloredNodes)
	}
	if r.NumColors != 1 {
		t.Errorf("NumColors = %d", r.NumColors)
	}
}

func TestCheckEmptyColoring(t *testing.T) {
	g := pathGraph(2)
	r := Check(g, []int32{Uncolored, Uncolored})
	if r.MaxColor != -1 || r.NumColors != 0 || r.Complete {
		t.Errorf("empty coloring: %v", r)
	}
}

func TestCheckPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Check(pathGraph(3), []int32{0})
}

func TestCheckCapsViolationLists(t *testing.T) {
	// A monochromatic clique of 40 nodes has 780 violating edges; the
	// report keeps at most 64.
	b := graph.NewBuilder(40)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			b.AddEdge(i, j)
		}
	}
	colors := make([]int32, 40)
	r := Check(b.Build(), colors)
	if r.Proper {
		t.Fatal("monochromatic clique accepted")
	}
	if len(r.Violations) > 64 {
		t.Errorf("violations not capped: %d", len(r.Violations))
	}
}

func TestClassIndependence(t *testing.T) {
	g := triangle()
	ind := ClassIndependence(g, []int32{0, 1, 1})
	if !ind[0] {
		t.Error("singleton class must be independent")
	}
	if ind[1] {
		t.Error("adjacent pair reported independent")
	}
	if len(ind) != 2 {
		t.Errorf("classes = %v", ind)
	}
	// Uncolored nodes belong to no class.
	ind = ClassIndependence(g, []int32{Uncolored, 1, Uncolored})
	if len(ind) != 1 || !ind[1] {
		t.Errorf("classes = %v", ind)
	}
}

func TestCheckLocality(t *testing.T) {
	// Path of 5: θ_v = 3 everywhere (middle degrees), bound = (κ₂+1)·θ.
	g := pathGraph(5)
	colors := []int32{0, 1, 0, 1, 0}
	if viol := CheckLocality(g, colors, 2); len(viol) != 0 {
		t.Errorf("low coloring flagged: %v", viol)
	}
	// A huge color violates every neighbor's bound.
	colors = []int32{0, 1000, 0, 1, 0}
	viol := CheckLocality(g, colors, 2)
	if len(viol) == 0 {
		t.Fatal("high color not flagged")
	}
	for _, v := range viol {
		if v.Phi != 1000 {
			t.Errorf("viol = %+v", v)
		}
		if v.Bound >= 1000 {
			t.Errorf("bound = %d", v.Bound)
		}
	}
}

func TestPhiOverTheta(t *testing.T) {
	g := pathGraph(3)
	ratios := PhiOverTheta(g, []int32{0, 2, 1})
	// Node 0: φ = max(0,2) = 2; θ = max degree in N² = 3 → 2/3.
	if ratios[0] < 0.66 || ratios[0] > 0.67 {
		t.Errorf("ratio[0] = %v", ratios[0])
	}
	// All uncolored → zeros.
	zeros := PhiOverTheta(g, []int32{Uncolored, Uncolored, Uncolored})
	for _, z := range zeros {
		if z != 0 {
			t.Errorf("uncolored ratio = %v", z)
		}
	}
}

func TestCheckClusterRanges(t *testing.T) {
	kappa2 := 3
	colors := []int32{0, 4, 7, 8, Uncolored}
	tcs := []int32{-1, 1, 1, 2, 1}
	// tc=1 window: [4, 7]; tc=2 window: [8, 11].
	if viol := CheckClusterRanges(colors, tcs, kappa2); len(viol) != 0 {
		t.Errorf("valid ranges flagged: %v", viol)
	}
	// Leader with nonzero color.
	viol := CheckClusterRanges([]int32{3}, []int32{-1}, kappa2)
	if len(viol) != 1 {
		t.Fatalf("bad leader not flagged: %v", viol)
	}
	// Color outside the window.
	viol = CheckClusterRanges([]int32{9}, []int32{1}, kappa2)
	if len(viol) != 1 || viol[0].Color != 9 || viol[0].TC != 1 {
		t.Fatalf("out-of-window color not flagged: %v", viol)
	}
}

func TestReportOK(t *testing.T) {
	r := &Report{Complete: true, Proper: true}
	if !r.OK() {
		t.Error("OK() false")
	}
	r.Proper = false
	if r.OK() {
		t.Error("OK() true despite conflict")
	}
}
