package sched

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiocolor/internal/graph"
)

// randomProperColoring greedily colors a random graph — always proper.
func randomProperColoring(n int, p float64, seed int64) (*graph.Graph, []int32) {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	g := b.Build()
	return g, g.GreedyColoring()
}

// Property: a schedule built from any proper coloring has zero direct
// conflicts, and its hidden-terminal exposure never exceeds the largest
// same-color independent set in a neighborhood.
func TestQuickProperColoringConflictFree(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomProperColoring(25, 0.2, seed)
		s, err := FromColoring(colors)
		if err != nil {
			return false
		}
		if len(s.DirectConflicts(g)) != 0 {
			return false
		}
		// MaxInterferers is bounded by the exact per-neighborhood
		// same-slot count recomputed independently.
		worst := 0
		for v := 0; v < g.N(); v++ {
			count := map[int32]int{}
			for _, u := range g.Adj(v) {
				count[s.Slot[u]]++
				if count[s.Slot[u]] > worst {
					worst = count[s.Slot[u]]
				}
			}
		}
		return s.MaxInterferers(g) == worst
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: SimulateFrame event counts are conserved — every
// (receiver, occupied slot) pair is either clean or collided, and clean
// receptions never exceed Σ_u (#distinct neighbor slots of u).
func TestQuickFrameAccounting(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomProperColoring(20, 0.25, seed)
		s, err := FromColoring(colors)
		if err != nil {
			return false
		}
		fr := s.SimulateFrame(g)
		if fr.Transmissions != g.N() {
			return false
		}
		total := 0
		for u := 0; u < g.N(); u++ {
			slots := map[int32]bool{}
			for _, w := range g.Adj(u) {
				if s.Slot[w] != s.Slot[u] {
					slots[s.Slot[w]] = true
				}
			}
			total += len(slots)
		}
		// Clean + collided = all audible distinct (receiver, slot)
		// events… collided events collapse multiple senders into one
		// slot, so the sum equals the distinct-slot count exactly.
		return fr.CleanReceptions+fr.Collisions == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: a distance-2 coloring (proper on G²) yields zero hidden
// collisions on G.
func TestQuickSquareColoringCollisionFree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(18)
		for i := 0; i < 18; i++ {
			for j := i + 1; j < 18; j++ {
				if r.Float64() < 0.15 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.Build()
		colors := g.Square().GreedyColoring()
		s, err := FromColoring(colors)
		if err != nil {
			return false
		}
		fr := s.SimulateFrame(g)
		return fr.Collisions == 0 && len(s.DirectConflicts(g)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
