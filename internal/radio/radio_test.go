package radio

import (
	"testing"

	"radiocolor/internal/graph"
)

// testMsg is a trivial payload carrying the sender and a value.
type testMsg struct {
	from NodeID
	val  int64
}

func (m *testMsg) Sender() NodeID { return m.from }
func (m *testMsg) Bits(n int) int { return 32 }

// scriptProto transmits according to a fixed per-slot script (indexed
// from the node's wake-up) and records everything it receives.
type scriptProto struct {
	id       NodeID
	script   []bool // transmit in local slot i?
	started  int64
	wokeAt   int64
	local    int64
	received []NodeID
	recvSlot []int64
	done     bool
	doneAt   int64 // local slot at which to report done (-1: when script ends)
}

func (p *scriptProto) Start(slot int64) { p.started++; p.wokeAt = slot }
func (p *scriptProto) Send(slot int64) Message {
	i := p.local
	p.local++
	if p.doneAt >= 0 && i >= p.doneAt {
		p.done = true
	}
	if i < int64(len(p.script)) && p.script[i] {
		return &testMsg{from: p.id, val: i}
	}
	if p.doneAt < 0 && i >= int64(len(p.script)) {
		p.done = true
	}
	return nil
}
func (p *scriptProto) Recv(slot int64, msg Message) {
	p.received = append(p.received, msg.Sender())
	p.recvSlot = append(p.recvSlot, slot)
}
func (p *scriptProto) Done() bool { return p.done }

// buildScripted creates a network over g where node i follows scripts[i].
func buildScripted(g *graph.Graph, scripts [][]bool, wake []int64) ([]*scriptProto, Config) {
	protos := make([]*scriptProto, g.N())
	ifaces := make([]Protocol, g.N())
	for i := range protos {
		protos[i] = &scriptProto{id: NodeID(i), script: scripts[i], doneAt: -1}
		ifaces[i] = protos[i]
	}
	return protos, Config{G: g, Protocols: ifaces, Wake: wake, MaxSlots: 100}
}

func line(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestExactlyOneRuleDelivers(t *testing.T) {
	// 0-1-2: node 0 transmits alone in slot 0; 1 must receive, 2 must not
	// (not adjacent).
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{true}, {false}, {false}}, WakeSynchronous(3))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 1 || protos[1].received[0] != 0 {
		t.Errorf("node 1 received %v, want [0]", protos[1].received)
	}
	if len(protos[2].received) != 0 {
		t.Errorf("node 2 received %v, want none", protos[2].received)
	}
	if res.Deliveries != 1 || res.Transmissions != 1 || res.Collisions != 0 {
		t.Errorf("stats: %v", res)
	}
}

func TestCollisionSilence(t *testing.T) {
	// 0-1-2 path: 0 and 2 transmit simultaneously; 1 hears nothing
	// (collision), and receives no Recv call at all.
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{true}, {false}, {true}}, WakeSynchronous(3))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Errorf("node 1 received %v despite collision", protos[1].received)
	}
	if res.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", res.Collisions)
	}
}

func TestTransmitterCannotReceive(t *testing.T) {
	// 0-1: both transmit in slot 0, then 1 transmits alone in slot 1
	// while 0 listens. In slot 0 neither receives (both transmitting).
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{{true, false}, {true, true}}, WakeSynchronous(2))
	_, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Errorf("transmitting node 1 received %v", protos[1].received)
	}
	if len(protos[0].received) != 1 || protos[0].recvSlot[0] != 1 {
		t.Errorf("node 0 received %v at %v, want one message in slot 1", protos[0].received, protos[0].recvSlot)
	}
}

func TestHiddenTerminal(t *testing.T) {
	// Star: two leaves cannot hear each other; both transmitting collide
	// at the hub only.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	protos, cfg := buildScripted(g, [][]bool{{false}, {true}, {true}}, WakeSynchronous(3))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[0].received) != 0 {
		t.Error("hub should experience a collision")
	}
	if res.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", res.Collisions)
	}
}

func TestSleepingNodesDeafAndMute(t *testing.T) {
	// Node 1 wakes at slot 5. Node 0 transmits in slots 0..9. Node 1 must
	// only receive transmissions from slot 5 on, and Start must be
	// called exactly once at slot 5.
	g := line(2)
	script0 := make([]bool, 10)
	for i := range script0 {
		script0[i] = true
	}
	protos, cfg := buildScripted(g, [][]bool{script0, make([]bool, 10)}, []int64{0, 5})
	_, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if protos[1].started != 1 || protos[1].wokeAt != 5 {
		t.Errorf("Start calls=%d at %d, want 1 at slot 5", protos[1].started, protos[1].wokeAt)
	}
	for _, s := range protos[1].recvSlot {
		if s < 5 {
			t.Errorf("sleeping node received at slot %d", s)
		}
	}
	if len(protos[1].received) != 5 {
		t.Errorf("received %d messages, want 5 (slots 5..9)", len(protos[1].received))
	}
}

func TestDecisionLatency(t *testing.T) {
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{nil, nil}, []int64{0, 3})
	protos[0].doneAt = 2 // done in its local slot 2 → global slot 2
	protos[1].doneAt = 4 // woke at 3 → global slot 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatal("run should complete")
	}
	if res.DecideSlot[0] != 2 || res.DecideSlot[1] != 7 {
		t.Errorf("decide slots = %v", res.DecideSlot)
	}
	if res.Latency(0) != 2 || res.Latency(1) != 4 {
		t.Errorf("latencies = %d, %d", res.Latency(0), res.Latency(1))
	}
	if res.MaxLatency() != 4 {
		t.Errorf("MaxLatency = %d", res.MaxLatency())
	}
}

func TestMaxSlotsAborts(t *testing.T) {
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{nil, nil}, WakeSynchronous(2))
	protos[0].doneAt = 1 << 40 // never
	protos[1].doneAt = 1 << 40
	cfg.MaxSlots = 50
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDone || res.Slots != 50 {
		t.Errorf("res = %v", res)
	}
	if res.MaxLatency() != -1 || res.Latency(0) != -1 {
		t.Error("undecided nodes must report latency -1")
	}
}

func TestConfigValidation(t *testing.T) {
	g := line(2)
	cases := []Config{
		{},
		{G: g},
		{G: g, Protocols: make([]Protocol, 2)},
		{G: g, Protocols: make([]Protocol, 2), Wake: []int64{0, -1}},
		{G: g, Protocols: make([]Protocol, 1), Wake: []int64{0, 0}},
	}
	for i, cfg := range cases {
		if _, err := NewEngine(cfg); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestMessageBitsAccounting(t *testing.T) {
	g := line(2)
	_, cfg := buildScripted(g, [][]bool{{true}, nil}, WakeSynchronous(2))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxMessageBits != 32 {
		t.Errorf("MaxMessageBits = %d, want 32", res.MaxMessageBits)
	}
}

func TestPerNodeTx(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true, true, true}, {true}, nil}, WakeSynchronous(3))
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PerNodeTx[0] != 3 || res.PerNodeTx[1] != 1 || res.PerNodeTx[2] != 0 {
		t.Errorf("PerNodeTx = %v", res.PerNodeTx)
	}
	if res.Transmissions != 4 {
		t.Errorf("Transmissions = %d", res.Transmissions)
	}
}

func TestDropInjection(t *testing.T) {
	// With DropProb = 1 nothing is ever delivered.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{{true, true, true}, nil}, WakeSynchronous(2))
	cfg.DropProb = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[0].received)+len(protos[1].received) != 0 {
		t.Error("messages delivered despite DropProb=1")
	}
	if res.Deliveries != 0 {
		t.Errorf("Deliveries = %d", res.Deliveries)
	}
	// Determinism: the same seed drops the same deliveries.
	run := func(seed int64) int {
		protos, cfg := buildScripted(g, [][]bool{{true, true, true, true, true, true}, nil}, WakeSynchronous(2))
		cfg.DropProb = 0.5
		cfg.DropSeed = seed
		if _, err := Run(cfg); err != nil {
			t.Fatal(err)
		}
		return len(protos[1].received)
	}
	if run(7) != run(7) {
		t.Error("drop coin not deterministic")
	}
}

// randProto transmits with a fixed probability from its own stream and
// counts receptions — used for the sequential ≡ parallel determinism
// check.
type randProto struct {
	id    NodeID
	rng   Rand
	p     float64
	steps int64
	limit int64
	rxSum int64
	txs   int64
}

func (r *randProto) Start(int64) {}
func (r *randProto) Send(int64) Message {
	r.steps++
	if r.rng.Float64() < r.p {
		r.txs++
		return &testMsg{from: r.id, val: r.steps}
	}
	return nil
}
func (r *randProto) Recv(_ int64, msg Message) { r.rxSum += int64(msg.Sender()) + 1 }
func (r *randProto) Done() bool                { return r.steps >= r.limit }

func runRandNetwork(workers int) (int64, int64, *Result) {
	g := line(40)
	protos := make([]Protocol, g.N())
	rps := make([]*randProto, g.N())
	for i := range protos {
		rps[i] = &randProto{id: NodeID(i), rng: NodeRand(1234, NodeID(i)), p: 0.2, limit: 400}
		protos[i] = rps[i]
	}
	res, err := Run(Config{
		G: g, Protocols: protos, Wake: WakeUniform(g.N(), 50, 99),
		Workers: workers,
	})
	if err != nil {
		panic(err)
	}
	var rx, tx int64
	for _, r := range rps {
		rx += r.rxSum
		tx += r.txs
	}
	return rx, tx, res
}

func TestParallelMatchesSequential(t *testing.T) {
	rx1, tx1, res1 := runRandNetwork(1)
	rx4, tx4, res4 := runRandNetwork(4)
	if rx1 != rx4 || tx1 != tx4 {
		t.Errorf("parallel differs: rx %d vs %d, tx %d vs %d", rx1, rx4, tx1, tx4)
	}
	if res1.Transmissions != res4.Transmissions || res1.Deliveries != res4.Deliveries ||
		res1.Collisions != res4.Collisions || res1.Slots != res4.Slots {
		t.Errorf("results differ: %v vs %v", res1, res4)
	}
}

func TestNodeRandStreamsDiffer(t *testing.T) {
	a := NodeRand(1, 0)
	b := NodeRand(1, 1)
	same := true
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			same = false
			break
		}
	}
	if same {
		t.Error("adjacent node streams identical")
	}
	// Same (seed, id) must reproduce.
	c := NodeRand(1, 0)
	d := NodeRand(1, 0)
	for i := 0; i < 10; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("NodeRand not reproducible")
		}
	}
}

// countingObserver checks the Observer event stream.
type countingObserver struct {
	NopObserver
	slots, tx, rx, coll, decide int
}

func (o *countingObserver) OnSlot(int64)                      { o.slots++ }
func (o *countingObserver) OnTransmit(int64, NodeID, Message) { o.tx++ }
func (o *countingObserver) OnDeliver(int64, NodeID, Message)  { o.rx++ }
func (o *countingObserver) OnCollision(int64, NodeID, int)    { o.coll++ }
func (o *countingObserver) OnDecide(int64, NodeID)            { o.decide++ }

func TestObserverEvents(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true}, nil, {true}}, WakeSynchronous(3))
	obs := &countingObserver{}
	cfg.Observer = obs
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if obs.tx != int(res.Transmissions) || obs.rx != int(res.Deliveries) || obs.coll != int(res.Collisions) {
		t.Errorf("observer counts diverge from result: %+v vs %v", obs, res)
	}
	if obs.decide != 3 {
		t.Errorf("decide events = %d, want 3", obs.decide)
	}
	if int64(obs.slots) != res.Slots {
		t.Errorf("slot events = %d, want %d", obs.slots, res.Slots)
	}
}

func TestWakeSchedules(t *testing.T) {
	if w := WakeSynchronous(5); len(w) != 5 {
		t.Fatal("sync length")
	} else {
		for _, x := range w {
			if x != 0 {
				t.Fatal("sync nonzero")
			}
		}
	}
	w := WakeUniform(100, 50, 3)
	for _, x := range w {
		if x < 0 || x >= 50 {
			t.Fatalf("uniform out of range: %d", x)
		}
	}
	w = WakeSequential(5, 10)
	for i, x := range w {
		if x != int64(i)*10 {
			t.Fatalf("sequential[%d] = %d", i, x)
		}
	}
	w = WakeBursty(10, 3, 100)
	if w[0] != 0 || w[2] != 0 || w[3] != 100 || w[9] != 300 {
		t.Fatalf("bursty = %v", w)
	}
	if w := WakeBursty(4, 0, 10); w[1] != 10 {
		t.Fatalf("bursty clamps burst size: %v", w)
	}
	w = WakeAdversarial(60, 200, 5)
	if len(w) != 60 {
		t.Fatal("adversarial length")
	}
	for _, x := range w {
		if x < 0 {
			t.Fatal("negative wake slot")
		}
	}
	// Named patterns produce valid schedules.
	for _, p := range WakePatterns {
		w := p.Make(30, 100, 7)
		if len(w) != 30 {
			t.Errorf("pattern %s: wrong length", p.Name)
		}
		for _, x := range w {
			if x < 0 {
				t.Errorf("pattern %s: negative slot", p.Name)
			}
		}
	}
}

func TestStepwiseEngine(t *testing.T) {
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{{true}, nil}, WakeSynchronous(2))
	protos[0].doneAt = 3
	protos[1].doneAt = 3
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for e.Step() {
		steps++
		if e.Slot() != int64(steps) {
			t.Fatalf("Slot = %d after %d steps", e.Slot(), steps)
		}
	}
	if !e.Result().AllDone {
		t.Error("stepwise run should finish")
	}
}

func TestCaptureEffect(t *testing.T) {
	// Star hub with two transmitting leaves: without capture the hub
	// hears nothing; with CaptureProb=1 it decodes the lower-indexed
	// leaf.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	protos, cfg := buildScripted(g, [][]bool{{false}, {true}, {true}}, WakeSynchronous(3))
	cfg.CaptureProb = 1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[0].received) != 1 || protos[0].received[0] != 1 {
		t.Errorf("hub received %v, want capture of node 1", protos[0].received)
	}
	if res.Captures != 1 || res.Collisions != 0 {
		t.Errorf("captures=%d collisions=%d", res.Captures, res.Collisions)
	}
	// Three-way collisions are never captured.
	b3 := graph.NewBuilder(4)
	b3.AddEdge(0, 1)
	b3.AddEdge(0, 2)
	b3.AddEdge(0, 3)
	g3 := b3.Build()
	protos3, cfg3 := buildScripted(g3, [][]bool{{false}, {true}, {true}, {true}}, WakeSynchronous(4))
	cfg3.CaptureProb = 1
	res3, err := Run(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos3[0].received) != 0 || res3.Captures != 0 {
		t.Errorf("three-way collision captured: %v", protos3[0].received)
	}
	// Capture is off by default.
	protosOff, cfgOff := buildScripted(g, [][]bool{{false}, {true}, {true}}, WakeSynchronous(3))
	if _, err := Run(cfgOff); err != nil {
		t.Fatal(err)
	}
	if len(protosOff[0].received) != 0 {
		t.Error("capture fired with CaptureProb=0")
	}
}

func TestCaptureDeterministic(t *testing.T) {
	run := func() int64 {
		g := line(20)
		protos := make([]Protocol, g.N())
		for i := range protos {
			protos[i] = &randProto{id: NodeID(i), rng: NodeRand(3, NodeID(i)), p: 0.4, limit: 300}
		}
		res, err := Run(Config{G: g, Protocols: protos, Wake: WakeSynchronous(g.N()),
			CaptureProb: 0.5, DropSeed: 11})
		if err != nil {
			t.Fatal(err)
		}
		return res.Captures
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("capture coin not deterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Error("no captures in a contended run (suspicious)")
	}
}
