package medium

import (
	"math"
	"reflect"
	"testing"

	"radiocolor/internal/geom"
)

// bindSINR binds m over the given positions or fails the test.
func bindSINR(t *testing.T, m SINR, pts []geom.Point) Instance {
	t.Helper()
	inst, err := m.Bind(Env{N: len(pts), Points: pts})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSINRBindValidation(t *testing.T) {
	pts := []geom.Point{{X: 0}, {X: 1}}
	if _, err := (SINR{Alpha: 0, Beta: 1.5}).Bind(Env{N: 2, Points: pts}); err == nil {
		t.Error("α=0 bound")
	}
	if _, err := (SINR{Alpha: 4, Beta: 0}).Bind(Env{N: 2, Points: pts}); err == nil {
		t.Error("β=0 bound")
	}
	if _, err := DefaultSINR().Bind(Env{N: 2}); err == nil {
		t.Error("sinr bound without positions")
	}
	if _, err := DefaultSINR().Bind(Env{N: 3, Points: pts}); err == nil {
		t.Error("sinr bound with a position count mismatch")
	}
}

func TestSINRLoneTransmitterDecodes(t *testing.T) {
	// One transmitter, one nearby listener: with the defaults a node at
	// distance 1 receives 0 dBm · 1^−4 = 1 mW, far above −90 dBm noise.
	pts := []geom.Point{{X: 0}, {X: 1}}
	inst := bindSINR(t, DefaultSINR(), pts)
	recs, st := inst.Resolve(0, []int32{0}, allListening, nil)
	want := []Reception{{To: 1, From: 0}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("receptions = %v, want %v", recs, want)
	}
	if st != (Stats{}) {
		t.Errorf("stats = %+v, want zero", st)
	}
}

func TestSINRNoGraphNeeded(t *testing.T) {
	// SINR ranges come from geometry, not adjacency: the medium must
	// work with no CSR in the environment at all (the Bind above already
	// omits it; this pins that a distant listener is simply out of
	// range, not an error).
	noise := MatchedNoiseDBM(0, 1.5, 4, 1.0)
	pts := []geom.Point{{X: 0}, {X: 5}}
	inst := bindSINR(t, SINR{Alpha: 4, Beta: 1.5, NoiseDBM: noise}, pts)
	recs, st := inst.Resolve(0, []int32{0}, allListening, nil)
	if len(recs) != 0 {
		t.Errorf("listener 5 radii away decoded: %v", recs)
	}
	if st.Collisions != 0 || st.Drowned != 0 {
		t.Errorf("out-of-range listener miscounted: %+v", st)
	}
}

func TestSINRMatchedNoiseRadius(t *testing.T) {
	// MatchedNoiseDBM(r): an isolated transmission decodes at distance
	// just under r and fails just past it.
	const r = 1.3
	noise := MatchedNoiseDBM(0, 1.5, 4, r)
	pts := []geom.Point{{X: 0}, {X: r * 0.99}, {Y: r * 1.01}}
	inst := bindSINR(t, SINR{Alpha: 4, Beta: 1.5, NoiseDBM: noise}, pts)
	recs, _ := inst.Resolve(0, []int32{0}, allListening, nil)
	if len(recs) != 1 || recs[0].To != 1 {
		t.Errorf("matched radius wrong: receptions = %v, want exactly node 1", recs)
	}
}

func TestSINRCaptureEffect(t *testing.T) {
	// Listener 0 with a transmitter at distance 1 and another at
	// distance 4: the near signal is 4^4 = 256× the far one, which
	// clears β=1.5 easily — a capture (the graph rule would collide).
	pts := []geom.Point{{}, {X: 1}, {X: -4}}
	inst := bindSINR(t, DefaultSINR(), pts)
	recs, st := inst.Resolve(0, []int32{1, 2}, func(u int32) bool { return u == 0 }, nil)
	want := []Reception{{To: 0, From: 1, Captured: true}}
	if !reflect.DeepEqual(recs, want) {
		t.Errorf("receptions = %v, want captured %v", recs, want)
	}
	if st.Collisions != 0 {
		t.Errorf("capture counted as collision: %+v", st)
	}
}

func TestSINRDrowned(t *testing.T) {
	// Two equidistant transmitters: each signal would decode alone, but
	// neither clears β·(noise + other) at equal strengths — both drowned,
	// one collision for the listener.
	pts := []geom.Point{{}, {X: 1}, {X: -1}}
	inst := bindSINR(t, DefaultSINR(), pts)
	recs, st := inst.Resolve(0, []int32{1, 2}, func(u int32) bool { return u == 0 }, nil)
	if len(recs) != 0 {
		t.Errorf("symmetric collision decoded: %v", recs)
	}
	if st.Drowned != 1 || st.Collisions != 1 {
		t.Errorf("stats = %+v, want one drowned collision", st)
	}
}

func TestSINRBelowNoise(t *testing.T) {
	// A signal audible but too weak for the threshold even alone:
	// noise matched to radius 1, listener at distance just inside the
	// audible range but outside the decode range. Audible means
	// gain ≥ noise; decode needs gain ≥ β·noise — between the two lies
	// the below-noise band (width β^(1/α) in radius).
	noise := MatchedNoiseDBM(0, 1.5, 4, 1.0)
	// decode range: 1.0; audible range: 1.5^(1/4) ≈ 1.106.
	pts := []geom.Point{{}, {X: 1.05}}
	inst := bindSINR(t, SINR{Alpha: 4, Beta: 1.5, NoiseDBM: noise}, pts)
	recs, st := inst.Resolve(0, []int32{1}, allListening, nil)
	if len(recs) != 0 {
		t.Errorf("sub-threshold signal decoded: %v", recs)
	}
	if st.BelowNoise != 1 || st.Collisions != 0 {
		t.Errorf("stats = %+v, want one below-noise loss", st)
	}
}

func TestSINRFarFieldInterference(t *testing.T) {
	// The point of the model: transmitters outside any communication
	// range still sum. 30 border-strength signals of equal power drown a
	// border-strength link even though each alone is ignorable.
	noise := MatchedNoiseDBM(0, 1.5, 4, 1.0)
	pts := []geom.Point{{}, {X: 0.999}}
	tx := []int32{1}
	for i := 0; i < 30; i++ {
		a := float64(i) / 30 * 2 * math.Pi
		pts = append(pts, geom.Point{X: 3 * math.Cos(a), Y: 3 * math.Sin(a)})
		tx = append(tx, int32(2+i))
	}
	inst := bindSINR(t, SINR{Alpha: 4, Beta: 1.5, NoiseDBM: noise}, pts)
	recs, st := inst.Resolve(0, tx, func(u int32) bool { return u == 0 }, nil)
	if len(recs) != 0 {
		t.Errorf("far-field interference ignored: %v", recs)
	}
	if st.Drowned != 1 {
		t.Errorf("stats = %+v, want the border link drowned", st)
	}
}

func TestSINRColocatedPointsClamp(t *testing.T) {
	// Two nodes at the same position must not divide by zero; the
	// clamped distance makes the signal enormous, not infinite.
	pts := []geom.Point{{X: 1, Y: 1}, {X: 1, Y: 1}}
	inst := bindSINR(t, DefaultSINR(), pts)
	recs, _ := inst.Resolve(0, []int32{0}, allListening, nil)
	if len(recs) != 1 || recs[0] != (Reception{To: 1, From: 0}) {
		t.Errorf("co-located decode failed: %v", recs)
	}
}

func TestSINRTieKeepsLowerID(t *testing.T) {
	// Exactly equal strongest signals: the lower transmitter id must win
	// the `best` slot deterministically (neither decodes here — equal
	// power means drowned — but the invariant shows when β < 1 media or
	// future models reuse the accumulator; pin it via the decode that a
	// dominant third signal forces).
	pts := []geom.Point{{}, {X: 1}, {X: -1}, {X: 0.25}}
	inst := bindSINR(t, DefaultSINR(), pts)
	recs, _ := inst.Resolve(0, []int32{1, 2, 3}, func(u int32) bool { return u == 0 }, nil)
	if len(recs) != 1 || recs[0].From != 3 || !recs[0].Captured {
		t.Errorf("dominant signal should capture: %v", recs)
	}
}

func TestSINRDeterministicAcrossCalls(t *testing.T) {
	pts := make([]geom.Point, 40)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i%8) * 0.7, Y: float64(i/8) * 0.7}
	}
	tx := []int32{0, 3, 11, 17, 29, 38}
	run := func() ([]Reception, Stats) {
		inst := bindSINR(t, DefaultSINR(), pts)
		return inst.Resolve(0, tx, allListening, nil)
	}
	r1, s1 := run()
	r2, s2 := run()
	if !reflect.DeepEqual(r1, r2) || s1 != s2 {
		t.Error("sinr resolve not deterministic")
	}
}
