module radiocolor

go 1.22
