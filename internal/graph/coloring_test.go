package graph

import (
	"testing"
	"testing/quick"
)

func properColoring(g *Graph, colors []int32) bool {
	for v := 0; v < g.N(); v++ {
		if colors[v] < 0 {
			return false
		}
		for _, u := range g.Adj(v) {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

func TestGreedyColoringProper(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(50, 0.15, seed)
		colors := g.GreedyColoring()
		if !properColoring(g, colors) {
			t.Fatalf("seed %d: improper greedy coloring", seed)
		}
		// At most Δ colors (paper convention: Δ counts the node, so a
		// vertex has ≤ Δ−1 neighbors and color index ≤ Δ−1).
		if NumColors(colors) > g.MaxDegree() {
			t.Errorf("seed %d: %d colors > Δ = %d", seed, NumColors(colors), g.MaxDegree())
		}
	}
}

func TestGreedyColoringKnown(t *testing.T) {
	if got := NumColors(complete(6).GreedyColoring()); got != 6 {
		t.Errorf("K6: %d colors", got)
	}
	if got := NumColors(cycle(6).GreedyColoring()); got != 2 {
		t.Errorf("C6: %d colors", got)
	}
	if got := NumColors(star(10).GreedyColoring()); got != 2 {
		t.Errorf("star: %d colors", got)
	}
	if got := NumColors(NewBuilder(4).Build().GreedyColoring()); got != 1 {
		t.Errorf("edgeless: %d colors", got)
	}
	if got := len(NewBuilder(0).Build().GreedyColoring()); got != 0 {
		t.Errorf("empty graph: %d entries", got)
	}
}

func TestNumColors(t *testing.T) {
	if NumColors([]int32{0, 2, 2, -1}) != 2 {
		t.Error("NumColors wrong")
	}
	if NumColors(nil) != 0 {
		t.Error("NumColors(nil) wrong")
	}
}

// Property: greedy colorings are always proper.
func TestQuickGreedyProper(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.2, seed)
		return properColoring(g, g.GreedyColoring())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
