package radio_test

import (
	"encoding/json"
	"flag"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

// Kernel throughput measurement: the CSR slot kernel versus the retained
// reference (seed) slot loop on identical workloads. The headline
// numbers live in BENCH_kernel.json at the repository root; regenerate
// them with
//
//	go test ./internal/radio -run TestKernelBenchJSON \
//	    -benchkernel-out BENCH_kernel.json -timeout 30m
//
// and guard against regressions with the CI smoke mode
//
//	KERNEL_BENCH_SMOKE=1 go test ./internal/radio -run TestKernelBenchSmoke
//
// which re-measures the smallest size and compares the CSR/reference
// speedup RATIO against the committed baseline (ratios are much more
// machine-independent than absolute slots/s).
//
// The workload uses a deliberately lightweight synthetic protocol (an
// LCG transmit coin tuned to ~1.5 transmitting neighbors per
// neighborhood, decisions spread over the run) so the measurement is of
// the ENGINE — wake-up handling, Send dispatch, resolve, deliver,
// decision detection — rather than of the coloring protocol's own
// arithmetic, which is identical in both engines and would otherwise
// mask the kernel difference (Amdahl). `colorsim -bench-kernel` times
// both kernels under the real protocol on any deployment.

var benchKernelOut = flag.String("benchkernel-out", "", "write kernel throughput results (BENCH_kernel.json) to this path")

// kernelMsg is the synthetic protocol's reusable zero-alloc message.
type kernelMsg struct{ from radio.NodeID }

func (m *kernelMsg) Sender() radio.NodeID { return m.from }
func (m *kernelMsg) Bits(n int) int       { return 16 }

// kernelProto is the synthetic kernel-stress protocol: transmit with
// probability ≈1.5/deg (cheap LCG coin), decide and fall silent after a
// per-node deterministic number of local slots. The struct is packed to
// 32 bytes (two per cache line) so per-node state stays cheap to sweep
// and engine costs dominate the measurement.
type kernelProto struct {
	state    uint64 // LCG state
	thresh   uint32 // transmit iff state>>32 < thresh
	decideAt int32  // local slots until Done
	local    int32
	recvs    int32
	msg      kernelMsg
}

func (p *kernelProto) Start(slot int64) {}
func (p *kernelProto) Send(slot int64) radio.Message {
	p.local++
	if p.local > p.decideAt {
		return nil // decided nodes stay silent
	}
	p.state = p.state*2862933555777941757 + 3037000493
	if uint32(p.state>>32) < p.thresh {
		return &p.msg
	}
	return nil
}
func (p *kernelProto) Recv(slot int64, msg radio.Message) { p.recvs++ }
func (p *kernelProto) Done() bool                         { return p.local >= p.decideAt }

func benchSplitmix(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// kernelWorkload is one benchmark configuration: a UDG deployment under
// the asynchronous-deployment regime the paper is about — a uniform
// wakeup ramp spanning the whole run (nodes switch on over a long
// deployment window), each node competing for a few hundred slots after
// waking and then falling silent once decided. The measured window thus
// mixes sleeping, contending, and decided nodes in realistic
// proportions instead of lockstep phases.
type kernelWorkload struct {
	n     int
	g     *topology.Deployment
	wake  []int64
	slots int64
}

// spatialRelabel renumbers the deployment's nodes in strip order
// (radius-high horizontal strips swept left to right), the node
// numbering a coordinated deployment sweep produces. Labels only
// determine memory layout — both engines run the same relabeled graph,
// so the comparison is unaffected — but spatially coherent ids keep the
// benchmark from measuring the cache noise of a random permutation on
// top of the kernels.
func spatialRelabel(d *topology.Deployment) {
	n := d.G.N()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		pa, pb := d.Points[ids[a]], d.Points[ids[b]]
		sa, sb := int(pa.Y/d.Radius), int(pb.Y/d.Radius)
		if sa != sb {
			return sa < sb
		}
		return pa.X < pb.X
	})
	newID := make([]int32, n)
	for rank, old := range ids {
		newID[old] = int32(rank)
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for _, u := range d.G.Adj(v) {
			if u > int32(v) {
				b.AddEdge(int(newID[v]), int(newID[u]))
			}
		}
	}
	pts := make([]geom.Point, n)
	for old, nid := range newID {
		pts[nid] = d.Points[old]
	}
	d.Points = pts
	d.G = b.Build()
}

func makeKernelWorkload(n int) kernelWorkload {
	d := topology.UDGWithTargetDegree(n, 12, 1)
	spatialRelabel(d)
	var slots int64
	switch {
	case n <= 10_000:
		slots = 6000
	case n <= 100_000:
		slots = 3000
	default:
		slots = 1500
	}
	return kernelWorkload{
		n:     n,
		g:     d,
		wake:  radio.WakeUniform(n, slots, 1),
		slots: slots,
	}
}

func (w kernelWorkload) protocols() []radio.Protocol {
	protos := make([]radio.Protocol, w.n)
	backing := make([]kernelProto, w.n)
	active := w.slots / 5 // competition window after waking
	if active > 900 {
		active = 900
	}
	for i := 0; i < w.n; i++ {
		deg := uint64(w.g.G.Degree(i))
		if deg < 2 {
			deg = 2
		}
		h := benchSplitmix(uint64(i) ^ 0xBE9C4)
		p := &backing[i]
		p.state = h
		p.thresh = uint32(float64(1<<32) * 1.5 / float64(deg))
		p.decideAt = int32(active/2 + int64(benchSplitmix(h)%uint64(active)))
		p.msg.from = radio.NodeID(i)
		protos[i] = p
	}
	return protos
}

// stepper is the common surface of the two engines.
type stepper interface{ Step() bool }

func (w kernelWorkload) newEngine(reference bool) (stepper, error) {
	cfg := radio.Config{
		G: w.g.G, Protocols: w.protocols(), Wake: w.wake,
		MaxSlots: w.slots, NEstimate: w.n,
	}
	if reference {
		return radio.NewReferenceEngine(cfg)
	}
	return radio.NewEngine(cfg)
}

// measure runs the workload to its slot budget and returns slots/second.
func (w kernelWorkload) measure(t testing.TB, reference bool) float64 {
	e, err := w.newEngine(reference)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	steps := 0
	for e.Step() {
		steps++
	}
	steps++
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(steps) / elapsed.Seconds()
}

// benchEntry is one size's record in BENCH_kernel.json.
type benchEntry struct {
	N              int     `json:"n"`
	Edges          int     `json:"edges"`
	Slots          int64   `json:"slots"`
	RefSlotsPerSec float64 `json:"ref_slots_per_sec"`
	CSRSlotsPerSec float64 `json:"csr_slots_per_sec"`
	Speedup        float64 `json:"speedup"`
}

type benchFile struct {
	Schema   string       `json:"schema"`
	Workload string       `json:"workload"`
	GOOS     string       `json:"goos"`
	GOARCH   string       `json:"goarch"`
	Entries  []benchEntry `json:"entries"`
}

// measureEntry records one size. Each engine is timed benchSamples
// times, alternating engines so slow machine phases hit both equally,
// and the median is kept: single runs on a shared machine can swing
// ±10%, medians keep the committed numbers reproducible.
const benchSamples = 3

func median(xs []float64) float64 {
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

func measureEntry(t testing.TB, n int) benchEntry {
	w := makeKernelWorkload(n)
	var refs, csrs []float64
	for s := 0; s < benchSamples; s++ {
		refs = append(refs, w.measure(t, true))
		csrs = append(csrs, w.measure(t, false))
	}
	ref, csr := median(refs), median(csrs)
	return benchEntry{
		N:              n,
		Edges:          w.g.G.M(),
		Slots:          w.slots,
		RefSlotsPerSec: ref,
		CSRSlotsPerSec: csr,
		Speedup:        csr / ref,
	}
}

// TestKernelBenchJSON regenerates BENCH_kernel.json. Skipped unless
// -benchkernel-out is given: the full matrix builds a million-node UDG
// and simulates hundreds of millions of node-slots.
func TestKernelBenchJSON(t *testing.T) {
	if *benchKernelOut == "" {
		t.Skip("pass -benchkernel-out <path> to regenerate BENCH_kernel.json")
	}
	out := benchFile{
		Schema:   "bench-kernel/v1",
		Workload: "udg target-degree 12 with spatial strip-order node ids, uniform wakeup ramp spanning the run, synthetic kernel-stress protocol (p_tx~1.5/deg, per-node competition window of min(slots/5,900) local slots); median of 3 runs per engine",
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
	}
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		e := measureEntry(t, n)
		t.Logf("n=%-8d edges=%-8d slots=%-6d ref=%.0f slots/s  csr=%.0f slots/s  speedup=%.2fx",
			e.N, e.Edges, e.Slots, e.RefSlotsPerSec, e.CSRSlotsPerSec, e.Speedup)
		out.Entries = append(out.Entries, e)
	}
	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(*benchKernelOut, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestKernelBenchSmoke is the CI regression gate: it re-measures the
// 10k-node workload and fails when the CSR/reference speedup falls more
// than 20% below the committed baseline's. Enabled by KERNEL_BENCH_SMOKE=1.
func TestKernelBenchSmoke(t *testing.T) {
	if os.Getenv("KERNEL_BENCH_SMOKE") == "" {
		t.Skip("set KERNEL_BENCH_SMOKE=1 to run the kernel-bench regression gate")
	}
	raw, err := os.ReadFile("../../BENCH_kernel.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var baseline benchFile
	if err := json.Unmarshal(raw, &baseline); err != nil {
		t.Fatalf("parsing committed baseline: %v", err)
	}
	var base *benchEntry
	for i := range baseline.Entries {
		if baseline.Entries[i].N == 10_000 {
			base = &baseline.Entries[i]
		}
	}
	if base == nil {
		t.Fatal("committed BENCH_kernel.json has no n=10000 entry")
	}
	got := measureEntry(t, 10_000)
	t.Logf("baseline speedup %.2fx, measured %.2fx (ref %.0f slots/s, csr %.0f slots/s)",
		base.Speedup, got.Speedup, got.RefSlotsPerSec, got.CSRSlotsPerSec)
	if got.Speedup < 0.8*base.Speedup {
		t.Fatalf("kernel speedup regressed >20%%: measured %.2fx vs committed baseline %.2fx",
			got.Speedup, base.Speedup)
	}
}

// Plain Go benchmarks over the same workload, for -bench comparisons and
// the CI benchmarks-compile smoke. ReportMetric exposes slots/s.
func benchmarkKernel(b *testing.B, reference bool) {
	w := makeKernelWorkload(10_000)
	b.ResetTimer()
	start := time.Now()
	slots := 0
	for i := 0; i < b.N; i++ {
		e, err := w.newEngine(reference)
		if err != nil {
			b.Fatal(err)
		}
		for e.Step() {
			slots++
		}
		slots++
	}
	if d := time.Since(start).Seconds(); d > 0 {
		b.ReportMetric(float64(slots)/d, "slots/s")
	}
}

func BenchmarkKernelCSR(b *testing.B)       { benchmarkKernel(b, false) }
func BenchmarkKernelReference(b *testing.B) { benchmarkKernel(b, true) }
