// Package adversary searches for bad wake-up schedules. The unstructured
// radio network model quantifies over EVERY wake-up distribution
// (Sect. 2), so fixed pattern generators (uniform, bursty, staggered)
// only sample the space. This harness turns the adversary into a search
// procedure: hill-climbing with random restarts over wake-up schedules,
// maximizing the protocol's worst per-node latency (and flagging any
// schedule that breaks correctness outright). Experiment E23 reports the
// worst schedule the search can find against the standard patterns — an
// empirical stress test of the "any wake-up pattern" claim.
package adversary

import (
	"math/rand"

	"radiocolor/internal/core"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// Config parameterizes the search.
type Config struct {
	// Evals is the number of protocol executions the adversary may
	// spend (≥ 1).
	Evals int
	// PerturbNodes is how many nodes' wake slots each mutation moves
	// (0: n/8, at least 1).
	PerturbNodes int
	// Span is the window wake slots live in (0: 4× the protocol's
	// waiting period).
	Span int64
	// Restarts is the number of independent starting schedules the
	// budget is split across (0: 3).
	Restarts int
	// Seed drives the search and the protocol runs.
	Seed int64
	// MaxSlots bounds each protocol execution (0: generous default).
	MaxSlots int64
}

// Result reports the search outcome.
type Result struct {
	// BestWake is the worst schedule found (highest max T_v among
	// correct runs, or any improper run — see Broken).
	BestWake []int64
	// BestScore is max_v T_v under BestWake.
	BestScore int64
	// Broken counts evaluated schedules that produced an improper or
	// incomplete coloring — the adversary's jackpot. If > 0, BestWake
	// is the first such schedule.
	Broken int
	// Evals is the number of protocol executions actually spent.
	Evals int
}

// Search runs the adversary against the protocol on deployment d with
// parameters par.
func Search(d *topology.Deployment, par core.Params, cfg Config) *Result {
	if cfg.Evals < 1 {
		cfg.Evals = 16
	}
	if cfg.Restarts < 1 {
		cfg.Restarts = 3
	}
	if cfg.PerturbNodes < 1 {
		cfg.PerturbNodes = d.N() / 8
		if cfg.PerturbNodes < 1 {
			cfg.PerturbNodes = 1
		}
	}
	if cfg.Span <= 0 {
		cfg.Span = 4 * par.WaitSlots()
	}
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = int64(par.Kappa2+2)*par.Threshold()*40 + 4*cfg.Span
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	res := &Result{BestScore: -1}

	evaluate := func(wake []int64, runSeed int64) (score int64, broken bool) {
		nodes, protos := core.Nodes(d.N(), runSeed, par, core.Ablation{})
		out, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: wake,
			MaxSlots: cfg.MaxSlots, NEstimate: par.N,
		})
		if err != nil {
			panic(err)
		}
		res.Evals++
		if !out.AllDone {
			return cfg.MaxSlots, true
		}
		colors := make([]int32, d.N())
		for i, v := range nodes {
			colors[i] = v.Color()
		}
		if !verify.Check(d.G, colors).OK() {
			return out.MaxLatency(), true
		}
		return out.MaxLatency(), false
	}

	record := func(wake []int64, score int64, broken bool) {
		if broken {
			res.Broken++
			if res.Broken == 1 {
				res.BestWake = append([]int64(nil), wake...)
				res.BestScore = score
			}
			return
		}
		if res.Broken == 0 && score > res.BestScore {
			res.BestWake = append([]int64(nil), wake...)
			res.BestScore = score
		}
	}

	perEval := 0
	for r := 0; r < cfg.Restarts && res.Evals < cfg.Evals; r++ {
		// Start from a random schedule.
		wake := make([]int64, d.N())
		for i := range wake {
			wake[i] = rng.Int63n(cfg.Span)
		}
		score, broken := evaluate(wake, cfg.Seed+int64(res.Evals))
		record(wake, score, broken)
		best := score
		// Hill-climb within the restart's share of the budget.
		share := cfg.Evals / cfg.Restarts
		for perEval = 0; perEval < share-1 && res.Evals < cfg.Evals; perEval++ {
			cand := append([]int64(nil), wake...)
			for k := 0; k < cfg.PerturbNodes; k++ {
				cand[rng.Intn(len(cand))] = rng.Int63n(cfg.Span)
			}
			s, b := evaluate(cand, cfg.Seed+int64(res.Evals))
			record(cand, s, b)
			if b || s > best {
				wake, best = cand, s
			}
			if res.Broken > 0 {
				return res // jackpot: stop searching
			}
		}
	}
	return res
}
