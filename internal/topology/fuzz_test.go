package topology

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzReadDeployment hardens the deployment parser: arbitrary input must
// never panic, and accepted deployments must round-trip.
func FuzzReadDeployment(f *testing.F) {
	var b strings.Builder
	if err := WriteDeployment(&b, RandomUDG(UDGConfig{N: 8, Side: 2, Radius: 1, Seed: 1})); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())
	b.Reset()
	if err := WriteDeployment(&b, BIGWithWalls(UDGConfig{N: 5, Side: 2, Radius: 1, Seed: 2}, 2)); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())
	f.Add("deployment \"x\"\nradius 1\nn 0 0\n")
	f.Add("deployment \"x\"\nradius -5\npoints 1\n0 0\nn 1 0\n")
	f.Add("")
	f.Add("deployment \"x\"\nradius 1\npoints 99999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		d, err := ReadDeployment(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := d.G.Validate(); err != nil {
			t.Fatalf("accepted deployment has invalid graph: %v", err)
		}
		var out strings.Builder
		if err := WriteDeployment(&out, d); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadDeployment(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if back.G.N() != d.G.N() || back.G.M() != d.G.M() || len(back.Points) != len(d.Points) {
			t.Fatal("round-trip changed shape")
		}
	})
}

// FuzzReadTrace hardens the mobility-trace parser: arbitrary input must
// never panic, every accepted trace must validate as a churn schedule,
// and accepted traces must round-trip exactly.
func FuzzReadTrace(f *testing.F) {
	var b strings.Builder
	if err := WriteTrace(&b, sampleTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(b.String())
	f.Add("trace \"x\"\n")
	f.Add("trace \"x\"\nseed 7\nevery 32\nrepair none\njoins 1\n0 10\n")
	f.Add("trace \"x\"\nleaves 1\n3 40\njoins 1\n3 90\nwaypoints 2\n5 10 0 0\n5 90 2 2\n")
	f.Add("# comment\ntrace \"x\"\n\nleaves 1\n1 5\n")
	f.Add("trace \"x\"\njoins 99999999\n")
	f.Add("trace \"x\"\nwaypoints 1\n1 10 NaN 0\n")
	f.Add("trace \"x\"\nleaves 2\n1 10\n1 20\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := ReadTrace(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Schedule.Validate(0); err != nil {
			t.Fatalf("accepted trace fails validation: %v", err)
		}
		var out strings.Builder
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadTrace(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("round-trip parse failed: %v", err)
		}
		if !reflect.DeepEqual(tr, back) {
			t.Fatal("round trip changed the trace")
		}
	})
}
