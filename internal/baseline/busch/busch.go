// Package busch implements a frame-based contention-free-MAC comparator
// in the unstructured radio network model, in the spirit of Busch,
// Magdon-Ismail, Sivrikaya and Yener ("Contention-free MAC protocols for
// wireless sensor networks", DISC 2004) — the work the paper compares
// against (Sect. 3). Restricted to one-hop coloring, the paper credits
// that approach with O(Δ) colors in O(Δ³ log n) time, versus
// O(κ₂⁴ Δ log n) for its own algorithm.
//
// The comparator reproduces the structure that makes the frame approach
// polynomially slower in Δ:
//
//   - time is organized in frames of F = frameFactor·Δ slots, and a
//     node's color candidate IS its frame slot;
//   - a node transmits its claim inside its slot with probability
//     1/claimDuty (low duty cycle — required in the radio model so that
//     conflicting claimants ever hear each other despite the absence of
//     collision detection);
//   - a claim is abandoned when a neighbor is heard claiming the same
//     slot with higher priority (id tie-break), and re-drawn uniformly;
//   - a claim is finalized after quietFrames = Θ(Δ log n) consecutive
//     conflict-free frames: without collision detection a same-slot
//     conflict surfaces only with probability Θ(1/Δ) per frame, so whp
//     verification needs Δ log n frames — the mechanism behind the
//     extra factors the paper attributes to this approach.
//
// The verification window alone is Θ(Δ log n) frames = Θ(Δ² log n)
// slots, and each of the O(log n)-expected claim re-draws restarts it:
// overall Θ(Δ² log n)–Θ(Δ³ log n) slots depending on contention, i.e.
// polynomially slower in Δ than the paper's O(κ₂⁴ Δ log n) algorithm —
// exactly the comparison's shape (who wins, and by a factor that grows
// polynomially with Δ).
package busch

import (
	"radiocolor/internal/radio"
)

// Params configures the comparator.
type Params struct {
	// N and Delta are the usual global estimates.
	N, Delta int
	// FrameFactor sets the frame length F = FrameFactor·Δ (≥ 1); the
	// number of available colors equals F.
	FrameFactor int
	// ClaimDuty is the inverse transmission probability within one's
	// own slot (≥ 1). The DISC-style analysis needs Θ(Δ): with smaller
	// duty cycles, same-slot neighbors transmit simultaneously almost
	// always and never detect each other.
	ClaimDuty int
	// QuietFrames is the number of consecutive conflict-free frames
	// needed before finalizing. Without collision detection a same-slot
	// conflict is only noticed when exactly one party transmits
	// (probability Θ(1/Δ) per frame), so the window must be
	// Θ(Δ log n) frames for whp correctness — this is the source of the
	// comparator's extra polynomial factor in Δ.
	QuietFrames int
}

// DefaultParams returns the parameters used by the experiments.
func DefaultParams(n, delta int) Params {
	if delta < 2 {
		delta = 2
	}
	return Params{
		N:           n,
		Delta:       delta,
		FrameFactor: 2,
		ClaimDuty:   delta,
		QuietFrames: 2 * delta * log2ceil(n),
	}
}

func log2ceil(n int) int {
	if n < 4 {
		n = 4
	}
	b := 0
	for v := n - 1; v > 0; v >>= 1 {
		b++
	}
	return b
}

// claim is the single message type: "I own slot Slot".
type claim struct {
	From radio.NodeID
	Slot int32
}

// Sender implements radio.Message.
func (c *claim) Sender() radio.NodeID { return c.From }

// Bits implements radio.Message.
func (c *claim) Bits(n int) int {
	if n < 2 {
		n = 2
	}
	b := 0
	for v := n * n * n; v > 0; v >>= 1 {
		b++
	}
	return b + 16
}

// Node is one comparator participant; it implements radio.Protocol.
type Node struct {
	id    radio.NodeID
	rng   radio.Rand
	par   Params
	frame int64 // frame length in slots

	slot    int32 // current claim
	quiet   int   // conflict-free frames so far
	local   int64 // slots since wake-up
	color   int32 // final color (= slot), −1 until decided
	resolve int64 // statistics: re-draws
}

// New creates a comparator node.
func New(id radio.NodeID, rng radio.Rand, par Params) *Node {
	if par.FrameFactor < 1 {
		par.FrameFactor = 1
	}
	if par.ClaimDuty < 1 {
		par.ClaimDuty = 1
	}
	if par.QuietFrames < 1 {
		par.QuietFrames = 1
	}
	if par.Delta < 2 {
		par.Delta = 2
	}
	v := &Node{id: id, rng: rng, par: par, color: -1}
	v.frame = int64(par.FrameFactor * par.Delta)
	return v
}

// Nodes builds one node per vertex with deterministic streams.
func Nodes(n int, seed int64, par Params) ([]*Node, []radio.Protocol) {
	nodes := make([]*Node, n)
	protos := make([]radio.Protocol, n)
	for i := range nodes {
		nodes[i] = New(radio.NodeID(i), radio.NodeRand(seed, radio.NodeID(i)), par)
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Start implements radio.Protocol: draw an initial slot.
func (v *Node) Start(int64) {
	v.slot = int32(v.rng.Int63n(v.frame))
}

// Send implements radio.Protocol.
func (v *Node) Send(int64) radio.Message {
	pos := int32(v.local % v.frame)
	if pos == int32(v.frame-1) && v.color < 0 {
		// Frame boundary bookkeeping happens on the last slot.
		v.quiet++
		if v.quiet >= v.par.QuietFrames {
			v.color = v.slot
		}
	}
	v.local++
	if pos != v.slot {
		return nil
	}
	if v.rng.Float64() < 1/float64(v.par.ClaimDuty) {
		return &claim{From: v.id, Slot: v.slot}
	}
	return nil
}

// Recv implements radio.Protocol.
func (v *Node) Recv(_ int64, msg radio.Message) {
	c, ok := msg.(*claim)
	if !ok || c.Slot != v.slot {
		return
	}
	if v.color >= 0 {
		// Finalized claims are kept; the challenger must move.
		return
	}
	if c.From > v.id {
		// Conflict with a higher-priority claimant: yield and re-draw.
		v.slot = int32(v.rng.Int63n(v.frame))
		v.resolve++
	}
	// Either way the verification window restarts.
	v.quiet = 0
}

// Done implements radio.Protocol.
func (v *Node) Done() bool { return v.color >= 0 }

// Color returns the final color (the owned frame slot), or −1.
func (v *Node) Color() int32 { return v.color }

// Redraws returns how many times the node abandoned a claimed slot.
func (v *Node) Redraws() int64 { return v.resolve }
