// Package store is the durable job store behind colord: the control
// plane that lets jobs survive process crashes and lets several
// replicas share one backlog without double-running anything.
//
// A Store holds job records — spec, lifecycle state, lease, result —
// and arbitrates work through a small lease state machine:
//
//	queued ──Claim──▶ running ──Finish──▶ done | failed | canceled | timed_out
//	                    │  ▲
//	          lease expiry │ Claim (reclaim; the signature of a crashed replica)
//	                    ▼  │
//	                   running (new owner)
//
// Claim leases the oldest eligible job to a replica until now+ttl;
// Heartbeat extends the lease while the job runs and reports
// cross-replica cancellation requests; Finish commits a terminal state
// and is rejected with ErrLeaseLost if the lease moved — so at most
// one replica's result ever commits, even when an expired lease made
// two replicas run the same (deterministic) job. Release returns a
// running job to the queue, preserving its attempt count (graceful
// drain of a durable store).
//
// Two backends implement the interface. Memory is a process-local
// store with the exact same semantics, used when colord runs without a
// store directory and as the reference for the conformance suite. File
// is the durable backend: an embedded append-log + snapshot store in
// pure Go — every mutation appends one JSONL record under an exclusive
// flock, so N processes sharing the directory observe a single
// serialized history; the log compacts into a generation-numbered
// snapshot when it grows. The interface is deliberately SQL-shaped
// (CRUD + compare-and-set transitions keyed by owner) so a database
// backend can slot in without touching the serving layer.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"radiocolor/internal/obs"
)

// State enumerates the job lifecycle. The strings are the wire
// vocabulary of colord's API, shared with internal/serve.
type State string

const (
	// StateQueued means the job is persisted and waiting to be claimed.
	StateQueued State = "queued"
	// StateRunning means a replica holds the job's lease.
	StateRunning State = "running"
	// StateDone means the job finished and Result is set.
	StateDone State = "done"
	// StateFailed means the job finished with an error.
	StateFailed State = "failed"
	// StateCanceled means the job was canceled before it finished.
	StateCanceled State = "canceled"
	// StateTimedOut means the job hit its wall-clock bound.
	StateTimedOut State = "timed_out"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateTimedOut
}

// ParseState validates a state name (the list endpoint's filter).
func ParseState(s string) (State, error) {
	switch State(s) {
	case StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateTimedOut:
		return State(s), nil
	}
	return "", fmt.Errorf("store: unknown state %q", s)
}

// Job kinds: ordinary executable jobs and sweep parents (bookkeeping
// records that fan out child jobs and hold the aggregate result; never
// claimed).
const (
	KindJob   = "job"
	KindSweep = "sweep"
)

// Job is one persisted record. All fields are exported for JSON; the
// store owns the copies it returns (callers may mutate them freely).
type Job struct {
	// ID names the job ("j-000042", sweeps "s-000042"); assigned by
	// Create from the store's sequence when empty.
	ID string `json:"id"`
	// Seq is the monotone admission sequence number — the deterministic
	// order of List and Claim.
	Seq uint64 `json:"seq"`
	// Kind is KindJob or KindSweep.
	Kind string `json:"kind"`
	// Spec is the submission payload (a serve.JobRequest for jobs, a
	// serve.SweepRequest for sweep parents), kept verbatim so any
	// replica — or a rebooted process — can rebuild and run the job.
	Spec json.RawMessage `json:"spec,omitempty"`
	// State is the lifecycle state.
	State State `json:"state"`
	// Submitted, Started and Finished are lifecycle timestamps; Started
	// is stamped by the first Claim.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started"`
	Finished  time.Time `json:"finished"`
	// Attempts counts claims — executions started, including reclaims
	// after lease expiry.
	Attempts int `json:"attempts,omitempty"`
	// Owner is the replica currently holding the lease ("" unless
	// running).
	Owner string `json:"owner,omitempty"`
	// LeaseUntil is the lease expiry; a running job whose lease passed
	// is reclaimable.
	LeaseUntil time.Time `json:"lease_until"`
	// CancelRequested asks the owning replica to stop; it observes the
	// flag at its next heartbeat.
	CancelRequested bool `json:"cancel_requested,omitempty"`
	// Error is the failure message for terminal non-done states.
	Error string `json:"error,omitempty"`
	// Result is the committed payload (a radiocolor.Outcome for jobs,
	// an aggregate serve.SweepResult for sweep parents).
	Result json.RawMessage `json:"result,omitempty"`
	// Parent is the sweep parent's ID for fan-out children.
	Parent string `json:"parent,omitempty"`
	// Cell is the child's index in its sweep grid.
	Cell int `json:"cell,omitempty"`
	// Cells is the child count on a sweep parent.
	Cells int `json:"cells,omitempty"`
}

// Clone deep-copies the record.
func (j *Job) Clone() *Job {
	c := *j
	c.Spec = append(json.RawMessage(nil), j.Spec...)
	c.Result = append(json.RawMessage(nil), j.Result...)
	return &c
}

// Filter selects jobs for List. Zero values mean "any".
type Filter struct {
	// State keeps only jobs in that state.
	State State
	// Kind keeps only KindJob or KindSweep records.
	Kind string
	// Parent keeps only children of that sweep.
	Parent string
	// Limit bounds the result count (0 = unlimited). Jobs are always
	// returned in ascending Seq order, so a limited list is the
	// deterministic prefix.
	Limit int
}

// Sentinel errors. Callers branch on these with errors.Is.
var (
	// ErrNotFound reports an unknown job id.
	ErrNotFound = errors.New("store: job not found")
	// ErrLeaseLost reports an operation by a replica that no longer
	// owns the job's lease — its work was reassigned and any result it
	// produced must be discarded.
	ErrLeaseLost = errors.New("store: lease lost")
	// ErrTerminal reports a transition on an already-terminal job.
	ErrTerminal = errors.New("store: job already terminal")
)

// Store is the pluggable durable job store. All implementations are
// safe for concurrent use from one process; the file backend is
// additionally safe across processes sharing a directory.
type Store interface {
	// Create persists a new record. When j.ID is empty it assigns the
	// next sequence id ("j-…" / "s-…" by Kind); it always stamps j.Seq.
	// The passed record is updated in place.
	Create(j *Job) error
	// Get returns a copy of the record, or ErrNotFound.
	Get(id string) (*Job, error)
	// List returns copies of matching records in ascending Seq order.
	List(f Filter) ([]*Job, error)
	// Counts returns the number of jobs per state (KindJob only — the
	// admission gauge).
	Counts() (map[State]int, error)
	// Claim leases the oldest eligible job to owner until now+ttl and
	// returns it, or (nil, nil) when nothing is claimable. Eligible:
	// queued jobs and running jobs whose lease expired — never a live
	// lease, not even the caller's own (one replica runs many claim
	// loops under one owner name; a rebooted replica waits out its old
	// lease). Sweep parents are never claimed.
	Claim(owner string, now time.Time, ttl time.Duration) (*Job, error)
	// Heartbeat extends the owner's lease to now+ttl and reports
	// whether cancellation was requested. ErrLeaseLost when the job is
	// no longer running under this owner.
	Heartbeat(id, owner string, now time.Time, ttl time.Duration) (cancelRequested bool, err error)
	// Finish commits a terminal state (and result) for a job the owner
	// leases. An empty owner skips the lease check — used for sweep
	// parents, which are never leased. ErrLeaseLost if the lease moved,
	// ErrTerminal if something else already committed.
	Finish(id, owner string, state State, result json.RawMessage, errMsg string, now time.Time) error
	// Release returns the owner's running job to the queue (attempts
	// preserved) so another replica — or the next boot — picks it up.
	Release(id, owner string, now time.Time) error
	// RequestCancel cancels a queued job immediately and flags a
	// running one for its owner to stop; terminal jobs are left
	// untouched. Returns the updated record and whether the call
	// changed it (false for terminal and already-flagged jobs).
	RequestCancel(id string, now time.Time) (*Job, bool, error)
	// Prune drops the oldest terminal records beyond keep, never
	// orphaning a live sweep: children are only pruned once their
	// parent is terminal (the aggregate is committed by then), parents
	// only together with their children. Returns the number removed.
	Prune(keep int) (int, error)
	// Durable reports whether records survive process exit. The
	// serving layer keys its drain policy on it: queued jobs in a
	// durable store outlive a graceful shutdown.
	Durable() bool
	// Close releases backend resources. The store is unusable after.
	Close() error
}

// table is the in-memory state machine both backends share: a seq
// counter plus records in admission order. It is not goroutine-safe;
// each backend wraps it in its own locking. Every mutating method
// returns the records it changed so the file backend can append
// exactly those to its log.
type table struct {
	seq   uint64
	jobs  map[string]*Job
	order []*Job // ascending Seq
	ctrl  *obs.Control
}

func newTable(ctrl *obs.Control) *table {
	return &table{jobs: make(map[string]*Job), ctrl: ctrl}
}

// put installs a replayed record (last record for an id wins), keeping
// order and the seq counter consistent. Used by log replay only.
func (t *table) put(j *Job) {
	if j.Seq > t.seq {
		t.seq = j.Seq
	}
	if old, ok := t.jobs[j.ID]; ok {
		*old = *j // keep the order slice's pointer
		return
	}
	c := j.Clone()
	t.jobs[j.ID] = c
	// Replay is in append order and seqs are assigned monotonically, so
	// appending keeps order sorted; tolerate out-of-order ids anyway.
	if n := len(t.order); n > 0 && t.order[n-1].Seq > c.Seq {
		i := n
		for i > 0 && t.order[i-1].Seq > c.Seq {
			i--
		}
		t.order = append(t.order, nil)
		copy(t.order[i+1:], t.order[i:])
		t.order[i] = c
		return
	}
	t.order = append(t.order, c)
}

func (t *table) create(j *Job) *Job {
	t.seq++
	j.Seq = t.seq
	if j.ID == "" {
		prefix := "j"
		if j.Kind == KindSweep {
			prefix = "s"
		}
		j.ID = fmt.Sprintf("%s-%06d", prefix, t.seq)
	}
	if j.Kind == "" {
		j.Kind = KindJob
	}
	if j.State == "" {
		j.State = StateQueued
	}
	c := j.Clone()
	t.jobs[c.ID] = c
	t.order = append(t.order, c)
	t.ctrl.AddStoreCreate()
	return c
}

func (t *table) get(id string) (*Job, error) {
	j, ok := t.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return j, nil
}

func (t *table) list(f Filter) []*Job {
	var out []*Job
	for _, j := range t.order {
		if f.State != "" && j.State != f.State {
			continue
		}
		if f.Kind != "" && j.Kind != f.Kind {
			continue
		}
		if f.Parent != "" && j.Parent != f.Parent {
			continue
		}
		out = append(out, j.Clone())
		if f.Limit > 0 && len(out) == f.Limit {
			break
		}
	}
	return out
}

func (t *table) counts() map[State]int {
	m := make(map[State]int, 6)
	for _, j := range t.order {
		if j.Kind == KindJob {
			m[j.State]++
		}
	}
	return m
}

// claim picks the oldest eligible job; returns nil when none.
func (t *table) claim(owner string, now time.Time, ttl time.Duration) *Job {
	for _, j := range t.order {
		if j.Kind != KindJob {
			continue
		}
		reclaim := false
		switch {
		case j.State == StateQueued && !j.CancelRequested:
		case j.State == StateRunning && j.LeaseUntil.Before(now):
			// Expired lease: the owner is presumed dead. This is the only
			// reclaim path — deliberately including a replica's own
			// still-valid leases, because one replica runs many claim
			// loops (worker goroutines) under a single owner name and an
			// own-lease shortcut would let them steal each other's live
			// jobs. A rebooted replica simply waits out its old lease.
			reclaim = true
		default:
			continue
		}
		j.State = StateRunning
		j.Owner = owner
		j.LeaseUntil = now.Add(ttl)
		j.Attempts++
		if j.Started.IsZero() {
			j.Started = now
		}
		t.ctrl.AddClaim()
		if reclaim {
			t.ctrl.AddReclaim()
		}
		return j
	}
	return nil
}

func (t *table) heartbeat(id, owner string, now time.Time, ttl time.Duration) (*Job, bool, error) {
	j, err := t.get(id)
	if err != nil {
		return nil, false, err
	}
	if j.State != StateRunning || j.Owner != owner {
		t.ctrl.AddLeaseLost()
		return nil, false, fmt.Errorf("%w: %s is %s (owner %q)", ErrLeaseLost, id, j.State, j.Owner)
	}
	j.LeaseUntil = now.Add(ttl)
	t.ctrl.AddHeartbeat()
	return j, j.CancelRequested, nil
}

func (t *table) finish(id, owner string, state State, result json.RawMessage, errMsg string, now time.Time) (*Job, error) {
	if !state.Terminal() {
		return nil, fmt.Errorf("store: finish with non-terminal state %q", state)
	}
	j, err := t.get(id)
	if err != nil {
		return nil, err
	}
	if j.State.Terminal() {
		return nil, fmt.Errorf("%w: %s is %s", ErrTerminal, id, j.State)
	}
	if owner != "" && j.Owner != owner {
		t.ctrl.AddLeaseLost()
		return nil, fmt.Errorf("%w: %s owned by %q, not %q", ErrLeaseLost, id, j.Owner, owner)
	}
	j.State = state
	j.Result = append(json.RawMessage(nil), result...)
	j.Error = errMsg
	j.Finished = now
	j.Owner = ""
	j.LeaseUntil = time.Time{}
	t.ctrl.AddStoreFinish()
	return j, nil
}

func (t *table) release(id, owner string, now time.Time) (*Job, error) {
	j, err := t.get(id)
	if err != nil {
		return nil, err
	}
	if j.State != StateRunning || j.Owner != owner {
		t.ctrl.AddLeaseLost()
		return nil, fmt.Errorf("%w: cannot release %s (%s, owner %q)", ErrLeaseLost, id, j.State, j.Owner)
	}
	j.State = StateQueued
	j.Owner = ""
	j.LeaseUntil = time.Time{}
	t.ctrl.AddRelease()
	return j, nil
}

func (t *table) requestCancel(id string, now time.Time) (*Job, bool, error) {
	j, err := t.get(id)
	if err != nil {
		return nil, false, err
	}
	changed := false
	switch j.State {
	case StateQueued:
		j.State = StateCanceled
		j.Finished = now
		changed = true
		t.ctrl.AddStoreCancel()
	case StateRunning:
		if !j.CancelRequested {
			j.CancelRequested = true
			changed = true
			t.ctrl.AddStoreCancel()
		}
	}
	return j, changed, nil
}

// remove drops records by id — the replay side of a prune tombstone.
// Used by log replay only, so it bypasses the prunable checks (the
// writer already made them).
func (t *table) remove(ids []string) {
	drop := make(map[string]bool, len(ids))
	for _, id := range ids {
		if _, ok := t.jobs[id]; ok {
			drop[id] = true
			delete(t.jobs, id)
		}
	}
	if len(drop) == 0 {
		return
	}
	kept := t.order[:0]
	for _, j := range t.order {
		if !drop[j.ID] {
			kept = append(kept, j)
		}
	}
	t.order = kept
}

// prune removes the oldest terminal records beyond keep. A sweep's
// children count as prunable only once the parent is terminal (its
// aggregate result is committed by then); parents are pruned like any
// other terminal record, oldest first — and since a parent only
// becomes terminal after its children, the children are at least as
// old and leave with or before it.
func (t *table) prune(keep int) []string {
	prunable := func(j *Job) bool {
		if !j.State.Terminal() {
			return false
		}
		if j.Parent != "" {
			p, ok := t.jobs[j.Parent]
			if ok && !p.State.Terminal() {
				return false
			}
		}
		return true
	}
	total := 0
	for _, j := range t.order {
		if prunable(j) {
			total++
		}
	}
	if total <= keep {
		return nil
	}
	drop := total - keep
	var removed []string
	kept := t.order[:0]
	for _, j := range t.order {
		if drop > 0 && prunable(j) {
			delete(t.jobs, j.ID)
			removed = append(removed, j.ID)
			drop--
			continue
		}
		kept = append(kept, j)
	}
	t.order = kept
	t.ctrl.AddStorePrunes(int64(len(removed)))
	return removed
}
