// Command colord is the coloring-simulation daemon: an HTTP JSON API
// over internal/serve that runs the paper's protocol as queued,
// cancellable jobs with streaming progress and Prometheus metrics.
//
// Endpoints:
//
//	POST   /v1/jobs              submit (429 + Retry-After under backpressure)
//	GET    /v1/jobs              list
//	GET    /v1/jobs/{id}         poll
//	GET    /v1/jobs/{id}/stream  NDJSON (or SSE with Accept: text/event-stream)
//	DELETE /v1/jobs/{id}         cancel
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus text
//
// Example session:
//
//	colord -addr :8080 -queue 16 -workers 4 &
//	curl -s localhost:8080/v1/jobs -d '{"topology":{"kind":"udg","n":200},"seed":7}'
//	curl -sN localhost:8080/v1/jobs/j-000001/stream
//	curl -s localhost:8080/metrics | grep colord_
//
// SIGINT/SIGTERM starts a graceful drain: in-flight jobs get
// -drain-timeout to finish, the rest are canceled via context.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"radiocolor/internal/serve"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		queueCap = flag.Int("queue", 64, "admission queue bound (full queue → 429)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executions")
		cache    = flag.Int("cache", 128, "deployment cache entries (negative disables)")
		maxNodes = flag.Int("max-nodes", 200_000, "largest admissible job")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight jobs")
		stream   = flag.Duration("stream-interval", 250*time.Millisecond, "progress sampling period of /stream")
		jobTO    = flag.Duration("job-timeout", 0, "wall-clock bound per job, 0 = unlimited (a request's timeout_ms overrides it)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := serve.New(serve.Config{
		QueueCap:       *queueCap,
		Workers:        *workers,
		CacheSize:      *cache,
		MaxNodes:       *maxNodes,
		StreamInterval: *stream,
		JobTimeout:     *jobTO,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "colord: listening on %s (queue=%d workers=%d)\n", *addr, *queueCap, *workers)

	select {
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		fmt.Fprintf(os.Stderr, "colord: draining (deadline %s)\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the job pool.
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "colord: http shutdown:", err)
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "colord: drain deadline hit, canceled in-flight jobs:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "colord: drained cleanly")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "colord:", err)
			os.Exit(1)
		}
	}
}
