package serve

import (
	"strings"
	"testing"
	"time"

	"radiocolor"
)

func TestLRUEvictionAndCounters(t *testing.T) {
	c := newLRU(2)
	adj := [][]int{{1}, {0}}
	if c.get("a") != nil {
		t.Fatal("expected miss on empty cache")
	}
	c.add("a", adj)
	c.add("b", adj)
	if c.get("a") == nil {
		t.Fatal("a should be cached")
	}
	c.add("c", adj) // evicts b (least recently used; a was just touched)
	if c.get("b") != nil {
		t.Fatal("b should have been evicted")
	}
	if c.get("c") == nil {
		t.Fatal("c should be cached")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
	if hits, misses := c.hits.Load(), c.misses.Load(); hits != 2 || misses != 2 {
		t.Fatalf("hits=%d misses=%d, want 2/2", hits, misses)
	}
}

func TestLRUMeasuredRoundTrip(t *testing.T) {
	c := newLRU(4)
	e := c.add("k", [][]int{{1}, {0}})
	if e.measured.Load() != nil {
		t.Fatal("fresh entry should have no measurement")
	}
	c.setMeasured("k", radiocolor.Measured{Delta: 3, Kappa1: 1, Kappa2: 2})
	m := c.get("k").measured.Load()
	if m == nil || m.Delta != 3 || m.Kappa1 != 1 || m.Kappa2 != 2 {
		t.Fatalf("measured = %+v", m)
	}
	c.setMeasured("unknown", radiocolor.Measured{}) // no-op, must not panic
}

func TestLRUDisabled(t *testing.T) {
	c := newLRU(-1)
	e := c.add("k", [][]int{{1}, {0}})
	if e == nil || e.adj == nil {
		t.Fatal("disabled cache still returns a usable entry")
	}
	if c.get("k") != nil {
		t.Fatal("disabled cache must always miss")
	}
	c.setMeasured("k", radiocolor.Measured{Delta: 1, Kappa1: 1, Kappa2: 1})
	if c.len() != 0 {
		t.Fatalf("disabled cache len = %d", c.len())
	}
}

func TestHistogramCumulative(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	h.Observe(5 * time.Millisecond)   // ≤ 0.01
	h.Observe(50 * time.Millisecond)  // ≤ 0.1
	h.Observe(60 * time.Millisecond)  // ≤ 0.1
	h.Observe(2 * time.Second)        // +Inf
	cum, sum, count := h.snapshot()
	want := []int64{1, 3, 3, 4}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cum[%d] = %d, want %d (all: %v)", i, cum[i], w, cum)
		}
	}
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if sum < 2.1 || sum > 2.2 {
		t.Fatalf("sum = %g, want ≈2.115", sum)
	}
}

func TestTopologySpecKeyCoversParameters(t *testing.T) {
	base := TopologySpec{Kind: "udg", N: 50}
	keys := map[string]bool{base.key(): true}
	for _, v := range []TopologySpec{
		{Kind: "udg", N: 51},
		{Kind: "udg", N: 50, Side: 9},
		{Kind: "udg", N: 50, Radius: 2},
		{Kind: "udg", N: 50, Seed: 2},
		{Kind: "big", N: 50},
		{Kind: "big", N: 50, Walls: 5},
	} {
		k := v.key()
		if keys[k] {
			t.Fatalf("key collision: %q for %+v", k, v)
		}
		keys[k] = true
	}
	// Defaults normalize: explicit default == zero value.
	explicit := TopologySpec{Kind: "udg", N: 50, Side: 7, Radius: 1.2, Walls: 20, Seed: 1}
	if explicit.key() != base.key() {
		t.Fatalf("normalized keys differ: %q vs %q", explicit.key(), base.key())
	}
}

func TestJobRequestValidate(t *testing.T) {
	cases := []struct {
		name string
		req  JobRequest
		ok   bool
	}{
		{"no input", JobRequest{}, false},
		{"two inputs", JobRequest{Adjacency: [][]int{{}}, Points: [][2]float64{{0, 0}}, Radius: 1}, false},
		{"adjacency", JobRequest{Adjacency: [][]int{{1}, {0}}}, true},
		{"points no radius", JobRequest{Points: [][2]float64{{0, 0}}}, false},
		{"points", JobRequest{Points: [][2]float64{{0, 0}, {0.5, 0}}, Radius: 1}, true},
		{"topology", JobRequest{Topology: &TopologySpec{Kind: "ring", N: 8}}, true},
		{"topology n=0", JobRequest{Topology: &TopologySpec{Kind: "ring"}}, false},
		{"bad wakeup", JobRequest{Adjacency: [][]int{{1}, {0}}, Wakeup: "nope"}, false},
		{"good wakeup", JobRequest{Adjacency: [][]int{{1}, {0}}, Wakeup: "bursty"}, true},
		{"bad options", JobRequest{Adjacency: [][]int{{1}, {0}}, ParamScale: -1}, false},
		{"bad medium", JobRequest{Adjacency: [][]int{{1}, {0}}, Medium: "laser"}, false},
		{"sinr on adjacency", JobRequest{Adjacency: [][]int{{1}, {0}}, Medium: "sinr"}, false},
		{"sinr on topology", JobRequest{Topology: &TopologySpec{Kind: "udg", N: 8}, Medium: "sinr"}, false},
		{"sinr on points", JobRequest{Points: [][2]float64{{0, 0}, {0.5, 0}}, Radius: 1, Medium: "sinr,alpha=3"}, true},
		{"multichannel on adjacency", JobRequest{Adjacency: [][]int{{1}, {0}}, Medium: "multichannel,k=4"}, true},
		{"medium plus skew", JobRequest{Adjacency: [][]int{{1}, {0}}, Medium: "multichannel,k=2", Faults: "skew=0.5"}, false},
		{"churn on adjacency", JobRequest{Adjacency: [][]int{{1}, {0}}, Churn: "leave=0@10"}, true},
		{"bad churn", JobRequest{Adjacency: [][]int{{1}, {0}}, Churn: "teleport=1@5"}, false},
		{"churn mobility on adjacency", JobRequest{Adjacency: [][]int{{1}, {0}}, Churn: "move=0@10:1:1"}, false},
		{"churn mobility on points", JobRequest{Points: [][2]float64{{0, 0}, {0.5, 0}}, Radius: 1, Churn: "move=0@10:1:1"}, true},
		{"churn plus medium", JobRequest{Adjacency: [][]int{{1}, {0}}, Churn: "leave=0@10", Medium: "multichannel,k=2"}, false},
		{"churn plus skew", JobRequest{Adjacency: [][]int{{1}, {0}}, Churn: "leave=0@10", Faults: "skew=0.5"}, false},
	}
	for _, c := range cases {
		opt, err := c.req.validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: err = %v, want ok=%v", c.name, err, c.ok)
		}
		if c.name == "good wakeup" && err == nil && opt.Wakeup != radiocolor.WakeupBursty {
			t.Errorf("wakeup not converted: %v", opt.Wakeup)
		}
	}
}

func TestPromFloatFormat(t *testing.T) {
	for in, want := range map[float64]string{
		0.005: "0.005",
		1:     "1",
		60:    "60",
	} {
		if got := promFloat(in); got != want {
			t.Errorf("promFloat(%g) = %q, want %q", in, got, want)
		}
	}
	if s := promFloat(0.25); strings.Contains(s, "e") {
		t.Errorf("unexpected exponent form: %q", s)
	}
}
