package experiment

import (
	"fmt"
	"reflect"

	"radiocolor/internal/core"
	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// E25CrossModel runs the paper's protocol on IDENTICAL unit-disk
// deployments under three reception models — the paper's graph rule,
// the physical SINR model (noise floor matched so the decode range
// coincides with the unit-disk radius), and 2-channel random hopping —
// and compares correctness, palette size, time and energy. The
// deployment, wake-up schedule and every protocol coin are fixed per
// trial; only the medium differs, so any spread in the columns is the
// reception model's doing. The interesting cell is SINR: the protocol's
// analysis assumes the graph rule, so surviving cumulative interference
// and capture (deliveries the graph rule would have annihilated) is an
// out-of-model robustness result, not a theorem.
func E25CrossModel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E25: reception models — graph rule vs SINR vs multi-channel on one deployment",
		"medium", "correct", "mean colors", "mean maxT", "tx/node", "captures", "drowned")
	n := o.scale(110, 40)
	const radius = 1.2
	models := []string{"graph", "sinr (matched)", "multichannel k=2"}
	type trialRes struct {
		ok                bool
		colors, maxT      float64
		txPerNode         float64
		captures, drowned float64
	}
	grid := parTrials(o, "E25", len(models), o.Trials, func(mi, tr int) trialRes {
		// The seed deliberately ignores mi: every model sees the same
		// deployment, schedule and protocol randomness.
		seed := trialSeed(o.Seed, 2500, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: radius, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		// The budget is sized for the slowest arm: channel hopping slows
		// the counter-paced protocol roughly k-fold (E21), and finished
		// runs stop early regardless.
		cfg := radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeUniform(d.N(), par.WaitSlots()/4, seed),
			MaxSlots: 40 * defaultBudget(par), NEstimate: par.N,
		}
		var res *radio.Result
		var err error
		switch mi {
		case 0:
			res, err = radio.Run(cfg)
		case 1:
			// 5% margin past the radius keeps border links decodable
			// under mild interference instead of exactly on threshold.
			m := medium.SINR{Alpha: 4, Beta: 1.5,
				NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, radius*1.05)}
			cfg.Medium, err = m.Bind(medium.Env{N: d.N(), Points: d.Points})
			if err == nil {
				res, err = radio.Run(cfg)
			}
		default:
			res, err = radio.RunMultiChannel(cfg, 2, seed)
		}
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		var r trialRes
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.maxT = float64(res.MaxLatency())
			palette := map[int32]bool{}
			for _, c := range cs {
				palette[c] = true
			}
			r.colors = float64(len(palette))
		}
		r.txPerNode = float64(res.Transmissions) / float64(d.N())
		r.captures = float64(res.Captures)
		r.drowned = float64(res.Drowned)
		return r
	})
	for mi, name := range models {
		correct := 0
		var colors, ts, tx, caps, drn []float64
		for _, r := range grid[mi] {
			if r.ok {
				correct++
				colors = append(colors, r.colors)
				ts = append(ts, r.maxT)
			}
			tx = append(tx, r.txPerNode)
			caps = append(caps, r.captures)
			drn = append(drn, r.drowned)
		}
		t.AddRow(name, fmt.Sprintf("%d/%d", correct, o.Trials),
			stats.Mean(colors), stats.Mean(ts), stats.Mean(tx),
			stats.Mean(caps), stats.Mean(drn))
	}
	return t
}

// E26TiledKernel runs the REAL protocol on one Hilbert-relabeled
// deployment through the untiled and the tiled slot kernel and checks
// — the point of the differential harness — field-for-field identity:
// at fixed labels the two engines must agree on every decision slot,
// every color, and every delivery/collision count. The table reports
// only deterministic quantities (the experiments stdout contract:
// byte-identical at any -parallel), so throughput lives elsewhere —
// BENCH_kernel.json isolates the engine at 1M–10M nodes, and the
// EXPERIMENTS.md E26 prose carries one-off wall-clock ratios. The
// shared columns come from the untiled run; `identical` certifies the
// tiled run produced exactly the same ones.
func E26TiledKernel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E26: tiled slot kernel vs untiled loop (real protocol, shared Hilbert relabeling)",
		"n", "tiles", "slots", "colors", "deliveries", "collisions", "identical")
	sizes := []int{o.scale(2500, 500), o.scale(10_000, 1000)}
	for ci, n := range sizes {
		identical := 0
		var slots, deliveries, collisions int64
		var colors int
		tiles := radio.AutoTiles(n)
		if tiles < 4 {
			tiles = 4
		}
		for tr := 0; tr < o.Trials; tr++ {
			seed := trialSeed(o.Seed, 2600+ci, tr)
			d := topology.UDGWithTargetDegree(n, 10, seed)
			relabelHilbert(d)
			par := MeasureParams(d)
			wake := radio.WakeUniform(d.N(), par.WaitSlots()/4, seed)
			run := func(tileCount int) (*radio.Result, []int32) {
				nodes, protos := core.Nodes(d.N(), seed, par, core0)
				cfg := radio.Config{
					G: d.G, Protocols: protos, Wake: wake,
					MaxSlots: defaultBudget(par), NEstimate: par.N,
					Tiles: tileCount,
				}
				res, err := radio.Run(cfg)
				if err != nil {
					panic(err)
				}
				cs := make([]int32, d.N())
				for i, v := range nodes {
					cs[i] = v.Color()
				}
				return res, cs
			}
			uRes, uCols := run(0)
			tRes, tCols := run(tiles)
			same := uRes.Slots == tRes.Slots && reflect.DeepEqual(uCols, tCols) &&
				reflect.DeepEqual(uRes.DecideSlot, tRes.DecideSlot) &&
				uRes.Deliveries == tRes.Deliveries && uRes.Collisions == tRes.Collisions
			if same {
				identical++
			}
			slots += uRes.Slots
			deliveries += uRes.Deliveries
			collisions += uRes.Collisions
			palette := map[int32]bool{}
			for _, c := range uCols {
				palette[c] = true
			}
			colors += len(palette)
		}
		tn := int64(o.Trials)
		t.AddRow(fmt.Sprintf("%d", sizes[ci]), fmt.Sprintf("%d", tiles),
			fmt.Sprintf("%d", slots/tn), fmt.Sprintf("%d", int64(colors)/tn),
			fmt.Sprintf("%d", deliveries/tn), fmt.Sprintf("%d", collisions/tn),
			fmt.Sprintf("%d/%d", identical, o.Trials))
	}
	return t
}

// relabelHilbert renumbers a point deployment along the shared Hilbert
// relabeling pass — the tiled kernel's production path.
func relabelHilbert(d *topology.Deployment) {
	n := d.G.N()
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i, pt := range d.Points {
		xs[i], ys[i] = pt.X, pt.Y
	}
	p := graph.HilbertOrder(xs, ys)
	d.G = p.Apply(d.G)
	pts := make([]geom.Point, n)
	for old, nid := range p.Forward {
		pts[nid] = d.Points[old]
	}
	d.Points = pts
}
