package core_test

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// TestSoakLargeNetwork runs the full pipeline at n = 1000 with
// asynchronous wake-up — the scale of a real sensor deployment — and
// validates every guarantee at once. Skipped under -short.
func TestSoakLargeNetwork(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	d := topology.UDGWithTargetDegree(1000, 12, 77)
	par := paramsFor(d)
	wake := radio.WakeUniform(d.N(), 2*par.WaitSlots(), 7)
	nodes, protos := core.Nodes(d.N(), 99, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: wake,
		MaxSlots: 50_000_000, NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	verifyRun(t, d, nodes, res, par)

	// Scale sanity: maxT within a generous multiple of the
	// κ₂⁴Δ log n-flavored budget.
	if res.MaxLatency() > 20*int64(par.Kappa2)*par.Threshold() {
		t.Errorf("latency %d looks superlinear (threshold %d, κ₂ %d)",
			res.MaxLatency(), par.Threshold(), par.Kappa2)
	}
	// Every node's energy is positive and accounted.
	energy := res.PerNodeEnergy(radio.DefaultEnergyModel())
	for v, e := range energy {
		if e <= 0 {
			t.Fatalf("node %d has energy %v", v, e)
		}
	}
	// Message budget holds at n = 1000 too.
	if res.MaxMessageBits > 40*10 {
		t.Errorf("max message %d bits", res.MaxMessageBits)
	}
}

// TestSoakTheoreticalConstants runs a small network with the paper's
// PROVED constants (γ ≈ 100+, σ ≈ 1400+) end to end: slow, but it
// exercises the exact parameter regime of Sect. 5's analysis. Skipped
// under -short.
func TestSoakTheoreticalConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	d := topology.Ring(8)
	// Theoretical constants with the ring's measured values (κ₂ = 3,
	// Δ = 3) and a small n estimate to keep log n low.
	par := core.Theoretical(8, d.G.MaxDegree(), 2, 3)
	nodes, protos := core.Nodes(d.N(), 3, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 100_000_000, NEstimate: par.N,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("theoretical-constants run incomplete after %d slots", res.Slots)
	}
	colors := colorsOf(nodes)
	if rep := verify.Check(d.G, colors); !rep.OK() {
		t.Fatalf("theoretical-constants coloring bad: %v", rep)
	}
}
