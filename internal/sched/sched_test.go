package sched

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func pathColors() (*graph.Graph, []int32) {
	b := graph.NewBuilder(4)
	for i := 0; i < 3; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build(), []int32{0, 1, 0, 2}
}

func TestFromColoring(t *testing.T) {
	_, colors := pathColors()
	s, err := FromColoring(colors)
	if err != nil {
		t.Fatal(err)
	}
	if s.FrameLen != 3 {
		t.Errorf("FrameLen = %d, want 3", s.FrameLen)
	}
	if s.Slot[3] != 2 {
		t.Errorf("Slot = %v", s.Slot)
	}
	// Defensive copy.
	colors[0] = 99
	if s.Slot[0] == 99 {
		t.Error("schedule aliases input")
	}
}

func TestFromColoringErrors(t *testing.T) {
	if _, err := FromColoring(nil); err == nil {
		t.Error("empty coloring accepted")
	}
	if _, err := FromColoring([]int32{0, -1}); err == nil {
		t.Error("uncolored node accepted")
	}
}

func TestDirectConflicts(t *testing.T) {
	g, colors := pathColors()
	s, _ := FromColoring(colors)
	if c := s.DirectConflicts(g); len(c) != 0 {
		t.Errorf("proper coloring has conflicts: %v", c)
	}
	bad, _ := FromColoring([]int32{0, 0, 1, 2})
	c := bad.DirectConflicts(g)
	if len(c) != 1 || c[0] != [2]int32{0, 1} {
		t.Errorf("conflicts = %v", c)
	}
}

func TestMaxInterferers(t *testing.T) {
	// Star: hub with 4 leaves, leaves properly share colors (not
	// adjacent to each other). Two leaves on color 1 → hub sees 2
	// interferers in slot 1.
	b := graph.NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	s, _ := FromColoring([]int32{0, 1, 1, 2, 2})
	if got := s.MaxInterferers(g); got != 2 {
		t.Errorf("MaxInterferers = %d, want 2", got)
	}
}

func TestLocalFrameLen(t *testing.T) {
	// Path 0-1-2-3-4 with a high color far away: node 0's local frame
	// only sees colors within 2 hops.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	s, _ := FromColoring([]int32{0, 1, 0, 1, 9})
	local := s.LocalFrameLen(g)
	if local[0] != 2 { // sees colors {0,1,0} → max 1 → len 2
		t.Errorf("local[0] = %d, want 2", local[0])
	}
	if local[4] != 10 {
		t.Errorf("local[4] = %d, want 10", local[4])
	}
	if local[2] != 10 { // node 2 is 2 hops from node 4
		t.Errorf("local[2] = %d, want 10", local[2])
	}
}

func TestSimulateFrame(t *testing.T) {
	// Star with two same-colored leaves: hub suffers one collision event
	// and hears the distinct-colored leaves cleanly.
	b := graph.NewBuilder(5)
	for i := 1; i < 5; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	s, _ := FromColoring([]int32{0, 1, 1, 2, 3})
	f := s.SimulateFrame(g)
	// Hub: slot1 ×2 → collision; slot2, slot3 clean. Leaves: hear hub's
	// slot0 clean (hub is their only neighbor) → 4 clean.
	if f.Collisions != 1 {
		t.Errorf("collisions = %d, want 1", f.Collisions)
	}
	if f.CleanReceptions != 2+4 {
		t.Errorf("clean = %d, want 6", f.CleanReceptions)
	}
	if f.Transmissions != 5 {
		t.Errorf("tx = %d", f.Transmissions)
	}
	rate := f.SuccessRate()
	if rate <= 0.8 || rate >= 0.9 { // 6/7 ≈ 0.857
		t.Errorf("success rate = %v", rate)
	}
	if (FrameStats{}).SuccessRate() != 1 {
		t.Error("empty frame success rate should be 1")
	}
}

// TestScheduleFromProtocolRun is the end-to-end application test: run
// the paper's algorithm, build the TDMA schedule, and verify the MAC
// properties the introduction promises.
func TestScheduleFromProtocolRun(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 90, Side: 6, Radius: 1.3, Seed: 4})
	delta := d.G.MaxDegree()
	k := d.G.Kappa(graph.KappaOptions{Budget: 200_000, MaxNeighborhood: 160})
	par := core.Practical(d.N(), delta, k.K1, k.K2)
	nodes, protos := core.Nodes(d.N(), 21, par, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()), MaxSlots: 5_000_000,
	})
	if err != nil || !res.AllDone {
		t.Fatalf("protocol run failed: %v %v", err, res)
	}
	colors := make([]int32, d.N())
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	if !verify.Check(d.G, colors).OK() {
		t.Fatal("bad coloring")
	}
	s, err := FromColoring(colors)
	if err != nil {
		t.Fatal(err)
	}
	// No direct interference.
	if c := s.DirectConflicts(d.G); len(c) != 0 {
		t.Errorf("direct conflicts: %v", c)
	}
	// Hidden-terminal exposure bounded by κ₁ (same-slot neighbors form
	// an independent set in any neighborhood).
	if got := s.MaxInterferers(d.G); got > k.K1 {
		t.Errorf("interferers = %d > κ₁ = %d", got, k.K1)
	}
	// Every sender is heard by at least someone; overall success rate
	// must be substantial.
	f := s.SimulateFrame(d.G)
	if f.SuccessRate() < 0.5 {
		t.Errorf("TDMA success rate = %v", f.SuccessRate())
	}
}
