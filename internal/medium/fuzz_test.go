package medium

import "testing"

// FuzzParseSpec hardens the medium-spec parser the same way
// FuzzParseProfile hardens the fault parser: arbitrary input must never
// panic, and any accepted spec must be valid, build, and survive a
// String→Parse→String round trip.
func FuzzParseSpec(f *testing.F) {
	f.Add("graph")
	f.Add("sinr,alpha=4,beta=1.5,noise=-90")
	f.Add("sinr,power=3,noise=-85")
	f.Add("multichannel,k=4,hopseed=21")
	f.Add("multichannel,channels=8")
	f.Add("")
	f.Add("sinr,alpha=NaN")
	f.Add("laser,=,==,,")
	f.Fuzz(func(t *testing.T, in string) {
		sp, err := ParseSpec(in)
		if err != nil {
			return
		}
		if sp == nil {
			return // blank spec: the built-in default
		}
		if err := sp.Validate(); err != nil {
			t.Fatalf("accepted spec fails Validate: %v", err)
		}
		if _, err := sp.Build(); err != nil {
			t.Fatalf("accepted spec fails Build: %v", err)
		}
		s := sp.String()
		sp2, err := ParseSpec(s)
		if err != nil {
			t.Fatalf("String %q of accepted spec does not reparse: %v", s, err)
		}
		if s2 := sp2.String(); s2 != s {
			t.Fatalf("round trip unstable: %q -> %q", s, s2)
		}
	})
}
