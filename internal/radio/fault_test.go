package radio

import (
	"reflect"
	"testing"

	"radiocolor/internal/fault"
)

// Reset implements Restartable for the scripted test protocol: the node
// forgets everything but its identity and script, exactly the fail-stop
// restart contract.
func (p *scriptProto) Reset() {
	p.local = 0
	p.received = nil
	p.recvSlot = nil
	p.done = false
}

func mustInjector(t *testing.T, p *fault.Profile, n int) *fault.Injector {
	t.Helper()
	inj, err := p.Compile(n)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatal("active profile compiled to a nil injector")
	}
	return inj
}

func TestFaultCrashSilencesNode(t *testing.T) {
	// 0-1-2: node 0 transmits every slot but fail-stops at slot 2. Node 1
	// must hear it in slots 0 and 1 only, and the run must end as soon as
	// every survivor decided (graceful degradation, AllDone=false).
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{
		{true, true, true, true, true, true},
		make([]bool, 6),
		make([]bool, 6),
	}, WakeSynchronous(3))
	cfg.Faults = mustInjector(t, &fault.Profile{
		Crashes: []fault.Crash{{Node: 0, At: 2}},
	}, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := protos[1].recvSlot; !reflect.DeepEqual(got, []int64{0, 1}) {
		t.Errorf("node 1 heard slots %v, want [0 1]", got)
	}
	if res.Crashes != 1 || res.Restarts != 0 {
		t.Errorf("crashes=%d restarts=%d, want 1/0", res.Crashes, res.Restarts)
	}
	if !reflect.DeepEqual(res.Down, []int32{0}) {
		t.Errorf("Down = %v, want [0]", res.Down)
	}
	if res.AllDone {
		t.Error("AllDone with a permanently crashed undecided node")
	}
	if res.DecideSlot[0] != -1 {
		t.Errorf("crashed node DecideSlot = %d, want -1", res.DecideSlot[0])
	}
	if res.DecideSlot[1] < 0 || res.DecideSlot[2] < 0 {
		t.Errorf("survivors did not decide: %v", res.DecideSlot)
	}
	// The run must stop once survivors are done, not burn MaxSlots.
	if res.Slots >= cfg.MaxSlots {
		t.Errorf("run used the whole %d-slot budget; graceful termination broken", cfg.MaxSlots)
	}
}

func TestFaultRestartClearsStateAndRetractsDecision(t *testing.T) {
	// 0-1: node 0 transmits twice then decides (slot 2). It crashes at
	// slot 3 — after deciding — and restarts at slot 5. The restart must
	// retract the decision, reset the protocol (the script replays from
	// local slot 0), and re-decide at slot 7.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{
		{true, true},
		make([]bool, 20),
	}, WakeSynchronous(2))
	cfg.Faults = mustInjector(t, &fault.Profile{
		Crashes: []fault.Crash{{Node: 0, At: 3, Restart: 5}},
	}, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := protos[1].recvSlot; !reflect.DeepEqual(got, []int64{0, 1, 5, 6}) {
		t.Errorf("node 1 heard slots %v, want [0 1 5 6] (script replay after restart)", got)
	}
	if protos[0].started != 2 {
		t.Errorf("node 0 Start calls = %d, want 2 (wake + restart)", protos[0].started)
	}
	if res.Crashes != 1 || res.Restarts != 1 {
		t.Errorf("crashes=%d restarts=%d, want 1/1", res.Crashes, res.Restarts)
	}
	if res.DecideSlot[0] != 7 {
		t.Errorf("node 0 DecideSlot = %d, want 7 (re-decision after restart)", res.DecideSlot[0])
	}
	if len(res.Down) != 0 {
		t.Errorf("Down = %v, want empty after restart", res.Down)
	}
	if !res.AllDone {
		t.Error("run must finish AllDone: both nodes re-decided")
	}
}

func TestFaultCrashBeforeWake(t *testing.T) {
	// Node 1 is scheduled to wake at slot 2 but crashes at slot 0: it
	// must never start. Its restart at slot 4 comes after the missed wake
	// slot, so the restart (not the wake loop) brings it up.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{
		make([]bool, 8),
		{true, true},
	}, []int64{0, 2})
	cfg.Faults = mustInjector(t, &fault.Profile{
		Crashes: []fault.Crash{{Node: 1, At: 0, Restart: 4}},
	}, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if protos[1].started != 1 {
		t.Errorf("node 1 Start calls = %d, want 1 (restart only; wake at slot 2 skipped)", protos[1].started)
	}
	if protos[1].wokeAt != 4 {
		t.Errorf("node 1 started at slot %d, want 4", protos[1].wokeAt)
	}
	if got := protos[0].recvSlot; !reflect.DeepEqual(got, []int64{4, 5}) {
		t.Errorf("node 0 heard slots %v, want [4 5]", got)
	}
	if res.WakeSlot[1] != 2 {
		t.Errorf("WakeSlot[1] = %d, want the scheduled 2", res.WakeSlot[1])
	}
}

func TestFaultJamSuppressesDeliveries(t *testing.T) {
	// A jammer parked on node 1 corrupts every slot: node 0's five
	// transmissions all vanish, counted as Jammed, not Delivered.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{
		{true, true, true, true, true},
		make([]bool, 5),
	}, WakeSynchronous(2))
	cfg.Faults = mustInjector(t, &fault.Profile{
		Jammers: []fault.Jammer{{Nodes: []int{1}, From: 0}},
	}, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Errorf("node 1 received %v through a jammer", protos[1].received)
	}
	if res.Deliveries != 0 || res.Jammed != 5 {
		t.Errorf("deliveries=%d jammed=%d, want 0/5", res.Deliveries, res.Jammed)
	}
	if res.Transmissions != 5 {
		t.Errorf("transmissions=%d, want 5 (jam kills reception, not the send)", res.Transmissions)
	}
}

func TestFaultLossConservesReceptions(t *testing.T) {
	// Every would-be delivery is either delivered or counted Lost: the
	// fault layer must not invent or leak receptions.
	g := line(2)
	scripts := [][]bool{make([]bool, 50), make([]bool, 50)}
	for i := range scripts[0] {
		scripts[0][i] = true
	}
	_, base := buildScripted(g, scripts, WakeSynchronous(2))
	baseRes, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	if baseRes.Deliveries == 0 {
		t.Fatal("baseline delivered nothing; test is vacuous")
	}

	protos, cfg := buildScripted(g, scripts, WakeSynchronous(2))
	cfg.Faults = mustInjector(t, &fault.Profile{Seed: 9, Loss: 0.5}, 2)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Deliveries+res.Lost != baseRes.Deliveries {
		t.Errorf("delivered %d + lost %d != baseline %d", res.Deliveries, res.Lost, baseRes.Deliveries)
	}
	if res.Lost == 0 || res.Deliveries == 0 {
		t.Errorf("50%% loss over 50 slots gave lost=%d delivered=%d; coin looks degenerate", res.Lost, res.Deliveries)
	}

	// Same seed, same chaos: an identical rerun reproduces the exact
	// reception log.
	protos2, cfg2 := buildScripted(g, scripts, WakeSynchronous(2))
	cfg2.Faults = mustInjector(t, &fault.Profile{Seed: 9, Loss: 0.5}, 2)
	if _, err := Run(cfg2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(protos[1].recvSlot, protos2[1].recvSlot) {
		t.Errorf("same-seed reruns diverged: %v vs %v", protos[1].recvSlot, protos2[1].recvSlot)
	}
}

func TestFaultInjectorWrongSize(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{nil, nil, nil}, WakeSynchronous(3))
	cfg.Faults = mustInjector(t, &fault.Profile{Loss: 0.1}, 7)
	if _, err := Run(cfg); err == nil {
		t.Fatal("engine accepted an injector compiled for a different node count")
	}
}

func TestFaultSkewRejectedByAlignedEngine(t *testing.T) {
	g := line(2)
	_, cfg := buildScripted(g, [][]bool{nil, nil}, WakeSynchronous(2))
	cfg.Faults = mustInjector(t, &fault.Profile{SkewProb: 0.5}, 2)
	if _, err := Run(cfg); err == nil {
		t.Fatal("aligned engine accepted a clock-skew profile; it must route through RunUnaligned")
	}
}

func TestFaultRestartNeedsRestartable(t *testing.T) {
	// A restart schedule against a protocol without Reset must fail at
	// engine construction, not mid-run.
	g := line(2)
	protos := []Protocol{&fixedProto{}, &fixedProto{}}
	cfg := Config{G: g, Protocols: protos, Wake: WakeSynchronous(2), MaxSlots: 10}
	inj := mustInjector(t, &fault.Profile{
		Crashes: []fault.Crash{{Node: 0, At: 1, Restart: 3}},
	}, 2)
	cfg.Faults = inj
	if _, err := Run(cfg); err == nil {
		t.Fatal("engine accepted a restart schedule for a non-Restartable protocol")
	}
}

// fixedProto is a minimal non-Restartable protocol.
type fixedProto struct{ done bool }

func (p *fixedProto) Start(int64)         {}
func (p *fixedProto) Send(int64) Message  { p.done = true; return nil }
func (p *fixedProto) Recv(int64, Message) {}
func (p *fixedProto) Done() bool          { return p.done }
