package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"testing"
	"time"

	"radiocolor/internal/obs"
)

// The conformance suite runs every Store behavior against both
// backends; Memory is the reference semantics, File must match.

var base = time.Unix(1700000000, 0).UTC()

func backends(t *testing.T) map[string]Store {
	t.Helper()
	f, err := OpenFile(t.TempDir(), FileOptions{Control: obs.NewControl()})
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	return map[string]Store{
		"memory": NewMemory(obs.NewControl()),
		"file":   f,
	}
}

func mustCreate(t *testing.T, s Store, j *Job) *Job {
	t.Helper()
	if j.Submitted.IsZero() {
		j.Submitted = base
	}
	if err := s.Create(j); err != nil {
		t.Fatalf("Create: %v", err)
	}
	return j
}

func TestCreateAssignsIDsAndOrder(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			j1 := mustCreate(t, s, &Job{Spec: json.RawMessage(`{"n":1}`)})
			j2 := mustCreate(t, s, &Job{})
			sw := mustCreate(t, s, &Job{Kind: KindSweep})
			if j1.ID != "j-000001" || j2.ID != "j-000002" || sw.ID != "s-000003" {
				t.Fatalf("ids = %q %q %q", j1.ID, j2.ID, sw.ID)
			}
			if j1.Seq != 1 || j2.Seq != 2 || sw.Seq != 3 {
				t.Fatalf("seqs = %d %d %d", j1.Seq, j2.Seq, sw.Seq)
			}
			if j1.State != StateQueued || j1.Kind != KindJob {
				t.Fatalf("defaults: state=%s kind=%s", j1.State, j1.Kind)
			}
			all, err := s.List(Filter{})
			if err != nil || len(all) != 3 {
				t.Fatalf("List: %v, %d records", err, len(all))
			}
			for i, j := range all {
				if j.Seq != uint64(i+1) {
					t.Fatalf("List out of order at %d: seq %d", i, j.Seq)
				}
			}
			got, err := s.Get(j1.ID)
			if err != nil || string(got.Spec) != `{"n":1}` {
				t.Fatalf("Get: %v spec=%s", err, got.Spec)
			}
			if _, err := s.Get("j-999999"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get missing: %v", err)
			}
		})
	}
}

func TestClaimLifecycle(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := mustCreate(t, s, &Job{})
			b := mustCreate(t, s, &Job{})
			ttl := 10 * time.Second

			got, err := s.Claim("r1", base, ttl)
			if err != nil || got == nil || got.ID != a.ID {
				t.Fatalf("Claim = %v, %v (want %s)", got, err, a.ID)
			}
			if got.State != StateRunning || got.Owner != "r1" || got.Attempts != 1 {
				t.Fatalf("claimed record: %+v", got)
			}
			if !got.LeaseUntil.Equal(base.Add(ttl)) || !got.Started.Equal(base) {
				t.Fatalf("lease/start: %v %v", got.LeaseUntil, got.Started)
			}

			cancel, err := s.Heartbeat(a.ID, "r1", base.Add(time.Second), ttl)
			if err != nil || cancel {
				t.Fatalf("Heartbeat = %v, %v", cancel, err)
			}
			if j, _ := s.Get(a.ID); !j.LeaseUntil.Equal(base.Add(11 * time.Second)) {
				t.Fatalf("lease not extended: %v", j.LeaseUntil)
			}

			res := json.RawMessage(`{"colors":7}`)
			if err := s.Finish(a.ID, "r1", StateDone, res, "", base.Add(2*time.Second)); err != nil {
				t.Fatalf("Finish: %v", err)
			}
			j, _ := s.Get(a.ID)
			if j.State != StateDone || string(j.Result) != `{"colors":7}` || j.Owner != "" {
				t.Fatalf("finished record: %+v", j)
			}

			got, err = s.Claim("r1", base.Add(3*time.Second), ttl)
			if err != nil || got == nil || got.ID != b.ID {
				t.Fatalf("second Claim = %v, %v (want %s)", got, err, b.ID)
			}
			if got, _ := s.Claim("r2", base.Add(3*time.Second), ttl); got != nil {
				t.Fatalf("empty Claim returned %+v", got)
			}
		})
	}
}

func TestClaimReclaimsExpiredLease(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := mustCreate(t, s, &Job{})
			ttl := 5 * time.Second
			if _, err := s.Claim("r1", base, ttl); err != nil {
				t.Fatalf("Claim: %v", err)
			}

			// Lease still live: another replica gets nothing.
			if got, _ := s.Claim("r2", base.Add(4*time.Second), ttl); got != nil {
				t.Fatalf("live lease reclaimed: %+v", got)
			}

			// Expired: r2 takes over; r1's heartbeat and commit must fail.
			late := base.Add(6 * time.Second)
			got, err := s.Claim("r2", late, ttl)
			if err != nil || got == nil || got.ID != a.ID || got.Attempts != 2 {
				t.Fatalf("reclaim = %+v, %v", got, err)
			}
			if _, err := s.Heartbeat(a.ID, "r1", late, ttl); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("stale heartbeat: %v", err)
			}
			if err := s.Finish(a.ID, "r1", StateDone, nil, "", late); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("stale finish: %v", err)
			}
			if err := s.Finish(a.ID, "r2", StateDone, json.RawMessage(`1`), "", late); err != nil {
				t.Fatalf("owner finish: %v", err)
			}
		})
	}
}

func TestClaimOwnLeaseNotStolen(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := mustCreate(t, s, &Job{})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatalf("Claim: %v", err)
			}
			// A replica's own live lease is NOT reclaimable: one replica
			// runs many worker loops under one owner name, and an
			// own-lease shortcut would let them steal each other's jobs.
			if got, err := s.Claim("r1", base.Add(time.Second), time.Hour); err != nil || got != nil {
				t.Fatalf("own live lease stolen: %+v, %v", got, err)
			}
			// After expiry the same owner reclaims like anyone else (the
			// rebooted-replica path).
			got, err := s.Claim("r1", base.Add(2*time.Hour), time.Hour)
			if err != nil || got == nil || got.ID != a.ID || got.Attempts != 2 {
				t.Fatalf("own reclaim after expiry = %+v, %v", got, err)
			}
		})
	}
}

func TestFinishGuards(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := mustCreate(t, s, &Job{})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := s.Finish(a.ID, "r1", StateRunning, nil, "", base); err == nil {
				t.Fatal("Finish accepted non-terminal state")
			}
			if err := s.Finish(a.ID, "r1", StateFailed, nil, "boom", base); err != nil {
				t.Fatal(err)
			}
			if err := s.Finish(a.ID, "r1", StateDone, nil, "", base); !errors.Is(err, ErrTerminal) {
				t.Fatalf("double finish: %v", err)
			}
			// Owner "" bypasses the lease check (sweep parents).
			sw := mustCreate(t, s, &Job{Kind: KindSweep})
			if err := s.Finish(sw.ID, "", StateDone, json.RawMessage(`{}`), "", base); err != nil {
				t.Fatalf("ownerless finish: %v", err)
			}
		})
	}
}

func TestReleaseRequeues(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			a := mustCreate(t, s, &Job{})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := s.Release(a.ID, "r2", base); !errors.Is(err, ErrLeaseLost) {
				t.Fatalf("foreign release: %v", err)
			}
			if err := s.Release(a.ID, "r1", base); err != nil {
				t.Fatalf("Release: %v", err)
			}
			j, _ := s.Get(a.ID)
			if j.State != StateQueued || j.Owner != "" || j.Attempts != 1 {
				t.Fatalf("released record: %+v", j)
			}
			got, err := s.Claim("r2", base.Add(time.Second), time.Hour)
			if err != nil || got == nil || got.ID != a.ID || got.Attempts != 2 {
				t.Fatalf("re-claim after release = %+v, %v", got, err)
			}
		})
	}
}

func TestRequestCancel(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			q := mustCreate(t, s, &Job{})
			r := mustCreate(t, s, &Job{})

			// Queued: canceled immediately and never claimable.
			j, changed, err := s.RequestCancel(q.ID, base)
			if err != nil || !changed || j.State != StateCanceled || j.Finished.IsZero() {
				t.Fatalf("cancel queued = %+v, %v, %v", j, changed, err)
			}

			got, err := s.Claim("r1", base, time.Hour)
			if err != nil || got == nil || got.ID != r.ID {
				t.Fatalf("Claim after cancel = %+v, %v (want %s)", got, err, r.ID)
			}
			// Running: flagged, reported via heartbeat, still running.
			j, changed, err = s.RequestCancel(r.ID, base)
			if err != nil || !changed || j.State != StateRunning || !j.CancelRequested {
				t.Fatalf("cancel running = %+v, %v, %v", j, changed, err)
			}
			cancel, err := s.Heartbeat(r.ID, "r1", base, time.Hour)
			if err != nil || !cancel {
				t.Fatalf("Heartbeat after cancel = %v, %v", cancel, err)
			}
			if err := s.Finish(r.ID, "r1", StateCanceled, nil, "canceled", base); err != nil {
				t.Fatal(err)
			}
			// Terminal: no-op, state preserved.
			j, changed, err = s.RequestCancel(r.ID, base)
			if err != nil || changed || j.State != StateCanceled {
				t.Fatalf("cancel terminal = %+v, %v, %v", j, changed, err)
			}
		})
	}
}

func TestCountsExcludeSweepParents(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			mustCreate(t, s, &Job{})
			mustCreate(t, s, &Job{})
			mustCreate(t, s, &Job{Kind: KindSweep})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatal(err)
			}
			c, err := s.Counts()
			if err != nil {
				t.Fatal(err)
			}
			if c[StateQueued] != 1 || c[StateRunning] != 1 || len(c) != 2 {
				t.Fatalf("Counts = %v", c)
			}
		})
	}
}

func TestListFilters(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			sw := mustCreate(t, s, &Job{Kind: KindSweep, Cells: 2})
			mustCreate(t, s, &Job{Parent: sw.ID, Cell: 0})
			mustCreate(t, s, &Job{Parent: sw.ID, Cell: 1})
			mustCreate(t, s, &Job{})

			kids, _ := s.List(Filter{Parent: sw.ID})
			if len(kids) != 2 || kids[0].Cell != 0 || kids[1].Cell != 1 {
				t.Fatalf("Parent filter: %+v", kids)
			}
			sweeps, _ := s.List(Filter{Kind: KindSweep})
			if len(sweeps) != 1 || sweeps[0].ID != sw.ID {
				t.Fatalf("Kind filter: %+v", sweeps)
			}
			queued, _ := s.List(Filter{State: StateQueued, Kind: KindJob, Limit: 2})
			if len(queued) != 2 || queued[0].Cell != 0 || queued[1].Cell != 1 {
				t.Fatalf("Limit prefix: %+v", queued)
			}
		})
	}
}

func TestPruneKeepsLiveSweepChildren(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// Four standalone terminal jobs, plus a live sweep whose
			// terminal child must be immune until the parent finishes.
			var plain []*Job
			for i := 0; i < 4; i++ {
				j := mustCreate(t, s, &Job{})
				plain = append(plain, j)
				if _, err := s.Claim("r1", base, time.Hour); err != nil {
					t.Fatal(err)
				}
				if err := s.Finish(j.ID, "r1", StateDone, nil, "", base); err != nil {
					t.Fatal(err)
				}
			}
			sw := mustCreate(t, s, &Job{Kind: KindSweep, Cells: 1})
			kid := mustCreate(t, s, &Job{Parent: sw.ID})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := s.Finish(kid.ID, "r1", StateDone, nil, "", base); err != nil {
				t.Fatal(err)
			}

			// Prunable set is the 4 plain jobs only — the live sweep's
			// child is protected — so keep=2 drops the 2 oldest.
			n, err := s.Prune(2)
			if err != nil || n != 2 {
				t.Fatalf("Prune = %d, %v (want 2: child protected)", n, err)
			}
			if _, err := s.Get(plain[0].ID); !errors.Is(err, ErrNotFound) {
				t.Fatalf("oldest survived prune: %v", err)
			}
			if _, err := s.Get(kid.ID); err != nil {
				t.Fatalf("live sweep's child pruned: %v", err)
			}

			// Parent terminal → child becomes prunable.
			if err := s.Finish(sw.ID, "", StateDone, nil, "", base); err != nil {
				t.Fatal(err)
			}
			if n, _ := s.Prune(0); n != 4 {
				t.Fatalf("final prune = %d (want 4)", n)
			}
			left, _ := s.List(Filter{})
			if len(left) != 0 {
				t.Fatalf("records left: %+v", left)
			}
		})
	}
}

func TestSeqSurvivesPrune(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			j := mustCreate(t, s, &Job{})
			if _, err := s.Claim("r1", base, time.Hour); err != nil {
				t.Fatal(err)
			}
			if err := s.Finish(j.ID, "r1", StateDone, nil, "", base); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Prune(0); err != nil {
				t.Fatal(err)
			}
			next := mustCreate(t, s, &Job{})
			if next.Seq != 2 || next.ID != "j-000002" {
				t.Fatalf("seq reused after prune: %+v", next)
			}
		})
	}
}

func TestParseState(t *testing.T) {
	for _, ok := range []string{"queued", "running", "done", "failed", "canceled", "timed_out"} {
		if _, err := ParseState(ok); err != nil {
			t.Fatalf("ParseState(%q): %v", ok, err)
		}
	}
	if _, err := ParseState("exploded"); err == nil {
		t.Fatal("ParseState accepted garbage")
	}
}

func TestConcurrentClaimNoDuplicates(t *testing.T) {
	for name, s := range backends(t) {
		t.Run(name, func(t *testing.T) {
			const jobs, workers = 40, 8
			for i := 0; i < jobs; i++ {
				mustCreate(t, s, &Job{})
			}
			claims := make(chan string, jobs*2)
			done := make(chan struct{})
			for w := 0; w < workers; w++ {
				owner := fmt.Sprintf("r%d", w)
				go func() {
					defer func() { done <- struct{}{} }()
					for {
						j, err := s.Claim(owner, base, time.Hour)
						if err != nil {
							t.Errorf("Claim: %v", err)
							return
						}
						if j == nil {
							return
						}
						claims <- j.ID
						if err := s.Finish(j.ID, owner, StateDone, nil, "", base); err != nil {
							t.Errorf("Finish: %v", err)
							return
						}
					}
				}()
			}
			for w := 0; w < workers; w++ {
				<-done
			}
			close(claims)
			seen := make(map[string]bool)
			for id := range claims {
				if seen[id] {
					t.Fatalf("job %s claimed twice", id)
				}
				seen[id] = true
			}
			if len(seen) != jobs {
				t.Fatalf("claimed %d of %d jobs", len(seen), jobs)
			}
		})
	}
}
