package msgpass

import (
	"testing"

	"radiocolor/internal/graph"
)

func path(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

// echoProto broadcasts its index for k rounds, recording everything it
// hears, then terminates.
type echoProto struct {
	idx    int32
	rounds int
	k      int
	heard  map[int32][]any
}

func (p *echoProto) Round(r int, inbox map[int32]any) any {
	for from, m := range inbox {
		p.heard[from] = append(p.heard[from], m)
	}
	p.rounds++
	return p.idx
}
func (p *echoProto) Done() bool { return p.rounds >= p.k }

func TestRunDeliversToNeighbors(t *testing.T) {
	g := path(3)
	protos := make([]Protocol, 3)
	nodes := make([]*echoProto, 3)
	for i := range protos {
		nodes[i] = &echoProto{idx: int32(i), k: 3, heard: make(map[int32][]any)}
		protos[i] = nodes[i]
	}
	res, err := Run(g, protos, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Rounds != 3 {
		t.Fatalf("res = %+v", res)
	}
	// Node 1 hears 0 and 2 (from round 1 on, payloads of round 0).
	if len(nodes[1].heard[0]) == 0 || len(nodes[1].heard[2]) == 0 {
		t.Errorf("node 1 heard %v", nodes[1].heard)
	}
	// Node 0 never hears node 2 (not adjacent).
	if len(nodes[0].heard[2]) != 0 {
		t.Error("non-neighbor message delivered")
	}
	// All broadcasts counted: 3 nodes × 3 rounds.
	if res.Messages != 9 {
		t.Errorf("messages = %d", res.Messages)
	}
	for i, r := range res.DecideRound {
		if r != 2 {
			t.Errorf("node %d decided at round %d", i, r)
		}
	}
}

// silentProto never broadcasts and terminates immediately.
type silentProto struct{ done bool }

func (p *silentProto) Round(int, map[int32]any) any { p.done = true; return nil }
func (p *silentProto) Done() bool                   { return p.done }

func TestRunSilentNodes(t *testing.T) {
	g := path(2)
	res, err := Run(g, []Protocol{&silentProto{}, &silentProto{}}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || res.Messages != 0 {
		t.Errorf("res = %+v", res)
	}
}

// stubborn never terminates.
type stubborn struct{}

func (stubborn) Round(int, map[int32]any) any { return nil }
func (stubborn) Done() bool                   { return false }

func TestRunRoundLimit(t *testing.T) {
	g := path(2)
	res, err := Run(g, []Protocol{stubborn{}, stubborn{}}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDone || res.Rounds != 7 {
		t.Errorf("res = %+v", res)
	}
	if res.DecideRound[0] != -1 {
		t.Error("undecided node has decide round")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, nil, 1); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Run(path(3), make([]Protocol, 2), 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

// lastWord terminates in round 0 broadcasting a token; the neighbor must
// still see that token in round 1 (terminated nodes keep their last
// broadcast visible).
type lastWord struct{ done bool }

func (p *lastWord) Round(int, map[int32]any) any { p.done = true; return "token" }
func (p *lastWord) Done() bool                   { return p.done }

type listener struct {
	sawToken bool
	rounds   int
}

func (p *listener) Round(r int, inbox map[int32]any) any {
	for _, m := range inbox {
		if m == "token" {
			p.sawToken = true
		}
	}
	p.rounds++
	return nil
}
func (p *listener) Done() bool { return p.rounds >= 3 }

func TestTerminatedNodesRemainVisible(t *testing.T) {
	g := path(2)
	l := &listener{}
	res, err := Run(g, []Protocol{&lastWord{}, l}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone {
		t.Fatalf("res = %+v", res)
	}
	if !l.sawToken {
		t.Error("terminated node's last broadcast was lost")
	}
}
