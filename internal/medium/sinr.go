// The SINR (physical) reception model. Where the protocol model of the
// paper reduces interference to a graph predicate, SINR computes it:
// every concurrent transmission contributes received power to every
// listener, attenuated by distance, and a signal decodes iff its power
// exceeds β times the sum of noise and all other contributions. The
// model therefore exhibits two behaviors the graph rule cannot: the
// capture effect (the strongest of several overlapping signals can
// still decode) and far-field interference (transmitters well outside
// the communication graph still raise the floor). Fuchs & Prutkin's
// Δ+1 coloring (arXiv:1502.02426, internal/baseline/fp) is analyzed
// directly in this model.

package medium

import (
	"fmt"
	"math"

	"radiocolor/internal/geom"
)

// SINR is the physical reception model over geometric positions.
// Received power follows the standard log-distance path-loss law
// P·d^−α; listener u decodes transmitter v iff
//
//	P·d(u,v)^−α ≥ β · (N + Σ_{w≠v} P·d(u,w)^−α)
//
// with the sum over all OTHER concurrent transmitters, however far —
// cumulative interference is global, not a graph property. A signal is
// "audible" when its lone received power reaches the noise floor N;
// capture happens when ≥ 2 audible signals overlap and the strongest
// still clears the threshold.
//
// The zero value is not useful; use DefaultSINR or fill every field.
type SINR struct {
	// Alpha is the path-loss exponent (free space 2, practical 3–6).
	Alpha float64
	// Beta is the SINR decode threshold (≥ 1 means at most one decode
	// per listener; the engine additionally requires it).
	Beta float64
	// NoiseDBM is the ambient noise floor in dBm.
	NoiseDBM float64
	// PowerDBM is the uniform transmission power in dBm.
	PowerDBM float64
}

// DefaultSINR returns the conventional parameter set used across the
// experiments: α=4, β=1.5, noise −90 dBm, power 0 dBm.
func DefaultSINR() SINR {
	return SINR{Alpha: 4, Beta: 1.5, NoiseDBM: -90, PowerDBM: 0}
}

// dbmToMilliwatt converts a dBm level to linear milliwatts.
func dbmToMilliwatt(dbm float64) float64 { return math.Pow(10, dbm/10) }

// MatchedNoiseDBM returns the noise floor (dBm) at which an isolated
// transmission at powerDBM decodes exactly up to the given radius:
// noise = P/(β·radius^α). Matching the floor to a deployment's unit-disk
// radius makes the SINR decode range coincide with the graph's edge
// predicate, which is how the cross-model experiment and the property
// tests keep the topologies comparable.
func MatchedNoiseDBM(powerDBM, beta, alpha, radius float64) float64 {
	return powerDBM - 10*(math.Log10(beta)+alpha*math.Log10(radius))
}

// Name implements Medium.
func (SINR) Name() string { return "sinr" }

// Bind implements Medium. SINR needs positions: binding against a
// non-geometric environment fails.
func (m SINR) Bind(env Env) (Instance, error) {
	if m.Alpha <= 0 || m.Beta <= 0 {
		return nil, fmt.Errorf("medium: sinr needs positive alpha and beta (got α=%g, β=%g)", m.Alpha, m.Beta)
	}
	if len(env.Points) != env.N {
		return nil, fmt.Errorf("medium: sinr needs one position per node (%d points for %d nodes); use a geometric topology", len(env.Points), env.N)
	}
	return &sinrInstance{
		par:   m,
		pts:   env.Points,
		noise: dbmToMilliwatt(m.NoiseDBM),
		power: dbmToMilliwatt(m.PowerDBM),
		acc:   make([]sinrAcc, env.N),
	}, nil
}

// sinrAcc is one listener's per-slot accumulator: the running
// interference sum, the strongest audible signal and its sender, and
// the number of audible signals (for the capture flag).
type sinrAcc struct {
	sum     float64
	best    float64
	from    int32
	audible int32
}

type sinrInstance struct {
	par     SINR
	pts     []geom.Point
	noise   float64 // linear mW
	power   float64 // linear mW
	acc     []sinrAcc
	touched []int32
}

// Name implements Instance.
func (s *sinrInstance) Name() string { return "sinr" }

// N implements Instance.
func (s *sinrInstance) N() int { return len(s.acc) }

// minDist2 clamps the squared distance so co-located points attenuate
// as if 1 mm apart instead of dividing by zero.
const minDist2 = 1e-6

// Resolve implements Instance. The accumulation is O(|tx|·n): every
// transmitter contributes to every listener, because far-field
// interference is the point of the model. Sums run in ascending
// transmitter then ascending listener order and ties on the strongest
// signal keep the lower-indexed sender, so the result is bit-identical
// for any engine worker count.
func (s *sinrInstance) Resolve(slot int64, tx []int32, listening func(int32) bool, dst []Reception) ([]Reception, Stats) {
	var st Stats
	alpha, beta := s.par.Alpha, s.par.Beta
	touched := s.touched[:0]
	n := int32(len(s.acc))
	for _, v := range tx {
		pv := s.pts[v]
		for u := int32(0); u < n; u++ {
			if u == v || !listening(u) {
				continue
			}
			d2 := pv.Dist2(s.pts[u])
			if d2 < minDist2 {
				d2 = minDist2
			}
			gain := s.power * math.Pow(d2, -alpha/2)
			a := &s.acc[u]
			if a.sum == 0 {
				touched = append(touched, u)
			}
			a.sum += gain
			if gain >= s.noise {
				a.audible++
				if gain > a.best {
					a.best = gain
					a.from = v
				}
			}
		}
	}
	for _, u := range touched {
		a := &s.acc[u]
		sum, best, audible, from := a.sum, a.best, a.audible, a.from
		*a = sinrAcc{}
		if audible == 0 {
			continue // pure sub-noise interference: the listener hears silence
		}
		switch {
		case best >= beta*(s.noise+(sum-best)):
			dst = append(dst, Reception{To: u, From: from, Captured: audible >= 2})
		case best >= beta*s.noise:
			// Would decode alone; the cumulative interference drowned it.
			st.Drowned++
			st.Collisions++
		default:
			st.BelowNoise++
		}
	}
	s.touched = touched
	return dst, st
}
