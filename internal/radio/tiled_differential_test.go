package radio_test

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/fault"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

// The tiled-kernel differential suite. The tiled slot loop (tiled.go)
// reorders every per-slot accumulation — tile-major sweeps, a boundary
// exchange for cross-tile edges, per-tile counter tallies — and all of
// it is claimed order-free, so the contract is strict: for any tile and
// worker count the tiled engine's Result and protocol outcomes are
// bit-identical to the untiled kernel, with every seam (faults, drop/
// capture coins, observers, media fallback) composed. The second axis
// pins the relabeling pass: a run on a permuted graph, mapped back
// through the inverse permutation, is byte-identical to the original.

// runTiledVariant is runVariant with a tile count: tiles == 0 is the
// untiled kernel, tiles > 1 the tiled one, -1 lets the engine choose.
func runTiledVariant(t *testing.T, c diffCase, workers, tiles int) (*radio.Result, []int32, []int32) {
	t.Helper()
	par := diffParams(c.g)
	nodes, protos := core.Nodes(c.g.N(), c.seed, par, core.Ablation{})
	cfg := radio.Config{
		G: c.g, Protocols: protos, Wake: c.wake,
		MaxSlots: diffBudget, NEstimate: par.N,
		DropProb: c.drop, DropSeed: c.seed, CaptureProb: c.capture,
		Workers: workers, Tiles: tiles,
	}
	res, err := radio.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d tiles=%d: %v", c.name, workers, tiles, err)
	}
	colors := make([]int32, len(nodes))
	tcs := make([]int32, len(nodes))
	for i, v := range nodes {
		colors[i] = v.Color()
		tcs[i] = v.TC()
	}
	return res, colors, tcs
}

// tiledVariants is the (workers, tiles) matrix every differential case
// is checked at: sequential and parallel sweeps, tile counts that do
// and do not divide the node counts, and the auto selector.
var tiledVariants = []struct {
	label          string
	workers, tiles int
}{
	{"w1/t2", 1, 2},
	{"w4/t2", 4, 2},
	{"w1/t7", 1, 7},
	{"w4/t7", 4, 7},
	{"w16/t7", 16, 7},
	{"w4/auto", 4, -1},
}

// TestTiledDifferentialMatchesUntiled is the headline pin: over the
// full graph × wakeup-schedule × seed matrix (plus drop and capture
// coin cases), the tiled kernel is bit-identical to the untiled one at
// every tile and worker count — Result, colors, and intra-cluster
// colors all DeepEqual.
func TestTiledDifferentialMatchesUntiled(t *testing.T) {
	cases := diffCases(t)
	if testing.Short() && len(cases) > 12 {
		cases = cases[:12]
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			baseRes, baseColors, baseTCs := runTiledVariant(t, c, 1, 0)
			for _, v := range tiledVariants {
				res, colors, tcs := runTiledVariant(t, c, v.workers, v.tiles)
				if !reflect.DeepEqual(res, baseRes) {
					t.Fatalf("%s: Result diverged from untiled kernel\n base: %+v\n got:  %+v", v.label, baseRes, res)
				}
				if !reflect.DeepEqual(colors, baseColors) {
					t.Fatalf("%s: colors diverged from untiled kernel", v.label)
				}
				if !reflect.DeepEqual(tcs, baseTCs) {
					t.Fatalf("%s: intra-cluster colors diverged from untiled kernel", v.label)
				}
			}
			if baseRes.Deliveries == 0 {
				t.Fatal("no deliveries; differential is vacuous")
			}
		})
	}
}

// TestTiledScriptedCollisions forces dense simultaneous transmissions
// — the regime where the split resolve (intra-tile accumulate, then
// boundary-exchange fold) is most likely to drift from the single-pass
// accumulation: count sums crossing txMarker/asleep sentinels, lowest-
// sender selection across tiles, capture on exactly-two collisions.
func TestTiledScriptedCollisions(t *testing.T) {
	for _, seed := range []int64{3, 9, 27} {
		g := erdosRenyi(40, 0.15, seed)
		r := rand.New(rand.NewSource(seed * 1000))
		scripts := make([][]bool, g.N())
		for i := range scripts {
			scripts[i] = make([]bool, 60)
			for s := range scripts[i] {
				scripts[i][s] = r.Float64() < 0.35
			}
		}
		wake := radio.WakeUniform(g.N(), 20, seed)
		run := func(workers, tiles int) *radio.Result {
			protos := make([]radio.Protocol, g.N())
			for i := range protos {
				protos[i] = &scriptedDiffProto{id: radio.NodeID(i), script: scripts[i]}
			}
			cfg := radio.Config{
				G: g, Protocols: protos, Wake: wake,
				MaxSlots: 120, CaptureProb: 0.4, DropSeed: seed,
				Workers: workers, Tiles: tiles,
			}
			res, err := radio.Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		ref := run(1, 0)
		for _, v := range tiledVariants {
			if got := run(v.workers, v.tiles); !reflect.DeepEqual(got, ref) {
				t.Fatalf("seed %d: tiled %s diverged\n ref: %+v\n got: %+v", seed, v.label, ref, got)
			}
		}
		if ref.Collisions == 0 || ref.Captures == 0 {
			t.Fatalf("seed %d: no collisions/captures; scripted differential is vacuous", seed)
		}
	}
}

// runFaultedTiled is runFaulted with a tile count.
func runFaultedTiled(t *testing.T, c diffCase, prof *fault.Profile, workers, tiles int) (*radio.Result, []int32) {
	t.Helper()
	par := diffParams(c.g)
	nodes, protos := core.Nodes(c.g.N(), c.seed, par, core.Ablation{})
	cfg := radio.Config{
		G: c.g, Protocols: protos, Wake: c.wake,
		MaxSlots: diffBudget, NEstimate: par.N,
		Workers: workers, Tiles: tiles,
	}
	if prof != nil {
		inj, err := prof.Compile(c.g.N())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
	}
	res, err := radio.Run(cfg)
	if err != nil {
		t.Fatalf("%s workers=%d tiles=%d: %v", c.name, workers, tiles, err)
	}
	colors := make([]int32, len(nodes))
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	return res, colors
}

// TestTiledDifferentialWithFaults composes every fault class at once —
// i.i.d. loss, burst fading, final crashes, a crash+restart, and a
// probabilistic jammer — and pins the tiled engine to the untiled one.
// The fault coins hash (seed, slot, link), so they must land in exactly
// the same receptions however the deliver work is partitioned; crash
// and restart events apply in the shared wake phase before the sweeps.
func TestTiledDifferentialWithFaults(t *testing.T) {
	cases := diffCases(t)[:10]
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			prof := chaosProfile(c.seed)
			baseRes, baseCol := runFaultedTiled(t, c, prof, 1, 0)
			for _, v := range tiledVariants {
				res, col := runFaultedTiled(t, c, prof, v.workers, v.tiles)
				if !reflect.DeepEqual(res, baseRes) {
					t.Fatalf("%s: faulted Result diverged\n base: %+v\n got:  %+v", v.label, baseRes, res)
				}
				if !reflect.DeepEqual(col, baseCol) {
					t.Fatalf("%s: faulted colors diverged", v.label)
				}
			}
			if baseRes.Lost == 0 && baseRes.Jammed == 0 && baseRes.Crashes == 0 {
				t.Fatal("chaos profile injected nothing; test is vacuous")
			}
		})
	}
}

// TestTiledQuiescenceDifferential pins the Quiescent seam on the
// synthetic bench protocol (the workload the headline speedup is
// measured on): nodes decide mid-run and declare permanent silence, the
// tiled engine drops them from the Send sweep and skips their Recv
// calls, and every Result field must still match the untiled kernel —
// which keeps ticking them — across all five wakeup schedules. Protocol
// state is deliberately NOT compared: a quiescent node's recv counter
// stops, which is exactly the behavior independence the seam declares.
func TestTiledQuiescenceDifferential(t *testing.T) {
	const n = 2000
	const slots = 3000
	d := topology.UDGWithTargetDegree(n, 12, 1)
	w := kernelWorkload{n: n, g: d, slots: slots}
	for _, pat := range radio.WakePatterns {
		pat := pat
		t.Run(pat.Name, func(t *testing.T) {
			t.Parallel()
			// A small phase length keeps every schedule's wake span inside
			// the budget (sequential's span is n·p/8), so nodes decide
			// mid-run and the quiescent tail is long.
			wake := pat.Make(n, 6, 5)
			run := func(workers, tiles int) *radio.Result {
				cfg := radio.Config{
					G: d.G, Protocols: w.protocols(), Wake: wake,
					MaxSlots: slots, NEstimate: n,
					Workers: workers, Tiles: tiles,
				}
				res, err := radio.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(1, 0)
			for _, v := range []struct {
				label          string
				workers, tiles int
			}{{"w1/t4", 1, 4}, {"w4/t4", 4, 4}, {"w4/t13", 4, 13}} {
				if got := run(v.workers, v.tiles); !reflect.DeepEqual(got, base) {
					t.Fatalf("%s: quiescent tiled run diverged\n base: %+v\n got:  %+v", v.label, base, got)
				}
			}
			// The seam must actually have engaged: most nodes decide well
			// before the budget, so the silent set is large by the end.
			decided := 0
			for _, s := range base.DecideSlot {
				if s >= 0 && s < slots-100 {
					decided++
				}
			}
			if decided < n/2 {
				t.Fatalf("only %d/%d nodes decided early; quiescence differential is vacuous", decided, n)
			}
		})
	}
}

// slotEvent is one observer callback for the event-stream differential.
type slotEvent struct {
	kind string
	slot int64
	node radio.NodeID
	n    int
}

// recObserver records every callback. The tiled engine guarantees
// wake, transmit, decide and slot events in exactly the untiled order;
// deliver and collision events are emitted per tile, so they are
// compared as within-slot multisets (the documented divergence).
type recObserver struct {
	ordered []slotEvent // wake, transmit, decide, slot
	perSlot []slotEvent // deliver, collision
}

func (o *recObserver) OnSlot(slot int64) {
	o.ordered = append(o.ordered, slotEvent{kind: "slot", slot: slot})
}
func (o *recObserver) OnWake(slot int64, node radio.NodeID) {
	o.ordered = append(o.ordered, slotEvent{kind: "wake", slot: slot, node: node})
}
func (o *recObserver) OnTransmit(slot int64, from radio.NodeID, msg radio.Message) {
	o.ordered = append(o.ordered, slotEvent{kind: "tx", slot: slot, node: from})
}
func (o *recObserver) OnDeliver(slot int64, to radio.NodeID, msg radio.Message) {
	o.perSlot = append(o.perSlot, slotEvent{kind: "rx", slot: slot, node: to})
}
func (o *recObserver) OnCollision(slot int64, at radio.NodeID, transmitters int) {
	o.perSlot = append(o.perSlot, slotEvent{kind: "col", slot: slot, node: at, n: transmitters})
}
func (o *recObserver) OnDecide(slot int64, node radio.NodeID) {
	o.ordered = append(o.ordered, slotEvent{kind: "decide", slot: slot, node: node})
}

func sortEvents(evs []slotEvent) {
	sort.Slice(evs, func(a, b int) bool {
		x, y := evs[a], evs[b]
		if x.slot != y.slot {
			return x.slot < y.slot
		}
		if x.kind != y.kind {
			return x.kind < y.kind
		}
		if x.node != y.node {
			return x.node < y.node
		}
		return x.n < y.n
	})
}

// TestTiledObserverEvents pins the traced path: a non-nil Observer
// forces both sweeps sequential, wake/transmit/decide/slot streams are
// byte-identical to the untiled engine, and deliver/collision streams
// agree as within-slot multisets.
func TestTiledObserverEvents(t *testing.T) {
	c := diffCases(t)[0]
	run := func(tiles int) (*radio.Result, *recObserver) {
		par := diffParams(c.g)
		_, protos := core.Nodes(c.g.N(), c.seed, par, core.Ablation{})
		ob := &recObserver{}
		cfg := radio.Config{
			G: c.g, Protocols: protos, Wake: c.wake,
			MaxSlots: diffBudget, NEstimate: par.N,
			Observer: ob, Workers: 4, Tiles: tiles,
		}
		res, err := radio.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, ob
	}
	baseRes, baseOb := run(0)
	for _, tiles := range []int{2, 7} {
		res, ob := run(tiles)
		if !reflect.DeepEqual(res, baseRes) {
			t.Fatalf("tiles=%d: traced Result diverged", tiles)
		}
		if !reflect.DeepEqual(ob.ordered, baseOb.ordered) {
			t.Fatalf("tiles=%d: wake/transmit/decide/slot event stream diverged", tiles)
		}
		sortEvents(ob.perSlot)
		basePer := append([]slotEvent(nil), baseOb.perSlot...)
		sortEvents(basePer)
		if !reflect.DeepEqual(ob.perSlot, basePer) {
			t.Fatalf("tiles=%d: deliver/collision multiset diverged", tiles)
		}
	}
	if len(baseOb.perSlot) == 0 {
		t.Fatal("no deliver/collision events; observer differential is vacuous")
	}
}

// TestTiledMediumFallsBack pins the documented composition with the
// reception-model seam: a pluggable medium owns slot resolution, so a
// tiled Config with Medium set silently runs the untiled loop and must
// be bit-identical to the same Config without tiles.
func TestTiledMediumFallsBack(t *testing.T) {
	d := topology.UDGWithTargetDegree(60, 8, 13)
	n := d.G.N()
	r := rand.New(rand.NewSource(77))
	scripts := make([][]bool, n)
	for i := range scripts {
		scripts[i] = make([]bool, 200)
		for s := range scripts[i] {
			scripts[i][s] = r.Float64() < 0.15
		}
	}
	csr := d.G.CSR()
	media := []struct {
		name  string
		model medium.Medium
	}{
		{"graph-threshold", medium.GraphThreshold{}},
		{"sinr", medium.SINR{Alpha: 4, Beta: 1.5,
			NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, d.Radius)}},
		{"multichannel", medium.MultiChannel{K: 3, HopSeed: 9}},
	}
	for _, m := range media {
		m := m
		t.Run(m.name, func(t *testing.T) {
			run := func(tiles int) *radio.Result {
				inst, err := m.model.Bind(medium.Env{
					N: n, Offsets: csr.Offsets, Edges: csr.Edges,
					Points: d.Points, Seed: 7,
				})
				if err != nil {
					t.Fatal(err)
				}
				protos := make([]radio.Protocol, n)
				for i := range protos {
					protos[i] = &scriptedDiffProto{id: radio.NodeID(i), script: scripts[i]}
				}
				cfg := radio.Config{
					G: d.G, Protocols: protos,
					Wake:     radio.WakeUniform(n, 40, 3),
					MaxSlots: 260, Medium: inst, Workers: 4, Tiles: 8,
				}
				if tiles == 0 {
					cfg.Tiles = 0
				}
				res, err := radio.Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			base := run(0)
			if got := run(8); !reflect.DeepEqual(got, base) {
				t.Fatalf("tiled medium run diverged from untiled\n base: %+v\n got:  %+v", base, got)
			}
			if base.Deliveries == 0 {
				t.Fatal("no deliveries under medium; fallback differential is vacuous")
			}
		})
	}
}

// Reset implements radio.Restartable for the scripted differential
// protocol: a restarted node replays its script from the top, exactly
// like a freshly woken one — which keeps restarts covariant under node
// relabeling for the permutation differential below.
func (p *scriptedDiffProto) Reset() { p.local = 0; p.recvs = 0 }

// permutedProfile maps a deterministic fault profile's node lists
// through fwd. Only slot-scheduled faults (crashes, restarts, Prob-0
// jammers) are covariant under relabeling — the probabilistic coins
// hash node ids — so the permutation differential composes exactly
// those.
func permutedProfile(prof *fault.Profile, fwd []int32) *fault.Profile {
	out := &fault.Profile{Seed: prof.Seed}
	for _, c := range prof.Crashes {
		c.Node = int(fwd[c.Node])
		out.Crashes = append(out.Crashes, c)
	}
	for _, j := range prof.Jammers {
		nodes := make([]int, len(j.Nodes))
		for i, v := range j.Nodes {
			nodes[i] = int(fwd[v])
		}
		j.Nodes = nodes
		out.Jammers = append(out.Jammers, j)
	}
	return out
}

// mapResultBack rewrites a permuted-run Result into original labels:
// per-node arrays are gathered through Forward, the down set mapped
// through Inverse and re-sorted, scalars copied verbatim.
func mapResultBack(res *radio.Result, p graph.Permutation) *radio.Result {
	n := len(p.Forward)
	mapped := *res
	mapped.WakeSlot = make([]int64, n)
	mapped.DecideSlot = make([]int64, n)
	mapped.PerNodeTx = make([]int64, n)
	for v := 0; v < n; v++ {
		mapped.WakeSlot[v] = res.WakeSlot[p.Forward[v]]
		mapped.DecideSlot[v] = res.DecideSlot[p.Forward[v]]
		mapped.PerNodeTx[v] = res.PerNodeTx[p.Forward[v]]
	}
	if len(res.Down) > 0 {
		mapped.Down = make([]int32, len(res.Down))
		for i, v := range res.Down {
			mapped.Down[i] = p.Inverse[v]
		}
		sortInt32Slice(mapped.Down)
	}
	return &mapped
}

func sortInt32Slice(xs []int32) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}

// TestTiledPermutationDifferential is the second axis: run the untiled
// kernel on the original graph, run the TILED kernel on a relabeled
// copy — scripts, wake slots and deterministic faults placed
// covariantly — and require the permuted output, mapped back through
// the inverse permutation, to be byte-identical: every scalar counter,
// every per-node array, every protocol's reception count. This is what
// licenses the public Tiling option to relabel behind the caller's
// back. Probabilistic coins (drop, capture, loss, burst, Prob jammers)
// hash node ids and are deliberately excluded; the composition of
// those with tiling is pinned by the same-graph axis above.
func TestTiledPermutationDifferential(t *testing.T) {
	d := topology.UDGWithTargetDegree(60, 8, 13)
	er := erdosRenyi(50, 0.12, 21)
	hx := make([]float64, d.G.N())
	hy := make([]float64, d.G.N())
	for i, pt := range d.Points {
		hx[i], hy[i] = pt.X, pt.Y
	}
	randPerm := func(n int, seed int64) graph.Permutation {
		r := rand.New(rand.NewSource(seed))
		fwd := make([]int32, n)
		for i, v := range r.Perm(n) {
			fwd[i] = int32(v)
		}
		p, err := graph.NewPermutation(fwd)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		g    *graph.Graph
		perm graph.Permutation
	}{
		{"udg60/hilbert", d.G, graph.HilbertOrder(hx, hy)},
		{"udg60/random", d.G, randPerm(d.G.N(), 31)},
		{"er50/bfs", er, graph.BFSOrder(er)},
		{"er50/random", er, randPerm(er.N(), 32)},
	}
	prof := &fault.Profile{
		Crashes: []fault.Crash{
			{Node: 5, At: 40},
			{Node: 11, At: 60, Restart: 160},
			{Node: 2, At: 30},
		},
		Jammers: []fault.Jammer{
			{Nodes: []int{1, 7, 19}, From: 20, Until: 220, Period: 8, Duty: 3},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			n := tc.g.N()
			r := rand.New(rand.NewSource(63))
			scripts := make([][]bool, n)
			for i := range scripts {
				scripts[i] = make([]bool, 80)
				for s := range scripts[i] {
					scripts[i][s] = r.Float64() < 0.3
				}
			}
			for _, pat := range radio.WakePatterns {
				wake := pat.Make(n, 60, 17)
				run := func(g *graph.Graph, scr [][]bool, wk []int64, pr *fault.Profile, workers, tiles int) (*radio.Result, []int) {
					protos := make([]radio.Protocol, n)
					sps := make([]*scriptedDiffProto, n)
					for i := range protos {
						sps[i] = &scriptedDiffProto{id: radio.NodeID(i), script: scr[i]}
						protos[i] = sps[i]
					}
					cfg := radio.Config{
						G: g, Protocols: protos, Wake: wk,
						MaxSlots: 300, Workers: workers, Tiles: tiles,
					}
					if pr != nil {
						inj, err := pr.Compile(n)
						if err != nil {
							t.Fatal(err)
						}
						cfg.Faults = inj
					}
					res, err := radio.Run(cfg)
					if err != nil {
						t.Fatal(err)
					}
					recvs := make([]int, n)
					for i, sp := range sps {
						recvs[i] = sp.recvs
					}
					return res, recvs
				}
				for _, withFaults := range []bool{false, true} {
					var basePr, permPr *fault.Profile
					if withFaults {
						basePr = prof
						permPr = permutedProfile(prof, tc.perm.Forward)
					}
					baseRes, baseRecvs := run(tc.g, scripts, wake, basePr, 1, 0)

					pg := tc.perm.Apply(tc.g)
					scriptsP := make([][]bool, n)
					wakeP := make([]int64, n)
					for v := 0; v < n; v++ {
						scriptsP[tc.perm.Forward[v]] = scripts[v]
						wakeP[tc.perm.Forward[v]] = wake[v]
					}
					for _, v := range []struct {
						workers, tiles int
					}{{1, 3}, {4, 3}, {4, 7}} {
						permRes, permRecvs := run(pg, scriptsP, wakeP, permPr, v.workers, v.tiles)
						mapped := mapResultBack(permRes, tc.perm)
						if !reflect.DeepEqual(mapped, baseRes) {
							t.Fatalf("%s faults=%v w%d/t%d: mapped tiled Result diverged from untiled original\n base:   %+v\n mapped: %+v",
								pat.Name, withFaults, v.workers, v.tiles, baseRes, mapped)
						}
						for u := 0; u < n; u++ {
							if permRecvs[tc.perm.Forward[u]] != baseRecvs[u] {
								t.Fatalf("%s faults=%v w%d/t%d: node %d reception count diverged: %d vs %d",
									pat.Name, withFaults, v.workers, v.tiles, u,
									baseRecvs[u], permRecvs[tc.perm.Forward[u]])
							}
						}
					}
					if withFaults && (baseRes.Crashes == 0 || baseRes.Jammed == 0) {
						t.Fatalf("%s: deterministic faults injected nothing (crashes=%d jammed=%d); vacuous",
							pat.Name, baseRes.Crashes, baseRes.Jammed)
					}
					if baseRes.Deliveries == 0 || baseRes.Collisions == 0 {
						t.Fatalf("%s: no channel contention; permutation differential is vacuous", pat.Name)
					}
				}
			}
		})
	}
}
