package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"radiocolor"
	"radiocolor/internal/fleet"
	"radiocolor/internal/graph"
	"radiocolor/internal/monitor"
	"radiocolor/internal/obs"
	"radiocolor/internal/radio"
	"radiocolor/internal/store"
)

// Config parameterizes a Server. The zero value is usable: an
// in-memory store, a queue bound of 64, GOMAXPROCS workers, a
// 128-entry deployment cache.
type Config struct {
	// Store is the job store backing the server — the source of truth
	// for every job. Nil defaults to an in-process store.Memory
	// (single replica, nothing survives the process). Pass a
	// *store.File opened on a shared directory to make jobs durable
	// and let several colord replicas share one backlog; the server
	// does not close a caller-provided store.
	Store store.Store
	// Replica names this process in the store's lease machinery. Two
	// live replicas must use distinct names; a rebooted replica reusing
	// its old name reclaims its own leases immediately. Defaults to
	// "r<pid>-<n>", unique per Server in this process.
	Replica string
	// LeaseTTL is how long a claimed job stays leased between
	// heartbeats; a replica that misses it is presumed dead and its
	// jobs are reclaimed. Defaults to 10s.
	LeaseTTL time.Duration
	// ClaimInterval is the idle worker's poll period for work created
	// by other replicas (local submissions wake workers immediately).
	// Defaults to 250ms.
	ClaimInterval time.Duration
	// Control receives store/lease/sweep metrics. Nil creates a
	// private registry. Pass the same registry to the store backend
	// (store.FileOptions.Control) so /metrics sees its counters.
	Control *obs.Control
	// QueueCap bounds the queued-job backlog admitted by THIS replica;
	// beyond it submissions are rejected with 429 + Retry-After. The
	// bound is evaluated against the shared store's queued count, so
	// with N replicas the effective bound is at most N×QueueCap.
	// Defaults to 64.
	QueueCap int
	// Workers is the number of jobs executing concurrently. Defaults to
	// runtime.GOMAXPROCS(0).
	Workers int
	// MaxSweepCells bounds the grid size of one sweep submission.
	// Defaults to 256.
	MaxSweepCells int
	// CacheSize bounds the deployment LRU (entries). 0 defaults to 128;
	// negative disables caching.
	CacheSize int
	// MaxNodes rejects jobs larger than this with 413 (admission
	// control: a single huge job should not starve the pool unnoticed).
	// Defaults to 200000.
	MaxNodes int
	// MaxAttempts is the fleet retry bound per job. Defaults to 1 — the
	// simulation is deterministic, so failures are too.
	MaxAttempts int
	// RetryAfter is the hint sent with 429 responses. Defaults to 1s.
	RetryAfter time.Duration
	// JobTimeout bounds each job's wall-clock execution; a job that
	// exceeds it finishes in state "timed_out". 0 means unlimited. A
	// request's timeout_ms overrides it per job.
	JobTimeout time.Duration
	// StreamInterval is the progress sampling period of the stream
	// endpoints. Defaults to 250ms.
	StreamInterval time.Duration
	// MaxBodyBytes bounds the request body. Defaults to 32 MiB (a
	// million-edge adjacency fits comfortably).
	MaxBodyBytes int64
	// MaxRetained bounds the finished jobs kept in the store for status
	// queries; older terminal jobs are pruned as new ones are admitted.
	// Defaults to 4096.
	MaxRetained int

	// run substitutes the job execution for tests.
	run func(ctx context.Context, j *job) (*radiocolor.Outcome, error)
	// now substitutes the clock for tests.
	now func() time.Time
}

// replicaSeq disambiguates default replica names of Servers sharing a
// process (in-process replica tests).
var replicaSeq atomic.Int64

func (c Config) withDefaults() Config {
	if c.Replica == "" {
		c.Replica = fmt.Sprintf("r%d-%d", os.Getpid(), replicaSeq.Add(1))
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = 10 * time.Second
	}
	if c.ClaimInterval <= 0 {
		c.ClaimInterval = 250 * time.Millisecond
	}
	if c.Control == nil {
		c.Control = obs.NewControl()
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxSweepCells <= 0 {
		c.MaxSweepCells = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 128
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200_000
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 1
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 250 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.MaxRetained <= 0 {
		c.MaxRetained = 4096
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// job is the replica-local runtime of one submission: the decoded
// options, the built input, the live metrics registry, and the cancel
// hook. The durable record lives in the store; this struct exists on
// whichever replica admitted or executes the job (rehydrated from the
// stored spec on claim when needed) and is advisory — the store is the
// source of truth for state.
type job struct {
	id       string
	opt      radiocolor.Options
	adj      [][]int
	points   [][2]float64
	radius   float64
	cacheKey string
	cacheHit bool
	// timeout is the job's wall-clock bound (0 = none); exceeding it
	// ends the job in StateTimedOut.
	timeout time.Duration
	// metrics is the per-job live registry the stream endpoints sample;
	// the run feeds it (and the server aggregate) through the observer
	// seam.
	metrics *obs.Metrics

	submitted time.Time
	// done is closed at most once, when this replica drives the job
	// into a terminal state; streamers select on it as the fast local
	// path (and fall back to polling the store for remote jobs).
	done chan struct{}

	mu         sync.Mutex
	state      JobState
	started    time.Time
	finished   time.Time
	attempts   int
	canceled   bool // cancellation requested while running
	cancel     context.CancelFunc
	outcome    *radiocolor.Outcome
	errMsg     string
	doneClosed bool
}

// closeDone closes j.done exactly once. Caller holds j.mu.
func (j *job) closeDone() {
	if !j.doneClosed {
		j.doneClosed = true
		close(j.done)
	}
}

// Server is the coloring service: HTTP handlers in front of a durable
// job store and a claim-loop worker pool. Create with New, serve with
// any http.Server, stop with Shutdown. Several Servers (in one process
// or many) sharing one durable store form a replica group: each job is
// executed by exactly one of them, arbitrated by the store's leases.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	st       store.Store
	ctrl     *obs.Control
	cache    *lru
	engine   *fleet.Engine
	progress *monitor.Progress
	obsReg   *obs.Metrics
	latency  *histogram
	start    time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	// stop ends the worker claim loops; wake nudges one idle worker
	// after a local submission (remote work arrives via ClaimInterval).
	stop chan struct{}
	wake chan struct{}
	// admitMu serializes the queued-count check with record creation so
	// concurrent submissions cannot overshoot QueueCap.
	admitMu sync.Mutex

	mu       sync.Mutex
	jobs     map[string]*job
	order    []*job // submission order, for retention pruning
	draining bool

	submitted atomic.Int64
	accepted  atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	timedOut  atomic.Int64
	inflight  atomic.Int64
}

// New builds a Server and starts its worker pool. With a durable store
// the pool immediately claims whatever backlog the store holds — boot
// resume is the ordinary claim path, rehydrating jobs from their
// persisted specs.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	st := cfg.Store
	if st == nil {
		st = store.NewMemory(cfg.Control)
	}
	s := &Server{
		cfg:      cfg,
		mux:      http.NewServeMux(),
		st:       st,
		ctrl:     cfg.Control,
		cache:    newLRU(cfg.CacheSize),
		progress: monitor.NewProgress(nil, "colord"),
		obsReg:   obs.NewMetrics(),
		latency:  newHistogram(defaultLatencyBounds),
		start:    cfg.now(),
		stop:     make(chan struct{}),
		wake:     make(chan struct{}, 1),
		jobs:     make(map[string]*job),
	}
	s.progress.SetUnits("slots", radio.SimulatedSlots)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	// Each worker runs its job through a single-job fleet batch: the
	// engine contributes panic recovery, the retry loop, wall-time
	// accounting, and the monitor.Progress wiring — the same execution
	// substrate the experiment suite uses.
	s.engine = fleet.New(fleet.Config{
		Workers:     1,
		MaxAttempts: cfg.MaxAttempts,
		Progress:    s.progress,
	})
	s.routes()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

func (s *Server) now() time.Time { return s.cfg.now() }

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/stream", s.handleSweepStream)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// wakeWorkers nudges one idle worker; the rest follow via the claim
// loop (a woken worker claims until the backlog is empty).
func (s *Server) wakeWorkers() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// queuedCount reads the store's queued-job gauge (0 on store errors —
// health endpoints should not fail because a gauge did).
func (s *Server) queuedCount() int {
	c, err := s.st.Counts()
	if err != nil {
		return 0
	}
	return c[store.StateQueued]
}

// Shutdown drains the server: submissions are refused and workers stop
// claiming. What happens to the backlog depends on the store. With the
// default in-memory store (nothing survives anyway) queued jobs are
// canceled and in-flight jobs get until ctx's deadline before their
// contexts fire — the single-process contract. With a durable store,
// queued jobs are simply left queued and deadline-interrupted in-flight
// jobs are released back to the queue: another replica, or this
// process's next boot, picks them up. Returns nil when everything
// drained in time and ctx.Err() when the deadline forced interruption;
// in both cases the worker pool has fully exited on return. The store
// itself is closed by whoever opened it, not by the server.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.mu.Unlock()
	if !alreadyDraining {
		close(s.stop)
	}

	if !s.st.Durable() {
		// Single-process store: queued jobs can never run again, so
		// surface that as cancellation now.
		if recs, err := s.st.List(store.Filter{State: store.StateQueued}); err == nil {
			for _, rec := range recs {
				rec, changed, err := s.st.RequestCancel(rec.ID, s.now())
				if err != nil || !changed || rec.State != store.StateCanceled {
					continue
				}
				s.canceled.Add(1)
				if j := s.lookup(rec.ID); j != nil {
					j.mu.Lock()
					j.state = StateCanceled
					j.finished = rec.Finished
					j.closeDone()
					j.mu.Unlock()
				}
			}
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Deadline: cancel every in-flight job's context; the
		// simulation polls cancellation every ~1024 slots, so the pool
		// exits promptly.
		err = ctx.Err()
	}
	s.baseCancel()
	<-done
	return err
}

// worker claims jobs from the store until shutdown: drain the backlog,
// then sleep until a local submission wakes it or the claim ticker
// fires (work submitted by other replicas arrives silently in the
// shared store — polling is the only cross-process signal).
func (s *Server) worker() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.ClaimInterval)
	defer ticker.Stop()
	for {
		for {
			if s.isDraining() {
				return
			}
			rec, err := s.st.Claim(s.cfg.Replica, s.now(), s.cfg.LeaseTTL)
			if err != nil || rec == nil {
				break // empty backlog (or store hiccup: retry on the ticker)
			}
			s.execute(rec)
		}
		select {
		case <-s.stop:
			return
		case <-s.wake:
		case <-ticker.C:
		}
	}
}

// execute runs one claimed job through its lifecycle: rehydrate the
// runtime if this replica didn't admit it, run under a heartbeat that
// keeps the lease alive and observes cross-replica cancellation, and
// commit the terminal state — unless the lease was lost, in which case
// the result is discarded (the job is deterministic; whoever holds the
// lease commits the identical outcome).
func (s *Server) execute(rec *store.Job) {
	j := s.lookup(rec.ID)
	if j == nil {
		var err error
		j, err = s.buildRuntime(rec)
		if err != nil {
			// The spec was validated at submission, so this is data
			// corruption or version skew — fail the job explicitly
			// rather than leaving it to bounce between replicas.
			if ferr := s.st.Finish(rec.ID, s.cfg.Replica, store.StateFailed, nil, "rehydrate: "+err.Error(), s.now()); ferr == nil {
				s.failed.Add(1)
				s.afterFinish(rec)
			}
			return
		}
		s.register(j)
	}
	if rec.CancelRequested {
		// Reclaimed from a crashed owner after a cancel was requested.
		s.commit(j, rec, store.StateCanceled, nil, "canceled")
		return
	}

	ctx, cancel := context.WithCancel(s.baseCtx)
	if j.timeout > 0 {
		// The timeout wraps the cancelable context, so a DELETE still
		// surfaces as Canceled and only a genuine deadline as
		// DeadlineExceeded.
		var cancelT context.CancelFunc
		ctx, cancelT = context.WithTimeout(ctx, j.timeout)
		defer cancelT()
	}
	j.mu.Lock()
	j.state = StateRunning
	j.started = rec.Started
	j.attempts = rec.Attempts
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	// The heartbeat loop extends the lease while the job runs and is
	// how this replica learns about cancellation requests recorded by
	// others. A failed heartbeat means the lease moved: stop working,
	// the result would be discarded anyway.
	var leaseLost atomic.Bool
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		tick := time.NewTicker(s.cfg.LeaseTTL / 3)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				cancelReq, err := s.st.Heartbeat(rec.ID, s.cfg.Replica, s.now(), s.cfg.LeaseTTL)
				if err != nil {
					leaseLost.Store(true)
					cancel()
					return
				}
				if cancelReq {
					j.mu.Lock()
					j.canceled = true
					j.mu.Unlock()
					cancel()
				}
			}
		}
	}()

	s.inflight.Add(1)
	results, _ := s.engine.Run([]fleet.Job{{
		ID: j.id,
		Run: func() (any, error) {
			out, err := s.runJob(ctx, j)
			if err != nil {
				return nil, err
			}
			return out, nil
		},
	}})
	s.inflight.Add(-1)
	close(hbStop)
	hbWG.Wait()
	res := results[0]
	s.latency.Observe(res.Duration)

	if leaseLost.Load() {
		s.discard(j)
		return
	}

	j.mu.Lock()
	wasCanceled := j.canceled
	j.mu.Unlock()
	var state store.State
	var outcome *radiocolor.Outcome
	var errMsg string
	switch {
	case res.Err == nil:
		state = store.StateDone
		outcome = res.Value.(*radiocolor.Outcome)
	case !wasCanceled && j.timeout > 0 && errors.Is(res.Err, context.DeadlineExceeded):
		state = store.StateTimedOut
		errMsg = fmt.Sprintf("job exceeded its %v wall-clock timeout", j.timeout)
	case wasCanceled || errors.Is(res.Err, context.Canceled) || errors.Is(res.Err, context.DeadlineExceeded):
		state = store.StateCanceled
		errMsg = res.Err.Error()
	default:
		state = store.StateFailed
		errMsg = res.Err.Error()
	}

	if state == store.StateCanceled && !wasCanceled && s.isDraining() && s.st.Durable() {
		// Drain deadline interrupted a durable job nobody asked to
		// cancel: release it back to the queue so the next boot (or a
		// surviving replica) resumes it instead of losing the work.
		if err := s.st.Release(rec.ID, s.cfg.Replica, s.now()); err == nil {
			j.mu.Lock()
			j.state = StateQueued
			j.cancel = nil
			j.mu.Unlock()
			return
		}
		// Release can only fail if the lease moved; fall through to the
		// discard path via commit's own lease check.
	}

	s.commit(j, rec, state, outcome, errMsg)
}

// commit writes the terminal state to the store and, if this replica's
// lease still held, mirrors it into the runtime and the counters. A
// lost lease (or a cancel that beat us to a terminal state) discards
// the result.
func (s *Server) commit(j *job, rec *store.Job, state store.State, outcome *radiocolor.Outcome, errMsg string) {
	var result json.RawMessage
	if outcome != nil {
		var err error
		if result, err = json.Marshal(outcome); err != nil {
			state, outcome, errMsg = store.StateFailed, nil, "encode outcome: "+err.Error()
		}
	}
	if err := s.st.Finish(rec.ID, s.cfg.Replica, state, result, errMsg, s.now()); err != nil {
		s.discard(j)
		return
	}
	switch state {
	case store.StateDone:
		s.completed.Add(1)
	case store.StateFailed:
		s.failed.Add(1)
	case store.StateCanceled:
		s.canceled.Add(1)
	case store.StateTimedOut:
		s.timedOut.Add(1)
	}
	j.mu.Lock()
	j.state = JobState(state)
	j.finished = s.now()
	j.outcome = outcome
	j.errMsg = errMsg
	j.cancel = nil
	j.closeDone()
	j.mu.Unlock()

	if state == store.StateDone && j.cacheKey != "" && outcome != nil {
		// Record the measured parameters so the next job on this
		// deployment skips the measurement pass. Identical by
		// construction: measurement is deterministic.
		s.cache.setMeasured(j.cacheKey, radiocolor.Measured{
			Delta:  outcome.Delta,
			Kappa1: outcome.Kappa1,
			Kappa2: outcome.Kappa2,
		})
	}
	s.afterFinish(rec)
}

// discard throws away this replica's execution of a job whose lease
// moved: the new owner (which reran the deterministic job) commits the
// authoritative result. The runtime entry steps aside; status reads
// come from the store.
func (s *Server) discard(j *job) {
	j.mu.Lock()
	j.state = StateQueued
	j.cancel = nil
	j.mu.Unlock()
}

// afterFinish runs post-commit hooks: sweep children try to finalize
// their parent once the whole grid is terminal.
func (s *Server) afterFinish(rec *store.Job) {
	if rec.Parent != "" {
		s.finalizeSweep(rec.Parent)
	}
}

// buildRuntime rebuilds the runtime job from a stored record's spec —
// the rehydration path for jobs admitted by another replica or a
// previous boot of this one.
func (s *Server) buildRuntime(rec *store.Job) (*job, error) {
	var req JobRequest
	if err := json.Unmarshal(rec.Spec, &req); err != nil {
		return nil, err
	}
	j, err := s.assemble(&req)
	if err != nil {
		return nil, err
	}
	j.id = rec.ID
	j.submitted = rec.Submitted
	return j, nil
}

// assemble turns a validated request into a runtime job: options
// decoded, topology generated or fetched from the deployment cache.
func (s *Server) assemble(req *JobRequest) (*job, error) {
	opt, err := req.validate()
	if err != nil {
		return nil, err
	}
	j := &job{
		opt:       opt,
		timeout:   s.cfg.JobTimeout,
		state:     StateQueued,
		done:      make(chan struct{}),
		metrics:   obs.NewMetrics(),
		submitted: s.now(),
	}
	if req.TimeoutMS > 0 {
		j.timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	switch {
	case req.Topology != nil:
		j.cacheKey = req.Topology.key()
		if e := s.cache.get(j.cacheKey); e != nil {
			j.adj = e.adj
			j.cacheHit = true
			if m := e.measured.Load(); m != nil {
				j.opt.Measured = m
			}
		} else {
			d, err := req.Topology.build()
			if err != nil {
				return nil, err
			}
			e := s.cache.add(j.cacheKey, adjacency(d.G))
			j.adj = e.adj
			if m := e.measured.Load(); m != nil {
				j.opt.Measured = m
			}
		}
	case req.Adjacency != nil:
		j.adj = req.Adjacency
	default:
		j.points = req.Points
		j.radius = req.Radius
	}
	return j, nil
}

// runJob executes the job through the public context-aware entry
// points, feeding the per-job and server-aggregate obs registries
// through the Observer/PhaseObserver seams (which cannot affect the
// outcome). The node count is seeded into the asleep gauge before the
// run and the terminal occupancy is subtracted back out after, so the
// aggregate phase gauges always describe the currently running jobs.
func (s *Server) runJob(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
	if s.cfg.run != nil {
		return s.cfg.run(ctx, j)
	}
	n := int64(len(j.adj) + len(j.points))
	j.metrics.AddPhaseGauge(obs.PhaseAsleep, n)
	s.obsReg.AddPhaseGauge(obs.PhaseAsleep, n)
	defer func() {
		snap := j.metrics.Snapshot()
		for p, v := range snap.PhaseNodes {
			s.obsReg.AddPhaseGauge(obs.Phase(p), -v)
		}
	}()
	opt := j.opt
	opt.Observer = obsFeed{a: j.metrics, b: s.obsReg}
	var out *radiocolor.Outcome
	var err error
	if j.points != nil {
		out, err = radiocolor.ColorUnitDiskContext(ctx, j.points, j.radius, opt)
	} else {
		out, err = radiocolor.ColorGraphContext(ctx, j.adj, opt)
	}
	// The fault and churn seams count events on the run's own registry,
	// not through the Observer hooks the feed above sees — fold their
	// totals from the outcome so the streamed and scraped registries
	// carry them too.
	if out != nil {
		if f := out.Faults; f != nil {
			j.metrics.AddFaultTotals(f.Lost, f.Jammed, f.Crashes, f.Restarts)
			s.obsReg.AddFaultTotals(f.Lost, f.Jammed, f.Crashes, f.Restarts)
		}
		if c := out.Churn; c != nil {
			j.metrics.AddChurnTotals(c.Joins, c.Leaves, c.ConflictsRepaired)
			s.obsReg.AddChurnTotals(c.Joins, c.Leaves, c.ConflictsRepaired)
		}
	}
	return out, err
}

// obsFeed fans simulation events into two metrics registries: the
// job's own (streamed) and the server aggregate (scraped). Both are
// atomic, so the feed is safe under Options.Workers > 1. It implements
// radiocolor.PhaseObserver, so the registries also carry live phase
// occupancy.
type obsFeed struct{ a, b *obs.Metrics }

func (f obsFeed) OnSlot(int64) { f.a.AddSlot(); f.b.AddSlot() }
func (f obsFeed) OnWake(int64, int) {
	f.a.AddWakeup()
	f.b.AddWakeup()
}
func (f obsFeed) OnTransmit(int64, int) {
	f.a.AddTransmission()
	f.b.AddTransmission()
}
func (f obsFeed) OnDeliver(int64, int, int) {
	f.a.AddDelivery()
	f.b.AddDelivery()
}
func (f obsFeed) OnCollision(int64, int, int) {
	f.a.AddCollision()
	f.b.AddCollision()
}
func (f obsFeed) OnDecide(int64, int) {
	f.a.AddDecision()
	f.b.AddDecision()
}
func (f obsFeed) OnPhase(_ int64, _ int, from, to string) {
	pf, err1 := obs.ParsePhase(from)
	pt, err2 := obs.ParsePhase(to)
	if err1 != nil || err2 != nil {
		return
	}
	f.a.PhaseChange(pf, pt)
	f.b.PhaseChange(pf, pt)
}

// register adds j to the runtime index, pruning the oldest terminal
// entries beyond the retention bound (the durable records have their
// own store-side retention via Prune).
func (s *Server) register(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[j.id]; ok {
		return
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j)
	if len(s.order) <= s.cfg.MaxRetained {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxRetained
	for _, old := range s.order {
		if excess > 0 && old.status().State.Terminal() {
			delete(s.jobs, old.id)
			excess--
			continue
		}
		kept = append(kept, old)
	}
	s.order = kept
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// status snapshots the runtime entry (used for retention pruning; the
// wire status always derives from the store record).
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{ID: j.id, State: j.state}
}

// statusFromRecord builds the wire status from the durable record —
// the one source of truth, identical on every replica. CacheHit is the
// only replica-local garnish (the store doesn't know about deployment
// caches).
func (s *Server) statusFromRecord(rec *store.Job) JobStatus {
	st := JobStatus{
		ID:        rec.ID,
		State:     JobState(rec.State),
		Submitted: rec.Submitted,
		Attempts:  rec.Attempts,
		Error:     rec.Error,
	}
	if !rec.Started.IsZero() {
		t := rec.Started
		st.Started = &t
	}
	if !rec.Finished.IsZero() {
		t := rec.Finished
		st.Finished = &t
	}
	if len(rec.Result) > 0 && rec.Kind == store.KindJob {
		var o radiocolor.Outcome
		if err := json.Unmarshal(rec.Result, &o); err == nil {
			st.Outcome = &o
		}
	}
	if j := s.lookup(rec.ID); j != nil {
		j.mu.Lock()
		st.CacheHit = j.cacheHit
		j.mu.Unlock()
	}
	return st
}

// errorResponse is the JSON error body.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.submitted.Add(1)
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if n := req.nodes(); n > s.cfg.MaxNodes {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			errorResponse{Error: fmt.Sprintf("serve: %d nodes exceeds the limit of %d", n, s.cfg.MaxNodes)})
		return
	}
	j, err := s.assemble(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}

	rec, err := s.admit(&req)
	if err != nil {
		var full errBacklogFull
		switch {
		case errors.As(err, &full):
			s.rejected.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(int((s.cfg.RetryAfter+time.Second-1)/time.Second)))
			writeJSON(w, http.StatusTooManyRequests,
				errorResponse{Error: fmt.Sprintf("backlog full (%d/%d queued); retry later", full.queued, s.cfg.QueueCap)})
		case errors.Is(err, errDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "server is draining"})
		default:
			writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
		}
		return
	}
	j.id = rec.ID
	j.submitted = rec.Submitted
	s.register(j)
	s.accepted.Add(1)
	_, _ = s.st.Prune(s.cfg.MaxRetained)
	s.wakeWorkers()
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, s.statusFromRecord(rec))
}

var errDraining = errors.New("serve: draining")

// errBacklogFull is the admission rejection (HTTP 429).
type errBacklogFull struct{ queued int }

func (e errBacklogFull) Error() string { return fmt.Sprintf("serve: backlog full (%d queued)", e.queued) }

// admit persists one job record, enforcing the queued-backlog bound
// atomically: the count check and the create are serialized so a burst
// of concurrent submissions lands exactly QueueCap queued records.
// Every accepted job is durable before its 202 goes out.
func (s *Server) admit(req *JobRequest) (*store.Job, error) {
	spec, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	if s.isDraining() {
		return nil, errDraining
	}
	counts, err := s.st.Counts()
	if err != nil {
		return nil, err
	}
	if q := counts[store.StateQueued]; q >= s.cfg.QueueCap {
		return nil, errBacklogFull{queued: q}
	}
	rec := &store.Job{Kind: store.KindJob, Spec: spec, Submitted: s.now()}
	if err := s.st.Create(rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// handleList serves GET /v1/jobs?state=<state>&limit=<n>: job statuses
// from the store in admission (Seq) order — deterministic and
// identical on every replica. The limit defaults to 256 and is capped
// at 1000; outcomes are omitted (fetch the job for its result).
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	f := store.Filter{Kind: store.KindJob, Limit: 256}
	if sv := r.URL.Query().Get("state"); sv != "" {
		st, err := store.ParseState(sv)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		f.State = st
	}
	if lv := r.URL.Query().Get("limit"); lv != "" {
		n, err := strconv.Atoi(lv)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("serve: bad limit %q", lv)})
			return
		}
		if n > 1000 {
			n = 1000
		}
		f.Limit = n
	}
	recs, err := s.st.List(f)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "store: " + err.Error()})
		return
	}
	statuses := make([]JobStatus, 0, len(recs))
	for _, rec := range recs {
		st := s.statusFromRecord(rec)
		st.Outcome = nil // list stays light; fetch the job for the result
		statuses = append(statuses, st)
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	rec, err := s.st.Get(r.PathValue("id"))
	if err != nil || rec.Kind != store.KindJob {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, s.statusFromRecord(rec))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if rec, err := s.st.Get(id); err != nil || rec.Kind != store.KindJob {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	rec, changed, err := s.st.RequestCancel(id, s.now())
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown job"})
		return
	}
	if changed && rec.State == store.StateCanceled {
		// Was queued: canceled immediately, nobody will ever claim it.
		s.canceled.Add(1)
		if j := s.lookup(id); j != nil {
			j.mu.Lock()
			j.state = StateCanceled
			j.finished = rec.Finished
			j.closeDone()
			j.mu.Unlock()
		}
		s.afterFinish(rec)
	}
	if rec.State == store.StateRunning {
		// If this replica runs the job, fire its context now; a remote
		// owner sees the flag at its next heartbeat.
		if j := s.lookup(id); j != nil {
			j.mu.Lock()
			if j.state == StateRunning {
				j.canceled = true
				if j.cancel != nil {
					j.cancel()
				}
			}
			j.mu.Unlock()
		}
	}
	writeJSON(w, http.StatusOK, s.statusFromRecord(rec))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.progress.Snapshot()
	h := Health{
		Status:        "ok",
		Replica:       s.cfg.Replica,
		QueueDepth:    s.queuedCount(),
		QueueCapacity: s.cfg.QueueCap,
		Inflight:      int(s.inflight.Load()),
		JobsDone:      snap.Done,
		JobsFailed:    snap.Failed,
		UptimeSeconds: s.now().Sub(s.start).Seconds(),
		SlotsPerSec:   snap.UnitsPerSec,
	}
	code := http.StatusOK
	if s.isDraining() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, h)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// adjacency flattens a built graph back to the public adjacency-list
// shape ColorGraphContext accepts.
func adjacency(g *graph.Graph) [][]int {
	adj := make([][]int, g.N())
	for v := range adj {
		row := g.Adj(v)
		out := make([]int, len(row))
		for i, u := range row {
			out[i] = int(u)
		}
		adj[v] = out
	}
	return adj
}
