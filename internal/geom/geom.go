// Package geom provides the geometric substrate used to generate wireless
// network topologies: points in the plane, distance metrics (including
// non-Euclidean doubling metrics for unit ball graphs), line-segment
// obstacles with visibility tests, and a spatial hash grid for efficient
// range queries.
//
// The package is intentionally self-contained and allocation-conscious:
// topology generation for large deployments calls into these routines in
// tight loops.
package geom

import (
	"fmt"
	"math"
)

// Point is a location in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Add returns p + q componentwise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q componentwise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p×q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of the vector p.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return p.Sub(q).Norm() }

// Dist2 returns the squared Euclidean distance between p and q. It avoids
// the square root and is the preferred comparison primitive in hot loops.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Metric computes a distance between two points. Implementations must
// satisfy the metric axioms (non-negativity, identity, symmetry, triangle
// inequality); unit ball graph generation and the doubling-dimension
// analysis of Lemma 9 rely on them.
type Metric interface {
	// Dist returns the distance between a and b.
	Dist(a, b Point) float64
	// Name identifies the metric in experiment tables.
	Name() string
}

// Euclidean is the standard L2 plane metric. Unit ball graphs under
// Euclidean are exactly unit disk graphs.
type Euclidean struct{}

// Dist implements Metric.
func (Euclidean) Dist(a, b Point) float64 { return a.Dist(b) }

// Name implements Metric.
func (Euclidean) Name() string { return "euclidean" }

// Manhattan is the L1 metric. Its unit balls are diamonds; doubling
// dimension is 2, like Euclidean, but κ constants differ slightly.
type Manhattan struct{}

// Dist implements Metric.
func (Manhattan) Dist(a, b Point) float64 {
	return math.Abs(a.X-b.X) + math.Abs(a.Y-b.Y)
}

// Name implements Metric.
func (Manhattan) Name() string { return "manhattan" }

// Chebyshev is the L∞ metric; unit balls are axis-aligned squares.
type Chebyshev struct{}

// Dist implements Metric.
func (Chebyshev) Dist(a, b Point) float64 {
	return math.Max(math.Abs(a.X-b.X), math.Abs(a.Y-b.Y))
}

// Name implements Metric.
func (Chebyshev) Name() string { return "chebyshev" }

// SnappedMetric quantizes an underlying metric to multiples of Step. The
// quantization preserves the metric axioms when the base is a metric and
// Step > 0 (rounding up preserves the triangle inequality:
// ⌈a⌉+⌈b⌉ ≥ ⌈a+b⌉ ≥ ⌈c⌉ whenever a+b ≥ c). Snapping inflates the
// doubling dimension, which makes it a useful stress metric for the unit
// ball graph experiments (E10).
type SnappedMetric struct {
	Base Metric
	Step float64
}

// Dist implements Metric.
func (m SnappedMetric) Dist(a, b Point) float64 {
	if a == b {
		return 0
	}
	d := m.Base.Dist(a, b)
	return math.Ceil(d/m.Step) * m.Step
}

// Name implements Metric.
func (m SnappedMetric) Name() string {
	return fmt.Sprintf("snapped(%s,%g)", m.Base.Name(), m.Step)
}

// HubMetric models a deployment with a long-range relay (e.g. a base
// station): the distance between two points is the minimum of travelling
// directly and routing through the hub at a discount Factor per unit
// length, d(a,b) = min(|ab|, Factor·(|aH| + |Hb|)).
//
// For 0 < Factor ≤ 1 this is a true metric: symmetry and identity are
// immediate, and for the triangle inequality note that in every case the
// concatenation of an optimal a→b path and an optimal b→c path is a valid
// (possibly suboptimal) a→c path because |bc| ≥ Factor·|bc| lets a direct
// leg be spliced into a hub route. Its doubling dimension grows as Factor
// shrinks — a hub-ball of radius r contains a Euclidean disk of radius
// r/Factor whose far-apart points are mutually distant — which makes it a
// good stressor for the unit ball graph analysis of Corollary 3.
type HubMetric struct {
	Hub    Point
	Factor float64
}

// Dist implements Metric.
func (m HubMetric) Dist(a, b Point) float64 {
	direct := a.Dist(b)
	viaHub := m.Factor * (a.Dist(m.Hub) + m.Hub.Dist(b))
	return math.Min(direct, viaHub)
}

// Name implements Metric.
func (m HubMetric) Name() string {
	return fmt.Sprintf("hub(%s,f=%g)", m.Hub, m.Factor)
}

// Segment is a closed line segment between A and B, used to model wall
// obstacles that block radio links.
type Segment struct {
	A, B Point
}

// Length returns the Euclidean length of the segment.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// orientation classifies the turn a→b→c: >0 counter-clockwise,
// <0 clockwise, 0 collinear (within eps).
func orientation(a, b, c Point) int {
	v := b.Sub(a).Cross(c.Sub(a))
	const eps = 1e-12
	switch {
	case v > eps:
		return 1
	case v < -eps:
		return -1
	default:
		return 0
	}
}

// onSegment reports whether collinear point p lies on segment s.
func onSegment(s Segment, p Point) bool {
	return math.Min(s.A.X, s.B.X)-1e-12 <= p.X && p.X <= math.Max(s.A.X, s.B.X)+1e-12 &&
		math.Min(s.A.Y, s.B.Y)-1e-12 <= p.Y && p.Y <= math.Max(s.A.Y, s.B.Y)+1e-12
}

// Intersects reports whether segments s and t share at least one point.
// Standard orientation-based test with collinear handling.
func (s Segment) Intersects(t Segment) bool {
	o1 := orientation(s.A, s.B, t.A)
	o2 := orientation(s.A, s.B, t.B)
	o3 := orientation(t.A, t.B, s.A)
	o4 := orientation(t.A, t.B, s.B)
	if o1 != o2 && o3 != o4 {
		return true
	}
	if o1 == 0 && onSegment(s, t.A) {
		return true
	}
	if o2 == 0 && onSegment(s, t.B) {
		return true
	}
	if o3 == 0 && onSegment(t, s.A) {
		return true
	}
	if o4 == 0 && onSegment(t, s.B) {
		return true
	}
	return false
}

// Obstacles is a set of wall segments. A radio link between two points
// exists only if the straight line between them crosses no wall; this is
// how the BIG topologies of Fig. 1 (walls destroying disk-shaped
// transmission ranges) are generated.
type Obstacles struct {
	Walls []Segment
}

// Blocked reports whether the straight line from a to b crosses any wall.
func (o *Obstacles) Blocked(a, b Point) bool {
	if o == nil {
		return false
	}
	link := Segment{a, b}
	for _, w := range o.Walls {
		if link.Intersects(w) {
			return true
		}
	}
	return false
}

// Count returns the number of wall segments.
func (o *Obstacles) Count() int {
	if o == nil {
		return 0
	}
	return len(o.Walls)
}

// Rect is an axis-aligned rectangle [MinX,MaxX]×[MinY,MaxY].
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies inside the rectangle (inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.MaxX - r.MinX }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// Area returns the rectangle's area.
func (r Rect) Area() float64 { return r.Width() * r.Height() }
