// Package graph provides the network-graph substrate: an adjacency-list
// graph with the neighborhood, independence, and bounded-independence
// (κ₁/κ₂) machinery the paper's model section (Sect. 2) is built on.
//
// Conventions follow the paper: the neighborhood N(v) of a node v
// includes v itself, the degree δ_v = |N(v)| counts v, and Δ = max_v δ_v.
// The two-hop neighborhood N²(v) is the set of nodes within graph
// distance ≤ 2 of v (again including v).
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph over vertices 0..N-1, stored in
// compressed sparse row (CSR) form: one flat, sorted edge array plus
// per-vertex offsets. The adjacency slices in adj are views into the
// shared edge array, so both the slice API (Adj) and the flat API (CSR)
// walk the same cache-friendly memory. It is immutable after Build;
// concurrent readers need no synchronization.
type Graph struct {
	n       int
	adj     [][]int32 // adj[v] aliases edges[offsets[v]:offsets[v+1]]
	edges   []int32   // concatenated sorted neighbor rows, len 2·M
	offsets []int32   // len n+1; row v is edges[offsets[v]:offsets[v+1]]
}

// Builder accumulates edges for a Graph. Duplicate edges and self-loops
// are silently discarded at Build time.
type Builder struct {
	n     int
	edges [][2]int32
}

// NewBuilder creates a builder for a graph on n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n}
}

// AddEdge records the undirected edge (u, v). It panics on out-of-range
// endpoints; self-loops are ignored.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		return
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, [2]int32{int32(u), int32(v)})
}

// Build finalizes the graph. The builder may be reused afterwards, but
// the built graph is independent of it.
//
/// The result is laid out in CSR form in a single pass: edges are sorted
// by (min endpoint, max endpoint) and deduplicated, degrees prefix-summed
// into offsets, and each row filled by one scan over the unique edges.
// Because the scan visits min endpoints in ascending order, row v first
// receives its smaller neighbors (ascending) and then, during v's own
// block, its larger neighbors (ascending) — every row comes out sorted
// without a per-row sort.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i][0] != b.edges[j][0] {
			return b.edges[i][0] < b.edges[j][0]
		}
		return b.edges[i][1] < b.edges[j][1]
	})
	deg := make([]int32, b.n)
	uniq := b.edges[:0]
	var prev [2]int32 = [2]int32{-1, -1}
	for _, e := range b.edges {
		if e == prev {
			continue
		}
		prev = e
		uniq = append(uniq, e)
		deg[e[0]]++
		deg[e[1]]++
	}
	if int64(len(uniq))*2 > int64(1<<31-1) {
		panic(fmt.Sprintf("graph: %d edges overflow int32 CSR offsets", len(uniq)))
	}
	g := &Graph{
		n:       b.n,
		adj:     make([][]int32, b.n),
		edges:   make([]int32, 2*len(uniq)),
		offsets: make([]int32, b.n+1),
	}
	for v := 0; v < b.n; v++ {
		g.offsets[v+1] = g.offsets[v] + deg[v]
	}
	cursor := deg // reuse as fill cursor: next free index relative to row start
	for v := range cursor {
		cursor[v] = g.offsets[v]
	}
	for _, e := range uniq {
		g.edges[cursor[e[0]]] = e[1]
		cursor[e[0]]++
		g.edges[cursor[e[1]]] = e[0]
		cursor[e[1]]++
	}
	for v := 0; v < b.n; v++ {
		g.adj[v] = g.edges[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) / 2 }

// Adj returns the sorted neighbor list of v (excluding v). The returned
// slice is shared with the graph and must not be modified.
func (g *Graph) Adj(v int) []int32 { return g.adj[v] }

// HasEdge reports whether (u, v) is an edge, by binary search over the
// sorted CSR row of u (no closure per probe, unlike sort.Search).
func (g *Graph) HasEdge(u, v int) bool {
	if u == v {
		return false
	}
	lo, hi := g.offsets[u], g.offsets[u+1]
	w := int32(v)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if g.edges[mid] < w {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < g.offsets[u+1] && g.edges[lo] == w
}

// Degree returns δ_v = |N(v)| including v itself, per the paper's
// convention (footnote 1 in Sect. 2).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) + 1 }

// MaxDegree returns Δ = max_v δ_v (paper convention: includes the node).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// AvgDegree returns the mean of δ_v over all vertices.
func (g *Graph) AvgDegree() float64 {
	if g.n == 0 {
		return 0
	}
	total := 0
	for v := 0; v < g.n; v++ {
		total += g.Degree(v)
	}
	return float64(total) / float64(g.n)
}

// Neighborhood returns N(v): v together with its neighbors, sorted.
func (g *Graph) Neighborhood(v int) []int32 {
	out := make([]int32, 0, len(g.adj[v])+1)
	inserted := false
	for _, u := range g.adj[v] {
		if !inserted && u > int32(v) {
			out = append(out, int32(v))
			inserted = true
		}
		out = append(out, u)
	}
	if !inserted {
		out = append(out, int32(v))
	}
	return out
}

// TwoHop returns N²(v): all nodes within graph distance ≤ 2 of v
// (including v), sorted.
func (g *Graph) TwoHop(v int) []int32 {
	seen := map[int32]bool{int32(v): true}
	for _, u := range g.adj[v] {
		seen[u] = true
		for _, w := range g.adj[u] {
			seen[w] = true
		}
	}
	out := make([]int32, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KHop returns all nodes within graph distance ≤ k of v (including v),
// sorted, by breadth-first search.
func (g *Graph) KHop(v, k int) []int32 {
	dist := map[int32]int{int32(v): 0}
	frontier := []int32{int32(v)}
	for d := 0; d < k && len(frontier) > 0; d++ {
		var next []int32
		for _, u := range frontier {
			for _, w := range g.adj[u] {
				if _, ok := dist[w]; !ok {
					dist[w] = d + 1
					next = append(next, w)
				}
			}
		}
		frontier = next
	}
	out := make([]int32, 0, len(dist))
	for u := range dist {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Connected reports whether the graph is connected (the empty graph and
// singletons count as connected).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.Component(0)) == g.n
}

// Component returns the vertices of the connected component containing v,
// sorted.
func (g *Graph) Component(v int) []int32 {
	seen := make([]bool, g.n)
	seen[v] = true
	stack := []int32{int32(v)}
	out := []int32{int32(v)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.adj[u] {
			if !seen[w] {
				seen[w] = true
				stack = append(stack, w)
				out = append(out, w)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Components returns the number of connected components.
func (g *Graph) Components() int {
	seen := make([]bool, g.n)
	count := 0
	for v := 0; v < g.n; v++ {
		if seen[v] {
			continue
		}
		count++
		stack := []int32{int32(v)}
		seen[v] = true
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
	}
	return count
}

// Validate checks structural invariants (sorted, symmetric, loop-free
// adjacency) and returns an error describing the first violation. Built
// graphs always pass; the check guards hand-constructed test fixtures and
// deserialized graphs.
func (g *Graph) Validate() error {
	for v := 0; v < g.n; v++ {
		prev := int32(-1)
		for _, u := range g.adj[v] {
			if u < 0 || int(u) >= g.n {
				return fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == int32(v) {
				return fmt.Errorf("graph: self-loop at %d", v)
			}
			if u <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted at %d", v, u)
			}
			prev = u
			if !g.HasEdge(int(u), v) {
				return fmt.Errorf("graph: edge (%d,%d) not symmetric", v, u)
			}
		}
	}
	return nil
}

// Induced returns the subgraph induced by the given vertices, along with
// the mapping from new indices to original vertex ids. Vertices may be
// given in any order; duplicates are an error.
func (g *Graph) Induced(vertices []int32) (*Graph, []int32) {
	idx := make(map[int32]int32, len(vertices))
	orig := make([]int32, len(vertices))
	for i, v := range vertices {
		if _, dup := idx[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in induced set", v))
		}
		idx[v] = int32(i)
		orig[i] = v
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		for _, u := range g.adj[v] {
			if j, ok := idx[u]; ok && int32(i) < j {
				b.AddEdge(i, int(j))
			}
		}
	}
	return b.Build(), orig
}

// Eccentricity returns the greatest BFS distance from v to any vertex in
// its component.
func (g *Graph) Eccentricity(v int) int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int32{int32(v)}
	max := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.adj[u] {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				if dist[w] > max {
					max = dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return max
}

// Diameter returns the longest shortest path in the graph, or −1 if the
// graph is disconnected (the diameter is then infinite). The O(n·m)
// all-sources BFS is fine at experiment scale; the experiments use it to
// report how multi-hop each deployment is.
func (g *Graph) Diameter() int {
	if g.n == 0 {
		return 0
	}
	if !g.Connected() {
		return -1
	}
	max := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > max {
			max = e
		}
	}
	return max
}
