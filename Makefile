# Convenience targets for the radiocolor reproduction.

GO ?= go

.PHONY: all build test short race bench fuzz chaos churn medium experiments examples serve replicas clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

short:
	$(GO) test -short ./...

race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

fuzz:
	$(GO) test -fuzz FuzzReadGraph -fuzztime 30s ./internal/graph/
	$(GO) test -fuzz FuzzReadDeployment -fuzztime 30s ./internal/topology/
	$(GO) test -fuzz FuzzParseProfile -fuzztime 30s ./internal/fault/
	$(GO) test -fuzz FuzzParseSpec -fuzztime 30s ./internal/medium/
	$(GO) test -fuzz FuzzParseSchedule -fuzztime 30s ./internal/churn/
	$(GO) test -fuzz FuzzReadTrace -fuzztime 30s ./internal/topology/
	$(GO) test -fuzz FuzzParseChurn -fuzztime 30s .

# Chaos smoke: fault-injection property tests under the race detector.
chaos:
	$(GO) test -race -run 'TestSurvivorsProperlyColoredUnderFaults|TestSINRSurvivorsProperlyColored' ./internal/verify/
	$(GO) test -race -run 'TestFault' ./internal/radio/ ./internal/fault/

# Dynamic-topology suite: the churn schedule/plan layer, the engine's
# churn seam, and the present-subgraph chaos property test under every
# wakeup schedule — all under the race detector.
churn:
	$(GO) test -race ./internal/churn/ ./internal/baseline/cds/
	$(GO) test -race -run 'TestChurn' ./internal/radio/ .
	$(GO) test -race -run 'TestPresentProperlyColoredUnderChurn' ./internal/verify/

# Reception-model suite: the medium seam, the SINR/multichannel engines,
# the differential tests against the builtin kernel, and the FP baseline.
medium:
	$(GO) test -race ./internal/medium/ ./internal/baseline/fp/
	$(GO) test -race -run 'TestMedium|TestSINR|TestGraphMedium|TestMultiChannel' ./internal/radio/

# Regenerate every table recorded in EXPERIMENTS.md (several minutes).
experiments:
	$(GO) run ./cmd/experiments -trials 3 -size 1.0 -seed 1

# Run the coloring-simulation daemon (see README "Running as a service").
# Add -store DIR to persist the backlog across restarts.
serve:
	$(GO) run ./cmd/colord -addr :8080 -queue 64

# Replica-group suite: two servers sharing one durable store split a
# backlog with zero double-executions, survive crash/restart chaos, and
# resume a dead replica's leases — all under the race detector.
replicas:
	$(GO) test -race -run 'TestTwoReplicasShareBacklog|TestBootResumeCompletesBacklog|TestDurableShutdownReleasesInflight|TestConcurrentSubmitAtFullQueue' -v ./internal/serve/
	$(GO) test -race -run 'TestChaosTwoReplicasCrashRestart' -v ./internal/store/

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/tdma
	$(GO) run ./examples/obstacles
	$(GO) run ./examples/asyncwakeup
	$(GO) run ./examples/compaction
	$(GO) run ./examples/datacollection

clean:
	$(GO) clean ./...
