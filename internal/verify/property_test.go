package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
)

func randomGraphAndColors(n int, p float64, maxColor int32, seed int64) (*graph.Graph, []int32) {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = r.Int31n(maxColor+2) - 1 // includes Uncolored
	}
	return b.Build(), colors
}

// Property: Check.Proper ⇔ every color class is independent. This is the
// equivalence Theorem 2's statement rests on (a coloring is correct iff
// all classes are independent sets).
func TestQuickProperEquivalesClassIndependence(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(20, 0.25, 5, seed)
		rep := Check(g, colors)
		allIndep := true
		for _, indep := range ClassIndependence(g, colors) {
			allIndep = allIndep && indep
		}
		return rep.Proper == allIndep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Complete ⇔ no Uncolored entries; NumColors counts distinct
// non-negative colors; MaxColor is their maximum.
func TestQuickReportBookkeeping(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(18, 0.2, 6, seed)
		rep := Check(g, colors)
		distinct := map[int32]bool{}
		max := int32(-1)
		complete := true
		for _, c := range colors {
			if c == Uncolored {
				complete = false
				continue
			}
			distinct[c] = true
			if c > max {
				max = c
			}
		}
		return rep.Complete == complete && rep.NumColors == len(distinct) && rep.MaxColor == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every reported violation is a real conflicting edge.
func TestQuickViolationsAreRealEdges(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(16, 0.3, 3, seed)
		rep := Check(g, colors)
		for _, v := range rep.Violations {
			if !g.HasEdge(int(v.U), int(v.V)) {
				return false
			}
			if colors[v.U] != v.Color || colors[v.V] != v.Color {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every terminating protocol run produces a proper, complete
// coloring with an O(Δ) palette — checked on random bounded-independence
// graphs (unit disk deployments deformed by obstacle walls, so generally
// NOT unit disk graphs) under all five wakeup schedules, not just the
// synchronous UDG setting the unit tests cover. The palette bound is the
// one Theorem 4's proof yields globally: the highest color anywhere is
// at most (κ₂+1)·Δ, since every φ_v ≤ (κ₂+1)·θ_v and θ_v ≤ Δ.
func TestPropertyColoringOnRandomBIGsAllSchedules(t *testing.T) {
	seeds := []int64{5, 21}
	if testing.Short() {
		seeds = seeds[:1]
	}
	terminated := 0
	for _, seed := range seeds {
		d := topology.BIGWithWalls(topology.UDGConfig{
			N: 50, Side: 5, Radius: 1.3, Seed: seed,
		}, 12)
		g := d.G
		delta := g.MaxDegree()
		k := g.Kappa(graph.KappaOptions{Budget: 20_000, MaxNeighborhood: 60})
		par := core.Practical(g.N(), delta, k.K1, k.K2)
		budget := int64(par.Kappa2+2) * par.Threshold() * 40
		for _, pat := range radio.WakePatterns {
			nodes, protos := core.Nodes(g.N(), seed, par, core.Ablation{})
			res, err := radio.Run(radio.Config{
				G: g, Protocols: protos,
				Wake:     pat.Make(g.N(), par.WaitSlots(), seed),
				MaxSlots: budget, NEstimate: par.N,
			})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, pat.Name, err)
			}
			if !res.AllDone {
				// The paper's guarantees are with high probability; a run
				// that exhausts its budget is not a counterexample, but
				// the test must not pass vacuously (see the check below).
				t.Logf("seed %d %s: run did not terminate within %d slots", seed, pat.Name, budget)
				continue
			}
			terminated++
			colors := make([]int32, g.N())
			for i, v := range nodes {
				colors[i] = v.Color()
			}
			rep := Check(g, colors)
			if !rep.OK() {
				t.Errorf("seed %d %s: coloring not proper+complete: %v", seed, pat.Name, rep)
			}
			if bound := int32((k.K2 + 1) * delta); rep.MaxColor > bound {
				t.Errorf("seed %d %s: palette exceeds O(Δ): max color %d > (κ₂+1)·Δ = %d",
					seed, pat.Name, rep.MaxColor, bound)
			}
			if viol := CheckLocality(g, colors, k.K2); len(viol) > 0 {
				t.Errorf("seed %d %s: %d locality violations (first %+v)", seed, pat.Name, len(viol), viol[0])
			}
		}
	}
	if terminated < 3 {
		t.Fatalf("only %d runs terminated — the property was barely exercised", terminated)
	}
}

// Property: CheckLocality flags exactly the nodes whose φ exceeds the
// (κ₂+1)·θ bound recomputed independently.
func TestQuickLocalityExact(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(14, 0.25, 40, seed)
		const kappa2 = 3
		flagged := map[int32]bool{}
		for _, v := range CheckLocality(g, colors, kappa2) {
			flagged[v.Node] = true
		}
		for v := 0; v < g.N(); v++ {
			phi := int32(-1)
			if colors[v] != Uncolored {
				phi = colors[v]
			}
			for _, u := range g.Adj(v) {
				if colors[u] != Uncolored && colors[u] > phi {
					phi = colors[u]
				}
			}
			theta := 0
			for _, u := range g.TwoHop(v) {
				if d := g.Degree(int(u)); d > theta {
					theta = d
				}
			}
			want := phi > int32((kappa2+1)*theta)
			if want != flagged[int32(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
