package radio

import "math/rand"

// This file provides wake-up schedules. The unstructured radio network
// model quantifies over every possible wake-up distribution (Sect. 2);
// the experiments exercise the patterns below, from fully synchronous to
// adversarially staggered.

// WakeSynchronous wakes all n nodes in slot 0 — one extreme of the model.
func WakeSynchronous(n int) []int64 {
	return make([]int64, n)
}

// WakeUniform wakes each node independently uniformly in [0, span).
func WakeUniform(n int, span int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	w := make([]int64, n)
	for i := range w {
		w[i] = r.Int63n(span)
	}
	return w
}

// WakeSequential wakes node i at slot i·gap — the other extreme of the
// model: long quiet periods between consecutive wake-ups.
func WakeSequential(n int, gap int64) []int64 {
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(i) * gap
	}
	return w
}

// WakeBursty wakes nodes in bursts: groups of burstSize nodes wake
// together, with gap slots between bursts. Models staged deployment
// (e.g. sensor batches dropped from successive fly-overs).
func WakeBursty(n, burstSize int, gap int64) []int64 {
	if burstSize < 1 {
		burstSize = 1
	}
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(i/burstSize) * gap
	}
	return w
}

// WakeAdversarial builds a deliberately nasty schedule: nodes are woken
// in a random order with gaps chosen so that every phase of the protocol
// (waiting period, competition, requesting) of earlier nodes overlaps the
// wake-up of later ones. phaseLen should be on the order of the
// protocol's waiting period ⌈αΔ log n⌉ so that fresh competitors keep
// arriving exactly when established nodes approach their decision
// thresholds.
func WakeAdversarial(n int, phaseLen int64, seed int64) []int64 {
	r := rand.New(rand.NewSource(seed))
	perm := r.Perm(n)
	w := make([]int64, n)
	if phaseLen < 1 {
		phaseLen = 1
	}
	for rank, node := range perm {
		// Half the nodes wake inside the first phase; the rest trickle
		// in one per phaseLen/4 slots with random jitter, maximizing
		// phase interleaving.
		if rank < n/2 {
			w[node] = r.Int63n(phaseLen)
		} else {
			w[node] = int64(rank-n/2)*(phaseLen/4+1) + r.Int63n(phaseLen/2+1)
		}
	}
	return w
}

// WakePatterns enumerates named schedule constructors used by the
// experiments; span-like arguments are derived from (n, phaseLen).
var WakePatterns = []struct {
	Name string
	Make func(n int, phaseLen int64, seed int64) []int64
}{
	{"synchronous", func(n int, _ int64, _ int64) []int64 { return WakeSynchronous(n) }},
	{"uniform", func(n int, p int64, s int64) []int64 { return WakeUniform(n, maxInt64(1, 4*p), s) }},
	{"sequential", func(n int, p int64, _ int64) []int64 { return WakeSequential(n, maxInt64(1, p/8)) }},
	{"bursty", func(n int, p int64, _ int64) []int64 { return WakeBursty(n, maxInt(1, n/8), maxInt64(1, p)) }},
	{"adversarial", WakeAdversarial},
}

func maxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
