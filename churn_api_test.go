package radiocolor

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// ringAdj builds an n-cycle adjacency list.
func ringAdj(n int) [][]int {
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		adj[i] = []int{(i + n - 1) % n, (i + 1) % n}
	}
	return adj
}

func TestColorGraphWithChurn(t *testing.T) {
	cc, err := ParseChurn("leave=3@40,join=3@80,join=7@60")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ColorGraph(ringAdj(16), Options{Seed: 5, Churn: cc})
	if err != nil {
		t.Fatal(err)
	}
	if out.Churn == nil {
		t.Fatal("no ChurnOutcome on a churned run")
	}
	co := out.Churn
	if co.Joins != 2 || co.Leaves != 1 {
		t.Errorf("joins=%d leaves=%d, want 2/1", co.Joins, co.Leaves)
	}
	if len(co.Left) != 0 {
		t.Errorf("Left = %v after every leaver rejoined", co.Left)
	}
	if !co.Graceful || co.HardViolations != 0 {
		t.Errorf("churned run not graceful: %+v", co)
	}
	if co.Present != 16 {
		t.Errorf("Present = %d, want all 16", co.Present)
	}
	if !out.Proper {
		t.Error("coloring improper after rejoins")
	}
}

func TestColorGraphChurnPermanentLeave(t *testing.T) {
	cc, err := ParseChurn("leave=2@50")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ColorGraph(ringAdj(12), Options{Seed: 5, Churn: cc})
	if err != nil {
		t.Fatal(err)
	}
	co := out.Churn
	if co == nil || !reflect.DeepEqual(co.Left, []int{2}) {
		t.Fatalf("Left = %+v, want [2]", co)
	}
	if co.Present != 11 {
		t.Errorf("Present = %d, want 11", co.Present)
	}
	if !co.Graceful {
		t.Errorf("permanent leave judged non-graceful: %+v", co)
	}
}

func TestColorUnitDiskChurnMobility(t *testing.T) {
	r := rand.New(rand.NewSource(8))
	points := make([][2]float64, 40)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 4, r.Float64() * 4}
	}
	// Node 0 wanders across the field; its neighborhood re-derives as
	// it moves, and the retract repair keeps the present coloring
	// proper throughout.
	cc, err := ParseChurn("move=0@400:4:4,move=0@800:0:0,every=16")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ColorUnitDisk(points, 1.1, Options{Seed: 4, Churn: cc})
	if err != nil {
		t.Fatal(err)
	}
	if out.Churn == nil || !out.Churn.Graceful {
		t.Fatalf("mobile run not graceful: %+v", out.Churn)
	}
	if out.Slots <= 400 {
		t.Errorf("run ended at slot %d, before the mobility window", out.Slots)
	}
}

func TestChurnTilingMapsBackToCallerIDs(t *testing.T) {
	cc, err := ParseChurn("leave=5@40")
	if err != nil {
		t.Fatal(err)
	}
	out, err := ColorGraph(ringAdj(48), Options{Seed: 7, Tiling: 4, Churn: cc})
	if err != nil {
		t.Fatal(err)
	}
	if out.Churn == nil || !reflect.DeepEqual(out.Churn.Left, []int{5}) {
		t.Fatalf("left node not mapped back to caller id 5: %+v", out.Churn)
	}
}

func TestChurnOptionRejections(t *testing.T) {
	churned := &ChurnConfig{Leaves: []ChurnEvent{{Node: 0, At: 10}}}
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"with medium", Options{Churn: churned, Medium: &MediumConfig{Kind: "multichannel", Channels: 2}}, "Medium"},
		{"with skew", Options{Churn: churned, Faults: &FaultConfig{SkewProb: 0.5}}, "clock-skew"},
		{"bad repair", Options{Churn: &ChurnConfig{Repair: "bogus", Leaves: []ChurnEvent{{Node: 0, At: 1}}}}, "repair"},
		{"double leave", Options{Churn: &ChurnConfig{Leaves: []ChurnEvent{{Node: 0, At: 1}, {Node: 0, At: 2}}}}, "alternate"},
		{"inactive ok", Options{Churn: &ChurnConfig{}}, ""},
	}
	for _, c := range cases {
		err := c.opt.Validate()
		if c.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", c.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want substring %q", c.name, err, c.want)
		}
	}

	// Mobility without positions fails at the graph entry point.
	mob := &ChurnConfig{Waypoints: []ChurnWaypoint{{Node: 0, At: 10, X: 1, Y: 1}}}
	if _, err := ColorGraph(ringAdj(8), Options{Churn: mob}); err == nil ||
		!strings.Contains(err.Error(), "positions") {
		t.Errorf("mobility without positions: %v", err)
	}

	// Fault crash victims and churn subjects must stay disjoint.
	fc, err := ParseFaults("crash=0@20")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ColorGraph(ringAdj(8), Options{Churn: churned, Faults: fc}); err == nil ||
		!strings.Contains(err.Error(), "disjoint") {
		t.Errorf("overlapping fault and churn subjects: %v", err)
	}
}

func TestParseChurnRoundTrip(t *testing.T) {
	const in = "join=12@200,leave=3@500,move=7@1000:2.5:3.5,every=32,repair=none"
	cc, err := ParseChurn(in)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseChurn(cc.String())
	if err != nil {
		t.Fatalf("round-trip re-parse: %v", err)
	}
	if !reflect.DeepEqual(cc, again) {
		t.Errorf("round trip changed the config:\n %+v\n %+v", cc, again)
	}
	if nilCfg, err := ParseChurn(""); err != nil || nilCfg != nil {
		t.Errorf("empty string: %v, %+v", err, nilCfg)
	}
}

// FuzzParseChurn asserts the public parser never panics, and that every
// accepted schedule validates and survives a String round-trip.
func FuzzParseChurn(f *testing.F) {
	f.Add("")
	f.Add("leave=3@500")
	f.Add("join=12@200,leave=12@900,repair=retract")
	f.Add("move=7@1000:2.5:3.5,move=7@2000:0:0,every=32")
	f.Add("seed=42,repair=none")
	f.Add("join=0@0,join=0@0")
	f.Add("move=1@5:NaN:0")
	f.Fuzz(func(t *testing.T, s string) {
		cc, err := ParseChurn(s)
		if err != nil || cc == nil {
			return
		}
		again, err := ParseChurn(cc.String())
		if err != nil {
			t.Fatalf("accepted config failed re-parse: %q → %q: %v", s, cc.String(), err)
		}
		if !reflect.DeepEqual(cc, again) {
			t.Fatalf("round trip changed %q:\n %+v\n %+v", s, cc, again)
		}
	})
}
