package radiocolor

// The benchmark harness: one testing.B benchmark per experiment E1–E20
// (each regenerates one of the paper's tables/figures at reduced scale;
// run cmd/experiments for the full-scale tables recorded in
// EXPERIMENTS.md), plus micro-benchmarks of the hot primitives.
//
//	go test -bench=. -benchmem

import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
)

// benchOpts returns deterministic reduced-scale options; the benchmark
// measures the cost of regenerating the experiment's table.
func benchOpts() experiment.Options {
	return experiment.Options{Trials: 1, SizeFactor: 0.3, Seed: 11}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e := experiment.Lookup(id)
	if e == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var last *stats.Table
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		last = e.Run(benchOpts())
	}
	if last == nil || last.NumRows() == 0 {
		b.Fatal("experiment produced no rows")
	}
	// Render to io.Discard so table formatting is part of the cost.
	if err := last.Render(io.Discard); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE1Kappa(b *testing.B)         { benchExperiment(b, "E1") }
func BenchmarkE2Correctness(b *testing.B)   { benchExperiment(b, "E2") }
func BenchmarkE3TimeVsDelta(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4TimeVsN(b *testing.B)       { benchExperiment(b, "E4") }
func BenchmarkE5Colors(b *testing.B)        { benchExperiment(b, "E5") }
func BenchmarkE6Locality(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7ParamSweep(b *testing.B)    { benchExperiment(b, "E7") }
func BenchmarkE8Baselines(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Wakeup(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10UBG(b *testing.B)          { benchExperiment(b, "E10") }
func BenchmarkE11Ablation(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12Messages(b *testing.B)     { benchExperiment(b, "E12") }
func BenchmarkE13Distance2(b *testing.B)    { benchExperiment(b, "E13") }
func BenchmarkE14Adaptive(b *testing.B)     { benchExperiment(b, "E14") }
func BenchmarkE15RandomIDs(b *testing.B)    { benchExperiment(b, "E15") }
func BenchmarkE16MessageLoss(b *testing.B)  { benchExperiment(b, "E16") }
func BenchmarkE17Unaligned(b *testing.B)    { benchExperiment(b, "E17") }
func BenchmarkE18MIS(b *testing.B)          { benchExperiment(b, "E18") }
func BenchmarkE19Reduction(b *testing.B)    { benchExperiment(b, "E19") }
func BenchmarkE20Capture(b *testing.B)      { benchExperiment(b, "E20") }
func BenchmarkE21MultiChannel(b *testing.B) { benchExperiment(b, "E21") }
func BenchmarkE22Collection(b *testing.B)   { benchExperiment(b, "E22") }
func BenchmarkE23Adversary(b *testing.B)    { benchExperiment(b, "E23") }
func BenchmarkE24Faults(b *testing.B)       { benchExperiment(b, "E24") }
func BenchmarkE25CrossModel(b *testing.B)   { benchExperiment(b, "E25") }
func BenchmarkE26TiledKernel(b *testing.B)  { benchExperiment(b, "E26") }
func BenchmarkE27RecolorChurn(b *testing.B) { benchExperiment(b, "E27") }

// benchSuite runs a representative experiment subset end to end at the
// given fleet worker count. The Sequential/Parallel pair measures the
// speedup (and overhead floor) of the fleet engine on real trial loads.
func benchSuite(b *testing.B, workers int) {
	ids := []string{"E3", "E5", "E9"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, id := range ids {
			o := benchOpts()
			o.Trials = 2
			o.Parallel = workers
			t := experiment.Lookup(id).Run(o)
			if t.NumRows() == 0 {
				b.Fatalf("%s produced no rows", id)
			}
		}
	}
}

// BenchmarkSuiteSequential runs the subset on the inline path
// (Parallel=1), the baseline the fleet engine must not distort.
func BenchmarkSuiteSequential(b *testing.B) { benchSuite(b, 1) }

// BenchmarkSuiteParallel runs the same subset with trials fanned out
// over all CPUs via the fleet engine.
func BenchmarkSuiteParallel(b *testing.B) { benchSuite(b, runtime.GOMAXPROCS(0)) }

// BenchmarkEngineSlots measures raw simulator throughput: slots per
// second over a 200-node network running the full protocol.
func BenchmarkEngineSlots(b *testing.B) {
	d := topology.RandomUDG(topology.UDGConfig{N: 200, Side: 8, Radius: 1.2, Seed: 3})
	par := experiment.MeasureParams(d)
	b.ReportAllocs()
	b.ResetTimer()
	slots := int64(0)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, protos := core.Nodes(d.N(), 5, par, core.Ablation{})
		eng, err := radio.NewEngine(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 2000,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		for eng.Step() {
		}
		slots += eng.Result().Slots
	}
	b.ReportMetric(float64(slots)/float64(b.N), "slots/op")
}

// BenchmarkFullColoringRun measures one end-to-end protocol execution
// through the public API.
func BenchmarkFullColoringRun(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	points := make([][2]float64, 100)
	for i := range points {
		points[i] = [2]float64{r.Float64() * 6, r.Float64() * 6}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// A fixed seed keeps every iteration on a validated run: the
		// protocol is correct whp, so sampling fresh seeds here would
		// occasionally (and irrelevantly) hit a whp failure.
		out, err := ColorUnitDisk(points, 1.2, Options{Seed: 7})
		if err != nil {
			b.Fatal(err)
		}
		if !out.OK() {
			b.Fatal("run incorrect")
		}
	}
}

// BenchmarkKappaMeasurement measures the κ₁/κ₂ branch-and-bound on a
// realistic UDG.
func BenchmarkKappaMeasurement(b *testing.B) {
	d := topology.RandomUDG(topology.UDGConfig{N: 250, Side: 7, Radius: 1, Seed: 7})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
		if k.K1 < 1 {
			b.Fatal("bogus kappa")
		}
	}
}

// BenchmarkTopologyGeneration measures the spatial-hash UDG builder.
func BenchmarkTopologyGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d := topology.RandomUDG(topology.UDGConfig{N: 1000, Side: 14, Radius: 1, Seed: int64(i)})
		if d.G.N() != 1000 {
			b.Fatal("bad graph")
		}
	}
}

// BenchmarkParallelEngine compares the goroutine send phase against the
// sequential engine on the same workload.
func BenchmarkParallelEngine(b *testing.B) {
	for _, workers := range []int{1, 4} {
		name := "workers1"
		if workers == 4 {
			name = "workers4"
		}
		b.Run(name, func(b *testing.B) {
			d := topology.RandomUDG(topology.UDGConfig{N: 300, Side: 9, Radius: 1.2, Seed: 3})
			par := experiment.MeasureParams(d)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				_, protos := core.Nodes(d.N(), 5, par, core.Ablation{})
				eng, err := radio.NewEngine(radio.Config{
					G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
					MaxSlots: 1000, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				for eng.Step() {
				}
			}
		})
	}
}
