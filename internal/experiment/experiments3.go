package experiment

import (
	"fmt"
	"math/rand"

	"radiocolor/internal/adversary"
	"radiocolor/internal/collect"
	"radiocolor/internal/core"
	"radiocolor/internal/estimate"
	"radiocolor/internal/fault"
	"radiocolor/internal/radio"
	"radiocolor/internal/reduce"
	"radiocolor/internal/sched"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

// The extension experiments E13–E16 go beyond the paper's evaluation and
// implement the directions its text points to: distance-2 coloring for
// fully collision-free TDMA (introduction), local degree estimation
// instead of a global Δ (Sect. 6 future work), random identifiers
// (Sect. 2), and robustness to message loss beyond the model.

// E13Distance2 quantifies the 1-hop vs 2-hop coloring trade-off the
// introduction discusses: a correct 1-hop coloring eliminates direct
// interference but leaves ≤ κ₁ hidden-terminal interferers per receiver,
// while a distance-2 coloring (the algorithm run over G², i.e. with
// doubled transmission power during initialization) eliminates all
// collisions at the price of more colors and a longer run.
func E13Distance2(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E13: 1-hop vs distance-2 coloring (introduction's TDMA discussion)",
		"variant", "correct", "mean #colors", "mean maxT", "TDMA direct conflicts", "TDMA hidden collisions", "frame success")
	n := o.scale(110, 40)
	variants := []string{"1-hop", "distance-2"}
	type varRes struct {
		ok             bool
		colors, ts     float64
		direct, hidden int
		success        float64
	}
	rows := parMap(o, "E13", o.Trials, func(tr int) [2]varRes {
		seed := trialSeed(o.Seed, 1000, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.1, Seed: seed})
		var out [2]varRes
		for vi, variant := range variants {
			commGraph := d.G
			if variant == "distance-2" {
				commGraph = d.G.Square()
			}
			dd := &topology.Deployment{Name: d.Name + "/" + variant, G: commGraph}
			par := MeasureParams(dd)
			run, err := RunCore(dd, par, radio.WakeSynchronous(dd.N()), seed, defaultBudget(par), core0)
			if err != nil {
				panic(err)
			}
			// Validity is judged on the graph the protocol ran over; the
			// TDMA schedule is evaluated on the PHYSICAL graph d.G.
			if run.Correct() {
				s, err := sched.FromColoring(run.Colors)
				if err != nil {
					panic(err)
				}
				frame := s.SimulateFrame(d.G)
				out[vi] = varRes{
					ok:      true,
					colors:  float64(run.Report.NumColors),
					ts:      float64(run.Radio.MaxLatency()),
					direct:  len(s.DirectConflicts(d.G)),
					hidden:  frame.Collisions,
					success: frame.SuccessRate(),
				}
			}
		}
		return out
	})
	type acc struct {
		correct        int
		colors, ts     []float64
		direct, hidden int
		success        []float64
	}
	accs := map[string]*acc{"1-hop": {}, "distance-2": {}}
	for _, r := range rows {
		for vi, variant := range variants {
			v := r[vi]
			if !v.ok {
				continue
			}
			a := accs[variant]
			a.correct++
			a.colors = append(a.colors, v.colors)
			a.ts = append(a.ts, v.ts)
			a.direct += v.direct
			a.hidden += v.hidden
			a.success = append(a.success, v.success)
		}
	}
	for _, variant := range variants {
		a := accs[variant]
		t.AddRow(variant, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.colors), stats.Mean(a.ts), a.direct, a.hidden, stats.Mean(a.success))
	}
	return t
}

// E14AdaptiveDelta implements and evaluates the conclusion's future-work
// direction (Sect. 6): estimate the local maximum degree from channel
// observations instead of assuming a global Δ. Reported against the
// known-Δ baseline on the same deployments.
func E14AdaptiveDelta(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E14: local degree estimation instead of global Δ (Sect. 6 future work)",
		"variant", "correct", "mean maxT", "mean Δ used", "true Δ", "mean est/deg ratio")
	n := o.scale(110, 40)
	type trialRes struct {
		trueDelta             int
		baseOK                bool
		baseT                 float64
		adOK                  bool
		adT, adDelta, adRatio float64
	}
	rows := parMap(o, "E14", o.Trials, func(tr int) trialRes {
		seed := trialSeed(o.Seed, 1100, tr)
		d := topology.ClusteredUDG(n/2, n-n/2, 14, 1.1, seed)
		par := MeasureParams(d)
		r := trialRes{trueDelta: par.Delta}

		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if run.Correct() {
			r.baseOK = true
			r.baseT = float64(run.Radio.MaxLatency())
		}

		cfg := estimate.DefaultConfig(d.N(), par.Kappa1, par.Kappa2)
		nodes, protos := estimate.AdaptiveNodes(d.N(), seed+1, cfg, core0)
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 4 * defaultBudget(par),
		})
		if err != nil {
			panic(err)
		}
		colors := make([]int32, d.N())
		var deltaSum, ratioSum float64
		for i, v := range nodes {
			colors[i] = v.Color()
			deltaSum += float64(v.DeltaUsed())
			ratioSum += float64(v.DeltaEstimate()) / float64(d.G.Degree(i))
		}
		if res.AllDone && verify.Check(d.G, colors).OK() {
			r.adOK = true
			r.adT = float64(res.MaxLatency())
			r.adDelta = deltaSum / float64(d.N())
			r.adRatio = ratioSum / float64(d.N())
		}
		return r
	})
	type acc struct {
		correct    int
		ts, deltas []float64
		ratio      []float64
		trueDelta  int
	}
	accs := map[string]*acc{"known Δ": {}, "estimated Δ": {}}
	for _, r := range rows {
		base := accs["known Δ"]
		base.trueDelta = r.trueDelta
		if r.baseOK {
			base.correct++
			base.ts = append(base.ts, r.baseT)
			base.deltas = append(base.deltas, float64(r.trueDelta))
			base.ratio = append(base.ratio, 1)
		}
		ad := accs["estimated Δ"]
		ad.trueDelta = r.trueDelta
		if r.adOK {
			ad.correct++
			ad.ts = append(ad.ts, r.adT)
			ad.deltas = append(ad.deltas, r.adDelta)
			ad.ratio = append(ad.ratio, r.adRatio)
		}
	}
	for _, variant := range []string{"known Δ", "estimated Δ"} {
		a := accs[variant]
		t.AddRow(variant, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.ts), stats.Mean(a.deltas), a.trueDelta, stats.Mean(a.ratio))
	}
	return t
}

// E15RandomIDs evaluates the Sect. 2 identifier scheme: nodes draw their
// IDs uniformly from [1..n³] upon waking up. The analytical collision
// bound is P_ambIDs ≤ C(n,2)/n³ ∈ O(1/n); the experiment reports the
// observed collision and correctness rates.
func E15RandomIDs(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E15: random identifiers from [1..n³] (Sect. 2)",
		"n", "trials", "runs with id collisions", "analytical bound", "correct", "mean #colors")
	trials := o.Trials * 2
	bases := []int{48, 96, 192}
	ns := make([]int, len(bases))
	for i, base := range bases {
		ns[i] = o.scale(base, 24)
	}
	type trialRes struct {
		collided, ok bool
		colors       float64
	}
	grid := parTrials(o, "E15", len(bases), trials, func(ci, tr int) trialRes {
		n := ns[ci]
		seed := trialSeed(o.Seed, 1200+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.4, Seed: seed})
		par := MeasureParams(d)
		nodes, protos, ids := core.NodesWithRandomIDs(d.N(), seed, par, core0, 0)
		r := trialRes{collided: core.CountIDCollisions(ids) > 0}
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: defaultBudget(par), NEstimate: par.N,
		})
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.colors = float64(verify.Check(d.G, cs).NumColors)
		}
		return r
	})
	for ci := range bases {
		n := ns[ci]
		collided, correct := 0, 0
		var colors []float64
		for _, r := range grid[ci] {
			if r.collided {
				collided++
			}
			if r.ok {
				correct++
				colors = append(colors, r.colors)
			}
		}
		bound := float64(n-1) / (2 * float64(n) * float64(n))
		t.AddRow(n, trials, collided, fmt.Sprintf("P ≤ %.2e", bound),
			fmt.Sprintf("%d/%d", correct, trials), stats.Mean(colors))
	}
	return t
}

// E16MessageLoss injects delivery failures beyond the model (each
// successful reception is suppressed independently with probability p)
// and measures how the protocol degrades. Losses are indistinguishable
// from collisions to the nodes, so the counters-and-critical-ranges
// machinery absorbs moderate loss at the price of longer runs.
func E16MessageLoss(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E16: robustness to message loss beyond the model",
		"loss prob", "correct", "complete", "mean maxT", "slowdown vs lossless")
	n := o.scale(110, 40)
	probs := []float64{0, 0.1, 0.2, 0.3, 0.5}
	type trialRes struct {
		complete, ok bool
		t            float64
	}
	grid := parTrials(o, "E16", len(probs), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 1300+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 4 * defaultBudget(par), NEstimate: par.N,
			DropProb: probs[ci], DropSeed: seed,
		})
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		r := trialRes{complete: res.AllDone}
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.t = float64(res.MaxLatency())
		}
		return r
	})
	var baseline float64
	for ci, p := range probs {
		correct, complete := 0, 0
		var ts []float64
		for _, r := range grid[ci] {
			if r.complete {
				complete++
			}
			if r.ok {
				correct++
				ts = append(ts, r.t)
			}
		}
		mean := stats.Mean(ts)
		if p == 0 {
			baseline = mean
		}
		slowdown := "–"
		if baseline > 0 && mean > 0 {
			slowdown = fmt.Sprintf("%.2f×", mean/baseline)
		}
		t.AddRow(p, fmt.Sprintf("%d/%d", correct, o.Trials),
			fmt.Sprintf("%d/%d", complete, o.Trials), mean, slowdown)
	}
	return t
}

// E17Unaligned tests the Sect. 2 remark that all results carry over to
// non-aligned slot boundaries with a small constant factor: nodes run
// with half-slot clock offsets (transmissions can overlap two slots of a
// neighbor), and the experiment compares correctness and latency with
// the aligned engine on identical deployments.
func E17Unaligned(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E17: non-aligned slot boundaries (Sect. 2 remark; expect small constant slowdown)",
		"engine", "correct", "mean maxT", "slowdown", "mean deliveries/tx")
	n := o.scale(110, 40)
	engines := []string{"aligned", "unaligned"}
	type engRes struct {
		ok     bool
		t      float64
		eff    float64
		hasEff bool
	}
	rows := parMap(o, "E17", o.Trials, func(tr int) [2]engRes {
		seed := trialSeed(o.Seed, 1400, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		var out [2]engRes
		for ei, engine := range engines {
			nodes, protos := core.Nodes(d.N(), seed, par, core0)
			cfg := radio.Config{
				G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
				MaxSlots: 4 * defaultBudget(par), NEstimate: par.N,
			}
			var res *radio.Result
			var err error
			if engine == "aligned" {
				res, err = radio.Run(cfg)
			} else {
				res, err = radio.RunUnaligned(cfg, nil)
			}
			if err != nil {
				panic(err)
			}
			cs := make([]int32, d.N())
			for i, v := range nodes {
				cs[i] = v.Color()
			}
			if res.AllDone && verify.Check(d.G, cs).OK() {
				out[ei].ok = true
				out[ei].t = float64(res.MaxLatency())
				if res.Transmissions > 0 {
					out[ei].hasEff = true
					out[ei].eff = float64(res.Deliveries) / float64(res.Transmissions)
				}
			}
		}
		return out
	})
	type acc struct {
		correct  int
		ts, effs []float64
	}
	accs := map[string]*acc{"aligned": {}, "unaligned": {}}
	for _, r := range rows {
		for ei, engine := range engines {
			v := r[ei]
			if !v.ok {
				continue
			}
			a := accs[engine]
			a.correct++
			a.ts = append(a.ts, v.t)
			if v.hasEff {
				a.effs = append(a.effs, v.eff)
			}
		}
	}
	base := stats.Mean(accs["aligned"].ts)
	for _, engine := range engines {
		a := accs[engine]
		slow := "–"
		if base > 0 && stats.Mean(a.ts) > 0 {
			slow = fmt.Sprintf("%.2f×", stats.Mean(a.ts)/base)
		}
		t.AddRow(engine, fmt.Sprintf("%d/%d", a.correct, o.Trials),
			stats.Mean(a.ts), slow, stats.Mean(a.effs))
	}
	return t
}

// E18MISFromScratch measures when the protocol's first stage completes:
// the moment every node has left A₀ (become a leader or associated with
// one), the leaders form a maximal independent set and every non-leader
// has a leader neighbor — the "MIS / clustering from scratch"
// substructure of the companion works [13, 21] the paper builds on. The
// experiment reports how early in the run that structure is available
// and verifies its MIS properties directly.
func E18MISFromScratch(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E18: the MIS substructure (leaders + coverage) emerges early ([13, 21])",
		"n", "correct MIS", "mean MIS-done slot", "mean total slots", "MIS at % of run", "mean leaders")
	bases := []int{80, 160, 320}
	ns := make([]int, len(bases))
	for i, base := range bases {
		ns[i] = o.scale(base, 32)
	}
	type trialRes struct {
		ok, misOK               bool
		misDone, total, leaders float64
	}
	grid := parTrials(o, "E18", len(bases), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 1500+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: ns[ci], Side: 6, Radius: 1.15, Seed: seed})
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		var r trialRes
		if !run.Correct() {
			return r
		}
		r.ok = true
		// When did the last node leave A₀?
		last := int64(0)
		var leaderSet []int32
		for i, v := range run.Nodes {
			if at := v.LeftClassZeroAt(); at > last {
				last = at
			}
			if v.IsLeader() {
				leaderSet = append(leaderSet, int32(i))
			}
		}
		// MIS properties: independence + domination.
		indep := d.G.IsIndependent(leaderSet)
		isLeader := make(map[int32]bool, len(leaderSet))
		for _, l := range leaderSet {
			isLeader[l] = true
		}
		dominated := true
		for v := 0; v < d.N(); v++ {
			if isLeader[int32(v)] {
				continue
			}
			ok := false
			for _, u := range d.G.Adj(v) {
				if isLeader[u] {
					ok = true
					break
				}
			}
			if !ok {
				dominated = false
			}
		}
		r.misOK = indep && dominated
		r.misDone = float64(last)
		r.total = float64(run.Radio.Slots)
		r.leaders = float64(len(leaderSet))
		return r
	})
	for ci := range bases {
		okMIS := 0
		var misDone, total, leaders []float64
		for _, r := range grid[ci] {
			if !r.ok {
				continue
			}
			if r.misOK {
				okMIS++
			}
			misDone = append(misDone, r.misDone)
			total = append(total, r.total)
			leaders = append(leaders, r.leaders)
		}
		frac := "–"
		if stats.Mean(total) > 0 {
			frac = fmt.Sprintf("%.0f%%", 100*stats.Mean(misDone)/stats.Mean(total))
		}
		t.AddRow(ns[ci], fmt.Sprintf("%d/%d", okMIS, o.Trials), stats.Mean(misDone),
			stats.Mean(total), frac, stats.Mean(leaders))
	}
	return t
}

// E19ColorReduction evaluates the post-initialization color-compaction
// extension (internal/reduce): how far the protocol's O(κ₂Δ) palette can
// be squeezed toward the centralized greedy scale once the network is up,
// while staying proper.
func E19ColorReduction(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E19: post-initialization color compaction (extension)",
		"stage", "proper", "mean #colors", "mean max color", "max color vs Δ", "mean moves/node")
	n := o.scale(110, 40)
	type trialRes struct {
		ok                    bool
		delta                 int
		protoColors, protoMax float64
		redOK                 bool
		redColors, redMax     float64
		redMoves              float64
		gColors, gMax         float64
	}
	rows := parMap(o, "E19", o.Trials, func(tr int) trialRes {
		seed := trialSeed(o.Seed, 1600, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		var r trialRes
		if !run.Correct() {
			return r
		}
		r.ok = true
		r.delta = par.Delta
		r.protoColors = float64(run.Report.NumColors)
		r.protoMax = float64(run.Report.MaxColor)

		rp := reduce.Params{N: par.N, Delta: par.Delta, Kappa2: par.Kappa2}
		rNodes, rProtos := reduce.Nodes(run.Colors, seed+1, rp)
		rRes, err := radio.Run(radio.Config{
			G: d.G, Protocols: rProtos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 100_000_000,
		})
		if err != nil {
			panic(err)
		}
		after := make([]int32, d.N())
		var totalMoves int64
		for i, v := range rNodes {
			after[i] = v.Color()
			totalMoves += v.Moves()
		}
		rRep := verify.Check(d.G, after)
		if rRes.AllDone && rRep.OK() {
			r.redOK = true
			r.redColors = float64(rRep.NumColors)
			r.redMax = float64(rRep.MaxColor)
			r.redMoves = float64(totalMoves) / float64(d.N())
		}

		gc := d.G.GreedyColoring()
		gRep := verify.Check(d.G, gc)
		r.gColors = float64(gRep.NumColors)
		r.gMax = float64(gRep.MaxColor)
		return r
	})
	type acc struct {
		proper        int
		colors, maxes []float64
		moves         []float64
		delta         int
	}
	accs := map[string]*acc{"after protocol": {}, "after reduction": {}, "centralized greedy": {}}
	for _, r := range rows {
		if !r.ok {
			continue
		}
		base := accs["after protocol"]
		base.delta = r.delta
		base.proper++
		base.colors = append(base.colors, r.protoColors)
		base.maxes = append(base.maxes, r.protoMax)
		base.moves = append(base.moves, 0)

		red := accs["after reduction"]
		red.delta = r.delta
		if r.redOK {
			red.proper++
			red.colors = append(red.colors, r.redColors)
			red.maxes = append(red.maxes, r.redMax)
			red.moves = append(red.moves, r.redMoves)
		}

		g := accs["centralized greedy"]
		g.delta = r.delta
		g.proper++
		g.colors = append(g.colors, r.gColors)
		g.maxes = append(g.maxes, r.gMax)
		g.moves = append(g.moves, 0)
	}
	for _, stage := range []string{"after protocol", "after reduction", "centralized greedy"} {
		a := accs[stage]
		ratio := "–"
		if a.delta > 0 && stats.Mean(a.maxes) > 0 {
			ratio = fmt.Sprintf("%.2f×Δ", stats.Mean(a.maxes)/float64(a.delta))
		}
		t.AddRow(stage, fmt.Sprintf("%d/%d", a.proper, o.Trials),
			stats.Mean(a.colors), stats.Mean(a.maxes), ratio, stats.Mean(a.moves))
	}
	return t
}

// E20CaptureEffect injects the capture effect, a deviation ABOVE the
// model: real radios often decode the stronger of two colliding signals,
// while the model assumes every collision destroys both. The protocol's
// guarantees are proved without capture, so capture can only help — the
// experiment quantifies the speedup and confirms correctness is
// unaffected.
func E20CaptureEffect(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E20: capture effect (model deviation above spec)",
		"capture prob", "correct", "mean maxT", "speedup", "captures/collisions")
	n := o.scale(110, 40)
	probs := []float64{0, 0.25, 0.5, 1.0}
	type trialRes struct {
		ok          bool
		t           float64
		caps, colls int64
	}
	grid := parTrials(o, "E20", len(probs), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 1700+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: defaultBudget(par), NEstimate: par.N,
			CaptureProb: probs[ci], DropSeed: seed,
		})
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		r := trialRes{caps: res.Captures, colls: res.Collisions}
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.t = float64(res.MaxLatency())
		}
		return r
	})
	var baseline float64
	for ci, p := range probs {
		correct := 0
		var ts []float64
		var caps, colls int64
		for _, r := range grid[ci] {
			if r.ok {
				correct++
				ts = append(ts, r.t)
			}
			caps += r.caps
			colls += r.colls
		}
		mean := stats.Mean(ts)
		if p == 0 {
			baseline = mean
		}
		speed := "–"
		if baseline > 0 && mean > 0 {
			speed = fmt.Sprintf("%.2f×", baseline/mean)
		}
		t.AddRow(p, fmt.Sprintf("%d/%d", correct, o.Trials), mean, speed,
			fmt.Sprintf("%d/%d", caps, caps+colls))
	}
	return t
}

// E21MultiChannel restores the multi-channel assumption of the earlier
// unstructured-radio works [13, 14] that the paper explicitly drops
// (Sect. 2: "In our model, there is only one communication channel").
// Nodes hop uniformly at random over k channels each slot; the protocol
// runs unchanged. More channels thin contention quadratically but thin
// useful receptions linearly (sender and receiver must coincide), so the
// counter-paced algorithm gains nothing — evidence that the paper's
// single-channel model is not only weaker but also this algorithm's best
// operating point.
func E21MultiChannel(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E21: multiple channels ([13, 14] assumption restored)",
		"channels", "correct", "mean maxT", "vs 1 channel", "deliveries/tx", "collisions/tx")
	n := o.scale(110, 40)
	channels := []int{1, 2, 4, 8}
	type trialRes struct {
		ok       bool
		t        float64
		hasRatio bool
		rx, coll float64
	}
	grid := parTrials(o, "E21", len(channels), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 1800+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		res, err := radio.RunMultiChannel(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: 8 * defaultBudget(par), NEstimate: par.N,
		}, channels[ci], seed)
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		var r trialRes
		if res.AllDone && verify.Check(d.G, cs).OK() {
			r.ok = true
			r.t = float64(res.MaxLatency())
		}
		if res.Transmissions > 0 {
			r.hasRatio = true
			r.rx = float64(res.Deliveries) / float64(res.Transmissions)
			r.coll = float64(res.Collisions) / float64(res.Transmissions)
		}
		return r
	})
	var baseline float64
	for ci, k := range channels {
		correct := 0
		var ts, rxRatio, collRatio []float64
		for _, r := range grid[ci] {
			if r.ok {
				correct++
				ts = append(ts, r.t)
			}
			if r.hasRatio {
				rxRatio = append(rxRatio, r.rx)
				collRatio = append(collRatio, r.coll)
			}
		}
		mean := stats.Mean(ts)
		if k == 1 {
			baseline = mean
		}
		rel := "–"
		if baseline > 0 && mean > 0 {
			rel = fmt.Sprintf("%.2f×", mean/baseline)
		}
		t.AddRow(k, fmt.Sprintf("%d/%d", correct, o.Trials), mean, rel,
			stats.Mean(rxRatio), stats.Mean(collRatio))
	}
	return t
}

// E22DataCollection closes the loop the paper's introduction opens:
// initialization from scratch → coloring → TDMA MAC → a working sensor
// workload. Convergecast data collection runs over three schedules —
// the protocol's own 1-hop coloring, the same coloring after compaction
// (E19), and a distance-2 coloring (E13) — measuring delivery, latency
// and the hidden-terminal retransmission tax at the application level.
func E22DataCollection(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E22: convergecast data collection over coloring-derived TDMA schedules",
		"schedule", "frame len", "delivery", "mean latency (slots)", "retx/packet")
	n := o.scale(110, 40)
	schedules := []string{"1-hop (protocol)", "compacted (E19)", "distance-2"}
	type schedRes struct {
		present                  bool
		frame, delivery, latency float64
		hasRetx                  bool
		retx                     float64
	}
	rows := parMap(o, "E22", o.Trials, func(tr int) [3]schedRes {
		var out [3]schedRes
		seed := trialSeed(o.Seed, 1900, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 5.5, Radius: 1.3, Seed: seed})
		if !d.G.Connected() {
			return out
		}
		par := MeasureParams(d)
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		if !run.Correct() {
			return out
		}
		colorings := map[string][]int32{"1-hop (protocol)": run.Colors}

		rNodes, rProtos := reduce.Nodes(run.Colors, seed+1, reduce.Params{
			N: par.N, Delta: par.Delta, Kappa2: par.Kappa2})
		rRes, err := radio.Run(radio.Config{G: d.G, Protocols: rProtos,
			Wake: radio.WakeSynchronous(d.N()), MaxSlots: 200_000_000})
		if err != nil {
			panic(err)
		}
		compacted := make([]int32, d.N())
		for i, v := range rNodes {
			compacted[i] = v.Color()
		}
		if rRes.AllDone && verify.Check(d.G, compacted).OK() {
			colorings["compacted (E19)"] = compacted
		}
		colorings["distance-2"] = d.G.Square().GreedyColoring()

		for si, name := range schedules {
			colors, ok := colorings[name]
			if !ok {
				continue
			}
			s, err := sched.FromColoring(colors)
			if err != nil {
				panic(err)
			}
			stats_, err := collect.Run(d.G, s, collect.Config{
				Sink: 0, PacketsPerNode: 3, CoinSeed: seed,
			})
			if err != nil {
				panic(err)
			}
			out[si].present = true
			out[si].frame = float64(s.FrameLen)
			out[si].delivery = stats_.DeliveryRate()
			out[si].latency = stats_.MeanLatency
			if stats_.Generated > 0 {
				out[si].hasRetx = true
				out[si].retx = float64(stats_.Retransmissions) / float64(stats_.Generated)
			}
		}
		return out
	})
	type acc struct {
		frames, delivery, latency, retx []float64
	}
	accs := map[string]*acc{"1-hop (protocol)": {}, "compacted (E19)": {}, "distance-2": {}}
	for _, r := range rows {
		for si, name := range schedules {
			v := r[si]
			if !v.present {
				continue
			}
			a := accs[name]
			a.frames = append(a.frames, v.frame)
			a.delivery = append(a.delivery, v.delivery)
			a.latency = append(a.latency, v.latency)
			if v.hasRetx {
				a.retx = append(a.retx, v.retx)
			}
		}
	}
	for _, name := range schedules {
		a := accs[name]
		t.AddRow(name, stats.Mean(a.frames),
			fmt.Sprintf("%.1f%%", 100*stats.Mean(a.delivery)),
			stats.Mean(a.latency), stats.Mean(a.retx))
	}
	return t
}

// E23AdversarySearch stress-tests the "any wake-up distribution" claim
// (Sect. 2) with an active adversary: hill-climbing over wake-up
// schedules to maximize the worst per-node latency or break correctness
// outright. Run at the practical constants and at the 0.5× scale that
// E7 identified as the edge of the safe plateau.
func E23AdversarySearch(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E23: adversarial wake-up schedule search (Sect. 2 stress test)",
		"constants", "search evals", "schedules broken", "worst maxT found", "sync baseline maxT", "blow-up")
	n := o.scale(90, 40)
	evals := 6 * o.Trials
	scales := []float64{2.0, 1.0, 0.5}
	type cell struct {
		evals, broken  int
		best, baseline int64
	}
	rows := parMap(o, "E23", len(scales), func(ci int) cell {
		seed := trialSeed(o.Seed, 2000+ci, 0)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 5.5, Radius: 1.2, Seed: seed})
		par := MeasureParams(d).Scale(scales[ci])
		run, err := RunCore(d, par, radio.WakeSynchronous(d.N()), seed, defaultBudget(par), core0)
		if err != nil {
			panic(err)
		}
		res := adversary.Search(d, par, adversary.Config{Evals: evals, Seed: seed})
		return cell{res.Evals, res.Broken, res.BestScore, run.Radio.MaxLatency()}
	})
	for ci, scale := range scales {
		r := rows[ci]
		blowup := "–"
		if r.baseline > 0 && r.best > 0 && r.broken == 0 {
			blowup = fmt.Sprintf("%.2f×", float64(r.best)/float64(r.baseline))
		}
		t.AddRow(fmt.Sprintf("%.1f×practical", scale), r.evals, r.broken,
			r.best, r.baseline, blowup)
	}
	return t
}

// E24FaultInjection sweeps the fault layer's link-loss rate under a
// fixed random crash schedule (with some restarts) and measures
// graceful degradation: a faulted run may leave crashed or stuck nodes
// uncolored, but survivors must still form a proper partial coloring —
// the "hard" column counts live-live color conflicts and must stay 0.
func E24FaultInjection(o Options) *stats.Table {
	o = o.normalized()
	t := stats.NewTable("E24: fault injection — loss sweep with node crashes (graceful degradation)",
		"loss prob", "hard viol", "survivors colored", "all-surv runs", "mean colors", "mean lost", "mean down")
	n := o.scale(110, 40)
	probs := []float64{0, 0.02, 0.05, 0.1, 0.2}
	type trialRes struct {
		hard, colored, surv int
		colors              float64
		lost, down          float64
	}
	grid := parTrials(o, "E24", len(probs), o.Trials, func(ci, tr int) trialRes {
		seed := trialSeed(o.Seed, 1600+ci, tr)
		d := topology.RandomUDG(topology.UDGConfig{N: n, Side: 6, Radius: 1.2, Seed: seed})
		par := MeasureParams(d)
		budget := 4 * defaultBudget(par)
		// Crash inside [0, Threshold()): no node can decide before the
		// threshold, so every crash lands while the run is still live
		// (a window scaled to the budget would mostly miss the run).
		prof := &fault.Profile{Seed: seed, Loss: probs[ci], Crashes: crashSchedule(d.N(), par.Threshold(), seed)}
		inj, err := prof.Compile(d.N())
		if err != nil {
			panic(err)
		}
		nodes, protos := core.Nodes(d.N(), seed, par, core0)
		res, err := radio.Run(radio.Config{
			G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
			MaxSlots: budget, NEstimate: par.N,
			Faults: inj,
		})
		if err != nil {
			panic(err)
		}
		cs := make([]int32, d.N())
		for i, v := range nodes {
			cs[i] = v.Color()
		}
		rep := verify.CheckSurvivors(d.G, cs, verify.DownSet(d.N(), res.Down))
		return trialRes{
			hard:    len(rep.HardViolations),
			colored: rep.SurvivorsColored,
			surv:    rep.Survivors,
			colors:  float64(rep.NumColors),
			lost:    float64(res.Lost),
			down:    float64(len(res.Down)),
		}
	})
	for ci, p := range probs {
		hard, colored, surv, allSurv := 0, 0, 0, 0
		var colors, lost, down []float64
		for _, r := range grid[ci] {
			hard += r.hard
			colored += r.colored
			surv += r.surv
			if r.colored == r.surv {
				allSurv++
			}
			colors = append(colors, r.colors)
			lost = append(lost, r.lost)
			down = append(down, r.down)
		}
		t.AddRow(p, hard, fmt.Sprintf("%d/%d", colored, surv),
			fmt.Sprintf("%d/%d", allSurv, o.Trials),
			stats.Mean(colors), stats.Mean(lost), stats.Mean(down))
	}
	return t
}

// crashSchedule fail-stops ~8% of the nodes at random slots in
// [0, window); every other victim restarts within another window.
// Deterministic in seed.
func crashSchedule(n int, window, seed int64) []fault.Crash {
	rng := rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	victims := rng.Perm(n)[:n/12+1]
	crashes := make([]fault.Crash, 0, len(victims))
	for i, v := range victims {
		at := rng.Int63n(window)
		c := fault.Crash{Node: v, At: at}
		if i%2 == 1 {
			c.Restart = at + 1 + rng.Int63n(window)
		}
		crashes = append(crashes, c)
	}
	return crashes
}
