package core

import (
	"math/rand"
	"testing"

	"radiocolor/internal/radio"
)

// TestFuzzNodeRobustness drives a single node with random interleavings
// of Send ticks and arbitrary received messages and checks structural
// invariants after every step:
//
//   - the node never panics;
//   - a decided color is never changed (irrevocability);
//   - the counter never exceeds the threshold while undecided;
//   - the phase only moves along the edges of Fig. 2;
//   - the verification class never decreases and jumps only to
//     tc·(κ₂+1) windows.
func TestFuzzNodeRobustness(t *testing.T) {
	par := testParams()
	for seed := int64(0); seed < 40; seed++ {
		r := rand.New(rand.NewSource(seed))
		v := NewNode(0, radio.NodeRand(seed, 0), par, Ablation{})
		v.Start(0)
		prevPhase := v.Phase()
		decided := int32(-1)
		for step := int64(1); step < 4000; step++ {
			if r.Intn(3) > 0 {
				v.Send(step)
			} else {
				v.Recv(step, randomMessage(r))
			}
			// Irrevocability.
			if decided >= 0 && v.Color() != decided {
				t.Fatalf("seed %d step %d: color changed %d → %d", seed, step, decided, v.Color())
			}
			if v.Done() && decided < 0 {
				decided = v.Color()
				if decided < 0 {
					t.Fatalf("seed %d step %d: done without color", seed, step)
				}
			}
			// Counter discipline: while active and undecided, the
			// counter stays below threshold + 1 (it decides the moment
			// it reaches it).
			if v.Phase() == PhaseActive && v.Counter() > par.Threshold() {
				t.Fatalf("seed %d step %d: counter %d ran past threshold", seed, step, v.Counter())
			}
			// Legal phase transitions.
			ph := v.Phase()
			if !legalTransition(prevPhase, ph) {
				t.Fatalf("seed %d step %d: illegal transition %v → %v", seed, step, prevPhase, ph)
			}
			prevPhase = ph
		}
	}
}

func legalTransition(from, to Phase) bool {
	if from == to {
		return true
	}
	switch from {
	case PhaseAsleep:
		return to == PhaseWaiting
	case PhaseWaiting:
		return to == PhaseActive || to == PhaseRequest || to == PhaseWaiting
	case PhaseActive:
		return to == PhaseRequest || to == PhaseColored || to == PhaseWaiting
	case PhaseRequest:
		return to == PhaseWaiting
	case PhaseColored:
		return false // irrevocable
	}
	return false
}

// randomMessage draws an arbitrary (often nonsensical) protocol message.
func randomMessage(r *rand.Rand) radio.Message {
	from := radio.NodeID(r.Intn(6) + 1)
	switch r.Intn(4) {
	case 0:
		return &MsgA{From: from, Class: int32(r.Intn(30)), Counter: int64(r.Intn(4000) - 2000)}
	case 1:
		return &MsgC{From: from, Class: int32(r.Intn(30))}
	case 2:
		return &MsgAssign{From: from, To: radio.NodeID(r.Intn(3)), TC: int32(r.Intn(8))}
	default:
		return &MsgR{From: from, Leader: radio.NodeID(r.Intn(3))}
	}
}

// TestFuzzLeaderQueue hammers a leader with random request streams and
// checks the queue's uniqueness and tc monotonicity invariants.
func TestFuzzLeaderQueue(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		v := NewNode(0, radio.NodeRand(seed, 0), testParams(), Ablation{})
		v.Start(0)
		v.class = 0
		v.becomeColored()
		lastTC := make(map[radio.NodeID]int32)
		var maxTC int32
		for step := int64(0); step < 5000; step++ {
			if r.Intn(2) == 0 {
				v.Recv(step, &MsgR{From: radio.NodeID(r.Intn(10)), Leader: radio.NodeID(r.Intn(2))})
			}
			if msg := v.Send(step); msg != nil {
				if a, ok := msg.(*MsgAssign); ok {
					if a.TC < maxTC {
						t.Fatalf("seed %d: tc went backwards: %d after %d", seed, a.TC, maxTC)
					}
					maxTC = a.TC
					if prev, seen := lastTC[a.To]; seen && prev != a.TC && a.TC < prev {
						t.Fatalf("seed %d: node %d reassigned lower tc", seed, a.To)
					}
					lastTC[a.To] = a.TC
				}
			}
			// The queue never holds duplicates.
			seen := make(map[radio.NodeID]bool, len(v.queue))
			for _, w := range v.queue {
				if seen[w] {
					t.Fatalf("seed %d: duplicate %d in queue", seed, w)
				}
				seen[w] = true
			}
		}
	}
}
