// Command experiments regenerates the paper-reproduction tables E1–E12
// indexed in DESIGN.md. The output of a full run (the defaults) is
// recorded in EXPERIMENTS.md.
//
// Examples:
//
//	experiments                     # full suite
//	experiments -exp E3,E5          # selected experiments
//	experiments -size 0.4 -trials 1 # quick pass
//	experiments -csv out/           # additionally write CSV files
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"radiocolor/internal/experiment"
)

func main() {
	var (
		exps   = flag.String("exp", "all", "comma-separated experiment ids (e.g. E3,E5) or 'all'")
		trials = flag.Int("trials", 3, "trials per table cell")
		size   = flag.Float64("size", 1.0, "network size factor")
		seed   = flag.Int64("seed", 1, "master seed")
		csvDir = flag.String("csv", "", "also write one CSV per experiment into this directory")
	)
	flag.Parse()

	opts := experiment.Options{Trials: *trials, SizeFactor: *size, Seed: *seed}
	var selected []experiment.Entry
	if *exps == "all" {
		selected = experiment.Registry
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e := experiment.Lookup(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
	for _, e := range selected {
		start := time.Now()
		fmt.Printf("%s — %s\n", e.ID, e.Reproduces)
		t := e.Run(opts)
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", e.ID, time.Since(start).Seconds())
		if *csvDir != "" {
			path := filepath.Join(*csvDir, strings.ToLower(e.ID)+".csv")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := t.WriteCSV(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "experiments:", err)
				os.Exit(1)
			}
		}
	}
}
