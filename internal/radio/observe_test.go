package radio

import (
	"strings"
	"testing"

	"radiocolor/internal/obs"
)

func TestCollectorObserverRecordsInOrder(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true}, nil, {true, true}}, WakeSynchronous(3))
	tr := obs.NewTracer(0, nil)
	cfg.Observer = CollectorObserver(&obs.Collector{Tracer: tr})
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	prev := int64(-1)
	for _, e := range events {
		if e.Slot < prev {
			t.Fatalf("events out of order: %v", events)
		}
		prev = e.Slot
	}
	// Slot 0: nodes 0 and 2 transmit; node 1 collides. Wake and decide
	// events for all 3 nodes are present.
	var tx, coll, decide, wake int
	for _, e := range events {
		switch e.Kind {
		case obs.KindTransmit:
			tx++
		case obs.KindCollision:
			coll++
		case obs.KindDecide:
			decide++
		case obs.KindWake:
			wake++
		}
	}
	if tx != 3 || coll != 1 || decide != 3 || wake != 3 {
		t.Errorf("tx=%d coll=%d decide=%d wake=%d", tx, coll, decide, wake)
	}
	if tr.Total() != int64(len(events)) {
		t.Errorf("Total=%d, retained=%d", tr.Total(), len(events))
	}
}

func TestCollectorObserverDeliverAttribution(t *testing.T) {
	g := line(2)
	_, cfg := buildScripted(g, [][]bool{{true}, nil}, WakeSynchronous(2))
	tr := obs.NewTracer(0, nil, obs.KindDeliver)
	cfg.Observer = CollectorObserver(&obs.Collector{Tracer: tr})
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	events := tr.Events()
	if len(events) != 1 {
		t.Fatalf("deliveries = %v, want exactly 1", events)
	}
	if events[0].Node != 1 || events[0].From != 0 {
		t.Errorf("delivery %+v, want node=1 from=0", events[0])
	}
}

func TestCollectorObserverNil(t *testing.T) {
	if CollectorObserver(nil) != nil {
		t.Error("nil collector must map to nil observer")
	}
	if CollectorObserver(&obs.Collector{Metrics: obs.NewMetrics()}) != nil {
		t.Error("metrics-only collector must map to nil observer (metrics flow via Config.Metrics)")
	}
	if CollectorObserver(&obs.Collector{Tracer: obs.NewTracer(0, nil)}) == nil {
		t.Error("tracer-bearing collector must yield an observer")
	}
}

func TestCollectorObserverTimeline(t *testing.T) {
	g := line(3)
	_, cfg := buildScripted(g, [][]bool{{true}, nil, {true, true}}, WakeSynchronous(3))
	tl := obs.NewTimeline(3, 0)
	cfg.Observer = CollectorObserver(&obs.Collector{Timeline: tl})
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Slots() != res.Slots {
		t.Errorf("timeline saw %d slots, engine ran %d", tl.Slots(), res.Slots)
	}
	var tx, rx, coll int64
	for _, p := range tl.Phases() {
		tx += p.Transmissions
		rx += p.Deliveries
		coll += p.Collisions
	}
	if tx != res.Transmissions || rx != res.Deliveries || coll != res.Collisions {
		t.Errorf("timeline tx=%d rx=%d coll=%d, result %v", tx, rx, coll, res)
	}
}

// recordingObserver logs method invocations for fan-out tests.
type recordingObserver struct {
	NopObserver
	log *strings.Builder
	tag string
}

func (r *recordingObserver) OnSlot(int64)           { r.log.WriteString(r.tag + "s") }
func (r *recordingObserver) OnDecide(int64, NodeID) { r.log.WriteString(r.tag + "d") }
func (r *recordingObserver) OnWake(int64, NodeID)   { r.log.WriteString(r.tag + "w") }
func (r *recordingObserver) OnCollision(int64, NodeID, int) {
	r.log.WriteString(r.tag + "c")
}

func TestObserversFanOut(t *testing.T) {
	var log strings.Builder
	a := &recordingObserver{log: &log, tag: "a"}
	b := &recordingObserver{log: &log, tag: "b"}
	o := Observers(nil, a, nil, b)
	o.OnWake(0, 1)
	o.OnSlot(0)
	o.OnDecide(1, 2)
	if got := log.String(); got != "awbwasbsadbd" {
		t.Errorf("fan-out order = %q", got)
	}
}

func TestObserversDegenerate(t *testing.T) {
	if Observers() != nil || Observers(nil, nil) != nil {
		t.Error("empty composition must be nil (disabled fast path)")
	}
	var log strings.Builder
	a := &recordingObserver{log: &log, tag: "a"}
	if got := Observers(nil, a); got != Observer(a) {
		t.Errorf("single observer must be returned unwrapped, got %T", got)
	}
}

// TestMetricsMatchResult checks that Config.Metrics counters agree with
// the engine's own Result accounting on a real protocol run.
func TestMetricsMatchResult(t *testing.T) {
	g := line(5)
	_, cfg := buildScripted(g, [][]bool{{true}, nil, {true, true}, nil, {true}}, WakeUniform(5, 7, 11))
	met := obs.NewMetrics()
	cfg.Metrics = met
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := met.Snapshot()
	if s.Transmissions != res.Transmissions {
		t.Errorf("tx: metrics %d, result %d", s.Transmissions, res.Transmissions)
	}
	if s.Deliveries != res.Deliveries {
		t.Errorf("rx: metrics %d, result %d", s.Deliveries, res.Deliveries)
	}
	if s.Collisions != res.Collisions {
		t.Errorf("coll: metrics %d, result %d", s.Collisions, res.Collisions)
	}
	if s.Slots != res.Slots {
		t.Errorf("slots: metrics %d, result %d", s.Slots, res.Slots)
	}
	if s.Wakeups != 5 || s.Decisions != 5 {
		t.Errorf("wakeups=%d decisions=%d, want 5 and 5", s.Wakeups, s.Decisions)
	}
}

// idleProto never transmits and never finishes: every Step exercises
// the full wake/send/decide machinery with no protocol-side allocation,
// isolating the observability seam's cost.
type idleProto struct{}

func (idleProto) Start(int64)         {}
func (idleProto) Send(int64) Message  { return nil }
func (idleProto) Recv(int64, Message) {}
func (idleProto) Done() bool          { return false }

func newIdleEngine(tb testing.TB, n int, met *obs.Metrics) *Engine {
	tb.Helper()
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = idleProto{}
	}
	e, err := NewEngine(Config{
		G:         line(n),
		Protocols: protos,
		Wake:      WakeSynchronous(n),
		MaxSlots:  1 << 40,
		Metrics:   met,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

// TestDisabledSeamZeroAlloc pins the zero-overhead contract: with no
// Observer and no Metrics the engine allocates nothing per slot.
func TestDisabledSeamZeroAlloc(t *testing.T) {
	e := newIdleEngine(t, 32, nil)
	e.Step() // absorb wake-up work
	if allocs := testing.AllocsPerRun(500, func() { e.Step() }); allocs != 0 {
		t.Errorf("disabled observability seam allocates %v per slot, want 0", allocs)
	}
}

// TestMetricsZeroAlloc pins that the atomic counter registry adds no
// allocations either — metrics are safe to leave on in hot sweeps.
func TestMetricsZeroAlloc(t *testing.T) {
	e := newIdleEngine(t, 32, obs.NewMetrics())
	e.Step()
	if allocs := testing.AllocsPerRun(500, func() { e.Step() }); allocs != 0 {
		t.Errorf("metrics registry allocates %v per slot, want 0", allocs)
	}
}
