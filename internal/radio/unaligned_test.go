package radio

import (
	"testing"

	"radiocolor/internal/graph"
)

func TestUnalignedValidation(t *testing.T) {
	g := line(2)
	_, cfg := buildScripted(g, [][]bool{nil, nil}, WakeSynchronous(2))
	if _, err := RunUnaligned(cfg, []int8{0}); err == nil {
		t.Error("offset length mismatch accepted")
	}
	if _, err := RunUnaligned(cfg, []int8{0, 3}); err == nil {
		t.Error("offset value 3 accepted")
	}
	if _, err := RunUnaligned(Config{}, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestUnalignedZeroOffsetsMatchAlignedRule(t *testing.T) {
	// 0-1-2 path, only node 0 transmits once: node 1 receives exactly
	// one message (delivered one slot after initiation).
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{true}, nil, nil}, WakeSynchronous(3))
	res, err := RunUnaligned(cfg, []int8{0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 1 || protos[1].recvSlot[0] != 1 {
		t.Errorf("node 1 received %v at %v, want one message in slot 1", protos[1].received, protos[1].recvSlot)
	}
	if len(protos[2].received) != 0 {
		t.Error("non-neighbor received")
	}
	if res.Deliveries != 1 || res.Transmissions != 1 {
		t.Errorf("stats: %v", res)
	}
	// Same-slot aligned collision still collides.
	protos, cfg = buildScripted(g, [][]bool{{true}, nil, {true}}, WakeSynchronous(3))
	if _, err := RunUnaligned(cfg, []int8{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Error("aligned collision delivered")
	}
}

func TestUnalignedCrossOffsetOverlap(t *testing.T) {
	// Nodes 0 and 2 are both neighbors of 1. Node 0 (offset 0)
	// transmits in slot 0 (halves 0,1); node 2 (offset 1) transmits in
	// slot 0 (halves 1,2). Their transmissions overlap at half 1, so
	// node 1 receives neither.
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{true}, nil, {true}}, WakeSynchronous(3))
	if _, err := RunUnaligned(cfg, []int8{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Errorf("node 1 received %v despite half-slot overlap", protos[1].received)
	}
}

func TestUnalignedCrossSlotOverlap(t *testing.T) {
	// Node 2 (offset 1) transmits in slot 0 → halves 1,2. Node 0
	// (offset 0) transmits in slot 1 → halves 2,3. Overlap at half 2:
	// node 1 hears neither.
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{false, true}, nil, {true, false}}, WakeSynchronous(3))
	if _, err := RunUnaligned(cfg, []int8{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 0 {
		t.Errorf("node 1 received %v despite cross-slot overlap", protos[1].received)
	}
}

func TestUnalignedDisjointHalvesDeliver(t *testing.T) {
	// Node 0 (offset 0) transmits slot 0 (halves 0,1); node 2 (offset
	// 1) transmits slot 1 (halves 3,4). No overlap: node 1 receives
	// both.
	g := line(3)
	protos, cfg := buildScripted(g, [][]bool{{true, false}, nil, {false, true}}, WakeSynchronous(3))
	if _, err := RunUnaligned(cfg, []int8{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) != 2 {
		t.Errorf("node 1 received %v, want both messages", protos[1].received)
	}
}

func TestUnalignedReceiverBusy(t *testing.T) {
	// Receiver 1 (offset 1) transmits in slot 0 (halves 1,2); node 0
	// (offset 0) transmits in slot 0 (halves 0,1). Node 1 is busy in
	// half 1 → no reception at 1; node 0 is busy in half 1 too → no
	// reception at 0 either... but 0's own interval is 0,1 and node 1's
	// transmission covers 1,2: they overlap at half 1, so neither side
	// receives.
	g := line(2)
	protos, cfg := buildScripted(g, [][]bool{{true}, {true}}, WakeSynchronous(2))
	if _, err := RunUnaligned(cfg, []int8{0, 1}); err != nil {
		t.Fatal(err)
	}
	if len(protos[0].received)+len(protos[1].received) != 0 {
		t.Error("busy receivers got messages")
	}
}

func TestUnalignedDefaultOffsetsDeterministic(t *testing.T) {
	g := line(10)
	run := func() int64 {
		protos := make([]Protocol, g.N())
		for i := range protos {
			protos[i] = &randProto{id: NodeID(i), rng: NodeRand(7, NodeID(i)), p: 0.3, limit: 200}
		}
		res, err := RunUnaligned(Config{G: g, Protocols: protos, Wake: WakeSynchronous(g.N())}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Deliveries
	}
	if run() != run() {
		t.Error("default offsets not deterministic")
	}
}

func TestUnalignedSleepersDeaf(t *testing.T) {
	g := line(2)
	script := make([]bool, 8)
	for i := range script {
		script[i] = true
	}
	protos, cfg := buildScripted(g, [][]bool{script, make([]bool, 8)}, []int64{0, 4})
	if _, err := RunUnaligned(cfg, []int8{0, 1}); err != nil {
		t.Fatal(err)
	}
	for _, s := range protos[1].recvSlot {
		if s < 4 {
			t.Errorf("sleeping node received at slot %d", s)
		}
	}
}

// lineGraph alias for readability in this file.
var _ = func() *graph.Graph { return line(2) }
