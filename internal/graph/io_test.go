package graph

import (
	"strings"
	"testing"
)

func TestGraphRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(40, 0.1, seed)
		var b strings.Builder
		if _, err := g.WriteTo(&b); err != nil {
			t.Fatal(err)
		}
		back, err := ReadGraph(strings.NewReader(b.String()))
		if err != nil {
			t.Fatal(err)
		}
		if back.N() != g.N() || back.M() != g.M() {
			t.Fatalf("seed %d: %d/%d vs %d/%d", seed, back.N(), back.M(), g.N(), g.M())
		}
		for v := 0; v < g.N(); v++ {
			for u := 0; u < g.N(); u++ {
				if g.HasEdge(v, u) != back.HasEdge(v, u) {
					t.Fatalf("seed %d: edge (%d,%d) mismatch", seed, v, u)
				}
			}
		}
	}
}

func TestReadGraphCommentsAndBlanks(t *testing.T) {
	in := "# a comment\n\nn 3 2\n0 1\n# interior comment\n1 2\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Errorf("parsed %d/%d", g.N(), g.M())
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []string{
		"",             // missing header
		"bogus\n",      // bad header
		"n -1 0\n",     // negative
		"n 2 1\nzzz\n", // bad edge line
		"n 2 1\n0 5\n", // out of range
		"n 2 1\n1 1\n", // self-loop
		"n 3 2\n0 1\n", // edge count mismatch
		"n 2 0\n0 1\n", // more edges than promised
	}
	for i, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestWriteEmptyGraph(t *testing.T) {
	var b strings.Builder
	if _, err := NewBuilder(0).Build().WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	g, err := ReadGraph(strings.NewReader(b.String()))
	if err != nil || g.N() != 0 {
		t.Errorf("empty round-trip: %v %v", g, err)
	}
}
