// Command colord is the coloring-simulation daemon: an HTTP JSON API
// over internal/serve that runs the paper's protocol as queued,
// cancellable jobs with streaming progress and Prometheus metrics.
//
// Endpoints:
//
//	POST   /v1/jobs                submit (429 + Retry-After under backpressure)
//	GET    /v1/jobs                list (?state=queued|running|done|failed|canceled|timed_out, ?limit=n)
//	GET    /v1/jobs/{id}           poll
//	GET    /v1/jobs/{id}/stream    NDJSON (or SSE with Accept: text/event-stream)
//	DELETE /v1/jobs/{id}           cancel
//	POST   /v1/sweeps              submit a parameter grid (n × seed × wakeup × faults × medium × tiling)
//	GET    /v1/sweeps/{id}         poll a sweep (aggregate once terminal)
//	GET    /v1/sweeps/{id}/stream  per-cell progress + final aggregate
//	DELETE /v1/sweeps/{id}         cancel a sweep and its cells
//	GET    /healthz                liveness
//	GET    /metrics                Prometheus text
//
// Example session:
//
//	colord -addr :8080 -store /var/lib/colord -workers 4 &
//	curl -s localhost:8080/v1/jobs -d '{"topology":{"kind":"udg","n":200},"seed":7}'
//	curl -sN localhost:8080/v1/jobs/j-000001/stream
//	curl -s localhost:8080/v1/sweeps -d '{"base":{"topology":{"kind":"udg","n":100}},"seed":[1,2,3],"wakeup":["synchronous","uniform"]}'
//	curl -s localhost:8080/metrics | grep colord_
//
// With -store, every accepted job is persisted before its 202 and the
// backlog survives SIGKILL: the next boot on the same directory resumes
// it. Several colord processes pointed at one -store directory form a
// replica group — the store's leases guarantee each job runs exactly
// once; give each process a distinct -replica name (the default is
// derived from the pid).
//
// SIGINT/SIGTERM starts a graceful drain: in-flight jobs get
// -drain-timeout to finish. With a durable store, interrupted jobs are
// released back to the queue instead of canceled.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"radiocolor/internal/obs"
	"radiocolor/internal/serve"
	"radiocolor/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		storeDir = flag.String("store", "", "durable job-store directory (empty = in-memory, nothing survives the process)")
		replica  = flag.String("replica", "", "replica name for lease ownership (default: derived from the pid)")
		lease    = flag.Duration("lease", 10*time.Second, "job lease TTL; a replica silent this long is presumed dead")
		claim    = flag.Duration("claim-interval", 250*time.Millisecond, "idle poll period for work admitted by other replicas")
		queueCap = flag.Int("queue", 64, "queued-backlog admission bound (full backlog → 429)")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent job executions")
		sweepCap = flag.Int("max-sweep-cells", 256, "largest admissible sweep grid")
		cache    = flag.Int("cache", 128, "deployment cache entries (negative disables)")
		maxNodes = flag.Int("max-nodes", 200_000, "largest admissible job")
		drain    = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline for in-flight jobs")
		stream   = flag.Duration("stream-interval", 250*time.Millisecond, "progress sampling period of /stream")
		jobTO    = flag.Duration("job-timeout", 0, "wall-clock bound per job, 0 = unlimited (a request's timeout_ms overrides it)")
		fsync    = flag.Bool("fsync", false, "fsync the store log after every append (power-loss durability; page-cache durability without it)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ctrl := obs.NewControl()
	var st store.Store
	if *storeDir != "" {
		fs, err := store.OpenFile(*storeDir, store.FileOptions{Control: ctrl, Sync: *fsync})
		if err != nil {
			fmt.Fprintln(os.Stderr, "colord:", err)
			os.Exit(1)
		}
		defer fs.Close()
		st = fs
	}

	srv := serve.New(serve.Config{
		Store:          st,
		Replica:        *replica,
		LeaseTTL:       *lease,
		ClaimInterval:  *claim,
		Control:        ctrl,
		QueueCap:       *queueCap,
		Workers:        *workers,
		MaxSweepCells:  *sweepCap,
		CacheSize:      *cache,
		MaxNodes:       *maxNodes,
		StreamInterval: *stream,
		JobTimeout:     *jobTO,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	durable := "memory"
	if st != nil {
		durable = *storeDir
	}
	fmt.Fprintf(os.Stderr, "colord: listening on %s (store=%s queue=%d workers=%d)\n", *addr, durable, *queueCap, *workers)

	select {
	case <-ctx.Done():
		stop() // restore default signal handling: a second ^C kills hard
		fmt.Fprintf(os.Stderr, "colord: draining (deadline %s)\n", *drain)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		// Stop accepting connections first, then drain the job pool.
		if err := httpSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "colord: http shutdown:", err)
		}
		if err := srv.Shutdown(drainCtx); err != nil {
			fmt.Fprintln(os.Stderr, "colord: drain deadline hit, interrupted in-flight jobs:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "colord: drained cleanly")
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "colord:", err)
			os.Exit(1)
		}
	}
}
