package verify

import "testing"

func TestCheckSurvivorsDownOutOfScope(t *testing.T) {
	// 0-1-2 path, nodes 0 and 1 share a color but 1 is down: no hard
	// violation, and the down node is neither a survivor nor degraded.
	g := pathGraph(3)
	r := CheckSurvivors(g, []int32{5, 5, 0}, []bool{false, true, false})
	if r.Hard() || !r.Graceful() {
		t.Fatalf("down node's stale color judged hard: %v", r)
	}
	if r.Survivors != 2 || r.DownNodes != 1 || r.LeftNodes != 0 {
		t.Errorf("survivors=%d down=%d left=%d, want 2/1/0", r.Survivors, r.DownNodes, r.LeftNodes)
	}
	if len(r.Degraded) != 0 {
		t.Errorf("degraded = %v, want none", r.Degraded)
	}
}

func TestCheckSurvivorsScopedLeftOutOfScope(t *testing.T) {
	// Node 1 left on schedule holding a color that conflicts with both
	// neighbors, and node 2 left without ever deciding: neither is a
	// violation or degradation — their colors went out of scope with
	// them — and they tally as left, not down.
	g := pathGraph(4)
	colors := []int32{5, 5, Uncolored, 5}
	left := []bool{false, true, true, false}
	r := CheckSurvivorsScoped(g, colors, nil, left)
	if r.Hard() {
		t.Fatalf("left node's leftover color judged hard: %v", r)
	}
	if r.Survivors != 2 || r.DownNodes != 0 || r.LeftNodes != 2 {
		t.Errorf("survivors=%d down=%d left=%d, want 2/0/2", r.Survivors, r.DownNodes, r.LeftNodes)
	}
	if len(r.Degraded) != 0 {
		t.Errorf("undecided leaver listed as degraded: %v", r.Degraded)
	}
	if r.SurvivorsColored != 2 || r.NumColors != 1 {
		t.Errorf("colored=%d colors=%d, want 2/1", r.SurvivorsColored, r.NumColors)
	}
}

func TestCheckSurvivorsScopedDistinguishesDownFromLeft(t *testing.T) {
	// Same mask shape, opposite report fields — the semantics are
	// explicit, not interchangeable labels.
	g := pathGraph(3)
	colors := []int32{0, 1, 0}
	mask := []bool{false, false, true}
	asDown := CheckSurvivorsScoped(g, colors, mask, nil)
	asLeft := CheckSurvivorsScoped(g, colors, nil, mask)
	if asDown.DownNodes != 1 || asDown.LeftNodes != 0 {
		t.Errorf("down mask: down=%d left=%d", asDown.DownNodes, asDown.LeftNodes)
	}
	if asLeft.DownNodes != 0 || asLeft.LeftNodes != 1 {
		t.Errorf("left mask: down=%d left=%d", asLeft.DownNodes, asLeft.LeftNodes)
	}
	if asDown.Survivors != asLeft.Survivors {
		t.Errorf("scoping differs: %d vs %d survivors", asDown.Survivors, asLeft.Survivors)
	}
}

func TestCheckSurvivorsScopedLiveConflictStillHard(t *testing.T) {
	// Scoping out node 3 must not excuse the live 0-1 conflict.
	g := pathGraph(4)
	r := CheckSurvivorsScoped(g, []int32{5, 5, 0, 1}, nil, []bool{false, false, false, true})
	if !r.Hard() || len(r.HardViolations) != 1 {
		t.Fatalf("live conflict not flagged: %v", r)
	}
	v := r.HardViolations[0]
	if v.U != 0 || v.V != 1 || v.Color != 5 {
		t.Errorf("violation = %+v, want edge (0,1) color 5", v)
	}
}

func TestCheckSurvivorsScopedPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on short left mask")
		}
	}()
	CheckSurvivorsScoped(pathGraph(3), []int32{0, 1, 0}, nil, []bool{false})
}
