package verify

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radiocolor/internal/graph"
)

func randomGraphAndColors(n int, p float64, maxColor int32, seed int64) (*graph.Graph, []int32) {
	r := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	colors := make([]int32, n)
	for i := range colors {
		colors[i] = r.Int31n(maxColor+2) - 1 // includes Uncolored
	}
	return b.Build(), colors
}

// Property: Check.Proper ⇔ every color class is independent. This is the
// equivalence Theorem 2's statement rests on (a coloring is correct iff
// all classes are independent sets).
func TestQuickProperEquivalesClassIndependence(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(20, 0.25, 5, seed)
		rep := Check(g, colors)
		allIndep := true
		for _, indep := range ClassIndependence(g, colors) {
			allIndep = allIndep && indep
		}
		return rep.Proper == allIndep
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: Complete ⇔ no Uncolored entries; NumColors counts distinct
// non-negative colors; MaxColor is their maximum.
func TestQuickReportBookkeeping(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(18, 0.2, 6, seed)
		rep := Check(g, colors)
		distinct := map[int32]bool{}
		max := int32(-1)
		complete := true
		for _, c := range colors {
			if c == Uncolored {
				complete = false
				continue
			}
			distinct[c] = true
			if c > max {
				max = c
			}
		}
		return rep.Complete == complete && rep.NumColors == len(distinct) && rep.MaxColor == max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every reported violation is a real conflicting edge.
func TestQuickViolationsAreRealEdges(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(16, 0.3, 3, seed)
		rep := Check(g, colors)
		for _, v := range rep.Violations {
			if !g.HasEdge(int(v.U), int(v.V)) {
				return false
			}
			if colors[v.U] != v.Color || colors[v.V] != v.Color {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CheckLocality flags exactly the nodes whose φ exceeds the
// (κ₂+1)·θ bound recomputed independently.
func TestQuickLocalityExact(t *testing.T) {
	f := func(seed int64) bool {
		g, colors := randomGraphAndColors(14, 0.25, 40, seed)
		const kappa2 = 3
		flagged := map[int32]bool{}
		for _, v := range CheckLocality(g, colors, kappa2) {
			flagged[v.Node] = true
		}
		for v := 0; v < g.N(); v++ {
			phi := int32(-1)
			if colors[v] != Uncolored {
				phi = colors[v]
			}
			for _, u := range g.Adj(v) {
				if colors[u] != Uncolored && colors[u] > phi {
					phi = colors[u]
				}
			}
			theta := 0
			for _, u := range g.TwoHop(v) {
				if d := g.Degree(int(u)); d > theta {
					theta = d
				}
			}
			want := phi > int32((kappa2+1)*theta)
			if want != flagged[int32(v)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
