package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"radiocolor"
)

// fakeOutcome is what hooked runs return; real outcomes are covered by
// the integration tests below.
func fakeOutcome() *radiocolor.Outcome {
	return &radiocolor.Outcome{Colors: []int{1, 0}, Proper: true, Complete: true, NumColors: 2}
}

// newTestServer builds a Server plus an httptest front end and tears
// both down at cleanup.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, req JobRequest) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode accepted body: %v", err)
		}
	}
	return resp, st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return JobStatus{}
}

// ringAdjacency builds a cycle on n nodes.
func ringAdjacency(n int) [][]int {
	adj := make([][]int, n)
	for v := range adj {
		adj[v] = []int{(v + n - 1) % n, (v + 1) % n}
	}
	return adj
}

// TestOutcomeMatchesDirectCall is the end-to-end determinism contract:
// a job's Outcome must be identical to calling ColorGraphContext
// directly with the same inputs and seed (wall-clock rates excluded).
func TestOutcomeMatchesDirectCall(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	adj := ringAdjacency(16)
	resp, st := submit(t, ts, JobRequest{Adjacency: adj, Seed: 9, Wakeup: "uniform", Metrics: true})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone || final.Outcome == nil {
		t.Fatalf("job ended %s (err %q)", final.State, final.Error)
	}

	direct, err := radiocolor.ColorGraphContext(context.Background(), adj,
		radiocolor.Options{Seed: 9, Wakeup: radiocolor.WakeupUniform, Metrics: true})
	if err != nil {
		t.Fatal(err)
	}

	// Wall-clock rates are the only nondeterministic fields.
	scrub := func(o *radiocolor.Outcome) {
		if o.Stats != nil {
			o.Stats.SlotsPerSec = 0
			o.Stats.Wall = 0
		}
	}
	scrub(final.Outcome)
	scrub(direct)
	got, _ := json.Marshal(final.Outcome)
	want, _ := json.Marshal(direct)
	if !bytes.Equal(got, want) {
		t.Fatalf("outcome differs from direct call:\n served: %s\n direct: %s", got, want)
	}
}

// TestBackpressure429 is the load-shedding contract: 64 concurrent
// submissions against a queue of 16 and 4 busy workers → the overflow
// is rejected with 429 + Retry-After, every accepted job completes,
// and retrying the rejected submissions eventually lands all 64. Also
// doubles as the goroutine-leak check for the whole pool lifecycle.
func TestBackpressure429(t *testing.T) {
	before := runtime.NumGoroutine()

	gate := make(chan struct{})
	s := New(Config{
		QueueCap: 16,
		Workers:  4,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(s)

	const total = 64
	req := JobRequest{Adjacency: ringAdjacency(4)}
	body, _ := json.Marshal(req)

	type result struct {
		code       int
		id         string
		retryAfter string
	}
	results := make([]result, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			r := result{code: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
			if resp.StatusCode == http.StatusAccepted {
				var st JobStatus
				if err := json.NewDecoder(resp.Body).Decode(&st); err == nil {
					r.id = st.ID
				}
			}
			results[i] = r
		}(i)
	}
	wg.Wait()

	accepted, rejected := 0, 0
	ids := make([]string, 0, total)
	for _, r := range results {
		switch r.code {
		case http.StatusAccepted:
			accepted++
			ids = append(ids, r.id)
		case http.StatusTooManyRequests:
			rejected++
			if r.retryAfter == "" {
				t.Error("429 without Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", r.code)
		}
	}
	if accepted+rejected != total {
		t.Fatalf("accepted %d + rejected %d != %d", accepted, rejected, total)
	}
	// Queue(16) + at most Workers(4) in-flight bound the admissions.
	if accepted < 16 || accepted > 20 {
		t.Fatalf("accepted %d, want within [16, 20]", accepted)
	}
	if rejected < total-20 {
		t.Fatalf("rejected %d, want ≥ %d", rejected, total-20)
	}

	// Unblock the pool; every accepted job must complete, and retrying
	// the rejected submissions drains the rest of the workload.
	close(gate)
	deadline := time.Now().Add(30 * time.Second)
	for len(ids) < total && time.Now().Before(deadline) {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusAccepted {
			var st JobStatus
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, st.ID)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			time.Sleep(2 * time.Millisecond)
		}
	}
	if len(ids) != total {
		t.Fatalf("only %d/%d jobs admitted after retries", len(ids), total)
	}
	for _, id := range ids {
		if st := waitTerminal(t, ts, id); st.State != StateDone {
			t.Fatalf("job %s ended %s (err %q)", id, st.State, st.Error)
		}
	}
	if got := s.completed.Load(); got != total {
		t.Fatalf("completed counter = %d, want %d", got, total)
	}
	if s.rejected.Load() < int64(rejected) {
		t.Fatalf("rejected counter = %d, want ≥ %d", s.rejected.Load(), rejected)
	}

	// Drain everything and verify the pool leaks no goroutines.
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	ts.Client().CloseIdleConnections()
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines: before %d, after %d", before, runtime.NumGoroutine())
}

func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Config{
		Workers:  1,
		QueueCap: 8,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(gate)

	_, running := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	_, queued := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})

	// Wait for the first job to occupy the single worker.
	waitFor(t, func() bool { return getStatus(t, ts, running.ID).State == StateRunning })

	del := func(id string) JobStatus {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	// Canceling a queued job is immediate.
	if st := del(queued.ID); st.State != StateCanceled {
		t.Fatalf("queued job after DELETE: %s", st.State)
	}
	// Canceling a running job fires its context.
	del(running.ID)
	if st := waitTerminal(t, ts, running.ID); st.State != StateCanceled {
		t.Fatalf("running job after DELETE: %s (err %q)", st.State, st.Error)
	}
	// Canceling a finished job is a no-op that reports the final state.
	if st := del(running.ID); st.State != StateCanceled {
		t.Fatalf("second DELETE: %s", st.State)
	}
	if got := s.canceled.Load(); got != 2 {
		t.Fatalf("canceled counter = %d, want 2", got)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached")
}

// TestShutdownDrains verifies the graceful path: in-flight jobs finish
// under the deadline, queued ones are canceled, and Shutdown returns
// nil.
func TestShutdownDrains(t *testing.T) {
	s := New(Config{
		Workers:  2,
		QueueCap: 8,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-time.After(30 * time.Millisecond):
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
		ids = append(ids, st.ID)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	done, canceled := 0, 0
	for _, id := range ids {
		switch st := getStatus(t, ts, id); st.State {
		case StateDone:
			done++
		case StateCanceled:
			canceled++
		default:
			t.Fatalf("job %s left in state %s", id, st.State)
		}
	}
	if done+canceled != 6 {
		t.Fatalf("done %d + canceled %d != 6", done, canceled)
	}
	if done == 0 {
		t.Fatal("expected at least the in-flight jobs to drain as done")
	}
	// A post-drain submission is refused.
	resp, _ := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while drained: status %d", resp.StatusCode)
	}
	// Health reports draining.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d", hresp.StatusCode)
	}
}

// TestShutdownDeadlineCancels verifies the forced path: jobs that
// ignore the drain deadline are canceled via context and the pool still
// exits.
func TestShutdownDeadlineCancels(t *testing.T) {
	s := New(Config{
		Workers:  2,
		QueueCap: 4,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			<-ctx.Done() // never finishes voluntarily
			return nil, ctx.Err()
		},
	})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, a := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	_, b := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	waitFor(t, func() bool {
		return getStatus(t, ts, a.ID).State == StateRunning && getStatus(t, ts, b.ID).State == StateRunning
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown err = %v, want DeadlineExceeded", err)
	}
	for _, id := range []string{a.ID, b.ID} {
		if st := getStatus(t, ts, id); st.State != StateCanceled {
			t.Fatalf("job %s state %s, want canceled", id, st.State)
		}
	}
}

func TestStreamNDJSONAndSSE(t *testing.T) {
	gate := make(chan struct{})
	var once sync.Once
	_, ts := newTestServer(t, Config{
		Workers:        1,
		StreamInterval: 5 * time.Millisecond,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})

	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	var events []StreamEvent
	sawProgress := false
	for sc.Scan() {
		var ev StreamEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
		if ev.Type == "progress" {
			sawProgress = true
			once.Do(func() { close(gate) }) // saw the run live; let it finish
		}
		if ev.Type == "done" {
			break
		}
	}
	if len(events) < 2 {
		t.Fatalf("got %d events, want ≥ 2", len(events))
	}
	if events[0].Type != "status" {
		t.Fatalf("first event %q, want status", events[0].Type)
	}
	if !sawProgress {
		t.Fatal("no progress event observed")
	}
	last := events[len(events)-1]
	if last.Type != "done" || last.Status == nil || last.Status.Outcome == nil || last.State != StateDone {
		t.Fatalf("bad final event: %+v", last)
	}

	// A stream opened after completion replays status + done
	// immediately, and SSE framing is honored.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if ct := resp2.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE content type %q", ct)
	}
	raw := new(bytes.Buffer)
	if _, err := raw.ReadFrom(resp2.Body); err != nil {
		t.Fatal(err)
	}
	text := raw.String()
	for _, want := range []string{"event: status\n", "event: done\n", "data: {"} {
		if !strings.Contains(text, want) {
			t.Fatalf("SSE body missing %q:\n%s", want, text)
		}
	}
}

// TestTopologyCacheMeasuredReuse runs the same generated topology twice
// and verifies the second job hits the deployment cache, reuses the
// measured parameters, and still produces the identical outcome.
func TestTopologyCacheMeasuredReuse(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	req := JobRequest{Topology: &TopologySpec{Kind: "ring", N: 24}, Seed: 3}

	_, first := submit(t, ts, req)
	f1 := waitTerminal(t, ts, first.ID)
	if f1.State != StateDone {
		t.Fatalf("first job: %s (%s)", f1.State, f1.Error)
	}
	if f1.CacheHit {
		t.Fatal("first job cannot be a cache hit")
	}

	_, second := submit(t, ts, req)
	f2 := waitTerminal(t, ts, second.ID)
	if f2.State != StateDone {
		t.Fatalf("second job: %s (%s)", f2.State, f2.Error)
	}
	if !f2.CacheHit {
		t.Fatal("second job should hit the deployment cache")
	}
	if !reflect.DeepEqual(f1.Outcome.Colors, f2.Outcome.Colors) || f1.Outcome.Slots != f2.Outcome.Slots {
		t.Fatal("cached run diverged from the first run")
	}
	if f1.Outcome.Delta != f2.Outcome.Delta || f1.Outcome.Kappa2 != f2.Outcome.Kappa2 {
		t.Fatal("measured parameters diverged")
	}
	if s.cache.hits.Load() == 0 {
		t.Fatal("cache hit counter not incremented")
	}

	// The aggregate phase gauges must return to zero once no job runs:
	// each run seeds its node count in and subtracts its terminal
	// occupancy back out.
	snap := s.obsReg.Snapshot()
	for p, v := range snap.PhaseNodes {
		if v != 0 {
			t.Fatalf("aggregate phase gauge %d = %d after all jobs finished", p, v)
		}
	}
	if snap.Slots == 0 || snap.Decisions == 0 {
		t.Fatal("aggregate registry saw no events")
	}
}

func TestSubmitValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxNodes: 10})
	post := func(body string) *http.Response {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}
	if resp := post("{nope"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", resp.StatusCode)
	}
	if resp := post(`{"unknown_field":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
	if resp := post(`{}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no input: %d", resp.StatusCode)
	}
	if resp := post(`{"topology":{"kind":"udg","n":11}}`); resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over MaxNodes: %d", resp.StatusCode)
	}
	if resp := post(`{"topology":{"kind":"moebius","n":4}}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown topology: %d", resp.StatusCode)
	}
	if resp := post(`{"adjacency":[[1],[0]],"wakeup":"never"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wakeup: %d", resp.StatusCode)
	}
	for _, path := range []string{"/v1/jobs/j-999999", "/v1/jobs/j-999999/stream"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestHealthAndMetricsEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 5})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(8), Seed: 2})
	waitTerminal(t, ts, st.ID)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.QueueCapacity != 5 || h.JobsDone != 1 {
		t.Fatalf("health = %+v", h)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	if ct := mresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"colord_jobs_submitted_total 1",
		"colord_jobs_accepted_total 1",
		"colord_jobs_completed_total{state=\"done\"} 1",
		"colord_queue_capacity 5",
		"colord_job_duration_seconds_bucket{le=\"+Inf\"} 1",
		"colord_job_duration_seconds_count 1",
		"radiocolor_slots_total",
		"radiocolor_transmissions_total",
		"radiocolor_phase_nodes{phase=\"colored\"} 0",
		"# TYPE colord_job_duration_seconds histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

func TestListJobs(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, a := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), Seed: 1})
	_, b := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), Seed: 2})
	waitTerminal(t, ts, a.ID)
	waitTerminal(t, ts, b.ID)
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 2 || list[0].ID != a.ID || list[1].ID != b.ID {
		t.Fatalf("list = %+v", list)
	}
	for _, st := range list {
		if st.Outcome != nil {
			t.Fatal("list must not carry outcomes")
		}
	}
}

// TestListJobsStateFilterAndLimit covers the ?state= and ?limit=
// parameters: deterministic Seq order, store-backed filtering, bounded
// page size, and 400s on garbage.
func TestListJobsStateFilterAndLimit(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Config{
		Workers:  1,
		QueueCap: 16,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			select {
			case <-gate:
				return fakeOutcome(), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
	})
	defer close(gate)
	var ids []string
	for i := 0; i < 5; i++ {
		_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), Seed: int64(i + 1)})
		ids = append(ids, st.ID)
	}
	// One running (held at the gate), the rest queued.
	waitFor(t, func() bool { return getStatus(t, ts, ids[0]).State == StateRunning })

	fetch := func(query string, wantCode int) []JobStatus {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/v1/jobs" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Fatalf("GET /v1/jobs%s: status %d, want %d", query, resp.StatusCode, wantCode)
		}
		if wantCode != http.StatusOK {
			return nil
		}
		var list []JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
			t.Fatal(err)
		}
		return list
	}

	queued := fetch("?state=queued", http.StatusOK)
	if len(queued) != 4 {
		t.Fatalf("queued list = %+v", queued)
	}
	for i, st := range queued {
		if st.ID != ids[i+1] || st.State != StateQueued {
			t.Fatalf("queued[%d] = %+v, want %s", i, st, ids[i+1])
		}
	}
	if running := fetch("?state=running", http.StatusOK); len(running) != 1 || running[0].ID != ids[0] {
		t.Fatalf("running list = %+v", running)
	}
	if limited := fetch("?state=queued&limit=2", http.StatusOK); len(limited) != 2 || limited[0].ID != ids[1] {
		t.Fatalf("limited list = %+v", limited)
	}
	if done := fetch("?state=done", http.StatusOK); len(done) != 0 {
		t.Fatalf("done list = %+v", done)
	}
	fetch("?state=bogus", http.StatusBadRequest)
	fetch("?limit=0", http.StatusBadRequest)
	fetch("?limit=banana", http.StatusBadRequest)
}

func TestRetentionPrunesTerminalJobs(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, MaxRetained: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), Seed: int64(i + 1)})
		ids = append(ids, st.ID)
		waitTerminal(t, ts, st.ID)
	}
	s.mu.Lock()
	n := len(s.jobs)
	s.mu.Unlock()
	if n > 4 { // MaxRetained plus the one admitted before pruning ran
		t.Fatalf("retained %d jobs, want ≤ 4", n)
	}
	// The most recent job must still be queryable.
	if st := getStatus(t, ts, ids[len(ids)-1]); !st.State.Terminal() {
		t.Fatalf("latest job state %s", st.State)
	}
}

// TestPanicInJobIsContained ensures the fleet engine's panic recovery
// turns a crashing job into a failed status instead of killing a
// worker.
func TestPanicInJobIsContained(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers: 1,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			panic("boom")
		},
	})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "boom") {
		t.Fatalf("state %s err %q", final.State, final.Error)
	}
	// The worker survived: the next job still runs.
	_, st2 := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	if got := waitTerminal(t, ts, st2.ID); got.State != StateFailed {
		t.Fatalf("second job state %s", got.State)
	}
}

func TestUnitDiskJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	pts := make([][2]float64, 9)
	for i := range pts {
		pts[i] = [2]float64{float64(i % 3), float64(i / 3)}
	}
	_, st := submit(t, ts, JobRequest{Points: pts, Radius: 1.1, Seed: 4})
	final := waitTerminal(t, ts, st.ID)
	if final.State != StateDone || final.Outcome == nil || !final.Outcome.Proper {
		t.Fatalf("unit disk job: %+v", final)
	}
	direct, err := radiocolor.ColorUnitDisk(pts, 1.1, radiocolor.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Colors, final.Outcome.Colors) {
		t.Fatalf("colors differ: %v vs %v", direct.Colors, final.Outcome.Colors)
	}
}

func ExampleServer() {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()

	body := `{"topology":{"kind":"clique","n":6},"seed":1}`
	resp, _ := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	var st JobStatus
	_ = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	for !st.State.Terminal() {
		time.Sleep(10 * time.Millisecond)
		r, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		_ = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
	}
	fmt.Println(st.State, st.Outcome.Proper, st.Outcome.Complete)
	// Output: done true true
}

func TestJobTimeoutFromRequest(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 1,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), TimeoutMS: 30})
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateTimedOut {
		t.Fatalf("state = %s (err %q), want timed_out", fin.State, fin.Error)
	}
	if !strings.Contains(fin.Error, "timeout") {
		t.Fatalf("error %q does not mention the timeout", fin.Error)
	}
	if got := s.timedOut.Load(); got != 1 {
		t.Fatalf("timedOut counter = %d, want 1", got)
	}
	if got := s.canceled.Load(); got != 0 {
		t.Fatalf("timeout must not count as cancellation (canceled = %d)", got)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	if want := "colord_jobs_completed_total{state=\"timed_out\"} 1"; !strings.Contains(buf.String(), want) {
		t.Fatalf("metrics missing %q:\n%s", want, buf.String())
	}
}

func TestJobTimeoutServerDefaultAndCancelPrecedence(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Workers:    2,
		JobTimeout: 25 * time.Millisecond,
		run: func(ctx context.Context, j *job) (*radiocolor.Outcome, error) {
			<-ctx.Done()
			return nil, ctx.Err()
		},
	})
	// No timeout_ms in the request: the server default applies.
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4)})
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateTimedOut {
		t.Fatalf("server-default timeout: state = %s, want timed_out", fin.State)
	}
	// An explicit DELETE on a job with a generous timeout must surface
	// as canceled, not timed_out.
	_, long := submit(t, ts, JobRequest{Adjacency: ringAdjacency(4), TimeoutMS: int64(2 * time.Hour / time.Millisecond)})
	waitFor(t, func() bool { return getStatus(t, ts, long.ID).State == StateRunning })
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+long.ID, nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if fin := waitTerminal(t, ts, long.ID); fin.State != StateCanceled {
		t.Fatalf("canceled job: state = %s, want canceled", fin.State)
	}
}

func TestFaultsJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(12), Seed: 5, Faults: "loss=0.3,seed=7"})
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("faulted job: state = %s (err %q)", fin.State, fin.Error)
	}
	if fin.Outcome == nil || fin.Outcome.Faults == nil {
		t.Fatalf("outcome missing fault report: %+v", fin.Outcome)
	}
	if fin.Outcome.Faults.Lost == 0 {
		t.Fatalf("30%% loss on a ring injected nothing: %+v", fin.Outcome.Faults)
	}
	if !fin.Outcome.Faults.Graceful {
		t.Fatalf("pure link loss must degrade gracefully: %+v", fin.Outcome.Faults)
	}

	// Malformed fault specs and negative timeouts are rejected at
	// submission.
	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"adjacency":[[1],[0]],"faults":"loss=2"}`); code != http.StatusBadRequest {
		t.Fatalf("loss=2: %d, want 400", code)
	}
	if code := post(`{"adjacency":[[1],[0]],"faults":"frobnicate=1"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown fault key: %d, want 400", code)
	}
	if code := post(`{"adjacency":[[1],[0]],"timeout_ms":-5}`); code != http.StatusBadRequest {
		t.Fatalf("negative timeout: %d, want 400", code)
	}
}

func TestChurnJob(t *testing.T) {
	// A long-running job accepts topology deltas: a node leaves, a new
	// one joins, and the outcome carries the churn counters plus the
	// present-subgraph verdict.
	_, ts := newTestServer(t, Config{Workers: 1})
	_, st := submit(t, ts, JobRequest{Adjacency: ringAdjacency(12), Seed: 5, Churn: "leave=2@50,join=7@80"})
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone {
		t.Fatalf("churned job: state = %s (err %q)", fin.State, fin.Error)
	}
	out := fin.Outcome
	if out == nil || out.Churn == nil {
		t.Fatalf("outcome missing churn report: %+v", out)
	}
	if out.Churn.Joins != 1 || out.Churn.Leaves != 1 {
		t.Fatalf("churn counters: %+v, want 1 join / 1 leave", out.Churn)
	}
	if !out.Churn.Graceful || out.Churn.HardViolations != 0 {
		t.Fatalf("churned ring not graceful: %+v", out.Churn)
	}
	if len(out.Churn.Left) != 1 || out.Churn.Left[0] != 2 {
		t.Fatalf("Left = %v, want [2]", out.Churn.Left)
	}

	// The churn totals reach the server-aggregate registry: the /metrics
	// scrape must carry the finished job's joins and leaves.
	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbuf := new(bytes.Buffer)
	if _, err := mbuf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, want := range []string{
		"radiocolor_joins_total 1",
		"radiocolor_leaves_total 1",
		"radiocolor_conflicts_repaired_total 0",
	} {
		if !strings.Contains(mbuf.String(), want) {
			t.Errorf("metrics scrape missing %q", want)
		}
	}

	// Malformed churn specs are rejected at submission.
	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"adjacency":[[1],[0]],"churn":"teleport=1@5"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown churn key: %d, want 400", code)
	}
	if code := post(`{"adjacency":[[1],[0]],"churn":"move=0@10:1:1"}`); code != http.StatusBadRequest {
		t.Fatalf("mobility without positions: %d, want 400", code)
	}
}

func TestMediumJob(t *testing.T) {
	// A points job under the SINR medium runs end to end and matches the
	// direct library call; a sinr request without positions is rejected
	// at submission.
	_, ts := newTestServer(t, Config{Workers: 1})
	pts := make([][2]float64, 9)
	for i := range pts {
		pts[i] = [2]float64{float64(i % 3), float64(i / 3)}
	}
	const spec = "sinr,alpha=4,beta=1.5,noise=-12"
	_, st := submit(t, ts, JobRequest{Points: pts, Radius: 1.1, Seed: 4, Medium: spec})
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone || fin.Outcome == nil {
		t.Fatalf("sinr job: state = %s (err %q)", fin.State, fin.Error)
	}
	mc, err := radiocolor.ParseMedium(spec)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := radiocolor.ColorUnitDisk(pts, 1.1, radiocolor.Options{Seed: 4, Medium: mc})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Colors, fin.Outcome.Colors) {
		t.Fatalf("sinr job colors differ from direct call: %v vs %v", direct.Colors, fin.Outcome.Colors)
	}

	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(`{"adjacency":[[1],[0]],"medium":"sinr"}`); code != http.StatusBadRequest {
		t.Fatalf("sinr without points: %d, want 400", code)
	}
	if code := post(`{"adjacency":[[1],[0]],"medium":"laser"}`); code != http.StatusBadRequest {
		t.Fatalf("unknown medium: %d, want 400", code)
	}
}

func TestTilingJob(t *testing.T) {
	// A tiled job (tiling=-1 auto-selects the tile count) runs end to
	// end, produces a proper complete coloring, and matches the direct
	// library call with the same options bit-for-bit. (Tiling relabels
	// node ids internally, so a tiled outcome is deterministic for its
	// options but not identical to the untiled run's — the bit-identity
	// pinned by the internal/radio differential suite is at fixed
	// labels.)
	_, ts := newTestServer(t, Config{Workers: 1})
	adj := ringAdjacency(64)
	_, st := submit(t, ts, JobRequest{Adjacency: adj, Seed: 11, Tiling: -1})
	fin := waitTerminal(t, ts, st.ID)
	if fin.State != StateDone || fin.Outcome == nil {
		t.Fatalf("tiled job: state = %s (err %q)", fin.State, fin.Error)
	}
	if !fin.Outcome.Proper || !fin.Outcome.Complete {
		t.Fatalf("tiled job outcome not a proper complete coloring: %+v", fin.Outcome)
	}
	direct, err := radiocolor.ColorGraphContext(context.Background(), adj,
		radiocolor.Options{Seed: 11, Tiling: -1})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(fin.Outcome)
	want, _ := json.Marshal(direct)
	if !bytes.Equal(got, want) {
		t.Fatalf("tiled job outcome differs from tiled direct call:\n served: %s\n direct: %s", got, want)
	}

	// An invalid tiling value is rejected at submission.
	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"adjacency":[[1],[0]],"tiling":-2}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tiling=-2: %d, want 400", resp.StatusCode)
	}
}
