package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Point{1, 2}
	q := Point{3, -1}
	if got := p.Add(q); got != (Point{4, 1}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 1 {
		t.Errorf("Dot = %v", got)
	}
	if got := p.Cross(q); got != -7 {
		t.Errorf("Cross = %v", got)
	}
}

func TestDistMatchesDist2(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := Point{r.Float64() * 10, r.Float64() * 10}
		q := Point{r.Float64() * 10, r.Float64() * 10}
		d := p.Dist(q)
		if math.Abs(d*d-p.Dist2(q)) > 1e-9 {
			t.Fatalf("Dist²(%v,%v) mismatch: %v vs %v", p, q, d*d, p.Dist2(q))
		}
	}
}

func TestMetricsAxioms(t *testing.T) {
	metrics := []Metric{
		Euclidean{},
		Manhattan{},
		Chebyshev{},
		SnappedMetric{Base: Euclidean{}, Step: 0.25},
		HubMetric{Hub: Point{5, 5}, Factor: 0.3},
	}
	r := rand.New(rand.NewSource(2))
	pts := make([]Point, 40)
	for i := range pts {
		pts[i] = Point{r.Float64() * 10, r.Float64() * 10}
	}
	for _, m := range metrics {
		for i := range pts {
			if d := m.Dist(pts[i], pts[i]); d != 0 {
				t.Errorf("%s: d(p,p)=%v, want 0", m.Name(), d)
			}
			for j := range pts {
				dij := m.Dist(pts[i], pts[j])
				dji := m.Dist(pts[j], pts[i])
				if math.Abs(dij-dji) > 1e-9 {
					t.Errorf("%s: asymmetric %v vs %v", m.Name(), dij, dji)
				}
				if i != j && dij <= 0 {
					t.Errorf("%s: non-positive distance %v between distinct points", m.Name(), dij)
				}
				for k := range pts {
					if m.Dist(pts[i], pts[k]) > dij+m.Dist(pts[j], pts[k])+1e-9 {
						t.Errorf("%s: triangle inequality violated at (%d,%d,%d)", m.Name(), i, j, k)
					}
				}
			}
		}
	}
}

func TestSnappedMetricQuantizes(t *testing.T) {
	m := SnappedMetric{Base: Euclidean{}, Step: 0.5}
	d := m.Dist(Point{0, 0}, Point{0.3, 0})
	if d != 0.5 {
		t.Errorf("snapped distance = %v, want 0.5", d)
	}
	d = m.Dist(Point{0, 0}, Point{0.5, 0})
	if d != 0.5 {
		t.Errorf("snapped distance = %v, want 0.5", d)
	}
}

func TestHubShortcut(t *testing.T) {
	m := HubMetric{Hub: Point{5, 0}, Factor: 0.1}
	a := Point{0, 0}
	b := Point{10, 0}
	d := m.Dist(a, b)
	want := 0.1 * (5 + 5) // ride through the hub
	if math.Abs(d-want) > 1e-9 {
		t.Errorf("hub distance = %v, want %v", d, want)
	}
	// Short hops should not use the hub.
	c := Point{0.2, 0}
	if got := m.Dist(a, c); math.Abs(got-0.2) > 1e-9 {
		t.Errorf("short hop = %v, want 0.2", got)
	}
}

func TestSegmentIntersects(t *testing.T) {
	cases := []struct {
		s, t Segment
		want bool
	}{
		{Segment{Point{0, 0}, Point{2, 2}}, Segment{Point{0, 2}, Point{2, 0}}, true},
		{Segment{Point{0, 0}, Point{1, 0}}, Segment{Point{2, 0}, Point{3, 0}}, false},
		{Segment{Point{0, 0}, Point{2, 0}}, Segment{Point{1, 0}, Point{3, 0}}, true}, // collinear overlap
		{Segment{Point{0, 0}, Point{1, 1}}, Segment{Point{1, 1}, Point{2, 0}}, true}, // shared endpoint
		{Segment{Point{0, 0}, Point{0, 1}}, Segment{Point{1, 0}, Point{1, 1}}, false},
		{Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{2, -1}, Point{2, 1}}, true},
		{Segment{Point{0, 0}, Point{4, 0}}, Segment{Point{2, 0.5}, Point{2, 1}}, false},
	}
	for i, c := range cases {
		if got := c.s.Intersects(c.t); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.t.Intersects(c.s); got != c.want {
			t.Errorf("case %d (swapped): Intersects = %v, want %v", i, got, c.want)
		}
	}
}

func TestObstaclesBlocked(t *testing.T) {
	o := &Obstacles{Walls: []Segment{{Point{1, -1}, Point{1, 1}}}}
	if !o.Blocked(Point{0, 0}, Point{2, 0}) {
		t.Error("link through wall should be blocked")
	}
	if o.Blocked(Point{0, 0}, Point{0.5, 0.5}) {
		t.Error("link clear of wall should not be blocked")
	}
	var nilObs *Obstacles
	if nilObs.Blocked(Point{0, 0}, Point{1, 1}) {
		t.Error("nil obstacles must block nothing")
	}
	if nilObs.Count() != 0 {
		t.Error("nil obstacles count should be 0")
	}
	if o.Count() != 1 {
		t.Errorf("Count = %d, want 1", o.Count())
	}
}

func TestRect(t *testing.T) {
	r := Rect{0, 0, 4, 2}
	if !r.Contains(Point{1, 1}) || r.Contains(Point{5, 1}) {
		t.Error("Contains misclassifies")
	}
	if r.Width() != 4 || r.Height() != 2 || r.Area() != 8 {
		t.Errorf("dims wrong: %v %v %v", r.Width(), r.Height(), r.Area())
	}
}

// TestGridNeighborsMatchesBruteForce cross-checks the spatial hash against
// an O(n²) scan.
func TestGridNeighborsMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	pts := make([]Point, 300)
	for i := range pts {
		pts[i] = Point{r.Float64() * 5, r.Float64() * 5}
	}
	const radius = 1.0
	g := NewGrid(pts, radius)
	for i := range pts {
		got := g.Neighbors(i, radius, nil)
		seen := make(map[int]bool, len(got))
		for _, j := range got {
			if seen[j] {
				t.Fatalf("duplicate neighbor %d for %d", j, i)
			}
			seen[j] = true
		}
		for j := range pts {
			within := i != j && pts[i].Dist(pts[j]) <= radius
			if within != seen[j] {
				t.Fatalf("point %d neighbor %d: grid=%v brute=%v", i, j, seen[j], within)
			}
		}
	}
}

func TestGridCandidatePairsCoverage(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	pts := make([]Point, 200)
	for i := range pts {
		pts[i] = Point{r.Float64() * 3, r.Float64() * 3}
	}
	const radius = 0.8
	g := NewGrid(pts, radius)
	count := make(map[[2]int]int)
	g.CandidatePairs(func(i, j int) {
		if i >= j {
			t.Fatalf("pair not ordered: (%d,%d)", i, j)
		}
		count[[2]int{i, j}]++
	})
	for pair, c := range count {
		if c != 1 {
			t.Fatalf("pair %v visited %d times", pair, c)
		}
	}
	// Every within-radius pair must be a candidate.
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Dist(pts[j]) <= radius && count[[2]int{i, j}] == 0 {
				t.Fatalf("close pair (%d,%d) missed", i, j)
			}
		}
	}
}

func TestGridPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive cell size")
		}
	}()
	NewGrid(nil, 0)
}

func TestGridRadiusPanic(t *testing.T) {
	g := NewGrid([]Point{{0, 0}, {1, 1}}, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for radius > cell size")
		}
	}()
	g.Neighbors(0, 2, nil)
}

func TestGridLen(t *testing.T) {
	g := NewGrid([]Point{{0, 0}, {1, 1}, {2, 2}}, 1)
	if g.Len() != 3 {
		t.Errorf("Len = %d, want 3", g.Len())
	}
}

// Property: segment intersection is symmetric.
func TestQuickIntersectSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		s := Segment{Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}}
		u := Segment{Point{float64(cx), float64(cy)}, Point{float64(dx), float64(dy)}}
		return s.Intersects(u) == u.Intersects(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a segment always intersects itself and shares endpoints.
func TestQuickIntersectSelf(t *testing.T) {
	f := func(ax, ay, bx, by int8) bool {
		s := Segment{Point{float64(ax), float64(ay)}, Point{float64(bx), float64(by)}}
		return s.Intersects(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringersAndLength(t *testing.T) {
	if (Point{1, 2}).String() == "" {
		t.Error("Point.String empty")
	}
	for _, m := range []Metric{
		Euclidean{}, Manhattan{}, Chebyshev{},
		SnappedMetric{Base: Euclidean{}, Step: 0.5},
		HubMetric{Hub: Point{1, 1}, Factor: 0.5},
	} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
	s := Segment{Point{0, 0}, Point{3, 4}}
	if s.Length() != 5 {
		t.Errorf("Length = %v", s.Length())
	}
}
