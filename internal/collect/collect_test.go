package collect

import (
	"strings"
	"testing"

	"radiocolor/internal/graph"
	"radiocolor/internal/sched"
	"radiocolor/internal/topology"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Build()
}

func TestTree(t *testing.T) {
	g := pathGraph(5)
	parent := Tree(g, 0)
	want := []int32{-1, 0, 1, 2, 3}
	for i := range want {
		if parent[i] != want[i] {
			t.Fatalf("parent = %v", parent)
		}
	}
	// Disconnected nodes get -2.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	parent = Tree(b.Build(), 0)
	if parent[2] != -2 {
		t.Errorf("unreachable marker = %d", parent[2])
	}
}

func TestRunValidation(t *testing.T) {
	g := pathGraph(3)
	s, _ := sched.FromColoring([]int32{0, 1, 0})
	if _, err := Run(g, s, Config{Sink: 9}); err == nil {
		t.Error("bad sink accepted")
	}
	bad, _ := sched.FromColoring([]int32{0, 1})
	if _, err := Run(g, bad, Config{Sink: 0}); err == nil {
		t.Error("schedule size mismatch accepted")
	}
	// Unreachable node.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	s3, _ := sched.FromColoring([]int32{0, 1, 0})
	if _, err := Run(b.Build(), s3, Config{Sink: 0}); err == nil {
		t.Error("disconnected deployment accepted")
	}
}

func TestPathCollectionDeliversEverything(t *testing.T) {
	// A path with a distance-2 coloring has zero hidden terminals:
	// everything must arrive.
	g := pathGraph(6)
	colors := g.Square().GreedyColoring()
	s, err := sched.FromColoring(colors)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(g, s, Config{Sink: 0, PacketsPerNode: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generated != 15 { // 5 non-sink nodes × 3
		t.Errorf("generated = %d", stats.Generated)
	}
	if stats.Delivered != stats.Generated || stats.Stranded != 0 || stats.Dropped != 0 {
		t.Errorf("stats = %v", stats)
	}
	if stats.Retransmissions != 0 {
		t.Errorf("distance-2 schedule caused %d retransmissions", stats.Retransmissions)
	}
	if stats.MeanLatency <= 0 {
		t.Errorf("latency = %v", stats.MeanLatency)
	}
	if !strings.Contains(stats.String(), "delivered=15") {
		t.Errorf("String() = %q", stats.String())
	}
}

func TestOneHopColoringLosesToHiddenTerminalsButRetries(t *testing.T) {
	// Star-of-paths: two branch nodes share a color under a 1-hop
	// coloring and both forward to the hub — a hidden-terminal pair.
	// With retries the frames budget still delivers everything
	// eventually... except that two always-backlogged same-slot senders
	// collide forever. With staggered generation (1 packet each), the
	// second frame drains one side.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	g := b.Build()
	s, _ := sched.FromColoring([]int32{0, 1, 1}) // proper 1-hop, hidden pair
	// With full persistence, both transmit in the same slot every frame
	// while backlogged: a permanent collision — the pathology that
	// p-persistence (or a distance-2 coloring) removes.
	stats, err := Run(g, s, Config{Sink: 0, PacketsPerNode: 1, Frames: 10, Persistence: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Generated != 2 {
		t.Fatalf("generated = %d", stats.Generated)
	}
	if stats.Delivered != 0 || stats.Retransmissions == 0 {
		t.Errorf("expected standing collision: %v", stats)
	}
	// Default 0.75-persistence breaks the symmetry and drains the queues.
	statsP, err := Run(g, s, Config{Sink: 0, PacketsPerNode: 1, Frames: 40})
	if err != nil {
		t.Fatal(err)
	}
	if statsP.Delivered != 2 {
		t.Errorf("p-persistence failed to break the collision: %v", statsP)
	}
	// The same workload under a distance-2 coloring drains fully.
	s2, _ := sched.FromColoring(g.Square().GreedyColoring())
	stats2, err := Run(g, s2, Config{Sink: 0, PacketsPerNode: 1, Frames: 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Delivered != 2 || stats2.Retransmissions != 0 {
		t.Errorf("distance-2 collection: %v", stats2)
	}
}

func TestQueueCapDrops(t *testing.T) {
	// Queue capacity 1 on a path funnels everything through node 1 and
	// must drop overflow rather than grow unboundedly.
	g := pathGraph(4)
	s, _ := sched.FromColoring(g.Square().GreedyColoring())
	stats, err := Run(g, s, Config{Sink: 0, PacketsPerNode: 4, QueueCap: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped == 0 {
		t.Errorf("no drops despite QueueCap=1: %v", stats)
	}
	if stats.Delivered+stats.Dropped+stats.Stranded != stats.Generated {
		t.Errorf("packet conservation violated: %v", stats)
	}
}

func TestCollectionOnRealColoring(t *testing.T) {
	// End-to-end: UDG → protocol-quality coloring (greedy stands in for
	// speed) → TDMA → convergecast. Delivery must dominate.
	d := topology.RandomUDG(topology.UDGConfig{N: 80, Side: 5, Radius: 1.3, Seed: 3})
	if !d.G.Connected() {
		t.Skip("disconnected sample")
	}
	s, err := sched.FromColoring(d.G.GreedyColoring())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Run(d.G, s, Config{Sink: 0, PacketsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DeliveryRate() < 0.9 {
		t.Errorf("delivery rate %.2f too low: %v", stats.DeliveryRate(), stats)
	}
	if stats.Delivered+stats.Dropped+stats.Stranded != stats.Generated {
		t.Errorf("packet conservation violated: %v", stats)
	}
}

func TestDeliveryRateEmpty(t *testing.T) {
	if (Stats{}).DeliveryRate() != 1 {
		t.Error("empty delivery rate should be 1")
	}
}
