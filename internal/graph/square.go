package graph

// Square returns G²: the graph on the same vertices with an edge between
// any two distinct vertices within distance ≤ 2 in g.
//
// The paper's introduction discusses that an entirely collision-free
// TDMA schedule is typically argued to need a coloring of the *square*
// of the graph (distance-2 coloring) [2,12,27]. Running the coloring
// algorithm on Square(g) — with the radio simulation still executing on
// g — yields exactly that: nodes two hops apart receive distinct colors,
// eliminating hidden-terminal collisions entirely (at the price of more
// colors). The distance-2 experiment (E13) quantifies the trade-off.
func (g *Graph) Square() *Graph {
	b := NewBuilder(g.n)
	seen := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		// Mark the 2-hop neighborhood of v and add edges v→u for u > v.
		var marked []int32
		mark := func(u int32) {
			if u != int32(v) && !seen[u] {
				seen[u] = true
				marked = append(marked, u)
			}
		}
		for _, u := range g.adj[v] {
			mark(u)
			for _, w := range g.adj[u] {
				mark(w)
			}
		}
		for _, u := range marked {
			seen[u] = false
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}

// Power returns G^k: edges between vertices within graph distance ≤ k.
// Power(1) copies the graph; Power(2) equals Square.
func (g *Graph) Power(k int) *Graph {
	if k < 1 {
		panic("graph: power requires k ≥ 1")
	}
	b := NewBuilder(g.n)
	for v := 0; v < g.n; v++ {
		for _, u := range g.KHop(v, k) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}
