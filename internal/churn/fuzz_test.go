package churn

import (
	"reflect"
	"testing"
)

// FuzzParseSchedule checks that the parser never panics, that whatever
// it accepts passes structural validation, and that String round-trips
// through a second parse.
func FuzzParseSchedule(f *testing.F) {
	f.Add("")
	f.Add("leave=3@500")
	f.Add("join=12@200,leave=12@900,repair=retract")
	f.Add("move=7@1000:2.5:3.5,move=7@2000:0:0,every=32")
	f.Add("seed=42,join=0@1")
	f.Add("join=1@5,leave=2@3,repair=none")
	f.Add("move=1@5:NaN:2")
	f.Add("leave=1@5,leave=1@9")
	f.Add("join=,@@")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := ParseSchedule(src)
		if err != nil {
			return
		}
		if err := s.Validate(0); err != nil {
			t.Fatalf("accepted schedule fails Validate: %v", err)
		}
		s2, err := ParseSchedule(s.String())
		if err != nil {
			t.Fatalf("String() output %q does not reparse: %v", s.String(), err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("round trip mismatch: %+v vs %+v", s, s2)
		}
	})
}
