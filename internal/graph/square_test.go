package graph

import (
	"testing"
	"testing/quick"
)

func TestSquarePath(t *testing.T) {
	g := path(5) // 0-1-2-3-4
	sq := g.Square()
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}
	if sq.M() != len(wantEdges) {
		t.Fatalf("M = %d, want %d", sq.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !sq.HasEdge(e[0], e[1]) {
			t.Errorf("missing edge %v", e)
		}
	}
	if sq.HasEdge(0, 3) || sq.HasEdge(0, 4) {
		t.Error("distance-3 edge present")
	}
}

func TestSquareMatchesTwoHop(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		g := randomGraph(40, 0.08, seed)
		sq := g.Square()
		for v := 0; v < g.N(); v++ {
			within := make(map[int32]bool)
			for _, u := range g.TwoHop(v) {
				if u != int32(v) {
					within[u] = true
				}
			}
			for u := 0; u < g.N(); u++ {
				if sq.HasEdge(v, u) != within[int32(u)] {
					t.Fatalf("seed %d: square edge (%d,%d)=%v, two-hop=%v",
						seed, v, u, sq.HasEdge(v, u), within[int32(u)])
				}
			}
		}
	}
}

func TestPower(t *testing.T) {
	g := path(6)
	if p1 := g.Power(1); p1.M() != g.M() {
		t.Errorf("Power(1) M = %d, want %d", p1.M(), g.M())
	}
	p2 := g.Power(2)
	sq := g.Square()
	if p2.M() != sq.M() {
		t.Errorf("Power(2) M = %d, Square M = %d", p2.M(), sq.M())
	}
	p5 := g.Power(5)
	if p5.M() != 6*5/2 {
		t.Errorf("Power(5) of P6 should be complete: M = %d", p5.M())
	}
}

func TestPowerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	path(3).Power(0)
}

func TestSquareOfCliqueIsClique(t *testing.T) {
	g := complete(7)
	sq := g.Square()
	if sq.M() != g.M() {
		t.Errorf("square of clique changed: %d vs %d", sq.M(), g.M())
	}
}

func TestSquareEmptyAndSingleton(t *testing.T) {
	if NewBuilder(0).Build().Square().N() != 0 {
		t.Error("empty square broken")
	}
	if NewBuilder(1).Build().Square().M() != 0 {
		t.Error("singleton square has edges")
	}
}

// Property: the square's max degree is at most κ₂·Δ of the base graph
// (Lemma 1: every node has at most κ₂Δ 2-hop neighbors).
func TestQuickSquareDegreeBound(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(25, 0.12, seed)
		k := g.Kappa(KappaOptions{Budget: 100_000})
		bound := k.K2 * g.MaxDegree()
		return g.Square().MaxDegree() <= bound+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
