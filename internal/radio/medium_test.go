package radio

import (
	"math"
	"reflect"
	"testing"

	"radiocolor/internal/fault"
	"radiocolor/internal/geom"
	"radiocolor/internal/graph"
	"radiocolor/internal/medium"
)

// bindGraphMedium binds the explicit graph-rule medium over cfg's graph.
func bindGraphMedium(t *testing.T, cfg *Config) {
	t.Helper()
	csr := cfg.G.CSR()
	inst, err := (medium.GraphThreshold{}).Bind(medium.Env{
		N: cfg.G.N(), Offsets: csr.Offsets, Edges: csr.Edges,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Medium = inst
}

// randCfg builds the standard random-traffic network of the
// determinism tests, returning the per-node protocols for state
// comparison.
func randCfg(workers int) ([]*randProto, Config) {
	g := line(40)
	protos := make([]Protocol, g.N())
	rps := make([]*randProto, g.N())
	for i := range protos {
		rps[i] = &randProto{id: NodeID(i), rng: NodeRand(1234, NodeID(i)), p: 0.2, limit: 400}
		protos[i] = rps[i]
	}
	return rps, Config{
		G: g, Protocols: protos, Wake: WakeUniform(g.N(), 30, 6),
		MaxSlots: 600, Workers: workers,
	}
}

// TestGraphMediumMatchesBuiltin is the seam's differential contract:
// routing the paper's reception rule through the pluggable medium must
// reproduce the built-in fast path bit for bit, at any worker count.
func TestGraphMediumMatchesBuiltin(t *testing.T) {
	type run struct {
		res *Result
		rx  []int64
	}
	exec := func(workers int, plug bool) run {
		rps, cfg := randCfg(workers)
		if plug {
			bindGraphMedium(t, &cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rx := make([]int64, len(rps))
		for i, p := range rps {
			rx[i] = p.rxSum
		}
		return run{res, rx}
	}
	base := exec(1, false)
	for _, workers := range []int{1, 4} {
		got := exec(workers, true)
		if !reflect.DeepEqual(got.res, base.res) {
			t.Errorf("workers=%d: graph medium diverges from builtin:\n medium : %+v\n builtin: %+v",
				workers, got.res, base.res)
		}
		if !reflect.DeepEqual(got.rx, base.rx) {
			t.Errorf("workers=%d: per-node reception state diverges", workers)
		}
	}
}

// TestGraphMediumMatchesBuiltinWithFaults extends the differential to
// fault composition: loss, jam and crash must hit the medium path and
// the builtin path identically.
func TestGraphMediumMatchesBuiltinWithFaults(t *testing.T) {
	prof := &fault.Profile{
		Loss:    0.1,
		Crashes: []fault.Crash{{Node: 3, At: 100}, {Node: 20, At: 50}},
		Jammers: []fault.Jammer{{From: 80, Until: 160, Nodes: []int{10, 11, 12}}},
		Seed:    7,
	}
	exec := func(workers int, plug bool) *Result {
		_, cfg := randCfg(workers)
		inj, err := prof.Compile(cfg.G.N())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Faults = inj
		if plug {
			bindGraphMedium(t, &cfg)
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := exec(1, false)
	if base.Lost == 0 {
		t.Fatal("fault profile inert; the differential proves nothing")
	}
	for _, workers := range []int{1, 4} {
		if got := exec(workers, true); !reflect.DeepEqual(got, base) {
			t.Errorf("workers=%d: faulted graph medium diverges from builtin:\n medium : %+v\n builtin: %+v",
				workers, got, base)
		}
	}
}

// beaconProto transmits a preallocated message every slot — traffic
// through the full resolve/deliver path with zero protocol-side
// allocation, so AllocsPerRun isolates the engine's own cost.
type beaconProto struct {
	msg  *testMsg
	beat int
	mod  int
}

func (b *beaconProto) Start(int64) {}
func (b *beaconProto) Send(int64) Message {
	b.beat++
	if b.beat%b.mod == 0 {
		return b.msg
	}
	return nil
}
func (b *beaconProto) Recv(int64, Message) {}
func (b *beaconProto) Done() bool          { return false }

// TestMediumUnsetZeroAllocWithTraffic pins the tentpole's no-regression
// contract from the transmitting side: with Config.Medium nil the
// engine's resolve and deliver phases allocate nothing per slot even
// under live traffic (TestDisabledSeamZeroAlloc covers the idle case).
func TestMediumUnsetZeroAllocWithTraffic(t *testing.T) {
	n := 32
	protos := make([]Protocol, n)
	for i := range protos {
		protos[i] = &beaconProto{msg: &testMsg{from: NodeID(i)}, mod: 2 + i%5}
	}
	e, err := NewEngine(Config{
		G: line(n), Protocols: protos, Wake: WakeSynchronous(n), MaxSlots: 1 << 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	e.Step()
	if allocs := testing.AllocsPerRun(500, func() { e.Step() }); allocs != 0 {
		t.Errorf("nil-medium engine allocates %v per slot under traffic, want 0", allocs)
	}
}

// grid returns n points on a unit-spaced grid plus the UDG graph that
// connects points within the given radius.
func sinrDeployment(n int, radius float64) ([]geom.Point, Config) {
	side := int(math.Ceil(math.Sqrt(float64(n))))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: float64(i%side) * 0.8, Y: float64(i/side) * 0.8}
	}
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pts[i].Dist2(pts[j]) <= radius*radius {
				b.AddEdge(i, j)
			}
		}
	}
	g := b.Build()
	protos := make([]Protocol, n)
	rps := make([]*randProto, n)
	for i := range protos {
		rps[i] = &randProto{id: NodeID(i), rng: NodeRand(99, NodeID(i)), p: 0.15, limit: 300}
		protos[i] = rps[i]
	}
	return pts, Config{
		G: g, Protocols: protos, Wake: WakeUniform(n, 40, 3), MaxSlots: 500,
	}
}

// TestSINRDeterministicAcrossWorkers: the SINR medium accumulates
// floating-point sums, so the engine guarantees it an ascending
// transmitter list regardless of worker count — results must be
// bit-identical between sequential and parallel send phases.
func TestSINRDeterministicAcrossWorkers(t *testing.T) {
	exec := func(workers int) *Result {
		pts, cfg := sinrDeployment(36, 1.0)
		cfg.Workers = workers
		m := medium.SINR{Alpha: 4, Beta: 1.5,
			NoiseDBM: medium.MatchedNoiseDBM(0, 1.5, 4, 1.0)}
		inst, err := m.Bind(medium.Env{N: cfg.G.N(), Points: pts})
		if err != nil {
			t.Fatal(err)
		}
		cfg.Medium = inst
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq := exec(1)
	if seq.Deliveries == 0 {
		t.Fatal("sinr run delivered nothing; determinism check is vacuous")
	}
	if par := exec(4); !reflect.DeepEqual(seq, par) {
		t.Errorf("sinr diverges across workers:\n 1: %+v\n 4: %+v", seq, par)
	}
}

// TestMediumNodeCountMismatch: an instance bound for the wrong node
// count must be rejected at engine construction, not fail mid-run.
func TestMediumNodeCountMismatch(t *testing.T) {
	g := line(5)
	other := line(7).CSR()
	inst, err := (medium.GraphThreshold{}).Bind(medium.Env{N: 7, Offsets: other.Offsets, Edges: other.Edges})
	if err != nil {
		t.Fatal(err)
	}
	protos := make([]Protocol, 5)
	for i := range protos {
		protos[i] = idleProto{}
	}
	_, err = NewEngine(Config{G: g, Protocols: protos, Wake: WakeSynchronous(5), Medium: inst})
	if err == nil {
		t.Error("engine accepted a medium bound for a different node count")
	}
}

// TestMediumRejectedOffSeamEngines: the reference engine and the
// half-slot (skew) engine have no medium seam and must say so.
func TestMediumRejectedOffSeamEngines(t *testing.T) {
	g := line(4)
	protos := make([]Protocol, 4)
	for i := range protos {
		protos[i] = idleProto{}
	}
	cfg := Config{G: g, Protocols: protos, Wake: WakeSynchronous(4), MaxSlots: 10}
	bindGraphMedium(t, &cfg)
	if _, err := NewReferenceEngine(cfg); err == nil {
		t.Error("reference engine accepted a medium")
	}
	if _, err := RunUnaligned(cfg, nil); err == nil {
		t.Error("RunUnaligned accepted a medium")
	}
}
