package radiocolor

import (
	"fmt"

	"radiocolor/internal/medium"
)

// MediumConfig selects the reception model a run simulates — the
// physical layer under the protocol. The default (Options.Medium nil)
// is the paper's rule, hard-coded on the engine's fast path: a listener
// receives iff exactly one graph neighbor transmits. The alternatives
// (see internal/medium for the model definitions):
//
//   - "graph": the same rule through the pluggable seam — semantically
//     identical to nil, useful only for differential testing;
//   - "sinr": the physical model — received power P·d^−α over the
//     nodes' positions, cumulative interference from every concurrent
//     transmitter, decode iff signal ≥ Beta·(noise + interference),
//     capture effect included. Requires a geometric entry point
//     (ColorUnitDisk); positions do not survive the adjacency-only
//     ones. Outcome.Stats then carries the drowned / below-noise loss
//     counters;
//   - "multichannel": Channels independent channels with per-slot
//     uniform random hopping; sender and receiver must coincide.
//
// Fault injection (Options.Faults) composes with every medium — crash
// faults silence nodes before the medium resolves a slot, jam/loss
// suppress individual receptions after — except clock skew, which needs
// the half-slot engine and is rejected together with a medium.
type MediumConfig struct {
	// Kind is "graph", "sinr" or "multichannel" ("" means "graph").
	Kind string
	// Alpha is the SINR path-loss exponent (0 = default 4).
	Alpha float64
	// Beta is the SINR decode threshold (0 = default 1.5).
	Beta float64
	// NoiseDBM is the SINR noise floor in dBm (0 = default −90; an
	// actual 0 dBm floor is out of the useful range anyway).
	NoiseDBM float64
	// PowerDBM is the uniform transmission power in dBm (default 0).
	PowerDBM float64
	// Channels is the multichannel channel count (0 = default 2).
	Channels int
	// HopSeed drives the multichannel hopping schedule (0 = Options.Seed).
	HopSeed int64
}

// ParseMedium parses the compact medium syntax shared by
// cmd/colorsim -medium and the serve job API's "medium" field:
//
//	graph
//	sinr,alpha=4,beta=1.5,noise=-90,power=0
//	multichannel,k=4,hopseed=21
//
// Omitted keys take the defaults documented on MediumConfig. An empty
// string yields nil (the engine's built-in default path).
func ParseMedium(s string) (*MediumConfig, error) {
	sp, err := medium.ParseSpec(s)
	if err != nil {
		return nil, fmt.Errorf("radiocolor: %w", err)
	}
	if sp == nil {
		return nil, nil
	}
	return &MediumConfig{
		Kind:     sp.Kind,
		Alpha:    sp.Alpha,
		Beta:     sp.Beta,
		NoiseDBM: sp.NoiseDBM,
		PowerDBM: sp.PowerDBM,
		Channels: sp.Channels,
		HopSeed:  sp.HopSeed,
	}, nil
}

// String renders the config in ParseMedium's syntax.
func (m *MediumConfig) String() string { return m.spec().String() }

// spec converts to the internal representation (defaults applied).
func (m *MediumConfig) spec() medium.Spec {
	if m == nil {
		return medium.Spec{}
	}
	return medium.Spec{
		Kind:     m.Kind,
		Alpha:    m.Alpha,
		Beta:     m.Beta,
		NoiseDBM: m.NoiseDBM,
		PowerDBM: m.PowerDBM,
		Channels: m.Channels,
		HopSeed:  m.HopSeed,
	}.Normalized()
}
