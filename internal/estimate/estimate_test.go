package estimate

import (
	"testing"

	"radiocolor/internal/core"
	"radiocolor/internal/graph"
	"radiocolor/internal/radio"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func TestConfigNormalization(t *testing.T) {
	c := (Config{}).normalized()
	if c.N < 2 || c.Kappa1 < 1 || c.Kappa2 <= c.Kappa1-1 || c.Rounds < 2 ||
		c.RoundSlots < 8 || c.SpreadSlots < 8 || c.SafetyFactor < 1 || c.Scale != 1 {
		t.Errorf("normalized = %+v", c)
	}
	d := DefaultConfig(256, 4, 9)
	if d.Rounds < 8 || d.RoundSlots < 100 {
		t.Errorf("default config too small: %+v", d)
	}
}

func TestMessageBits(t *testing.T) {
	p := &MsgProbe{From: 3}
	e := &MsgEstimate{From: 3, Hop: 2, Est: 17}
	if p.Sender() != 3 || e.Sender() != 3 {
		t.Error("senders wrong")
	}
	if p.Bits(1000) <= 0 || e.Bits(1000) <= p.Bits(1000) {
		t.Errorf("bits: probe=%d est=%d", p.Bits(1000), e.Bits(1000))
	}
	if p.Bits(0) <= 0 {
		t.Error("Bits(0) non-positive")
	}
}

// runAdaptive executes the adaptive pipeline on a deployment.
func runAdaptive(t *testing.T, d *topology.Deployment, seed int64) ([]*AdaptiveNode, *radio.Result) {
	t.Helper()
	k := d.G.Kappa(graph.KappaOptions{Budget: 150_000, MaxNeighborhood: 140})
	cfg := DefaultConfig(d.N(), k.K1, k.K2)
	nodes, protos := AdaptiveNodes(d.N(), seed, cfg, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 20_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nodes, res
}

func TestDegreeEstimateAccuracy(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 120, Side: 6, Radius: 1.3, Seed: 3})
	nodes, res := runAdaptive(t, d, 7)
	if !res.AllDone {
		t.Fatal("adaptive run incomplete")
	}
	// Estimates must be positive and within a generous factor of the
	// true degree: the capture curve is flat near the peak, so allow
	// [δ/4, 8δ].
	low, high := 0, 0
	for v, node := range nodes {
		est := int(node.DeltaEstimate())
		deg := d.G.Degree(v)
		if est < 2 {
			t.Fatalf("node %d estimate %d", v, est)
		}
		if est*4 < deg {
			low++
		}
		if est > deg*8 {
			high++
		}
	}
	if low > d.N()/10 {
		t.Errorf("%d/%d estimates badly low", low, d.N())
	}
	if high > d.N()/10 {
		t.Errorf("%d/%d estimates badly high", high, d.N())
	}
}

func TestAdaptiveColoringCorrect(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 100, Side: 6, Radius: 1.2, Seed: 5})
	nodes, res := runAdaptive(t, d, 11)
	if !res.AllDone {
		t.Fatal("adaptive run incomplete")
	}
	colors := make([]int32, d.N())
	for i, v := range nodes {
		colors[i] = v.Color()
	}
	rep := verify.Check(d.G, colors)
	if !rep.OK() {
		t.Fatalf("adaptive coloring bad: %v", rep)
	}
	// The Δ each node used must be at least its own true degree —
	// otherwise palettes could be too small — for the vast majority of
	// nodes (the safety factor covers estimation noise).
	under := 0
	for v, node := range nodes {
		if node.DeltaUsed() < d.G.Degree(v) {
			under++
		}
	}
	if under > d.N()/10 {
		t.Errorf("%d/%d nodes used Δ below their true degree", under, d.N())
	}
}

func TestAdaptiveSparseFasterThanDense(t *testing.T) {
	// The point of local estimates (Sect. 6): sparse regions do not pay
	// for the dense core's Δ. Compare the waiting thresholds actually
	// used in a clustered deployment.
	d := topology.ClusteredUDG(60, 60, 16, 1.0, 9)
	nodes, res := runAdaptive(t, d, 13)
	if !res.AllDone {
		t.Fatal("adaptive run incomplete")
	}
	coreSum, fringeSum := 0, 0
	for v, node := range nodes {
		if v < 60 {
			coreSum += node.DeltaUsed()
		} else {
			fringeSum += node.DeltaUsed()
		}
	}
	if coreSum <= fringeSum {
		t.Errorf("dense core used ΣΔ=%d, fringe ΣΔ=%d: estimates not local", coreSum, fringeSum)
	}
}

func TestAdaptiveLoneNode(t *testing.T) {
	d := &topology.Deployment{Name: "lone", G: graph.NewBuilder(1).Build()}
	cfg := DefaultConfig(1, 1, 2)
	nodes, protos := AdaptiveNodes(1, 3, cfg, core.Ablation{})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: protos, Wake: radio.WakeSynchronous(1), MaxSlots: 5_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDone || nodes[0].Color() != 0 {
		t.Fatalf("lone adaptive node: done=%v color=%d", res.AllDone, nodes[0].Color())
	}
	if nodes[0].DeltaEstimate() != 2 {
		t.Errorf("lone estimate = %d, want clamped 2", nodes[0].DeltaEstimate())
	}
}

func TestAdaptiveAccessorsBeforeRun(t *testing.T) {
	v := NewAdaptive(0, radio.NodeRand(1, 0), DefaultConfig(64, 4, 9), core.Ablation{})
	if v.Color() != -1 || v.Done() || v.Inner() != nil || v.DeltaUsed() != 0 {
		t.Error("pre-run accessors wrong")
	}
	v.Start(0)
	if v.Send(0) == nil {
		// Round 0 transmits with probability 1: a nil here is a bug.
		t.Error("round-0 probe must always transmit")
	}
}

func TestAdaptiveDeterministic(t *testing.T) {
	d := topology.RandomUDG(topology.UDGConfig{N: 60, Side: 5, Radius: 1.2, Seed: 2})
	a, _ := runAdaptive(t, d, 21)
	b, _ := runAdaptive(t, d, 21)
	for i := range a {
		if a[i].Color() != b[i].Color() || a[i].DeltaUsed() != b[i].DeltaUsed() {
			t.Fatalf("node %d differs across identical runs", i)
		}
	}
}
