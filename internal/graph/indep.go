package graph

import "math/bits"

// This file implements the independence machinery behind the bounded
// independence graph (BIG) model of Sect. 2: exact and approximate
// maximum-independent-set computations restricted to 1-hop and 2-hop
// neighborhoods, yielding the parameters κ₁ and κ₂ that drive both the
// algorithm (sending probabilities, color spacing) and the analysis.

// bitset is a fixed-capacity set of small integers backed by words.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int)    { b[i/64] &^= 1 << (i % 64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

// andNot stores a &^ mask into dst (dst may alias a).
func (b bitset) andNot(mask bitset) bitset {
	c := make(bitset, len(b))
	for i := range b {
		c[i] = b[i] &^ mask[i]
	}
	return c
}

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

func (b bitset) empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// forEach calls fn for every member, in increasing order.
func (b bitset) forEach(fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := wi*64 + bits.TrailingZeros64(w)
			fn(i)
			w &= w - 1
		}
	}
}

// intersectCount returns |b ∩ mask|.
func (b bitset) intersectCount(mask bitset) int {
	total := 0
	for i := range b {
		total += bits.OnesCount64(b[i] & mask[i])
	}
	return total
}

// IsIndependent reports whether the given vertex set is pairwise
// non-adjacent in g. Duplicate entries are tolerated (a set semantics
// check); a vertex is never considered adjacent to itself.
func (g *Graph) IsIndependent(set []int32) bool {
	member := make(map[int32]bool, len(set))
	for _, v := range set {
		member[v] = true
	}
	for v := range member {
		for _, u := range g.adj[v] {
			if member[u] {
				return false
			}
		}
	}
	return true
}

// GreedyMIS returns a maximal independent set of g computed by the
// minimum-degree greedy heuristic: repeatedly take a remaining vertex of
// minimum remaining degree and discard its neighbors. The result is
// maximal (no vertex can be added) and therefore a lower bound on the
// maximum independent set and at least (n / Δ) in size.
func (g *Graph) GreedyMIS() []int32 {
	alive := make([]bool, g.n)
	deg := make([]int, g.n)
	remaining := g.n
	for v := 0; v < g.n; v++ {
		alive[v] = true
		deg[v] = len(g.adj[v])
	}
	var out []int32
	for remaining > 0 {
		best, bestDeg := -1, g.n+1
		for v := 0; v < g.n; v++ {
			if alive[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		out = append(out, int32(best))
		// Remove best and its alive neighbors, maintaining degrees.
		kill := []int32{int32(best)}
		for _, u := range g.adj[best] {
			if alive[u] {
				kill = append(kill, u)
			}
		}
		for _, v := range kill {
			if !alive[v] {
				continue
			}
			alive[v] = false
			remaining--
			for _, u := range g.adj[v] {
				if alive[u] {
					deg[u]--
				}
			}
		}
	}
	return out
}

// misSolver runs exact branch-and-bound maximum independent set on a
// small graph given as per-vertex neighbor bitsets. budget caps the
// number of explored search nodes; when exhausted the search stops and
// the best value found so far is returned with exact=false.
type misSolver struct {
	adj    []bitset
	best   int
	budget int
	exact  bool
}

// MaxIndependentSetSize computes the size of a maximum independent set of
// g by branch-and-bound, exploring at most budget search nodes (≤ 0 means
// a generous default). It returns the best size found and whether the
// search completed (and the value is therefore exact).
func (g *Graph) MaxIndependentSetSize(budget int) (size int, exact bool) {
	if budget <= 0 {
		budget = 2_000_000
	}
	adj := make([]bitset, g.n)
	for v := 0; v < g.n; v++ {
		adj[v] = newBitset(g.n)
		for _, u := range g.adj[v] {
			adj[v].set(int(u))
		}
	}
	s := &misSolver{adj: adj, budget: budget, exact: true}
	avail := newBitset(g.n)
	for v := 0; v < g.n; v++ {
		avail.set(v)
	}
	// Seed with the greedy solution so pruning bites immediately.
	s.best = len(g.GreedyMIS())
	s.search(avail, 0)
	return s.best, s.exact
}

func (s *misSolver) search(avail bitset, current int) {
	if s.budget <= 0 {
		s.exact = false
		return
	}
	s.budget--
	// Greedily absorb vertices of remaining degree ≤ 1: taking them is
	// always at least as good as any alternative (domination rule).
	for {
		progress := false
		done := false
		avail.forEach(func(v int) {
			if done {
				return
			}
			d := s.adj[v].intersectCount(avail)
			if d == 0 {
				current++
				avail.clear(v)
				progress = true
				return
			}
			if d == 1 {
				current++
				avail = avail.andNot(s.adj[v])
				avail.clear(v)
				progress = true
				done = true // bitset replaced; restart iteration
			}
		})
		if !progress {
			break
		}
	}
	if current > s.best {
		s.best = current
	}
	rem := avail.count()
	if rem == 0 || current+rem <= s.best {
		return
	}
	// Branch on a vertex of maximum remaining degree.
	pick, pickDeg := -1, -1
	avail.forEach(func(v int) {
		if d := s.adj[v].intersectCount(avail); d > pickDeg {
			pick, pickDeg = v, d
		}
	})
	// Include pick: drop its closed neighborhood.
	in := avail.andNot(s.adj[pick])
	in.clear(pick)
	s.search(in, current+1)
	// Exclude pick.
	ex := avail.clone()
	ex.clear(pick)
	s.search(ex, current)
}

// KappaOptions configures κ measurement.
type KappaOptions struct {
	// Budget caps branch-and-bound nodes per neighborhood (≤ 0: default).
	Budget int
	// MaxNeighborhood skips exact search for neighborhoods larger than
	// this many vertices and uses the greedy lower bound instead
	// (≤ 0: no limit).
	MaxNeighborhood int
}

// KappaResult reports measured bounded-independence parameters.
type KappaResult struct {
	// K1 and K2 are the measured κ₁ and κ₂: the largest independent set
	// found in any 1-hop / 2-hop neighborhood.
	K1, K2 int
	// Exact reports whether every neighborhood was solved exactly; when
	// false, K1/K2 are lower bounds.
	Exact bool
}

// Kappa measures κ₁ and κ₂ of g: the maximum, over all vertices v, of
// the maximum independent set size within N(v) and N²(v) respectively
// (Sect. 2). For typical wireless topologies the neighborhoods are small
// and dense and the exact search completes instantly; pathological cases
// degrade gracefully to greedy lower bounds via the options.
func (g *Graph) Kappa(opts KappaOptions) KappaResult {
	res := KappaResult{Exact: true}
	for v := 0; v < g.n; v++ {
		k1, e1 := g.neighborhoodMIS(g.Neighborhood(v), opts)
		if k1 > res.K1 {
			res.K1 = k1
		}
		k2, e2 := g.neighborhoodMIS(g.TwoHop(v), opts)
		if k2 > res.K2 {
			res.K2 = k2
		}
		res.Exact = res.Exact && e1 && e2
	}
	return res
}

func (g *Graph) neighborhoodMIS(vertices []int32, opts KappaOptions) (int, bool) {
	sub, _ := g.Induced(vertices)
	if opts.MaxNeighborhood > 0 && sub.N() > opts.MaxNeighborhood {
		return len(sub.GreedyMIS()), false
	}
	return sub.MaxIndependentSetSize(opts.Budget)
}
