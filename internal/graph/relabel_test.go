package graph

import (
	"math/rand"
	"testing"
)

// relabelChecksum folds a permutation's Forward map into one uint64 so
// golden tests can pin the whole map compactly (position-dependent, so
// any transposition changes the sum).
func relabelChecksum(p Permutation) uint64 {
	var h uint64 = 0x9E3779B97F4A7C15
	for i, v := range p.Forward {
		z := h ^ uint64(i)<<32 ^ uint64(uint32(v))
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		h = z ^ (z >> 31)
	}
	return h
}

func TestNewPermutationValidates(t *testing.T) {
	if _, err := NewPermutation([]int32{0, 2, 1}); err != nil {
		t.Fatalf("valid permutation rejected: %v", err)
	}
	if _, err := NewPermutation([]int32{0, 3, 1}); err == nil {
		t.Fatal("out-of-range image accepted")
	}
	if _, err := NewPermutation([]int32{0, 1, 1}); err == nil {
		t.Fatal("duplicate image accepted")
	}
	if _, err := NewPermutation([]int32{0, -1, 1}); err == nil {
		t.Fatal("negative image accepted")
	}
}

func TestIdentityPermutation(t *testing.T) {
	p := IdentityPermutation(5)
	for i := 0; i < 5; i++ {
		if p.Forward[i] != int32(i) || p.Inverse[i] != int32(i) {
			t.Fatalf("identity broken at %d: fwd=%d inv=%d", i, p.Forward[i], p.Inverse[i])
		}
	}
}

// TestApplyPreservesStructure checks that Apply produces a valid graph
// isomorphic to the input: (u,v) is an edge iff (Forward[u], Forward[v])
// is, and degrees carry over.
func TestApplyPreservesStructure(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.2 {
					b.AddEdge(i, j)
				}
			}
		}
		g := b.Build()
		fwd := make([]int32, n)
		for i, v := range r.Perm(n) {
			fwd[i] = int32(v)
		}
		p, err := NewPermutation(fwd)
		if err != nil {
			t.Fatal(err)
		}
		ng := p.Apply(g)
		if err := ng.Validate(); err != nil {
			t.Fatalf("trial %d: relabeled graph invalid: %v", trial, err)
		}
		if ng.M() != g.M() {
			t.Fatalf("trial %d: edge count changed: %d vs %d", trial, ng.M(), g.M())
		}
		for u := 0; u < n; u++ {
			if ng.Degree(int(p.Forward[u])) != g.Degree(u) {
				t.Fatalf("trial %d: degree of %d changed", trial, u)
			}
			for v := 0; v < n; v++ {
				if g.HasEdge(u, v) != ng.HasEdge(int(p.Forward[u]), int(p.Forward[v])) {
					t.Fatalf("trial %d: edge (%d,%d) not preserved", trial, u, v)
				}
			}
		}
	}
}

func TestPermutationInverseRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(100)
		fwd := make([]int32, n)
		for i, v := range r.Perm(n) {
			fwd[i] = int32(v)
		}
		p, err := NewPermutation(fwd)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			if p.Inverse[p.Forward[v]] != int32(v) {
				t.Fatalf("inverse∘forward != id at %d", v)
			}
			if p.Forward[p.Inverse[v]] != int32(v) {
				t.Fatalf("forward∘inverse != id at %d", v)
			}
		}
	}
}

// TestHilbertOrderGolden pins the Hilbert-curve permutation of the
// canonical 16×16 unit grid deployment (node id = row*16+col, X = col,
// Y = row, the layout topology.GridGraph produces). Like the
// multichannel hop goldens, this makes future curve or quantization
// tweaks deliberate: the tiled kernel's tile boundaries, the committed
// BENCH_kernel.json workload, and any saved relabeled artifacts all
// depend on this exact map.
func TestHilbertOrderGolden(t *testing.T) {
	const side = 16
	xs := make([]float64, side*side)
	ys := make([]float64, side*side)
	for row := 0; row < side; row++ {
		for col := 0; col < side; col++ {
			xs[row*side+col] = float64(col)
			ys[row*side+col] = float64(row)
		}
	}
	p := HilbertOrder(xs, ys)
	if _, err := NewPermutation(p.Forward); err != nil {
		t.Fatalf("Hilbert order is not a permutation: %v", err)
	}

	// First grid row (nodes 0..15): their ranks along the curve.
	wantRow0 := []int32{0, 1, 14, 15, 16, 19, 20, 21, 234, 235, 236, 239, 240, 241, 254, 255}
	for col, want := range wantRow0 {
		if got := p.Forward[col]; got != want {
			t.Fatalf("Forward[%d] = %d, want %d (full row: %v)", col, got, want, p.Forward[:side])
		}
	}
	const wantChecksum = uint64(0x90b6076395adbe9a)
	if got := relabelChecksum(p); got != wantChecksum {
		t.Fatalf("16×16 Hilbert permutation checksum = %#x, want %#x — the curve changed; if deliberate, update the golden and regenerate BENCH_kernel.json", got, wantChecksum)
	}

	// The defining locality property on the exact grid: consecutive
	// curve ranks are grid neighbors (Hilbert curves visit adjacent
	// cells), which is what puts CSR neighbor rows on hot cache lines.
	for rank := 1; rank < side*side; rank++ {
		a, b := p.Inverse[rank-1], p.Inverse[rank]
		ax, ay := int(a)%side, int(a)/side
		bx, by := int(b)%side, int(b)/side
		manhattan := abs(ax-bx) + abs(ay-by)
		if manhattan != 1 {
			t.Fatalf("curve jumps between ranks %d and %d: nodes (%d,%d) and (%d,%d)", rank-1, rank, ax, ay, bx, by)
		}
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func TestStripOrder(t *testing.T) {
	xs := []float64{3, 1, 2, 0, 2.5}
	ys := []float64{0.1, 0.2, 1.5, 1.6, 0.0}
	p := StripOrder(xs, ys, 1.0)
	// Strip 0 (y in [0,1)): nodes 4(x=2.5)? no: 1(x=1), 4(x=2.5), 0(x=3); strip 1: 3(x=0), 2(x=2).
	want := []int32{2, 0, 4, 3, 1} // Forward[old] = rank
	for old, rank := range want {
		if p.Forward[old] != rank {
			t.Fatalf("Forward = %v, want %v", p.Forward, want)
		}
	}
}

func TestBFSOrder(t *testing.T) {
	// Path 0-2-4 plus isolated 1, component {3,5}.
	b := NewBuilder(6)
	b.AddEdge(0, 2)
	b.AddEdge(2, 4)
	b.AddEdge(3, 5)
	g := b.Build()
	p := BFSOrder(g)
	if _, err := NewPermutation(p.Forward); err != nil {
		t.Fatalf("BFS order is not a permutation: %v", err)
	}
	// Visit order: 0, 2, 4 (component of 0), 1 (isolated), 3, 5.
	wantVisit := []int32{0, 2, 4, 1, 3, 5}
	for rank, old := range wantVisit {
		if p.Inverse[rank] != old {
			t.Fatalf("visit order = %v, want %v", p.Inverse, wantVisit)
		}
	}

	// Property: on a connected graph, every node's label is adjacent in
	// BFS layers — weaker but structural: the relabeled graph equals the
	// original up to iso (Apply already tested); here just determinism.
	q := BFSOrder(g)
	for i := range p.Forward {
		if p.Forward[i] != q.Forward[i] {
			t.Fatal("BFSOrder not deterministic")
		}
	}
}
