// Package radio implements the unstructured radio network model of
// Sect. 2 of the paper as a discrete-time simulator:
//
//   - time is divided into synchronized slots;
//   - in each slot an awake node either transmits or listens;
//   - a listening node receives a message iff EXACTLY ONE of its graph
//     neighbors transmits in that slot — otherwise it hears nothing and
//     cannot distinguish silence from collision (no collision detection);
//   - a transmitting node receives nothing in that slot;
//   - nodes wake up asynchronously per an arbitrary schedule, and
//     sleeping nodes neither send nor receive;
//   - there is a single communication channel.
//
// Protocols are written against the Protocol interface and are strictly
// message-driven: they never see the graph, their neighbor count, or
// global time, exactly as in the model.
package radio

import (
	"fmt"
	"math/rand"
	"sync/atomic"
)

// simulatedSlots counts every slot simulated by any engine variant in
// this process, across goroutines. It is the raw work measure behind
// the live slots/s rate reported for long sweeps (monitor.Progress).
var simulatedSlots atomic.Int64

// SimulatedSlots returns the process-wide number of simulated slots.
// The counter is monotonic and shared by the aligned, unaligned and
// multichannel engines; rate reporting samples it over time.
func SimulatedSlots() int64 { return simulatedSlots.Load() }

// NodeID identifies a node. IDs are indices into the network graph, but
// protocols must treat them as opaque identifiers (the paper requires
// only that a receiver can tell two senders apart).
type NodeID int32

// Message is a frame on the radio channel. Implementations carry the
// protocol-specific payload.
type Message interface {
	// Sender returns the transmitting node's identifier.
	Sender() NodeID
	// Bits returns the encoded payload size in bits given the network
	// size estimate n; the model requires O(log n) bits per message and
	// the engine records the maximum observed.
	Bits(n int) int
}

// Protocol is the behavior of a single node. The engine drives each
// awake node through one Send and (if it listened) one Recv call per
// slot. Implementations own all their state; the engine guarantees that
// calls to a single node's methods are never concurrent.
type Protocol interface {
	// Start is invoked once, in the slot the node wakes up, before the
	// node's first Send of that slot.
	Start(slot int64)
	// Send is invoked every slot while the node is awake. Returning a
	// non-nil message transmits it; returning nil listens. Send is the
	// node's per-slot tick: counter increments and timeouts live here.
	Send(slot int64) Message
	// Recv is invoked only in slots the node actually receives a
	// message, i.e. it listened and exactly one of its neighbors
	// transmitted. Silence and collision are indistinguishable to the
	// node (no collision detection) and produce no call at all; a node
	// that transmitted never receives in the same slot.
	Recv(slot int64, msg Message)
	// Done reports whether the node has made its irrevocable final
	// decision. Done nodes keep being scheduled (e.g. leaders continue
	// beaconing); Done only feeds termination detection and the
	// per-node time complexity T_v.
	Done() bool
}

// Observer receives simulation events for tracing and statistics.
// Implementations must be fast; the engine calls them in hot loops. A
// nil Observer in Config is fully disabled: the engines pay one branch
// per event and never allocate (the zero-overhead contract of the
// observability subsystem, see internal/obs).
type Observer interface {
	// OnSlot is called once per slot after all sends/receives resolved.
	OnSlot(slot int64)
	// OnWake is called when a node wakes up, before its first Start.
	OnWake(slot int64, node NodeID)
	// OnTransmit is called for each transmission.
	OnTransmit(slot int64, from NodeID, msg Message)
	// OnDeliver is called when a listener successfully receives.
	OnDeliver(slot int64, to NodeID, msg Message)
	// OnCollision is called when a listener had ≥ 2 transmitting
	// neighbors (the node itself observes nothing; this is a
	// god's-eye-view event).
	OnCollision(slot int64, at NodeID, transmitters int)
	// OnDecide is called once per node, in the slot its Done() first
	// reports true.
	OnDecide(slot int64, node NodeID)
}

// NopObserver is an Observer that ignores all events; embed it to
// implement only the events of interest.
type NopObserver struct{}

// OnSlot implements Observer.
func (NopObserver) OnSlot(int64) {}

// OnWake implements Observer.
func (NopObserver) OnWake(int64, NodeID) {}

// OnTransmit implements Observer.
func (NopObserver) OnTransmit(int64, NodeID, Message) {}

// OnDeliver implements Observer.
func (NopObserver) OnDeliver(int64, NodeID, Message) {}

// OnCollision implements Observer.
func (NopObserver) OnCollision(int64, NodeID, int) {}

// OnDecide implements Observer.
func (NopObserver) OnDecide(int64, NodeID) {}

// Rand is the source of per-node randomness. Each node receives its own
// deterministic stream derived from (master seed, node id), so results
// are identical across engine implementations and scheduling orders.
type Rand = *rand.Rand

// NodeRand derives node i's random stream from the master seed. The
// SplitMix64-style mixing decorrelates streams of adjacent ids.
func NodeRand(masterSeed int64, id NodeID) Rand {
	z := uint64(masterSeed) + 0x9E3779B97F4A7C15*uint64(uint32(id)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return rand.New(rand.NewSource(int64(z)))
}

// Result summarizes a simulation run.
type Result struct {
	// Slots is the number of slots simulated.
	Slots int64
	// AllDone reports whether every node decided before the slot limit.
	AllDone bool
	// WakeSlot[i] is the slot node i woke up.
	WakeSlot []int64
	// DecideSlot[i] is the slot node i's Done() first became true, or -1.
	DecideSlot []int64
	// Transmissions, Deliveries and Collisions count channel events:
	// Collisions counts (listener, slot) pairs with ≥ 2 transmitting
	// neighbors.
	Transmissions, Deliveries, Collisions int64
	// Captures counts deliveries that survived a two-way collision via
	// the capture effect: the built-in rule's probabilistic coin (0
	// unless Config.CaptureProb > 0) or, under a SINR medium, the
	// strongest of ≥ 2 audible signals clearing the threshold. Included
	// in Deliveries.
	Captures int64
	// Drowned and BelowNoise are SINR-medium counters (zero otherwise):
	// Drowned counts listeners whose strongest signal would have decoded
	// alone but was buried by cumulative interference (a subset of
	// Collisions), BelowNoise listeners whose strongest signal cleared
	// the noise floor but not the SINR threshold even in silence.
	Drowned, BelowNoise int64
	// PerNodeTx[i] counts node i's transmissions (an energy proxy).
	PerNodeTx []int64
	// MaxMessageBits is the largest message payload observed.
	MaxMessageBits int

	// Fault-layer counters, all zero unless Config.Faults is set.
	// Lost counts receptions suppressed by the fault layer's link loss
	// (i.i.d. or burst); Jammed counts would-be receptions corrupted by
	// a jammer; Crashes and Restarts count node lifecycle events.
	Lost, Jammed      int64
	Crashes, Restarts int64
	// Down lists the nodes that are crashed as of the last simulated
	// slot (nil when Config.Faults is unset or nobody is down).
	Down []int32

	// Churn-layer counters, all zero unless Config.Churn is set. Joins
	// and Leaves count presence changes actually applied; a node that
	// leaves and rejoins counts once in each. ConflictsRepaired counts
	// decisions retracted by the self-stabilizing repair because a
	// topology change created a monochromatic edge.
	Joins, Leaves     int64
	ConflictsRepaired int64
	// Left lists the nodes absent from the network as of the last
	// simulated slot (nil when Config.Churn is unset or everyone is
	// present). Distinct from Down: a left node departed on schedule
	// and its color went out of scope with it, while a down node
	// fail-stopped.
	Left []int32
}

// Latency returns T_v for node v: slots between wake-up and decision
// (the paper's per-node time complexity), or -1 if v never decided.
func (r *Result) Latency(v int) int64 {
	if r.DecideSlot[v] < 0 {
		return -1
	}
	return r.DecideSlot[v] - r.WakeSlot[v]
}

// MaxLatency returns max_v T_v, the algorithm's time complexity, or -1
// if some node never decided.
func (r *Result) MaxLatency() int64 {
	max := int64(0)
	for v := range r.DecideSlot {
		l := r.Latency(v)
		if l < 0 {
			return -1
		}
		if l > max {
			max = l
		}
	}
	return max
}

// String implements fmt.Stringer with a one-line summary.
func (r *Result) String() string {
	return fmt.Sprintf("slots=%d done=%v maxT=%d tx=%d rx=%d coll=%d",
		r.Slots, r.AllDone, r.MaxLatency(), r.Transmissions, r.Deliveries, r.Collisions)
}
