package core

import (
	"fmt"
	"math"

	"radiocolor/internal/radio"
)

// The four message types of Sect. 4. Payload sizes are accounted
// honestly against the model's O(log n) bits budget: identifiers cost
// ⌈3 log₂ n⌉ bits (IDs are drawn from [1..n³] when nodes lack built-in
// identity), counters cost ⌈log₂(range)⌉+1 bits, and class/color fields
// cost ⌈log₂((Δ+1)(κ₂+1))⌉ bits.

// bitsFor returns the number of bits needed to express non-negative
// values up to v.
func bitsFor(v int64) int {
	if v <= 1 {
		return 1
	}
	return int(math.Ceil(math.Log2(float64(v + 1))))
}

// idBits is the identifier cost for network-size estimate n.
func idBits(n int) int {
	if n < 2 {
		n = 2
	}
	return int(math.Ceil(3 * math.Log2(float64(n))))
}

// MsgA is M_A^i(v, c_v): a node competing in state A_i reports its
// counter (Algorithm 1, line 22).
type MsgA struct {
	From    radio.NodeID
	Class   int32
	Counter int64
}

// Sender implements radio.Message.
func (m *MsgA) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message: sender id + class + signed counter.
func (m *MsgA) Bits(n int) int {
	c := m.Counter
	if c < 0 {
		c = -c
	}
	return idBits(n) + bitsFor(int64(m.Class)) + bitsFor(c) + 1
}

// String implements fmt.Stringer.
func (m *MsgA) String() string {
	return fmt.Sprintf("M_A^%d(%d, c=%d)", m.Class, m.From, m.Counter)
}

// MsgC is M_C^i(v): a colored node announces its membership in C_i
// (Algorithm 3, line 4, and the leader beacon of line 14 with Class 0).
type MsgC struct {
	From  radio.NodeID
	Class int32
}

// Sender implements radio.Message.
func (m *MsgC) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message.
func (m *MsgC) Bits(n int) int {
	return idBits(n) + bitsFor(int64(m.Class))
}

// String implements fmt.Stringer.
func (m *MsgC) String() string { return fmt.Sprintf("M_C^%d(%d)", m.Class, m.From) }

// MsgAssign is M_C⁰(v, w, tc): leader v assigns intra-cluster color tc
// to node w (Algorithm 3, line 19). It is simultaneously an M_C⁰
// announcement — any A₀ node overhearing it learns a leader is nearby.
type MsgAssign struct {
	From radio.NodeID
	To   radio.NodeID
	TC   int32
}

// Sender implements radio.Message.
func (m *MsgAssign) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message.
func (m *MsgAssign) Bits(n int) int {
	return 2*idBits(n) + bitsFor(int64(m.TC))
}

// String implements fmt.Stringer.
func (m *MsgAssign) String() string {
	return fmt.Sprintf("M_C^0(%d, %d, tc=%d)", m.From, m.To, m.TC)
}

// MsgR is M_R(v, L(v)): node v requests an intra-cluster color from its
// leader (Algorithm 2, line 2).
type MsgR struct {
	From   radio.NodeID
	Leader radio.NodeID
}

// Sender implements radio.Message.
func (m *MsgR) Sender() radio.NodeID { return m.From }

// Bits implements radio.Message.
func (m *MsgR) Bits(n int) int { return 2 * idBits(n) }

// String implements fmt.Stringer.
func (m *MsgR) String() string { return fmt.Sprintf("M_R(%d → %d)", m.From, m.Leader) }
