package estimate

import (
	"math"

	"radiocolor/internal/core"
	"radiocolor/internal/radio"
)

// phase of the adaptive pipeline.
type phase uint8

const (
	phaseProbe phase = iota
	phaseSpread1
	phaseSpread2
	phaseRun
)

// AdaptiveNode runs the estimator pipeline and then delegates to the
// coloring protocol with the locally estimated Δ. It implements
// radio.Protocol.
type AdaptiveNode struct {
	id  radio.NodeID
	rng radio.Rand
	cfg Config
	abl core.Ablation

	ph    phase
	local int64 // slots since wake-up

	// Probe phase.
	recvPerRound []int64
	distinct     map[radio.NodeID]bool

	// Spread phases.
	deltaLocal int32 // δ̂: own-degree estimate (paper convention: incl. self)
	max1       int32 // max δ̂ heard (1-hop wave)
	max2       int32 // max of max1 heard (2-hop wave)

	// Run phase.
	inner *core.Node
	// DeltaUsed is the Δ handed to the coloring protocol (exported via
	// accessor for experiments).
	deltaUsed int
}

// NewAdaptive creates an adaptive node.
func NewAdaptive(id radio.NodeID, rng radio.Rand, cfg Config, abl core.Ablation) *AdaptiveNode {
	cfg = cfg.normalized()
	return &AdaptiveNode{
		id:           id,
		rng:          rng,
		cfg:          cfg,
		abl:          abl,
		recvPerRound: make([]int64, cfg.Rounds),
		distinct:     make(map[radio.NodeID]bool),
	}
}

// AdaptiveNodes builds one adaptive node per vertex.
func AdaptiveNodes(n int, masterSeed int64, cfg Config, abl core.Ablation) ([]*AdaptiveNode, []radio.Protocol) {
	nodes := make([]*AdaptiveNode, n)
	protos := make([]radio.Protocol, n)
	for i := range nodes {
		nodes[i] = NewAdaptive(radio.NodeID(i), radio.NodeRand(masterSeed, radio.NodeID(i)), cfg, abl)
		protos[i] = nodes[i]
	}
	return nodes, protos
}

// Start implements radio.Protocol.
func (v *AdaptiveNode) Start(int64) {}

// probeLen returns the total probe-phase length.
func (v *AdaptiveNode) probeLen() int64 {
	return int64(v.cfg.Rounds) * v.cfg.RoundSlots
}

// Send implements radio.Protocol.
func (v *AdaptiveNode) Send(slot int64) radio.Message {
	t := v.local
	v.local++
	switch v.ph {
	case phaseProbe:
		round := t / v.cfg.RoundSlots
		if t+1 >= v.probeLen() {
			v.finishProbe()
			v.ph = phaseSpread1
		}
		if v.rng.Float64() < math.Pow(2, -float64(round)) {
			return &MsgProbe{From: v.id}
		}
		return nil

	case phaseSpread1:
		if t+1 >= v.probeLen()+v.cfg.SpreadSlots {
			v.ph = phaseSpread2
		}
		if v.rng.Float64() < v.spreadProb() {
			return &MsgEstimate{From: v.id, Hop: 1, Est: v.deltaLocal}
		}
		return nil

	case phaseSpread2:
		if t+1 >= v.probeLen()+2*v.cfg.SpreadSlots {
			v.beginRun(slot)
			// The inner node's waiting phase begins next slot; this
			// slot stays silent (its Start was just called).
			return nil
		}
		if v.rng.Float64() < v.spreadProb() {
			return &MsgEstimate{From: v.id, Hop: 2, Est: v.max1}
		}
		return nil

	default:
		return v.inner.Send(slot)
	}
}

// Recv implements radio.Protocol.
func (v *AdaptiveNode) Recv(slot int64, msg radio.Message) {
	switch v.ph {
	case phaseProbe:
		round := int(v.local / v.cfg.RoundSlots)
		if round >= len(v.recvPerRound) {
			round = len(v.recvPerRound) - 1
		}
		v.recvPerRound[round]++
		v.distinct[msg.Sender()] = true

	case phaseSpread1, phaseSpread2:
		if m, ok := msg.(*MsgEstimate); ok {
			switch m.Hop {
			case 1:
				if m.Est > v.max1 {
					v.max1 = m.Est
				}
			case 2:
				if m.Est > v.max2 {
					v.max2 = m.Est
				}
			}
		}
		// Probes from late-waking neighbors still reveal their
		// existence.
		v.distinct[msg.Sender()] = true

	default:
		v.inner.Recv(slot, msg)
	}
}

// finishProbe converts the probe observations into δ̂.
func (v *AdaptiveNode) finishProbe() {
	// Capture-curve estimate: the round with the most receptions has
	// transmission probability closest to 1/δ, so δ ≈ 2^{r*}.
	best, bestCount := 0, int64(-1)
	for r, c := range v.recvPerRound {
		if c > bestCount {
			best, bestCount = r, c
		}
	}
	capture := int32(1) << uint(best)
	// Census lower bound: distinct senders heard, plus self (paper's
	// degree convention counts the node).
	census := int32(len(v.distinct)) + 1
	v.deltaLocal = capture
	if census > v.deltaLocal {
		v.deltaLocal = census
	}
	if v.deltaLocal < 2 {
		v.deltaLocal = 2
	}
	v.max1 = v.deltaLocal
	v.max2 = v.deltaLocal
}

// spreadProb is the transmission probability during the spread phases:
// 1/(2δ̂), the contention-safe rate for the node's own neighborhood
// estimate.
func (v *AdaptiveNode) spreadProb() float64 {
	return 1 / (2 * float64(v.deltaLocal))
}

// beginRun instantiates the coloring protocol with the estimated Δ.
func (v *AdaptiveNode) beginRun(slot int64) {
	if v.max2 > v.max1 {
		v.max1 = v.max2
	}
	delta := int(math.Ceil(v.cfg.SafetyFactor * float64(v.max1)))
	if delta < 2 {
		delta = 2
	}
	v.deltaUsed = delta
	par := core.Practical(v.cfg.N, delta, v.cfg.Kappa1, v.cfg.Kappa2).Scale(v.cfg.Scale)
	v.inner = core.NewNode(v.id, v.rng, par, v.abl)
	v.inner.Start(slot)
	v.ph = phaseRun
}

// Done implements radio.Protocol.
func (v *AdaptiveNode) Done() bool {
	return v.ph == phaseRun && v.inner.Done()
}

// Color returns the decided color, or −1.
func (v *AdaptiveNode) Color() int32 {
	if v.inner == nil {
		return -1
	}
	return v.inner.Color()
}

// DeltaEstimate returns the node's own-degree estimate δ̂ (0 before the
// probe phase completes).
func (v *AdaptiveNode) DeltaEstimate() int32 { return v.deltaLocal }

// DeltaUsed returns the Δ handed to the coloring protocol (0 before the
// run phase).
func (v *AdaptiveNode) DeltaUsed() int { return v.deltaUsed }

// Inner exposes the wrapped coloring node (nil before the run phase).
func (v *AdaptiveNode) Inner() *core.Node { return v.inner }
