// Package render draws geometric deployments and their colorings as
// standalone SVG documents — the visual companion to Fig. 1 of the
// paper. It uses only the standard library; cmd/colorsim exposes it via
// the -svg flag.
//
// Visual encoding: links are light gray segments, walls are thick dark
// segments, nodes are disks filled by a deterministic palette derived
// from their color (leaders, color 0, get a highlight ring), and
// uncolored nodes render as hollow circles.
package render

import (
	"fmt"
	"io"
	"math"

	"radiocolor/internal/topology"
)

// Options tunes the rendering.
type Options struct {
	// WidthPx is the pixel width of the output (height follows the
	// deployment's aspect ratio). Default 800.
	WidthPx float64
	// NodeRadiusPx is the node disk radius in pixels. Default 5.
	NodeRadiusPx float64
	// DrawLinks toggles communication edges (default true via
	// NewOptions).
	DrawLinks bool
	// Labels adds node indices next to the disks.
	Labels bool
}

// NewOptions returns the defaults.
func NewOptions() Options {
	return Options{WidthPx: 800, NodeRadiusPx: 5, DrawLinks: true}
}

func (o Options) normalized() Options {
	if o.WidthPx <= 0 {
		o.WidthPx = 800
	}
	if o.NodeRadiusPx <= 0 {
		o.NodeRadiusPx = 5
	}
	return o
}

// paletteColor maps a color index to a stable, readable fill. It walks
// the hue circle by the golden angle so nearby indices get contrasting
// hues; color 0 (leaders) is always rendered black with a gold ring.
func paletteColor(c int32) string {
	if c < 0 {
		return "none"
	}
	if c == 0 {
		return "#111111"
	}
	hue := math.Mod(float64(c)*137.50776405003785, 360)
	// Alternate two lightness bands so consecutive hues also differ in
	// tone.
	light := 45
	if c%2 == 0 {
		light = 62
	}
	return fmt.Sprintf("hsl(%.1f, 70%%, %d%%)", hue, light)
}

// SVG writes the deployment and per-node colors (colors may be nil for
// an uncolored layout) to w. Non-geometric deployments (no point set)
// are rejected.
func SVG(w io.Writer, d *topology.Deployment, colors []int32, opt Options) error {
	if d.Points == nil {
		return fmt.Errorf("render: deployment %q has no geometry", d.Name)
	}
	if colors != nil && len(colors) != d.N() {
		return fmt.Errorf("render: %d colors for %d nodes", len(colors), d.N())
	}
	opt = opt.normalized()

	// Bounding box with a margin.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range d.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if d.Obstacles != nil {
		for _, s := range d.Obstacles.Walls {
			minX, maxX = math.Min(minX, math.Min(s.A.X, s.B.X)), math.Max(maxX, math.Max(s.A.X, s.B.X))
			minY, maxY = math.Min(minY, math.Min(s.A.Y, s.B.Y)), math.Max(maxY, math.Max(s.A.Y, s.B.Y))
		}
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	margin := 0.04 * math.Max(spanX, spanY)
	scale := opt.WidthPx / (spanX + 2*margin)
	heightPx := (spanY + 2*margin) * scale
	tx := func(x float64) float64 { return (x - minX + margin) * scale }
	ty := func(y float64) float64 { return heightPx - (y-minY+margin)*scale } // flip: SVG y grows down

	if _, err := fmt.Fprintf(w,
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n",
		opt.WidthPx, heightPx, opt.WidthPx, heightPx); err != nil {
		return err
	}
	fmt.Fprintf(w, "<!-- %s -->\n", d.Name)
	fmt.Fprintf(w, `<rect width="100%%" height="100%%" fill="white"/>`+"\n")

	if opt.DrawLinks {
		fmt.Fprintf(w, `<g stroke="#cccccc" stroke-width="1">`+"\n")
		for v := 0; v < d.N(); v++ {
			for _, u := range d.G.Adj(v) {
				if int(u) > v {
					fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
						tx(d.Points[v].X), ty(d.Points[v].Y), tx(d.Points[u].X), ty(d.Points[u].Y))
				}
			}
		}
		fmt.Fprintln(w, "</g>")
	}

	if d.Obstacles != nil && len(d.Obstacles.Walls) > 0 {
		fmt.Fprintf(w, `<g stroke="#663300" stroke-width="4" stroke-linecap="round">`+"\n")
		for _, s := range d.Obstacles.Walls {
			fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n",
				tx(s.A.X), ty(s.A.Y), tx(s.B.X), ty(s.B.Y))
		}
		fmt.Fprintln(w, "</g>")
	}

	for v := 0; v < d.N(); v++ {
		x, y := tx(d.Points[v].X), ty(d.Points[v].Y)
		var c int32 = -1
		if colors != nil {
			c = colors[v]
		}
		fill := paletteColor(c)
		stroke := "#333333"
		width := 1.0
		if c == 0 {
			stroke = "#d4a017" // leader highlight ring
			width = 2.5
		}
		if c < 0 {
			fill = "white"
		}
		fmt.Fprintf(w, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" stroke="%s" stroke-width="%.1f"/>`+"\n",
			x, y, opt.NodeRadiusPx, fill, stroke, width)
		if opt.Labels {
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" font-size="%.1f" fill="#222222">%d</text>`+"\n",
				x+opt.NodeRadiusPx+1, y+3, 2.2*opt.NodeRadiusPx, v)
		}
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}
