package experiment

import (
	"strings"
	"testing"

	"radiocolor/internal/monitor"
)

func TestParMapOrderAndBothPaths(t *testing.T) {
	const n = 64
	fn := func(i int) int { return i*i + 1 }
	for _, workers := range []int{0, 1, 8} {
		prog := monitor.NewProgress(nil, "t")
		got := parMap(Options{Parallel: workers, Progress: prog}, "t", n, fn)
		for i, v := range got {
			if v != fn(i) {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, fn(i))
			}
		}
		if s := prog.Snapshot(); s.Total != n || s.Done != n {
			t.Fatalf("workers=%d: progress total=%d done=%d, want %d", workers, s.Total, s.Done, n)
		}
	}
}

func TestParTrialsGrid(t *testing.T) {
	const cells, trials = 3, 4
	grid := parTrials(Options{Parallel: 4}, "t", cells, trials, func(c, tr int) int {
		return c*10 + tr
	})
	if len(grid) != cells {
		t.Fatalf("got %d cells", len(grid))
	}
	for c := range grid {
		if len(grid[c]) != trials {
			t.Fatalf("cell %d has %d trials", c, len(grid[c]))
		}
		for tr, v := range grid[c] {
			if v != c*10+tr {
				t.Fatalf("grid[%d][%d] = %d, want %d", c, tr, v, c*10+tr)
			}
		}
	}
}

func TestParMapPanicPropagates(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("a job panic must re-raise from parMap, matching the sequential path")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "t/3") {
			t.Fatalf("panic %v should name the failing job t/3", r)
		}
	}()
	parMap(Options{Parallel: 4}, "t", 8, func(i int) int {
		if i == 3 {
			panic("deliberate")
		}
		return i
	})
}

// TestE1ParallelMatchesSequential is the suite's determinism contract in
// miniature: the same experiment rendered at 8 workers and at 1 worker
// must produce byte-identical tables.
func TestE1ParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	o := Quick()
	o.Parallel = 1
	seq := E1Kappa(o).String()
	o.Parallel = 8
	par := E1Kappa(o).String()
	if seq != par {
		t.Fatalf("E1 diverges across worker counts:\n--- parallel=1 ---\n%s\n--- parallel=8 ---\n%s", seq, par)
	}
	if !strings.Contains(seq, "udg(") {
		t.Fatalf("suspicious E1 table:\n%s", seq)
	}
}
