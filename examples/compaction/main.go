// Compaction: initialize from scratch with the paper's algorithm, then
// run the post-initialization color-compaction pass (internal/reduce)
// and compare the palette against the centralized greedy reference.
// Theorem 4 makes low colors the currency of TDMA bandwidth; this demo
// shows the from-scratch premium being refunded once the network is up.
//
//	go run ./examples/compaction
package main

import (
	"fmt"
	"log"

	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/radio"
	"radiocolor/internal/reduce"
	"radiocolor/internal/sched"
	"radiocolor/internal/topology"
	"radiocolor/internal/verify"
)

func main() {
	d := topology.RandomUDG(topology.UDGConfig{N: 120, Side: 6.5, Radius: 1.2, Seed: 8})
	par := experiment.MeasureParams(d)
	fmt.Printf("deployment: %s, Δ=%d, κ₂=%d\n\n", d.Name, par.Delta, par.Kappa2)

	// Stage 1: the paper's algorithm, from scratch.
	run, err := experiment.RunCore(d, par, radio.WakeSynchronous(d.N()), 5,
		int64(par.Kappa2+2)*par.Threshold()*40, core.Ablation{})
	if err != nil || !run.Correct() {
		log.Fatalf("initialization failed: %v", err)
	}
	report(d, "after initialization  ", run.Colors)

	// Stage 2: compaction in the same radio model.
	rNodes, rProtos := reduce.Nodes(run.Colors, 13, reduce.Params{
		N: par.N, Delta: par.Delta, Kappa2: par.Kappa2,
	})
	res, err := radio.Run(radio.Config{
		G: d.G, Protocols: rProtos, Wake: radio.WakeSynchronous(d.N()),
		MaxSlots: 200_000_000,
	})
	if err != nil || !res.AllDone {
		log.Fatalf("compaction failed: %v", err)
	}
	after := make([]int32, d.N())
	var moves int64
	for i, v := range rNodes {
		after[i] = v.Color()
		moves += v.Moves() + v.Repairs()
	}
	report(d, "after compaction      ", after)
	fmt.Printf("  (%d slots of maintenance, %.2f recolorings per node)\n\n",
		res.Slots, float64(moves)/float64(d.N()))

	// Reference: what a centralized scheduler would do.
	report(d, "centralized greedy ref", d.G.GreedyColoring())
}

func report(d *topology.Deployment, label string, colors []int32) {
	rep := verify.Check(d.G, colors)
	s, err := sched.FromColoring(colors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: proper=%-5v colors=%-3d max=%-3d TDMA frame=%d slots\n",
		label, rep.Proper, rep.NumColors, rep.MaxColor, s.FrameLen)
}
