// Command experiments regenerates the paper-reproduction tables E1–E23
// indexed in DESIGN.md. The output of a full run (the defaults) is
// recorded in EXPERIMENTS.md.
//
// The suite runs on the fleet batch engine (internal/fleet): each
// experiment is one job whose trials fan out over -parallel workers,
// and the rendered tables stream to stdout in registry order. stdout is
// byte-identical at any -parallel value; progress and timing go to
// stderr. With -resume, finished experiments are checkpointed to a
// JSONL file and an interrupted sweep picks up where it stopped.
//
// Examples:
//
//	experiments                     # full suite, all CPUs
//	experiments -exp E3,E5          # selected experiments
//	experiments -size 0.4 -trials 1 # quick pass
//	experiments -parallel 1         # sequential (same bytes on stdout)
//	experiments -resume sweep.jsonl # checkpoint + resume
//	experiments -csv out/           # additionally write CSV files
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"

	"radiocolor/internal/experiment"
	"radiocolor/internal/fleet"
	"radiocolor/internal/monitor"
	"radiocolor/internal/radio"
)

// tableOut is the checkpointed payload of one experiment job: the
// rendered table block exactly as it appears on stdout, plus the CSV
// form so a resumed run can still write -csv files.
type tableOut struct {
	ID   string `json:"id"`
	Text string `json:"text"`
	CSV  string `json:"csv"`
}

func main() {
	var (
		exps     = flag.String("exp", "all", "comma-separated experiment ids (e.g. E3,E5) or 'all'")
		trials   = flag.Int("trials", 3, "trials per table cell")
		size     = flag.Float64("size", 1.0, "network size factor")
		seed     = flag.Int64("seed", 1, "master seed")
		csvDir   = flag.String("csv", "", "also write one CSV per experiment into this directory")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "worker count for trial jobs (1 = sequential)")
		resume   = flag.String("resume", "", "JSONL checkpoint file; finished experiments are skipped on rerun")
		quiet    = flag.Bool("quiet", false, "suppress progress and timing lines on stderr")
		chanCols = flag.Bool("channel-stats", false, "append per-cell channel columns (collision rate) to supporting tables")
	)
	flag.Parse()

	// ^C / SIGTERM stops the sweep at the next experiment boundary:
	// jobs not yet started fail fast as "interrupted", the checkpoint
	// keeps what finished, and -resume picks up from there.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := experiment.Options{Trials: *trials, SizeFactor: *size, Seed: *seed, Parallel: *parallel, ChannelStats: *chanCols}
	var selected []experiment.Entry
	if *exps == "all" {
		selected = experiment.Registry
	} else {
		for _, id := range strings.Split(*exps, ",") {
			e := experiment.Lookup(strings.TrimSpace(id))
			if e == nil {
				fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q\n", id)
				os.Exit(2)
			}
			selected = append(selected, *e)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}

	if !*quiet {
		progress := monitor.NewProgress(os.Stderr, "experiments")
		progress.SetUnits("slots", radio.SimulatedSlots)
		opts.Progress = progress
		defer progress.Finish()
	}

	// Each experiment is one job on an outer single-worker engine: the
	// single worker keeps stdout streaming in registry order (the
	// determinism contract), trials parallelize inside the job via
	// Options.Parallel, and the checkpoint skips finished experiments on
	// resume. Job IDs fingerprint the options so a checkpoint written
	// under different settings is never reused.
	jobs := make([]fleet.Job, len(selected))
	for i, e := range selected {
		e := e
		jobs[i] = fleet.Job{
			ID: fmt.Sprintf("%s|trials=%d|size=%g|seed=%d", e.ID, opts.Trials, opts.SizeFactor, opts.Seed),
			Run: func() (any, error) {
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("interrupted: %w", err)
				}
				return renderOne(e, opts)
			},
		}
	}
	cfg := fleet.Config{Workers: 1, OnResult: func(r fleet.Result) { emit(r, *csvDir, *quiet) }}
	if *resume != "" {
		cfg.Checkpoint = &fleet.Checkpoint{
			Path: *resume,
			Decode: func(b []byte) (any, error) {
				var t tableOut
				err := json.Unmarshal(b, &t)
				return t, err
			},
		}
	}
	results, err := fleet.New(cfg).Run(jobs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	exit := 0
	for _, r := range results {
		if r.Failed() {
			exit = 1
		}
	}
	if ctx.Err() != nil {
		fmt.Fprintln(os.Stderr, "experiments: interrupted — rerun with -resume to continue")
		exit = 130
	}
	os.Exit(exit)
}

// renderOne runs one experiment and renders its stdout block and CSV.
func renderOne(e experiment.Entry, opts experiment.Options) (tableOut, error) {
	t := e.Run(opts)
	var text, csv strings.Builder
	fmt.Fprintf(&text, "%s — %s\n", e.ID, e.Reproduces)
	if err := t.Render(&text); err != nil {
		return tableOut{}, err
	}
	fmt.Fprintln(&text)
	if err := t.WriteCSV(&csv); err != nil {
		return tableOut{}, err
	}
	return tableOut{ID: e.ID, Text: text.String(), CSV: csv.String()}, nil
}

// emit streams one finished experiment: table block to stdout, errors
// and timing to stderr, CSV to -csv. Runs on the outer engine's single
// worker, so blocks appear in registry order.
func emit(r fleet.Result, csvDir string, quiet bool) {
	if r.Err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %s failed: %v\n", r.ID, r.Err)
		return
	}
	out := r.Value.(tableOut)
	fmt.Print(out.Text)
	if !quiet {
		if r.FromCheckpoint {
			fmt.Fprintf(os.Stderr, "(%s from checkpoint)\n", out.ID)
		} else {
			fmt.Fprintf(os.Stderr, "(%s in %.1fs)\n", out.ID, r.Duration.Seconds())
		}
	}
	if csvDir != "" {
		path := filepath.Join(csvDir, strings.ToLower(out.ID)+".csv")
		if err := os.WriteFile(path, []byte(out.CSV), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
	}
}
