package monitor

import (
	"io"
	"strings"
	"testing"
	"time"
)

// fakeClock drives Progress deterministically through the now hook.
type fakeClock struct{ t time.Time }

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestProgress(w io.Writer, label string) (*Progress, *fakeClock) {
	clock := newFakeClock()
	p := NewProgress(w, label)
	p.now = clock.now
	p.start = clock.t
	p.lastPrint = clock.t
	return p, clock
}

func TestSnapshotCountersAndETA(t *testing.T) {
	p, clock := newTestProgress(nil, "x")
	units := int64(100)
	p.SetUnits("slots", func() int64 { return units })

	p.AddTotal(10)
	for i := 0; i < 4; i++ {
		p.JobDone()
	}
	p.JobFailed()
	p.JobRetried()
	p.JobRetried()
	units = 600
	clock.advance(10 * time.Second)

	s := p.Snapshot()
	if s.Total != 10 || s.Done != 4 || s.Failed != 1 || s.Retried != 2 {
		t.Fatalf("counters: %+v", s)
	}
	if s.Elapsed != 10*time.Second {
		t.Fatalf("elapsed = %v", s.Elapsed)
	}
	if s.Units != 500 {
		t.Fatalf("units = %d, want delta since SetUnits (500)", s.Units)
	}
	if s.UnitsPerSec != 50 {
		t.Fatalf("units/s = %v, want 50", s.UnitsPerSec)
	}
	// 5 finished of 10 in 10s → 5 remaining ≈ 10s more.
	if s.ETA != 10*time.Second {
		t.Fatalf("ETA = %v, want 10s", s.ETA)
	}
}

func TestETAZeroBeforeFirstFinish(t *testing.T) {
	p, clock := newTestProgress(nil, "x")
	p.AddTotal(5)
	clock.advance(time.Minute)
	if eta := p.Snapshot().ETA; eta != 0 {
		t.Fatalf("ETA before any job finished = %v, want 0", eta)
	}
}

func TestStatusLineFormat(t *testing.T) {
	var buf strings.Builder
	p, clock := newTestProgress(&buf, "sweep")
	units := int64(0)
	p.SetUnits("slots", func() int64 { return units })
	units = 1_500_000
	p.AddTotal(8)
	p.JobDone()
	p.JobDone()
	p.JobFailed()
	p.JobRetried()
	clock.advance(2 * time.Second)
	p.Finish()

	line := strings.TrimSpace(buf.String())
	for _, want := range []string{
		"[sweep] 2/8 jobs", "(1 failed)", "(1 retried)",
		"1.5M slots", "750.0k slots/s", "ETA",
	} {
		if !strings.Contains(line, want) {
			t.Errorf("status line %q missing %q", line, want)
		}
	}
}

func TestRateLimiting(t *testing.T) {
	var buf strings.Builder
	p, clock := newTestProgress(&buf, "x")
	p.AddTotal(100)
	for i := 0; i < 50; i++ {
		p.JobDone() // clock frozen: all inside the 1s interval
	}
	if buf.Len() != 0 {
		t.Fatalf("printed %d bytes inside the rate-limit interval", buf.Len())
	}
	clock.advance(1100 * time.Millisecond)
	p.JobDone()
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("want exactly one status line after the interval, got %d: %q", got, buf.String())
	}
}

func TestNilWriterIsSilent(t *testing.T) {
	p, _ := newTestProgress(nil, "x")
	p.AddTotal(3)
	p.JobDone()
	p.Finish() // must not panic
	if s := p.Snapshot(); s.Done != 1 || s.Total != 3 {
		t.Fatalf("silent tracker still counts: %+v", s)
	}
}

func TestHumanCount(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{999, "999"}, {1234, "1.2k"}, {1_234_567, "1.2M"}, {2_500_000_000, "2.5G"}, {0, "0"},
	}
	for _, c := range cases {
		if got := humanCount(c.in); got != c.want {
			t.Errorf("humanCount(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}
