// Async wake-up: the model's signature difficulty. Nodes are switched on
// at adversarially staggered times, so protocol phases interleave
// arbitrarily — yet every node decides within the same O(Δ log n) band
// of ITS OWN wake-up, and the coloring stays proper.
//
//	go run ./examples/asyncwakeup
package main

import (
	"fmt"
	"log"

	"radiocolor/internal/core"
	"radiocolor/internal/experiment"
	"radiocolor/internal/radio"
	"radiocolor/internal/stats"
	"radiocolor/internal/topology"
)

func main() {
	d := topology.RandomUDG(topology.UDGConfig{N: 140, Side: 6.5, Radius: 1.2, Seed: 31})
	par := experiment.MeasureParams(d)
	fmt.Printf("deployment: %s, Δ=%d, κ₂=%d\n\n", d.Name, par.Delta, par.Kappa2)

	for _, pat := range radio.WakePatterns {
		wake := pat.Make(d.N(), par.WaitSlots(), 17)
		var span int64
		for _, w := range wake {
			if w > span {
				span = w
			}
		}
		budget := int64(par.Kappa2+2)*par.Threshold()*40 + 4*span
		run, err := experiment.RunCore(d, par, wake, 13, budget, core.Ablation{})
		if err != nil {
			log.Fatal(err)
		}
		var lat []float64
		for v := 0; v < d.N(); v++ {
			lat = append(lat, float64(run.Radio.Latency(v)))
		}
		s := stats.Summarize(lat)
		fmt.Printf("%-12s wake span %6d slots | proper=%-5v | T_v mean %6.0f  p90 %6.0f  max %6.0f\n",
			pat.Name, span, run.Report.Proper && run.Report.Complete, s.Mean, s.P90, s.Max)
	}
	fmt.Println("\nper-node latency is measured from each node's own wake-up:")
	fmt.Println("it stays in the same band no matter how adversarially wake-ups are spread.")
}
