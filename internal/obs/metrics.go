package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Metrics is the registry of atomic counters and gauges the simulation
// engines increment. All methods are safe for concurrent use (the
// parallel send phase may report from several goroutines) and cost one
// uncontended atomic add each. A single registry may be shared across
// runs and engines; counters are monotonic, gauges (the per-phase node
// counts) go up and down.
//
// The zero value is ready to use. The engines take a *Metrics and treat
// nil as "disabled": the hot paths pay exactly one branch per event and
// never allocate, which is what keeps the no-observability configuration
// within noise of the un-instrumented engine (see
// TestDisabledObservabilityAllocatesNothing).
type Metrics struct {
	transmissions atomic.Int64
	deliveries    atomic.Int64
	collisions    atomic.Int64
	captures      atomic.Int64
	drops         atomic.Int64
	decisions     atomic.Int64
	wakeups       atomic.Int64
	slots         atomic.Int64
	lost          atomic.Int64
	jammed        atomic.Int64
	crashes       atomic.Int64
	restarts      atomic.Int64
	joins         atomic.Int64
	leaves        atomic.Int64
	conflictsRep  atomic.Int64
	drowned       atomic.Int64
	belowNoise    atomic.Int64
	phase         [NumPhases]atomic.Int64

	// startNanos is the wall-clock origin for rate computation, set on
	// the first counted slot (CAS so concurrent engines agree).
	startNanos atomic.Int64
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics { return &Metrics{} }

// AddTransmission counts one transmission.
func (m *Metrics) AddTransmission() { m.transmissions.Add(1) }

// AddDelivery counts one clean (exactly-one-sender) reception.
func (m *Metrics) AddDelivery() { m.deliveries.Add(1) }

// AddCollision counts one (listener, slot) pair with ≥ 2 transmitting
// neighbors.
func (m *Metrics) AddCollision() { m.collisions.Add(1) }

// AddCapture counts a delivery that survived a two-way collision via
// the capture effect (also counted by AddDelivery).
func (m *Metrics) AddCapture() { m.captures.Add(1) }

// AddDrop counts a delivery suppressed by injected message loss.
func (m *Metrics) AddDrop() { m.drops.Add(1) }

// AddCollisions counts n collisions at once; the medium path reports a
// slot's collisions in aggregate rather than per listener.
func (m *Metrics) AddCollisions(n int64) { m.collisions.Add(n) }

// AddDrowned counts n receptions a SINR medium lost to cumulative
// interference (would have decoded alone; a subset of collisions).
func (m *Metrics) AddDrowned(n int64) { m.drowned.Add(n) }

// AddBelowNoise counts n receptions a SINR medium lost to the noise
// floor alone (the strongest signal was audible but under the
// threshold even without interference).
func (m *Metrics) AddBelowNoise(n int64) { m.belowNoise.Add(n) }

// AddLost counts a reception suppressed by the fault layer's link
// loss (i.i.d. or burst).
func (m *Metrics) AddLost() { m.lost.Add(1) }

// AddJammed counts a would-be reception corrupted by a jammer.
func (m *Metrics) AddJammed() { m.jammed.Add(1) }

// AddCrash counts one fail-stop node crash.
func (m *Metrics) AddCrash() { m.crashes.Add(1) }

// AddRestart counts one crashed node rejoining with cleared state.
func (m *Metrics) AddRestart() { m.restarts.Add(1) }

// AddJoin counts one node joining the network under a churn schedule.
func (m *Metrics) AddJoin() { m.joins.Add(1) }

// AddLeave counts one node leaving the network under a churn schedule.
func (m *Metrics) AddLeave() { m.leaves.Add(1) }

// AddConflictRepaired counts one decision retracted by the churn
// layer's self-stabilizing repair (a topology change had created a
// monochromatic edge).
func (m *Metrics) AddConflictRepaired() { m.conflictsRep.Add(1) }

// AddFaultTotals folds a completed run's fault-seam totals into the
// registry. The engine's per-event adders only reach the registry the
// run was configured with; an aggregating registry (a server scraping
// many runs) merges each finished run with one call.
func (m *Metrics) AddFaultTotals(lost, jammed, crashes, restarts int64) {
	m.lost.Add(lost)
	m.jammed.Add(jammed)
	m.crashes.Add(crashes)
	m.restarts.Add(restarts)
}

// AddChurnTotals folds a completed run's churn-seam totals (joins,
// leaves, conflict repairs) into the registry — the churn counterpart
// of AddFaultTotals.
func (m *Metrics) AddChurnTotals(joins, leaves, repaired int64) {
	m.joins.Add(joins)
	m.leaves.Add(leaves)
	m.conflictsRep.Add(repaired)
}

// AddDecision counts one node's irrevocable decision.
func (m *Metrics) AddDecision() { m.decisions.Add(1) }

// AddWakeup counts one node waking up.
func (m *Metrics) AddWakeup() { m.wakeups.Add(1) }

// AddSlot counts one simulated slot and stamps the rate origin on the
// first call.
func (m *Metrics) AddSlot() {
	if m.slots.Add(1) == 1 {
		m.startNanos.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// PhaseChange moves one node from phase `from` to phase `to` in the
// occupancy gauges.
func (m *Metrics) PhaseChange(from, to Phase) {
	if int(from) < NumPhases {
		m.phase[from].Add(-1)
	}
	if int(to) < NumPhases {
		m.phase[to].Add(1)
	}
}

// SetPhaseGauge initializes the occupancy gauge for `p` to n (used to
// seed PhaseAsleep with the node count before a run).
func (m *Metrics) SetPhaseGauge(p Phase, n int64) { m.phase[p].Store(n) }

// AddPhaseGauge shifts the occupancy gauge for `p` by n. Registries
// shared across concurrent runs (the serving layer's aggregate) use it
// to seed a run's node count in and subtract a finished run's terminal
// occupancy back out, where the absolute Store of SetPhaseGauge would
// clobber the other runs' contributions.
func (m *Metrics) AddPhaseGauge(p Phase, n int64) { m.phase[p].Add(n) }

// Snapshot is a consistent-enough point-in-time view of a registry.
// (Counters are read individually; a snapshot taken mid-slot may be off
// by the events of that slot, which is irrelevant for reporting.)
type Snapshot struct {
	// Transmissions, Deliveries, Collisions, Captures, Drops, Decisions,
	// Wakeups and Slots are the monotone event counters.
	Transmissions, Deliveries, Collisions, Captures, Drops, Decisions, Wakeups, Slots int64
	// Lost, Jammed, Crashes and Restarts count injected fault events
	// (zero unless a run has a fault profile).
	Lost, Jammed, Crashes, Restarts int64
	// Joins, Leaves and ConflictsRepaired count dynamic-topology events
	// (zero unless a run has a churn schedule).
	Joins, Leaves, ConflictsRepaired int64
	// Drowned and BelowNoise count SINR-medium reception losses:
	// interference-buried and under-the-noise-floor respectively (zero
	// unless a run uses a SINR medium).
	Drowned, BelowNoise int64
	// PhaseNodes is the occupancy gauge: how many nodes currently sit in
	// each phase.
	PhaseNodes [NumPhases]int64
	// At is the wall-clock time of the snapshot; Start the rate origin
	// (zero time if no slot was counted yet).
	At, Start time.Time
}

// Snapshot reads the registry.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Transmissions: m.transmissions.Load(),
		Deliveries:    m.deliveries.Load(),
		Collisions:    m.collisions.Load(),
		Captures:      m.captures.Load(),
		Drops:         m.drops.Load(),
		Decisions:     m.decisions.Load(),
		Wakeups:       m.wakeups.Load(),
		Slots:         m.slots.Load(),
		Lost:          m.lost.Load(),
		Jammed:        m.jammed.Load(),
		Crashes:       m.crashes.Load(),
		Restarts:      m.restarts.Load(),
		Joins:         m.joins.Load(),
		Leaves:        m.leaves.Load(),

		ConflictsRepaired: m.conflictsRep.Load(),

		Drowned:    m.drowned.Load(),
		BelowNoise: m.belowNoise.Load(),
		At:         time.Now(),
	}
	if ns := m.startNanos.Load(); ns != 0 {
		s.Start = time.Unix(0, ns)
	}
	for i := range s.PhaseNodes {
		s.PhaseNodes[i] = m.phase[i].Load()
	}
	return s
}

// CollisionRate is the fraction of channel resolutions that were lost
// to collisions: collisions / (deliveries + collisions). 0 when nothing
// was resolved.
func (s Snapshot) CollisionRate() float64 {
	total := s.Deliveries + s.Collisions
	if total == 0 {
		return 0
	}
	return float64(s.Collisions) / float64(total)
}

// SlotsPerSec is the mean simulation rate since the first counted slot,
// or 0 before any slot.
func (s Snapshot) SlotsPerSec() float64 {
	if s.Start.IsZero() {
		return 0
	}
	sec := s.At.Sub(s.Start).Seconds()
	if sec <= 0 {
		return 0
	}
	return float64(s.Slots) / sec
}

// Sub returns the delta s − prev (counters only; gauges and timestamps
// keep s's values). Use with two snapshots of a live registry to report
// interval rates.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	d := s
	d.Transmissions -= prev.Transmissions
	d.Deliveries -= prev.Deliveries
	d.Collisions -= prev.Collisions
	d.Captures -= prev.Captures
	d.Drops -= prev.Drops
	d.Decisions -= prev.Decisions
	d.Wakeups -= prev.Wakeups
	d.Slots -= prev.Slots
	d.Lost -= prev.Lost
	d.Jammed -= prev.Jammed
	d.Crashes -= prev.Crashes
	d.Restarts -= prev.Restarts
	d.Joins -= prev.Joins
	d.Leaves -= prev.Leaves
	d.ConflictsRepaired -= prev.ConflictsRepaired
	d.Drowned -= prev.Drowned
	d.BelowNoise -= prev.BelowNoise
	d.Start = prev.At
	return d
}

// Export calls fn once per metric in a fixed, documented order: the
// seventeen monotone counters first (Counter true), then the per-phase
// occupancy gauges (Counter false). It is the deterministic export hook
// text encoders build on — the Prometheus exposition of internal/serve
// and the Map/String renderings here all derive from it, so the
// vocabulary cannot drift between formats.
func (s Snapshot) Export(fn func(name string, value int64, counter bool)) {
	fn("transmissions", s.Transmissions, true)
	fn("deliveries", s.Deliveries, true)
	fn("collisions", s.Collisions, true)
	fn("captures", s.Captures, true)
	fn("drops", s.Drops, true)
	fn("decisions", s.Decisions, true)
	fn("wakeups", s.Wakeups, true)
	fn("slots", s.Slots, true)
	fn("lost", s.Lost, true)
	fn("jammed", s.Jammed, true)
	fn("crashes", s.Crashes, true)
	fn("restarts", s.Restarts, true)
	fn("joins", s.Joins, true)
	fn("leaves", s.Leaves, true)
	fn("conflicts_repaired", s.ConflictsRepaired, true)
	fn("drowned", s.Drowned, true)
	fn("below_noise", s.BelowNoise, true)
	for i, v := range s.PhaseNodes {
		fn("phase_"+Phase(i).String(), v, false)
	}
}

// Map renders the registry as name → value, the stable export format
// (names are the JSONL/summary vocabulary).
func (s Snapshot) Map() map[string]int64 {
	m := make(map[string]int64, 17+NumPhases)
	s.Export(func(name string, v int64, _ bool) { m[name] = v })
	return m
}

// String implements fmt.Stringer with a stable one-line summary
// (alphabetical keys).
func (s Snapshot) String() string {
	m := s.Map()
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", k, m[k])
	}
	return b.String()
}
