package serve

import (
	"errors"
	"sync"
)

// errQueueFull is the backpressure signal: the admission queue is at
// capacity and the submission must be retried later (HTTP 429).
var errQueueFull = errors.New("serve: queue full")

// errQueueClosed rejects submissions after shutdown began (HTTP 503).
var errQueueClosed = errors.New("serve: queue closed")

// queue is the bounded admission queue between the HTTP handlers and
// the worker pool. Push never blocks: a full queue is an explicit
// rejection, which is what lets the server shed load instead of
// accumulating unbounded goroutines or memory under overload.
type queue struct {
	mu     sync.Mutex
	ch     chan *job
	closed bool
}

func newQueue(capacity int) *queue {
	return &queue{ch: make(chan *job, capacity)}
}

// tryPush enqueues j or fails immediately with errQueueFull /
// errQueueClosed.
func (q *queue) tryPush(j *job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errQueueClosed
	}
	select {
	case q.ch <- j:
		return nil
	default:
		return errQueueFull
	}
}

// depth is the number of queued jobs (the backpressure gauge).
func (q *queue) depth() int { return len(q.ch) }

// capacity is the queue bound.
func (q *queue) capacity() int { return cap(q.ch) }

// close stops admissions and lets the workers drain the channel.
// Idempotent.
func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}
