package graph

import "fmt"

// Dyn is a mutable CSR view supporting incremental edge addition and
// removal without full rebuilds — the substrate of the dynamic-topology
// (churn/mobility) subsystem. Rows keep the static CSR's sorted-ascending
// invariant, so every consumer of the flat layout (the slot kernel's
// resolve loops, the tiled kernel's lowerBound32 row splits) works
// unchanged on a Dyn's arrays.
//
// Layout: row v occupies edges[off[v] : off[v]+cap[v]], with the live
// neighbors in edges[off[v] : end[v]] (sorted ascending) and slack
// behind them. Inserts and deletes memmove within the row; a row that
// outgrows its capacity is relocated to the tail of the edge array with
// doubled capacity (the abandoned span becomes dead slack — Dyn never
// compacts, trading memory for strictly local, allocation-amortized
// updates). The off and end headers are allocated once and mutated in
// place, so callers may alias them (the engine's rowStart/rowEnd views
// stay valid across every Apply); the edges array may be reallocated by
// a relocation, so callers must refresh that slice after each Apply.
type Dyn struct {
	n     int
	off   []int32
	end   []int32
	cap   []int32
	edges []int32
}

// Delta is one batch of undirected edge changes. Applying a delta and
// then its Inverse restores the prior edge set exactly (changes that
// were no-ops — adding a present edge, deleting a missing one — are
// excluded from the inverse by Apply).
type Delta struct {
	// Adds and Dels list undirected edges as (u, v) pairs; orientation
	// is irrelevant (both half-edges are updated).
	Adds, Dels [][2]int32
}

// Inverse returns the delta undoing d.
func (d Delta) Inverse() Delta { return Delta{Adds: d.Dels, Dels: d.Adds} }

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Adds) == 0 && len(d.Dels) == 0 }

// dynSlack is the per-row slack NewDyn reserves beyond each row's
// current degree, so the first few inserts into a row never relocate.
const dynSlack = 4

// NewDyn builds a dynamic view of g's edge set. The graph itself is
// not retained or modified.
func NewDyn(g *Graph) *Dyn {
	n := g.N()
	csr := g.CSR()
	d := &Dyn{
		n:   n,
		off: make([]int32, n),
		end: make([]int32, n),
		cap: make([]int32, n),
	}
	total := 0
	for v := 0; v < n; v++ {
		total += int(csr.Offsets[v+1]-csr.Offsets[v]) + dynSlack
	}
	d.edges = make([]int32, 0, total)
	for v := 0; v < n; v++ {
		row := csr.Edges[csr.Offsets[v]:csr.Offsets[v+1]]
		d.off[v] = int32(len(d.edges))
		d.edges = append(d.edges, row...)
		d.end[v] = int32(len(d.edges))
		d.cap[v] = int32(len(row) + dynSlack)
		d.edges = d.edges[:int(d.off[v]+d.cap[v])]
	}
	return d
}

// N returns the vertex count.
func (d *Dyn) N() int { return d.n }

// RowBounds returns the standing row-start and row-end headers. They
// are mutated in place by Apply and never reallocated, so callers may
// hold them for the Dyn's lifetime.
func (d *Dyn) RowBounds() (off, end []int32) { return d.off, d.end }

// EdgeArray returns the current backing edge array. It may be
// reallocated by Apply (row relocation), so callers must re-fetch it
// after every Apply.
func (d *Dyn) EdgeArray() []int32 { return d.edges }

// Row returns v's live neighbors, sorted ascending. The slice aliases
// the backing array and is invalidated by the next Apply.
func (d *Dyn) Row(v int32) []int32 { return d.edges[d.off[v]:d.end[v]] }

// Degree returns v's live neighbor count.
func (d *Dyn) Degree(v int32) int { return int(d.end[v] - d.off[v]) }

// Graph materializes the current edge set as an immutable Graph — the
// snapshot a verification oracle needs to judge a coloring against the
// topology a dynamic run actually ended with.
func (d *Dyn) Graph() *Graph {
	b := NewBuilder(d.n)
	for v := 0; v < d.n; v++ {
		for _, u := range d.Row(int32(v)) {
			if int(u) > v {
				b.AddEdge(v, int(u))
			}
		}
	}
	return b.Build()
}

// Has reports whether the undirected edge (u, v) is live.
func (d *Dyn) Has(u, v int32) bool {
	row := d.Row(u)
	i := searchInt32(row, v)
	return i < len(row) && row[i] == v
}

// Apply applies the batch: every edge in delta.Dels is removed and
// every edge in delta.Adds inserted (both half-edges each). Changes
// that are already in effect are skipped silently. It returns the
// inverse delta (exactly the changes that took effect, reversed) and
// the sorted, de-duplicated list of rows whose neighbor sets changed,
// appended to the caller-provided touched scratch (pass touched[:0] to
// reuse an existing buffer).
func (d *Dyn) Apply(delta Delta, touched []int32) (inv Delta, newTouched []int32) {
	for _, e := range delta.Dels {
		u, v := e[0], e[1]
		d.check(u, v)
		if u == v || !d.del(u, v) {
			continue
		}
		d.del(v, u)
		inv.Adds = append(inv.Adds, e)
		touched = append(touched, u, v)
	}
	for _, e := range delta.Adds {
		u, v := e[0], e[1]
		d.check(u, v)
		if u == v || !d.add(u, v) {
			continue
		}
		d.add(v, u)
		inv.Dels = append(inv.Dels, e)
		touched = append(touched, u, v)
	}
	return inv, dedupSorted32(touched)
}

func (d *Dyn) check(u, v int32) {
	if u < 0 || int(u) >= d.n || v < 0 || int(v) >= d.n {
		panic(fmt.Sprintf("graph: dyn edge (%d,%d) out of range [0,%d)", u, v, d.n))
	}
}

// add inserts v into u's row, keeping it sorted. Reports false if the
// edge was already present.
func (d *Dyn) add(u, v int32) bool {
	row := d.edges[d.off[u]:d.end[u]]
	i := searchInt32(row, v)
	if i < len(row) && row[i] == v {
		return false
	}
	if d.end[u]-d.off[u] == d.cap[u] {
		d.relocate(u)
		row = d.edges[d.off[u]:d.end[u]]
	}
	// Shift the tail up one and drop v into its slot.
	pos := int(d.off[u]) + i
	d.end[u]++
	copy(d.edges[pos+1:d.end[u]], d.edges[pos:])
	d.edges[pos] = v
	return true
}

// del removes v from u's row. Reports false if the edge was absent.
func (d *Dyn) del(u, v int32) bool {
	row := d.edges[d.off[u]:d.end[u]]
	i := searchInt32(row, v)
	if i >= len(row) || row[i] != v {
		return false
	}
	pos := int(d.off[u]) + i
	copy(d.edges[pos:], d.edges[pos+1:d.end[u]])
	d.end[u]--
	return true
}

// relocate moves u's full row to the tail of the edge array with
// doubled capacity. The old span becomes dead slack.
func (d *Dyn) relocate(u int32) {
	degree := d.end[u] - d.off[u]
	newCap := d.cap[u] * 2
	if newCap < dynSlack {
		newCap = dynSlack
	}
	base := len(d.edges)
	if int64(base)+int64(newCap) > int64(1<<31-1) {
		panic("graph: dyn edge array exceeds int32 offsets")
	}
	d.edges = append(d.edges, make([]int32, newCap)...)
	copy(d.edges[base:], d.edges[d.off[u]:d.end[u]])
	d.off[u] = int32(base)
	d.end[u] = int32(base) + degree
	d.cap[u] = newCap
}

// searchInt32 returns the insertion index of v in the ascending row.
func searchInt32(row []int32, v int32) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// dedupSorted32 sorts ids ascending and removes duplicates in place.
func dedupSorted32(ids []int32) []int32 {
	if len(ids) < 2 {
		return ids
	}
	// Insertion sort: touched lists are small (a batch's endpoints).
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	w := 1
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1] {
			ids[w] = ids[i]
			w++
		}
	}
	return ids[:w]
}
