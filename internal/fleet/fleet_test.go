package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeProgress counts callbacks; safe for concurrent use.
type fakeProgress struct {
	total, done, failed, retried atomic.Int64
}

func (p *fakeProgress) AddTotal(n int) { p.total.Add(int64(n)) }
func (p *fakeProgress) JobDone()       { p.done.Add(1) }
func (p *fakeProgress) JobFailed()     { p.failed.Add(1) }
func (p *fakeProgress) JobRetried()    { p.retried.Add(1) }

// intDecode is a Checkpoint.Decode reviving int payloads, so restored
// and freshly executed results compare with ==.
func intDecode(b []byte) (any, error) {
	var v int
	err := json.Unmarshal(b, &v)
	return v, err
}

func squareJobs(n int, execs []atomic.Int64) []Job {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		i := i
		jobs[i] = Job{
			ID: fmt.Sprintf("sq/%d", i),
			Run: func() (any, error) {
				if execs != nil {
					execs[i].Add(1)
				}
				return i * i, nil
			},
		}
	}
	return jobs
}

func TestResultsInSubmissionOrder(t *testing.T) {
	const n = 64
	prog := &fakeProgress{}
	results, err := New(Config{Workers: 8, Progress: prog}).Run(squareJobs(n, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != n {
		t.Fatalf("got %d results, want %d", len(results), n)
	}
	for i, r := range results {
		if r.Index != i || r.ID != fmt.Sprintf("sq/%d", i) {
			t.Fatalf("result %d out of order: index=%d id=%s", i, r.Index, r.ID)
		}
		if r.Err != nil || r.Value.(int) != i*i {
			t.Fatalf("result %d: value=%v err=%v", i, r.Value, r.Err)
		}
		if r.Attempts != 1 || r.FromCheckpoint {
			t.Fatalf("result %d: attempts=%d fromCheckpoint=%v", i, r.Attempts, r.FromCheckpoint)
		}
	}
	if prog.total.Load() != n || prog.done.Load() != n || prog.failed.Load() != 0 {
		t.Fatalf("progress counters: total=%d done=%d failed=%d",
			prog.total.Load(), prog.done.Load(), prog.failed.Load())
	}
}

func TestBatchValidation(t *testing.T) {
	ok := func() (any, error) { return nil, nil }
	cases := []struct {
		name string
		jobs []Job
		want string
	}{
		{"empty id", []Job{{ID: "", Run: ok}}, "empty id"},
		{"nil run", []Job{{ID: "a", Run: nil}}, "nil Run"},
		{"duplicate id", []Job{{ID: "a", Run: ok}, {ID: "a", Run: ok}}, "duplicate"},
	}
	for _, c := range cases {
		if _, err := New(Config{}).Run(c.jobs); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: got %v, want error containing %q", c.name, err, c.want)
		}
	}
}

func TestPanicRecoveryAndRetry(t *testing.T) {
	var attempts atomic.Int64
	var mu sync.Mutex
	var slept []time.Duration
	prog := &fakeProgress{}
	eng := New(Config{
		Workers: 2, MaxAttempts: 3, Backoff: 10 * time.Millisecond,
		MaxBackoff: 100 * time.Millisecond, Progress: prog,
		sleep: func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
	})
	results, err := eng.Run([]Job{{
		ID: "flaky",
		Run: func() (any, error) {
			if attempts.Add(1) < 3 {
				panic("transient")
			}
			return "ok", nil
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if r.Err != nil || r.Value != "ok" || r.Attempts != 3 {
		t.Fatalf("flaky job: value=%v err=%v attempts=%d", r.Value, r.Err, r.Attempts)
	}
	if prog.retried.Load() != 2 || prog.done.Load() != 1 || prog.failed.Load() != 0 {
		t.Fatalf("progress: retried=%d done=%d failed=%d",
			prog.retried.Load(), prog.done.Load(), prog.failed.Load())
	}
	// Full jitter: each sleep is uniform in [0, ceiling], ceilings
	// doubling from Backoff.
	ceilings := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond}
	if len(slept) != len(ceilings) {
		t.Fatalf("backoff sleeps = %v, want %d draws", slept, len(ceilings))
	}
	for i, d := range slept {
		if d < 0 || d > ceilings[i] {
			t.Fatalf("sleep %d = %v outside [0, %v]", i, d, ceilings[i])
		}
	}
}

func TestBackoffCap(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	eng := New(Config{
		Workers: 1, MaxAttempts: 4, Backoff: 40 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		sleep:      func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
	})
	results, err := eng.Run([]Job{{
		ID:  "doomed",
		Run: func() (any, error) { return nil, errors.New("always") },
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Failed() || results[0].Attempts != 4 {
		t.Fatalf("doomed job: err=%v attempts=%d", results[0].Err, results[0].Attempts)
	}
	ceilings := []time.Duration{40 * time.Millisecond, 50 * time.Millisecond, 50 * time.Millisecond}
	if len(slept) != len(ceilings) {
		t.Fatalf("backoff sleeps = %v, want %d draws", slept, len(ceilings))
	}
	for i, d := range slept {
		if d < 0 || d > ceilings[i] {
			t.Fatalf("sleep %d = %v outside [0, %v] (doubling capped at MaxBackoff)", i, d, ceilings[i])
		}
	}
}

func TestBackoffFullJitterBounds(t *testing.T) {
	// Pin the jitter contract exactly: the ceiling passed to the draw
	// doubles from Backoff and caps at MaxBackoff, and the slept
	// duration is precisely what the draw returns. A hook returning the
	// maximum recovers the old deterministic schedule; returning 0
	// sleeps not at all.
	for _, mode := range []string{"max", "zero"} {
		var mu sync.Mutex
		var slept []time.Duration
		var ceilings []int64
		eng := New(Config{
			Workers: 1, MaxAttempts: 5, Backoff: 10 * time.Millisecond,
			MaxBackoff: 25 * time.Millisecond,
			sleep:      func(d time.Duration) { mu.Lock(); slept = append(slept, d); mu.Unlock() },
			jitter: func(n int64) int64 {
				mu.Lock()
				ceilings = append(ceilings, n-1)
				mu.Unlock()
				if mode == "zero" {
					return 0
				}
				return n - 1
			},
		})
		results, err := eng.Run([]Job{{
			ID:  "doomed",
			Run: func() (any, error) { return nil, errors.New("always") },
		}})
		if err != nil {
			t.Fatal(err)
		}
		if !results[0].Failed() || results[0].Attempts != 5 {
			t.Fatalf("%s: doomed job: err=%v attempts=%d", mode, results[0].Err, results[0].Attempts)
		}
		wantCeil := []int64{
			int64(10 * time.Millisecond), int64(20 * time.Millisecond),
			int64(25 * time.Millisecond), int64(25 * time.Millisecond),
		}
		if len(ceilings) != len(wantCeil) {
			t.Fatalf("%s: %d draws, want %d", mode, len(ceilings), len(wantCeil))
		}
		for i, c := range ceilings {
			if c != wantCeil[i] {
				t.Fatalf("%s: draw %d ceiling = %v, want %v", mode, i, time.Duration(c), time.Duration(wantCeil[i]))
			}
			want := time.Duration(0)
			if mode == "max" {
				want = time.Duration(wantCeil[i])
			}
			if slept[i] != want {
				t.Fatalf("%s: sleep %d = %v, want %v", mode, i, slept[i], want)
			}
		}
	}
}

func TestPermanentFailureIsPerJob(t *testing.T) {
	prog := &fakeProgress{}
	results, err := New(Config{Workers: 4, MaxAttempts: 2, Backoff: time.Microsecond, Progress: prog}).Run([]Job{
		{ID: "good", Run: func() (any, error) { return 1, nil }},
		{ID: "panics", Run: func() (any, error) { panic("boom") }},
		{ID: "errors", Run: func() (any, error) { return nil, errors.New("nope") }},
	})
	if err != nil {
		t.Fatalf("per-job failures must not fail Run: %v", err)
	}
	if results[0].Failed() || results[0].Value.(int) != 1 {
		t.Fatalf("good job: %+v", results[0])
	}
	var pe *PanicError
	if !errors.As(results[1].Err, &pe) || pe.Value != "boom" || !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("panicking job should yield a *PanicError with a stack, got %v", results[1].Err)
	}
	if !results[2].Failed() || results[2].Attempts != 2 {
		t.Fatalf("erroring job: %+v", results[2])
	}
	if prog.done.Load() != 1 || prog.failed.Load() != 2 || prog.retried.Load() != 2 {
		t.Fatalf("progress: done=%d failed=%d retried=%d",
			prog.done.Load(), prog.failed.Load(), prog.retried.Load())
	}
}

// TestCheckpointResume simulates a killed sweep: a first engine finishes
// only a prefix of the batch, a second engine gets the full batch plus
// the same checkpoint, and its output must match an uninterrupted run
// with the prefix restored rather than re-executed.
func TestCheckpointResume(t *testing.T) {
	const n, killedAfter = 8, 3
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	ck := func() *Checkpoint { return &Checkpoint{Path: path, Decode: intDecode} }

	execs := make([]atomic.Int64, n)
	jobs := squareJobs(n, execs)

	// Phase 1: the "killed" sweep completes only the first 3 jobs.
	if _, err := New(Config{Workers: 2, Checkpoint: ck()}).Run(jobs[:killedAfter]); err != nil {
		t.Fatal(err)
	}

	// Phase 2: resume with the full batch.
	prog := &fakeProgress{}
	results, err := New(Config{Workers: 4, Checkpoint: ck(), Progress: prog}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil || r.Value.(int) != i*i {
			t.Fatalf("resumed result %d: value=%v err=%v", i, r.Value, r.Err)
		}
		wantRestored := i < killedAfter
		if r.FromCheckpoint != wantRestored {
			t.Fatalf("result %d: FromCheckpoint=%v, want %v", i, r.FromCheckpoint, wantRestored)
		}
		wantExecs := int64(1)
		if got := execs[i].Load(); got != wantExecs {
			t.Fatalf("job %d executed %d times across both phases, want %d", i, got, wantExecs)
		}
	}
	if prog.done.Load() != n {
		t.Fatalf("restored jobs must count as done: done=%d want=%d", prog.done.Load(), n)
	}

	// Phase 3: a rerun restores everything and executes nothing.
	results, err = New(Config{Workers: 4, Checkpoint: ck()}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.FromCheckpoint || r.Value.(int) != i*i {
			t.Fatalf("rerun result %d: fromCheckpoint=%v value=%v", i, r.FromCheckpoint, r.Value)
		}
		if got := execs[i].Load(); got != 1 {
			t.Fatalf("job %d re-executed on full rerun (%d executions)", i, got)
		}
	}
}

func TestCheckpointTruncatedTailTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	full := `{"id":"a","attempts":1,"payload":7}` + "\n"
	trunc := `{"id":"b","attempts":1,"pay` // kill mid-write
	if err := os.WriteFile(path, []byte(full+trunc), 0o644); err != nil {
		t.Fatal(err)
	}
	var bRuns atomic.Int64
	var warns []string
	ck := &Checkpoint{Path: path, Decode: intDecode, Warn: func(m string) { warns = append(warns, m) }}
	results, err := New(Config{Checkpoint: ck}).Run([]Job{
		{ID: "a", Run: func() (any, error) { t.Error("job a must be restored, not re-run"); return 0, nil }},
		{ID: "b", Run: func() (any, error) { bRuns.Add(1); return 42, nil }},
	})
	if err != nil {
		t.Fatalf("truncated final line must be tolerated: %v", err)
	}
	if !results[0].FromCheckpoint || results[0].Value.(int) != 7 {
		t.Fatalf("job a: %+v", results[0])
	}
	if results[1].FromCheckpoint || bRuns.Load() != 1 || results[1].Value.(int) != 42 {
		t.Fatalf("job b should recompute: %+v (runs=%d)", results[1], bRuns.Load())
	}
	// The dropped tail is skipped loudly, exactly once.
	if len(warns) != 1 || !strings.Contains(warns[0], "truncated final line") {
		t.Fatalf("warnings = %q", warns)
	}
	// A clean file (job b's record now appended after the repair run)
	// must not warn — only kills mid-write do. The truncated fragment is
	// still in the middle of the file, which load treats as corruption,
	// so rebuild a clean file to check the quiet path.
	clean := full + `{"id":"b","attempts":1,"payload":42}` + "\n"
	if err := os.WriteFile(path, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	warns = nil
	if _, err := New(Config{Checkpoint: ck}).Run([]Job{{ID: "a", Run: func() (any, error) { return 0, nil }}}); err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("clean load warned: %q", warns)
	}
}

func TestCheckpointCorruptionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	corrupt := "not json at all\n" + `{"id":"a","attempts":1,"payload":7}` + "\n"
	if err := os.WriteFile(path, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := New(Config{Checkpoint: &Checkpoint{Path: path}}).Run(squareJobs(1, nil))
	if err == nil || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("a malformed line followed by more data is corruption, got %v", err)
	}
}

func TestCheckpointLastRecordWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	lines := `{"id":"a","attempts":1,"payload":1}` + "\n" + `{"id":"a","attempts":2,"payload":2}` + "\n"
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	results, err := New(Config{Checkpoint: &Checkpoint{Path: path, Decode: intDecode}}).Run([]Job{
		{ID: "a", Run: func() (any, error) { return 0, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].FromCheckpoint || results[0].Value.(int) != 2 {
		t.Fatalf("want the newest payload (2), got %+v", results[0])
	}
}

func TestFailedJobsNotCheckpointed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	jobs := []Job{
		{ID: "ok", Run: func() (any, error) { return 1, nil }},
		{ID: "bad", Run: func() (any, error) { return nil, errors.New("x") }},
	}
	if _, err := New(Config{Checkpoint: &Checkpoint{Path: path}}).Run(jobs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data), `"bad"`) {
		t.Fatalf("failed job leaked into the checkpoint: %s", data)
	}
	// The failed job re-executes on resume and is checkpointed once fixed.
	var ran atomic.Int64
	jobs[1].Run = func() (any, error) { ran.Add(1); return 2, nil }
	results, err := New(Config{Checkpoint: &Checkpoint{Path: path, Decode: intDecode}}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].FromCheckpoint || results[1].FromCheckpoint || ran.Load() != 1 || results[1].Value.(int) != 2 {
		t.Fatalf("resume after failure: %+v %+v (ran=%d)", results[0], results[1], ran.Load())
	}
}

func TestOnResultStreamsInOrderWithOneWorker(t *testing.T) {
	const n = 16
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	jobs := squareJobs(n, nil)
	ck := &Checkpoint{Path: path, Decode: intDecode}
	// Pre-finish a scattered subset so restored and executed jobs mix.
	if _, err := New(Config{Workers: 2, Checkpoint: ck}).Run([]Job{jobs[1], jobs[4], jobs[5]}); err != nil {
		t.Fatal(err)
	}
	var got []string
	_, err := New(Config{
		Workers:    1,
		Checkpoint: ck,
		OnResult:   func(r Result) { got = append(got, r.ID) },
	}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	// Restored jobs stream first in batch order, then executed jobs in
	// completion order — which with one worker is batch order too.
	want := []string{"sq/1", "sq/4", "sq/5"}
	for i := 0; i < n; i++ {
		if i != 1 && i != 4 && i != 5 {
			want = append(want, fmt.Sprintf("sq/%d", i))
		}
	}
	if len(got) != len(want) {
		t.Fatalf("OnResult calls = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnResult order[%d] = %s, want %s (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestDefaultDecodeYieldsRawJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	type payload struct{ X int }
	if _, err := New(Config{Checkpoint: &Checkpoint{Path: path}}).Run([]Job{
		{ID: "a", Run: func() (any, error) { return payload{X: 9}, nil }},
	}); err != nil {
		t.Fatal(err)
	}
	results, err := New(Config{Checkpoint: &Checkpoint{Path: path}}).Run([]Job{
		{ID: "a", Run: func() (any, error) { t.Error("must restore"); return nil, nil }},
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, ok := results[0].Value.(json.RawMessage)
	if !ok {
		t.Fatalf("default Decode should return json.RawMessage, got %T", results[0].Value)
	}
	var p payload
	if err := json.Unmarshal(raw, &p); err != nil || p.X != 9 {
		t.Fatalf("restored payload %s: %v", raw, err)
	}
}
