package radio

import (
	"fmt"

	"radiocolor/internal/fault"
	"radiocolor/internal/obs"
)

// Restartable is implemented by protocols whose state can be cleared
// back to the pre-Start condition. A fault profile that schedules a
// node restart — and a churn schedule that rejoins a node — requires
// the victim's protocol to implement it: a restarted node rejoins as
// if waking for the first time, with no memory of the run so far
// (fail-stop semantics).
type Restartable interface {
	Reset()
}

// faultState is the engine's per-run mutable view of a compiled fault
// injector: the event cursor and the graceful-degradation counter. It
// exists only when Config.Faults is set, so the fault seam costs the
// fault-free hot path exactly one nil check per phase (the same
// discipline as the Observer seam, pinned by the AllocsPerRun tests).
// The crashed-node bits live in the engine's combined off filter,
// shared with the churn seam's absentees (the node sets are validated
// disjoint).
type faultState struct {
	inj    *fault.Injector
	events []fault.Event
	next   int // cursor into events
	// neverDone counts nodes that are down for good without having
	// decided; numDone + neverDone == n ends the run (graceful
	// degradation: every node that still can decide has).
	neverDone int
}

// newFaultState validates the injector against the run and prepares
// the mutable state. Skew profiles are rejected here for the aligned
// engine; RunUnaligned (which models the half-slot offsets) passes
// allowSkew.
func newFaultState(inj *fault.Injector, cfg *Config, n int, allowSkew bool) (*faultState, error) {
	if inj.N() != n {
		return nil, fmt.Errorf("radio: fault injector compiled for %d nodes, graph has %d", inj.N(), n)
	}
	if !allowSkew && inj.HasSkew() {
		return nil, fmt.Errorf("radio: fault profile has clock skew; run it through RunUnaligned")
	}
	for _, ev := range inj.Events() {
		if ev.Kind == fault.EventRestart {
			if _, ok := cfg.Protocols[ev.Node].(Restartable); !ok {
				return nil, fmt.Errorf("radio: fault profile restarts node %d but its protocol does not implement Restartable: %w",
					ev.Node, fault.ErrNeedsReset)
			}
		}
	}
	return &faultState{
		inj:    inj,
		events: inj.Events(),
	}, nil
}

// faultBeginSlot applies the crash/restart events scheduled for slot t
// before any protocol runs. Crash: the node goes silent immediately —
// its standing rs state returns to asleep so resolve skips it, and it
// stays out of every phase until (and unless) it restarts. Restart:
// the node rejoins with cleared protocol state as a fresh wake-up; if
// it had already decided, the decision is retracted (the color died
// with the state).
func (e *Engine) faultBeginSlot(t int64, ob Observer, met *obs.Metrics) {
	fs := e.fs
	if fs.next >= len(fs.events) || fs.events[fs.next].Slot > t {
		return
	}
	e.rejoinU = e.rejoinU[:0]
	e.rejoinA = e.rejoinA[:0]
	for fs.next < len(fs.events) && fs.events[fs.next].Slot == t {
		ev := fs.events[fs.next]
		fs.next++
		v := ev.Node
		if ev.Kind == fault.EventCrash {
			if e.off[v] {
				continue
			}
			e.off[v] = true
			e.res.Crashes++
			if met != nil {
				met.AddCrash()
			}
			if ev.Final && !e.decided[v] {
				fs.neverDone++
			}
			if e.awake[v] {
				e.awake[v] = false
				e.rs[v].count = asleepCount
			}
			continue
		}
		// Restart.
		if !e.off[v] {
			continue
		}
		e.off[v] = false
		e.res.Restarts++
		if met != nil {
			met.AddRestart()
		}
		if e.cfg.Wake[v] >= t {
			// The node crashed before its wake slot; the normal wake
			// loop will start it on schedule.
			continue
		}
		wasWoke := e.everWoke[v]
		if wasWoke {
			e.cfg.Protocols[v].(Restartable).Reset()
		}
		e.awake[v] = true
		e.rs[v].count = 0
		e.everWoke[v] = true
		if ob != nil {
			ob.OnWake(t, NodeID(v))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[v].Start(t)
		needUndecided := !wasWoke
		if e.decided[v] {
			e.decided[v] = false
			e.numDone--
			e.res.DecideSlot[v] = -1
			needUndecided = true
		}
		if needUndecided {
			e.rejoinU = append(e.rejoinU, v)
		}
		if !wasWoke {
			e.rejoinA = append(e.rejoinA, v)
		}
	}
	if len(e.rejoinU) > 0 {
		sortInt32s(e.rejoinU)
		e.undecided = mergeSorted(e.undecided, e.rejoinU)
	}
	if len(e.rejoinA) > 0 {
		// The pending list is sorted at flush time, so insertion order
		// is free.
		e.pending = append(e.pending, e.rejoinA...)
	}
}

// filteredWake is the off-aware wake loop: nodes that are crashed or
// absent at their wake slot are consumed from the order without
// starting (their restart or join, if any, rejoins them), so they
// never enter the activity lists.
func (e *Engine) filteredWake(t int64, ob Observer, met *obs.Metrics) {
	e.woken = e.woken[:0]
	for e.next < e.n && e.cfg.Wake[e.order[e.next]] == t {
		id := e.order[e.next]
		e.next++
		if e.off[id] {
			continue
		}
		e.awake[id] = true
		e.rs[id].count = 0
		e.everWoke[id] = true
		if ob != nil {
			ob.OnWake(t, NodeID(id))
		}
		if met != nil {
			met.AddWakeup()
		}
		e.cfg.Protocols[id].Start(t)
		e.woken = append(e.woken, id)
	}
	if len(e.woken) > 0 {
		e.undecided = mergeSorted(e.undecided, e.woken)
		e.pending = append(e.pending, e.woken...)
	}
}

// filteredSend is the off-aware sequential Send sweep: identical to
// the plain sweep but skipping crashed and absent nodes (their entries
// remain in the lists; the off flags filter them).
func (e *Engine) filteredSend(t int64, ob Observer, met *obs.Metrics) {
	protos := e.cfg.Protocols
	off := e.off
	for _, i := range e.awakeList {
		if off[i] {
			continue
		}
		if msg := protos[i].Send(t); msg != nil {
			e.out[i] = msg
			e.rs[i].count = txMarker
			e.tx = append(e.tx, i)
			e.noteTx(t, i, msg, ob, met)
		}
	}
	for _, i := range e.pending {
		if off[i] {
			continue
		}
		if msg := protos[i].Send(t); msg != nil {
			e.out[i] = msg
			e.rs[i].count = txMarker
			e.tx = append(e.tx, i)
			e.noteTx(t, i, msg, ob, met)
		}
	}
}

// filteredDecide is the off-aware decision sweep: crashed and absent
// nodes stay in the undecided list (they may restart or rejoin) but
// are never polled.
func (e *Engine) filteredDecide(t int64, ob Observer, met *obs.Metrics) {
	w := 0
	protos := e.cfg.Protocols
	off := e.off
	for _, i := range e.undecided {
		if !off[i] && protos[i].Done() {
			e.decided[i] = true
			e.numDone++
			e.res.DecideSlot[i] = t
			if ob != nil {
				ob.OnDecide(t, NodeID(i))
			}
			if met != nil {
				met.AddDecision()
			}
		} else {
			e.undecided[w] = i
			w++
		}
	}
	e.undecided = e.undecided[:w]
}

// Reception-suppression classes, ordered by precedence: the adversary
// (jam) beats the channel (loss), which beats the legacy DropProb coin
// applied afterwards by the caller.
const (
	suppressNone = iota
	suppressJam
	suppressLoss
)

// suppression classifies why the fault layer kills an otherwise
// successful reception at node to from node from. Pure and
// allocation-free, so it is safe from any deliver worker.
func (fs *faultState) suppression(t int64, from, to int32) int {
	if fs.inj.Jammed(t, to) {
		return suppressJam
	}
	if fs.inj.Lost(t, from, to) {
		return suppressLoss
	}
	return suppressNone
}

// faultSuppressed applies the suppression check to one reception,
// counting the outcome into the given tallies (the sequential path
// passes Result fields, the parallel path its worker-private tally).
func (e *Engine) faultSuppressed(t int64, from, to int32, jammed, lost *int64, met *obs.Metrics) bool {
	switch e.fs.suppression(t, from, to) {
	case suppressJam:
		*jammed++
		if met != nil {
			met.AddJammed()
		}
		return true
	case suppressLoss:
		*lost++
		if met != nil {
			met.AddLost()
		}
		return true
	}
	return false
}
