package store

import (
	"encoding/json"
	"sync"
	"time"

	"radiocolor/internal/obs"
)

// Memory is the process-local Store: the exact lease semantics of the
// file backend without persistence. It backs colord when no store
// directory is configured (single-replica, demo-grade) and serves as
// the reference implementation for the conformance suite.
type Memory struct {
	mu sync.Mutex
	t  *table
}

// NewMemory creates an empty in-memory store. ctrl may be nil.
func NewMemory(ctrl *obs.Control) *Memory {
	return &Memory{t: newTable(ctrl)}
}

// Create implements Store.
func (m *Memory) Create(j *Job) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.t.create(j)
	j.ID, j.Seq, j.Kind, j.State = c.ID, c.Seq, c.Kind, c.State
	return nil
}

// Get implements Store.
func (m *Memory) Get(id string) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, err := m.t.get(id)
	if err != nil {
		return nil, err
	}
	return j.Clone(), nil
}

// List implements Store.
func (m *Memory) List(f Filter) ([]*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.list(f), nil
}

// Counts implements Store.
func (m *Memory) Counts() (map[State]int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t.counts(), nil
}

// Claim implements Store.
func (m *Memory) Claim(owner string, now time.Time, ttl time.Duration) (*Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.t.claim(owner, now, ttl)
	if j == nil {
		return nil, nil
	}
	return j.Clone(), nil
}

// Heartbeat implements Store.
func (m *Memory) Heartbeat(id, owner string, now time.Time, ttl time.Duration) (bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, cancel, err := m.t.heartbeat(id, owner, now, ttl)
	return cancel, err
}

// Finish implements Store.
func (m *Memory) Finish(id, owner string, state State, result json.RawMessage, errMsg string, now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.t.finish(id, owner, state, result, errMsg, now)
	return err
}

// Release implements Store.
func (m *Memory) Release(id, owner string, now time.Time) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.t.release(id, owner, now)
	return err
}

// RequestCancel implements Store.
func (m *Memory) RequestCancel(id string, now time.Time) (*Job, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, changed, err := m.t.requestCancel(id, now)
	if err != nil {
		return nil, false, err
	}
	return j.Clone(), changed, nil
}

// Prune implements Store.
func (m *Memory) Prune(keep int) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.t.prune(keep)), nil
}

// Durable implements Store: memory never survives the process.
func (m *Memory) Durable() bool { return false }

// Close implements Store.
func (m *Memory) Close() error { return nil }
