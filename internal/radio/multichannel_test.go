package radio

import "testing"

func TestMultiChannelValidation(t *testing.T) {
	g := line(2)
	_, cfg := buildScripted(g, [][]bool{nil, nil}, WakeSynchronous(2))
	if _, err := RunMultiChannel(cfg, 0, 1); err == nil {
		t.Error("0 channels accepted")
	}
	if _, err := RunMultiChannel(Config{}, 2, 1); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSingleChannelEqualsRun(t *testing.T) {
	build := func() Config {
		g := line(30)
		protos := make([]Protocol, g.N())
		for i := range protos {
			protos[i] = &randProto{id: NodeID(i), rng: NodeRand(5, NodeID(i)), p: 0.25, limit: 300}
		}
		return Config{G: g, Protocols: protos, Wake: WakeUniform(g.N(), 20, 3)}
	}
	a, err := Run(build())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMultiChannel(build(), 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Transmissions != b.Transmissions || a.Deliveries != b.Deliveries ||
		a.Collisions != b.Collisions || a.Slots != b.Slots {
		t.Errorf("k=1 diverges from Run: %v vs %v", a, b)
	}
}

func TestMultiChannelSeparatesColliders(t *testing.T) {
	// 0-1-2 path with 0 and 2 transmitting every slot: on one channel,
	// node 1 never receives (permanent collision). On 8 channels the
	// transmitters frequently land on different channels, and node 1
	// must eventually share a channel with exactly one of them.
	g := line(3)
	script := make([]bool, 64)
	for i := range script {
		script[i] = true
	}
	protos, cfg := buildScripted(g, [][]bool{script, make([]bool, 64), script}, WakeSynchronous(3))
	res, err := RunMultiChannel(cfg, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(protos[1].received) == 0 {
		t.Error("8 channels never separated the colliders in 64 slots")
	}
	if res.Deliveries != int64(len(protos[1].received)) {
		t.Errorf("delivery accounting: %d vs %d", res.Deliveries, len(protos[1].received))
	}
}

func TestMultiChannelReceiverMustMatch(t *testing.T) {
	// A lone transmitter on k channels reaches its neighbor only when
	// their hops coincide: expect roughly 1/k of the slots, and never
	// the slots where they differ.
	g := line(2)
	script := make([]bool, 400)
	for i := range script {
		script[i] = true
	}
	protos, cfg := buildScripted(g, [][]bool{script, make([]bool, 400)}, WakeSynchronous(2))
	cfg.MaxSlots = 400
	_, err := RunMultiChannel(cfg, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	got := len(protos[1].received)
	if got < 400/8 || got > 400/2 {
		t.Errorf("deliveries = %d over 400 slots on 4 channels, expected ≈ 100", got)
	}
}

func TestMultiChannelDeterministic(t *testing.T) {
	run := func() int64 {
		g := line(25)
		protos := make([]Protocol, g.N())
		for i := range protos {
			protos[i] = &randProto{id: NodeID(i), rng: NodeRand(9, NodeID(i)), p: 0.3, limit: 200}
		}
		res, err := RunMultiChannel(Config{G: g, Protocols: protos, Wake: WakeSynchronous(g.N())}, 3, 17)
		if err != nil {
			t.Fatal(err)
		}
		return res.Deliveries*1000003 + res.Collisions
	}
	if run() != run() {
		t.Error("multi-channel engine not deterministic")
	}
}
